module tensorbase

go 1.22
