// Package tensorbase is a relational database engine that serves deep
// learning models natively: SQL queries with PREDICT() nested in them, an
// adaptive optimizer that executes each model operator UDF-centrically
// (whole-tensor, in-process) or relation-centrically (tensor blocks, matmul
// as join + aggregation with buffer-pool spilling), a simulated external DL
// runtime as the DL-centric baseline, and an HNSW-indexed inference-result
// cache — a from-scratch Go reproduction of "Serving Deep Learning Models
// from Relational Databases" (EDBT 2024).
//
// The public entry points live in internal/engine (the embeddable
// database), cmd/tensorbase (a SQL shell), and cmd/bench (the experiment
// driver that regenerates the paper's tables and figures). bench_test.go in
// this directory carries the testing.B counterparts of every experiment.
package tensorbase
