#!/usr/bin/env python3
"""Parse `go test -bench` output into a benchmark JSON artifact, gate the
serving-path benchmarks, and report the trajectory against the latest
prior BENCH_<n>.json committed to the repo.

Usage: bench_gate.py <bench-output.txt> <out.json>

Collects every benchmark line (several -count repetitions per name), keeps
the full run list plus the best (minimum) ns/op — the minimum is the
stable statistic on a noisy shared runner, since scheduler interference
only ever adds time.

Gates (the job fails after the JSON is written, so the artifact survives
for inspection):

  quantized  BenchmarkQuantizedPredict/quantized's best run must beat
             /f32's best run — serving the int8-resident twin must be
             faster than f32 serving end-to-end.
  snapshot   BenchmarkSnapshotReadUnderWrites/underwrites throughput must
             be >= 0.8x the /readonly baseline — MVCC snapshot reads must
             keep PREDICT off the lock manager while a writer commits.
  dedup      BenchmarkModelLoadDedup's marginal_frac_of_model must be
             <= 0.30 — one extra fine-tuned variant may cost at most 30%
             of a full model's resident bytes, or the block store is not
             actually deduplicating.

Trajectory: the artifact also records per-benchmark deltas against the
newest prior BENCH_<n>.json found next to <out.json>. Deltas are
informational (shared runners drift too much for a hard cross-run gate);
the explicit gates above are the contract.
"""
import glob
import json
import os
import re
import sys

# "BenchmarkQuantizedPredict/f32-4   44   5562608 ns/op   184086 rows/s"
LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$")
EXTRA = re.compile(r"([\d.]+) ([\w./]+)")

# underwrites must retain this fraction of read-only PREDICT throughput.
SNAPSHOT_FLOOR = 0.8

# one extra fine-tuned variant may cost at most this fraction of a full
# model's resident bytes.
DEDUP_CEILING = 0.30


def parse(src):
    runs = {}
    with open(src) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(3)), m.group(4)
            entry = runs.setdefault(name, {"runs_ns_per_op": [], "metrics": {}})
            entry["runs_ns_per_op"].append(ns)
            for val, unit in EXTRA.findall(rest):
                if unit != "ns/op":
                    entry["metrics"].setdefault(unit, []).append(float(val))
    for entry in runs.values():
        entry["best_ns_per_op"] = min(entry["runs_ns_per_op"])
    return runs


def quantized_gate(runs):
    f32 = runs.get("BenchmarkQuantizedPredict/f32")
    q8 = runs.get("BenchmarkQuantizedPredict/quantized")
    if not (f32 and q8):
        return None
    return {
        "f32_best_ns_per_op": f32["best_ns_per_op"],
        "quantized_best_ns_per_op": q8["best_ns_per_op"],
        "speedup": f32["best_ns_per_op"] / q8["best_ns_per_op"],
        "pass": q8["best_ns_per_op"] < f32["best_ns_per_op"],
    }


def snapshot_gate(runs):
    ro = runs.get("BenchmarkSnapshotReadUnderWrites/readonly")
    uw = runs.get("BenchmarkSnapshotReadUnderWrites/underwrites")
    if not (ro and uw):
        return None
    # Throughput is 1/ns, so the throughput ratio is readonly/underwrites.
    ratio = ro["best_ns_per_op"] / uw["best_ns_per_op"]
    return {
        "readonly_best_ns_per_op": ro["best_ns_per_op"],
        "underwrites_best_ns_per_op": uw["best_ns_per_op"],
        "throughput_ratio": ratio,
        "floor": SNAPSHOT_FLOOR,
        "pass": ratio >= SNAPSHOT_FLOOR,
    }


def dedup_gate(runs):
    entry = runs.get("BenchmarkModelLoadDedup")
    if not entry:
        return None
    fracs = entry["metrics"].get("marginal_frac_of_model")
    if not fracs:
        return None
    # The fraction is a property of the block layout, not of runner speed,
    # but take the minimum across repetitions for symmetry with the other
    # gates (it is identical across runs in practice).
    frac = min(fracs)
    rates = entry["metrics"].get("dedup_hit_rate", [])
    return {
        "marginal_frac_of_model": frac,
        "dedup_hit_rate": max(rates) if rates else None,
        "ceiling": DEDUP_CEILING,
        "pass": frac <= DEDUP_CEILING,
    }


def latest_baseline(out_path):
    """Newest prior BENCH_<n>.json in out.json's directory, skipping the
    artifact being written."""
    out_dir = os.path.dirname(os.path.abspath(out_path)) or "."
    best_n, best_path = -1, None
    for path in glob.glob(os.path.join(out_dir, "BENCH_*.json")):
        if os.path.abspath(path) == os.path.abspath(out_path):
            continue
        m = re.match(r"BENCH_(\d+)\.json$", os.path.basename(path))
        if m and int(m.group(1)) > best_n:
            best_n, best_path = int(m.group(1)), path
    return best_path


def trajectory(runs, out_path):
    base_path = latest_baseline(out_path)
    if base_path is None:
        return None
    try:
        with open(base_path) as f:
            base = json.load(f).get("benchmarks", {})
    except (OSError, ValueError) as e:
        return {"baseline": os.path.basename(base_path), "error": str(e)}
    deltas = {}
    for name, entry in sorted(runs.items()):
        prev = base.get(name)
        if not prev or "best_ns_per_op" not in prev:
            continue
        deltas[name] = {
            "prev_best_ns_per_op": prev["best_ns_per_op"],
            "best_ns_per_op": entry["best_ns_per_op"],
            # >1 means this run is faster than the baseline.
            "speedup_vs_prev": prev["best_ns_per_op"] / entry["best_ns_per_op"],
        }
    return {"baseline": os.path.basename(base_path), "deltas": deltas}


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <bench-output.txt> <out.json>")
    src, dst = sys.argv[1], sys.argv[2]
    runs = parse(src)
    qgate = quantized_gate(runs)
    sgate = snapshot_gate(runs)
    dgate = dedup_gate(runs)
    traj = trajectory(runs, dst)

    with open(dst, "w") as f:
        json.dump(
            {
                "benchmarks": runs,
                "quantized_gate": qgate,
                "snapshot_gate": sgate,
                "dedup_gate": dgate,
                "trajectory": traj,
            },
            f, indent=2, sort_keys=True,
        )
        f.write("\n")

    if traj and "deltas" in traj:
        print(f"bench_gate: trajectory vs {traj['baseline']}:")
        for name, d in traj["deltas"].items():
            print("  %-55s %8.0f -> %8.0f ns/op (%.2fx)"
                  % (name, d["prev_best_ns_per_op"], d["best_ns_per_op"],
                     d["speedup_vs_prev"]))

    failures = []
    if qgate is None:
        failures.append("BenchmarkQuantizedPredict/{f32,quantized} runs missing from input")
    else:
        print("bench_gate: quantized %.0f ns/op vs f32 %.0f ns/op (%.2fx)"
              % (qgate["quantized_best_ns_per_op"], qgate["f32_best_ns_per_op"],
                 qgate["speedup"]))
        if not qgate["pass"]:
            failures.append("quantized PREDICT must be faster than f32 end-to-end")
    if sgate is None:
        failures.append("BenchmarkSnapshotReadUnderWrites/{readonly,underwrites} runs missing from input")
    else:
        print("bench_gate: snapshot reads under writes at %.2fx read-only throughput (floor %.2f)"
              % (sgate["throughput_ratio"], sgate["floor"]))
        if not sgate["pass"]:
            failures.append(
                "PREDICT under a concurrent writer fell below %.2fx of the read-only baseline"
                % SNAPSHOT_FLOOR)
    if dgate is None:
        failures.append("BenchmarkModelLoadDedup run missing from input")
    else:
        rate = dgate["dedup_hit_rate"]
        print("bench_gate: dedup marginal variant cost %.3fx of a full model (ceiling %.2f), hit rate %s"
              % (dgate["marginal_frac_of_model"], dgate["ceiling"],
                 "%.2f" % rate if rate is not None else "n/a"))
        if not dgate["pass"]:
            failures.append(
                "a fine-tuned variant cost more than %.0f%% of a full model's resident bytes"
                % (DEDUP_CEILING * 100))
    if failures:
        sys.exit("bench_gate: FAIL — " + "; ".join(failures))


if __name__ == "__main__":
    main()
