#!/usr/bin/env python3
"""Parse `go test -bench` output into a benchmark JSON artifact and gate
the quantized PREDICT path.

Usage: bench_gate.py <bench-output.txt> <out.json>

Collects every benchmark line (several -count repetitions per name), keeps
the full run list plus the best (minimum) ns/op — the minimum is the
stable statistic on a noisy shared runner, since scheduler interference
only ever adds time. The gate: BenchmarkQuantizedPredict/quantized's best
run must beat BenchmarkQuantizedPredict/f32's best run, i.e. serving the
int8-resident twin must be faster than f32 serving end-to-end on the
Fraud-FC-256 workload. Exits non-zero (after writing the JSON, so the
artifact survives for inspection) when the gate fails or the gate
benchmarks are missing.
"""
import json
import re
import sys

# "BenchmarkQuantizedPredict/f32-4   44   5562608 ns/op   184086 rows/s"
LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$")
EXTRA = re.compile(r"([\d.]+) ([\w./]+)")


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <bench-output.txt> <out.json>")
    src, dst = sys.argv[1], sys.argv[2]
    runs = {}
    with open(src) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(3)), m.group(4)
            entry = runs.setdefault(name, {"runs_ns_per_op": [], "metrics": {}})
            entry["runs_ns_per_op"].append(ns)
            for val, unit in EXTRA.findall(rest):
                if unit != "ns/op":
                    entry["metrics"].setdefault(unit, []).append(float(val))
    for entry in runs.values():
        entry["best_ns_per_op"] = min(entry["runs_ns_per_op"])

    f32 = runs.get("BenchmarkQuantizedPredict/f32")
    q8 = runs.get("BenchmarkQuantizedPredict/quantized")
    gate = None
    if f32 and q8:
        gate = {
            "f32_best_ns_per_op": f32["best_ns_per_op"],
            "quantized_best_ns_per_op": q8["best_ns_per_op"],
            "speedup": f32["best_ns_per_op"] / q8["best_ns_per_op"],
            "pass": q8["best_ns_per_op"] < f32["best_ns_per_op"],
        }

    with open(dst, "w") as f:
        json.dump({"benchmarks": runs, "quantized_gate": gate}, f, indent=2, sort_keys=True)
        f.write("\n")

    if gate is None:
        sys.exit("bench_gate: BenchmarkQuantizedPredict/{f32,quantized} runs missing from input")
    print(
        "bench_gate: quantized %.0f ns/op vs f32 %.0f ns/op (%.2fx)"
        % (gate["quantized_best_ns_per_op"], gate["f32_best_ns_per_op"], gate["speedup"])
    )
    if not gate["pass"]:
        sys.exit("bench_gate: FAIL — quantized PREDICT must be faster than f32 end-to-end")


if __name__ == "__main__":
    main()
