package tensorbase_test

// testing.B counterparts of every paper artifact (run with
// `go test -bench=. -benchmem`):
//
//	Table 1  BenchmarkTable1FC/*          forward pass per FC model
//	Table 2  BenchmarkTable2Conv/*        forward pass per conv model
//	Fig. 2   BenchmarkFig2/*              serving paths, Fraud-FC-256
//	Fig. 3   BenchmarkFig3/*              serving paths, DeepBench-CONV1
//	Table 3  BenchmarkTable3/*            whole-tensor vs relation-centric
//	7.2.1    BenchmarkPushdown/*          join-then-infer vs decompose+pushdown
//	7.2.2    BenchmarkCache/*             full inference vs HNSW cache lookup
//
// plus the DESIGN.md ablations: block size, buffer pool frames, connector
// batch size, HNSW efSearch, optimizer threshold.

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bytes"

	"tensorbase/internal/ann"
	"tensorbase/internal/blocked"
	"tensorbase/internal/cache"
	"tensorbase/internal/connector"
	"tensorbase/internal/core"
	"tensorbase/internal/data"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/engine"
	"tensorbase/internal/exec"
	"tensorbase/internal/experiments"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/shard"
	"tensorbase/internal/sql"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
	"tensorbase/internal/udf"
)

func benchPool(b *testing.B, frames int) *storage.BufferPool {
	b.Helper()
	d, err := storage.OpenDisk(filepath.Join(b.TempDir(), "bench.db"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	return storage.NewBufferPool(d, frames)
}

// ---- Table 1: fully connected model zoo ----

func BenchmarkTable1FC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		model *nn.Model
		batch int
	}{
		{nn.FraudFC(rng, 256), 256},
		{nn.FraudFC(rng, 512), 256},
		{nn.EncoderFC(rng), 16},
		{nn.Amazon14kFC(rng, 1024), 16}, // 583/1024/14 at benchmark scale
	}
	for _, c := range cases {
		in := c.model.InShape[1]
		x := data.Dense(2, c.batch, in)
		b.Run(c.model.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.model.Forward(x.Clone())
			}
		})
	}
}

// ---- Table 2: convolutional model zoo ----

func BenchmarkTable2Conv(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	b.Run("DeepBench-CONV1", func(b *testing.B) {
		m := nn.DeepBenchConv1(rng)
		x := data.Images(3, 1, 112, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Forward(x.Clone())
		}
	})
	b.Run("LandCover", func(b *testing.B) {
		m := nn.LandCover(rng, 20)
		hw, _ := nn.LandCoverDims(20)
		x := data.Images(4, 1, hw, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Forward(x.Clone())
		}
	})
}

// ---- Figure 2: FFNN serving paths ----

// storeFeatures writes an (n, width) tensor as (id, features) rows.
func storeFeatures(pool *storage.BufferPool, x *tensor.Tensor) (*table.Heap, error) {
	schema := table.MustSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "features", Type: table.FloatVec},
	)
	h, err := table.NewHeap(pool, schema)
	if err != nil {
		return nil, err
	}
	for i := 0; i < x.Dim(0); i++ {
		if _, err := h.Insert(table.Tuple{table.IntVal(int64(i)), table.VecVal(x.Row(i))}); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// heapFeatures adapts the features column of a heap scan to the connector.
type heapFeatures struct{ scan *table.Scanner }

func (s *heapFeatures) NextRow() ([]float32, bool, error) {
	t, ok, err := s.scan.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return t[1].Vec, true, nil
}

func BenchmarkFig2(b *testing.B) {
	const rows = 2000
	rng := rand.New(rand.NewSource(5))
	model := nn.FraudFC(rng, 256)
	pool := benchPool(b, 2048)
	x := data.Dense(6, rows, 28)
	heap, err := storeFeatures(pool, x)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("ours-in-db", func(b *testing.B) {
		u := core.NewAdaptiveUDF(model, core.NewOptimizer(2<<30), pool, memlimit.Unlimited())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op, err := udf.NewInferOp(exec.NewHeapScan(heap), u, "features", 256)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(op); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, profile := range []dlruntime.Profile{dlruntime.Graph, dlruntime.Eager} {
		b.Run("dl-centric-"+profile.String(), func(b *testing.B) {
			rt := dlruntime.New(profile, 0)
			sess, err := rt.Load(model)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			wire := experiments.DefaultWire()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := &heapFeatures{scan: heap.Scan()}
				var stats connector.Stats
				xt, err := connector.Transfer(src, 28, 1024, &stats)
				if err != nil {
					b.Fatal(err)
				}
				rows, _, bytes := stats.Snapshot()
				wire.Delay(rows, rows*28, bytes)
				out, err := sess.Infer(xt)
				if err != nil {
					b.Fatal(err)
				}
				wire.Delay(int64(out.Dim(0)), int64(out.Len()), out.Bytes())
			}
		})
	}
}

// ---- Figure 3: CNN serving paths ----

func BenchmarkFig3(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	model := nn.DeepBenchConv1(rng)
	x := data.Images(8, 1, 112, 64)
	flat := x.Reshape(1, 112*112*64)

	b.Run("ours-in-db", func(b *testing.B) {
		pool := benchPool(b, 2048)
		u := core.NewAdaptiveUDF(model, core.NewOptimizer(2<<30), pool, memlimit.Unlimited())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.Apply(flat.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dl-centric-graph", func(b *testing.B) {
		rt := dlruntime.New(dlruntime.Graph, 0)
		sess, err := rt.Load(model)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		wire := experiments.DefaultWire()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var stats connector.Stats
			xt, err := connector.Transfer(connector.NewTensorSource(flat), flat.Dim(1), 1, &stats)
			if err != nil {
				b.Fatal(err)
			}
			rows, _, bytes := stats.Snapshot()
			wire.Delay(rows, rows*int64(flat.Dim(1)), bytes)
			out, err := sess.Infer(xt.Reshape(1, 112, 112, 64))
			if err != nil {
				b.Fatal(err)
			}
			wire.Delay(1, int64(out.Len()), out.Bytes())
		}
	})
}

// ---- Table 3: whole-tensor vs relation-centric under the memory budget ----

func BenchmarkTable3(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := nn.Amazon14kFC(rng, 1024) // 583/1024/14
	in := m.InShape[1]
	const batch = 512
	x := data.Dense(10, batch, in)

	b.Run("whole-tensor-udf", func(b *testing.B) {
		u := udf.NewModelUDF(m, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.Apply(x.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("relation-centric", func(b *testing.B) {
		pool := benchPool(b, 2048)
		ex := core.NewExecutor(pool, nil)
		plan, err := core.NewOptimizer(1).Plan(m, batch) // force relational
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Run(plan, x.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Sec. 7.2.1: decomposition + push-down ----

func BenchmarkPushdown(b *testing.B) {
	const rowsPerSide, features = 400, 96
	d1, d2 := data.BoschTables(11, rowsPerSide, features, 4)
	rng := rand.New(rand.NewSource(12))
	model := nn.BoschFC(rng, 2*features)
	newQuery := func() *core.FeatureJoinQuery {
		return &core.FeatureJoinQuery{
			Left:    exec.NewMemScan(data.BoschSchema("s1", "v1"), d1),
			Right:   exec.NewMemScan(data.BoschSchema("s2", "v2"), d2),
			LeftSim: "s1", RightSim: "s2",
			LeftVec: "v1", RightVec: "v2",
			Eps: 0.25, Model: model, Batch: 256,
		}
	}
	b.Run("join-then-infer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op, err := newQuery().BuildNaive()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decompose-pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op, err := newQuery().BuildPushdown()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(op); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Sec. 7.2.2: full inference vs result cache ----

func BenchmarkCache(b *testing.B) {
	const side = 12
	d := data.MNISTLikeNoisy(13, 600, side, 0.25)
	rng := rand.New(rand.NewSource(14))
	model := nn.CacheCNN(rng, side)
	pix := side * side
	flat := d.X.Reshape(600, pix)

	b.Run("full-inference", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			row := flat.SliceRows(i%600, i%600+1).Clone().Reshape(1, side, side, 1)
			model.Forward(row)
		}
	})
	b.Run("hnsw-cache", func(b *testing.B) {
		rc, err := cache.NewHNSW(pix, float64(pix)*0.25*0.25*3.0)
		if err != nil {
			b.Fatal(err)
		}
		cm := cache.NewCachedModel(model, rc)
		for i := 0; i < 500; i++ {
			if _, err := cm.PredictRow(flat.Row(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cm.PredictRow(flat.Row(500 + i%100)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Ablations ----

// BenchmarkBlockSize sweeps the tensor-block edge for the relation-centric
// matmul (DESIGN.md ablation 1).
func BenchmarkBlockSize(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	a := tensor.New(512, 512)
	w := tensor.New(512, 512)
	for i := range a.Data() {
		a.Data()[i] = float32(rng.NormFloat64())
		w.Data()[i] = float32(rng.NormFloat64())
	}
	for _, bs := range []int{16, 32, 64, 90} {
		b.Run(fmt.Sprintf("bs=%d", bs), func(b *testing.B) {
			pool := benchPool(b, 4096)
			am, err := blocked.Store(pool, a, bs)
			if err != nil {
				b.Fatal(err)
			}
			wm, err := blocked.Store(pool, w, bs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := blocked.MultiplyStreaming(pool, am, wm, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBufferPoolFrames sweeps pool size / spill pressure (ablation 2).
func BenchmarkBufferPoolFrames(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	a := tensor.New(384, 384)
	for i := range a.Data() {
		a.Data()[i] = float32(rng.NormFloat64())
	}
	for _, frames := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("frames=%d", frames), func(b *testing.B) {
			pool := benchPool(b, frames)
			am, err := blocked.Store(pool, a, 64)
			if err != nil {
				b.Fatal(err)
			}
			wm, err := blocked.Store(pool, a, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := blocked.MultiplyStreaming(pool, am, wm, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockedParallel sweeps the worker count of the parallel
// block-streaming multiply on a 1024² problem (DESIGN.md parallel
// execution section). Each sub-benchmark reports a "speedup" metric
// relative to the measured workers=1 run of the same sweep; on a
// single-core machine expect ~1.0 across the board (the sweep then mostly
// measures scheduler overhead).
func BenchmarkBlockedParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	const n = 1024
	a := tensor.New(n, n)
	w := tensor.New(n, n)
	for i := range a.Data() {
		a.Data()[i] = float32(rng.NormFloat64())
		w.Data()[i] = float32(rng.NormFloat64())
	}
	workerCounts := []int{1, 2, 4}
	if cpus := runtime.NumCPU(); cpus > 4 {
		workerCounts = append(workerCounts, cpus)
	}
	var serialNsPerOp float64
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := benchPool(b, 4096)
			am, err := blocked.Store(pool, a, 64)
			if err != nil {
				b.Fatal(err)
			}
			wm, err := blocked.Store(pool, w, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := blocked.MultiplyStreamingWorkers(pool, am, wm, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if workers == 1 {
				serialNsPerOp = nsPerOp
			}
			if serialNsPerOp > 0 {
				b.ReportMetric(serialNsPerOp/nsPerOp, "speedup")
			}
		})
	}
}

// BenchmarkConnectorBatch sweeps the transfer batch size (ablation 3).
func BenchmarkConnectorBatch(b *testing.B) {
	rows := make([][]float32, 4096)
	for i := range rows {
		rows[i] = make([]float32, 28)
	}
	for _, batch := range []int{32, 256, 2048} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := connector.Transfer(connector.NewSliceSource(rows), 28, batch, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHNSWEf sweeps the search beam width (ablation 4).
func BenchmarkHNSWEf(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	h := ann.NewHNSW(32, ann.HNSWConfig{Seed: 18})
	vecs := make([][]float32, 4000)
	for i := range vecs {
		v := make([]float32, 32)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = v
		if err := h.Add(int64(i), v); err != nil {
			b.Fatal(err)
		}
	}
	for _, ef := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("ef=%d", ef), func(b *testing.B) {
			h.SetEfSearch(ef)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Search(vecs[i%len(vecs)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThreshold sweeps the adaptive optimizer's memory threshold for a
// mid-size model: high thresholds fuse everything into one UDF, low ones
// force the relation-centric path (ablation 5).
func BenchmarkThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	m := nn.MustModel("mid", []int{1, 512},
		nn.NewLinear(rng, 512, 512), nn.ReLU{}, nn.NewLinear(rng, 512, 16))
	x := data.Dense(20, 256, 512)
	for _, thr := range []int64{1 << 10, 1 << 22, 1 << 30} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			pool := benchPool(b, 2048)
			u := core.NewAdaptiveUDF(m, core.NewOptimizer(thr), pool, memlimit.Unlimited())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := u.Apply(x.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Extension benchmarks ----

// BenchmarkPipeline compares sequential whole-batch execution with the
// Sec. 5(2) streaming operator pipeline.
func BenchmarkPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	m := nn.CacheFFNN(rng, 196)
	x := data.Dense(22, 256, 196)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Forward(x.Clone())
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		p := udf.NewPipeline(m)
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(x, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkModelSerialization compares the full-precision and quantized
// model formats (Sec. 4 compression).
func BenchmarkModelSerialization(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	m := nn.FraudFC(rng, 512)
	b.Run("tbm1-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := nn.Save(&buf, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tbq1-quantized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := nn.SaveQuantized(&buf, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDedupStore measures block storage with and without sharing.
func BenchmarkDedupStore(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	w := tensor.New(128, 128)
	for i := range w.Data() {
		w.Data()[i] = float32(rng.NormFloat64())
	}
	b.Run("plain-store", func(b *testing.B) {
		pool := benchPool(b, 1024)
		for i := 0; i < b.N; i++ {
			if _, err := blocked.Store(pool, w, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dedup-store", func(b *testing.B) {
		pool := benchPool(b, 1024)
		ds, err := blocked.NewDedupStore(pool, 32, 0)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := ds.Store(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCache compares AoT-cached plan selection with fresh
// optimization (Sec. 2).
func BenchmarkPlanCache(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	m := nn.CacheFFNN(rng, 196)
	opt := core.NewOptimizer(64 << 20)
	b.Run("fresh-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := opt.Plan(m, 256); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aot-cached", func(b *testing.B) {
		pc, err := core.NewPlanCache(opt, m, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pc.PlanFor(256); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExactCache measures the hash-indexed zero-error cache (Sec. 5).
func BenchmarkExactCache(b *testing.B) {
	c := cache.NewExact()
	rng := rand.New(rand.NewSource(26))
	feats := make([][]float32, 1024)
	for i := range feats {
		v := make([]float32, 64)
		for j := range v {
			v[j] = rng.Float32()
		}
		feats[i] = v
		c.Insert(v, []float32{1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(feats[i%len(feats)]); !ok {
			b.Fatal("miss on inserted key")
		}
	}
}

// BenchmarkReplacementPolicy compares LRU and Clock page replacement under
// a scanning workload larger than the pool.
func BenchmarkReplacementPolicy(b *testing.B) {
	for _, policy := range []storage.Policy{storage.LRU, storage.Clock} {
		name := "lru"
		if policy == storage.Clock {
			name = "clock"
		}
		b.Run(name, func(b *testing.B) {
			d, err := storage.OpenDisk(filepath.Join(b.TempDir(), "pol.db"))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			pool := storage.NewBufferPoolWithPolicy(d, 16, policy)
			const pages = 128
			ids := make([]storage.PageID, pages)
			for i := range ids {
				f, err := pool.NewPage()
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = f.ID()
				pool.Unpin(f.ID(), true)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ids[i%pages]
				f, err := pool.Fetch(id)
				if err != nil {
					b.Fatal(err)
				}
				_ = f.Data()[0]
				pool.Unpin(id, false)
			}
		})
	}
}

// BenchmarkPredictServing measures the SQL-integrated PREDICT serving path
// end-to-end under concurrent clients: engine.Exec with the pipelined
// inference operator and, when enabled, the per-model ANN result cache.
// Cache cases pin the hit ratio across iterations with an admission cap:
// the warm-up query fills the cache up to the cap, after which further
// inserts are rejected, so every timed query sees the same hit mix.
// Reports rows served per second and the observed cache hit rate.
func BenchmarkPredictServing(b *testing.B) {
	const nRows, hidden, batch = 256, 1024, 32
	d := data.Fraud(11, nRows)
	rng := rand.New(rand.NewSource(12))
	model := nn.FraudFC(rng, hidden)
	query := fmt.Sprintf("SELECT id, PREDICT(%s, features) FROM txns", model.Name())

	open := func(b *testing.B, opts engine.Options) *engine.DB {
		b.Helper()
		db, err := engine.Open(filepath.Join(b.TempDir(), "bench.db"), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		rows, schema, err := d.FeatureRows()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.CreateTable("txns", schema); err != nil {
			b.Fatal(err)
		}
		if _, err := db.InsertRows("txns", rows); err != nil {
			b.Fatal(err)
		}
		if err := db.LoadModel(model, 0); err != nil {
			b.Fatal(err)
		}
		return db
	}

	run := func(b *testing.B, db *engine.DB) {
		// Warm-up fills the cache up to its admission cap (a no-op for
		// the uncached cases) so timed iterations see a steady hit mix.
		if _, err := db.Exec(query); err != nil {
			b.Fatal(err)
		}
		before := db.Stats()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				res, err := db.Exec(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != nRows {
					b.Fatalf("rows = %d", len(res.Rows))
				}
			}
		})
		b.StopTimer()
		after := db.Stats()
		rows := float64(b.N) * nRows
		b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
		served := after.CacheHits - before.CacheHits + after.CacheShared - before.CacheShared
		probes := served + after.CacheMisses - before.CacheMisses
		if probes > 0 {
			b.ReportMetric(float64(served)/float64(probes), "hit-rate")
		}
	}

	b.Run("serial_nocache", func(b *testing.B) {
		run(b, open(b, engine.Options{InferBatch: batch, DisablePredictPipeline: true}))
	})
	b.Run("pipelined_nocache", func(b *testing.B) {
		run(b, open(b, engine.Options{InferBatch: batch}))
	})
	for _, pct := range []int{0, 50, 100} {
		cap := nRows * pct / 100
		if pct == 0 {
			cap = 1 // cap ≈ 0: one admitted entry, everything else misses
		}
		b.Run(fmt.Sprintf("cached_hit%d", pct), func(b *testing.B) {
			run(b, open(b, engine.Options{
				InferBatch:            batch,
				ResultCache:           true,
				ResultCacheDistance:   1e-9,
				ResultCacheMaxEntries: cap,
			}))
		})
	}
}

// BenchmarkQuantizedPredict compares end-to-end PREDICT over Fraud-FC-256 in
// f32 against the int8-resident quantized twin (packed SWAR GEMM + columnar
// batch decode). The micro-batch matches the table width of the kernel
// benchmarks (256×28 × 28×256), so the end-to-end delta here is the kernel
// win minus everything the serving path adds around it.
func BenchmarkQuantizedPredict(b *testing.B) {
	const nRows, hidden, batch = 1024, 256, 256
	d := data.Fraud(13, nRows)
	rng := rand.New(rand.NewSource(14))
	model := nn.FraudFC(rng, hidden)

	open := func(b *testing.B) *engine.DB {
		b.Helper()
		db, err := engine.Open(filepath.Join(b.TempDir(), "bench.db"), engine.Options{InferBatch: batch})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		rows, schema, err := d.FeatureRows()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.CreateTable("txns", schema); err != nil {
			b.Fatal(err)
		}
		if _, err := db.InsertRows("txns", rows); err != nil {
			b.Fatal(err)
		}
		if err := db.LoadModel(model, 0); err != nil {
			b.Fatal(err)
		}
		return db
	}

	run := func(b *testing.B, query string) {
		db := open(b)
		if _, err := db.Exec(query); err != nil { // warm the pool
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Exec(query)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != nRows {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*nRows/b.Elapsed().Seconds(), "rows/s")
	}

	b.Run("f32", func(b *testing.B) {
		run(b, fmt.Sprintf("SELECT id, PREDICT(%s, features) FROM txns", model.Name()))
	})
	b.Run("quantized", func(b *testing.B) {
		run(b, fmt.Sprintf("SELECT id, PREDICT(%s, features) OPTIONS (quantized) FROM txns", model.Name()))
	})
}

// BenchmarkSnapshotReadUnderWrites measures the lock-free serving path:
// PREDICT over a snapshot-pinned scan, with and without a concurrent
// writer appending batches. Under the old two-phase locking path the
// writer's exclusive lock serialized every read behind it; with MVCC
// snapshot reads the two sub-benchmarks should be within noise of each
// other (the CI gate requires underwrites ≥ 0.8× readonly throughput).
// LIMIT pins the per-query work so writer-grown tables don't skew ns/op.
func BenchmarkSnapshotReadUnderWrites(b *testing.B) {
	const nRows, hidden, scanLimit = 2048, 32, 1024
	d := data.Fraud(17, nRows)
	rng := rand.New(rand.NewSource(18))
	model := nn.FraudFC(rng, hidden)
	query := fmt.Sprintf("SELECT id, PREDICT(%s, features) FROM txns LIMIT %d", model.Name(), scanLimit)

	open := func(b *testing.B) (*engine.DB, []table.Tuple) {
		b.Helper()
		db, err := engine.Open(filepath.Join(b.TempDir(), "bench.db"), engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		rows, schema, err := d.FeatureRows()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.CreateTable("txns", schema); err != nil {
			b.Fatal(err)
		}
		if _, err := db.InsertRows("txns", rows); err != nil {
			b.Fatal(err)
		}
		if err := db.LoadModel(model, 0); err != nil {
			b.Fatal(err)
		}
		return db, rows
	}

	read := func(b *testing.B, db *engine.DB) {
		if _, err := db.Exec(query); err != nil { // warm the pool
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Exec(query)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != scanLimit {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*scanLimit/b.Elapsed().Seconds(), "rows/s")
	}

	b.Run("readonly", func(b *testing.B) {
		db, _ := open(b)
		read(b, db)
	})
	b.Run("underwrites", func(b *testing.B) {
		db, rows := open(b)
		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A steady writer, throttled so it contends without saturating
			// the single CI core: 64-row committed batches, ~5ms apart.
			for !stop.Load() {
				if _, err := db.InsertRows("txns", rows[:64]); err != nil {
					b.Error(err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
		read(b, db)
		stop.Store(true)
		wg.Wait()
	})
}

// ---- PR 9: sharded scatter-gather scan ----

// BenchmarkShardedScan measures a full PREDICT table scan through the
// scatter-gather coordinator at 1, 2, and 4 shards. Each shard owns a
// hash slice of the rows and runs its subplan (decode, inference,
// projection) on its own engine, so on a multi-core host throughput
// should scale toward linear until the coordinator merge dominates; on a
// single-core runner the numbers are informational (the sub-benchmarks
// still validate bit-stable row counts through the merge).
func BenchmarkShardedScan(b *testing.B) {
	const nRows, hidden = 4096, 32
	d := data.Fraud(21, nRows)
	model := nn.FraudFC(rand.New(rand.NewSource(22)), hidden)
	query := fmt.Sprintf("SELECT id, PREDICT(%s, features) FROM txns ORDER BY id", model.Name())
	rows, schema, err := d.FeatureRows()
	if err != nil {
		b.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl, err := shard.NewLocalCluster(filepath.Join(b.TempDir(), "cluster"), shards, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { cl.Close() })
			ctx := context.Background()
			if _, err := cl.Exec(ctx, sql.Render(&sql.CreateTable{Name: "txns", Cols: schema.Cols}), nil); err != nil {
				b.Fatal(err)
			}
			ins := &sql.Insert{Table: "txns", Rows: make([][]sql.Literal, len(rows))}
			for i, r := range rows {
				lits := make([]sql.Literal, len(r))
				for j, v := range r {
					lits[j] = sql.Literal{Value: v}
				}
				ins.Rows[i] = lits
			}
			if _, err := cl.Exec(ctx, sql.Render(ins), nil); err != nil {
				b.Fatal(err)
			}
			if err := cl.LoadModel(model, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := cl.Exec(ctx, query, nil); err != nil { // warm pools
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Exec(ctx, query, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != nRows {
					b.Fatalf("rows = %d", len(res.Rows))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*nRows/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// ---- PR 10: content-addressed weight-block store ----

// BenchmarkModelLoadDedup measures many-model capacity through the
// content-addressed block store: each iteration loads 8 fine-tuned
// Fraud-FC variants (shared trunk, fresh classifier head) against a
// resident base model, then drops them. Reported metrics feed the CI
// dedup gate: marginal_frac_of_model — the resident bytes one extra
// variant costs, as a fraction of a full model — must stay at or under
// 0.30, and dedup_hit_rate is the block-level hit rate across the run.
func BenchmarkModelLoadDedup(b *testing.B) {
	const hidden, variants = 2048, 8
	db, err := engine.Open(filepath.Join(b.TempDir(), "bench.db"), engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(23))
	base := nn.FraudFC(rng, hidden)
	if err := db.LoadModel(base, 0); err != nil {
		b.Fatal(err)
	}
	single := db.BlockStats().ResidentBytes
	vs := make([]*nn.Model, variants)
	for i := range vs {
		m, err := nn.NewModel(fmt.Sprintf("Fraud-FC-v%d", i), []int{1, 28},
			base.Layers[0], base.Layers[1],
			nn.NewLinear(rng, hidden, 2), nn.Softmax{},
		)
		if err != nil {
			b.Fatal(err)
		}
		vs[i] = m
	}
	var peak int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vs {
			if err := db.LoadModel(v, 0); err != nil {
				b.Fatal(err)
			}
		}
		peak = db.BlockStats().ResidentBytes
		for _, v := range vs {
			if err := db.DropModel(v.Name()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	st := db.BlockStats()
	marginal := float64(peak-single) / variants
	b.ReportMetric(marginal, "marginal_bytes_per_variant")
	b.ReportMetric(marginal/float64(single), "marginal_frac_of_model")
	b.ReportMetric(float64(peak)/float64(variants+1), "resident_bytes_per_model")
	b.ReportMetric(float64(st.DedupHits)/float64(st.DedupHits+st.BlocksAdded), "dedup_hit_rate")
}
