// Command tensorbase is an interactive SQL shell over the embedded engine.
// It supports the engine's SQL subset (CREATE TABLE / INSERT / SELECT with
// PREDICT) plus shell commands:
//
//	\load <file.tbm>        load a TBM1 model file
//	\models                 list loaded models
//	\tables                 list tables
//	\explain <model> <n>    show the adaptive plan for batch size n
//	\quit
//
// With --serve ADDR the process also exposes a session-based SQL endpoint
// (POST /query, JSON in/out; see internal/server), /metrics (Prometheus
// text format), /debug/pprof, and /healthz on ADDR, and keeps serving after
// stdin closes — pipe SQL in to seed the database, then query over HTTP.
// --demo seeds a feature table and model so PREDICT works out of the box.
// With --slow-query D, statements slower than D are logged to stderr with
// their per-operator span summary.
//
// Replication (see internal/repl):
//
//	--repl-listen ADDR      stream committed WAL groups to replicas dialing ADDR
//	--replicate-from ADDR   run as a read replica of the primary at ADDR
//	                        (writes are rejected; reads serve the applied CSN)
//	--replicas N            spin up N in-process replicas and route HTTP
//	                        reads across them (single-process cluster)
//
// Sharding (see internal/shard):
//
//	--shards N              hash-partition tables by their first column
//	                        across N in-process shard engines under
//	                        <db>.shards/; reads that pin the shard key run
//	                        on one shard, everything else scatter-gathers
//
// SIGTERM with --serve drains gracefully: new statements get 503 +
// Retry-After, in-flight ones finish, the engine checkpoints, and the
// process exits 0.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"tensorbase/internal/data"
	"tensorbase/internal/engine"
	"tensorbase/internal/exec"
	"tensorbase/internal/nn"
	"tensorbase/internal/obs"
	"tensorbase/internal/repl"
	"tensorbase/internal/retry"
	"tensorbase/internal/server"
	"tensorbase/internal/shard"
	"tensorbase/internal/sql"
	"tensorbase/internal/table"
)

func main() {
	path := flag.String("db", "tensorbase.db", "database file")
	memBudget := flag.Int64("mem", 0, "whole-tensor memory budget in bytes (0 = unlimited)")
	threshold := flag.Int64("threshold", 2<<30, "optimizer memory-limit threshold in bytes")
	cacheDist := flag.Float64("cache", -1, "enable per-model result caching with this squared-L2 distance threshold (0 = exact repeats only, negative = off)")
	cacheMax := flag.Int("cache-max", 0, "result cache admission cap in entries (0 = unbounded)")
	noPipeline := flag.Bool("no-pipeline", false, "disable pipelined PREDICT batching")
	quantized := flag.Bool("quantized", false, "serve every PREDICT from the model's int8-resident quantized twin (as if each query said OPTIONS (quantized))")
	noCoalesce := flag.Bool("no-coalesce", false, "disable cross-query PREDICT coalescing")
	coalesceWindow := flag.Duration("coalesce-window", 0, "how long a PREDICT leader waits for other queries to join its model invocation (0 = default)")
	serve := flag.String("serve", "", "serve SQL-over-HTTP (/query), /metrics, /debug/pprof, and /healthz on this address (e.g. :9090); keeps serving after stdin closes")
	maxSessions := flag.Int("max-sessions", 0, "SQL-over-HTTP session cap (0 = default)")
	demo := flag.Bool("demo", false, `seed a demo feature table ("txns") and model ("Fraud-FC-32") so PREDICT works out of the box`)
	slowQuery := flag.Duration("slow-query", 0, "log statements slower than this to stderr with per-operator spans (0 = off)")
	replListen := flag.String("repl-listen", "", "accept replica log-shipping connections on this address (e.g. :9191)")
	replicateFrom := flag.String("replicate-from", "", "run as a read replica following the primary at this address; writes are rejected")
	nReplicas := flag.Int("replicas", 0, "spin up N in-process read replicas and route HTTP reads across them")
	nShards := flag.Int("shards", 0, "hash-shard tables across N in-process engines under <db>.shards/ and scatter-gather queries over them")
	flag.Parse()

	eopts := engine.Options{
		MemoryBudget:           *memBudget,
		MemoryThreshold:        *threshold,
		ResultCache:            *cacheDist >= 0,
		ResultCacheDistance:    max(*cacheDist, 0),
		ResultCacheMaxEntries:  *cacheMax,
		DisablePredictPipeline: *noPipeline,
		PredictQuantized:       *quantized,
		DisablePredictCoalesce: *noCoalesce,
		PredictCoalesceWindow:  *coalesceWindow,
		SlowQueryThreshold:     *slowQuery,
	}

	// Replica mode: the follower engine is owned by the replication loop;
	// local statements read the applied snapshot, writes are rejected.
	var follower *repl.Replica
	var db *engine.DB
	var cluster *shard.Cluster
	var shellSess *shard.Session
	if *nShards > 1 {
		if *replicateFrom != "" || *replListen != "" || *nReplicas > 0 {
			fmt.Fprintln(os.Stderr, "tensorbase: --shards does not combine with replication flags")
			os.Exit(1)
		}
		cl, err := shard.NewLocalCluster(*path+".shards", *nShards, eopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tensorbase:", err)
			os.Exit(1)
		}
		cluster = cl
		defer cl.Close()
		shellSess = cl.NewSession()
		// Node 0 anchors the session/metrics plumbing; statements go
		// through the cluster.
		db = cl.Nodes()[0].(*shard.LocalNode).DB()
		fmt.Fprintf(os.Stderr, "sharding across %d in-process engines under %s.shards\n", *nShards, *path)
	} else if *replicateFrom != "" {
		addr := *replicateFrom
		rep, err := repl.NewReplica(*path, repl.ReplicaOptions{
			Name:   "replica@" + addr,
			Dial:   func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Engine: eopts,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tensorbase:", err)
			os.Exit(1)
		}
		follower = rep
		defer rep.Close()
		db = rep.DB()
		fmt.Fprintf(os.Stderr, "replicating from %s (reads only; applied CSN %d)\n", addr, rep.AppliedCSN())
	} else {
		var err error
		db, err = engine.Open(*path, eopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tensorbase:", err)
			os.Exit(1)
		}
		defer db.Close()
	}

	if *demo {
		if follower != nil {
			fmt.Fprintln(os.Stderr, "tensorbase: --demo cannot seed a read replica")
			os.Exit(1)
		}
		seed := seedDemo
		if cluster != nil {
			seed = func(*engine.DB) error { return seedDemoCluster(cluster) }
		}
		if err := seed(db); err != nil {
			fmt.Fprintln(os.Stderr, "tensorbase: demo seed:", err)
			db.Close()
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, `demo: seeded table "txns" (4096 rows) and model "Fraud-FC-32"`)
	}

	// Primary-side replication: ship committed groups to replicas, either
	// over TCP (--repl-listen) or to in-process followers (--replicas).
	var primary *repl.Primary
	if (*replListen != "" || *nReplicas > 0) && follower == nil {
		primary = repl.NewPrimary(db, repl.PrimaryOptions{})
		defer primary.Close()
	}
	if *replListen != "" {
		if primary == nil {
			fmt.Fprintln(os.Stderr, "tensorbase: --repl-listen is a primary flag; drop it in --replicate-from mode")
			os.Exit(1)
		}
		rln, err := net.Listen("tcp", *replListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tensorbase: repl-listen:", err)
			os.Exit(1)
		}
		defer rln.Close()
		fmt.Fprintf(os.Stderr, "shipping commits to replicas on %s\n", rln.Addr())
		go primary.Serve(rln)
	}
	var nodes []server.ReadNode
	for i := 0; i < *nReplicas && primary != nil; i++ {
		p := primary
		rep, err := repl.NewReplica(fmt.Sprintf("%s.replica-%d", *path, i), repl.ReplicaOptions{
			Name: fmt.Sprintf("replica-%d", i),
			Dial: func() (net.Conn, error) {
				c1, c2 := net.Pipe()
				p.Attach(c2, nil)
				return c1, nil
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tensorbase: replica:", err)
			os.Exit(1)
		}
		defer rep.Close()
		nodes = append(nodes, rep)
	}
	if len(nodes) > 0 {
		fmt.Fprintf(os.Stderr, "routing reads across %d in-process replicas\n", len(nodes))
	}

	var srv *server.Server
	if *serve != "" {
		obs.RegisterRuntime(db.Registry())
		srv = server.New(db, server.Options{MaxSessions: *maxSessions})
		defer srv.Close()
		if len(nodes) > 0 {
			srv.SetRouter(server.NewRouter(db, nodes, retry.Policy{}))
		}
		if cluster != nil {
			srv.SetCluster(cluster)
		}
		mux := obs.Mux(db.Registry())
		srv.Attach(mux)
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tensorbase: serve:", err)
			db.Close()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving /query, /metrics, and /debug/pprof on http://%s\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	// SIGTERM drains gracefully: refuse new statements (503 + Retry-After),
	// let in-flight ones finish, checkpoint, exit 0.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	go func() {
		<-term
		fmt.Fprintln(os.Stderr, "SIGTERM: draining")
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "tensorbase: drain:", err)
			}
			cancel()
		}
		switch {
		case follower != nil:
			follower.Close()
		case cluster != nil:
			cluster.Close()
		default:
			db.Close()
		}
		os.Exit(0)
	}()

	fmt.Println("tensorbase — serving deep learning models from a relational database")
	fmt.Println(`type SQL, or \help`)

	// Ctrl-C during a query cancels that query (the prompt comes back);
	// Ctrl-C with nothing in flight — or a second one while the cancelled
	// query is still unwinding — exits the shell.
	var inflight atomic.Pointer[context.CancelFunc]
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		for range sigc {
			if cancel := inflight.Swap(nil); cancel != nil {
				fmt.Fprintln(os.Stderr, "\ncancelling query (^C again to exit)")
				(*cancel)()
				continue
			}
			fmt.Fprintln(os.Stderr, "\ninterrupt")
			if cluster != nil {
				cluster.Close()
			} else {
				db.Close()
			}
			os.Exit(130)
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	eof := false
repl:
	for {
		fmt.Print("tb> ")
		if !sc.Scan() {
			eof = true
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, `\`) {
			if shellCommand(db, line) {
				break repl
			}
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		inflight.Store(&cancel)
		var res *engine.Result
		var err error
		if cluster != nil {
			res, err = cluster.Exec(ctx, line, shellSess)
		} else {
			res, err = db.QueryContext(ctx, line)
		}
		inflight.Store(nil)
		cancel()
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
	// End of piped input with --serve keeps the export endpoints alive so
	// the seeded database can be scraped; \quit always exits.
	if eof && *serve != "" {
		fmt.Fprintln(os.Stderr, "stdin closed; metrics endpoint still serving (interrupt to exit)")
		select {}
	}
}

// seedDemo creates a fraud feature table and loads a small trained
// classifier, so a --serve deployment can take PREDICT queries immediately
// (the CI smoke test drives this). The table is large enough that a full
// scan spans many PREDICT micro-batches, giving concurrent queries a
// realistic chance to coalesce.
func seedDemo(db *engine.DB) error {
	d := data.Fraud(1, 4096)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		return err
	}
	if _, err := db.CreateTable("txns", schema); err != nil {
		return err
	}
	if _, err := db.InsertRows("txns", rows); err != nil {
		return err
	}
	m := nn.FraudFC(rand.New(rand.NewSource(2)), 32)
	if _, err := nn.Train(m, d.X, d.Labels, nn.TrainConfig{Epochs: 3, BatchSize: 32, LR: 0.05, Seed: 3}); err != nil {
		return err
	}
	return db.LoadModel(m, 0.9)
}

// seedDemoCluster seeds the demo through the shard coordinator: the DDL
// broadcasts, the rows hash-split on id, and the model loads onto every
// shard so pushed-down PREDICT subplans run next to their slice of data.
func seedDemoCluster(cl *shard.Cluster) error {
	d := data.Fraud(1, 4096)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		return err
	}
	ctx := context.Background()
	create := &sql.CreateTable{Name: "txns", Cols: schema.Cols}
	if _, err := cl.Exec(ctx, sql.Render(create), nil); err != nil {
		return err
	}
	ins := &sql.Insert{Table: "txns", Rows: make([][]sql.Literal, len(rows))}
	for i, r := range rows {
		lits := make([]sql.Literal, len(r))
		for j, v := range r {
			lits[j] = sql.Literal{Value: v}
		}
		ins.Rows[i] = lits
	}
	if _, err := cl.Exec(ctx, sql.Render(ins), nil); err != nil {
		return err
	}
	m := nn.FraudFC(rand.New(rand.NewSource(2)), 32)
	if _, err := nn.Train(m, d.X, d.Labels, nn.TrainConfig{Epochs: 3, BatchSize: 32, LR: 0.05, Seed: 3}); err != nil {
		return err
	}
	return cl.LoadModel(m, 0.9)
}

// shellCommand handles backslash commands; it returns true to exit.
func shellCommand(db *engine.DB, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		return true
	case `\help`:
		fmt.Println(`SQL: CREATE TABLE t (a INT, f VECTOR) | INSERT INTO t VALUES (1, [1,2]) |`)
		fmt.Println(`     SELECT a, PREDICT(model, f) FROM t WHERE a > 0 ORDER BY a LIMIT 10 | DROP TABLE t`)
		fmt.Println(`shell: \load <file.tbm>  \models  \tables  \explain <model> <batch>`)
		fmt.Println(`       \lower <model> <batch>  \profile <select...>  \stats  \quit`)
	case `\stats`:
		s := db.Stats()
		fmt.Printf("pool: %d hits, %d misses, %d evictions | disk: %d reads, %d writes | mem peak: %d KiB\n",
			s.PoolHits, s.PoolMisses, s.PoolEvictions, s.DiskReads, s.DiskWrites, s.MemPeak>>10)
		fmt.Printf("predict: %d batches (%d all-hit), %d model calls | cache: %d hits, %d misses, %d shared | pipeline: %d fills, %d stalls\n",
			s.PredictBatches, s.BatchesAllHit, s.PredictUDFCalls,
			s.CacheHits, s.CacheMisses, s.CacheShared, s.PipelineFills, s.PipelineStalls)
	case `\lower`:
		if len(fields) != 3 {
			fmt.Println(`usage: \lower <model> <batch>`)
			return false
		}
		batch, err := strconv.Atoi(fields[2])
		if err != nil {
			fmt.Println("error: bad batch size")
			return false
		}
		dot, err := db.LowerPredict(fields[1], batch)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(dot)
	case `\profile`:
		if len(fields) < 2 {
			fmt.Println(`usage: \profile SELECT ...`)
			return false
		}
		res, stats, err := db.ExecProfiled(strings.TrimSpace(strings.TrimPrefix(line, `\profile`)))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		printResult(res)
		fmt.Print(exec.FormatProfile(stats))
	case `\tables`:
		for _, t := range db.Catalog().Tables() {
			fmt.Println(t)
		}
	case `\models`:
		for _, m := range db.Catalog().Models() {
			fmt.Println(m)
		}
	case `\load`:
		if len(fields) != 2 {
			fmt.Println(`usage: \load <file.tbm>`)
			return false
		}
		m, err := db.LoadModelFile(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("loaded %s (%d layers)\n", m.Name(), len(m.Layers))
	case `\explain`:
		if len(fields) != 3 {
			fmt.Println(`usage: \explain <model> <batch>`)
			return false
		}
		batch, err := strconv.Atoi(fields[2])
		if err != nil {
			fmt.Println("error: bad batch size")
			return false
		}
		s, err := db.ExplainPredict(fields[1], batch)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(s)
	default:
		fmt.Println("unknown command; try \\help")
	}
	return false
}

func printResult(res *engine.Result) {
	if res.Schema == nil {
		fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
		return
	}
	var names []string
	for _, c := range res.Schema.Cols {
		names = append(names, c.Name)
	}
	fmt.Println(strings.Join(names, " | "))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatValue(v)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func formatValue(v table.Value) string {
	if v.Type == table.FloatVec && len(v.Vec) > 8 {
		return fmt.Sprintf("vec[%d]", len(v.Vec))
	}
	return v.String()
}
