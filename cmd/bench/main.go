// Command bench regenerates the paper's evaluation artifacts: the model zoo
// (Tables 1–2), the small-model latency comparisons (Figures 2–3), the
// large-scale OOM table (Table 3), the model decomposition + push-down
// speedup (Sec. 7.2.1), and the inference-result cache trade-off
// (Sec. 7.2.2).
//
// Usage:
//
//	bench -exp all            # everything, full scale
//	bench -exp table3 -quick  # one experiment, CI scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tensorbase/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|models|fig2|fig3|table3|pushdown|cache")
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	seed := flag.Int64("seed", 7, "data generation seed")
	dir := flag.String("dir", "", "directory for database files (default: temp)")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Dir: *dir}
	if err := run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiments.Config) error {
	type driver struct {
		name string
		fn   func(experiments.Config) ([]experiments.Row, error)
	}
	drivers := []driver{
		{"fig2", experiments.Fig2},
		{"fig3", experiments.Fig3},
		{"table3", experiments.Table3},
		{"pushdown", experiments.Pushdown},
		{"cache", experiments.CacheExp},
	}

	if exp == "all" || exp == "models" {
		zoo, err := experiments.ModelZoo(cfg)
		if err != nil {
			return err
		}
		fmt.Println(zoo)
		if exp == "models" {
			return nil
		}
	}
	ran := false
	for _, d := range drivers {
		if exp != "all" && exp != d.name {
			continue
		}
		ran = true
		fmt.Printf("== %s ==\n", d.name)
		start := time.Now()
		rows, err := d.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
		fmt.Print(experiments.Format(rows))
		fmt.Printf("(%s in %s)\n\n", d.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran && exp != "models" {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
