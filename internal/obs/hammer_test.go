package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentMetricsHammer mutates counters, gauges, and histograms from
// many goroutines while the registry is scraped (WritePrometheus) and
// snapshotted concurrently — the satellite race test for the /metrics
// surface. Run under -race via the obs entry in the race tier.
func TestConcurrentMetricsHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_seconds", "", LatencyBuckets)
	var pulled int64 = 0
	r.CounterFunc("hammer_pulled_total", "", func() float64 { return float64(pulled) })

	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: render and snapshot in a loop until the writers finish.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				_ = r.Snapshot()
			}
		}()
	}
	// A registrar racing get-or-create against the scrapers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perG; i++ {
			r.Counter("hammer_total", "").Inc()
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := c.Value(); got != (writers+1)*perG {
		t.Fatalf("counter = %d, want %d", got, (writers+1)*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Fatalf("histogram count = %d, want %d", got, writers*perG)
	}
	s := r.Snapshot()
	if s.Counter("hammer_total") != (writers+1)*perG {
		t.Fatalf("snapshot counter = %d", s.Counter("hammer_total"))
	}
}
