// Package obs is the engine's observability subsystem: an allocation-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms), a slow-query log, and an HTTP export surface (Prometheus
// text format plus pprof).
//
// The registry follows a pull model for the engine's pre-existing
// per-component counters: the storage, cache, udf, and parallel packages
// keep their own atomics, and the engine registers closures
// (CounterFunc/GaugeFunc) that read them at scrape time. The hot paths
// therefore pay nothing new; only metrics owned directly by the engine
// (query counts, the latency histogram) are pushed, and those are one or
// two atomic adds per query. Metric handles are resolved once at
// registration — Observe/Inc/Add never touch a map or take a lock.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use, but counters are normally created through Registry.Counter so they
// render on /metrics.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter contract; Add does not
// enforce it, scrapers do).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyBuckets is the default histogram bucketing for query latencies:
// 100µs to 10s, roughly 2.5× per step. Durations above the last bound land
// in the implicit +Inf bucket.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Buckets are chosen at
// construction and never reallocated, so Observe is a bucket search plus
// three atomic adds — safe to call from any number of goroutines with no
// coordination.
type Histogram struct {
	bounds []float64      // ascending upper bounds, in seconds
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Int64   // total observed time in nanoseconds
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	// Linear scan: bucket counts are small (≤ ~20) and the slice is hot in
	// cache; this beats binary search at these sizes and allocates nothing.
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// snapshot returns a consistent-enough copy for rendering (each bucket is
// individually atomic; cross-bucket skew is acceptable for monitoring).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds in seconds; Counts has one extra +Inf slot
	Counts []int64
	Count  int64
	Sum    time.Duration
}

// metric kinds, which decide the Prometheus TYPE line and the snapshot map
// a metric lands in.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

type entry struct {
	name, help string
	kind       kind
	base       string // metric family for labeled series ("" = name)
	counter    *Counter
	gauge      *Gauge
	fn         func() float64
	hist       *Histogram
}

// family returns the name HELP/TYPE lines are emitted under.
func (e *entry) family() string {
	if e.base != "" {
		return e.base
	}
	return e.name
}

// Registry holds named metrics and renders them. Registration takes a lock;
// the returned handles are lock-free. Re-registering a name returns the
// existing metric (so independent components can share a counter), but
// re-registering under a different kind panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*entry
	ordered []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

func (r *Registry) register(name, help string, k kind, build func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return e
	}
	e := build()
	e.name, e.help, e.kind = name, help, k
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func() *entry {
		return &entry{counter: &Counter{}}
	}).counter
}

// CounterLabeled returns the counter for one labeled series of a metric
// family, e.g. CounterLabeled("tensorbase_http_rejected_total",
// `reason="admission"`, "..."). Each (name, labels) pair is its own
// counter; the family shares one HELP/TYPE block on /metrics when its
// series are registered consecutively. labels must be valid Prometheus
// label syntax without the braces.
func (r *Registry) CounterLabeled(name, labels, help string) *Counter {
	key := name
	if labels != "" {
		key = name + "{" + labels + "}"
	}
	return r.register(key, help, kindCounter, func() *entry {
		return &entry{counter: &Counter{}, base: name}
	}).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func() *entry {
		return &entry{gauge: &Gauge{}}
	}).gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the pull-model absorption of counters owned by other packages.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc, func() *entry {
		return &entry{fn: fn}
	})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, func() *entry {
		return &entry{fn: fn}
	})
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (in seconds) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, func() *entry {
		return &entry{hist: newHistogram(bounds)}
	}).hist
}

// entries returns a stable copy of the registration list.
func (r *Registry) entries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// Snapshot is a point-in-time view of every registered metric, the
// programmatic twin of the /metrics endpoint (DB.Metrics returns one).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Counter returns a snapshotted counter value (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a snapshotted gauge value (0 if absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Snapshot captures every metric. Func metrics are evaluated here, outside
// the registry lock, so a slow provider cannot block registration.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range r.entries() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.counter.Value()
		case kindCounterFunc:
			s.Counters[e.name] = int64(e.fn())
		case kindGauge:
			s.Gauges[e.name] = float64(e.gauge.Value())
		case kindGaugeFunc:
			s.Gauges[e.name] = e.fn()
		case kindHistogram:
			s.Histograms[e.name] = e.hist.snapshot()
		}
	}
	return s
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, e := range r.entries() {
		typ := "counter"
		switch e.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		// Labeled series of one family registered consecutively share one
		// HELP/TYPE block.
		if fam := e.family(); fam != lastFamily {
			lastFamily = fam
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.counter.Value())
		case kindCounterFunc, kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.fn()))
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.gauge.Value())
		case kindHistogram:
			err = writeHistogram(w, e.name, e.hist.snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(s.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

// formatFloat renders a float the way Prometheus clients expect: no
// exponent for common magnitudes, no trailing zeros.
func formatFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return strings.TrimSuffix(s, ".0")
}
