package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	// Re-registration returns the same metric.
	if r.Counter("c_total", "again") != c {
		t.Fatal("re-registered counter is a different instance")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0 (≤1ms)
	h.Observe(5 * time.Millisecond)   // bucket 1 (≤10ms)
	h.Observe(50 * time.Millisecond)  // bucket 2 (≤100ms)
	h.Observe(2 * time.Second)        // +Inf bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	s := h.snapshot()
	want := []int64{1, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum < 2*time.Second {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total", "").Add(3)
	r.Gauge("inflight", "").Set(2)
	r.CounterFunc("pulled_total", "", func() float64 { return 42 })
	r.GaugeFunc("pulled_gauge", "", func() float64 { return 1.5 })
	r.Histogram("h_seconds", "", []float64{1}).Observe(time.Second / 2)

	s := r.Snapshot()
	if s.Counter("queries_total") != 3 {
		t.Fatalf("counter snapshot = %d", s.Counter("queries_total"))
	}
	if s.Counter("pulled_total") != 42 {
		t.Fatalf("counter func snapshot = %d", s.Counter("pulled_total"))
	}
	if s.Gauge("inflight") != 2 || s.Gauge("pulled_gauge") != 1.5 {
		t.Fatalf("gauge snapshots = %v %v", s.Gauge("inflight"), s.Gauge("pulled_gauge"))
	}
	if hs, ok := s.Histograms["h_seconds"]; !ok || hs.Count != 1 {
		t.Fatalf("histogram snapshot = %+v ok=%v", s.Histograms["h_seconds"], ok)
	}
	if s.Counter("missing") != 0 || s.Gauge("missing") != 0 {
		t.Fatal("missing metrics must read as zero")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("tb_queries_total", "queries executed").Add(7)
	r.GaugeFunc("tb_tokens_in_use", "compute tokens held", func() float64 { return 3 })
	h := r.Histogram("tb_query_seconds", "query latency", []float64{0.01, 0.1})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(5 * time.Second)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP tb_queries_total queries executed",
		"# TYPE tb_queries_total counter",
		"tb_queries_total 7",
		"# TYPE tb_tokens_in_use gauge",
		"tb_tokens_in_use 3",
		"# TYPE tb_query_seconds histogram",
		`tb_query_seconds_bucket{le="0.01"} 1`,
		`tb_query_seconds_bucket{le="0.1"} 2`,
		`tb_query_seconds_bucket{le="+Inf"} 3`,
		"tb_query_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterLabeled(t *testing.T) {
	r := NewRegistry()
	a := r.CounterLabeled("tb_rejected_total", `reason="admission"`, "refusals by reason")
	b := r.CounterLabeled("tb_rejected_total", `reason="draining"`, "refusals by reason")
	a.Add(3)
	b.Inc()
	// Each (name, labels) pair is its own series…
	if r.CounterLabeled("tb_rejected_total", `reason="admission"`, "") != a {
		t.Fatal("re-registering a labeled series returned a new counter")
	}
	if a == b {
		t.Fatal("distinct label sets share a counter")
	}
	// …snapshotted under its full key.
	s := r.Snapshot()
	if got := s.Counter(`tb_rejected_total{reason="admission"}`); got != 3 {
		t.Fatalf("admission series = %d, want 3", got)
	}
	if got := s.Counter(`tb_rejected_total{reason="draining"}`); got != 1 {
		t.Fatalf("draining series = %d, want 1", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP tb_rejected_total refusals by reason",
		`tb_rejected_total{reason="admission"} 3`,
		`tb_rejected_total{reason="draining"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Consecutive series of one family share a single TYPE line.
	if n := strings.Count(out, "# TYPE tb_rejected_total counter"); n != 1 {
		t.Fatalf("TYPE lines for the family = %d, want 1:\n%s", n, out)
	}
}
