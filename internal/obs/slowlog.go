package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// maxStmtLen bounds how much of a statement one slow-query line carries.
const maxStmtLen = 512

// SlowLog writes one line per query whose wall time crosses a threshold.
// It is safe for concurrent use; lines are written atomically with respect
// to each other. A nil *SlowLog is valid and records nothing, so callers
// hold a possibly-nil log and pay one nil check per query.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	counter   *Counter // optional: incremented once per logged query
}

// NewSlowLog returns a log that writes queries slower than threshold to w,
// bumping counter (if non-nil) once per line. A non-positive threshold or
// nil writer disables the log (returns nil).
func NewSlowLog(w io.Writer, threshold time.Duration, counter *Counter) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{w: w, threshold: threshold, counter: counter}
}

// Threshold returns the configured threshold (0 for a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe logs the query if elapsed crossed the threshold, returning
// whether a line was written. summary is the statement's span summary
// (per-operator rows/times); it may be empty for non-SELECT statements.
func (l *SlowLog) Observe(query string, elapsed time.Duration, rows int64, summary string) bool {
	if l == nil || elapsed < l.threshold {
		return false
	}
	if l.counter != nil {
		l.counter.Inc()
	}
	stmt := strings.Join(strings.Fields(query), " ")
	if len(stmt) > maxStmtLen {
		stmt = stmt[:maxStmtLen] + "…"
	}
	line := fmt.Sprintf("slow-query elapsed=%s rows=%d stmt=%q", elapsed.Round(time.Microsecond), rows, stmt)
	if summary != "" {
		line += " spans=[" + summary + "]"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintln(l.w, line)
	return true
}
