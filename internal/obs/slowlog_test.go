package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	var sb strings.Builder
	r := NewRegistry()
	c := r.Counter("slow_total", "")
	l := NewSlowLog(&sb, 10*time.Millisecond, c)

	if l.Observe("SELECT fast", 2*time.Millisecond, 1, "") {
		t.Fatal("fast query must not be logged")
	}
	if !l.Observe("SELECT  x\n FROM t", 50*time.Millisecond, 7, "scan 7r 40ms") {
		t.Fatal("slow query must be logged")
	}
	out := sb.String()
	if n := strings.Count(out, "slow-query"); n != 1 {
		t.Fatalf("want exactly one slow-query line, got %d:\n%s", n, out)
	}
	for _, want := range []string{`stmt="SELECT x FROM t"`, "rows=7", "spans=[scan 7r 40ms]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("line missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 1 {
		t.Fatalf("slow counter = %d, want 1", c.Value())
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if NewSlowLog(nil, time.Second, nil) != nil {
		t.Fatal("nil writer must disable the log")
	}
	var sb strings.Builder
	if NewSlowLog(&sb, 0, nil) != nil {
		t.Fatal("zero threshold must disable the log")
	}
	var l *SlowLog
	if l.Observe("q", time.Hour, 0, "") { // nil receiver is a no-op
		t.Fatal("nil log must not report logging")
	}
	if l.Threshold() != 0 {
		t.Fatal("nil log threshold must be 0")
	}
}

func TestSlowLogTruncatesStatement(t *testing.T) {
	var sb strings.Builder
	l := NewSlowLog(&sb, time.Nanosecond, nil)
	long := strings.Repeat("x", 2*maxStmtLen)
	l.Observe("SELECT "+long, time.Second, 0, "")
	if len(sb.String()) > maxStmtLen+200 {
		t.Fatalf("line not truncated: %d bytes", len(sb.String()))
	}
	if !strings.Contains(sb.String(), "…") {
		t.Fatal("truncated statement must carry an ellipsis")
	}
}
