package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("tensorbase_queries_total", "queries").Add(5)
	RegisterRuntime(r)
	srv := httptest.NewServer(Mux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "tensorbase_queries_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "go_goroutines") {
		t.Fatalf("/metrics missing runtime gauges:\n%s", body)
	}

	if code, body = get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", code)
	}
}
