package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// Handler serves the registry in Prometheus text format at any path.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Mux returns the engine's debug mux: /metrics (Prometheus text),
// /debug/pprof/* (the standard Go profiler endpoints, on this mux rather
// than http.DefaultServeMux), and /healthz.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// RegisterRuntime adds process-level gauges (goroutines, heap) to r.
// runtime.ReadMemStats stops the world briefly, but only at scrape time.
func RegisterRuntime(r *Registry) {
	r.GaugeFunc("go_goroutines", "number of live goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "bytes of allocated heap objects", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
}
