package nn

import (
	"fmt"

	"tensorbase/internal/tensor"
)

// Model is a named sequence of layers executed front to back.
type Model struct {
	ModelName string
	Layers    []Layer
	// InShape is the per-sample input shape with a symbolic batch
	// dimension of 1 in position 0 (e.g. {1, 28} for Fraud-FC,
	// {1, 112, 112, 64} for DeepBench-CONV1).
	InShape []int
}

// NewModel returns a model over the given layers and validates that the
// layer shapes compose.
func NewModel(name string, inShape []int, layers ...Layer) (*Model, error) {
	m := &Model{ModelName: name, Layers: layers, InShape: append([]int(nil), inShape...)}
	if _, err := m.OutShape(1); err != nil {
		return nil, fmt.Errorf("nn: model %q: %w", name, err)
	}
	return m, nil
}

// MustModel is NewModel that panics on error, for static model-zoo tables.
func MustModel(name string, inShape []int, layers ...Layer) *Model {
	m, err := NewModel(name, inShape, layers...)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the model's name.
func (m *Model) Name() string { return m.ModelName }

// batchShape returns InShape with the batch dimension set to n.
func (m *Model) batchShape(n int) []int {
	s := append([]int(nil), m.InShape...)
	s[0] = n
	return s
}

// OutShape returns the output shape for a batch of the given size.
func (m *Model) OutShape(batch int) ([]int, error) {
	shape := m.batchShape(batch)
	for i, l := range m.Layers {
		next, err := l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, l.Name(), err)
		}
		shape = next
	}
	return shape, nil
}

// Forward runs the full model over a batch.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardFrom runs layers [from, len) over x. It is used by the fine-grained
// UDF execution paths, where earlier operators have already been evaluated
// (possibly relation-centrically).
func (m *Model) ForwardFrom(x *tensor.Tensor, from int) *tensor.Tensor {
	for _, l := range m.Layers[from:] {
		x = l.Forward(x)
	}
	return x
}

// ParamBytes returns the total parameter size of the model in bytes.
func (m *Model) ParamBytes() int64 {
	var b int64
	for _, l := range m.Layers {
		b += l.ParamBytes()
	}
	return b
}

// OpEstimate describes one operator's estimated working set for a batch
// size — the quantity the paper's rule-based optimizer compares against its
// memory-limit threshold.
type OpEstimate struct {
	Index    int    // layer index within the model
	Op       string // layer name
	InShape  []int
	OutShape []int
	Bytes    int64
}

// MemEstimates returns the per-operator memory estimates for a batch size.
func (m *Model) MemEstimates(batch int) ([]OpEstimate, error) {
	shape := m.batchShape(batch)
	ests := make([]OpEstimate, 0, len(m.Layers))
	for i, l := range m.Layers {
		next, err := l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, l.Name(), err)
		}
		ests = append(ests, OpEstimate{
			Index:    i,
			Op:       l.Name(),
			InShape:  shape,
			OutShape: next,
			Bytes:    l.MemEstimate(shape),
		})
		shape = next
	}
	return ests, nil
}

// MaxOpBytes returns the largest per-operator memory estimate for a batch.
func (m *Model) MaxOpBytes(batch int) (int64, error) {
	ests, err := m.MemEstimates(batch)
	if err != nil {
		return 0, err
	}
	var maxB int64
	for _, e := range ests {
		if e.Bytes > maxB {
			maxB = e.Bytes
		}
	}
	return maxB, nil
}

// Predict runs the model and returns the argmax class per row of a 2-D
// output. It errors if the output is not 2-D.
func (m *Model) Predict(x *tensor.Tensor) ([]int, error) {
	out := m.Forward(x)
	if out.Rank() != 2 {
		return nil, fmt.Errorf("nn: Predict needs 2-D output, model %q produced %v", m.ModelName, out.Shape())
	}
	classes := make([]int, out.Dim(0))
	for i := range classes {
		classes[i] = out.ArgMaxRow(i)
	}
	return classes, nil
}
