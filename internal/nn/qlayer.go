package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"tensorbase/internal/tensor"
)

// Resident quantized execution: the storage optimizer's compressed model
// versions (Sec. 4) are only worth serving if the int8 weights stay int8 at
// run time. LoadQuantizedResident builds a model whose Linear/Conv2D layers
// hold their weights as int8 + per-output-channel scales — one quarter the
// weight bytes — pre-packed into the SWAR panel layout, and quantize their
// activations per batch on entry so the forward pass runs the packed int8
// GEMM instead of the f32 kernel.

// QuantTensor is an int8-quantized tensor: Shape, one scale per dim-0
// slice (output channel), and the row-major int8 payload.
type QuantTensor struct {
	Shape  []int
	Scales []float32 // len = Shape[0]
	Data   []int8
}

// Dequantize expands the tensor back to float32.
func (q *QuantTensor) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	stride := 1
	if q.Shape[0] != 0 {
		stride = t.Len() / q.Shape[0]
	}
	data := t.Data()
	for i, v := range q.Data {
		data[i] = float32(v) * q.Scales[i/stride]
	}
	return t
}

// q8MinN is the narrowest output width the packed int8 GEMM path serves.
// Quantizing and packing the activation batch costs O(m·k) no matter how
// small n is; below this width the int8 GEMM is too tiny to amortise that
// pass (a 2-class head over a 256-wide hidden layer would spend more time
// quantizing its input than the f32 kernel spends on the whole product).
// Such layers keep a dequantized f32 copy of their already
// quantization-rounded weights and run the f32 kernel — same resident
// int8 source of truth, cheaper execution.
const q8MinN = 8

// qGemm holds the packed weight side of an int8 GEMM: n output channels of
// k weights in the PackQ8B panel layout, plus what the forward pass needs
// to quantize and pack a batch of activations. Narrow layers (n < q8MinN)
// hold a dequantized f32 weight copy in wf instead of packed lanes.
type qGemm struct {
	k, n    int
	bLanes  []uint64
	bSums   []int32
	bScales []float32
	wf      *tensor.Tensor // (n,k) dequantized weights when n < q8MinN, else nil
}

func newQGemm(w8 []int8, scales []float32, n, k int) qGemm {
	g := qGemm{k: k, n: n, bScales: scales}
	if n < q8MinN {
		g.wf = tensor.New(n, k)
		data := g.wf.Data()
		for j := 0; j < n; j++ {
			s := scales[j]
			for p := 0; p < k; p++ {
				data[j*k+p] = float32(w8[j*k+p]) * s
			}
		}
		return g
	}
	g.bLanes = make([]uint64, tensor.Q8BLanes(n, k))
	g.bSums = make([]int32, n)
	tensor.PackQ8B(g.bLanes, g.bSums, w8, n, k)
	return g
}

// qScratch is the per-call activation workspace of qGemm.apply, pooled so
// the serving hot path does not allocate (and zero) fresh pack buffers for
// every micro-batch. QuantizePackQ8A fully overwrites every field it uses,
// so dirty reuse is safe.
type qScratch struct {
	lanes  []uint64
	sums   []int32
	scales []float32
}

var qScratchPool = sync.Pool{New: func() any { return new(qScratch) }}

// apply quantizes the (m,k) f32 batch per row, packs it, and runs the
// packed int8 GEMM into a fresh (m,n) tensor. Quantize and pack are one
// fused pass (no intermediate int8 matrix), with pooled scratch for the
// packed image. Per-ROW activation scales make each output row a function
// of that row alone, so batch composition (coalescing, pipelining,
// caching) cannot change any row's bits.
func (g *qGemm) apply(x *tensor.Tensor, m int) *tensor.Tensor {
	if g.wf != nil {
		// Narrow layer: f32 kernel over the dequantized weight copy. Row i
		// of the product reads only row i of x, so batch-composition
		// bit-identity holds exactly as it does for the packed path.
		return tensor.MatMulTransB(x, g.wf)
	}
	words := tensor.Q8Lanes(g.k)
	s := qScratchPool.Get().(*qScratch)
	if cap(s.lanes) < m*words {
		s.lanes = make([]uint64, m*words)
	}
	if cap(s.sums) < m {
		s.sums = make([]int32, m)
		s.scales = make([]float32, m)
	}
	lanes, sums, scales := s.lanes[:m*words], s.sums[:m], s.scales[:m]
	tensor.QuantizePackQ8A(lanes, sums, scales, x.Data(), m, g.k)
	y := tensor.New(m, g.n)
	tensor.MatMulQ8PackedInto(y, lanes, sums, scales, g.bLanes, g.bSums, g.bScales, m, g.k, g.n)
	qScratchPool.Put(s)
	return y
}

// paramBytes is the resident footprint of the weights — packed lanes for
// wide layers, the dequantized f32 copy for narrow ones.
func (g *qGemm) paramBytes() int64 {
	if g.wf != nil {
		return g.wf.Bytes() + int64(len(g.bScales))*4
	}
	return int64(len(g.bLanes))*8 + int64(len(g.bSums))*4 + int64(len(g.bScales))*4
}

// QuantLinear is a fully connected layer whose weights stay resident as
// int8 with per-output-channel scales. Activations are quantized per row
// on entry; the bias stays exact f32.
type QuantLinear struct {
	gemm qGemm
	B    *tensor.Tensor // (out), may be nil
}

// NewQuantLinear builds the resident layer from a quantized (out,in)
// weight tensor and an optional exact bias.
func NewQuantLinear(w *QuantTensor, b *tensor.Tensor) (*QuantLinear, error) {
	if len(w.Shape) != 2 {
		return nil, fmt.Errorf("nn: quant linear weight must be 2-D, got %v", w.Shape)
	}
	out, in := w.Shape[0], w.Shape[1]
	if b != nil && b.Len() != out {
		return nil, fmt.Errorf("nn: quant linear bias length %d, want %d", b.Len(), out)
	}
	return &QuantLinear{gemm: newQGemm(w.Data, w.Scales, out, in), B: b}, nil
}

// In returns the input width.
func (l *QuantLinear) In() int { return l.gemm.k }

// Out returns the output width.
func (l *QuantLinear) Out() int { return l.gemm.n }

// Name implements Layer.
func (l *QuantLinear) Name() string { return "linear.q8" }

// OutShape implements Layer.
func (l *QuantLinear) OutShape(in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: linear wants 2-D input, got %v", in)
	}
	if in[1] != l.In() {
		return nil, fmt.Errorf("nn: linear input width %d, want %d", in[1], l.In())
	}
	return []int{in[0], l.Out()}, nil
}

// MemEstimate implements Layer with the paper's m·k + k·n + m·n rule; the
// k·n weight term is int8 so it counts a quarter, and the quantized+packed
// activation image roughly doubles the m·k term.
func (l *QuantLinear) MemEstimate(in []int) int64 {
	m, k, n := int64(in[0]), int64(l.In()), int64(l.Out())
	return (2*m*k+m*n)*bytesPerElem + k*n
}

// ParamBytes implements Layer.
func (l *QuantLinear) ParamBytes() int64 {
	b := l.gemm.paramBytes()
	if l.B != nil {
		b += l.B.Bytes()
	}
	return b
}

// Forward implements Layer.
func (l *QuantLinear) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := l.gemm.apply(x, x.Dim(0))
	if l.B != nil {
		tensor.AddBiasRowsInto(y, l.B)
	}
	return y
}

// QuantConv2D is a stride-1, no-padding convolution whose OHWI kernel stays
// resident as int8 with per-output-channel scales. It always executes via
// im2col: the patch matrix rows are quantized per row and hit the packed
// int8 GEMM. Each patch row reads only its own sample's pixels, so per-row
// activation scales keep the quantized convolution batch-composition
// independent, exactly like QuantLinear.
type QuantConv2D struct {
	kh, kw, inC int
	gemm        qGemm // n = outC, k = kh·kw·inC
}

// NewQuantConv2D builds the resident layer from a quantized OHWI kernel.
func NewQuantConv2D(k *QuantTensor) (*QuantConv2D, error) {
	if len(k.Shape) != 4 {
		return nil, fmt.Errorf("nn: quant conv2d kernel must be 4-D, got %v", k.Shape)
	}
	outC, kh, kw, inC := k.Shape[0], k.Shape[1], k.Shape[2], k.Shape[3]
	return &QuantConv2D{
		kh: kh, kw: kw, inC: inC,
		gemm: newQGemm(k.Data, k.Scales, outC, kh*kw*inC),
	}, nil
}

// Name implements Layer.
func (c *QuantConv2D) Name() string { return "conv2d.q8" }

// OutShape implements Layer.
func (c *QuantConv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 4 {
		return nil, fmt.Errorf("nn: conv2d wants NHWC input, got %v", in)
	}
	if in[3] != c.inC {
		return nil, fmt.Errorf("nn: conv2d input channels %d, want %d", in[3], c.inC)
	}
	oh, ow := in[1]-c.kh+1, in[2]-c.kw+1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv2d kernel %dx%d larger than input %dx%d", c.kh, c.kw, in[1], in[2])
	}
	return []int{in[0], oh, ow, c.gemm.n}, nil
}

// MemEstimate implements Layer: im2col patch matrix + kernel + output.
func (c *QuantConv2D) MemEstimate(in []int) int64 {
	out, err := c.OutShape(in)
	if err != nil {
		return 0
	}
	rows := int64(out[0]) * int64(out[1]) * int64(out[2])
	return (2*rows*int64(c.gemm.k)+volume(out))*bytesPerElem + int64(c.gemm.n)*int64(c.gemm.k)
}

// ParamBytes implements Layer.
func (c *QuantConv2D) ParamBytes() int64 { return c.gemm.paramBytes() }

// Forward implements Layer.
func (c *QuantConv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h-c.kh+1, w-c.kw+1
	f := tensor.Im2Col(x, c.kh, c.kw) // (n·oh·ow, kh·kw·inC)
	y := c.gemm.apply(f, f.Dim(0))
	return y.Reshape(n, oh, ow, c.gemm.n)
}

// LoadQuantizedResident reads a TBQ1 model keeping the weights quantized:
// Linear/Conv2D layers become QuantLinear/QuantConv2D running the packed
// int8 GEMM, everything else loads as usual.
func LoadQuantizedResident(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(quantMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != quantMagic {
		return nil, fmt.Errorf("nn: bad magic %q, want %q", magic, quantMagic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	inShape, err := readShape(br)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("nn: implausible layer count %d", count)
	}
	layers := make([]Layer, 0, count)
	for i := uint64(0); i < count; i++ {
		l, err := readQuantLayerResident(br)
		if err != nil {
			return nil, fmt.Errorf("nn: reading quantized layer %d: %w", i, err)
		}
		layers = append(layers, l)
	}
	return NewModel(name, inShape, layers...)
}

func readQuantLayerResident(br *bufio.Reader) (Layer, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagLinear:
		w, err := readQuantTensorRaw(br)
		if err != nil {
			return nil, err
		}
		hasBias, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		var b *tensor.Tensor
		if hasBias == 1 {
			if b, err = readTensor(br); err != nil {
				return nil, err
			}
		}
		return NewQuantLinear(w, b)
	case tagConv2D:
		k, err := readQuantTensorRaw(br)
		if err != nil {
			return nil, err
		}
		if _, err := br.ReadByte(); err != nil { // im2col flag: always im2col here
			return nil, err
		}
		return NewQuantConv2D(k)
	case tagReLU:
		return ReLU{}, nil
	case tagSigmoid:
		return Sigmoid{}, nil
	case tagSoftmax:
		return Softmax{}, nil
	case tagFlatten:
		return Flatten{}, nil
	default:
		return nil, fmt.Errorf("unknown layer tag %d", tag)
	}
}

// QuantizeResident returns the int8-resident twin of m via an in-memory
// TBQ1 round trip, so the resident model is exactly what serving a saved
// quantized version would load.
func QuantizeResident(m *Model) (*Model, error) {
	var buf bytes.Buffer
	if err := SaveQuantized(&buf, m); err != nil {
		return nil, err
	}
	return LoadQuantizedResident(&buf)
}
