package nn

import (
	"bufio"
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// mustSaveModel builds a TBM1 image (test/fuzz setup).
func mustSaveModel(m *Model) []byte {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// evilShapeTBM1 crafts a TBM1 image whose Conv2D kernel shape multiplies
// to exactly 2^64 — an int product wraps to 0, sliding past a post-multiply
// volume check while describing a 2^64-element tensor.
func evilShapeTBM1() []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteString(modelMagic)
	writeString(bw, "evil")
	writeShape(bw, []int{1, 28})
	writeUvarint(bw, 1) // one layer
	bw.WriteByte(tagConv2D)
	// 2^31 × 4 × 2^31 × 1: every prefix product ≤ 2^33, the full product
	// is 2^64 ≡ 0 in wrapped arithmetic.
	writeShape(bw, []int{1 << 31, 4, 1 << 31, 1})
	bw.Flush()
	return buf.Bytes()
}

// TestLoadRejectsOverflowingShape locks in the readShape hardening: a
// shape whose volume wraps to a small value must be rejected at the shape
// reader, not trusted downstream.
func TestLoadRejectsOverflowingShape(t *testing.T) {
	_, err := Load(bytes.NewReader(evilShapeTBM1()))
	if err == nil {
		t.Fatal("overflowing shape was accepted")
	}
	if !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("want shape-bound rejection, got: %v", err)
	}
}

// TestLoadBoundsGiantTensorClaim: a header claiming a near-limit tensor
// backed by almost no payload must fail on the missing bytes without
// allocating the claimed size up front (readPayload's bounded chunks).
func TestLoadBoundsGiantTensorClaim(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteString(modelMagic)
	writeString(bw, "giant")
	writeShape(bw, []int{1, 28})
	writeUvarint(bw, 1)
	bw.WriteByte(tagLinear)
	writeShape(bw, []int{1 << 20, 1 << 13}) // 2^33 elems, exactly at the cap
	bw.Flush()
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("giant claim with no payload was accepted")
	}
}

// TestLoadTruncated: every truncation of a valid image must error.
func TestLoadTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	full := mustSaveModel(FraudFC(rng, 32))
	for _, cut := range []int{0, 3, 5, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

// FuzzLoad drives the TBM1 loader with arbitrary bytes: it must never
// panic or allocate unboundedly, and anything it accepts must survive a
// Save → Load round-trip.
func FuzzLoad(f *testing.F) {
	rng := rand.New(rand.NewSource(48))
	seed := mustSaveModel(FraudFC(rng, 16))
	f.Add([]byte(nil))
	f.Add([]byte("TBM1"))
	f.Add(seed)
	f.Add(seed[:len(seed)-7])
	f.Add(mustSaveModel(CacheCNN(rng, 6)))
	f.Add(evilShapeTBM1())
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("accepted model fails to re-save: %v", err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-saved model fails to re-load: %v", err)
		}
	})
}
