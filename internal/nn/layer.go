// Package nn implements the model families the paper's evaluation serves —
// feed-forward networks (Table 1) and stride-1/no-padding convolutional
// networks (Table 2) — together with the per-operator memory estimation rule
// that drives the adaptive optimizer (Sec. 7.1: the footprint of a matrix
// multiplication with shapes (m,k) and (k,n) is estimated as
// m·k + k·n + m·n elements).
//
// Models are sequences of layers. Every layer reports its output shape and
// memory estimate symbolically, so the planner can reason about a model
// without running it, and executes eagerly over tensor.Tensor values.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"tensorbase/internal/tensor"
)

// Layer is one operator in a model: a shape-checked, eager tensor
// transformation with a symbolic memory estimate.
type Layer interface {
	// Name identifies the operator kind (e.g. "linear", "conv2d", "relu").
	Name() string
	// OutShape returns the output shape for a given input shape, or an
	// error if the input shape is incompatible. Shapes exclude no batch
	// dimension: the batch is always dimension 0.
	OutShape(in []int) ([]int, error)
	// MemEstimate returns the estimated working-set bytes for this
	// operator on the given input shape: input + parameters + output,
	// following the paper's rule.
	MemEstimate(in []int) int64
	// ParamBytes returns the size of the layer's parameters in bytes.
	ParamBytes() int64
	// Forward applies the operator.
	Forward(x *tensor.Tensor) *tensor.Tensor
}

const bytesPerElem = 4 // float32

func volume(shape []int) int64 {
	n := int64(1)
	for _, d := range shape {
		n *= int64(d)
	}
	return n
}

// Linear is a fully connected layer computing y = x·Wᵀ + b with W stored in
// (out, in) layout, matching how the paper describes weight matrices
// (e.g. Amazon-14k-FC's W is 1024×597540).
type Linear struct {
	W *tensor.Tensor // (out, in)
	B *tensor.Tensor // (out), may be nil
}

// NewLinear returns a Linear layer with Xavier-uniform weights drawn from
// rng and a zero bias.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	w := tensor.New(out, in)
	bound := float32(math.Sqrt(6 / float64(in+out)))
	for i := range w.Data() {
		w.Data()[i] = (rng.Float32()*2 - 1) * bound
	}
	return &Linear{W: w, B: tensor.New(out)}
}

// In returns the input width.
func (l *Linear) In() int { return l.W.Dim(1) }

// Out returns the output width.
func (l *Linear) Out() int { return l.W.Dim(0) }

// Name implements Layer.
func (l *Linear) Name() string { return "linear" }

// OutShape implements Layer.
func (l *Linear) OutShape(in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: linear wants 2-D input, got %v", in)
	}
	if in[1] != l.In() {
		return nil, fmt.Errorf("nn: linear input width %d, want %d", in[1], l.In())
	}
	return []int{in[0], l.Out()}, nil
}

// MemEstimate implements Layer with the paper's m·k + k·n + m·n rule.
func (l *Linear) MemEstimate(in []int) int64 {
	m := int64(in[0])
	k := int64(l.In())
	n := int64(l.Out())
	return (m*k + k*n + m*n) * bytesPerElem
}

// ParamBytes implements Layer.
func (l *Linear) ParamBytes() int64 {
	b := l.W.Bytes()
	if l.B != nil {
		b += l.B.Bytes()
	}
	return b
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.MatMulTransB(x, l.W)
	if l.B != nil {
		tensor.AddBiasRowsInto(y, l.B)
	}
	return y
}

// Conv2D is a stride-1, no-padding convolution with an OHWI kernel,
// matching Table 2's configuration.
type Conv2D struct {
	K *tensor.Tensor // (outC, kh, kw, inC)
	// UseIm2Col selects the spatial-rewriting execution path (im2col +
	// matmul) instead of the direct loop nest.
	UseIm2Col bool
}

// NewConv2D returns a Conv2D layer with Xavier-uniform weights drawn from rng.
func NewConv2D(rng *rand.Rand, outC, kh, kw, inC int) *Conv2D {
	k := tensor.New(outC, kh, kw, inC)
	fanIn := kh * kw * inC
	bound := float32(math.Sqrt(6 / float64(fanIn+outC)))
	for i := range k.Data() {
		k.Data()[i] = (rng.Float32()*2 - 1) * bound
	}
	return &Conv2D{K: k}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 4 {
		return nil, fmt.Errorf("nn: conv2d wants NHWC input, got %v", in)
	}
	kh, kw, inC := c.K.Dim(1), c.K.Dim(2), c.K.Dim(3)
	if in[3] != inC {
		return nil, fmt.Errorf("nn: conv2d input channels %d, want %d", in[3], inC)
	}
	oh, ow := in[1]-kh+1, in[2]-kw+1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv2d kernel %dx%d larger than input %dx%d", kh, kw, in[1], in[2])
	}
	return []int{in[0], oh, ow, c.K.Dim(0)}, nil
}

// MemEstimate implements Layer: input + kernel + output bytes.
func (c *Conv2D) MemEstimate(in []int) int64 {
	out, err := c.OutShape(in)
	if err != nil {
		return 0
	}
	return (volume(in) + int64(c.K.Len()) + volume(out)) * bytesPerElem
}

// ParamBytes implements Layer.
func (c *Conv2D) ParamBytes() int64 { return c.K.Bytes() }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if c.UseIm2Col {
		return tensor.Conv2DIm2Col(x, c.K)
	}
	return tensor.Conv2D(x, c.K)
}

// ReLU applies max(0,x).
type ReLU struct{}

// Name implements Layer.
func (ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (ReLU) OutShape(in []int) ([]int, error) { return in, nil }

// MemEstimate implements Layer: in-place, so input only.
func (ReLU) MemEstimate(in []int) int64 { return volume(in) * bytesPerElem }

// ParamBytes implements Layer.
func (ReLU) ParamBytes() int64 { return 0 }

// Forward implements Layer.
func (ReLU) Forward(x *tensor.Tensor) *tensor.Tensor { return tensor.ReLUInto(x) }

// Sigmoid applies the logistic function.
type Sigmoid struct{}

// Name implements Layer.
func (Sigmoid) Name() string { return "sigmoid" }

// OutShape implements Layer.
func (Sigmoid) OutShape(in []int) ([]int, error) { return in, nil }

// MemEstimate implements Layer.
func (Sigmoid) MemEstimate(in []int) int64 { return volume(in) * bytesPerElem }

// ParamBytes implements Layer.
func (Sigmoid) ParamBytes() int64 { return 0 }

// Forward implements Layer.
func (Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor { return tensor.SigmoidInto(x) }

// Softmax applies a row-wise softmax over 2-D input.
type Softmax struct{}

// Name implements Layer.
func (Softmax) Name() string { return "softmax" }

// OutShape implements Layer.
func (Softmax) OutShape(in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: softmax wants 2-D input, got %v", in)
	}
	return in, nil
}

// MemEstimate implements Layer.
func (Softmax) MemEstimate(in []int) int64 { return volume(in) * bytesPerElem }

// ParamBytes implements Layer.
func (Softmax) ParamBytes() int64 { return 0 }

// Forward implements Layer.
func (Softmax) Forward(x *tensor.Tensor) *tensor.Tensor { return tensor.SoftmaxRowsInto(x) }

// Flatten collapses all non-batch dimensions into one.
type Flatten struct{}

// Name implements Layer.
func (Flatten) Name() string { return "flatten" }

// OutShape implements Layer.
func (Flatten) OutShape(in []int) ([]int, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("nn: flatten wants rank >= 2, got %v", in)
	}
	rest := 1
	for _, d := range in[1:] {
		rest *= d
	}
	return []int{in[0], rest}, nil
}

// MemEstimate implements Layer.
func (Flatten) MemEstimate(in []int) int64 { return volume(in) * bytesPerElem }

// ParamBytes implements Layer.
func (Flatten) ParamBytes() int64 { return 0 }

// Forward implements Layer.
func (Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	rest := x.Len() / x.Dim(0)
	return x.Reshape(x.Dim(0), rest)
}
