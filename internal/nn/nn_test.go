package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tensorbase/internal/tensor"
)

func TestLinearForwardKnownValues(t *testing.T) {
	l := &Linear{
		W: tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3), // (out=2, in=3)
		B: tensor.FromSlice([]float32{10, 20}, 2),
	}
	x := tensor.FromSlice([]float32{1, 1, 1}, 1, 3)
	y := l.Forward(x)
	want := tensor.FromSlice([]float32{16, 35}, 1, 2)
	if !y.AlmostEqual(want, 1e-6) {
		t.Fatalf("linear = %v, want %v", y.Data(), want.Data())
	}
}

func TestLinearOutShape(t *testing.T) {
	l := NewLinear(rand.New(rand.NewSource(1)), 28, 256)
	got, err := l.OutShape([]int{5, 28})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 256 {
		t.Fatalf("OutShape = %v", got)
	}
	if _, err := l.OutShape([]int{5, 29}); err == nil {
		t.Fatal("wrong input width must error")
	}
	if _, err := l.OutShape([]int{5}); err == nil {
		t.Fatal("wrong rank must error")
	}
}

func TestLinearMemEstimateMatchesPaperRule(t *testing.T) {
	// Paper: (m,k)×(k,n) estimated as m·k + k·n + m·n elements.
	l := NewLinear(rand.New(rand.NewSource(1)), 28, 256)
	m, k, n := int64(1000), int64(28), int64(256)
	want := (m*k + k*n + m*n) * 4
	if got := l.MemEstimate([]int{1000, 28}); got != want {
		t.Fatalf("MemEstimate = %d, want %d", got, want)
	}
}

func TestConv2DOutShapeAndEstimate(t *testing.T) {
	c := NewConv2D(rand.New(rand.NewSource(1)), 64, 1, 1, 64)
	got, err := c.OutShape([]int{1, 112, 112, 64})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 112, 112, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OutShape = %v, want %v", got, want)
		}
	}
	in := int64(112 * 112 * 64)
	kern := int64(64 * 64)
	out := int64(112 * 112 * 64)
	if est := c.MemEstimate([]int{1, 112, 112, 64}); est != (in+kern+out)*4 {
		t.Fatalf("MemEstimate = %d", est)
	}
	if _, err := c.OutShape([]int{1, 112, 112, 3}); err == nil {
		t.Fatal("channel mismatch must error")
	}
}

func TestFlattenShape(t *testing.T) {
	f := Flatten{}
	got, err := f.OutShape([]int{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 60 {
		t.Fatalf("OutShape = %v", got)
	}
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("Forward shape = %v", y.Shape())
	}
}

func TestModelShapeComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := FraudFC(rng, 256)
	out, err := m.OutShape(100)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 100 || out[1] != 2 {
		t.Fatalf("OutShape = %v", out)
	}
}

func TestNewModelRejectsIncompatibleLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, err := NewModel("bad", []int{1, 10},
		NewLinear(rng, 10, 5),
		NewLinear(rng, 6, 2), // expects width 6, gets 5
	)
	if err == nil {
		t.Fatal("incompatible layer chain must be rejected")
	}
}

func TestModelForwardEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := FraudFC(rng, 256)
	x := tensor.New(4, 28)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	out := m.Forward(x)
	if out.Dim(0) != 4 || out.Dim(1) != 2 {
		t.Fatalf("output shape %v", out.Shape())
	}
	for i := 0; i < 4; i++ {
		sum := 0.0
		for _, v := range out.Row(i) {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
	}
}

func TestForwardFromMatchesFullForward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := FraudFC(rng, 64)
	x := tensor.New(3, 28)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	full := m.Forward(x.Clone())
	// Run layer 0 manually, then ForwardFrom(1).
	h := m.Layers[0].Forward(x.Clone())
	split := m.ForwardFrom(h, 1)
	if !full.AlmostEqual(split, 1e-5) {
		t.Fatal("ForwardFrom disagrees with Forward")
	}
}

func TestMemEstimatesPerOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := EncoderFC(rng)
	ests, err := m.MemEstimates(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("got %d estimates, want 3", len(ests))
	}
	// First linear: 1000·76 + 76·3072 + 1000·3072 floats.
	want := int64(1000*76+76*3072+1000*3072) * 4
	if ests[0].Bytes != want {
		t.Fatalf("estimate = %d, want %d", ests[0].Bytes, want)
	}
	maxB, err := m.MaxOpBytes(1000)
	if err != nil {
		t.Fatal(err)
	}
	if maxB < want {
		t.Fatalf("MaxOpBytes = %d < first-op estimate %d", maxB, want)
	}
}

func TestZooShapesMatchPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		m        *Model
		batch    int
		outShape []int
	}{
		{FraudFC(rng, 256), 10, []int{10, 2}},
		{FraudFC(rng, 512), 10, []int{10, 2}},
		{EncoderFC(rng), 10, []int{10, 768}},
		{DeepBenchConv1(rng), 1, []int{1, 112, 112, 64}},
	}
	for _, c := range cases {
		got, err := c.m.OutShape(c.batch)
		if err != nil {
			t.Fatalf("%s: %v", c.m.Name(), err)
		}
		if len(got) != len(c.outShape) {
			t.Fatalf("%s: OutShape %v, want %v", c.m.Name(), got, c.outShape)
		}
		for i := range got {
			if got[i] != c.outShape[i] {
				t.Fatalf("%s: OutShape %v, want %v", c.m.Name(), got, c.outShape)
			}
		}
	}
}

func TestAmazon14kDimsFullScale(t *testing.T) {
	in, hidden, out := Amazon14kDims(1)
	if in != 597540 || hidden != 1024 || out != 14588 {
		t.Fatalf("paper dims wrong: %d/%d/%d", in, hidden, out)
	}
	in, _, out = Amazon14kDims(100)
	if in != 5975 || out != 145 {
		t.Fatalf("scaled dims wrong: %d/%d", in, out)
	}
}

func TestLandCoverDims(t *testing.T) {
	hw, oc := LandCoverDims(1)
	if hw != 2500 || oc != 2048 {
		t.Fatalf("paper dims wrong: %d/%d", hw, oc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := FraudFC(rng, 64)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != m.Name() {
		t.Fatalf("name = %q", got.Name())
	}
	x := tensor.New(2, 28)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	a := m.Forward(x.Clone())
	b := got.Forward(x.Clone())
	if !a.AlmostEqual(b, 1e-6) {
		t.Fatal("loaded model produces different output")
	}
}

func TestSaveLoadCNNRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := CacheCNN(rng, 12)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 12, 12, 1)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	a := m.Forward(x.Clone())
	b := got.Forward(x.Clone())
	if !a.AlmostEqual(b, 1e-5) {
		t.Fatal("loaded CNN produces different output")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPE-not-a-model"))); err == nil {
		t.Fatal("bad magic must be rejected")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := FraudFC(rng, 16)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated model must be rejected")
	}
}

// Property: Save∘Load is the identity on model outputs for random widths.
func TestSaveLoadProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := 1 + r.Intn(16)
		hid := 1 + r.Intn(16)
		out := 2 + r.Intn(8)
		m := MustModel("p", []int{1, in},
			NewLinear(r, in, hid), ReLU{}, NewLinear(r, hid, out), Softmax{})
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		x := tensor.New(3, in)
		for i := range x.Data() {
			x.Data()[i] = r.Float32()
		}
		return m.Forward(x.Clone()).AlmostEqual(got.Forward(x.Clone()), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainLearnsLinearlySeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, d = 400, 8
	x := tensor.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < d; j++ {
			center := float32(-1)
			if cls == 1 {
				center = 1
			}
			x.Set(center+float32(rng.NormFloat64())*0.3, i, j)
		}
	}
	m := MustModel("sep", []int{1, d},
		NewLinear(rng, d, 16), ReLU{}, NewLinear(rng, 16, 2), Softmax{})
	if _, err := Train(m, x, labels, TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(m, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("accuracy %.3f after training, want >= 0.95", acc)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, d = 200, 4
	x := tensor.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 3
		for j := 0; j < d; j++ {
			x.Set(float32(labels[i])+float32(rng.NormFloat64())*0.2, i, j)
		}
	}
	m := MustModel("loss", []int{1, d},
		NewLinear(rng, d, 8), ReLU{}, NewLinear(rng, 8, 3), Softmax{})
	first, err := Train(m, x, labels, TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	last, err := Train(m, x, labels, TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first-epoch %.4f, final %.4f", first, last)
	}
}

func TestTrainCNNHeadOnFixedConvFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, side = 120, 10
	x := tensor.New(n, side, side, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < side*side; j++ {
			v := float32(rng.NormFloat64()) * 0.1
			if cls == 1 {
				v += 1
			}
			x.Data()[i*side*side+j] = v
		}
	}
	m := CacheCNN(rng, side)
	if _, err := Train(m, x, labels, TrainConfig{Epochs: 6, BatchSize: 20, LR: 0.05, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(m, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("CNN head accuracy %.3f, want >= 0.9", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := EncoderFC(rng) // no Softmax tail
	if _, err := Train(m, tensor.New(2, 76), []int{0, 1}, TrainConfig{}); err == nil {
		t.Fatal("training a non-Softmax model must error")
	}
	m2 := FraudFC(rng, 16)
	if _, err := Train(m2, tensor.New(2, 28), []int{0}, TrainConfig{}); err == nil {
		t.Fatal("label/sample mismatch must error")
	}
	if _, err := Train(m2, tensor.New(2, 28), []int{0, 5}, TrainConfig{}); err == nil {
		t.Fatal("out-of-range label must error")
	}
}

func TestPredictArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := FraudFC(rng, 16)
	pred, err := m.Predict(tensor.New(3, 28))
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 3 {
		t.Fatalf("got %d predictions", len(pred))
	}
	for _, p := range pred {
		if p != 0 && p != 1 {
			t.Fatalf("class %d out of range", p)
		}
	}
}

// Gradient check: convBackward's analytic gradients must match central
// finite differences of the loss L = ⟨conv(x, K), dY⟩.
func TestConvBackwardGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	x := tensor.New(1, 4, 4, 2)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	l := NewConv2D(rng, 3, 2, 2, 2)
	dy := tensor.New(1, 3, 3, 3)
	for i := range dy.Data() {
		dy.Data()[i] = float32(rng.NormFloat64())
	}
	loss := func(xx, kk *tensor.Tensor) float64 {
		y := tensor.Conv2D(xx, kk)
		var s float64
		for i, v := range y.Data() {
			s += float64(v) * float64(dy.Data()[i])
		}
		return s
	}

	// Analytic gradients: lr=1 so K_before − K_after = dK.
	kBefore := l.K.Clone()
	lcopy := &Conv2D{K: l.K.Clone()}
	dx := convBackward(lcopy, x, dy, 1)
	const eps = 1e-3
	for _, idx := range []int{0, 5, 11, 17, 23} {
		analytic := float64(kBefore.Data()[idx] - lcopy.K.Data()[idx])
		kp := kBefore.Clone()
		km := kBefore.Clone()
		kp.Data()[idx] += eps
		km.Data()[idx] -= eps
		numeric := (loss(x, kp) - loss(x, km)) / (2 * eps)
		if math.Abs(analytic-numeric) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("dK[%d]: analytic %.5f vs numeric %.5f", idx, analytic, numeric)
		}
	}
	for _, idx := range []int{0, 7, 15, 31} {
		analytic := float64(dx.Data()[idx])
		xp := x.Clone()
		xm := x.Clone()
		xp.Data()[idx] += eps
		xm.Data()[idx] -= eps
		numeric := (loss(xp, kBefore) - loss(xm, kBefore)) / (2 * eps)
		if math.Abs(analytic-numeric) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("dX[%d]: analytic %.5f vs numeric %.5f", idx, analytic, numeric)
		}
	}
}

func TestTrainCNNEndToEnd(t *testing.T) {
	// With conv backprop the whole CNN trains, not just the FC head:
	// classes distinguishable only through a learned spatial filter.
	rng := rand.New(rand.NewSource(202))
	const n, side = 160, 8
	x := tensor.New(n, side, side, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < side*side; j++ {
			x.Data()[i*side*side+j] = float32(rng.NormFloat64()) * 0.1
		}
		// Class 1 has a bright 2×2 corner patch; class 0 does not.
		if cls == 1 {
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					x.Set(1.5, i, dy, dx, 0)
				}
			}
		}
	}
	m := MustModel("tinycnn", []int{1, side, side, 1},
		NewConv2D(rng, 4, 3, 3, 1), ReLU{},
		Flatten{},
		NewLinear(rng, (side-2)*(side-2)*4, 2), Softmax{},
	)
	if _, err := Train(m, x, labels, TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.05, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(m, x.Clone(), labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("end-to-end CNN accuracy %.3f, want >= 0.95", acc)
	}
}
