package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"tensorbase/internal/blockstore"
	"tensorbase/internal/tensor"
)

// Manifest format ("TBMF"): the durable form of a model in the
// content-addressed block store. Where TBM1 carries every weight byte
// inline, a manifest carries only each tensor's shape and the ordered
// hashes of its 64 KiB blocks — the bytes themselves live in the store,
// shared across every model that references them (arXiv 2201.10442).
//
//	magic "TBMF" | name | inShape | layerCount |
//	  per layer: tag | flag | tensorCount |
//	    per tensor: shape | elems | blockCount | blockCount × 32-byte hash
//
// Strings, shapes and varints reuse the TBM1 helpers; the layer tag and
// flag bytes carry exactly what writeLayer encodes (hasBias for Linear,
// im2col for Conv2D), so TBM1 ↔ manifest round-trips are lossless.

const manifestMagic = "TBMF"

// ManifestTensor names one tensor: its shape plus its block-store ref.
type ManifestTensor struct {
	Shape []int
	Ref   blockstore.TensorRef
}

// ManifestLayer is one layer: its TBM1 tag, its flag byte (hasBias /
// im2col; zero for parameter-less layers), and its tensors in wire order.
type ManifestLayer struct {
	Tag     byte
	Flag    byte
	Tensors []ManifestTensor
}

// Manifest is the block-store form of a model.
type Manifest struct {
	Name    string
	InShape []int
	Layers  []ManifestLayer
}

// Hashes returns every block hash the manifest references, with
// duplicates, in wire order.
func (mf *Manifest) Hashes() []blockstore.Hash {
	var out []blockstore.Hash
	for _, l := range mf.Layers {
		for _, t := range l.Tensors {
			out = append(out, t.Ref.Blocks...)
		}
	}
	return out
}

// BlockModel decomposes a model into content-addressed blocks, staging
// any blocks the store does not already hold, and returns the model's
// manifest plus the hashes that were new to the store (the ones the
// caller must make durable). No references are taken — pair with
// ModelFromManifest to pin the blocks, and Sweep on error to discard
// half-staged ones. Models with unsupported layer types fail cleanly.
func BlockModel(m *Model, st *blockstore.Store) (*Manifest, []blockstore.Hash, error) {
	mf := &Manifest{Name: m.ModelName, InShape: append([]int(nil), m.InShape...)}
	var fresh []blockstore.Hash
	intern := func(t *tensor.Tensor) (ManifestTensor, error) {
		ref, newHashes, err := st.Intern(t.Data())
		if err != nil {
			return ManifestTensor{}, err
		}
		fresh = append(fresh, newHashes...)
		return ManifestTensor{Shape: append([]int(nil), t.Shape()...), Ref: ref}, nil
	}
	for i, l := range m.Layers {
		var ml ManifestLayer
		var err error
		switch l := l.(type) {
		case *Linear:
			ml.Tag = tagLinear
			var w ManifestTensor
			if w, err = intern(l.W); err == nil {
				ml.Tensors = append(ml.Tensors, w)
				if l.B != nil {
					ml.Flag = 1
					var b ManifestTensor
					if b, err = intern(l.B); err == nil {
						ml.Tensors = append(ml.Tensors, b)
					}
				}
			}
		case *Conv2D:
			ml.Tag = tagConv2D
			if l.UseIm2Col {
				ml.Flag = 1
			}
			var k ManifestTensor
			if k, err = intern(l.K); err == nil {
				ml.Tensors = append(ml.Tensors, k)
			}
		case ReLU:
			ml.Tag = tagReLU
		case Sigmoid:
			ml.Tag = tagSigmoid
		case Softmax:
			ml.Tag = tagSoftmax
		case Flatten:
			ml.Tag = tagFlatten
		default:
			err = fmt.Errorf("unsupported layer type %T", l)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("nn: blocking layer %d (%s): %w", i, l.Name(), err)
		}
		mf.Layers = append(mf.Layers, ml)
	}
	return mf, fresh, nil
}

// ModelFromManifest assembles a servable model from a manifest: each
// tensor's blocks are assembled into one contiguous slice (shared with
// every other model whose tensor is bit-identical) and the layer tensors
// alias those slices. Every tensor takes block/assembly references;
// release them with ReleaseManifest when the model is dropped. On error
// the references taken so far are rolled back.
func ModelFromManifest(mf *Manifest, st *blockstore.Store) (*Model, error) {
	var taken []blockstore.TensorRef
	rollback := func() {
		for _, r := range taken {
			st.Release(r)
		}
	}
	assemble := func(mt ManifestTensor) (*tensor.Tensor, error) {
		vol := 1
		for _, d := range mt.Shape {
			vol *= d
		}
		if len(mt.Shape) == 0 || vol != mt.Ref.Elems {
			return nil, fmt.Errorf("shape %v does not hold %d elems", mt.Shape, mt.Ref.Elems)
		}
		data, err := st.Assemble(mt.Ref)
		if err != nil {
			return nil, err
		}
		taken = append(taken, mt.Ref)
		return tensor.FromSlice(data, mt.Shape...), nil
	}
	layers := make([]Layer, 0, len(mf.Layers))
	for i, ml := range mf.Layers {
		var l Layer
		var err error
		switch ml.Tag {
		case tagLinear:
			if len(ml.Tensors) != 1+int(ml.Flag&1) {
				err = fmt.Errorf("linear with %d tensors, flag %d", len(ml.Tensors), ml.Flag)
				break
			}
			var w, b *tensor.Tensor
			if w, err = assemble(ml.Tensors[0]); err != nil {
				break
			}
			if w.Rank() != 2 {
				err = fmt.Errorf("linear weight must be 2-D, got %v", w.Shape())
				break
			}
			if ml.Flag&1 == 1 {
				if b, err = assemble(ml.Tensors[1]); err != nil {
					break
				}
				if b.Len() != w.Dim(0) {
					err = fmt.Errorf("linear bias length %d, want %d", b.Len(), w.Dim(0))
					break
				}
			}
			l = &Linear{W: w, B: b}
		case tagConv2D:
			if len(ml.Tensors) != 1 {
				err = fmt.Errorf("conv2d with %d tensors", len(ml.Tensors))
				break
			}
			var k *tensor.Tensor
			if k, err = assemble(ml.Tensors[0]); err != nil {
				break
			}
			if k.Rank() != 4 {
				err = fmt.Errorf("conv2d kernel must be 4-D, got %v", k.Shape())
				break
			}
			l = &Conv2D{K: k, UseIm2Col: ml.Flag&1 == 1}
		case tagReLU:
			l = ReLU{}
		case tagSigmoid:
			l = Sigmoid{}
		case tagSoftmax:
			l = Softmax{}
		case tagFlatten:
			l = Flatten{}
		default:
			err = fmt.Errorf("unknown layer tag %d", ml.Tag)
		}
		if err != nil {
			rollback()
			return nil, fmt.Errorf("nn: manifest layer %d: %w", i, err)
		}
		layers = append(layers, l)
	}
	m, err := NewModel(mf.Name, mf.InShape, layers...)
	if err != nil {
		rollback()
		return nil, err
	}
	return m, nil
}

// ReleaseManifest drops the references ModelFromManifest took. Freed
// memory is reclaimed by the store's next Sweep.
func ReleaseManifest(mf *Manifest, st *blockstore.Store) {
	for _, l := range mf.Layers {
		for _, t := range l.Tensors {
			st.Release(t.Ref)
		}
	}
}

// EncodeManifest serialises a manifest in the TBMF format.
func EncodeManifest(mf *Manifest) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteString(manifestMagic)
	writeString(bw, mf.Name)
	writeShape(bw, mf.InShape)
	writeUvarint(bw, uint64(len(mf.Layers)))
	for _, l := range mf.Layers {
		bw.WriteByte(l.Tag)
		bw.WriteByte(l.Flag)
		writeUvarint(bw, uint64(len(l.Tensors)))
		for _, t := range l.Tensors {
			writeShape(bw, t.Shape)
			writeUvarint(bw, uint64(t.Ref.Elems))
			writeUvarint(bw, uint64(len(t.Ref.Blocks)))
			for _, h := range t.Ref.Blocks {
				bw.Write(h[:])
			}
		}
	}
	bw.Flush()
	return buf.Bytes()
}

// DecodeManifest parses a TBMF manifest, validating every count against
// the same bounds the TBM1 reader enforces before anything is allocated
// from untrusted sizes.
func DecodeManifest(raw []byte) (*Manifest, error) {
	br := bufio.NewReader(bytes.NewReader(raw))
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: manifest magic: %w", err)
	}
	if string(magic) != manifestMagic {
		return nil, fmt.Errorf("nn: bad manifest magic %q", magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("nn: manifest name: %w", err)
	}
	inShape, err := readShape(br)
	if err != nil {
		return nil, fmt.Errorf("nn: manifest input shape: %w", err)
	}
	layerCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if layerCount > 1<<16 {
		return nil, fmt.Errorf("nn: implausible layer count %d", layerCount)
	}
	mf := &Manifest{Name: name, InShape: inShape}
	for i := uint64(0); i < layerCount; i++ {
		var ml ManifestLayer
		if ml.Tag, err = br.ReadByte(); err != nil {
			return nil, err
		}
		if ml.Flag, err = br.ReadByte(); err != nil {
			return nil, err
		}
		tensorCount, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if tensorCount > 16 {
			return nil, fmt.Errorf("nn: implausible tensor count %d", tensorCount)
		}
		for j := uint64(0); j < tensorCount; j++ {
			var mt ManifestTensor
			if mt.Shape, err = readShape(br); err != nil {
				return nil, err
			}
			elems, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if elems == 0 || elems > 1<<33 {
				return nil, fmt.Errorf("nn: implausible tensor elems %d", elems)
			}
			mt.Ref.Elems = int(elems)
			blockCount, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if int(blockCount) != blockstore.BlockCount(mt.Ref.Elems) {
				return nil, fmt.Errorf("nn: %d blocks for %d elems", blockCount, elems)
			}
			mt.Ref.Blocks = make([]blockstore.Hash, blockCount)
			for k := range mt.Ref.Blocks {
				if _, err := io.ReadFull(br, mt.Ref.Blocks[k][:]); err != nil {
					return nil, err
				}
			}
			ml.Tensors = append(ml.Tensors, mt)
		}
		mf.Layers = append(mf.Layers, ml)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("nn: trailing bytes after manifest")
	}
	return mf, nil
}
