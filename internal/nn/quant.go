package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tensorbase/internal/tensor"
)

// Model compression (Sec. 4): the storage optimizer keeps compressed
// versions of a model with different size/accuracy trade-offs, and the
// query layer picks a version by SLA. This file implements symmetric 8-bit
// weight quantization — both as a model transformation (Quantize8, for
// measuring the accuracy cost) and as a storage format (SaveQuantized, a
// TBM1 variant whose tensors are int8 + scale, one quarter the bytes).

// Quantize8 returns a copy of m whose Linear and Conv2D weights are snapped
// to a symmetric 256-level grid with one scale per output channel (dim-0
// slice of the weight tensor); biases stay exact. The returned model
// behaves like the original would after a quantized save/load round trip,
// so its measured accuracy is the accuracy of the compressed version.
func Quantize8(m *Model, name string) (*Model, error) {
	layers := make([]Layer, len(m.Layers))
	for i, l := range m.Layers {
		switch l := l.(type) {
		case *Linear:
			q := &Linear{W: quantizeTensor(l.W)}
			if l.B != nil {
				q.B = l.B.Clone()
			}
			layers[i] = q
		case *Conv2D:
			layers[i] = &Conv2D{K: quantizeTensor(l.K), UseIm2Col: l.UseIm2Col}
		default:
			layers[i] = l
		}
	}
	return NewModel(name, m.InShape, layers...)
}

// quantizeTensor snaps t to int8 resolution per output channel and
// dequantizes back.
func quantizeTensor(t *tensor.Tensor) *tensor.Tensor {
	scales := channelScales(t)
	out := tensor.New(t.Shape()...)
	stride := channelStride(t)
	for i, v := range t.Data() {
		s := scales[i/stride]
		out.Data()[i] = float32(quantClamp(v, s)) * s
	}
	return out
}

// channelStride returns the element count of one dim-0 slice of t — the
// granularity at which weight scales are kept (one per output channel).
func channelStride(t *tensor.Tensor) int {
	if t.Dim(0) == 0 {
		return 1
	}
	return t.Len() / t.Dim(0)
}

// channelScales returns one symmetric int8 scale per dim-0 slice of t.
func channelScales(t *tensor.Tensor) []float32 {
	stride := channelStride(t)
	scales := make([]float32, t.Dim(0))
	for c := range scales {
		scales[c] = quantScale(t.Data()[c*stride : (c+1)*stride])
	}
	return scales
}

// quantScale returns max|x| / 127 (zero-safe).
func quantScale(data []float32) float32 {
	var maxAbs float32
	for _, v := range data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

func quantClamp(v, scale float32) int8 {
	q := math.Round(float64(v / scale))
	if q > 127 {
		q = 127
	}
	if q < -127 {
		q = -127
	}
	return int8(q)
}

// Quantized model format ("TBQ1"): like TBM1 but weight tensors are stored
// as one float32 scale per output channel (dim-0 slice) followed by an int8
// payload.

const quantMagic = "TBQ1"

// SaveQuantized writes m with 8-bit quantized weight tensors. Loading the
// result (LoadQuantized) yields a model identical to Quantize8(m).
func SaveQuantized(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(quantMagic); err != nil {
		return err
	}
	writeString(bw, m.ModelName)
	writeShape(bw, m.InShape)
	writeUvarint(bw, uint64(len(m.Layers)))
	for i, l := range m.Layers {
		if err := writeQuantLayer(bw, l); err != nil {
			return fmt.Errorf("nn: save quantized layer %d (%s): %w", i, l.Name(), err)
		}
	}
	return bw.Flush()
}

func writeQuantLayer(bw *bufio.Writer, l Layer) error {
	switch l := l.(type) {
	case *Linear:
		bw.WriteByte(tagLinear)
		if err := writeQuantTensor(bw, l.W); err != nil {
			return err
		}
		hasBias := byte(0)
		if l.B != nil {
			hasBias = 1
		}
		bw.WriteByte(hasBias)
		if l.B != nil {
			writeTensor(bw, l.B) // biases stay exact
		}
	case *Conv2D:
		bw.WriteByte(tagConv2D)
		if err := writeQuantTensor(bw, l.K); err != nil {
			return err
		}
		im2col := byte(0)
		if l.UseIm2Col {
			im2col = 1
		}
		bw.WriteByte(im2col)
	case ReLU:
		bw.WriteByte(tagReLU)
	case Sigmoid:
		bw.WriteByte(tagSigmoid)
	case Softmax:
		bw.WriteByte(tagSoftmax)
	case Flatten:
		bw.WriteByte(tagFlatten)
	default:
		return fmt.Errorf("unsupported layer type %T", l)
	}
	return nil
}

// writeQuantTensor writes shape | per-channel scales | int8 payload. bufio
// write errors are sticky, so a single Flush at the end surfaces any of
// them instead of silently truncating the stream.
func writeQuantTensor(bw *bufio.Writer, t *tensor.Tensor) error {
	writeShape(bw, t.Shape())
	scales := channelScales(t)
	var buf [4]byte
	for _, s := range scales {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(s))
		bw.Write(buf[:])
	}
	stride := channelStride(t)
	for i, v := range t.Data() {
		bw.WriteByte(byte(quantClamp(v, scales[i/stride])))
	}
	return bw.Flush()
}

// readQuantTensorRaw reads a quantized tensor without dequantizing: the
// resident execution path keeps exactly this representation. Payloads are
// read in bounded chunks (readPayload), so an implausible shape in a
// corrupt file fails with a read error instead of one huge allocation.
func readQuantTensorRaw(br *bufio.Reader) (*QuantTensor, error) {
	shape, err := readShape(br)
	if err != nil {
		return nil, err
	}
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	sraw, err := readPayload(br, 4*shape[0])
	if err != nil {
		return nil, fmt.Errorf("reading %d channel scales: %w", shape[0], err)
	}
	scales := make([]float32, shape[0])
	for i := range scales {
		scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(sraw[4*i:]))
	}
	payload, err := readPayload(br, vol)
	if err != nil {
		return nil, fmt.Errorf("reading %d-byte int8 payload: %w", vol, err)
	}
	data := make([]int8, vol)
	for i, b := range payload {
		data[i] = int8(b)
	}
	return &QuantTensor{Shape: shape, Scales: scales, Data: data}, nil
}

func readQuantTensor(br *bufio.Reader) (*tensor.Tensor, error) {
	qt, err := readQuantTensorRaw(br)
	if err != nil {
		return nil, err
	}
	return qt.Dequantize(), nil
}

// LoadQuantized reads a TBQ1 model.
func LoadQuantized(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(quantMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != quantMagic {
		return nil, fmt.Errorf("nn: bad magic %q, want %q", magic, quantMagic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	inShape, err := readShape(br)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("nn: implausible layer count %d", count)
	}
	layers := make([]Layer, 0, count)
	for i := uint64(0); i < count; i++ {
		l, err := readQuantLayer(br)
		if err != nil {
			return nil, fmt.Errorf("nn: reading quantized layer %d: %w", i, err)
		}
		layers = append(layers, l)
	}
	return NewModel(name, inShape, layers...)
}

func readQuantLayer(br *bufio.Reader) (Layer, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagLinear:
		w, err := readQuantTensor(br)
		if err != nil {
			return nil, err
		}
		if w.Rank() != 2 {
			return nil, fmt.Errorf("linear weight must be 2-D, got %v", w.Shape())
		}
		hasBias, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		l := &Linear{W: w}
		if hasBias == 1 {
			b, err := readTensor(br)
			if err != nil {
				return nil, err
			}
			l.B = b
		}
		return l, nil
	case tagConv2D:
		k, err := readQuantTensor(br)
		if err != nil {
			return nil, err
		}
		if k.Rank() != 4 {
			return nil, fmt.Errorf("conv2d kernel must be 4-D, got %v", k.Shape())
		}
		im2col, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		return &Conv2D{K: k, UseIm2Col: im2col == 1}, nil
	case tagReLU:
		return ReLU{}, nil
	case tagSigmoid:
		return Sigmoid{}, nil
	case tagSoftmax:
		return Softmax{}, nil
	case tagFlatten:
		return Flatten{}, nil
	default:
		return nil, fmt.Errorf("unknown layer tag %d", tag)
	}
}
