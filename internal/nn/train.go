package nn

import (
	"fmt"
	"math"
	"math/rand"

	"tensorbase/internal/tensor"
)

// Training support (Sec. 6.1 extension): the paper notes that the
// UDF-centric architecture extends to training by pairing each forward UDF
// with a backward UDF and an SGD optimizer. This file implements exactly
// that for classification models ending in Softmax with cross-entropy loss:
// gradients flow through Linear, Conv2D, ReLU, Sigmoid and Flatten layers.

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	Seed      int64
	// Verbose, when non-nil, receives a line per epoch.
	Verbose func(format string, args ...any)
}

// Train fits m to (x, labels) with mini-batch SGD and cross-entropy loss.
// x's first dimension is the sample count; labels[i] is the class of sample
// i. The model must end in a Softmax layer. It returns the final-epoch
// average training loss.
func Train(m *Model, x *tensor.Tensor, labels []int, cfg TrainConfig) (float64, error) {
	n := x.Dim(0)
	if n != len(labels) {
		return 0, fmt.Errorf("nn: %d samples but %d labels", n, len(labels))
	}
	if len(m.Layers) == 0 {
		return 0, fmt.Errorf("nn: empty model")
	}
	if _, ok := m.Layers[len(m.Layers)-1].(Softmax); !ok {
		return 0, fmt.Errorf("nn: Train requires a Softmax output layer, model %q ends in %s",
			m.ModelName, m.Layers[len(m.Layers)-1].Name())
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sampleVol := x.Len() / n
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, n)
			bsz := end - start
			batchShape := append([]int(nil), x.Shape()...)
			batchShape[0] = bsz
			xb := tensor.New(batchShape...)
			yb := make([]int, bsz)
			for i := 0; i < bsz; i++ {
				src := perm[start+i]
				copy(xb.Data()[i*sampleVol:(i+1)*sampleVol], x.Data()[src*sampleVol:(src+1)*sampleVol])
				yb[i] = labels[src]
			}
			loss, err := trainBatch(m, xb, yb, cfg.LR)
			if err != nil {
				return 0, err
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Verbose != nil {
			cfg.Verbose("epoch %d/%d loss %.4f", epoch+1, cfg.Epochs, lastLoss)
		}
	}
	return lastLoss, nil
}

// trainBatch runs one forward/backward/update step and returns the batch
// cross-entropy loss.
func trainBatch(m *Model, xb *tensor.Tensor, yb []int, lr float32) (float64, error) {
	// Forward pass, recording each layer's input. In-place layers (ReLU)
	// alias, which is fine: their backward rule only needs the output.
	inputs := make([]*tensor.Tensor, len(m.Layers))
	act := xb
	for i, l := range m.Layers {
		inputs[i] = act
		act = l.Forward(act)
	}
	probs := act // output of the final Softmax
	bsz := len(yb)
	nclass := probs.Dim(1)

	var loss float64
	for i, y := range yb {
		if y < 0 || y >= nclass {
			return 0, fmt.Errorf("nn: label %d out of range [0,%d)", y, nclass)
		}
		p := float64(probs.At(i, y))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	loss /= float64(bsz)

	// Softmax + cross-entropy gradient at the softmax input: (p - 1{y}) / B.
	grad := probs.Clone()
	inv := float32(1) / float32(bsz)
	for i, y := range yb {
		row := grad.Row(i)
		for j := range row {
			row[j] *= inv
		}
		row[y] -= inv
	}

	// Backward through the remaining layers, skipping the final Softmax
	// (its gradient is already folded into grad).
	for li := len(m.Layers) - 2; li >= 0; li-- {
		switch l := m.Layers[li].(type) {
		case *Linear:
			grad = linearBackward(l, inputs[li], grad, lr)
		case ReLU:
			// inputs[li] aliases the post-ReLU output; zero grad where
			// the activation was clipped.
			out := inputs[li]
			for i, v := range out.Data() {
				if v <= 0 {
					grad.Data()[i] = 0
				}
			}
		case Flatten:
			grad = grad.Reshape(inputs[li].Shape()...)
		case *Conv2D:
			grad = convBackward(l, inputs[li], grad, lr)
		case Sigmoid:
			out := inputs[li] // aliases the sigmoid output
			for i, v := range out.Data() {
				grad.Data()[i] *= v * (1 - v)
			}
		default:
			return 0, fmt.Errorf("nn: no backward rule for layer %s", l.Name())
		}
	}
	return loss, nil
}

// linearBackward updates l's parameters from dY and returns dX.
// y = x·Wᵀ + b ⇒ dW = dYᵀ·x, db = colsum(dY), dX = dY·W.
func linearBackward(l *Linear, x, dy *tensor.Tensor, lr float32) *tensor.Tensor {
	dw := tensor.MatMul(tensor.Transpose(dy), x) // (out, in)
	dx := tensor.MatMul(dy, l.W)                 // (batch, in)
	wd := l.W.Data()
	for i, g := range dw.Data() {
		wd[i] -= lr * g
	}
	if l.B != nil {
		bd := l.B.Data()
		out := dy.Dim(1)
		for i := 0; i < dy.Dim(0); i++ {
			row := dy.Row(i)
			for j := 0; j < out; j++ {
				bd[j] -= lr * row[j]
			}
		}
	}
	return dx
}

// convBackward updates l's kernel from dY and returns dX, for the stride-1
// no-padding convolution:
//
//	dK[o,ky,kx,c] = Σ_{b,y,x} dY[b,y,x,o] · X[b,y+ky,x+kx,c]
//	dX[b,i,j,c]   = Σ_{o,ky,kx} dY[b,i−ky,j−kx,o] · K[o,ky,kx,c]
func convBackward(l *Conv2D, x, dy *tensor.Tensor, lr float32) *tensor.Tensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oc, kh, kw := l.K.Dim(0), l.K.Dim(1), l.K.Dim(2)
	oh, ow := h-kh+1, w-kw+1
	xd := x.Data()
	dyd := dy.Data()
	kd := l.K.Data()

	dk := make([]float32, l.K.Len())
	dx := tensor.New(n, h, w, c)
	dxd := dx.Data()
	for b := 0; b < n; b++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				dyOff := ((b*oh+y)*ow + xx) * oc
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						inOff := ((b*h+y+ky)*w + xx + kx) * c
						for o := 0; o < oc; o++ {
							g := dyd[dyOff+o]
							if g == 0 {
								continue
							}
							kOff := ((o*kh+ky)*kw + kx) * c
							for ch := 0; ch < c; ch++ {
								dk[kOff+ch] += g * xd[inOff+ch]
								dxd[inOff+ch] += g * kd[kOff+ch]
							}
						}
					}
				}
			}
		}
	}
	for i, g := range dk {
		kd[i] -= lr * g
	}
	return dx
}

// Accuracy returns the fraction of rows of x that m classifies as labels.
func Accuracy(m *Model, x *tensor.Tensor, labels []int) (float64, error) {
	pred, err := m.Predict(x)
	if err != nil {
		return 0, err
	}
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("nn: %d predictions but %d labels", len(pred), len(labels))
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}
