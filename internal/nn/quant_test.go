package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"tensorbase/internal/tensor"
)

func trainedClusterModel(t *testing.T, seed int64) (*Model, *tensor.Tensor, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, d = 400, 12
	x := tensor.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		labels[i] = cls
		for j := 0; j < d; j++ {
			// Class c is bright in its own third of the dimensions.
			center := float32(0)
			if j/4 == cls {
				center = 2
			}
			x.Set(center+float32(rng.NormFloat64())*0.4, i, j)
		}
	}
	m := MustModel("quant-src", []int{1, d},
		NewLinear(rng, d, 24), ReLU{}, NewLinear(rng, 24, 3), Softmax{})
	if _, err := Train(m, x, labels, TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return m, x, labels
}

func TestQuantize8PreservesAccuracy(t *testing.T) {
	m, x, labels := trainedClusterModel(t, 31)
	orig, err := Accuracy(m, x.Clone(), labels)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize8(m, "quant-8bit")
	if err != nil {
		t.Fatal(err)
	}
	qacc, err := Accuracy(q, x.Clone(), labels)
	if err != nil {
		t.Fatal(err)
	}
	if orig < 0.95 {
		t.Fatalf("source model underfit: %.3f", orig)
	}
	// 8-bit symmetric quantization costs at most a few points here.
	if qacc < orig-0.05 {
		t.Fatalf("quantized accuracy %.3f vs original %.3f", qacc, orig)
	}
	if q.Name() != "quant-8bit" {
		t.Fatalf("name = %q", q.Name())
	}
}

func TestQuantize8WeightsOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := MustModel("g", []int{1, 8}, NewLinear(rng, 8, 4))
	q, err := Quantize8(m, "g8")
	if err != nil {
		t.Fatal(err)
	}
	w := q.Layers[0].(*Linear).W
	scales := channelScales(m.Layers[0].(*Linear).W)
	stride := channelStride(w)
	for i, v := range w.Data() {
		scale := scales[i/stride]
		steps := float64(v / scale)
		if math.Abs(steps-math.Round(steps)) > 1e-4 {
			t.Fatalf("weight %d = %v is not on the %v grid", i, v, scale)
		}
	}
	// Biases must be untouched.
	if !q.Layers[0].(*Linear).B.Equal(m.Layers[0].(*Linear).B) {
		t.Fatal("bias was quantized")
	}
}

func TestSaveQuantizedRoundTripEqualsQuantize8(t *testing.T) {
	m, x, _ := trainedClusterModel(t, 33)
	var buf bytes.Buffer
	if err := SaveQuantized(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuantized(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize8(m, m.Name())
	if err != nil {
		t.Fatal(err)
	}
	a := loaded.Forward(x.Clone())
	b := q.Forward(x.Clone())
	if !a.AlmostEqual(b, 1e-5) {
		t.Fatal("quantized save/load differs from Quantize8")
	}
}

func TestSaveQuantizedIsSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m := FraudFC(rng, 256)
	var full, quant bytes.Buffer
	if err := Save(&full, m); err != nil {
		t.Fatal(err)
	}
	if err := SaveQuantized(&quant, m); err != nil {
		t.Fatal(err)
	}
	// Weights shrink 4×; headers and biases keep the ratio a bit lower.
	if quant.Len()*3 >= full.Len() {
		t.Fatalf("quantized file %d bytes vs full %d, want >= 3x smaller", quant.Len(), full.Len())
	}
}

func TestSaveQuantizedCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m := CacheCNN(rng, 10)
	var buf bytes.Buffer
	if err := SaveQuantized(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuantized(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 10, 10, 1)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	a := loaded.Forward(x.Clone())
	q, err := Quantize8(m, m.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !a.AlmostEqual(q.Forward(x.Clone()), 1e-4) {
		t.Fatal("CNN quantized round trip differs")
	}
}

func TestLoadQuantizedRejectsWrongMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	m := FraudFC(rng, 16)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil { // plain TBM1
		t.Fatal(err)
	}
	if _, err := LoadQuantized(&buf); err == nil {
		t.Fatal("TBM1 input must be rejected by LoadQuantized")
	}
}

func TestQuantizeZeroWeights(t *testing.T) {
	m := MustModel("z", []int{1, 4}, &Linear{W: tensor.New(2, 4)})
	q, err := Quantize8(m, "z8")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range q.Layers[0].(*Linear).W.Data() {
		if v != 0 {
			t.Fatalf("zero weights must stay zero, got %v", v)
		}
	}
}
