package nn

import (
	"fmt"
	"math/rand"
)

// The model zoo reproduces Tables 1 and 2 of the paper. Models whose paper
// dimensions exceed what a test box should chew through (Amazon-14k-FC,
// LandCover) take a scale divisor: scale=1 reproduces the paper shapes,
// larger values shrink the scaled dimensions proportionally while keeping
// the architecture and the who-OOMs-where structure intact.

// FraudFC builds the Fraud-FC-{hidden} model of Table 1:
// 28 features → hidden → 2 classes, one hidden layer.
func FraudFC(rng *rand.Rand, hidden int) *Model {
	return MustModel(fmt.Sprintf("Fraud-FC-%d", hidden), []int{1, 28},
		NewLinear(rng, 28, hidden), ReLU{},
		NewLinear(rng, hidden, 2), Softmax{},
	)
}

// EncoderFC builds the Encoder-FC model of Table 1: 76 → 3072 → 768.
func EncoderFC(rng *rand.Rand) *Model {
	return MustModel("Encoder-FC", []int{1, 76},
		NewLinear(rng, 76, 3072), ReLU{},
		NewLinear(rng, 3072, 768),
	)
}

// Amazon14kDims returns the (features, hidden, outputs) of Amazon-14k-FC at
// the given scale divisor. scale=1 is the paper's 597540/1024/14588.
func Amazon14kDims(scale int) (in, hidden, out int) {
	if scale < 1 {
		scale = 1
	}
	in = 597540 / scale
	hidden = 1024
	out = 14588 / scale
	if in < 1 {
		in = 1
	}
	if out < 2 {
		out = 2
	}
	return
}

// Amazon14kFC builds the Amazon-14k-FC model of Table 1 at a scale divisor.
func Amazon14kFC(rng *rand.Rand, scale int) *Model {
	in, hidden, out := Amazon14kDims(scale)
	return MustModel("Amazon-14k-FC", []int{1, in},
		NewLinear(rng, in, hidden), ReLU{},
		NewLinear(rng, hidden, out),
	)
}

// DeepBenchConv1 builds the DeepBench-CONV1 model of Table 2:
// 112×112×64 input, 64 1×1×64 kernels, stride 1, no padding.
func DeepBenchConv1(rng *rand.Rand) *Model {
	return MustModel("DeepBench-CONV1", []int{1, 112, 112, 64},
		NewConv2D(rng, 64, 1, 1, 64),
	)
}

// LandCoverDims returns the (height/width, outChannels) of the LandCover
// model at the given scale divisor. scale=1 is the paper's 2500×2500×3 input
// with 2048 1×1×3 kernels.
func LandCoverDims(scale int) (hw, outC int) {
	if scale < 1 {
		scale = 1
	}
	hw = 2500 / scale
	outC = 2048 / scale
	if hw < 4 {
		hw = 4
	}
	if outC < 4 {
		outC = 4
	}
	return
}

// LandCover builds the LandCover model of Table 2 at a scale divisor.
func LandCover(rng *rand.Rand, scale int) *Model {
	hw, outC := LandCoverDims(scale)
	return MustModel("LandCover", []int{1, hw, hw, 3},
		NewConv2D(rng, outC, 1, 1, 3),
	)
}

// BoschFC builds the Sec. 7.2.1 model: one hidden layer of 256 neurons and a
// 2-neuron output over 968 augmented features (W is 256×968).
func BoschFC(rng *rand.Rand, features int) *Model {
	return MustModel("Bosch-FC", []int{1, features},
		NewLinear(rng, features, 256), ReLU{},
		NewLinear(rng, 256, 2), Softmax{},
	)
}

// CacheCNN builds the Sec. 7.2.2 CNN: two convolutional layers (32 then 16
// 3×3 kernels) followed by fully connected layers of 64 and 10 neurons, over
// side×side single-channel images.
func CacheCNN(rng *rand.Rand, side int) *Model {
	convOut := side - 4 // two valid 3×3 convs
	flat := convOut * convOut * 16
	return MustModel("Cache-CNN", []int{1, side, side, 1},
		NewConv2D(rng, 32, 3, 3, 1), ReLU{},
		NewConv2D(rng, 16, 3, 3, 32), ReLU{},
		Flatten{},
		NewLinear(rng, flat, 64), ReLU{},
		NewLinear(rng, 64, 10), Softmax{},
	)
}

// CacheFFNN builds the Sec. 7.2.2 FFNN: four fully connected layers of 128,
// 1024, 2048 and 64 neurons plus a 10-class head, over flat inputs of the
// given width (784 for MNIST).
func CacheFFNN(rng *rand.Rand, in int) *Model {
	return MustModel("Cache-FFNN", []int{1, in},
		NewLinear(rng, in, 128), ReLU{},
		NewLinear(rng, 128, 1024), ReLU{},
		NewLinear(rng, 1024, 2048), ReLU{},
		NewLinear(rng, 2048, 64), ReLU{},
		NewLinear(rng, 64, 10), Softmax{},
	)
}
