package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tensorbase/internal/tensor"
)

// Binary model format ("TBM1"): loading a model into the database stores it
// in this format in the catalog, mirroring how the paper's netsDB prototype
// loads models as analyzable operator graphs.
//
//	magic "TBM1" | name | inShape | layerCount | layers...
//
// Strings are uvarint length + bytes; shapes are uvarint rank + uvarint
// dims; tensors are shape + raw little-endian float32 payload.

const modelMagic = "TBM1"

// Layer type tags in the wire format.
const (
	tagLinear  = byte(1)
	tagConv2D  = byte(2)
	tagReLU    = byte(3)
	tagSigmoid = byte(4)
	tagSoftmax = byte(5)
	tagFlatten = byte(6)
)

// Save writes the model to w in the TBM1 binary format.
func Save(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	writeString(bw, m.ModelName)
	writeShape(bw, m.InShape)
	writeUvarint(bw, uint64(len(m.Layers)))
	for i, l := range m.Layers {
		if err := writeLayer(bw, l); err != nil {
			return fmt.Errorf("nn: save layer %d (%s): %w", i, l.Name(), err)
		}
	}
	return bw.Flush()
}

func writeLayer(bw *bufio.Writer, l Layer) error {
	switch l := l.(type) {
	case *Linear:
		bw.WriteByte(tagLinear)
		writeTensor(bw, l.W)
		hasBias := byte(0)
		if l.B != nil {
			hasBias = 1
		}
		bw.WriteByte(hasBias)
		if l.B != nil {
			writeTensor(bw, l.B)
		}
	case *Conv2D:
		bw.WriteByte(tagConv2D)
		writeTensor(bw, l.K)
		im2col := byte(0)
		if l.UseIm2Col {
			im2col = 1
		}
		bw.WriteByte(im2col)
	case ReLU:
		bw.WriteByte(tagReLU)
	case Sigmoid:
		bw.WriteByte(tagSigmoid)
	case Softmax:
		bw.WriteByte(tagSoftmax)
	case Flatten:
		bw.WriteByte(tagFlatten)
	default:
		return fmt.Errorf("unsupported layer type %T", l)
	}
	return nil
}

// Load reads a model in the TBM1 binary format.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("nn: bad magic %q, want %q", magic, modelMagic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, fmt.Errorf("nn: reading name: %w", err)
	}
	inShape, err := readShape(br)
	if err != nil {
		return nil, fmt.Errorf("nn: reading input shape: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("nn: reading layer count: %w", err)
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("nn: implausible layer count %d", count)
	}
	layers := make([]Layer, 0, count)
	for i := uint64(0); i < count; i++ {
		l, err := readLayer(br)
		if err != nil {
			return nil, fmt.Errorf("nn: reading layer %d: %w", i, err)
		}
		layers = append(layers, l)
	}
	return NewModel(name, inShape, layers...)
}

func readLayer(br *bufio.Reader) (Layer, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagLinear:
		w, err := readTensor(br)
		if err != nil {
			return nil, err
		}
		if w.Rank() != 2 {
			return nil, fmt.Errorf("linear weight must be 2-D, got %v", w.Shape())
		}
		hasBias, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		l := &Linear{W: w}
		if hasBias == 1 {
			b, err := readTensor(br)
			if err != nil {
				return nil, err
			}
			if b.Len() != w.Dim(0) {
				return nil, fmt.Errorf("linear bias length %d, want %d", b.Len(), w.Dim(0))
			}
			l.B = b
		}
		return l, nil
	case tagConv2D:
		k, err := readTensor(br)
		if err != nil {
			return nil, err
		}
		if k.Rank() != 4 {
			return nil, fmt.Errorf("conv2d kernel must be 4-D, got %v", k.Shape())
		}
		im2col, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		return &Conv2D{K: k, UseIm2Col: im2col == 1}, nil
	case tagReLU:
		return ReLU{}, nil
	case tagSigmoid:
		return Sigmoid{}, nil
	case tagSoftmax:
		return Softmax{}, nil
	case tagFlatten:
		return Flatten{}, nil
	default:
		return nil, fmt.Errorf("unknown layer tag %d", tag)
	}
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeString(bw *bufio.Writer, s string) {
	writeUvarint(bw, uint64(len(s)))
	bw.WriteString(s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeShape(bw *bufio.Writer, shape []int) {
	writeUvarint(bw, uint64(len(shape)))
	for _, d := range shape {
		writeUvarint(bw, uint64(d))
	}
}

func readShape(br *bufio.Reader) ([]int, error) {
	rank, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if rank == 0 || rank > 8 {
		return nil, fmt.Errorf("implausible tensor rank %d", rank)
	}
	shape := make([]int, rank)
	vol := uint64(1)
	for i := range shape {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if d > 1<<31 {
			return nil, fmt.Errorf("implausible dimension %d", d)
		}
		shape[i] = int(d)
		// Pre-multiply bound: `vol *= d` with int arithmetic can wrap past
		// the volume check (2^33 × 2^31 ≡ 0 mod 2^64), letting a hostile
		// header demand an enormous allocation downstream.
		if d != 0 && vol > (1<<33)/d {
			return nil, fmt.Errorf("implausible tensor volume")
		}
		vol *= d
	}
	return shape, nil
}

func writeTensor(bw *bufio.Writer, t *tensor.Tensor) {
	writeShape(bw, t.Shape())
	var buf [4]byte
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		bw.Write(buf[:])
	}
}

// readPayload reads exactly n bytes in bounded chunks. Growing the buffer
// only as data actually arrives means a corrupt header claiming a huge
// tensor fails with an EOF after at most one chunk past the real input,
// instead of allocating the claimed size up front.
func readPayload(br *bufio.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		start := len(buf)
		buf = append(buf, make([]byte, min(n-start, chunk))...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func readTensor(br *bufio.Reader) (*tensor.Tensor, error) {
	shape, err := readShape(br)
	if err != nil {
		return nil, err
	}
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	// Materialise the payload before tensor.New so the allocation is
	// backed by bytes that actually exist in the input.
	payload, err := readPayload(br, 4*vol)
	if err != nil {
		return nil, err
	}
	t := tensor.New(shape...)
	data := t.Data()
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return t, nil
}
