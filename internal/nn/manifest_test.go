package nn

import (
	"math/rand"
	"testing"

	"tensorbase/internal/blockstore"
	"tensorbase/internal/tensor"
)

// forwardBits runs a model over a deterministic batch and returns the raw
// output slice for bit-exact comparison.
func forwardBits(m *Model, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	shape := append([]int(nil), m.InShape...)
	shape[0] = 4
	x := tensor.New(shape...)
	for i, d := range x.Data() {
		_ = d
		x.Data()[i] = rng.Float32()*2 - 1
	}
	return append([]float32(nil), m.Forward(x).Data()...)
}

// TestManifestRoundTrip: model → blocks → encode → decode → assemble must
// reproduce the model bit-identically, and the assembled model's tensors
// must alias store memory (shared with a second identical assembly).
func TestManifestRoundTrip(t *testing.T) {
	st := blockstore.New()
	for _, build := range []func() *Model{
		func() *Model { return FraudFC(rand.New(rand.NewSource(1)), 32) },
		func() *Model { return CacheCNN(rand.New(rand.NewSource(2)), 6) },
		func() *Model { return EncoderFC(rand.New(rand.NewSource(3))) },
	} {
		orig := build()
		mf, _, err := BlockModel(orig, st)
		if err != nil {
			t.Fatalf("%s: BlockModel: %v", orig.Name(), err)
		}
		raw := EncodeManifest(mf)
		back, err := DecodeManifest(raw)
		if err != nil {
			t.Fatalf("%s: DecodeManifest: %v", orig.Name(), err)
		}
		got, err := ModelFromManifest(back, st)
		if err != nil {
			t.Fatalf("%s: ModelFromManifest: %v", orig.Name(), err)
		}
		want := forwardBits(orig, 99)
		have := forwardBits(got, 99)
		if len(want) != len(have) {
			t.Fatalf("%s: output length %d vs %d", orig.Name(), len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s: output[%d] = %v, want bit-identical %v", orig.Name(), i, have[i], want[i])
			}
		}
		ReleaseManifest(back, st)
	}
	st.Sweep()
	if s := st.Stats(); s.ResidentBlocks != 0 || s.ResidentBytes != 0 {
		t.Fatalf("store not empty after release+sweep: %+v", s)
	}
}

// TestManifestSharesAssemblies: two models with identical weights must
// share tensor memory — the second assembly returns the same backing
// slices, so resident bytes do not grow.
func TestManifestSharesAssemblies(t *testing.T) {
	st := blockstore.New()
	a := FraudFC(rand.New(rand.NewSource(7)), 32)
	b := FraudFC(rand.New(rand.NewSource(7)), 32)
	mfA, _, err := BlockModel(a, st)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := ModelFromManifest(mfA, st)
	if err != nil {
		t.Fatal(err)
	}
	resident1 := st.Stats().ResidentBytes
	mfB, fresh, err := BlockModel(b, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("identical model added %d new blocks", len(fresh))
	}
	mb, err := ModelFromManifest(mfB, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().ResidentBytes; got != resident1 {
		t.Fatalf("second identical model grew resident bytes %d -> %d", resident1, got)
	}
	wa, wb := ma.Layers[0].(*Linear).W.Data(), mb.Layers[0].(*Linear).W.Data()
	if &wa[0] != &wb[0] {
		t.Fatal("identical tensors do not share backing memory")
	}
	ReleaseManifest(mfA, st)
	ReleaseManifest(mfB, st)
	st.Sweep()
}

// TestManifestDanglingBlock: assembling a manifest whose blocks are absent
// must fail cleanly without taking references.
func TestManifestDanglingBlock(t *testing.T) {
	st := blockstore.New()
	m := FraudFC(rand.New(rand.NewSource(9)), 16)
	mf, _, err := BlockModel(m, st)
	if err != nil {
		t.Fatal(err)
	}
	st.Sweep() // nothing referenced: all staged blocks are collected
	if _, err := ModelFromManifest(mf, st); err == nil {
		t.Fatal("assembled a manifest with dangling blocks")
	}
}

// TestDecodeManifestRejectsGarbage: hostile manifests fail cleanly.
func TestDecodeManifestRejectsGarbage(t *testing.T) {
	st := blockstore.New()
	mf, _, err := BlockModel(FraudFC(rand.New(rand.NewSource(10)), 16), st)
	if err != nil {
		t.Fatal(err)
	}
	good := EncodeManifest(mf)
	if _, err := DecodeManifest(nil); err == nil {
		t.Fatal("nil manifest accepted")
	}
	if _, err := DecodeManifest([]byte("TBMF")); err == nil {
		t.Fatal("truncated manifest accepted")
	}
	if _, err := DecodeManifest(append(append([]byte(nil), good...), 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	for _, cut := range []int{6, len(good) / 2, len(good) - 5} {
		if _, err := DecodeManifest(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
