package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"tensorbase/internal/tensor"
)

func TestQuantizeResidentCloseToF32(t *testing.T) {
	m, x, _ := trainedClusterModel(t, 41)
	q, err := QuantizeResident(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range q.Layers {
		if _, isF32 := l.(*Linear); isF32 {
			t.Fatal("resident model still holds an f32 Linear layer")
		}
	}
	want := m.Forward(x.Clone())
	got := q.Forward(x.Clone())
	n := want.Dim(0)
	agree := 0
	for i := 0; i < n; i++ {
		for j := 0; j < want.Dim(1); j++ {
			d := float64(want.At(i, j) - got.At(i, j))
			if math.Abs(d) > 0.05 {
				t.Fatalf("row %d class %d: f32 %v vs quantized %v", i, j, want.At(i, j), got.At(i, j))
			}
		}
		if want.ArgMaxRow(i) == got.ArgMaxRow(i) {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.99 {
		t.Fatalf("top-class agreement %.3f, want >= 0.99", frac)
	}
}

// TestQuantResidentBatchIndependence is the property the serving layer
// leans on: per-row activation scales make every output row a function of
// that row alone, so splitting or coalescing a batch cannot change bits.
func TestQuantResidentBatchIndependence(t *testing.T) {
	m, x, _ := trainedClusterModel(t, 42)
	q, err := QuantizeResident(m)
	if err != nil {
		t.Fatal(err)
	}
	batch := x.SliceRows(0, 16)
	whole := q.Forward(batch.Clone())
	for i := 0; i < 16; i++ {
		one := q.Forward(batch.SliceRows(i, i+1).Clone())
		for j := 0; j < whole.Dim(1); j++ {
			if math.Float32bits(one.At(0, j)) != math.Float32bits(whole.At(i, j)) {
				t.Fatalf("row %d: batched %x vs solo %x", i, math.Float32bits(whole.At(i, j)), math.Float32bits(one.At(0, j)))
			}
		}
	}
}

func TestQuantizeResidentCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := CacheCNN(rng, 10)
	q, err := QuantizeResident(m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 10, 10, 1)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	want := m.Forward(x.Clone())
	got := q.Forward(x.Clone())
	if got.Dim(0) != want.Dim(0) || got.Dim(1) != want.Dim(1) {
		t.Fatalf("shape %v vs %v", got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		if d := math.Abs(float64(want.Data()[i] - got.Data()[i])); d > 0.05 {
			t.Fatalf("output %d: f32 %v vs quantized %v", i, want.Data()[i], got.Data()[i])
		}
	}
}

func TestQuantizeResidentShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := FraudFC(rng, 256)
	q, err := QuantizeResident(m)
	if err != nil {
		t.Fatal(err)
	}
	// The packed SWAR panels cost 8 bytes per 3 weights plus chunk/panel
	// padding, so the resident image lands near 2/3 of f32 — smaller than
	// full precision, though above the 1/4 of the raw int8 payload the
	// TBQ1 file stores (TestSaveQuantizedIsSmaller covers that ratio).
	if q.ParamBytes() >= m.ParamBytes() {
		t.Fatalf("resident %d bytes vs f32 %d, want smaller", q.ParamBytes(), m.ParamBytes())
	}
}

func TestReadQuantTensorTruncatedPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m := FraudFC(rng, 32)
	var buf bytes.Buffer
	if err := SaveQuantized(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := LoadQuantized(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
		if _, err := LoadQuantizedResident(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("resident truncation at %d must fail", cut)
		}
	}
}

// mustSaveQuantized builds a seed TBQ1 image (fuzz setup).
func mustSaveQuantized(m *Model) []byte {
	var buf bytes.Buffer
	if err := SaveQuantized(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLoadQuantized drives both TBQ1 loaders with arbitrary bytes: they
// must never panic or allocate unboundedly, and anything LoadQuantized
// accepts must also load resident with the same layer structure.
func FuzzLoadQuantized(f *testing.F) {
	rng := rand.New(rand.NewSource(46))
	seed := mustSaveQuantized(FraudFC(rng, 16))
	f.Add([]byte(nil))
	f.Add([]byte("TBQ1"))
	f.Add(seed)
	f.Add(seed[:len(seed)-7])
	f.Add(mustSaveQuantized(CacheCNN(rng, 6)))
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadQuantized(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		q, err := LoadQuantizedResident(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("accepted by LoadQuantized but not resident: %v", err)
		}
		if len(q.Layers) != len(m.Layers) {
			t.Fatalf("resident has %d layers, dequantized %d", len(q.Layers), len(m.Layers))
		}
	})
}
