package engine

import (
	"strings"
	"testing"
)

func seedDialectTable(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE sales (id INT, amount DOUBLE, who TEXT)")
	mustExec(t, db, `INSERT INTO sales VALUES
		(1, 10.5, 'alice'), (2, 200, 'bob'), (3, 3.25, 'carol'),
		(4, 40, 'alice'), (5, 0.5, 'bob')`)
}

func TestAggregatesGlobal(t *testing.T) {
	db := openDB(t, Options{})
	seedDialectTable(t, db)
	res := mustExec(t, db, "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].Int != 5 {
		t.Fatalf("count = %v", r[0])
	}
	if r[1].Float != 254.25 || r[3].Float != 0.5 || r[4].Float != 200 {
		t.Fatalf("row = %v", r)
	}
	if r[2].Float != 254.25/5 {
		t.Fatalf("avg = %v", r[2])
	}
	if res.Schema.Cols[0].Name != "count" || res.Schema.Cols[1].Name != "sum_amount" {
		t.Fatalf("schema = %+v", res.Schema.Cols)
	}
}

func TestAggregatesGroupBy(t *testing.T) {
	db := openDB(t, Options{})
	seedDialectTable(t, db)
	res := mustExec(t, db, "SELECT who, COUNT(*), SUM(amount) FROM sales WHERE amount > 1 GROUP BY who")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// HashAggregate emits groups sorted by key.
	want := []struct {
		who   string
		count int64
		sum   float64
	}{{"alice", 2, 50.5}, {"bob", 1, 200}, {"carol", 1, 3.25}}
	for i, w := range want {
		r := res.Rows[i]
		if r[0].Str != w.who || r[1].Int != w.count || r[2].Float != w.sum {
			t.Fatalf("row %d = %v, want %+v", i, r, w)
		}
	}
	// Non-grouped bare column is rejected; PREDICT + aggregate is rejected.
	if _, err := db.Exec("SELECT who, SUM(amount) FROM sales"); err == nil {
		t.Fatal("bare column without GROUP BY must fail")
	}
	if _, err := db.Exec("SELECT PREDICT(m, f), COUNT(*) FROM sales"); err == nil ||
		!strings.Contains(err.Error(), "aggregate") {
		t.Fatalf("PREDICT+aggregate must fail, got %v", err)
	}
	// GROUP BY without aggregates is DISTINCT.
	res = mustExec(t, db, "SELECT who FROM sales GROUP BY who ORDER BY who")
	if len(res.Rows) != 3 || res.Rows[0][0].Str != "alice" || res.Rows[2][0].Str != "carol" {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
}

func TestCTEQueries(t *testing.T) {
	db := openDB(t, Options{})
	seedDialectTable(t, db)
	res := mustExec(t, db, "WITH big AS (SELECT id, amount FROM sales WHERE amount > 5) SELECT id FROM big ORDER BY id DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 4 || res.Rows[1][0].Int != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Chained CTEs: the second sees the first.
	res = mustExec(t, db, "WITH a AS (SELECT id, amount FROM sales WHERE amount >= 10), b AS (SELECT id FROM a WHERE id > 1) SELECT id FROM b ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 2 || res.Rows[1][0].Int != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Aggregates over a CTE.
	res = mustExec(t, db, "WITH big AS (SELECT amount FROM sales WHERE amount > 5) SELECT COUNT(*), SUM(amount) FROM big")
	if res.Rows[0][0].Int != 3 || res.Rows[0][1].Float != 250.5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Unknown CTE body table surfaces the error.
	if _, err := db.Exec("WITH x AS (SELECT a FROM nope) SELECT a FROM x"); err == nil {
		t.Fatal("CTE over missing table must fail")
	}
	// Parenthesized and comment-prefixed reads execute.
	res = mustExec(t, db, "(SELECT id FROM sales WHERE id = 3)")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "-- audit\nSELECT id FROM sales LIMIT 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestResultSnapshotCSN(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	res := mustExec(t, db, "SELECT a FROM t")
	if res.SnapshotCSN == 0 || res.SnapshotCSN != db.CommittedCSN() {
		t.Fatalf("SnapshotCSN = %d, committed = %d", res.SnapshotCSN, db.CommittedCSN())
	}
	before := res.SnapshotCSN
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	res = mustExec(t, db, "SELECT a FROM t")
	if res.SnapshotCSN <= before {
		t.Fatalf("SnapshotCSN did not advance: %d -> %d", before, res.SnapshotCSN)
	}
	// CTE reads report the snapshot their materialisation pinned.
	res = mustExec(t, db, "WITH x AS (SELECT a FROM t) SELECT a FROM x")
	if res.SnapshotCSN != db.CommittedCSN() {
		t.Fatalf("CTE SnapshotCSN = %d, committed = %d", res.SnapshotCSN, db.CommittedCSN())
	}
}
