// Package engine is the embedded database: it wires the paged storage
// layer, the catalog, the SQL front end, and the adaptive inference stack
// (optimizer + executor + UDF registry) into a single embeddable object.
// This is the public face of the system — open a database, create tables,
// load models, and run SQL with PREDICT() nested in it.
package engine

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tensorbase/internal/blockstore"
	"tensorbase/internal/cache"
	"tensorbase/internal/catalog"
	"tensorbase/internal/core"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/exec"
	"tensorbase/internal/fault"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/lockmgr"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/obs"
	"tensorbase/internal/parallel"
	"tensorbase/internal/sql"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
	"tensorbase/internal/udf"
	"tensorbase/internal/wal"
)

// Options configures an engine instance.
type Options struct {
	// BufferFrames is the buffer pool size in pages (default 1024,
	// i.e. 32 MiB at the 32 KiB page size).
	BufferFrames int
	// MemoryBudget caps whole-tensor (UDF-centric) working sets in
	// bytes; 0 means unlimited. Exceeding it yields memlimit.ErrOOM.
	MemoryBudget int64
	// MemoryThreshold is the adaptive optimizer's per-operator limit:
	// operators estimated above it run relation-centrically. 0 disables
	// the relation-centric switch.
	MemoryThreshold int64
	// InferBatch is the micro-batch size for PREDICT (default 256).
	InferBatch int
	// ResultCache enables the ANN inference-result cache (Sec. 5/7.2.2)
	// on the PREDICT path: one HNSW-indexed cache per loaded model, probed
	// per row before the model runs.
	ResultCache bool
	// ResultCacheDistance is the squared-L2 threshold within which a
	// cached prediction is reused. 0 reuses exact feature matches only.
	ResultCacheDistance float64
	// ResultCacheMaxEntries caps each model's cache; once full, new
	// results are served but no longer admitted. 0 means unbounded.
	ResultCacheMaxEntries int
	// DisablePredictPipeline forces PREDICT to pull input batches
	// serially instead of overlapping scan/decode with model compute.
	DisablePredictPipeline bool
	// PredictQuantized serves every PREDICT from the model's int8-resident
	// quantized twin by default, as if each query said OPTIONS (quantized).
	// Queries over models without a quantized twin fail.
	PredictQuantized bool
	// PredictCoalesceWindow is how long a PREDICT leading a cross-query
	// batch waits for concurrent PREDICTs over the same model to join its
	// model invocation (default 500µs). The window only opens when at
	// least two PREDICTs over the model are in flight, so it adds no
	// latency to single-query workloads.
	PredictCoalesceWindow time.Duration
	// DisablePredictCoalesce turns cross-query invocation coalescing off:
	// every PREDICT pays its own model calls.
	DisablePredictCoalesce bool
	// QueryTimeout bounds every statement's execution; a query past the
	// deadline fails with context.DeadlineExceeded. 0 means no limit.
	// Contexts passed to ExecContext/QueryContext compose with it (the
	// earlier deadline wins).
	QueryTimeout time.Duration
	// SlowQueryThreshold enables the slow-query log: any statement whose
	// wall time crosses it produces exactly one log line carrying the
	// statement, its latency, row count, and per-operator span summary.
	// SELECTs are instrumented whenever the threshold is set (two clock
	// reads per operator call), so the log line has real spans; leave it 0
	// on latency-critical deployments that do not want that overhead.
	SlowQueryThreshold time.Duration
	// SlowQueryLog is where slow-query lines go (default os.Stderr).
	SlowQueryLog io.Writer
	// CheckpointInterval runs the background checkpointer (flush pages,
	// commit the catalog, truncate the WAL) on a timer. 0 disables the
	// timer; the WAL-size trigger below still applies.
	CheckpointInterval time.Duration
	// CheckpointWALBytes triggers a checkpoint once the WAL grows past
	// this size (default 64 MiB; negative disables the size trigger).
	CheckpointWALBytes int64
	// Faults installs a fault injector before Open-time recovery runs, so
	// tests can schedule crashes inside WAL replay (see SetFaults for
	// points installed after Open).
	Faults *fault.Injector
	// Follower opens the engine as a replication replica (see follower.go):
	// local writes are rejected, and recovery resumes at the highest
	// COMMITTED CSN rather than the highest CSN the log mentions — a group
	// whose apply crashed mid-way must not count as applied, or the stream
	// would skip re-delivering it. A primary must NOT set this: its burned
	// (aborted) CSNs may never be reissued.
	Follower bool
}

func (o Options) withDefaults() Options {
	if o.BufferFrames <= 0 {
		o.BufferFrames = 1024
	}
	if o.InferBatch <= 0 {
		o.InferBatch = 256
	}
	if o.CheckpointWALBytes == 0 {
		o.CheckpointWALBytes = 64 << 20
	}
	return o
}

// DB is an open database instance. It is safe for concurrent use,
// including DDL: every statement acquires statement-scoped table locks
// (shared for SELECT/PREDICT, exclusive for INSERT) and CREATE/DROP take
// the catalog DDL latch, so queries over distinct tables run concurrently
// while a DROP waits out in-flight scans of its table.
type DB struct {
	path   string
	disk   *storage.DiskManager
	pool   *storage.BufferPool
	cat    *catalog.Catalog
	budget *memlimit.Budget
	opt    *core.Optimizer
	udfs   *udf.Registry
	opts   Options

	// locks serializes conflicting statements (see internal/lockmgr):
	// per-table reader/writer locks plus the catalog DDL latch, acquired
	// per statement in deterministic order.
	locks *lockmgr.Manager

	// Vector indexes (Sec. 5), keyed by (table, column).
	vmu      sync.Mutex
	vindexes map[vindexKey]*vectorIndex

	// Per-model inference-result caches (Sec. 5), present when
	// Options.ResultCache is set, and per-model cross-query invocation
	// coalescers (present unless DisablePredictCoalesce).
	cmu        sync.Mutex
	caches     map[string]*cache.ResultCache
	coalescers map[string]*udf.Coalescer

	// Serving-path counters aggregated across every PREDICT.
	inferStats udf.InferStats

	// panics counts query-level panics contained by Exec (panics inside
	// UDF invocations are contained deeper and counted in inferStats).
	panics atomic.Int64

	// Observability: the metrics registry unifying every component's
	// counters (exported via DB.Metrics and /metrics), the slow-query log,
	// and the handles pushed on the query path.
	reg           *obs.Registry
	slow          *obs.SlowLog
	mQueries      *obs.Counter
	mQueryErrors  *obs.Counter
	mSlowQueries  *obs.Counter
	mVindexStale  *obs.Counter
	mQueryLatency *obs.Histogram
	// mPredictQuantized counts PREDICTs served by an int8-resident twin.
	mPredictQuantized *obs.Counter

	// blocks is the content-addressed weight-block store: every loaded
	// model's tensors alias assemblies of refcounted 64 KiB blocks, shared
	// across fine-tuned variants (see internal/blockstore). manifests maps
	// each durable model to the manifest whose references it holds; models
	// with a nil manifest entry are memory-resident only (unserializable
	// layers) and skipped by the catalog checkpoint and the WAL.
	blocks    *blockstore.Store
	manMu     sync.Mutex
	manifests map[string]*nn.Manifest
	// persistedBlocks tracks which block files already exist under
	// .blocks/, so an unchanged checkpoint writes zero model bytes. Only
	// loadCatalog (open) and saveCatalog (serialized by the checkpoint
	// path) touch it.
	persistedBlocks map[blockstore.Hash]bool

	// gen is the committed catalog generation (see persist.go).
	gen uint64
	// faults injects crashes into catalog persistence (tests only).
	faults *fault.Injector

	// The lock-free serving substrate (see txn.go / recovery.go /
	// checkpoint.go): the write-ahead log, the commit-sequence-number
	// allocator, and the atomically published committed horizon that read
	// statements pin their snapshots to.
	wal          *wal.Log
	csnMu        sync.Mutex // guards nextCSN
	nextCSN      uint64
	committedCSN atomic.Uint64
	pubMu        sync.Mutex // guards in-order CSN publication and shipper
	pubCond      *sync.Cond

	// shipper, when set, receives every published commit in CSN order (see
	// publish in txn.go) — the replication primary's tap into the commit
	// protocol. follower marks this engine a replication replica: local
	// writes are rejected and ApplyReplicated (follower.go) is the only
	// mutation path.
	shipper  Shipper
	follower atomic.Bool

	// Background checkpointer lifecycle and counters.
	ckptMu      sync.Mutex // one checkpoint at a time
	ckptStop    chan struct{}
	ckptDone    chan struct{}
	ckptOnce    sync.Once // stopCheckpointer is called by Crash and Close
	checkpoints atomic.Uint64
	crashed     atomic.Bool

	// mSnapshotReads counts read statements served lock-free off a
	// pinned snapshot.
	mSnapshotReads *obs.Counter

	// ckptInfo carries the last checkpoint's recovery inputs from
	// loadCatalog to recover (nil on a fresh database or a v1 meta).
	ckptInfo *checkpointInfo
}

// Open creates or opens the database file at path, restoring the catalog
// written by the last checkpoint and replaying the write-ahead log: every
// statement whose commit record reached the log before the crash is
// restored; uncommitted work is discarded (see recovery.go).
func Open(path string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	disk, err := storage.OpenDisk(path)
	if err != nil {
		return nil, err
	}
	wlog, err := wal.Open(path+".wal", opts.Faults)
	if err != nil {
		disk.Close()
		return nil, err
	}
	db := &DB{
		path:       path,
		disk:       disk,
		pool:       storage.NewBufferPool(disk, opts.BufferFrames),
		cat:        catalog.New(),
		budget:     memlimit.NewBudget(opts.MemoryBudget),
		opt:        core.NewOptimizer(opts.MemoryThreshold),
		udfs:       udf.NewRegistry(),
		opts:       opts,
		locks:      lockmgr.New(),
		caches:     make(map[string]*cache.ResultCache),
		coalescers: make(map[string]*udf.Coalescer),
		reg:        obs.NewRegistry(),
		wal:        wlog,
		faults:     opts.Faults,

		blocks:          blockstore.New(),
		manifests:       make(map[string]*nn.Manifest),
		persistedBlocks: make(map[blockstore.Hash]bool),
	}
	db.pubCond = sync.NewCond(&db.pubMu)
	db.registerMetrics()
	if opts.SlowQueryThreshold > 0 {
		w := opts.SlowQueryLog
		if w == nil {
			w = os.Stderr
		}
		db.slow = obs.NewSlowLog(w, opts.SlowQueryThreshold, db.mSlowQueries)
	}
	if err := db.loadCatalog(); err != nil {
		wlog.Close()
		disk.Close()
		return nil, err
	}
	if opts.Follower {
		db.follower.Store(true)
	}
	if err := db.recover(); err != nil {
		wlog.Close()
		disk.Close()
		return nil, fmt.Errorf("engine: WAL recovery: %w", err)
	}
	db.startCheckpointer()
	return db, nil
}

// registerMetrics builds the engine's metric set: pushed metrics for the
// query path, and pull-model (func) metrics absorbing the counters the
// storage, cache, udf, and parallel packages already keep. The hot paths
// pay nothing — func metrics are read at scrape time only.
func (db *DB) registerMetrics() {
	r := db.reg
	db.mQueries = r.Counter("tensorbase_queries_total", "SQL statements executed")
	db.mQueryErrors = r.Counter("tensorbase_query_errors_total", "SQL statements that returned an error")
	db.mSlowQueries = r.Counter("tensorbase_slow_queries_total", "statements that crossed SlowQueryThreshold")
	db.mVindexStale = r.Counter("tensorbase_vindex_stale_queries_total", "nearest-neighbour lookups served by a vector index missing newer rows")
	db.mQueryLatency = r.Histogram("tensorbase_query_seconds", "statement wall time", obs.LatencyBuckets)
	db.mPredictQuantized = r.Counter("tensorbase_predict_quantized_total", "PREDICTs served by an int8-resident quantized twin")

	r.CounterFunc("tensorbase_pool_hits_total", "buffer pool page hits", func() float64 { return float64(db.pool.Stats().Hits) })
	r.CounterFunc("tensorbase_pool_misses_total", "buffer pool page misses", func() float64 { return float64(db.pool.Stats().Misses) })
	r.CounterFunc("tensorbase_pool_evictions_total", "buffer pool evictions", func() float64 { return float64(db.pool.Stats().Evictions) })
	r.CounterFunc("tensorbase_pool_dirty_writebacks_total", "evictions that wrote a dirty page back", func() float64 { return float64(db.pool.Stats().DirtyOut) })
	r.GaugeFunc("tensorbase_pool_pinned_frames", "buffer frames currently pinned", func() float64 { return float64(db.pool.Pinned()) })
	r.CounterFunc("tensorbase_disk_reads_total", "pages read from disk", func() float64 { r, _ := db.disk.IOStats(); return float64(r) })
	r.CounterFunc("tensorbase_disk_writes_total", "pages written to disk", func() float64 { _, w := db.disk.IOStats(); return float64(w) })
	r.GaugeFunc("tensorbase_mem_reserved_bytes", "whole-tensor memory currently reserved", func() float64 { return float64(db.budget.Reserved()) })
	r.GaugeFunc("tensorbase_mem_peak_bytes", "peak whole-tensor memory reservation", func() float64 { return float64(db.budget.Peak()) })

	r.CounterFunc("tensorbase_cache_hits_total", "PREDICT rows answered from a result cache", func() float64 { return float64(db.inferStats.Hits.Load()) })
	r.CounterFunc("tensorbase_cache_misses_total", "PREDICT rows that ran the model", func() float64 { return float64(db.inferStats.Misses.Load()) })
	r.CounterFunc("tensorbase_cache_shared_total", "PREDICT rows that joined another request's flight", func() float64 { return float64(db.inferStats.Shared.Load()) })
	r.CounterFunc("tensorbase_cache_rejected_total", "result-cache inserts rejected by the admission cap", func() float64 {
		var n int64
		db.cmu.Lock()
		for _, rc := range db.caches {
			n += rc.Counters().Rejected
		}
		db.cmu.Unlock()
		return float64(n)
	})
	r.GaugeFunc("tensorbase_cache_entries", "entries across all result caches", func() float64 {
		var n int
		db.cmu.Lock()
		for _, rc := range db.caches {
			n += rc.Len()
		}
		db.cmu.Unlock()
		return float64(n)
	})
	r.CounterFunc("tensorbase_predict_udf_calls_total", "model batch invocations", func() float64 { return float64(db.inferStats.UDFCalls.Load()) })
	r.CounterFunc("tensorbase_predict_batches_total", "PREDICT micro-batches processed", func() float64 { return float64(db.inferStats.Batches.Load()) })
	r.CounterFunc("tensorbase_predict_batches_allhit_total", "batches that skipped the model entirely", func() float64 { return float64(db.inferStats.BatchesAllHit.Load()) })
	r.CounterFunc("tensorbase_pipeline_fills_total", "producer finished a batch before it was asked", func() float64 { return float64(db.inferStats.PipelineFills.Load()) })
	r.CounterFunc("tensorbase_pipeline_stalls_total", "consumer waits on the batch producer", func() float64 { return float64(db.inferStats.PipelineStalls.Load()) })
	r.CounterFunc("tensorbase_predict_colbatches_total", "PREDICT micro-batches decoded columnarly (no per-row copy)", func() float64 { return float64(db.inferStats.ColBatches.Load()) })
	r.CounterFunc("tensorbase_kernel_serial_runs_total", "matmul kernels run on the caller's goroutine alone", func() float64 { return float64(tensor.Kernels().SerialRuns) })
	r.CounterFunc("tensorbase_kernel_fanouts_total", "matmul kernels that drew extra workers from the compute budget", func() float64 { return float64(tensor.Kernels().FanOuts) })
	r.CounterFunc("tensorbase_kernel_q8_calls_total", "int8 GEMM kernel invocations", func() float64 { return float64(tensor.Kernels().Q8Calls) })
	r.CounterFunc("tensorbase_panics_total", "panics contained as query errors", func() float64 { return float64(db.panics.Load() + db.inferStats.Panics.Load()) })

	r.CounterFunc("tensorbase_predict_coalesced_total", "PREDICT rows that rode another query's model invocation", func() float64 { return float64(db.coalesceStats().CoalescedRows) })
	r.CounterFunc("tensorbase_coalesce_invocations_total", "model invocations made through the cross-query coalescer", func() float64 { return float64(db.coalesceStats().Invocations) })
	r.CounterFunc("tensorbase_coalesce_multi_total", "coalesced invocations shared by two or more queries", func() float64 { return float64(db.coalesceStats().MultiInvocations) })
	r.CounterFunc("tensorbase_coalesce_participants_total", "sum of participants across coalesced invocations (occupancy numerator)", func() float64 { return float64(db.coalesceStats().Participants) })

	r.CounterFunc("tensorbase_lock_acquisitions_total", "statement lock sets acquired", func() float64 { return float64(db.locks.Stats().Acquired) })
	r.CounterFunc("tensorbase_lock_waits_total", "lock acquisitions that had to block", func() float64 { return float64(db.locks.Stats().Waits) })
	r.CounterFunc("tensorbase_lock_cancelled_total", "lock waits abandoned by cancelled statements", func() float64 { return float64(db.locks.Stats().Cancelled) })

	r.CounterFunc("tensorbase_disk_page_frees_total", "heap pages handed to the storage free list", func() float64 { f, _, _ := db.disk.FreeStats(); return float64(f) })
	r.CounterFunc("tensorbase_disk_page_reuses_total", "allocations served from the free list", func() float64 { _, ru, _ := db.disk.FreeStats(); return float64(ru) })
	r.GaugeFunc("tensorbase_disk_free_pages", "pages currently on the free list", func() float64 { _, _, n := db.disk.FreeStats(); return float64(n) })

	db.mSnapshotReads = r.Counter("tensorbase_snapshot_reads_total", "read statements served lock-free off a pinned MVCC snapshot")
	r.CounterFunc("tensorbase_wal_appends_total", "WAL records appended", func() float64 { return float64(db.wal.Stats().Appends) })
	r.CounterFunc("tensorbase_wal_bytes_total", "WAL bytes appended (framed)", func() float64 { return float64(db.wal.Stats().Bytes) })
	r.CounterFunc("tensorbase_wal_fsyncs_total", "WAL fsyncs issued", func() float64 { return float64(db.wal.Stats().Syncs) })
	r.CounterFunc("tensorbase_wal_fsync_waits_total", "commits that rode another commit's fsync (group-commit numerator)", func() float64 { return float64(db.wal.Stats().SyncWaits) })
	r.CounterFunc("tensorbase_wal_commits_total", "statement commits made durable through the WAL", func() float64 { return float64(db.wal.Stats().Commits) })
	r.CounterFunc("tensorbase_wal_replayed_records_total", "WAL records replayed by recovery", func() float64 { return float64(db.wal.Stats().Replayed) })
	r.CounterFunc("tensorbase_wal_truncates_total", "WAL truncations by checkpoints", func() float64 { return float64(db.wal.Stats().Truncates) })
	r.CounterFunc("tensorbase_checkpoints_total", "checkpoints completed", func() float64 { return float64(db.checkpoints.Load()) })
	r.GaugeFunc("tensorbase_wal_bytes", "current WAL length", func() float64 { return float64(db.wal.Size()) })
	r.GaugeFunc("tensorbase_committed_csn", "latest published commit sequence number", func() float64 { return float64(db.committedCSN.Load()) })

	r.CounterFunc("tensorbase_blockstore_blocks_total", "distinct weight blocks admitted to the block store", func() float64 { return float64(db.blocks.Stats().BlocksAdded) })
	r.CounterFunc("tensorbase_blockstore_bytes_total", "payload bytes of distinct weight blocks admitted", func() float64 { return float64(db.blocks.Stats().BytesAdded) })
	r.CounterFunc("tensorbase_blockstore_dedup_hits_total", "model-load tensor chunks deduplicated against resident blocks", func() float64 { return float64(db.blocks.Stats().DedupHits) })
	r.GaugeFunc("tensorbase_blockstore_resident_bytes", "weight bytes resident in the block store (assemblies + standalone blocks)", func() float64 { return float64(db.blocks.Stats().ResidentBytes) })
	r.GaugeFunc("tensorbase_blockstore_resident_blocks", "weight blocks currently resident", func() float64 { return float64(db.blocks.Stats().ResidentBlocks) })

	r.GaugeFunc("tensorbase_compute_tokens_total", "process-wide compute token budget", func() float64 { return float64(parallel.Default().Total()) })
	r.GaugeFunc("tensorbase_compute_tokens_in_use", "compute tokens currently held", func() float64 { return float64(parallel.Default().InUse()) })
	r.GaugeFunc("tensorbase_compute_tokens_highwater", "peak compute tokens simultaneously held", func() float64 { return float64(parallel.Default().HighWater()) })
}

// Shipper taps the engine's commit protocol for replication: Ship is
// called once per published CSN, strictly in CSN order, inside the
// publication critical section, with the statement's WAL records (nil for
// an abort — a pure CSN advance). Truncated is called after a checkpoint
// truncates the WAL, with the committed horizon the checkpoint folded in.
// Implementations must not call back into the engine's write path.
type Shipper interface {
	Ship(csn uint64, recs []*wal.Record)
	Truncated(throughCSN uint64)
}

// SetShipper installs (or, with nil, removes) the commit-stream tap. The
// swap synchronizes with in-flight publications, so after SetShipper
// returns the shipper sees every later commit exactly once.
func (db *DB) SetShipper(s Shipper) {
	db.pubMu.Lock()
	db.shipper = s
	db.pubMu.Unlock()
}

// Registry exposes the metrics registry (the export surface mounts it).
func (db *DB) Registry() *obs.Registry { return db.reg }

// Metrics returns a point-in-time snapshot of every registered metric —
// the programmatic twin of the /metrics endpoint.
func (db *DB) Metrics() obs.Snapshot { return db.reg.Snapshot() }

// SetFaults installs a fault injector on catalog persistence (the
// "persist.*" points; see persist.go) and on the write-ahead log (the
// "wal.*" points). Tests only; use Options.Faults to also cover Open-time
// recovery.
func (db *DB) SetFaults(inj *fault.Injector) {
	db.faults = inj
	db.wal.SetFaults(inj)
}

// Close runs a final checkpoint (flush dirty pages, commit the catalog,
// truncate the WAL) and closes the database.
//
// Ordering matters: page data must reach the file (and be synced) BEFORE
// the catalog commit that names those pages. Committing first would let a
// crash between the commit and the flush leave a catalog referencing page
// contents that never made it to disk. The meta-file rename inside
// saveCatalog is the sole commit point; if the flush or sync fails, the
// previous catalog generation stays committed — and the WAL, which is only
// truncated after the rename, still replays everything committed since it.
func (db *DB) Close() error {
	db.stopCheckpointer()
	// Quiesce: the DDL latch first (no table can appear or vanish under
	// us), then an exclusive lock on every table — waits out in-flight
	// writers and blocks new ones for the duration. Same DDL-then-tables
	// order every statement uses, so this cannot deadlock against them.
	if ddl, lerr := db.locks.Acquire(nil, lockmgr.Request{DDL: true}); lerr == nil {
		defer ddl.Release()
	}
	tls := make([]lockmgr.TableLock, 0)
	for _, name := range db.cat.Tables() {
		tls = append(tls, lockmgr.TableLock{Table: name, Mode: lockmgr.Exclusive})
	}
	if held, lerr := db.locks.Acquire(nil, lockmgr.Request{Tables: tls}); lerr == nil {
		defer held.Release()
	}
	// Lock-free readers hold no table locks; drain each heap's read gate
	// so in-flight read statements finish before the file closes.
	for _, name := range db.cat.Tables() {
		if te, terr := db.cat.Table(name); terr == nil {
			te.Heap.Drain()
			defer te.Heap.Release()
		}
	}
	err := db.pool.FlushAll()
	if err == nil {
		err = db.disk.Sync()
	}
	if err == nil {
		err = db.saveCatalog()
	}
	if err == nil {
		err = db.wal.Truncate()
	}
	if werr := db.wal.Close(); err == nil {
		err = werr
	}
	if cerr := db.disk.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the database without flushing, syncing, or committing —
// the crash tests' stand-in for kill -9: dirty pages in the buffer pool,
// the unsynced WAL tail, and the in-memory catalog are all lost; whatever
// the last checkpoint and the synced WAL prefix describe is what a
// subsequent Open recovers.
func (db *DB) Crash() error {
	if !db.crashed.CompareAndSwap(false, true) {
		return nil
	}
	db.stopCheckpointer()
	err := db.wal.Abandon()
	if cerr := db.disk.Close(); err == nil {
		err = cerr
	}
	return err
}

// Pool exposes the buffer pool (for the benchmark harness and tools).
func (db *DB) Pool() *storage.BufferPool { return db.pool }

// Catalog exposes the metadata catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Budget exposes the whole-tensor memory budget.
func (db *DB) Budget() *memlimit.Budget { return db.budget }

// Optimizer exposes the adaptive optimizer.
func (db *DB) Optimizer() *core.Optimizer { return db.opt }

// EnableOffload lets the optimizer schedule compute-intensive operators
// onto the external runtime (DL-centric offloading, the third
// representation). Configure before loading models: plans compiled ahead of
// time by earlier LoadModel calls are not recompiled.
func (db *DB) EnableOffload(rt *dlruntime.Runtime, minFlopsPerByte float64) {
	db.opt.Offload = &core.OffloadPolicy{Runtime: rt, MinFlopsPerByte: minFlopsPerByte}
}

// LoadModel registers a model in the catalog and installs its adaptive
// inference UDF, making it available to PREDICT. With Options.ResultCache
// set, the model also gets an HNSW result cache over its flattened input
// width, fused into every PREDICT over it.
//
// LoadModel also builds the model's int8-resident quantized twin (weights
// packed int8 + per-channel scales, served by the packed int8 GEMM) and
// registers it as the "quantized:" UDF behind PREDICT ... OPTIONS
// (quantized). The twin gets its own result cache and coalescer — quantized
// predictions differ in bits from f32, so the two modes must never share
// cached results or model invocations.
//
// The load is durable and deduplicated: the model's tensors are split
// into content-addressed 64 KiB blocks, blocks already resident (shared
// with other loaded models) are reused, and only the NEW blocks plus the
// model's manifest are WAL-logged in one commit group — a fine-tuned
// variant costs its delta, not its size. The served model's tensors alias
// the shared block assemblies; inference stays bit-identical because
// blocks are exact byte slices of the original f32 tensors. If the
// durability step fails the model stays registered in memory — still
// served, its blocks pinned, persisted by the next successful checkpoint —
// but LoadModel reports the error.
func (db *DB) LoadModel(m *nn.Model, accuracy float64) error {
	if db.follower.Load() {
		return ErrReadOnly
	}
	held, err := db.locks.Acquire(nil, lockmgr.Request{DDL: true})
	if err != nil {
		return err
	}
	defer held.Release()
	// A model whose layers cannot be blocked (synthetic test layers,
	// runtime-only ops) stays memory-resident — served until Close, exactly
	// the pre-WAL contract — rather than poisoning the log with a load no
	// recovery could replay.
	mf, fresh, err := nn.BlockModel(m, db.blocks)
	if err != nil {
		db.blocks.Sweep()
		return db.registerModel(m, accuracy, nil)
	}
	am, err := nn.ModelFromManifest(mf, db.blocks)
	if err != nil {
		db.blocks.Sweep()
		return fmt.Errorf("engine: reassembling model %q from blocks: %w", m.Name(), err)
	}
	if err := db.registerModel(am, accuracy, mf); err != nil {
		nn.ReleaseManifest(mf, db.blocks)
		db.blocks.Sweep()
		return err
	}
	csn := db.beginCSN()
	recs, err := db.commitModelLoad(mf, fresh, accuracy, csn)
	if err != nil {
		db.abortCSN(csn)
		return fmt.Errorf("engine: model %q is registered but its load did not commit durably: %w", m.Name(), err)
	}
	db.publish(csn, recs)
	return nil
}

// commitModelLoad logs the load's NEW blocks followed by the model
// manifest under one CSN and commits the group — recovery either replays
// the whole load (blocks, then a manifest whose hashes all resolve) or
// none of it.
func (db *DB) commitModelLoad(mf *nn.Manifest, fresh []blockstore.Hash, accuracy float64, csn uint64) ([]*wal.Record, error) {
	recs := make([]*wal.Record, 0, len(fresh)+1)
	for _, h := range fresh {
		data, ok := db.blocks.BlockData(h)
		if !ok {
			return nil, fmt.Errorf("engine: block %s vanished during load", h)
		}
		recs = append(recs, &wal.Record{Type: wal.RecBlock, CSN: csn, Data: blockstore.Encode(data)})
	}
	recs = append(recs, &wal.Record{
		Type: wal.RecLoadModel, CSN: csn,
		Model: mf.Name, Acc: accuracy, Data: nn.EncodeManifest(mf),
	})
	for _, rec := range recs {
		if _, err := db.wal.Append(rec); err != nil {
			return nil, err
		}
	}
	return recs, db.wal.Commit(csn)
}

// DropModel removes a model from serving: the catalog entry, its UDFs and
// serving state go away, its manifest's block references are released, and
// blocks no other model shares are reclaimed (disk reclamation follows at
// the next checkpoint). The drop is WAL-logged and replicated. Blocks
// shared with other loaded models survive untouched.
func (db *DB) DropModel(name string) error {
	if db.follower.Load() {
		return ErrReadOnly
	}
	held, err := db.locks.Acquire(nil, lockmgr.Request{DDL: true})
	if err != nil {
		return err
	}
	defer held.Release()
	if _, err := db.cat.ModelEntryFor(name); err != nil {
		return err
	}
	csn := db.beginCSN()
	rec := &wal.Record{Type: wal.RecDropModel, CSN: csn, Model: name}
	if _, err := db.wal.Append(rec); err != nil {
		db.abortCSN(csn)
		return err
	}
	if err := db.wal.Commit(csn); err != nil {
		db.abortCSN(csn)
		return err
	}
	db.unregisterModel(name)
	db.publish(csn, []*wal.Record{rec})
	db.blocks.Sweep()
	return nil
}

// registerModel installs a model in memory only: the catalog entry, the
// adaptive and quantized UDFs, and the serving state. loadCatalog and WAL
// replay call it directly — their durability is the meta file and the log.
// mf, when non-nil, is the manifest whose block references the model holds;
// a nil manifest marks the model memory-resident (not persisted).
func (db *DB) registerModel(m *nn.Model, accuracy float64, mf *nn.Manifest) error {
	if err := db.cat.RegisterModel(m, accuracy, ""); err != nil {
		return err
	}
	if err := db.udfs.Register(core.NewAdaptiveUDF(m, db.opt, db.pool, db.budget)); err != nil {
		return err
	}
	if err := db.addServingState(m.Name(), m); err != nil {
		return err
	}
	// A model whose layers cannot be quantized simply has no twin; asking
	// for OPTIONS (quantized) over it is a query-time error. The twin is
	// built from the reassembled (block-backed) tensors, so quantized
	// serving is byte-for-byte what it was before deduplication.
	if q, qerr := nn.QuantizeResident(m); qerr == nil {
		if err := db.udfs.Register(udf.NewQuantizedUDF(q, m.Name(), db.budget)); err != nil {
			return err
		}
		if err := db.addServingState(quantizedKey(m.Name()), m); err != nil {
			return err
		}
	}
	if mf != nil {
		db.manMu.Lock()
		db.manifests[m.Name()] = mf
		db.manMu.Unlock()
	}
	return nil
}

// unregisterModel removes a model's in-memory state — catalog entry, UDFs,
// caches, coalescers — and releases its manifest's block references. The
// caller sweeps the store once its atomic unit (drop statement, replicated
// group, replay) is complete.
func (db *DB) unregisterModel(name string) {
	db.cat.DropModel(name)
	db.udfs.Unregister("adaptive:" + name)
	db.udfs.Unregister("quantized:" + name)
	db.cmu.Lock()
	delete(db.caches, name)
	delete(db.caches, quantizedKey(name))
	delete(db.coalescers, name)
	delete(db.coalescers, quantizedKey(name))
	db.cmu.Unlock()
	db.manMu.Lock()
	mf := db.manifests[name]
	delete(db.manifests, name)
	db.manMu.Unlock()
	if mf != nil {
		nn.ReleaseManifest(mf, db.blocks)
	}
}

// manifestFor returns the named model's manifest, if it has one.
func (db *DB) manifestFor(name string) (*nn.Manifest, bool) {
	db.manMu.Lock()
	defer db.manMu.Unlock()
	mf, ok := db.manifests[name]
	return mf, ok
}

// BlockStats exposes the weight-block store's counters (tests, tools).
func (db *DB) BlockStats() blockstore.Stats { return db.blocks.Stats() }

// quantizedKey is the cache/coalescer key for a model's quantized serving
// mode; the NUL cannot appear in a model name, so keys never collide.
func quantizedKey(model string) string { return model + "\x00q8" }

// addServingState installs the per-(model, mode) serving infrastructure: a
// result cache when enabled, and a cross-query coalescer unless disabled.
func (db *DB) addServingState(key string, m *nn.Model) error {
	if db.opts.ResultCache {
		dim := 1
		for _, d := range m.InShape[1:] {
			dim *= d
		}
		rc, err := cache.NewHNSW(dim, db.opts.ResultCacheDistance)
		if err != nil {
			return err
		}
		rc.SetMaxEntries(db.opts.ResultCacheMaxEntries)
		db.cmu.Lock()
		db.caches[key] = rc
		db.cmu.Unlock()
	}
	if !db.opts.DisablePredictCoalesce {
		db.cmu.Lock()
		db.coalescers[key] = udf.NewCoalescer(db.opts.PredictCoalesceWindow, 0)
		db.cmu.Unlock()
	}
	return nil
}

// coalescerFor returns the named model's cross-query invocation coalescer,
// unless coalescing is disabled or the model is not loaded.
func (db *DB) coalescerFor(model string) (*udf.Coalescer, bool) {
	db.cmu.Lock()
	defer db.cmu.Unlock()
	co, ok := db.coalescers[model]
	return co, ok
}

// coalesceStats sums coalescing counters across every loaded model.
func (db *DB) coalesceStats() udf.CoalesceStats {
	var sum udf.CoalesceStats
	db.cmu.Lock()
	for _, co := range db.coalescers {
		st := co.Stats()
		sum.Invocations += st.Invocations
		sum.MultiInvocations += st.MultiInvocations
		sum.Rows += st.Rows
		sum.CoalescedRows += st.CoalescedRows
		sum.Participants += st.Participants
	}
	db.cmu.Unlock()
	return sum
}

// ResultCacheFor returns the named model's inference-result cache, if
// result caching is enabled and the model is loaded.
func (db *DB) ResultCacheFor(model string) (*cache.ResultCache, bool) {
	db.cmu.Lock()
	defer db.cmu.Unlock()
	rc, ok := db.caches[model]
	return rc, ok
}

// LoadModelFile loads a TBM1 model file and registers it.
func (db *DB) LoadModelFile(path string) (*nn.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	defer f.Close()
	m, err := nn.Load(f)
	if err != nil {
		return nil, err
	}
	if err := db.LoadModel(m, 0); err != nil {
		return nil, err
	}
	return m, nil
}

// ExplainPredict returns the adaptive optimizer's plan for running the
// named model at the given batch size.
func (db *DB) ExplainPredict(model string, batch int) (string, error) {
	m, err := db.cat.Model(model)
	if err != nil {
		return "", err
	}
	plan, err := db.opt.Plan(m, batch)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

// LowerPredict returns the Graphviz rendering of the named model's lowered
// linear-algebra graph at the given batch size (Sec. 2's graph IR).
func (db *DB) LowerPredict(model string, batch int) (string, error) {
	m, err := db.cat.Model(model)
	if err != nil {
		return "", err
	}
	plan, err := db.opt.Plan(m, batch)
	if err != nil {
		return "", err
	}
	g, err := core.Lower(plan)
	if err != nil {
		return "", err
	}
	return g.Dot(), nil
}

// Stats reports engine-level counters.
type Stats struct {
	PoolHits      uint64
	PoolMisses    uint64
	PoolEvictions uint64
	DiskReads     uint64
	DiskWrites    uint64
	MemReserved   int64
	MemPeak       int64

	// PREDICT serving-path counters, cumulative across queries.
	CacheHits       int64 // rows answered from a result cache
	CacheMisses     int64 // rows that ran the model
	CacheShared     int64 // rows that joined another request's flight
	PredictUDFCalls int64 // model batch invocations
	PredictBatches  int64 // micro-batches processed
	ColBatches      int64 // micro-batches decoded columnarly
	BatchesAllHit   int64 // batches that skipped the model entirely
	PipelineFills   int64 // producer finished a batch before it was asked
	PipelineStalls  int64 // consumer waited on the producer
	Panics          int64 // panics contained as query errors (query + UDF level)

	// Cross-query coalescing (summed over all models).
	CoalescedRows        int64 // rows that rode another query's invocation
	CoalesceInvocations  int64 // model invocations made through the coalescer
	CoalesceMultiBatches int64 // invocations shared by ≥2 queries
}

// Stats returns a snapshot of buffer pool, disk, memory, and serving-path
// counters.
func (db *DB) Stats() Stats {
	ps := db.pool.Stats()
	r, w := db.disk.IOStats()
	cs := db.coalesceStats()
	return Stats{
		PoolHits:      ps.Hits,
		PoolMisses:    ps.Misses,
		PoolEvictions: ps.Evictions,
		DiskReads:     r,
		DiskWrites:    w,
		MemReserved:   db.budget.Reserved(),
		MemPeak:       db.budget.Peak(),

		CacheHits:       db.inferStats.Hits.Load(),
		CacheMisses:     db.inferStats.Misses.Load(),
		CacheShared:     db.inferStats.Shared.Load(),
		PredictUDFCalls: db.inferStats.UDFCalls.Load(),
		PredictBatches:  db.inferStats.Batches.Load(),
		ColBatches:      db.inferStats.ColBatches.Load(),
		BatchesAllHit:   db.inferStats.BatchesAllHit.Load(),
		PipelineFills:   db.inferStats.PipelineFills.Load(),
		PipelineStalls:  db.inferStats.PipelineStalls.Load(),
		Panics:          db.panics.Load() + db.inferStats.Panics.Load(),

		CoalescedRows:        cs.CoalescedRows,
		CoalesceInvocations:  cs.Invocations,
		CoalesceMultiBatches: cs.MultiInvocations,
	}
}

// Result is the outcome of Exec: result rows for SELECT, affected count
// for DML/DDL.
type Result struct {
	Schema       *table.Schema
	Rows         []table.Tuple
	RowsAffected int64
	// SnapshotCSN is the committed-CSN snapshot a SELECT actually pinned.
	// Read routing re-checks it against a session's read-your-writes floor
	// after the query, closing the race where a replica's applied CSN
	// drops eligibility between the health check and the scan.
	SnapshotCSN uint64
}

// Exec parses and runs one SQL statement without a caller deadline (the
// Options.QueryTimeout still applies).
func (db *DB) Exec(sqlText string) (*Result, error) {
	return db.ExecContext(context.Background(), sqlText)
}

// Query is Exec under its conventional database/sql name.
func (db *DB) Query(sqlText string) (*Result, error) {
	return db.Exec(sqlText)
}

// QueryContext is ExecContext under its conventional database/sql name.
func (db *DB) QueryContext(ctx context.Context, sqlText string) (*Result, error) {
	return db.ExecContext(ctx, sqlText)
}

// ExecContext parses and runs one SQL statement under ctx. Cancelling the
// context (or exceeding its deadline, or Options.QueryTimeout) stops the
// query within one batch of work: operators drop their buffer-pool pins,
// compute workers drain, memory reservations are released, and the call
// returns ctx's error (context.Canceled or context.DeadlineExceeded). A
// panic anywhere in the statement's execution is contained as a query error
// carrying the panic value and stack; the database remains usable.
func (db *DB) ExecContext(ctx context.Context, sqlText string) (res *Result, err error) {
	res, _, err = db.exec(ctx, sqlText, false)
	return res, err
}

// exec wraps execInner with statement-level observability: wall time into
// the latency histogram, query/error counters, and the slow-query log.
// With a slow-query threshold configured, SELECTs are instrumented even
// outside EXPLAIN ANALYZE so a slow statement's log line carries real
// per-operator spans.
func (db *DB) exec(ctx context.Context, sqlText string, profile bool) (*Result, []exec.StageStat, error) {
	start := time.Now()
	res, stats, err := db.execInner(ctx, sqlText, profile || db.slow != nil)
	elapsed := time.Since(start)
	db.mQueries.Inc()
	db.mQueryLatency.Observe(elapsed)
	if err != nil {
		db.mQueryErrors.Inc()
	}
	if db.slow != nil && elapsed >= db.slow.Threshold() {
		var rows int64
		if res != nil {
			if res.Schema != nil {
				rows = int64(len(res.Rows))
			} else {
				rows = res.RowsAffected
			}
		}
		db.slow.Observe(sqlText, elapsed, rows, exec.SummarizeProfile(stats))
	}
	if !profile {
		stats = nil
	}
	return res, stats, err
}

func (db *DB) execInner(ctx context.Context, sqlText string, profile bool) (res *Result, stats []exec.StageStat, err error) {
	if db.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, db.opts.QueryTimeout)
		defer cancel()
	}
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	defer func() {
		if perr := lifecycle.AsError(recover()); perr != nil {
			db.panics.Add(1)
			res, stats, err = nil, nil, fmt.Errorf("engine: query panicked: %w", perr)
		}
	}()
	if cerr := tok.Err(); cerr != nil {
		return nil, nil, cerr
	}
	st, err := sql.Parse(sqlText)
	if err != nil {
		return nil, nil, err
	}
	// Statement-scoped locking: everything a WRITE statement touches is
	// acquired up front in deterministic order (DDL latch, then tables by
	// name) and held to the end of the statement, so conflicting writers
	// serialize and the set as a whole cannot deadlock. Reads request
	// nothing and skip the lock manager entirely — their isolation comes
	// from the snapshot CSN pinned in runSelect.
	if req := lockRequest(st); req.DDL || len(req.Tables) > 0 {
		if db.follower.Load() {
			return nil, nil, ErrReadOnly
		}
		held, err := db.locks.Acquire(tok, req)
		if err != nil {
			return nil, nil, err
		}
		defer held.Release()
	}
	switch st := st.(type) {
	case *sql.CreateTable:
		res, err = db.execCreate(st)
	case *sql.Insert:
		res, err = db.execInsert(st, tok)
	case *sql.Select:
		return db.runSelect(st, profile, tok)
	case *sql.DropTable:
		res, err = db.execDrop(st.Name)
	default:
		return nil, nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
	return res, nil, err
}

// lockRequest maps a parsed statement to the locks it must hold. SELECT
// (with or without PREDICT) takes NO locks: reads run against an MVCC
// snapshot pinned at statement start, so they never queue behind writers
// (the per-heap read gate, not a lock, keeps DROP's reclamation from
// racing them). INSERT writes its table under the FIFO-fair exclusive
// lock, and CREATE/DROP take the catalog DDL latch — DROP also locks its
// table exclusively so reclamation never races an in-flight writer.
func lockRequest(st sql.Statement) lockmgr.Request {
	switch st := st.(type) {
	case *sql.Insert:
		return lockmgr.Request{Tables: []lockmgr.TableLock{{Table: st.Table, Mode: lockmgr.Exclusive}}}
	case *sql.CreateTable:
		return lockmgr.Request{DDL: true}
	case *sql.DropTable:
		return lockmgr.Request{DDL: true, Tables: []lockmgr.TableLock{{Table: st.Name, Mode: lockmgr.Exclusive}}}
	}
	return lockmgr.Request{}
}

// execDrop removes a table and reclaims its storage. The caller holds the
// DDL latch and the table's exclusive lock, so no writer is inside the
// heap. Order: capture the page chain, log and commit the drop (a commit
// failure leaves the table fully intact), unpublish the catalog entry and
// prune vector indexes over the table (a recreated table must never serve
// the old table's ANN rows), then drain the heap's read gate — lock-free
// snapshot scans that started before the drop finish against the still-
// allocated pages — and hand every page to the free list. A failure while
// freeing leaks the remaining pages — a leak, never corruption.
func (db *DB) execDrop(name string) (*Result, error) {
	te, err := db.cat.Table(name)
	if err != nil {
		return nil, err
	}
	pages, err := te.Heap.Pages()
	if err != nil {
		return nil, fmt.Errorf("engine: walking %q page chain: %w", name, err)
	}
	csn := db.beginCSN()
	rec := &wal.Record{Type: wal.RecDropTable, CSN: csn, Table: name}
	if _, err := db.wal.Append(rec); err != nil {
		db.abortCSN(csn)
		return nil, err
	}
	if err := db.wal.Commit(csn); err != nil {
		db.abortCSN(csn)
		return nil, err
	}
	if err := db.cat.DropTable(name); err != nil {
		db.abortCSN(csn)
		return nil, err
	}
	db.vmu.Lock()
	for key := range db.vindexes {
		if key.table == name {
			delete(db.vindexes, key)
		}
	}
	db.vmu.Unlock()
	db.publish(csn, []*wal.Record{rec})
	// Wait out in-flight read statements before the pages change owners;
	// readers arriving after the drain re-check the catalog and fail with
	// "no such table".
	te.Heap.Drain()
	defer te.Heap.Release()
	for _, id := range pages {
		if err := db.pool.FreePage(id); err != nil {
			return nil, fmt.Errorf("engine: reclaiming %q pages: %w", name, err)
		}
	}
	return &Result{}, nil
}

func (db *DB) execCreate(st *sql.CreateTable) (*Result, error) {
	schema, err := table.NewSchema(st.Cols...)
	if err != nil {
		return nil, err
	}
	if _, err := db.createTableLocked(st.Name, schema); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// createTableLocked creates and logs a table; the caller holds the DDL
// latch. A WAL commit failure undoes the creation entirely.
func (db *DB) createTableLocked(name string, schema *table.Schema) (*table.Heap, error) {
	heap, err := table.NewHeap(db.pool, schema)
	if err != nil {
		return nil, err
	}
	if err := db.cat.CreateTable(name, heap); err != nil {
		db.pool.FreePage(heap.FirstPage())
		return nil, err
	}
	csn := db.beginCSN()
	rec := &wal.Record{Type: wal.RecCreateTable, CSN: csn, Table: name}
	for _, c := range schema.Cols {
		rec.Cols = append(rec.Cols, wal.Col{Name: c.Name, Type: uint8(c.Type)})
	}
	_, err = db.wal.Append(rec)
	if err == nil {
		err = db.wal.Commit(csn)
	}
	if err != nil {
		db.cat.DropTable(name)
		db.pool.FreePage(heap.FirstPage())
		db.abortCSN(csn)
		return nil, err
	}
	db.publish(csn, []*wal.Record{rec})
	return heap, nil
}

// CreateTable registers a table programmatically (the API twin of
// CREATE TABLE). Like the statement, it runs under the catalog DDL latch.
func (db *DB) CreateTable(name string, schema *table.Schema) (*table.Heap, error) {
	if db.follower.Load() {
		return nil, ErrReadOnly
	}
	held, err := db.locks.Acquire(nil, lockmgr.Request{DDL: true})
	if err != nil {
		return nil, err
	}
	defer held.Release()
	return db.createTableLocked(name, schema)
}

// InsertRows bulk-inserts tuples into a named table under the table's
// exclusive lock (the API twin of INSERT). The batch commits atomically:
// either every row is durable and visible, or none is.
func (db *DB) InsertRows(name string, rows []table.Tuple) (int64, error) {
	if db.follower.Load() {
		return 0, ErrReadOnly
	}
	held, err := db.locks.Acquire(nil, lockmgr.Request{
		Tables: []lockmgr.TableLock{{Table: name, Mode: lockmgr.Exclusive}},
	})
	if err != nil {
		return 0, err
	}
	defer held.Release()
	te, err := db.cat.Table(name)
	if err != nil {
		return 0, err
	}
	n, err := db.insertTuples(name, te.Heap, rows, nil)
	if err != nil {
		return 0, err
	}
	return n, nil
}

func (db *DB) execInsert(st *sql.Insert, tok *lifecycle.Token) (*Result, error) {
	te, err := db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := te.Heap.Schema()
	rows := make([]table.Tuple, 0, len(st.Rows))
	for ri, row := range st.Rows {
		if err := tok.Err(); err != nil {
			return nil, err
		}
		if len(row) != schema.Len() {
			return nil, fmt.Errorf("engine: row %d has %d values, table %q has %d columns", ri, len(row), st.Table, schema.Len())
		}
		tup := make(table.Tuple, len(row))
		for ci, lit := range row {
			v, err := coerce(lit.Value, schema.Cols[ci].Type)
			if err != nil {
				return nil, fmt.Errorf("engine: row %d column %q: %w", ri, schema.Cols[ci].Name, err)
			}
			tup[ci] = v
		}
		rows = append(rows, tup)
	}
	inserted, err := db.insertTuples(st.Table, te.Heap, rows, tok)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: inserted}, nil
}

// coerce converts a literal to the column type, allowing INT → DOUBLE.
func coerce(v table.Value, want table.ColType) (table.Value, error) {
	if v.Type == want {
		return v, nil
	}
	if v.Type == table.Int64 && want == table.Float64 {
		return table.FloatVal(float64(v.Int)), nil
	}
	return table.Value{}, fmt.Errorf("value of type %v does not fit column type %v", v.Type, want)
}
