package engine

import (
	"fmt"

	"tensorbase/internal/catalog"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/table"
	"tensorbase/internal/wal"
)

// The commit protocol behind the lock-free serving path.
//
// Every write statement draws a commit sequence number (CSN), stamps the
// rows it inserts with it, makes the statement durable through the WAL, and
// then PUBLISHES the CSN: committedCSN advances to it, atomically making
// every row of the statement visible. Read statements take no locks at all
// — they pin committedCSN at statement start and scan against that
// snapshot, so a half-done writer's rows (stamped with a CSN above the
// snapshot) are invisible by construction.
//
// Publication is strictly in CSN order: committedCSN advancing to c means
// "every statement with CSN ≤ c is decided". An aborted statement first
// removes its rows physically (Heap.Rollback — they were never visible, so
// this is trace-free) and then publishes its CSN without a WAL commit
// record, keeping the sequence gap-free.

// beginCSN allocates the next commit sequence number.
func (db *DB) beginCSN() uint64 {
	db.csnMu.Lock()
	db.nextCSN++
	csn := db.nextCSN
	db.csnMu.Unlock()
	return csn
}

// publish advances the committed horizon to csn, waiting until every
// earlier CSN has published — snapshots never observe commit c+1 without c
// being decided. recs are the statement's WAL records (nil for an abort);
// they are handed to the shipper INSIDE the publication critical section,
// so the replication stream observes commits in exactly CSN order with no
// gaps, the same total order recovery replays.
func (db *DB) publish(csn uint64, recs []*wal.Record) {
	db.pubMu.Lock()
	for db.committedCSN.Load() != csn-1 {
		db.pubCond.Wait()
	}
	db.committedCSN.Store(csn)
	if db.shipper != nil {
		db.shipper.Ship(csn, recs)
	}
	db.pubMu.Unlock()
	db.pubCond.Broadcast()
}

// publishCSN publishes csn with no records to ship (metadata-only commits
// whose records the caller passes to publish directly use publish instead).
func (db *DB) publishCSN(csn uint64) { db.publish(csn, nil) }

// abortCSN publishes csn with no commit record in the WAL: the statement's
// rows must already be physically rolled back. Recovery never sees a commit
// record for it, so the abort holds across a crash too.
func (db *DB) abortCSN(csn uint64) { db.publishCSN(csn) }

// snapshotCSN pins the snapshot a read statement scans against.
func (db *DB) snapshotCSN() uint64 { return db.committedCSN.Load() }

// resolveForRead looks a table up for a lock-free read and enters its
// heap's read gate. The gate (not a lock: it admits any number of readers
// and only DROP's reclamation ever holds it exclusively) keeps the heap's
// pages alive for the duration of the statement. Because a DROP unpublishes
// the catalog entry before draining the gate, a reader that entered the
// gate of a just-dropped heap detects it by re-checking the catalog; the
// retry loop covers the drop-and-recreate race.
func (db *DB) resolveForRead(name string) (*catalog.TableEntry, error) {
	for tries := 0; tries < 8; tries++ {
		te, err := db.cat.Table(name)
		if err != nil {
			return nil, err
		}
		te.Heap.BeginRead()
		again, err := db.cat.Table(name)
		if err == nil && again.Heap == te.Heap {
			return te, nil
		}
		te.Heap.EndRead()
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("engine: table %q kept changing during read resolution", name)
}

// insertTuples runs one INSERT statement's commit protocol over h (the heap
// published for name; the caller holds the table's exclusive lock). Each
// tuple is encoded once and the bytes shared between the WAL record and the
// heap insert. Any failure aborts the whole statement: the rows already
// inserted are physically rolled back and the CSN publishes undecided, so
// either every row becomes visible and durable or none does.
func (db *DB) insertTuples(name string, h *table.Heap, rows []table.Tuple, tok *lifecycle.Token) (int64, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	csn := db.beginCSN()
	rids := make([]table.RID, 0, len(rows))
	recs := make([]*wal.Record, 0, len(rows))
	abort := func(err error) (int64, error) {
		if rerr := h.Rollback(rids); rerr != nil {
			err = fmt.Errorf("%w (and rolling back %d rows: %v)", err, len(rids), rerr)
		}
		db.abortCSN(csn)
		return 0, err
	}
	for _, t := range rows {
		if err := tok.Err(); err != nil {
			return abort(err)
		}
		rec, err := table.Encode(h.Schema(), t)
		if err != nil {
			return abort(err)
		}
		wrec := &wal.Record{Type: wal.RecInsert, CSN: csn, Table: name, Data: rec}
		if _, err := db.wal.Append(wrec); err != nil {
			return abort(err)
		}
		rid, err := h.InsertRecordAt(rec, csn)
		if err != nil {
			return abort(err)
		}
		rids = append(rids, rid)
		recs = append(recs, wrec)
	}
	if err := db.wal.Commit(csn); err != nil {
		return abort(err)
	}
	db.publish(csn, recs)
	return int64(len(rows)), nil
}
