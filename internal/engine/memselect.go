package engine

import (
	"fmt"

	"tensorbase/internal/exec"
	"tensorbase/internal/sql"
	"tensorbase/internal/table"
)

// RunMemSelect evaluates a SELECT over an in-memory row set — the shard
// coordinator's evaluator for a CTE outer query whose source rows were
// already gathered from the shards. There is no FROM resolution, snapshot,
// or PREDICT (inference needs a live engine); WHERE, aggregation,
// projection, ORDER BY, and LIMIT compile through the same paths as
// runSelect, so coordinator-side evaluation matches single-node semantics.
func RunMemSelect(st *sql.Select, schema *table.Schema, rows []table.Tuple) (*Result, error) {
	if st.HasPredict() {
		return nil, fmt.Errorf("engine: PREDICT is not supported over gathered rows")
	}
	var op exec.Operator = exec.NewMemScan(schema, rows)

	if st.Where != nil {
		pred, err := compileWhere(schema, st.Where)
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
	}

	if st.GroupBy != "" || st.HasAggregate() {
		var groupBy []string
		if st.GroupBy != "" {
			groupBy = []string{st.GroupBy}
		}
		var specs []exec.AggSpec
		for _, item := range st.Items {
			if item.Agg == nil {
				if item.Star {
					return nil, fmt.Errorf("engine: '*' cannot be combined with aggregates")
				}
				if item.Col != st.GroupBy {
					return nil, fmt.Errorf("engine: column %q must appear in GROUP BY", item.Col)
				}
				continue
			}
			kind, ok := aggKinds[item.Agg.Fn]
			if !ok {
				return nil, fmt.Errorf("engine: unknown aggregate %q", item.Agg.Fn)
			}
			specs = append(specs, exec.AggSpec{Kind: kind, Col: item.Agg.Col, As: item.Agg.OutName()})
		}
		agg, err := exec.NewHashAggregate(op, groupBy, specs)
		if err != nil {
			return nil, err
		}
		op = agg
	}

	var cols []string
	star := false
	for _, item := range st.Items {
		switch {
		case item.Star:
			star = true
		case item.Agg != nil:
			cols = append(cols, item.Agg.OutName())
		default:
			cols = append(cols, item.Col)
		}
	}
	if star {
		if len(st.Items) != 1 {
			return nil, fmt.Errorf("engine: '*' cannot be combined with other select items")
		}
	} else {
		proj, err := exec.NewProject(op, cols...)
		if err != nil {
			return nil, err
		}
		op = proj
	}

	if st.OrderBy != "" {
		srt, err := exec.NewSort(op, st.OrderBy, st.OrderDesc)
		if err != nil {
			return nil, err
		}
		op = srt
	}
	if st.Limit >= 0 {
		op = exec.NewLimit(op, st.Limit)
	}

	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: op.Schema(), Rows: out}, nil
}
