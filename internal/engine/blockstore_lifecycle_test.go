package engine

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"tensorbase/internal/blockstore"
	"tensorbase/internal/fault"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
	"tensorbase/internal/wal"
)

// Tests for the content-addressed weight-block store wired through the
// model lifecycle: LOAD dedups against resident blocks, DROP frees only
// blocks no other model references, and recovery rebuilds the exact same
// refcounts from the surviving manifests.

// fraudHidden is sized so the shared trunk spans several 64 KiB blocks
// (Linear(28, 2048).W is 57344 floats ≈ 3.5 blocks) while the per-variant
// classifier head stays tiny — the fine-tuned-variant shape the dedup
// design targets.
const fraudHidden = 2048

// fraudVariant builds a fine-tuned variant of base: same trunk layers (by
// reference — interning hashes the bytes, so sharing the objects just
// mirrors that the weights are equal), fresh classifier head.
func fraudVariant(t *testing.T, base *nn.Model, name string, headSeed int64) *nn.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(headSeed))
	m, err := nn.NewModel(name, []int{1, 28},
		base.Layers[0], base.Layers[1],
		nn.NewLinear(rng, fraudHidden, 2), nn.Softmax{},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// forwardBits runs m over a deterministic batch and returns a copy of the
// raw output for bit-exact comparison.
func forwardBits(m *nn.Model, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	shape := append([]int(nil), m.InShape...)
	shape[0] = 4
	x := tensor.New(shape...)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()*2 - 1
	}
	return append([]float32(nil), m.Forward(x).Data()...)
}

func manifestHashSet(t *testing.T, db *DB, model string) map[blockstore.Hash]bool {
	t.Helper()
	mf, ok := db.manifestFor(model)
	if !ok {
		t.Fatalf("model %s has no manifest", model)
	}
	set := make(map[blockstore.Hash]bool)
	for _, h := range mf.Hashes() {
		set[h] = true
	}
	return set
}

// TestModelLoadDedupAndBitIdentity: loading fine-tuned variants reuses the
// trunk's resident blocks, and every loaded model — served from
// block-backed tensors — answers bit-identically to the original weights.
func TestModelLoadDedupAndBitIdentity(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "d.db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	base := nn.FraudFC(rand.New(rand.NewSource(1)), fraudHidden)
	v1 := fraudVariant(t, base, "Fraud-FC-v1", 2)
	v2 := fraudVariant(t, base, "Fraud-FC-v2", 3)

	for _, m := range []*nn.Model{base, v1, v2} {
		want := forwardBits(m, 42)
		if err := db.LoadModel(m, 0.9); err != nil {
			t.Fatalf("load %s: %v", m.Name(), err)
		}
		loaded, err := db.Catalog().Model(m.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got := forwardBits(loaded, 42); !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: block-backed model diverges from original weights", m.Name())
		}
	}

	st := db.BlockStats()
	if st.DedupHits == 0 {
		t.Fatalf("loading shared-trunk variants produced no dedup hits: %+v", st)
	}
	// The variants' heads are all the store grew by; three models must cost
	// far less than three full copies.
	baseBytes := base.ParamBytes()
	if st.ResidentBytes >= 2*baseBytes {
		t.Fatalf("3 variants resident in %d bytes, want < 2x the %d-byte model", st.ResidentBytes, baseBytes)
	}
}

// TestManyVariantsResidentBytes is the capacity acceptance bar: eight
// fine-tuned variants resident with total blockstore bytes under 3x a
// single model.
func TestManyVariantsResidentBytes(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "v.db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	base := nn.FraudFC(rand.New(rand.NewSource(1)), fraudHidden)
	if err := db.LoadModel(base, 0.9); err != nil {
		t.Fatal(err)
	}
	single := db.BlockStats().ResidentBytes
	if single == 0 {
		t.Fatal("no resident bytes after loading the base model")
	}
	for i := 1; i < 8; i++ {
		v := fraudVariant(t, base, fmt.Sprintf("Fraud-FC-v%d", i), int64(i))
		if err := db.LoadModel(v, 0.9); err != nil {
			t.Fatalf("load variant %d: %v", i, err)
		}
	}
	st := db.BlockStats()
	if st.ResidentBytes >= 3*single {
		t.Fatalf("8 variants resident in %d bytes, want < 3x single model (%d)", st.ResidentBytes, single)
	}
	if got := len(db.Catalog().Models()); got != 8 {
		t.Fatalf("models registered = %d, want 8", got)
	}
}

// TestBlockGCUnderVersionChurn: base + two fine-tuned variants, then the
// base is dropped. Shared blocks must survive (still referenced by the
// variants), the base's unique head blocks must be freed, and a crash +
// reopen must rebuild the exact same refcounts from the surviving
// manifests. Run under -race in CI.
func TestBlockGCUnderVersionChurn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}

	base := nn.FraudFC(rand.New(rand.NewSource(1)), fraudHidden)
	v1 := fraudVariant(t, base, "Fraud-FC-v1", 2)
	v2 := fraudVariant(t, base, "Fraud-FC-v2", 3)
	wantV1 := forwardBits(v1, 7)
	wantV2 := forwardBits(v2, 7)
	for _, m := range []*nn.Model{base, v1, v2} {
		if err := db.LoadModel(m, 0.9); err != nil {
			t.Fatalf("load %s: %v", m.Name(), err)
		}
	}
	baseHashes := manifestHashSet(t, db, base.Name())
	variantHashes := manifestHashSet(t, db, "Fraud-FC-v1")
	for h := range manifestHashSet(t, db, "Fraud-FC-v2") {
		variantHashes[h] = true
	}
	var shared, unique []blockstore.Hash
	for h := range baseHashes {
		if variantHashes[h] {
			shared = append(shared, h)
		} else {
			unique = append(unique, h)
		}
	}
	if len(shared) == 0 || len(unique) == 0 {
		t.Fatalf("degenerate split: %d shared, %d unique base blocks", len(shared), len(unique))
	}

	if err := db.DropModel(base.Name()); err != nil {
		t.Fatal(err)
	}
	for _, h := range shared {
		if db.blocks.Refs(h) <= 0 {
			t.Fatalf("shared block %s unreferenced after dropping the base", h)
		}
	}
	for _, h := range unique {
		if db.blocks.Has(h) {
			t.Fatalf("base-only block %s survives the drop", h)
		}
	}
	for name, want := range map[string][]float32{"Fraud-FC-v1": wantV1, "Fraud-FC-v2": wantV2} {
		m, err := db.Catalog().Model(name)
		if err != nil {
			t.Fatalf("variant %s lost after dropping the base: %v", name, err)
		}
		if got := forwardBits(m, 7); !reflect.DeepEqual(want, got) {
			t.Fatalf("%s diverged after block GC", name)
		}
	}
	refsAfterDrop := db.blocks.RefCounts()

	// Crash (no checkpoint): the whole churn lives in the WAL. Recovery
	// must land on identical refcounts.
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after churn crash: %v", err)
	}
	defer re.Close()
	if got := re.blocks.RefCounts(); !reflect.DeepEqual(refsAfterDrop, got) {
		t.Fatalf("recovery rebuilt different refcounts:\nbefore crash: %d blocks\nafter reopen: %d blocks", len(refsAfterDrop), len(got))
	}
	if models := re.Catalog().Models(); len(models) != 2 {
		t.Fatalf("models after reopen = %v, want the two variants", models)
	}
	for name, want := range map[string][]float32{"Fraud-FC-v1": wantV1, "Fraud-FC-v2": wantV2} {
		m, err := re.Catalog().Model(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := forwardBits(m, 7); !reflect.DeepEqual(want, got) {
			t.Fatalf("%s diverged across crash recovery", name)
		}
	}
}

// TestKillMidLoadModelManifestsResolve kills the engine at every WAL fault
// point inside LoadModel's commit, at several occurrences, and asserts the
// reopened catalog is never left with a manifest whose blocks are missing:
// Open itself assembles every manifest, and each surviving model answers a
// plan request.
func TestKillMidLoadModelManifestsResolve(t *testing.T) {
	for _, point := range []string{wal.FPAppend, wal.FPFrame, wal.FPSync} {
		for _, occ := range []uint64{1, 2, 4, 6} {
			t.Run(fmt.Sprintf("%s/occ%d", point, occ), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "k.db")
				db, err := Open(path, Options{})
				if err != nil {
					t.Fatal(err)
				}
				base := nn.FraudFC(rand.New(rand.NewSource(1)), fraudHidden)
				if err := db.LoadModel(base, 0.9); err != nil {
					t.Fatal(err)
				}
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				inj := fault.New()
				inj.FailAt(point, errInjected, occ)
				db.SetFaults(inj)
				v := fraudVariant(t, base, "Fraud-FC-v1", 2)
				loadErr := db.LoadModel(v, 0.8)
				if err := db.Crash(); err != nil {
					t.Fatal(err)
				}
				re, err := Open(path, Options{})
				if err != nil {
					t.Fatalf("reopen after kill at %s/%d: %v", point, occ, err)
				}
				defer re.Close()
				models := re.Catalog().Models()
				if len(models) != 1 && len(models) != 2 {
					t.Fatalf("catalog after kill at %s/%d: %v", point, occ, models)
				}
				if loadErr == nil && len(models) != 2 {
					t.Fatalf("acknowledged LOAD MODEL lost after kill at %s/%d", point, occ)
				}
				for _, name := range models {
					if _, err := re.ExplainPredict(name, 4); err != nil {
						t.Fatalf("model %s unusable after kill at %s/%d: %v", name, point, occ, err)
					}
				}
				// Every manifest must resolve against resident blocks.
				for _, name := range models {
					set := manifestHashSet(t, re, name)
					for h := range set {
						if !re.blocks.Has(h) {
							t.Fatalf("dangling block %s in %s's manifest after kill at %s/%d", h, name, point, occ)
						}
					}
				}
			})
		}
	}
}
