package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"tensorbase/internal/fault"
	"tensorbase/internal/wal"
)

// The follower-mode primitives behind internal/repl: write rejection, the
// commit-stream shipper tap, snapshot capture, and ApplyReplicated's
// atomic group replay. The replication package's chaos suite drives these
// under faults; here each primitive is proved in isolation.

// recShipper records every Ship call for assertions.
type recShipper struct {
	groups []shippedGroup
	truncs []uint64
}

type shippedGroup struct {
	csn  uint64
	recs []*wal.Record
}

func (s *recShipper) Ship(csn uint64, recs []*wal.Record) {
	s.groups = append(s.groups, shippedGroup{csn, recs})
}
func (s *recShipper) Truncated(through uint64) { s.truncs = append(s.truncs, through) }

func TestFollowerRejectsWrites(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	db.SetFollower(true)
	if !db.IsFollower() {
		t.Fatal("IsFollower() = false after SetFollower(true)")
	}
	for _, stmt := range []string{
		"INSERT INTO t VALUES (1)",
		"CREATE TABLE u (a INT)",
		"DROP TABLE t",
	} {
		if _, err := db.Exec(stmt); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("Exec(%q) = %v, want ErrReadOnly", stmt, err)
		}
	}
	if _, err := db.InsertRows("t", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("InsertRows = %v, want ErrReadOnly", err)
	}
	if _, err := db.CreateTable("v", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("CreateTable = %v, want ErrReadOnly", err)
	}
	// Reads still serve.
	if res := mustExec(t, db, "SELECT a FROM t"); len(res.Rows) != 0 {
		t.Fatalf("SELECT rows = %d", len(res.Rows))
	}
	db.SetFollower(false)
	mustExec(t, db, "INSERT INTO t VALUES (1)")
}

func TestShipperSeesCommitsInCSNOrder(t *testing.T) {
	db := openDB(t, Options{})
	ship := &recShipper{}
	db.SetShipper(ship)
	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 1.5), (2, 2.5)")
	mustExec(t, db, "INSERT INTO t VALUES (3, 3.5)")
	mustExec(t, db, "DROP TABLE t")
	db.SetShipper(nil)
	mustExec(t, db, "CREATE TABLE unseen (a INT)")

	if len(ship.groups) != 4 {
		t.Fatalf("shipped %d groups, want 4", len(ship.groups))
	}
	for i, g := range ship.groups {
		if i > 0 && g.csn != ship.groups[i-1].csn+1 {
			t.Fatalf("group %d has csn %d after %d — not gap-free", i, g.csn, ship.groups[i-1].csn)
		}
	}
	if ship.groups[0].recs[0].Type != wal.RecCreateTable {
		t.Fatalf("group 0 is %d, want create", ship.groups[0].recs[0].Type)
	}
	if n := len(ship.groups[1].recs); n != 2 {
		t.Fatalf("insert group shipped %d records, want 2", n)
	}
	if ship.groups[3].recs[0].Type != wal.RecDropTable {
		t.Fatalf("group 3 is %d, want drop", ship.groups[3].recs[0].Type)
	}
}

func TestShipperTruncatedOnCheckpoint(t *testing.T) {
	db := openDB(t, Options{})
	ship := &recShipper{}
	db.SetShipper(ship)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(ship.truncs) != 1 || ship.truncs[0] != db.CommittedCSN() {
		t.Fatalf("Truncated calls %v, want one at committed CSN %d", ship.truncs, db.CommittedCSN())
	}
}

// TestApplyReplicatedStreamsCommits pipes a primary's shipped groups into a
// follower and asserts bit-identical SELECT results at the same CSN.
func TestApplyReplicatedStreamsCommits(t *testing.T) {
	primary := openDB(t, Options{})
	replica := openDB(t, Options{})
	replica.SetFollower(true)
	ship := &recShipper{}
	primary.SetShipper(ship)

	mustExec(t, primary, "CREATE TABLE t (a INT, s TEXT)")
	for i := 0; i < 5; i++ {
		mustExec(t, primary, fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", i, i))
	}
	for _, g := range ship.groups {
		if err := replica.ApplyReplicated(g.csn, g.recs, false); err != nil {
			t.Fatalf("apply csn %d: %v", g.csn, err)
		}
	}
	if replica.CommittedCSN() != primary.CommittedCSN() {
		t.Fatalf("replica CSN %d, primary %d", replica.CommittedCSN(), primary.CommittedCSN())
	}
	assertSameResults(t, primary, replica, "SELECT a, s FROM t")

	// Duplicate delivery of an applied group is a no-op.
	last := ship.groups[len(ship.groups)-1]
	if err := replica.ApplyReplicated(last.csn, last.recs, false); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, primary, replica, "SELECT a, s FROM t")
}

// TestApplyReplicatedResync snapshots a primary with existing data into a
// replica that holds diverged state; the resync group must atomically
// replace it.
func TestApplyReplicatedResync(t *testing.T) {
	primary := openDB(t, Options{})
	mustExec(t, primary, "CREATE TABLE t (a INT)")
	mustExec(t, primary, "INSERT INTO t VALUES (10), (20), (30)")
	mustExec(t, primary, "CREATE TABLE other (b DOUBLE)")
	mustExec(t, primary, "INSERT INTO other VALUES (1.25)")

	replica := openDB(t, Options{})
	mustExec(t, replica, "CREATE TABLE stale (z INT)") // diverged local state
	mustExec(t, replica, "INSERT INTO stale VALUES (99)")
	replica.SetFollower(true)

	csn, recs, models, err := primary.ReplicaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 0 {
		t.Fatalf("unexpected models in snapshot: %d", len(models))
	}
	if err := replica.ApplyReplicated(csn, recs, true); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if replica.CommittedCSN() != csn {
		t.Fatalf("replica CSN %d after resync, want %d", replica.CommittedCSN(), csn)
	}
	if _, err := replica.Exec("SELECT z FROM stale"); err == nil {
		t.Fatal("diverged table survived the resync")
	}
	assertSameResults(t, primary, replica, "SELECT a FROM t")
	assertSameResults(t, primary, replica, "SELECT b FROM other")

	// The replica recovers its replicated state across a clean restart.
	replPath := replica.path
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(replPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	assertSameResults(t, primary, re, "SELECT a FROM t")
}

// TestApplyReplicatedCrashMidGroupRollsBack: a group whose commit record
// never lands must vanish entirely at the replica's next open.
func TestApplyReplicatedCrashMidGroupRollsBack(t *testing.T) {
	primary := openDB(t, Options{})
	ship := &recShipper{}
	primary.SetShipper(ship)
	mustExec(t, primary, "CREATE TABLE t (a INT)")
	mustExec(t, primary, "INSERT INTO t VALUES (1), (2), (3)")

	path := filepath.Join(t.TempDir(), "r.db")
	// No background checkpointer: a checkpoint between the failed apply and
	// Crash() would persist the half-applied group this test kills.
	replica, err := Open(path, Options{Follower: true, CheckpointWALBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Apply the create, then make the insert group's commit fail.
	if err := replica.ApplyReplicated(ship.groups[0].csn, ship.groups[0].recs, false); err != nil {
		t.Fatal(err)
	}
	// Fail the COMMIT record's append (the 4th append after the injector
	// installs: three inserts, then the commit). Failing the fsync instead
	// would still leave the commit record in the OS page cache, which an
	// in-process "crash" cannot lose.
	inj := fault.New()
	inj.FailAt(wal.FPAppend, errors.New("injected append failure"), 4)
	replica.SetFaults(inj)
	g := ship.groups[1]
	if err := replica.ApplyReplicated(g.csn, g.recs, false); err == nil {
		t.Fatal("apply succeeded under a failing WAL commit")
	}
	if err := replica.Crash(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	res := mustExec(t, re, "SELECT a FROM t")
	if len(res.Rows) != 0 {
		t.Fatalf("half-applied group left %d rows after recovery", len(res.Rows))
	}
	// The stream re-delivers the group; now it lands.
	if err := re.ApplyReplicated(g.csn, g.recs, false); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, primary, re, "SELECT a FROM t")
}

func assertSameResults(t *testing.T, a, b *DB, query string) {
	t.Helper()
	ra, err := a.Exec(query)
	if err != nil {
		t.Fatalf("primary %q: %v", query, err)
	}
	rb, err := b.Exec(query)
	if err != nil {
		t.Fatalf("replica %q: %v", query, err)
	}
	if !reflect.DeepEqual(ra.Rows, rb.Rows) {
		t.Fatalf("%q diverged:\nprimary: %v\nreplica: %v", query, ra.Rows, rb.Rows)
	}
}
