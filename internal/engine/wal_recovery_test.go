package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tensorbase/internal/fault"
	"tensorbase/internal/nn"
	"tensorbase/internal/wal"
)

var errInjected = errors.New("injected crash")

// valueCounts scans tbl and returns how many times each "a" value appears.
func valueCounts(t *testing.T, db *DB, tbl string) map[int64]int {
	t.Helper()
	res, err := db.Exec("SELECT a FROM " + tbl)
	if err != nil {
		t.Fatalf("scanning %s: %v", tbl, err)
	}
	got := make(map[int64]int)
	for _, r := range res.Rows {
		got[r[0].Int]++
	}
	return got
}

// seedWALBase builds the committed base: table t with rows 1..4 and table
// doomed with one row, checkpointed by a clean Close.
func seedWALBase(t *testing.T, path string) {
	t.Helper()
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3), (4)")
	mustExec(t, db, "CREATE TABLE doomed (a INT)")
	mustExec(t, db, "INSERT INTO doomed VALUES (77)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// walWorkload runs a mixed post-checkpoint workload against db with faults
// live: multi-row INSERT statements, a DROP, a CREATE + INSERT into the new
// table. It records which statements were acknowledged.
type walWorkload struct {
	stmts     [][]int64 // values per INSERT statement into t
	acked     []bool
	dropAcked bool
	createOK  bool
	fresheOK  bool
}

func runWALWorkload(db *DB) *walWorkload {
	w := &walWorkload{}
	for i := 0; i < 6; i++ {
		base := int64(100 + 10*i)
		vals := []int64{base, base + 1, base + 2}
		_, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d), (%d), (%d)", vals[0], vals[1], vals[2]))
		w.stmts = append(w.stmts, vals)
		w.acked = append(w.acked, err == nil)
	}
	_, err := db.Exec("DROP TABLE doomed")
	w.dropAcked = err == nil
	if _, err := db.Exec("CREATE TABLE fresh (a INT)"); err == nil {
		w.createOK = true
		_, ferr := db.Exec("INSERT INTO fresh VALUES (7)")
		w.fresheOK = ferr == nil
	}
	return w
}

// assertRecovered checks the recovered database against the workload's
// acknowledgements: the checkpointed base always survives, every
// acknowledged statement survives whole, no statement survives torn, and
// nothing the workload never wrote appears.
func assertRecovered(t *testing.T, re *DB, w *walWorkload) {
	t.Helper()
	got := valueCounts(t, re, "t")
	for v := int64(1); v <= 4; v++ {
		if got[v] != 1 {
			t.Fatalf("checkpointed base row %d lost (counts %v)", v, got)
		}
	}
	known := map[int64]bool{1: true, 2: true, 3: true, 4: true}
	for i, vals := range w.stmts {
		present := 0
		for _, v := range vals {
			known[v] = true
			present += got[v]
		}
		if w.acked[i] && present != len(vals) {
			t.Fatalf("acknowledged statement %d lost rows: %d/%d survived", i, present, len(vals))
		}
		if present != 0 && present != len(vals) {
			t.Fatalf("torn statement %d: %d/%d rows survived", i, present, len(vals))
		}
	}
	for v, n := range got {
		if !known[v] || n != 1 {
			t.Fatalf("foreign or duplicated value %d (count %d) after recovery", v, n)
		}
	}
	// DROP: an acknowledged drop must hold; an unacknowledged one may have
	// committed anyway (the ack was lost, not the commit), but the table
	// must then be fully gone — surviving means fully intact.
	if res, err := re.Exec("SELECT a FROM doomed"); err == nil {
		if w.dropAcked {
			t.Fatal("acknowledged DROP TABLE doomed did not survive recovery")
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Int != 77 {
			t.Fatalf("surviving doomed table is damaged: %v", res.Rows)
		}
	}
	if res, err := re.Exec("SELECT a FROM fresh"); err == nil {
		if n := len(res.Rows); n > 1 || (w.fresheOK && n != 1) {
			t.Fatalf("fresh table has %d rows after recovery (insert acked: %v)", n, w.fresheOK)
		}
	} else if w.createOK && w.fresheOK {
		t.Fatalf("acknowledged CREATE + INSERT lost: %v", err)
	}
}

// TestWALCrashRecoveryMatrix fault-injects every WAL append/frame/sync
// point at several occurrences, crashes the engine mid-workload, and
// asserts recovery lands on a consistent committed state: base intact,
// acked statements whole, no torn statements, no hybrid catalog.
func TestWALCrashRecoveryMatrix(t *testing.T) {
	for _, point := range wal.FaultPoints {
		if point == wal.FPReplay || point == wal.FPTruncate {
			continue // exercised by the dedicated tests below
		}
		for _, occ := range []uint64{1, 2, 5, 9} {
			t.Run(fmt.Sprintf("%s/occ%d", point, occ), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "m.db")
				seedWALBase(t, path)
				db, err := Open(path, Options{})
				if err != nil {
					t.Fatal(err)
				}
				inj := fault.New()
				inj.FailAt(point, errInjected, occ)
				db.SetFaults(inj)
				w := runWALWorkload(db)
				if err := db.Crash(); err != nil {
					t.Fatalf("crash: %v", err)
				}
				re, err := Open(path, Options{})
				if err != nil {
					t.Fatalf("recovery after crash at %s/%d: %v", point, occ, err)
				}
				defer re.Close()
				assertRecovered(t, re, w)
			})
		}
	}
}

// TestCheckpointCrashRecoveryMatrix crashes the CHECKPOINT at every
// persistence fault point (and the WAL truncate): whatever step dies, a
// reopen must recover the complete committed state — the WAL is only
// truncated after the meta rename commits, so nothing is ever lost.
func TestCheckpointCrashRecoveryMatrix(t *testing.T) {
	points := append([]string{wal.FPTruncate}, PersistFaultPoints...)
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.db")
			db, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, db, "CREATE TABLE t (a INT)")
			mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3), (4)")
			if err := db.LoadModel(nn.FraudFC(rand.New(rand.NewSource(1)), 8), 0.9); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, db, "INSERT INTO t VALUES (5), (6), (7), (8)")
			// A second model with fresh weights makes the checkpoint under
			// test write new block files, so every persist.block.* fault
			// point is actually visited.
			if err := db.LoadModel(nn.FraudFC(rand.New(rand.NewSource(2)), 16), 0.8); err != nil {
				t.Fatal(err)
			}
			inj := fault.New()
			inj.FailAt(point, errInjected, 1)
			db.SetFaults(inj)
			cerr := db.Checkpoint()
			if inj.Fired(point) == 0 {
				t.Fatalf("fault point %s never visited during checkpoint", point)
			}
			if cerr == nil {
				t.Fatalf("checkpoint crashed at %s must report an error", point)
			}
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("recovery after checkpoint crash at %s: %v", point, err)
			}
			defer re.Close()
			got := valueCounts(t, re, "t")
			for v := int64(1); v <= 8; v++ {
				if got[v] != 1 {
					t.Fatalf("committed row %d lost after checkpoint crash at %s (counts %v)", v, point, got)
				}
			}
			if len(got) != 8 {
				t.Fatalf("phantom rows after checkpoint crash at %s: %v", point, got)
			}
			if models := re.Catalog().Models(); len(models) != 2 {
				t.Fatalf("hybrid catalog after checkpoint crash at %s: models %v", point, models)
			}
		})
	}
}

// TestRecoveryReplayFaultSurfaces: a fault INSIDE recovery's replay fails
// the Open — never a half-replayed database — and a clean retry recovers
// everything.
func TestRecoveryReplayFaultSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	inj.FailAt(wal.FPReplay, errInjected, 2)
	if _, err := Open(path, Options{Faults: inj}); err == nil {
		t.Fatal("Open with a replay fault must fail")
	} else if !strings.Contains(err.Error(), "recovery") {
		t.Fatalf("replay fault surfaced without recovery context: %v", err)
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("clean reopen after failed recovery: %v", err)
	}
	defer re.Close()
	if got := valueCounts(t, re, "t"); len(got) != 3 {
		t.Fatalf("rows after retried recovery: %v", got)
	}
}

// TestWALCorruptionYieldsPrefix: a bit-flipped frame ends the log's valid
// prefix. Recovery keeps every statement committed before the damage and
// drops everything at or after it — a clean prefix, never garbage rows.
func TestWALCorruptionYieldsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	seedWALBase(t, path)
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	// Each INSERT statement is two frames (payload + commit); occurrence 4
	// is statement 2's commit record.
	inj.CorruptAt(wal.FPFrame, 4)
	db.SetFaults(inj)
	var stmts [][]int64
	for i := 0; i < 6; i++ {
		base := int64(100 + 10*i)
		vals := []int64{base, base + 1}
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d), (%d)", vals[0], vals[1]))
		stmts = append(stmts, vals)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recovery over a corrupt log: %v", err)
	}
	defer re.Close()
	got := valueCounts(t, re, "t")
	for v := int64(1); v <= 4; v++ {
		if got[v] != 1 {
			t.Fatalf("base row %d lost (counts %v)", v, got)
		}
	}
	// The surviving statements must be a prefix: once one is missing, all
	// later ones are too.
	seenGap := false
	for i, vals := range stmts {
		present := 0
		for _, v := range vals {
			present += got[v]
		}
		switch {
		case present == len(vals):
			if seenGap {
				t.Fatalf("statement %d survived after an earlier one was dropped: not a prefix (%v)", i, got)
			}
		case present == 0:
			seenGap = true
		default:
			t.Fatalf("torn statement %d: %d/%d rows (%v)", i, present, len(vals), got)
		}
	}
	if seenGap == false {
		t.Fatal("corruption never dropped anything — the fault point did not fire")
	}
}

// TestWALCrashRecoverySoak drives seeded random fault schedules across all
// WAL write-path points at once, crashing and recovering each round. Every
// run is reproducible from its seed.
func TestWALCrashRecoverySoak(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s.db")
			seedWALBase(t, path)
			db, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.New()
			for _, p := range wal.FaultPoints {
				if p == wal.FPReplay || p == wal.FPTruncate {
					continue
				}
				inj.FailSeeded(p, errInjected, seed, 0.04)
			}
			db.SetFaults(inj)
			w := runWALWorkload(db)
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("recovery (seed %d): %v", seed, err)
			}
			defer re.Close()
			assertRecovered(t, re, w)
		})
	}
}
