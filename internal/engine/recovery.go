package engine

import (
	"fmt"
	"os"

	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/wal"
)

// Crash recovery. The durable state of a database is (last checkpoint) +
// (WAL): the checkpoint's meta file commits a page image, a free list, and
// the recovery inputs below; every statement committed since lives only in
// the log. The heap pages carry no per-page LSNs, so replay cannot be
// idempotent against partially flushed post-checkpoint writes — instead
// recovery makes it duplicate-free by construction: ALL physical state
// written after the checkpoint is discarded first (heap tails truncated to
// their checkpointed slot counts, pages allocated since returned to the
// free list, checkpoint-era tables with a committed drop removed outright),
// and then the committed suffix of the log is replayed onto the clean base.
// Recovery ends with a checkpoint, so the log is consumed exactly once.

// checkpointInfo carries a checkpoint's recovery inputs from loadCatalog
// (meta v2) to recover. Nil on a fresh database; a v1 meta (pre-WAL) also
// yields nil and is upgraded by the open-time checkpoint before any write
// can enter the log.
type checkpointInfo struct {
	// CommitCSN is the committed horizon the checkpoint captured; commit
	// records at or below it are already folded into the base state.
	CommitCSN uint64
	// NumPages is the database file length (in pages) at the checkpoint;
	// pages at or beyond it were allocated afterwards and are orphans.
	NumPages uint32
	// LastSlots maps each table to the slot count of its checkpointed tail
	// page — ResetTail's input.
	LastSlots map[string]int
	// Pages maps each table to its checkpointed page chain. Recovery frees
	// a dropped table from this list rather than walking the on-disk chain,
	// which post-checkpoint reuse may have zeroed.
	Pages map[string][]storage.PageID
}

// recover replays the write-ahead log over the loaded checkpoint and
// leaves a fresh checkpoint behind, so a database that opens successfully
// always has its committed state in the base image and an empty log.
func (db *DB) recover() error {
	base := uint64(0)
	if db.ckptInfo != nil {
		base = db.ckptInfo.CommitCSN
	}
	db.nextCSN = base
	db.committedCSN.Store(base)
	replayed := false
	if db.wal.Size() > 0 {
		if db.ckptInfo == nil && db.gen > 0 {
			return fmt.Errorf("engine: WAL is non-empty but the catalog carries no recovery inputs")
		}
		if err := db.replayWAL(); err != nil {
			return err
		}
		replayed = true
	}
	// Leave a v2 checkpoint behind whenever the log held anything, or the
	// base is a committed v1 (pre-WAL) meta that must be upgraded before a
	// write can enter the log — after this, a non-empty log always
	// coexists with a meta that can replay it. A fresh database needs
	// neither: an empty checkpoint IS its base state.
	if replayed || (db.ckptInfo == nil && db.gen > 0) {
		return db.Checkpoint()
	}
	return nil
}

// replayWAL discards post-checkpoint physical state and applies the
// committed suffix of the log, in log order.
func (db *DB) replayWAL() error {
	info := db.ckptInfo
	if info == nil {
		info = &checkpointInfo{}
	}

	// Pass 1: find which statements committed, and which checkpoint-era
	// tables a committed drop removed (a statement's commit record follows
	// its payload records, so drops are collected and filtered afterwards).
	committed := make(map[uint64]bool)
	type dropRec struct {
		csn  uint64
		name string
	}
	var drops []dropRec
	if err := db.wal.Replay(func(r *wal.Record) error {
		switch r.Type {
		case wal.RecCommit:
			if r.CSN > info.CommitCSN {
				committed[r.CSN] = true
			}
		case wal.RecDropTable:
			drops = append(drops, dropRec{r.CSN, r.Table})
		}
		return nil
	}); err != nil {
		return err
	}
	droppedBase := make(map[string]bool)
	for _, d := range drops {
		if _, isBase := info.LastSlots[d.name]; isBase && committed[d.csn] {
			droppedBase[d.name] = true
		}
	}

	// Discard: drop committed-dropped base tables from their recorded page
	// lists (their on-disk chains may be zeroed by post-checkpoint reuse),
	// truncate every surviving base table to its checkpointed tail, and
	// free the pages allocated after the checkpoint.
	for _, name := range db.cat.Tables() {
		te, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		if droppedBase[name] {
			if err := db.cat.DropTable(name); err != nil {
				return err
			}
			for _, id := range info.Pages[name] {
				if err := db.pool.FreePage(id); err != nil {
					return fmt.Errorf("engine: freeing dropped table %q page %d: %w", name, id, err)
				}
			}
			continue
		}
		slots, ok := info.LastSlots[name]
		if !ok {
			return fmt.Errorf("engine: checkpoint has no tail state for table %q", name)
		}
		if err := te.Heap.ResetTail(slots, te.Heap.Count()); err != nil {
			return fmt.Errorf("engine: resetting %q to its checkpointed tail: %w", name, err)
		}
	}
	for id := info.NumPages; id < db.disk.NumPages(); id++ {
		if err := db.pool.FreePage(storage.PageID(id)); err != nil {
			return fmt.Errorf("engine: freeing orphan page %d: %w", id, err)
		}
	}

	// Pass 2: apply the committed suffix in log order. A record whose table
	// is absent from the catalog belongs to an instance a later committed
	// drop removed (handled above or earlier in the log) — skipped.
	maxCSN := info.CommitCSN
	maxCommitted := info.CommitCSN
	if err := db.wal.Replay(func(r *wal.Record) error {
		if r.CSN > maxCSN {
			maxCSN = r.CSN
		}
		if committed[r.CSN] && r.CSN > maxCommitted {
			maxCommitted = r.CSN
		}
		if r.Type == wal.RecCommit || !committed[r.CSN] {
			return nil
		}
		switch r.Type {
		case wal.RecCreateTable:
			cols := make([]table.Column, len(r.Cols))
			for i, c := range r.Cols {
				cols[i] = table.Column{Name: c.Name, Type: table.ColType(c.Type)}
			}
			schema, err := table.NewSchema(cols...)
			if err != nil {
				return fmt.Errorf("engine: replaying CREATE %q: %w", r.Table, err)
			}
			heap, err := table.NewHeap(db.pool, schema)
			if err != nil {
				return fmt.Errorf("engine: replaying CREATE %q: %w", r.Table, err)
			}
			if err := db.cat.CreateTable(r.Table, heap); err != nil {
				return fmt.Errorf("engine: replaying CREATE %q: %w", r.Table, err)
			}
		case wal.RecInsert:
			te, err := db.cat.Table(r.Table)
			if err != nil {
				return nil // insert into an instance a later drop removed
			}
			if _, err := te.Heap.InsertRecordAt(r.Data, r.CSN); err != nil {
				return fmt.Errorf("engine: replaying INSERT into %q: %w", r.Table, err)
			}
		case wal.RecDropTable:
			te, err := db.cat.Table(r.Table)
			if err != nil {
				return nil // the base instance, already removed
			}
			pages, err := te.Heap.Pages()
			if err != nil {
				return fmt.Errorf("engine: replaying DROP %q: %w", r.Table, err)
			}
			if err := db.cat.DropTable(r.Table); err != nil {
				return fmt.Errorf("engine: replaying DROP %q: %w", r.Table, err)
			}
			for _, id := range pages {
				if err := db.pool.FreePage(id); err != nil {
					return fmt.Errorf("engine: replaying DROP %q: %w", r.Table, err)
				}
			}
		case wal.RecBlock:
			// Stage the block so the manifest record that follows in the
			// same group can assemble against it. Re-staging a block that
			// is already resident (the checkpoint wrote it before the
			// crash) is a no-op.
			if _, err := db.blocks.PutStagedBytes(r.Data); err != nil {
				return fmt.Errorf("engine: replaying weight block: %w", err)
			}
		case wal.RecLoadModel:
			if len(r.Data) > 0 {
				mf, err := nn.DecodeManifest(r.Data)
				if err != nil {
					return fmt.Errorf("engine: replaying LOAD MODEL %q: %w", r.Model, err)
				}
				am, err := nn.ModelFromManifest(mf, db.blocks)
				if err != nil {
					return fmt.Errorf("engine: replaying LOAD MODEL %q: %w", r.Model, err)
				}
				if err := db.registerModel(am, r.Acc, mf); err != nil {
					nn.ReleaseManifest(mf, db.blocks)
					return fmt.Errorf("engine: replaying LOAD MODEL %q: %w", r.Model, err)
				}
				return nil
			}
			// Legacy record: a whole-model file path. Intern it into the
			// block store like loadCatalog does for old catalogs.
			f, err := os.Open(r.File)
			if err != nil {
				return fmt.Errorf("engine: replaying LOAD MODEL %q: %w", r.Model, err)
			}
			m, lerr := nn.Load(f)
			f.Close()
			if lerr != nil {
				return fmt.Errorf("engine: replaying LOAD MODEL %q: %w", r.Model, lerr)
			}
			if err := db.internModel(m, r.Acc); err != nil {
				return fmt.Errorf("engine: replaying LOAD MODEL %q: %w", r.Model, err)
			}
		case wal.RecDropModel:
			// Tolerant: the model may be absent (a crash between the WAL
			// append and the in-memory unregister replays the drop against
			// a catalog that never saw the load, or the checkpoint already
			// folded it in).
			if _, err := db.cat.ModelEntryFor(r.Model); err == nil {
				db.unregisterModel(r.Model)
			}
		default:
			return fmt.Errorf("engine: replay: unknown WAL record type %d", r.Type)
		}
		return nil
	}); err != nil {
		return err
	}

	// Free blocks no surviving manifest references: a replayed DROP MODEL
	// releases its manifest's references, and the checkpoint that ends
	// recovery persists only referenced blocks.
	db.blocks.Sweep()

	// Resume CSNs above everything the log mentions — including uncommitted
	// statements, whose numbers must not be reissued while their records
	// are still in the log (the checkpoint that ends recovery empties it).
	// A follower instead resumes at the highest COMMITTED CSN: an
	// uncommitted suffix is a replicated group whose apply died mid-way,
	// and counting it as applied would make the replica skip its
	// re-delivery (followers never allocate CSNs, so reissue is moot).
	if db.follower.Load() {
		db.nextCSN = maxCommitted
		db.committedCSN.Store(maxCommitted)
		return nil
	}
	db.nextCSN = maxCSN
	db.committedCSN.Store(maxCSN)
	return nil
}
