package engine

import (
	"context"
	"fmt"

	"tensorbase/internal/exec"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/sql"
	"tensorbase/internal/table"
	"tensorbase/internal/udf"
)

// ExecProfiled parses and runs a SELECT with per-stage instrumentation
// (rows and wall time per operator, outermost first) — EXPLAIN ANALYZE.
func (db *DB) ExecProfiled(sqlText string) (*Result, []exec.StageStat, error) {
	st, err := sql.Parse(sqlText)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := st.(*sql.Select); !ok {
		return nil, nil, fmt.Errorf("engine: ExecProfiled supports SELECT only, got %T", st)
	}
	return db.exec(context.Background(), sqlText, true)
}

// runSelect compiles and runs a SELECT: heap scan → filter → optional
// PREDICT inference operator → projection → order → limit. Every
// cancellation-aware operator in the tree observes tok.
//
// SELECT (including PREDICT) is the lock-free serving path: the statement
// holds no table lock, only the heap's read gate (admitting any number of
// readers; it blocks nothing but DROP's page reclamation), and scans
// against the committed-CSN snapshot pinned here — concurrent INSERTs
// commit freely and become visible to the NEXT statement, never mid-scan.
func (db *DB) runSelect(st *sql.Select, profile bool, tok *lifecycle.Token) (*Result, []exec.StageStat, error) {
	var stages []*exec.Instrumented
	wrap := func(name string, op exec.Operator) exec.Operator {
		if !profile {
			return op
		}
		// Each stage samples buffer-pool fetch deltas across its
		// Open..Close window (subtree-inclusive, like wall time).
		ins := exec.Instrument(name, op).WithPool(db.pool)
		stages = append(stages, ins)
		return ins
	}
	// Source: a CTE from the WITH clause materialises through a recursive
	// runSelect into a memory scan; anything else is a snapshot heap scan.
	// Each CTE sees only the bindings before it, so chained CTEs resolve
	// left-to-right and cycles are impossible.
	var (
		op        exec.Operator
		srcSchema *table.Schema
		snap      uint64
	)
	if i := cteIndex(st); i >= 0 {
		body := *st.With[i].Query
		body.With = st.With[:i]
		inner, _, err := db.runSelect(&body, false, tok)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: CTE %q: %w", st.From, err)
		}
		snap = inner.SnapshotCSN
		srcSchema = inner.Schema
		ms := exec.NewMemScan(inner.Schema, inner.Rows)
		ms.SetCancel(tok)
		op = wrap("cte", ms)
	} else {
		te, err := db.resolveForRead(st.From)
		if err != nil {
			return nil, nil, err
		}
		defer te.Heap.EndRead()
		db.mSnapshotReads.Inc()
		snap = db.snapshotCSN()
		scan := exec.NewHeapScanAt(te.Heap, snap)
		scan.SetCancel(tok)
		srcSchema = te.Heap.Schema()
		op = wrap("scan", scan)
		if profile {
			// Surface observability warnings (e.g. a stale vector index over
			// this table) on the scan stage of the profile.
			for _, w := range db.staleVindexWarnings(st.From) {
				stages[0].AddNote(w)
			}
		}
	}

	if st.Where != nil {
		pred, err := compileWhere(srcSchema, st.Where)
		if err != nil {
			return nil, nil, err
		}
		op = wrap("filter", exec.NewFilter(op, pred))
	}

	// At most one PREDICT per query; it appends a "prediction" column.
	var predict *sql.PredictExpr
	for _, item := range st.Items {
		if item.Predict != nil {
			if predict != nil {
				return nil, nil, fmt.Errorf("engine: at most one PREDICT per query")
			}
			predict = item.Predict
		}
	}

	// Aggregation: COUNT/SUM/AVG/MIN/MAX with an optional single GROUP BY
	// column. GROUP BY without aggregates is DISTINCT over the group column.
	if st.GroupBy != "" || st.HasAggregate() {
		if predict != nil {
			return nil, nil, fmt.Errorf("engine: PREDICT cannot be combined with aggregates")
		}
		var groupBy []string
		if st.GroupBy != "" {
			groupBy = []string{st.GroupBy}
		}
		var specs []exec.AggSpec
		for _, item := range st.Items {
			if item.Agg == nil {
				if item.Star {
					return nil, nil, fmt.Errorf("engine: '*' cannot be combined with aggregates")
				}
				if item.Col != st.GroupBy {
					return nil, nil, fmt.Errorf("engine: column %q must appear in GROUP BY", item.Col)
				}
				continue
			}
			kind, ok := aggKinds[item.Agg.Fn]
			if !ok {
				return nil, nil, fmt.Errorf("engine: unknown aggregate %q", item.Agg.Fn)
			}
			specs = append(specs, exec.AggSpec{Kind: kind, Col: item.Agg.Col, As: item.Agg.OutName()})
		}
		agg, err := exec.NewHashAggregate(op, groupBy, specs)
		if err != nil {
			return nil, nil, err
		}
		agg.SetCancel(tok)
		op = wrap("aggregate", agg)
	}

	if predict != nil {
		// Quantized serving: per-query OPTIONS (quantized) or the engine-wide
		// default routes to the model's int8-resident twin, with its own
		// cache/coalescer key — the two modes never share results.
		quantized := predict.Quantized || db.opts.PredictQuantized
		udfName, cacheKey := "adaptive:"+predict.Model, predict.Model
		if quantized {
			udfName, cacheKey = "quantized:"+predict.Model, quantizedKey(predict.Model)
		}
		u, ok := db.udfs.Lookup(udfName)
		if !ok {
			if quantized {
				if _, f32 := db.udfs.Lookup("adaptive:" + predict.Model); f32 {
					return nil, nil, fmt.Errorf("engine: model %q has no quantized twin", predict.Model)
				}
			}
			return nil, nil, fmt.Errorf("engine: model %q is not loaded", predict.Model)
		}
		if quantized {
			db.mPredictQuantized.Inc()
		}
		iopts := []udf.InferOption{udf.WithStats(&db.inferStats), udf.WithCancel(tok)}
		if !db.opts.DisablePredictPipeline {
			// Producer draws a worker token from the process-wide compute
			// budget; with none free the operator runs serially.
			iopts = append(iopts, udf.WithPipeline(nil))
		}
		if rc, ok := db.ResultCacheFor(cacheKey); ok {
			iopts = append(iopts, udf.WithCache(rc))
		}
		if co, ok := db.coalescerFor(cacheKey); ok {
			// Concurrent PREDICTs over the same model merge their
			// cache-miss rows into shared model invocations.
			iopts = append(iopts, udf.WithCoalescer(co))
		}
		infer, err := udf.NewInferOp(op, u, predict.FeatureCol, db.opts.InferBatch, iopts...)
		if err != nil {
			return nil, nil, err
		}
		op = wrap("predict", infer)
	}

	// Projection.
	var cols []string
	star := false
	for _, item := range st.Items {
		switch {
		case item.Star:
			star = true
		case item.Predict != nil:
			cols = append(cols, "prediction")
		case item.Agg != nil:
			cols = append(cols, item.Agg.OutName())
		default:
			cols = append(cols, item.Col)
		}
	}
	if star {
		if len(st.Items) != 1 {
			return nil, nil, fmt.Errorf("engine: '*' cannot be combined with other select items")
		}
	} else {
		proj, err := exec.NewProject(op, cols...)
		if err != nil {
			return nil, nil, err
		}
		op = wrap("project", proj)
	}

	if st.OrderBy != "" {
		// External merge sort: ORDER BY spills runs through the buffer
		// pool instead of materialising arbitrarily large inputs.
		srt, err := exec.NewExternalSort(op, st.OrderBy, st.OrderDesc, db.pool)
		if err != nil {
			return nil, nil, err
		}
		srt.SetCancel(tok)
		op = wrap("sort", srt)
	}
	if st.Limit >= 0 {
		op = wrap("limit", exec.NewLimit(op, st.Limit))
	}

	rows, err := exec.Collect(op)
	if err != nil {
		return nil, nil, err
	}
	// Stages were appended innermost-first; report outermost-first.
	for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
		stages[i], stages[j] = stages[j], stages[i]
	}
	return &Result{Schema: op.Schema(), Rows: rows, SnapshotCSN: snap}, exec.Profile(stages), nil
}

// aggKinds maps parsed aggregate names to exec kinds.
var aggKinds = map[string]exec.AggKind{
	"COUNT": exec.Count,
	"SUM":   exec.Sum,
	"AVG":   exec.Avg,
	"MIN":   exec.Min,
	"MAX":   exec.Max,
}

// cteIndex returns the index of the WITH binding the FROM clause names, or
// -1 when FROM is a base table. The last binding with a given name wins.
func cteIndex(st *sql.Select) int {
	for i := len(st.With) - 1; i >= 0; i-- {
		if st.With[i].Name == st.From {
			return i
		}
	}
	return -1
}

// compileWhere builds a predicate for `col op literal`.
func compileWhere(schema *table.Schema, c *sql.Condition) (exec.Predicate, error) {
	idx := schema.ColIndex(c.Col)
	if idx < 0 {
		return nil, fmt.Errorf("engine: unknown column %q", c.Col)
	}
	colType := schema.Cols[idx].Type
	lit, err := coerce(c.Lit.Value, colType)
	if err != nil {
		// Allow comparing INT columns with float literals and vice versa.
		if colType == table.Int64 && c.Lit.Value.Type == table.Float64 {
			lit = c.Lit.Value
		} else {
			return nil, fmt.Errorf("engine: WHERE %s: %w", c.Col, err)
		}
	}
	cmp, err := comparator(colType, lit)
	if err != nil {
		return nil, err
	}
	switch c.Op {
	case "=":
		return func(t table.Tuple) (bool, error) { return cmp(t[idx]) == 0, nil }, nil
	case "!=":
		return func(t table.Tuple) (bool, error) { return cmp(t[idx]) != 0, nil }, nil
	case "<":
		return func(t table.Tuple) (bool, error) { return cmp(t[idx]) < 0, nil }, nil
	case "<=":
		return func(t table.Tuple) (bool, error) { return cmp(t[idx]) <= 0, nil }, nil
	case ">":
		return func(t table.Tuple) (bool, error) { return cmp(t[idx]) > 0, nil }, nil
	case ">=":
		return func(t table.Tuple) (bool, error) { return cmp(t[idx]) >= 0, nil }, nil
	default:
		return nil, fmt.Errorf("engine: unsupported operator %q", c.Op)
	}
}

// comparator returns a function comparing a column value against the
// literal: -1, 0, +1.
func comparator(colType table.ColType, lit table.Value) (func(table.Value) int, error) {
	switch colType {
	case table.Int64:
		switch lit.Type {
		case table.Int64:
			want := lit.Int
			return func(v table.Value) int { return cmpInt(v.Int, want) }, nil
		case table.Float64:
			want := lit.Float
			return func(v table.Value) int { return cmpFloat(float64(v.Int), want) }, nil
		}
	case table.Float64:
		want := lit.Float
		return func(v table.Value) int { return cmpFloat(v.Float, want) }, nil
	case table.Text:
		want := lit.Str
		return func(v table.Value) int {
			switch {
			case v.Str < want:
				return -1
			case v.Str > want:
				return 1
			default:
				return 0
			}
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot compare column type %v", colType)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
