package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Snapshot-isolation semantics. Readers pin the committed-CSN horizon at
// statement start and never block on (or observe) in-flight writers; these
// tests run reads and writes concurrently and are the -race tier's proof
// that the lock-free serving path is actually safe.

// TestSnapshotReadsNeverSeePartialInserts: a writer commits fixed-size
// batches while readers scan in a loop. Under snapshot isolation every scan
// must see an exact multiple of the batch size — a remainder means a scan
// observed a statement mid-commit.
func TestSnapshotReadsNeverSeePartialInserts(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE s (a INT)")

	const batch = 7
	const batches = 40
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		vals := make([]string, batch)
		for i := 0; i < batches; i++ {
			for j := range vals {
				vals[j] = fmt.Sprintf("(%d)", i*batch+j)
			}
			if _, err := db.Exec("INSERT INTO s VALUES " + strings.Join(vals, ", ")); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	readers := 2
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			last := -1
			for !stop.Load() {
				res, err := db.Exec("SELECT a FROM s")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				n := len(res.Rows)
				if n%batch != 0 {
					t.Errorf("scan saw %d rows: not a whole number of %d-row batches", n, batch)
					return
				}
				if n < last {
					t.Errorf("row count went backwards: %d after %d", n, last)
					return
				}
				last = n
			}
		}()
	}
	wg.Wait()
	if res := mustExec(t, db, "SELECT a FROM s"); len(res.Rows) != batch*batches {
		t.Fatalf("final count %d, want %d", len(res.Rows), batch*batches)
	}
}

// TestPredictScanUnderConcurrentInserts: the paper's serving path — PREDICT
// over a feature table — keeps returning consistent, whole-batch result
// sets while a writer appends rows. Model inference must never observe a
// torn tuple.
func TestPredictScanUnderConcurrentInserts(t *testing.T) {
	db := openDB(t, Options{})
	_, d := loadFraud(t, db, 256)
	rows, _, err := d.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}
	base := len(rows)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < 12; i++ {
			if _, err := db.InsertRows("txns", rows[:16]); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			res, err := db.Exec("SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
			if err != nil {
				t.Errorf("predict: %v", err)
				return
			}
			n := len(res.Rows)
			if n < base || (n-base)%16 != 0 {
				t.Errorf("PREDICT saw %d rows (base %d): snapshot exposed a partial insert", n, base)
				return
			}
		}
	}()
	wg.Wait()
	if res := mustExec(t, db, "SELECT id FROM txns"); len(res.Rows) != base+12*16 {
		t.Fatalf("final count %d, want %d", len(res.Rows), base+12*16)
	}
}

// TestDropDuringConcurrentScans: DROP TABLE while readers hammer the table.
// Every read must either complete against its snapshot or fail cleanly with
// an unknown-table error — never crash, never return partial garbage.
func TestDropDuringConcurrentScans(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE victim (a INT)")
	mustExec(t, db, "INSERT INTO victim VALUES (1), (2), (3), (4), (5)")

	var wg sync.WaitGroup
	var dropped atomic.Bool
	readers := 3
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for !dropped.Load() {
				res, err := db.Exec("SELECT a FROM victim")
				if err != nil {
					if !strings.Contains(err.Error(), "victim") {
						t.Errorf("unexpected scan error: %v", err)
					}
					continue
				}
				if len(res.Rows) != 5 {
					t.Errorf("scan saw %d rows, want 5 or a clean error", len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer dropped.Store(true)
		if _, err := db.Exec("DROP TABLE victim"); err != nil {
			t.Errorf("drop: %v", err)
		}
	}()
	wg.Wait()
	if _, err := db.Exec("SELECT a FROM victim"); err == nil {
		t.Fatal("victim still scannable after DROP")
	}
}
