package engine

import (
	"time"

	"tensorbase/internal/lockmgr"
)

// Checkpoint folds the WAL into the base state: flush every dirty page,
// sync the database file, commit the catalog (the meta rename names the
// flushed pages, the free list, and the checkpoint's recovery inputs), and
// only then truncate the log. A crash at any point recovers to either the
// previous checkpoint plus the full WAL, or the new checkpoint plus an
// empty one — the meta rename is the sole commit point.
//
// The checkpoint quiesces writers the same way Close does: the DDL latch
// first, then every table's exclusive lock in the manager's canonical
// order. Lock-free readers are unaffected — their snapshots read pages the
// flush does not mutate. Writers blocking for the duration is what makes
// the truncate safe: no commit can land in the log between the meta rename
// and the truncate and be lost.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	ddl, err := db.locks.Acquire(nil, lockmgr.Request{DDL: true})
	if err != nil {
		return err
	}
	defer ddl.Release()
	tls := make([]lockmgr.TableLock, 0)
	for _, name := range db.cat.Tables() {
		tls = append(tls, lockmgr.TableLock{Table: name, Mode: lockmgr.Exclusive})
	}
	held, err := db.locks.Acquire(nil, lockmgr.Request{Tables: tls})
	if err != nil {
		return err
	}
	defer held.Release()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.disk.Sync(); err != nil {
		return err
	}
	if err := db.saveCatalog(); err != nil {
		return err
	}
	if err := db.wal.Truncate(); err != nil {
		return err
	}
	db.checkpoints.Add(1)
	// Tell the replication primary (if any) that the log through the
	// committed horizon is gone: block files left unreferenced since the
	// last save may be GCed from now on, so a replica too far behind must
	// full-resync instead of replaying the stream.
	db.pubMu.Lock()
	s := db.shipper
	db.pubMu.Unlock()
	if s != nil {
		s.Truncated(db.committedCSN.Load())
	}
	return nil
}

// startCheckpointer runs the background checkpointer: a 1-second poll that
// fires a checkpoint when the configured interval has elapsed or the WAL
// has grown past the size trigger. Errors are not fatal — the next poll
// retries, and the WAL keeps accumulating (bounded only by disk) until a
// checkpoint succeeds.
func (db *DB) startCheckpointer() {
	interval := db.opts.CheckpointInterval
	sizeTrigger := db.opts.CheckpointWALBytes
	if interval <= 0 && sizeTrigger <= 0 {
		return
	}
	poll := time.Second
	if interval > 0 && interval < poll {
		poll = interval
	}
	db.ckptStop = make(chan struct{})
	db.ckptDone = make(chan struct{})
	go func() {
		defer close(db.ckptDone)
		ticker := time.NewTicker(poll)
		defer ticker.Stop()
		var sinceLast time.Duration
		for {
			select {
			case <-db.ckptStop:
				return
			case <-ticker.C:
			}
			sinceLast += poll
			due := interval > 0 && sinceLast >= interval
			if sizeTrigger > 0 && db.wal.Size() >= uint64(sizeTrigger) {
				due = true
			}
			if !due {
				continue
			}
			sinceLast = 0
			db.Checkpoint() //nolint:errcheck // retried next poll
		}
	}()
}

// stopCheckpointer stops the background checkpointer and waits for an
// in-flight checkpoint to finish. Safe to call twice (Crash then Close).
func (db *DB) stopCheckpointer() {
	if db.ckptStop == nil {
		return
	}
	db.ckptOnce.Do(func() { close(db.ckptStop) })
	<-db.ckptDone
}
