package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tensorbase/internal/nn"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
	"tensorbase/internal/testutil"
)

// slowLayer is an identity layer that sleeps per forward call, making query
// runtime deterministic regardless of host speed: a PREDICT over many
// batches is guaranteed to still be in flight when the test cancels it.
type slowLayer struct{ d time.Duration }

func (l slowLayer) Name() string                     { return "slowid" }
func (l slowLayer) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }
func (l slowLayer) MemEstimate(in []int) int64       { return 0 }
func (l slowLayer) ParamBytes() int64                { return 0 }
func (l slowLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	time.Sleep(l.d)
	return x
}

// panicLayer blows up on its first forward call.
type panicLayer struct{}

func (panicLayer) Name() string                     { return "panicop" }
func (panicLayer) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }
func (panicLayer) MemEstimate(in []int) int64       { return 0 }
func (panicLayer) ParamBytes() int64                { return 0 }
func (panicLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("forward exploded")
}

// loadBig populates table "big" with n feature rows (width-8 vectors) and
// registers a slow identity model over them. Rows are inserted straight into
// the heap, reusing one tuple, so building a million-row table stays cheap.
func loadBig(t *testing.T, db *DB, n int, perBatch time.Duration) {
	t.Helper()
	h, err := db.CreateTable("big", table.MustSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "features", Type: table.FloatVec},
	))
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]float32, 8)
	for i := 0; i < n; i++ {
		vec[0] = float32(i % 97)
		if _, err := h.Insert(table.Tuple{table.IntVal(int64(i)), table.VecVal(vec)}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := nn.NewModel("slow", []int{1, 8}, slowLayer{d: perBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadModel(m, 0); err != nil {
		t.Fatal(err)
	}
}

// TestPredictCancelMidFlight is the headline robustness contract: a PREDICT
// over a million rows, cancelled mid-flight, returns context.Canceled within
// a fraction of a second, leaves no pinned frames, no reserved memory, and
// no goroutines (scan producer, compute workers) behind.
func TestPredictCancelMidFlight(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	db := openDB(t, Options{})
	// ~3900 batches at 2ms of model time each: the query runs for seconds
	// unless cancellation stops it.
	loadBig(t, db, 1_000_000, 2*time.Millisecond)
	const q = "SELECT id, PREDICT(slow, features) FROM big"

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		errCh := make(chan error, 1)
		go func() {
			_, err := db.QueryContext(ctx, q)
			errCh <- err
		}()
		time.Sleep(50 * time.Millisecond) // let it get well into the scan+model loop
		cancelAt := time.Now()
		cancel()
		select {
		case err := <-errCh:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled query returned %v, want context.Canceled", err)
			}
			if took := time.Since(cancelAt); took > 250*time.Millisecond {
				t.Fatalf("cancellation took %v, want < 250ms", took)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("query ignored cancellation")
		}
		if got := db.Pool().Pinned(); got != 0 {
			t.Fatalf("pinned frames after cancelled query = %d, want 0", got)
		}
		if got := db.Budget().Reserved(); got != 0 {
			t.Fatalf("reserved bytes after cancelled query = %d, want 0", got)
		}
		// The database stays fully usable.
		res := mustExec(t, db, "SELECT id FROM big WHERE id < 3")
		if len(res.Rows) != 3 {
			t.Fatalf("follow-up query rows = %d", len(res.Rows))
		}
	})

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
		defer cancel()
		_, err := db.QueryContext(ctx, q)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadlined query returned %v, want context.DeadlineExceeded", err)
		}
		if got := db.Pool().Pinned(); got != 0 {
			t.Fatalf("pinned frames after deadlined query = %d, want 0", got)
		}
		if got := db.Budget().Reserved(); got != 0 {
			t.Fatalf("reserved bytes after deadlined query = %d, want 0", got)
		}
	})
}

// TestOptionsQueryTimeout: the engine-level deadline applies without any
// caller-provided context.
func TestOptionsQueryTimeout(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	db := openDB(t, Options{QueryTimeout: 20 * time.Millisecond})
	// 40 batches at 5ms each ≈ 200ms of model time, far past the timeout.
	loadBig(t, db, 10_000, 5*time.Millisecond)
	_, err := db.Query("SELECT id, PREDICT(slow, features) FROM big")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded from Options.QueryTimeout", err)
	}
	if got := db.Pool().Pinned(); got != 0 {
		t.Fatalf("pinned frames = %d, want 0", got)
	}
}

// TestPanicInForwardContainedPerQuery: a model whose forward pass panics
// fails only its own query; the panic is counted, and both plain SQL and
// PREDICT over a healthy model keep working on the same database.
func TestPanicInForwardContainedPerQuery(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	db := openDB(t, Options{InferBatch: 16})
	loadFraud(t, db, 40)
	bad, err := nn.NewModel("boom", []int{1, 28}, panicLayer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadModel(bad, 0); err != nil {
		t.Fatal(err)
	}

	_, qerr := db.Exec("SELECT id, PREDICT(boom, features) FROM txns")
	if qerr == nil {
		t.Fatal("query over panicking model succeeded")
	}
	if !strings.Contains(qerr.Error(), "forward exploded") {
		t.Fatalf("query error %q does not carry the panic value", qerr)
	}
	if got := db.Stats().Panics; got < 1 {
		t.Fatalf("Stats().Panics = %d, want >= 1", got)
	}
	if got := db.Pool().Pinned(); got != 0 {
		t.Fatalf("pinned frames after panicked query = %d, want 0", got)
	}
	if got := db.Budget().Reserved(); got != 0 {
		t.Fatalf("reserved bytes after panicked query = %d, want 0", got)
	}

	// The next queries — plain and model-backed — succeed.
	res := mustExec(t, db, "SELECT id FROM txns WHERE id < 5")
	if len(res.Rows) != 5 {
		t.Fatalf("plain query rows = %d", len(res.Rows))
	}
	res = mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	if len(res.Rows) != 40 {
		t.Fatalf("healthy PREDICT rows = %d", len(res.Rows))
	}
}

// TestInsertCancelled: DML honours the context too.
func TestInsertCancelled(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, "INSERT INTO t VALUES (1), (2), (3)")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryPanicCountsAndDBSurvives exercises the query-level recover (above
// the UDF layer) via a model registered directly against the UDF registry
// boundary: a panicking layer reached through the serial (non-pipelined)
// path still converts to an error.
func TestQueryPanicSerialPath(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	db := openDB(t, Options{InferBatch: 16, DisablePredictPipeline: true})
	loadFraud(t, db, 30)
	bad, err := nn.NewModel("boom2", []int{1, 28}, panicLayer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadModel(bad, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT PREDICT(boom2, features) FROM txns"); err == nil {
		t.Fatal("serial-path panic not surfaced")
	}
	if got := db.Stats().Panics; got < 1 {
		t.Fatalf("Stats().Panics = %d, want >= 1", got)
	}
	res := mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	if len(res.Rows) != 30 {
		t.Fatalf("healthy PREDICT rows = %d", len(res.Rows))
	}
}
