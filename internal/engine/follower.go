package engine

import (
	"errors"
	"fmt"

	"tensorbase/internal/blockstore"
	"tensorbase/internal/lockmgr"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/wal"
)

// Follower mode: the replica side of log-shipping replication (see
// internal/repl). A follower engine rejects every local write — SQL
// INSERT/CREATE/DROP, the programmatic twins, LoadModel — and is mutated
// only through ApplyReplicated, which replays one published commit group
// from the primary under the same WAL-then-publish protocol a local
// statement uses. Reads are untouched: SELECT/PREDICT/Nearest serve
// lock-free snapshots at the replica's applied CSN, exactly as on the
// primary.

// ErrReadOnly is returned for any write attempted on a follower engine.
var ErrReadOnly = errors.New("engine: read-only replica")

// SetFollower marks the engine a replication follower (or, with false,
// promotes it back to writable). It does not interrupt in-flight local
// statements; callers flip it before serving traffic.
func (db *DB) SetFollower(on bool) { db.follower.Store(on) }

// IsFollower reports whether local writes are rejected.
func (db *DB) IsFollower() bool { return db.follower.Load() }

// CommittedCSN returns the published committed horizon — on a follower,
// the applied CSN its snapshots serve at; on a primary, the newest commit.
func (db *DB) CommittedCSN() uint64 { return db.committedCSN.Load() }

// followerAdvance publishes csn on a follower, allowing jumps: a resync
// lands the replica at the primary's snapshot CSN without the intermediate
// numbers ever existing locally.
func (db *DB) followerAdvance(csn uint64) {
	db.pubMu.Lock()
	if csn > db.committedCSN.Load() {
		db.committedCSN.Store(csn)
	}
	db.pubMu.Unlock()
	db.pubCond.Broadcast()
	db.csnMu.Lock()
	if csn > db.nextCSN {
		db.nextCSN = csn
	}
	db.csnMu.Unlock()
}

// ApplyReplicated replays one shipped commit group — every record of one
// published CSN from the primary, or a whole resync snapshot stamped with
// the snapshot CSN — into this engine. The group commits atomically
// through the local WAL: records are appended first, applied physically,
// and a commit record gates the whole group, so recovery after a crash
// mid-apply restores the pre-group state and the stream re-delivers.
//
// Model weights travel as RecBlock records (deduplicated: the stream
// carries only blocks the replica reported missing) followed by the
// manifest-bearing RecLoadModel, so a shipped group is self-contained in
// the replica's WAL — no side-channel files to stage or leak.
//
// With resync set, the group is a full snapshot: every local table is
// dropped and every local model unloaded first (inside the same WAL commit
// group — recovery handles drop-then-recreate of a name within one group),
// then the snapshot's creates/inserts/model loads apply. nil recs advance
// the applied CSN only (the primary published an abort).
//
// Contract on error: the engine may hold a half-applied group in memory.
// The caller must Crash() and re-Open — recovery rolls the group back
// (no commit record) — before applying anything else.
func (db *DB) ApplyReplicated(csn uint64, recs []*wal.Record, resync bool) error {
	if csn <= db.committedCSN.Load() {
		return nil // duplicate delivery of an already-applied group
	}

	// Build the lock request the way a local statement would: the DDL latch
	// whenever the group changes the table or model set, plus exclusive
	// locks on every table the group writes. The applier is the only writer
	// on a follower, but the latch still serializes against the background
	// checkpointer.
	ddl := resync
	tableSet := make(map[string]bool)
	for _, r := range recs {
		switch r.Type {
		case wal.RecInsert:
			tableSet[r.Table] = true
		case wal.RecCreateTable, wal.RecDropTable:
			ddl = true
			tableSet[r.Table] = true
		case wal.RecLoadModel, wal.RecBlock, wal.RecDropModel:
			ddl = true
		}
	}
	if resync {
		// The snapshot replaces everything: the replica's current tables
		// and models are dropped inside the group. Shared weight blocks
		// survive the drop-then-reload — Release never frees, only the
		// post-commit Sweep does, by which point the reloaded manifests
		// hold their references again.
		var drops []*wal.Record
		for _, name := range db.cat.Tables() {
			tableSet[name] = true
			drops = append(drops, &wal.Record{Type: wal.RecDropTable, CSN: csn, Table: name})
		}
		for _, name := range db.cat.Models() {
			drops = append(drops, &wal.Record{Type: wal.RecDropModel, CSN: csn, Model: name})
		}
		recs = append(drops, recs...)
	}
	req := lockmgr.Request{DDL: ddl}
	for name := range tableSet {
		req.Tables = append(req.Tables, lockmgr.TableLock{Table: name, Mode: lockmgr.Exclusive})
	}
	if req.DDL || len(req.Tables) > 0 {
		held, err := db.locks.Acquire(nil, req)
		if err != nil {
			return err
		}
		defer held.Release()
	}

	// Log the whole group before touching any physical state, so a crash at
	// any point either replays all of it (commit record present) or none.
	for _, r := range recs {
		if _, err := db.wal.Append(r); err != nil {
			return fmt.Errorf("engine: apply csn %d: logging: %w", csn, err)
		}
	}

	// Physical apply, in record order — the live twin of recovery's pass 2.
	// Dropped heaps keep their pages until after the commit record: a
	// failure before the commit must leave the old state readable.
	type droppedHeap struct {
		heap  *table.Heap
		pages []storage.PageID
	}
	var dropped []droppedHeap
	for _, r := range recs {
		switch r.Type {
		case wal.RecCreateTable:
			cols := make([]table.Column, len(r.Cols))
			for i, c := range r.Cols {
				cols[i] = table.Column{Name: c.Name, Type: table.ColType(c.Type)}
			}
			schema, err := table.NewSchema(cols...)
			if err != nil {
				return fmt.Errorf("engine: apply CREATE %q: %w", r.Table, err)
			}
			heap, err := table.NewHeap(db.pool, schema)
			if err != nil {
				return fmt.Errorf("engine: apply CREATE %q: %w", r.Table, err)
			}
			if err := db.cat.CreateTable(r.Table, heap); err != nil {
				return fmt.Errorf("engine: apply CREATE %q: %w", r.Table, err)
			}
		case wal.RecInsert:
			te, err := db.cat.Table(r.Table)
			if err != nil {
				return fmt.Errorf("engine: apply INSERT: %w", err)
			}
			if _, err := te.Heap.InsertRecordAt(r.Data, r.CSN); err != nil {
				return fmt.Errorf("engine: apply INSERT into %q: %w", r.Table, err)
			}
		case wal.RecDropTable:
			te, err := db.cat.Table(r.Table)
			if err != nil {
				return fmt.Errorf("engine: apply DROP: %w", err)
			}
			pages, err := te.Heap.Pages()
			if err != nil {
				return fmt.Errorf("engine: apply DROP %q: %w", r.Table, err)
			}
			if err := db.cat.DropTable(r.Table); err != nil {
				return fmt.Errorf("engine: apply DROP %q: %w", r.Table, err)
			}
			db.vmu.Lock()
			for key := range db.vindexes {
				if key.table == r.Table {
					delete(db.vindexes, key)
				}
			}
			db.vmu.Unlock()
			dropped = append(dropped, droppedHeap{te.Heap, pages})
		case wal.RecBlock:
			if _, err := db.blocks.PutStagedBytes(r.Data); err != nil {
				return fmt.Errorf("engine: apply weight block: %w", err)
			}
		case wal.RecLoadModel:
			if _, err := db.cat.Model(r.Model); err == nil {
				continue // already registered (models are immutable once named)
			}
			if len(r.Data) == 0 {
				return fmt.Errorf("engine: apply LOAD MODEL %q: record carries no manifest", r.Model)
			}
			mf, err := nn.DecodeManifest(r.Data)
			if err != nil {
				return fmt.Errorf("engine: apply LOAD MODEL %q: %w", r.Model, err)
			}
			am, err := nn.ModelFromManifest(mf, db.blocks)
			if err != nil {
				return fmt.Errorf("engine: apply LOAD MODEL %q: %w", r.Model, err)
			}
			if err := db.registerModel(am, r.Acc, mf); err != nil {
				nn.ReleaseManifest(mf, db.blocks)
				return fmt.Errorf("engine: apply LOAD MODEL %q: %w", r.Model, err)
			}
		case wal.RecDropModel:
			if _, err := db.cat.ModelEntryFor(r.Model); err == nil {
				db.unregisterModel(r.Model)
			}
		default:
			return fmt.Errorf("engine: apply: unexpected record type %d", r.Type)
		}
	}
	if err := db.wal.Commit(csn); err != nil {
		return fmt.Errorf("engine: apply csn %d: commit: %w", csn, err)
	}
	// Post-commit reclamation, as in execDrop: wait out in-flight snapshot
	// scans of the dropped heaps, then free their pages, and sweep weight
	// blocks no surviving manifest references. A failure here leaks pages —
	// never corruption — so the applied CSN still advances.
	var leakErr error
	for _, d := range dropped {
		d.heap.Drain()
		d.heap.Release()
		for _, id := range d.pages {
			if err := db.pool.FreePage(id); err != nil && leakErr == nil {
				leakErr = fmt.Errorf("engine: apply csn %d: reclaiming pages: %w", csn, err)
			}
		}
	}
	db.blocks.Sweep()
	db.followerAdvance(csn)
	return leakErr
}

// ModelManifest is one model inside a replica snapshot: its identity plus
// the encoded block manifest. The weight bytes themselves are NOT here —
// the replica reports which blocks it is missing and the primary ships
// only those (see MissingBlocks / BlockPayload).
type ModelManifest struct {
	Name     string
	Acc      float64
	Manifest []byte
}

// ReplicaSnapshot captures a full logical copy of the committed database —
// the resync payload for a replica that fell behind a WAL truncation. It
// holds the DDL latch throughout, pinning the committed horizon against
// CREATE/DROP/LoadModel; concurrent INSERTs may publish during the scan but
// their rows are stamped above the pinned CSN and invisible to it. Every
// returned record is stamped with the snapshot CSN. Memory-resident models
// (no manifest) are skipped, matching their single-process durability
// contract.
func (db *DB) ReplicaSnapshot() (uint64, []*wal.Record, []ModelManifest, error) {
	ddl, err := db.locks.Acquire(nil, lockmgr.Request{DDL: true})
	if err != nil {
		return 0, nil, nil, err
	}
	defer ddl.Release()
	csn := db.committedCSN.Load()
	var recs []*wal.Record
	for _, name := range db.cat.Tables() {
		te, err := db.cat.Table(name)
		if err != nil {
			return 0, nil, nil, err
		}
		schema := te.Heap.Schema()
		create := &wal.Record{Type: wal.RecCreateTable, CSN: csn, Table: name}
		for _, c := range schema.Cols {
			create.Cols = append(create.Cols, wal.Col{Name: c.Name, Type: uint8(c.Type)})
		}
		recs = append(recs, create)
		sc := te.Heap.ScanAt(csn)
		for {
			tup, ok, err := sc.Next()
			if err != nil {
				return 0, nil, nil, fmt.Errorf("engine: snapshot scan of %q: %w", name, err)
			}
			if !ok {
				break
			}
			data, err := table.Encode(schema, tup)
			if err != nil {
				return 0, nil, nil, fmt.Errorf("engine: snapshot encode of %q: %w", name, err)
			}
			recs = append(recs, &wal.Record{Type: wal.RecInsert, CSN: csn, Table: name, Data: data})
		}
	}
	var models []ModelManifest
	for _, name := range db.cat.Models() {
		entry, err := db.cat.ModelEntryFor(name)
		if err != nil {
			return 0, nil, nil, err
		}
		mf, ok := db.manifestFor(name)
		if !ok {
			continue
		}
		models = append(models, ModelManifest{
			Name:     name,
			Acc:      entry.Versions[0].Accuracy,
			Manifest: nn.EncodeManifest(mf),
		})
	}
	return csn, recs, models, nil
}

// MissingBlocks decodes each encoded manifest and returns the hashes of
// every referenced block not resident in this engine's store, deduplicated,
// in first-reference order — the replica's "send me these" list during a
// resync handshake.
func (db *DB) MissingBlocks(manifests [][]byte) ([]blockstore.Hash, error) {
	seen := make(map[blockstore.Hash]bool)
	var missing []blockstore.Hash
	for _, raw := range manifests {
		mf, err := nn.DecodeManifest(raw)
		if err != nil {
			return nil, fmt.Errorf("engine: resync manifest: %w", err)
		}
		for _, h := range mf.Hashes() {
			if seen[h] || db.blocks.Has(h) {
				continue
			}
			seen[h] = true
			missing = append(missing, h)
		}
	}
	return missing, nil
}

// BlockPayload returns the encoded bytes of a resident block — the primary
// side of the resync block fetch. ok is false when no block with that hash
// is resident (the replica asked for something this primary never had, or
// a drop swept it between snapshot and fetch; the replica treats that as a
// failed resync and reconnects).
func (db *DB) BlockPayload(h blockstore.Hash) ([]byte, bool) {
	data, ok := db.blocks.BlockData(h)
	if !ok {
		return nil, false
	}
	return blockstore.Encode(data), true
}
