package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tensorbase/internal/fault"
	"tensorbase/internal/nn"
)

var errCrash = errors.New("simulated crash")

// seedCrashDB creates the "state A" database at path: one table with rows
// rows and one loaded model, committed by a clean Close.
func seedCrashDB(t *testing.T, path string, rows int) {
	t.Helper()
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE items (x INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO items VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.LoadModel(nn.FraudFC(rand.New(rand.NewSource(1)), 8), 0.9); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// mutateToStateB reopens path and grows it to "state B": more rows and a
// second model. It does NOT close the database; the caller decides how.
func mutateToStateB(t *testing.T, path string, extraRows int) *DB {
	t.Helper()
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < extraRows; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO items VALUES (%d)", 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.LoadModel(nn.FraudFC(rand.New(rand.NewSource(2)), 16), 0.8); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSaveCatalogCrashSafety is the regression test for the non-durable
// saveCatalog: it kills the save at every fault point in the protocol and
// asserts a reopen sees either the old catalog or the new one — never a
// corrupt hybrid, never a truncated model file. (The old code truncated
// committed model files in place and renamed without syncing, so a crash
// between model write and meta rename left the committed meta pointing at
// garbage.)
func TestSaveCatalogCrashSafety(t *testing.T) {
	const rowsA, extra = 16, 10
	for _, point := range PersistFaultPoints {
		t.Run(point, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.db")
			seedCrashDB(t, path, rowsA)
			db := mutateToStateB(t, path, extra)

			inj := fault.New()
			inj.FailAt(point, errCrash, 1)
			db.SetFaults(inj)
			err := db.Close()
			if inj.Fired(point) == 0 {
				t.Fatalf("fault point %s never visited during save", point)
			}
			if err == nil {
				t.Fatalf("Close with a crash at %s must report an error", point)
			}

			// Reopen: the database must come back, with state A or state B.
			re, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", point, err)
			}
			defer re.Close()
			te, err := re.Catalog().Table("items")
			if err != nil {
				t.Fatalf("table lost after crash at %s: %v", point, err)
			}
			count := te.Heap.Count()
			models := re.Catalog().Models()
			oldOK := count == rowsA && len(models) == 1
			newOK := count == rowsA+extra && len(models) == 2
			if !oldOK && !newOK {
				t.Fatalf("hybrid catalog after crash at %s: rows=%d models=%v", point, count, models)
			}
			// The restored heap must actually scan. Row DATA is not
			// transactional (pages flush independently of the catalog
			// commit; there is no WAL), so an old catalog may legitimately
			// scan rows inserted after its commit — but never fewer than
			// it records, and never garbage.
			res, err := re.Exec("SELECT x FROM items")
			if err != nil {
				t.Fatalf("query after crash at %s: %v", point, err)
			}
			if got := int64(len(res.Rows)); got < count || got > rowsA+extra {
				t.Fatalf("scan after crash at %s: %d rows, catalog says %d", point, got, count)
			}
			// Every model the committed meta references was loadable (Open
			// would have failed otherwise) and answers a plan request.
			for _, m := range models {
				if _, err := re.ExplainPredict(m, 4); err != nil {
					t.Fatalf("model %s unusable after crash at %s: %v", m, point, err)
				}
			}
		})
	}
}

// TestSaveCatalogGCsUnreferencedBlocks asserts that committed saves leave
// exactly the referenced block files behind — no tmp leftovers — that
// generations advance across reopens, and that dropping a model removes
// its now-unreferenced block files at the next checkpoint.
func TestSaveCatalogGCsUnreferencedBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.db")
	seedCrashDB(t, path, 4) // commits generation 1

	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.gen != 1 {
		t.Fatalf("loaded generation = %d, want 1", db.gen)
	}
	model := db.Catalog().Models()[0]
	if err := db.Close(); err != nil { // commits generation 2
		t.Fatal(err)
	}

	entries, err := os.ReadDir(path + ".blocks")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("tmp leftover after clean save: %s", e.Name())
		}
		if !strings.HasSuffix(e.Name(), ".blk") {
			t.Fatalf("foreign file in blocks dir: %s", e.Name())
		}
	}
	if len(entries) == 0 {
		t.Fatal("no block files after a save with a registered model")
	}

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Catalog().Models(); len(got) != 1 {
		t.Fatalf("models after reopen = %v", got)
	}
	if err := re.DropModel(model); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(path + ".blocks")
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("unreferenced block files survive a committed save after DROP MODEL: %v", entries)
	}
}

// TestSaveCatalogAbortLeavesCommittedFilesIntact pins the core invariant
// the old code violated: a save that dies mid-way must not have modified
// any file the committed catalog references. Content-addressed block files
// make this structural — a committed name is never rewritten — and this
// test keeps it that way.
func TestSaveCatalogAbortLeavesCommittedFilesIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "i.db")
	seedCrashDB(t, path, 4)

	// Record the committed block file bytes.
	entries, err := os.ReadDir(path + ".blocks")
	if err != nil {
		t.Fatal(err)
	}
	committed := make(map[string][]byte)
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(path+".blocks", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		committed[e.Name()] = b
	}
	if len(committed) == 0 {
		t.Fatal("no committed block files")
	}

	db := mutateToStateB(t, path, 2)
	inj := fault.New()
	inj.FailAt(fpMetaRename, errCrash, 1) // die right before the commit point
	db.SetFaults(inj)
	if err := db.Close(); err == nil {
		t.Fatal("crash before meta rename must fail the save")
	}

	for name, want := range committed {
		got, err := os.ReadFile(filepath.Join(path+".blocks", name))
		if err != nil {
			t.Fatalf("committed block file %s gone after aborted save: %v", name, err)
		}
		if string(got) != string(want) {
			t.Fatalf("committed block file %s modified by aborted save", name)
		}
	}
}

// TestCheckpointUnchangedModelsWriteZeroModelBytes is the satellite
// regression for the every-generation model rewrite: a checkpoint where no
// model changed must not write a single model byte. The block write fault
// point counts file writes, changed or not — its visit count across the
// second save must be zero.
func TestCheckpointUnchangedModelsWriteZeroModelBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "z.db")
	seedCrashDB(t, path, 4)

	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	inj := fault.New() // no rules: pure visit counter
	db.SetFaults(inj)
	if _, err := db.Exec("INSERT INTO items VALUES (99)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := inj.Count(fpBlockWrite); n != 0 {
		t.Fatalf("checkpoint with unchanged models wrote %d block files, want 0", n)
	}
	// Sanity: the counter DOES count when a new model forces block writes.
	if err := db.LoadModel(nn.FraudFC(rand.New(rand.NewSource(7)), 16), 0.8); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := inj.Count(fpBlockWrite); n == 0 {
		t.Fatal("block write fault point never visited for a fresh model's checkpoint")
	}
}
