package engine

import (
	"math"
	"testing"
)

// TestPredictQuantizedAccuracyGate is the accuracy-delta gate for quantized
// serving: predictions from the int8-resident twin must stay within a fixed
// epsilon of the f32 path element-wise, and agree with it on the top class
// for at least 99% of the demo table's rows. A quantization or kernel
// regression that shifts predictions materially fails here, not in
// production.
func TestPredictQuantizedAccuracyGate(t *testing.T) {
	db := openDB(t, Options{InferBatch: 32})
	loadFraud(t, db, 200)
	f32 := mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	q8 := mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) OPTIONS (quantized) FROM txns")
	if len(q8.Rows) != len(f32.Rows) {
		t.Fatalf("quantized %d rows, f32 %d", len(q8.Rows), len(f32.Rows))
	}
	const epsilon = 0.05
	agree := 0
	for i := range f32.Rows {
		a, b := f32.Rows[i][1].Vec, q8.Rows[i][1].Vec
		if len(a) != len(b) {
			t.Fatalf("row %d: widths %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if d := math.Abs(float64(a[j] - b[j])); d > epsilon {
				t.Fatalf("row %d class %d: f32 %v vs quantized %v (|Δ| %.4f > %.2f)",
					i, j, a[j], b[j], d, epsilon)
			}
		}
		if argmax32(a) == argmax32(b) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(f32.Rows)); frac < 0.99 {
		t.Fatalf("top-class agreement %.3f, want >= 0.99", frac)
	}
}

func argmax32(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// TestPredictQuantizedBitIdenticalAcrossModes: per-row activation scales
// make quantized outputs a function of each row alone, so serial, pipelined,
// and cached/coalesced executions must produce bit-identical predictions.
func TestPredictQuantizedBitIdenticalAcrossModes(t *testing.T) {
	const q = "SELECT id, PREDICT(Fraud-FC-32, features) OPTIONS (quantized) FROM txns"
	run := func(opts Options) [][]float32 {
		opts.InferBatch = 16
		db := openDB(t, opts)
		loadFraud(t, db, 150)
		res := mustExec(t, db, q)
		out := make([][]float32, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = r[1].Vec
		}
		return out
	}
	serial := run(Options{DisablePredictPipeline: true, DisablePredictCoalesce: true})
	pipelined := run(Options{DisablePredictCoalesce: true})
	coalesced := run(Options{ResultCache: true})
	for name, got := range map[string][][]float32{"pipelined": pipelined, "cached+coalesced": coalesced} {
		if len(got) != len(serial) {
			t.Fatalf("%s: %d rows vs %d", name, len(got), len(serial))
		}
		for i := range serial {
			for j := range serial[i] {
				if math.Float32bits(got[i][j]) != math.Float32bits(serial[i][j]) {
					t.Fatalf("%s row %d[%d]: %x vs serial %x (must be bit-identical)",
						name, i, j, math.Float32bits(got[i][j]), math.Float32bits(serial[i][j]))
				}
			}
		}
	}
}

// TestPredictQuantizedCacheIsolation: the quantized mode must never serve
// results cached by the f32 mode (and vice versa) — their outputs differ in
// bits, keyed apart by the mode-specific cache key.
func TestPredictQuantizedCacheIsolation(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16, ResultCache: true})
	loadFraud(t, db, 50)
	f32a := mustExec(t, db, "SELECT PREDICT(Fraud-FC-32, features) FROM txns")
	// Repeat f32 so its cache is warm, then ask quantized: every quantized
	// row must be a miss on its own cache, not a hit on the f32 one.
	mustExec(t, db, "SELECT PREDICT(Fraud-FC-32, features) FROM txns")
	misses := db.Stats().CacheMisses
	q8 := mustExec(t, db, "SELECT PREDICT(Fraud-FC-32, features) OPTIONS (quantized) FROM txns")
	if got := db.Stats().CacheMisses - misses; got != 50 {
		t.Fatalf("quantized run had %d cache misses, want 50 (own cache, cold)", got)
	}
	identical := true
	for i := range f32a.Rows {
		for j := range f32a.Rows[i][0].Vec {
			if math.Float32bits(f32a.Rows[i][0].Vec[j]) != math.Float32bits(q8.Rows[i][0].Vec[j]) {
				identical = false
			}
		}
	}
	if identical {
		t.Fatal("quantized output bit-identical to f32 across the whole table — suspicious (cache bleed?)")
	}
}

func TestPredictQuantizedEngineDefault(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16, PredictQuantized: true})
	loadFraud(t, db, 30)
	base := db.Metrics().Counter("tensorbase_predict_quantized_total")
	res := mustExec(t, db, "SELECT PREDICT(Fraud-FC-32, features) FROM txns")
	if len(res.Rows) != 30 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := db.Metrics().Counter("tensorbase_predict_quantized_total") - base; got != 1 {
		t.Fatalf("tensorbase_predict_quantized_total rose by %d, want 1", got)
	}
}

func TestPredictQuantizedErrors(t *testing.T) {
	db := openDB(t, Options{})
	loadFraud(t, db, 10)
	if _, err := db.Exec("SELECT PREDICT(ghost, features) OPTIONS (quantized) FROM txns"); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := db.Exec("SELECT PREDICT(Fraud-FC-32, features) OPTIONS (turbo) FROM txns"); err == nil {
		t.Fatal("unknown PREDICT option must error")
	}
}
