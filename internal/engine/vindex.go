package engine

import (
	"fmt"

	"tensorbase/internal/ann"
	"tensorbase/internal/lockmgr"
	"tensorbase/internal/table"
)

// Vector indexing (Sec. 5): the engine builds ANN indexes over FloatVec
// columns, turning the database into the "high-performance retrieving
// engine" role the paper assigns it — nearest-neighbour lookup over stored
// feature/embedding vectors, the substrate for retrieval-augmented
// inference and the result cache.

// vectorIndex pairs an ANN index with the row ids it indexes.
type vectorIndex struct {
	index ann.Index
	dim   int
	// rids maps the ANN-internal id to the indexed row's RID.
	rids []table.RID
	// builtRows is the heap row count when the index was built. Rows
	// inserted later are not indexed; a mismatch against the live count
	// marks the index stale (detected per query, never served silently).
	builtRows int64
}

// vindexKey identifies an index by table and column.
type vindexKey struct {
	table, column string
}

// vindexes is lazily initialised on first CreateVectorIndex.
func (db *DB) vindexMap() map[vindexKey]*vectorIndex {
	db.vmu.Lock()
	defer db.vmu.Unlock()
	if db.vindexes == nil {
		db.vindexes = make(map[vindexKey]*vectorIndex)
	}
	return db.vindexes
}

// CreateVectorIndex builds an HNSW index over the FloatVec column of a
// table's current rows. Rows inserted later are not indexed automatically;
// rebuild to refresh. The build holds the table's shared lock, so it sees
// a consistent heap (inserts wait, scans proceed).
func (db *DB) CreateVectorIndex(tableName, column string) (int, error) {
	held, err := db.locks.Acquire(nil, lockmgr.Request{
		Tables: []lockmgr.TableLock{{Table: tableName, Mode: lockmgr.Shared}},
	})
	if err != nil {
		return 0, err
	}
	defer held.Release()
	te, err := db.cat.Table(tableName)
	if err != nil {
		return 0, err
	}
	schema := te.Heap.Schema()
	idx := schema.ColIndex(column)
	if idx < 0 {
		return 0, fmt.Errorf("engine: unknown column %q", column)
	}
	if schema.Cols[idx].Type != table.FloatVec {
		return 0, fmt.Errorf("engine: column %q is %v, want VECTOR", column, schema.Cols[idx].Type)
	}

	vi := &vectorIndex{}
	sc := te.Heap.Scan()
	// The scanner yields tuples in (page, slot) order; Heap.RIDs walks
	// the same order, so position n of both corresponds to the same row.
	rids, err := te.Heap.RIDs()
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		vec := t[idx].Vec
		if vi.index == nil {
			vi.dim = len(vec)
			vi.index = ann.NewHNSW(vi.dim, ann.HNSWConfig{Seed: 1})
		}
		if len(vec) != vi.dim {
			return 0, fmt.Errorf("engine: ragged vectors in %s.%s (%d vs %d)", tableName, column, len(vec), vi.dim)
		}
		if n >= len(rids) {
			return 0, fmt.Errorf("engine: heap changed during index build")
		}
		if err := vi.index.Add(int64(n), vec); err != nil {
			return 0, err
		}
		vi.rids = append(vi.rids, rids[n])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("engine: cannot index empty table %q", tableName)
	}
	vi.builtRows = int64(n)
	db.vindexMap()[vindexKey{tableName, column}] = vi
	return n, nil
}

// staleVindexWarnings returns one warning per vector index on tableName
// whose table has grown (or shrunk) since the index was built. EXPLAIN
// ANALYZE attaches them to the scan stage.
func (db *DB) staleVindexWarnings(tableName string) []string {
	te, err := db.cat.Table(tableName)
	if err != nil {
		return nil
	}
	live := te.Heap.Count()
	var warns []string
	db.vmu.Lock()
	for key, vi := range db.vindexes {
		if key.table == tableName && vi.builtRows != live {
			warns = append(warns, fmt.Sprintf(
				"warning: vector index %s.%s is stale (built over %d rows, table now has %d; rebuild to refresh)",
				key.table, key.column, vi.builtRows, live))
		}
	}
	db.vmu.Unlock()
	return warns
}

// Nearest returns the k rows of tableName whose indexed column is closest
// to query, nearest first, with squared distances. Like SELECT, it is a
// lock-free read: it holds only the heap's read gate, so lookups never
// queue behind writers, and the gate keeps DROP's page reclamation from
// racing the row fetches.
func (db *DB) Nearest(tableName, column string, query []float32, k int) ([]table.Tuple, []float64, error) {
	te, err := db.resolveForRead(tableName)
	if err != nil {
		return nil, nil, err
	}
	defer te.Heap.EndRead()
	db.vmu.Lock()
	vi, ok := db.vindexes[vindexKey{tableName, column}]
	db.vmu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("engine: no vector index on %s.%s", tableName, column)
	}
	if len(query) != vi.dim {
		return nil, nil, fmt.Errorf("engine: query dimension %d, index dimension %d", len(query), vi.dim)
	}
	// A table that changed since the index build is served anyway (the
	// indexed rows are still correct nearest-neighbour candidates among
	// themselves) but never silently: the stale-query metric counts it,
	// and EXPLAIN ANALYZE over the table carries a warning.
	if live := te.Heap.Count(); live != vi.builtRows {
		db.mVindexStale.Inc()
	}
	res, err := vi.index.Search(query, k)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]table.Tuple, 0, len(res))
	dists := make([]float64, 0, len(res))
	for _, r := range res {
		if r.ID < 0 || int(r.ID) >= len(vi.rids) {
			return nil, nil, fmt.Errorf("engine: stale vector index entry %d", r.ID)
		}
		t, err := te.Heap.Get(vi.rids[r.ID])
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, t)
		dists = append(dists, r.Dist)
	}
	return rows, dists, nil
}
