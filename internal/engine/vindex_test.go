package engine

import (
	"strings"
	"testing"
)

// TestStaleVectorIndexDetected is the regression test for Nearest silently
// serving from an index missing rows inserted after the build: staleness
// must surface as a metric and as an EXPLAIN ANALYZE warning, and a
// rebuild must clear both.
func TestStaleVectorIndexDetected(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE docs (id INT, emb VECTOR)")
	mustExec(t, db, "INSERT INTO docs VALUES (1, [0, 0]), (2, [10, 0]), (3, [0, 10])")
	if _, err := db.CreateVectorIndex("docs", "emb"); err != nil {
		t.Fatal(err)
	}

	// Fresh index: no staleness signal.
	if _, _, err := db.Nearest("docs", "emb", []float32{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if n := db.Metrics().Counter("tensorbase_vindex_stale_queries_total"); n != 0 {
		t.Fatalf("fresh index reported %d stale queries", n)
	}
	if w := db.staleVindexWarnings("docs"); len(w) != 0 {
		t.Fatalf("fresh index produced warnings: %v", w)
	}

	// Insert after the build: the index is now stale. Lookups still serve
	// (indexed rows remain valid candidates) but must be counted.
	mustExec(t, db, "INSERT INTO docs VALUES (4, [1, 1])")
	rows, _, err := db.Nearest("docs", "emb", []float32{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("stale index returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r[0].Int == 4 {
			t.Fatal("unindexed row 4 cannot be served by the stale index")
		}
	}
	if n := db.Metrics().Counter("tensorbase_vindex_stale_queries_total"); n != 1 {
		t.Fatalf("stale queries metric = %d, want 1", n)
	}

	// EXPLAIN ANALYZE over the table carries the warning on the scan stage.
	_, stats, err := db.ExecProfiled("SELECT id FROM docs")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range stats {
		if s.Name == "scan" && strings.Contains(s.Note, "stale") {
			found = true
		}
	}
	if !found {
		t.Fatalf("profile missing stale-index warning: %+v", stats)
	}

	// Rebuild clears the staleness (metric keeps its history).
	if _, err := db.CreateVectorIndex("docs", "emb"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Nearest("docs", "emb", []float32{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if n := db.Metrics().Counter("tensorbase_vindex_stale_queries_total"); n != 1 {
		t.Fatalf("rebuilt index still counted stale: %d", n)
	}
	if w := db.staleVindexWarnings("docs"); len(w) != 0 {
		t.Fatalf("rebuilt index produced warnings: %v", w)
	}
}
