package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tensorbase/internal/data"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
)

func openDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "e.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelectRoundTrip(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE txns (id INT, amount DOUBLE, who TEXT)")
	res := mustExec(t, db, "INSERT INTO txns VALUES (1, 10.5, 'alice'), (2, 200, 'bob'), (3, 3.25, 'carol')")
	if res.RowsAffected != 3 {
		t.Fatalf("inserted %d", res.RowsAffected)
	}
	res = mustExec(t, db, "SELECT who, amount FROM txns WHERE amount > 5 LIMIT 10")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "alice" || res.Rows[1][0].Str != "bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Schema.Cols[0].Name != "who" {
		t.Fatalf("schema = %+v", res.Schema.Cols)
	}
}

func TestSelectStar(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'x')")
	res := mustExec(t, db, "SELECT * FROM t")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := db.Exec("SELECT *, a FROM t"); err == nil {
		t.Fatal("star combined with columns must error")
	}
}

func TestWhereOperatorsAndCoercion(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT a FROM t WHERE a = 2", 1},
		{"SELECT a FROM t WHERE a != 2", 2},
		{"SELECT a FROM t WHERE a < 2", 1},
		{"SELECT a FROM t WHERE a <= 2", 2},
		{"SELECT a FROM t WHERE a > 2", 1},
		{"SELECT a FROM t WHERE a >= 2", 2},
		{"SELECT a FROM t WHERE a > 1.5", 2}, // float literal on INT column
	}
	for _, c := range cases {
		res := mustExec(t, db, c.sql)
		if len(res.Rows) != c.want {
			t.Fatalf("%s → %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE)")
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('x', 1)"); err == nil {
		t.Fatal("type mismatch must error")
	}
	// INT → DOUBLE coercion is allowed.
	mustExec(t, db, "INSERT INTO t VALUES (1, 2)")
	if _, err := db.Exec("INSERT INTO ghost VALUES (1)"); err == nil {
		t.Fatal("missing table must error")
	}
}

func TestDDLErrors(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Fatal("duplicate table must error")
	}
	if _, err := db.Exec("SELECT a FROM ghost"); err == nil {
		t.Fatal("select from missing table must error")
	}
	if _, err := db.Exec("SELECT ghost FROM t"); err == nil {
		t.Fatal("unknown projection column must error")
	}
	if _, err := db.Exec("SELECT a FROM t WHERE ghost = 1"); err == nil {
		t.Fatal("unknown where column must error")
	}
}

// loadFraud populates a fraud feature table and a trained model.
func loadFraud(t *testing.T, db *DB, n int) (*nn.Model, *data.Classified) {
	t.Helper()
	d := data.Fraud(1, n)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("txns", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRows("txns", rows); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	m := nn.FraudFC(rng, 32)
	if _, err := nn.Train(m, d.X, d.Labels, nn.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadModel(m, 0.95); err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestPredictInQuery(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16})
	m, d := loadFraud(t, db, 100)
	res := mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	if len(res.Rows) != 100 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Predictions must match direct model inference.
	direct, err := m.Predict(d.X.Clone())
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, r := range res.Rows {
		pred := r[1].Vec
		if len(pred) != 2 {
			t.Fatalf("prediction width %d", len(pred))
		}
		cls := 0
		if pred[1] > pred[0] {
			cls = 1
		}
		if cls == direct[i] {
			agree++
		}
	}
	if agree != 100 {
		t.Fatalf("only %d/100 predictions agree with direct inference", agree)
	}
}

func TestPredictWithWhereAndLimit(t *testing.T) {
	db := openDB(t, Options{InferBatch: 8})
	loadFraud(t, db, 60)
	res := mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns WHERE id < 10 LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].Int >= 10 {
			t.Fatalf("filter leaked row %v", r)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	db := openDB(t, Options{})
	loadFraud(t, db, 10)
	if _, err := db.Exec("SELECT PREDICT(ghost, features) FROM txns"); err == nil {
		t.Fatal("unloaded model must error")
	}
	if _, err := db.Exec("SELECT PREDICT(Fraud-FC-32, id) FROM txns"); err == nil {
		t.Fatal("non-vector feature column must error")
	}
	if _, err := db.Exec("SELECT PREDICT(Fraud-FC-32, features), PREDICT(Fraud-FC-32, features) FROM txns"); err == nil {
		t.Fatal("two PREDICTs must error")
	}
}

func TestLoadModelDuplicate(t *testing.T) {
	db := openDB(t, Options{})
	rng := rand.New(rand.NewSource(4))
	m := nn.FraudFC(rng, 16)
	if err := db.LoadModel(m, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadModel(m, 0); err == nil {
		t.Fatal("duplicate model load must error")
	}
}

func TestExplainPredict(t *testing.T) {
	db := openDB(t, Options{MemoryThreshold: 1})
	rng := rand.New(rand.NewSource(5))
	if err := db.LoadModel(nn.FraudFC(rng, 64), 0); err != nil {
		t.Fatal(err)
	}
	s, err := db.ExplainPredict("Fraud-FC-64", 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "relation-centric") {
		t.Fatalf("explain:\n%s", s)
	}
	if _, err := db.ExplainPredict("ghost", 1); err == nil {
		t.Fatal("missing model must error")
	}
}

func TestPredictAdaptiveRelationCentricInSQL(t *testing.T) {
	// With a tiny threshold every operator runs relation-centrically;
	// PREDICT must still return correct results through the blocked path.
	db := openDB(t, Options{MemoryThreshold: 1 << 10, InferBatch: 32})
	m, d := loadFraud(t, db, 64)
	res := mustExec(t, db, "SELECT PREDICT(Fraud-FC-32, features) FROM txns")
	direct := m.Forward(d.X.Clone())
	for i, r := range res.Rows {
		for j, v := range r[0].Vec {
			if diff := v - direct.At(i, j); diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("row %d: %v vs %v", i, r[0].Vec, direct.Row(i))
			}
		}
	}
}

func TestPredictOOMSurfacesInQuery(t *testing.T) {
	db := openDB(t, Options{MemoryBudget: 4 << 10, InferBatch: 64})
	loadFraud(t, db, 64)
	_, err := db.Exec("SELECT PREDICT(Fraud-FC-32, features) FROM txns")
	if !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestLoadModelFile(t *testing.T) {
	db := openDB(t, Options{})
	rng := rand.New(rand.NewSource(6))
	m := nn.FraudFC(rng, 16)
	path := filepath.Join(t.TempDir(), "m.tbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.Save(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := db.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != m.Name() {
		t.Fatalf("loaded %q", got.Name())
	}
	if _, err := db.LoadModelFile("/nonexistent/m.tbm"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (7)")
	te, err := db.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	first, last, count := te.Heap.FirstPage(), te.Heap.LastPage(), te.Heap.Count()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the file and re-attach the heap (catalog persistence is the
	// caller's concern; page data must survive).
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	schema := table.MustSchema(table.Column{Name: "a", Type: table.Int64})
	h := table.OpenHeap(db2.Pool(), schema, first, last, count)
	sc := h.Scan()
	tup, ok, err := sc.Next()
	if err != nil || !ok {
		t.Fatalf("scan after reopen: ok=%v err=%v", ok, err)
	}
	if tup[0].Int != 7 {
		t.Fatalf("value = %d", tup[0].Int)
	}
}

func TestOrderByInQuery(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (2), (3), (1)")
	res := mustExec(t, db, "SELECT a FROM t ORDER BY a DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 3 || res.Rows[1][0].Int != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := db.Exec("SELECT a FROM t ORDER BY ghost"); err == nil {
		t.Fatal("unknown order column must error")
	}
}

func TestDropTableSQL(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Exec("SELECT a FROM t"); err == nil {
		t.Fatal("dropped table must be gone")
	}
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Fatal("double drop must error")
	}
	// Name can be reused after drop.
	mustExec(t, db, "CREATE TABLE t (b TEXT)")
}

func TestCatalogPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT, who TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (7, 'x'), (8, 'y')")
	rng := rand.New(rand.NewSource(61))
	m := nn.FraudFC(rng, 16)
	if err := db.LoadModel(m, 0.91); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustExec(t, db2, "SELECT a, who FROM t ORDER BY a")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 7 || res.Rows[1][1].Str != "y" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Inserts must continue the restored chain.
	mustExec(t, db2, "INSERT INTO t VALUES (9, 'z')")
	res = mustExec(t, db2, "SELECT a FROM t")
	if len(res.Rows) != 3 {
		t.Fatalf("rows after insert = %d", len(res.Rows))
	}
	// The model must be restored and servable.
	entry, err := db2.Catalog().ModelEntryFor("Fraud-FC-16")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Versions[0].Accuracy != 0.91 {
		t.Fatalf("accuracy = %v", entry.Versions[0].Accuracy)
	}
	mustExec(t, db2, "CREATE TABLE f (id INT, features VECTOR)")
	mustExec(t, db2, "INSERT INTO f VALUES (1, "+vec28+")")
	res = mustExec(t, db2, "SELECT PREDICT(Fraud-FC-16, features) FROM f")
	if len(res.Rows) != 1 || len(res.Rows[0][0].Vec) != 2 {
		t.Fatalf("predict after reopen = %v", res.Rows)
	}
}

// vec28 is a 28-wide SQL vector literal.
var vec28 = func() string {
	s := "[1"
	for i := 1; i < 28; i++ {
		s += ",0"
	}
	return s + "]"
}()

func TestOpenRejectsCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".meta", []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("corrupt catalog must be rejected")
	}
}

func TestOpenFreshDatabaseHasNoCatalog(t *testing.T) {
	db := openDB(t, Options{})
	if len(db.Catalog().Tables()) != 0 || len(db.Catalog().Models()) != 0 {
		t.Fatal("fresh database must start empty")
	}
}

func TestExecProfiled(t *testing.T) {
	db := openDB(t, Options{InferBatch: 8})
	loadFraud(t, db, 40)
	res, stats, err := db.ExecProfiled("SELECT id, PREDICT(Fraud-FC-32, features) FROM txns WHERE id < 20 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	names := make([]string, len(stats))
	for i, s := range stats {
		names[i] = s.Name
	}
	want := []string{"limit", "project", "predict", "filter", "scan"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v", names, want)
		}
	}
	// Row counts: limit caps at 10; the scan stops early once the limit
	// is satisfied (pipelined early termination), so it reads at least
	// the 10 surviving rows but need not read all 40.
	if stats[0].Rows != 10 {
		t.Fatalf("limit rows = %d", stats[0].Rows)
	}
	if stats[4].Rows < 10 || stats[4].Rows > 40 {
		t.Fatalf("scan rows = %d", stats[4].Rows)
	}
	// Outer stages include inner time.
	for i := 1; i < len(stats); i++ {
		if stats[i].Elapsed > stats[i-1].Elapsed {
			t.Fatalf("stage %s (%v) slower than its parent %s (%v)",
				stats[i].Name, stats[i].Elapsed, stats[i-1].Name, stats[i-1].Elapsed)
		}
	}
	rendered := exec.FormatProfile(stats)
	if !strings.Contains(rendered, "predict") || !strings.Contains(rendered, "self") {
		t.Fatalf("profile rendering:\n%s", rendered)
	}
	if _, _, err := db.ExecProfiled("DROP TABLE txns"); err == nil {
		t.Fatal("non-SELECT must be rejected by ExecProfiled")
	}
}

func TestConcurrentQueriesOverDistinctTables(t *testing.T) {
	db := openDB(t, Options{BufferFrames: 64})
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (x INT)")
	for i := 0; i < 500; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO a VALUES (%d)", i))
		mustExec(t, db, fmt.Sprintf("INSERT INTO b VALUES (%d)", i*2))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		table := "a"
		if g%2 == 1 {
			table = "b"
		}
		go func(table string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := db.Exec("SELECT x FROM " + table + " WHERE x >= 100")
				if err != nil {
					errs <- err
					return
				}
				if table == "a" && len(res.Rows) != 400 {
					errs <- fmt.Errorf("table a: %d rows", len(res.Rows))
					return
				}
			}
		}(table)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestVectorIndexNearest(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE docs (id INT, emb VECTOR)")
	mustExec(t, db, "INSERT INTO docs VALUES (1, [0, 0]), (2, [10, 0]), (3, [0, 10]), (4, [10, 10])")
	n, err := db.CreateVectorIndex("docs", "emb")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("indexed %d rows", n)
	}
	rows, dists, err := db.Nearest("docs", "emb", []float32{9, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int != 2 {
		t.Fatalf("nearest = %v", rows)
	}
	if dists[0] > dists[1] {
		t.Fatal("distances not sorted")
	}
	if _, _, err := db.Nearest("docs", "emb", []float32{1}, 1); err == nil {
		t.Fatal("wrong dimension must error")
	}
	if _, _, err := db.Nearest("docs", "ghost", []float32{1, 2}, 1); err == nil {
		t.Fatal("unindexed column must error")
	}
}

func TestVectorIndexValidation(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE v (id INT, emb VECTOR)")
	if _, err := db.CreateVectorIndex("v", "emb"); err == nil {
		t.Fatal("empty table must error")
	}
	if _, err := db.CreateVectorIndex("v", "id"); err == nil {
		t.Fatal("non-vector column must error")
	}
	if _, err := db.CreateVectorIndex("ghost", "emb"); err == nil {
		t.Fatal("missing table must error")
	}
	mustExec(t, db, "INSERT INTO v VALUES (1, [1, 2]), (2, [1, 2, 3])")
	if _, err := db.CreateVectorIndex("v", "emb"); err == nil {
		t.Fatal("ragged vectors must error")
	}
}

func TestLowerPredictAndStats(t *testing.T) {
	db := openDB(t, Options{MemoryThreshold: 1})
	rng := rand.New(rand.NewSource(91))
	if err := db.LoadModel(nn.FraudFC(rng, 32), 0); err != nil {
		t.Fatal(err)
	}
	dot, err := db.LowerPredict("Fraud-FC-32", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "matmul") {
		t.Fatalf("dot:\n%s", dot)
	}
	if _, err := db.LowerPredict("ghost", 1); err == nil {
		t.Fatal("missing model must error")
	}
	mustExec(t, db, "CREATE TABLE s (a INT)")
	mustExec(t, db, "INSERT INTO s VALUES (1)")
	mustExec(t, db, "SELECT a FROM s")
	st := db.Stats()
	if st.PoolHits == 0 && st.PoolMisses == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestEnableOffloadServesCorrectly(t *testing.T) {
	db := openDB(t, Options{})
	rt := dlruntime.New(dlruntime.Graph, 0)
	rt.SetOverheads(dlruntime.Overheads{})
	db.EnableOffload(rt, 50)
	rng := rand.New(rand.NewSource(111))
	m := nn.EncoderFC(rng)
	if err := db.LoadModel(m, 0); err != nil {
		t.Fatal(err)
	}
	d := data.Dense(112, 20, 76)
	rows := make([]table.Tuple, 20)
	for i := range rows {
		rows[i] = table.Tuple{table.IntVal(int64(i)), table.VecVal(d.Row(i))}
	}
	schema := table.MustSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "features", Type: table.FloatVec},
	)
	if _, err := db.CreateTable("enc", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRows("enc", rows); err != nil {
		t.Fatal(err)
	}
	s, err := db.ExplainPredict("Encoder-FC", 256)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "dl-centric") {
		t.Fatalf("plan should offload:\n%s", s)
	}
	res := mustExec(t, db, "SELECT PREDICT(Encoder-FC, features) FROM enc")
	direct := m.Forward(d.Clone())
	for i, r := range res.Rows {
		for j, v := range r[0].Vec {
			diff := v - direct.At(i, j)
			if diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestPredictResultCacheServesRepeatQueries(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16, ResultCache: true, ResultCacheDistance: 1e-9})
	loadFraud(t, db, 60)
	q := "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns"

	cold := mustExec(t, db, q)
	s1 := db.Stats()
	if s1.CacheMisses != 60 || s1.CacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/60", s1.CacheHits, s1.CacheMisses)
	}
	if s1.PredictUDFCalls == 0 {
		t.Fatal("cold run must invoke the model")
	}

	warm := mustExec(t, db, q)
	s2 := db.Stats()
	if s2.CacheHits != 60 {
		t.Fatalf("warm run: hits=%d, want 60", s2.CacheHits)
	}
	if s2.PredictUDFCalls != s1.PredictUDFCalls {
		t.Fatalf("warm run invoked the model (%d -> %d calls): cache failed to skip it",
			s1.PredictUDFCalls, s2.PredictUDFCalls)
	}
	if s2.BatchesAllHit == 0 {
		t.Fatal("warm run should have all-hit batches")
	}
	if len(cold.Rows) != len(warm.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(cold.Rows), len(warm.Rows))
	}
	for i := range cold.Rows {
		cp, wp := cold.Rows[i][1].Vec, warm.Rows[i][1].Vec
		for j := range cp {
			if cp[j] != wp[j] {
				t.Fatalf("row %d: cached prediction differs from cold model output", i)
			}
		}
	}

	rc, ok := db.ResultCacheFor("Fraud-FC-32")
	if !ok {
		t.Fatal("model cache missing")
	}
	if rc.Len() != 60 {
		t.Fatalf("cache holds %d entries, want 60", rc.Len())
	}
}

func TestPredictCachedMatchesUncached(t *testing.T) {
	plain := openDB(t, Options{InferBatch: 8})
	loadFraud(t, plain, 40)
	cached := openDB(t, Options{InferBatch: 8, ResultCache: true, ResultCacheDistance: 1e-9})
	loadFraud(t, cached, 40)
	q := "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns"
	want := mustExec(t, plain, q)
	got := mustExec(t, cached, q) // cold: all rows go through miss compaction
	for i := range want.Rows {
		wp, gp := want.Rows[i][1].Vec, got.Rows[i][1].Vec
		if len(wp) != len(gp) {
			t.Fatalf("row %d width %d vs %d", i, len(wp), len(gp))
		}
		for j := range wp {
			if wp[j] != gp[j] {
				t.Fatalf("row %d: miss-compacted prediction differs from plain PREDICT", i)
			}
		}
	}
}

func TestPredictPipelineDisabledBitIdentical(t *testing.T) {
	piped := openDB(t, Options{InferBatch: 8})
	loadFraud(t, piped, 40)
	serial := openDB(t, Options{InferBatch: 8, DisablePredictPipeline: true})
	loadFraud(t, serial, 40)
	q := "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns"
	a := mustExec(t, piped, q)
	b := mustExec(t, serial, q)
	for i := range a.Rows {
		if a.Rows[i][0].Int != b.Rows[i][0].Int {
			t.Fatalf("row order diverged at %d", i)
		}
		ap, bp := a.Rows[i][1].Vec, b.Rows[i][1].Vec
		for j := range ap {
			if ap[j] != bp[j] {
				t.Fatalf("row %d: pipelined and serial PREDICT differ", i)
			}
		}
	}
}

func TestResultCacheMaxEntriesOption(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16, ResultCache: true, ResultCacheDistance: 1e-9, ResultCacheMaxEntries: 10})
	loadFraud(t, db, 30)
	mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	rc, ok := db.ResultCacheFor("Fraud-FC-32")
	if !ok {
		t.Fatal("model cache missing")
	}
	if rc.Len() != 10 {
		t.Fatalf("cache holds %d entries, want capped at 10", rc.Len())
	}
	if rc.Counters().Rejected != 20 {
		t.Fatalf("rejected = %d, want 20", rc.Counters().Rejected)
	}
}

func TestResultCacheRecreatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.db")
	opts := Options{ResultCache: true, ResultCacheDistance: 1e-9}
	db, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	loadFraud(t, db, 10)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rc, ok := db2.ResultCacheFor("Fraud-FC-32")
	if !ok {
		t.Fatal("reopened engine lost the model's result cache")
	}
	if rc.Len() != 0 {
		t.Fatalf("reopened cache should start cold, has %d entries", rc.Len())
	}
	if _, err := db2.Exec("SELECT id, PREDICT(Fraud-FC-32, features) FROM txns"); err != nil {
		t.Fatal(err)
	}
}

func TestExecProfiledPredictNote(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16, ResultCache: true, ResultCacheDistance: 1e-9})
	loadFraud(t, db, 20)
	_, stats, err := db.ExecProfiled("SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range stats {
		if s.Name == "predict" {
			found = true
			if !strings.Contains(s.Note, "cache") {
				t.Fatalf("predict stage note %q missing cache counters", s.Note)
			}
			if !strings.Contains(s.Note, "pipelined") {
				t.Fatalf("predict stage note %q should report the pipelined mode that ran", s.Note)
			}
		}
	}
	if !found {
		t.Fatal("no predict stage in profile")
	}
}

func TestConcurrentCachedPredictQueries(t *testing.T) {
	db := openDB(t, Options{InferBatch: 8, ResultCache: true, ResultCacheDistance: 1e-9})
	loadFraud(t, db, 40)
	q := "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns"
	want := mustExec(t, db, q)
	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := db.Exec(q)
			if err != nil {
				errs[w] = err
				return
			}
			if len(res.Rows) != len(want.Rows) {
				errs[w] = fmt.Errorf("got %d rows, want %d", len(res.Rows), len(want.Rows))
				return
			}
			for i := range res.Rows {
				gp, wp := res.Rows[i][1].Vec, want.Rows[i][1].Vec
				for j := range gp {
					if gp[j] != wp[j] {
						errs[w] = fmt.Errorf("row %d prediction diverged", i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	s := db.Stats()
	if s.CacheHits+s.CacheShared != int64(workers*40) {
		t.Fatalf("hits=%d shared=%d, want %d served from cache", s.CacheHits, s.CacheShared, workers*40)
	}
}
