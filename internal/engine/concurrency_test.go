package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensorbase/internal/fault"
	"tensorbase/internal/table"
)

// TestConcurrentInsertSelectPredict hammers one table with concurrent
// INSERT, SELECT, and PREDICT statements. Under the statement lock manager
// every statement must complete without error; run with -race this is the
// regression for "DB is safe for concurrent use".
func TestConcurrentInsertSelectPredict(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16})
	_, d := loadFraud(t, db, 64)
	rows, _, err := d.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}

	const iters = 25
	var wg sync.WaitGroup
	fail := make(chan error, 64)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}
	// Writers re-insert existing feature rows (exclusive table lock).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.InsertRows("txns", rows[w*4:w*4+4]); err != nil {
					report(fmt.Errorf("insert: %w", err))
					return
				}
			}
		}(w)
	}
	// Readers scan (shared lock).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.Exec("SELECT id FROM txns WHERE id >= 0 LIMIT 10"); err != nil {
					report(fmt.Errorf("select: %w", err))
					return
				}
			}
		}()
	}
	// PREDICT queries (shared lock, model invocations, coalescer).
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/5; i++ {
				if _, err := db.Exec("SELECT id, PREDICT(Fraud-FC-32, features) FROM txns LIMIT 32"); err != nil {
					report(fmt.Errorf("predict: %w", err))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	if got := db.locks.Stats().Acquired; got == 0 {
		t.Fatal("lock manager saw no acquisitions")
	}
}

// TestConcurrentDDLVsScans runs CREATE/DROP cycles against in-flight scans
// of the churning table and of a stable one. Scans of the churning table
// may cleanly fail with "no table" (it is mid-drop) but must never observe
// corruption, and the stable table's scans must always succeed.
func TestConcurrentDDLVsScans(t *testing.T) {
	db := openDB(t, Options{})
	mustExec(t, db, "CREATE TABLE stable (a INT)")
	mustExec(t, db, "INSERT INTO stable VALUES (1), (2), (3)")

	const cycles = 30
	var wg sync.WaitGroup
	var unexpected atomic.Int64
	firstErr := make(chan error, 1)
	report := func(err error) {
		unexpected.Add(1)
		select {
		case firstErr <- err:
		default:
		}
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < cycles; i++ {
			if _, err := db.Exec("CREATE TABLE churn (a INT, b TEXT)"); err != nil {
				report(fmt.Errorf("create: %w", err))
				return
			}
			if _, err := db.Exec("INSERT INTO churn VALUES (1, 'x'), (2, 'y')"); err != nil {
				report(fmt.Errorf("insert: %w", err))
				return
			}
			if _, err := db.Exec("DROP TABLE churn"); err != nil {
				report(fmt.Errorf("drop: %w", err))
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cycles*3; i++ {
				res, err := db.Exec("SELECT a FROM stable")
				if err != nil {
					report(fmt.Errorf("stable scan: %w", err))
					return
				}
				if len(res.Rows) != 3 {
					report(fmt.Errorf("stable scan saw %d rows", len(res.Rows)))
					return
				}
				if _, err := db.Exec("SELECT b FROM churn"); err != nil &&
					!strings.Contains(err.Error(), "no table") {
					report(fmt.Errorf("churn scan: unexpected error %w", err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d unexpected failures; first: %v", n, <-firstErr)
	}
}

// TestDropPrunesVectorIndex is the stale-vindex regression: DROP TABLE must
// remove the table's vector indexes, so a recreated table with the same
// name never serves ANN results built over the old table's rows.
func TestDropPrunesVectorIndex(t *testing.T) {
	db := openDB(t, Options{})
	schema, err := table.NewSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "v", Type: table.FloatVec},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("vecs", schema); err != nil {
		t.Fatal(err)
	}
	oldRows := []table.Tuple{
		{table.IntVal(1), table.VecVal([]float32{0, 0})},
		{table.IntVal(2), table.VecVal([]float32{10, 10})},
	}
	if _, err := db.InsertRows("vecs", oldRows); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateVectorIndex("vecs", "v"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Nearest("vecs", "v", []float32{1, 1}, 1); err != nil {
		t.Fatal(err)
	}

	mustExec(t, db, "DROP TABLE vecs")

	// Recreate the same name with different contents.
	if _, err := db.CreateTable("vecs", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRows("vecs", []table.Tuple{
		{table.IntVal(100), table.VecVal([]float32{5, 5})},
	}); err != nil {
		t.Fatal(err)
	}
	// The old index must be gone — serving it would return RIDs into freed
	// (and possibly reused) pages.
	if _, _, err := db.Nearest("vecs", "v", []float32{1, 1}, 1); err == nil ||
		!strings.Contains(err.Error(), "no vector index") {
		t.Fatalf("Nearest after drop/recreate = %v, want missing-index error", err)
	}
	// A fresh index over the new rows works and sees only them.
	if _, err := db.CreateVectorIndex("vecs", "v"); err != nil {
		t.Fatal(err)
	}
	rows, _, err := db.Nearest("vecs", "v", []float32{1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 100 {
		t.Fatalf("Nearest over recreated table = %v, want only the new row", rows)
	}
}

// TestDropReclaimsPages is the page-leak regression: repeated create/fill/
// drop cycles must not grow the database file, because DROP hands the heap
// chain to the free list and new heaps reuse it.
func TestDropReclaimsPages(t *testing.T) {
	db := openDB(t, Options{})
	fill := func() {
		mustExec(t, db, "CREATE TABLE big (a INT, s TEXT)")
		// Enough rows to span several pages.
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		pad := strings.Repeat("x", 512)
		for i := 0; i < 400; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s')", i, pad)
		}
		mustExec(t, db, sb.String())
		mustExec(t, db, "DROP TABLE big")
	}
	fill()
	base := db.disk.NumPages()
	for i := 0; i < 5; i++ {
		fill()
	}
	if got := db.disk.NumPages(); got != base {
		t.Fatalf("file grew from %d to %d pages across drop/create cycles", base, got)
	}
	frees, reuses, _ := db.disk.FreeStats()
	if frees == 0 || reuses == 0 {
		t.Fatalf("FreeStats = (%d frees, %d reuses), want both > 0", frees, reuses)
	}
}

// readMetaGeneration parses the committed meta file's generation.
func readMetaGeneration(t *testing.T, path string) uint64 {
	t.Helper()
	raw, err := os.ReadFile(path + ".meta")
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	return meta.Generation
}

// TestCloseFlushBeforeCatalogCommit is the durability-ordering regression:
// if flushing dirty pages fails, Close must NOT commit a new catalog
// generation — the old engine committed first and could leave a catalog
// naming page contents that never reached disk.
func TestCloseFlushBeforeCatalogCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	gen := readMetaGeneration(t, path)

	// Reopen, dirty a page, and make the flush fail.
	db, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (3)")
	inj := fault.New()
	boom := errors.New("boom")
	inj.FailAt("disk.write", boom, 1)
	db.disk.SetFaults(inj)
	if err := db.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close with failing flush = %v, want injected fault", err)
	}
	if got := readMetaGeneration(t, path); got != gen {
		t.Fatalf("catalog generation advanced to %d despite failed flush (was %d): commit ran before flush", got, gen)
	}

	// The database reopens on the previous committed catalog PLUS the WAL:
	// the third row's INSERT committed through the log before the crashed
	// close, so recovery replays it even though the flush never happened.
	db, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res := mustExec(t, db, "SELECT a FROM t")
	if len(res.Rows) != 3 {
		t.Fatalf("reopened table has %d rows, want all 3 committed rows (2 checkpointed + 1 replayed)", len(res.Rows))
	}
}

// TestFreeListSurvivesReopen: pages freed by DROP must still be reusable
// after a clean Close/Open cycle (the free list is committed in the meta).
func TestFreeListSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE keep (a INT)")
	mustExec(t, db, "INSERT INTO keep VALUES (1)")
	mustExec(t, db, "CREATE TABLE gone (a INT)")
	mustExec(t, db, "DROP TABLE gone")
	_, _, freeBefore := db.disk.FreeStats()
	if freeBefore == 0 {
		t.Fatal("drop freed no pages")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, _, freeAfter := db.disk.FreeStats()
	if freeAfter != freeBefore {
		t.Fatalf("free list after reopen = %d pages, want %d", freeAfter, freeBefore)
	}
	pages := db.disk.NumPages()
	mustExec(t, db, "CREATE TABLE reborn (a INT)")
	if got := db.disk.NumPages(); got != pages {
		t.Fatalf("new table grew the file (%d → %d) with %d free pages available", pages, got, freeAfter)
	}
	res := mustExec(t, db, "SELECT a FROM keep")
	if len(res.Rows) != 1 {
		t.Fatalf("surviving table has %d rows", len(res.Rows))
	}
}

// TestConcurrentPredictCoalesces is the tentpole acceptance test: two
// concurrent cold PREDICTs over the same model must perform fewer model
// invocations than running them serially would, with the coalesced-rows
// counter proving rows rode a shared invocation.
func TestConcurrentPredictCoalesces(t *testing.T) {
	const rows = 2048
	db := openDB(t, Options{
		InferBatch:            64,
		PredictCoalesceWindow: 50 * time.Millisecond,
	})
	loadFraud(t, db, rows)

	// Batching windows only open while ≥2 PREDICT operators are registered.
	// On a single-core machine the scheduler can run each query goroutine
	// to completion before the other's operator opens — each then takes the
	// (correct) solo direct path and there is nothing to measure. Register
	// a standing participant, exactly as an open InferOp would, so the
	// first query's leader parks for the window and the second query
	// reliably lands inside it; the shared invocations measured below are
	// still entirely between the two real queries.
	co, ok := db.coalescerFor("Fraud-FC-32")
	if !ok {
		t.Fatal("no coalescer registered for Fraud-FC-32")
	}
	co.Enter()
	defer co.Leave()

	const queries = 2
	batchesPerQuery := (rows + 63) / 64
	serialInvocations := int64(queries * batchesPerQuery)

	// Coalescing needs the two queries to actually overlap; a heavily
	// loaded machine can schedule them back to back, in which case both
	// take the (correct) solo direct path. Retry the cold pair until an
	// overlap happens — with no result cache every attempt re-runs the
	// model, so the per-attempt counters stay comparable.
	var calls, coalesced, multi int64
	for attempt := 0; attempt < 10; attempt++ {
		before := db.Stats()
		var wg sync.WaitGroup
		errs := make([]error, queries)
		start := make(chan struct{})
		for q := 0; q < queries; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				<-start
				res, err := db.Exec("SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
				if err == nil && len(res.Rows) != rows {
					err = fmt.Errorf("got %d rows", len(res.Rows))
				}
				errs[q] = err
			}(q)
		}
		close(start)
		wg.Wait()
		for q, err := range errs {
			if err != nil {
				t.Fatalf("query %d: %v", q, err)
			}
		}
		after := db.Stats()
		calls = after.PredictUDFCalls - before.PredictUDFCalls
		coalesced = after.CoalescedRows - before.CoalescedRows
		multi = after.CoalesceMultiBatches - before.CoalesceMultiBatches
		if coalesced > 0 && multi > 0 {
			break
		}
	}
	if coalesced == 0 || multi == 0 {
		t.Fatal("tensorbase_predict_coalesced_total stayed 0 across attempts: no rows ever rode a shared invocation")
	}
	if calls >= serialInvocations {
		t.Fatalf("concurrent queries made %d model invocations, serial would make %d — coalescing saved nothing",
			calls, serialInvocations)
	}
	t.Logf("invocations: %d (serial would be %d), coalesced rows: %d, shared invocations: %d",
		calls, serialInvocations, coalesced, multi)

	// The metric surface exposes the same counter.
	if got := db.Metrics().Counter("tensorbase_predict_coalesced_total"); got == 0 {
		t.Fatal("tensorbase_predict_coalesced_total missing or zero in metrics snapshot")
	}
}
