package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

// Catalog persistence. Table metadata (schemas, heap page chains, row
// counts) is written as JSON to <db>.meta on Close and restored on Open;
// models are written as TBM1 files into a <db>.models/ directory. Page data
// itself lives in the database file, so a reopened engine sees every table
// and model that was present at the last clean Close.
//
// Durability contract: a crash at ANY point during saveCatalog leaves the
// database openable with either the previous catalog or the new one, never
// a hybrid. The save is generation-structured:
//
//  1. Model files are written under generation-unique names
//     (g<gen>-m<idx>.tbm) via tmp + fsync + rename, so files referenced by
//     the committed meta are never truncated or overwritten in place.
//  2. The models directory is fsynced so the renames are durable.
//  3. The meta file is written via tmp + fsync + rename + parent-dir fsync;
//     the rename is the commit point.
//  4. Only after the commit are previous-generation model files deleted.
//
// Every step carries a fault point ("persist.*") so tests can kill the save
// mid-way and assert the old-or-new invariant.

// Fault points exercised by the persistence crash tests, in save order.
const (
	fpModelCreate   = "persist.model.create"
	fpModelWrite    = "persist.model.write"
	fpModelSync     = "persist.model.sync"
	fpModelRename   = "persist.model.rename"
	fpModelsDirSync = "persist.modelsdir.sync"
	fpMetaWrite     = "persist.meta.write"
	fpMetaSync      = "persist.meta.sync"
	fpMetaRename    = "persist.meta.rename"
	fpMetaDirSync   = "persist.metadir.sync"
)

// PersistFaultPoints lists every fault point in saveCatalog, in the order
// they are visited — the crash test iterates it so a new step cannot be
// added without being covered.
var PersistFaultPoints = []string{
	fpModelCreate, fpModelWrite, fpModelSync, fpModelRename,
	fpModelsDirSync, fpMetaWrite, fpMetaSync, fpMetaRename, fpMetaDirSync,
}

// metaFile is the serialised catalog. Version 2 adds the WAL checkpoint's
// recovery inputs (CommitCSN, NumPages, per-table tail state); version 1
// files (pre-WAL) are still read, and the open-time checkpoint rewrites
// them as v2 before any record can enter the log.
type metaFile struct {
	Version int `json:"version"`
	// Generation increments on every committed save; model files carry it
	// in their names so a new save never touches files the previous
	// committed meta references.
	Generation uint64      `json:"generation"`
	Tables     []metaTable `json:"tables"`
	Models     []metaModel `json:"models"`
	// FreePages is the storage free list (pages reclaimed by DROP TABLE),
	// committed atomically with the table set at the meta rename: a crash
	// can lose a free (a leak) but can never free a page a committed table
	// still references.
	FreePages []uint32 `json:"free_pages,omitempty"`
	// CommitCSN is the committed horizon folded into this checkpoint; WAL
	// commit records at or below it are already in the page image.
	CommitCSN uint64 `json:"commit_csn,omitempty"`
	// NumPages is the database file length at the checkpoint; recovery
	// treats pages at or beyond it as post-checkpoint orphans.
	NumPages uint32 `json:"num_pages,omitempty"`
}

type metaTable struct {
	Name  string       `json:"name"`
	Cols  []metaColumn `json:"cols"`
	First uint32       `json:"first_page"`
	Last  uint32       `json:"last_page"`
	Count int64        `json:"count"`
	// LastSlots is the tail page's slot count at the checkpoint — the
	// input recovery feeds Heap.ResetTail before replaying the log.
	LastSlots int `json:"last_slots"`
	// Pages is the full page chain at the checkpoint, so recovery can free
	// a dropped table without walking on-disk links that post-checkpoint
	// page reuse may have zeroed.
	Pages []uint32 `json:"pages"`
}

type metaColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

type metaModel struct {
	Name     string  `json:"name"`
	File     string  `json:"file"`
	Accuracy float64 `json:"accuracy"`
}

func (db *DB) metaPath() string { return db.path + ".meta" }

func (db *DB) modelsDir() string { return db.path + ".models" }

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("engine: syncing dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("engine: syncing dir %s: %w", dir, err)
	}
	return nil
}

// saveModelDurable writes one model file via tmp + fsync + rename. A
// failure (or injected crash) at any step leaves at most a *.tmp leftover;
// the final name never holds partial bytes.
func (db *DB) saveModelDurable(file string, m *nn.Model) error {
	tmp := file + ".tmp"
	if err := db.faults.Check(fpModelCreate); err != nil {
		return err
	}
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: creating %s: %w", tmp, err)
	}
	err = db.faults.Check(fpModelWrite)
	if err == nil {
		err = nn.Save(f, m)
	}
	if err == nil {
		if err = db.faults.Check(fpModelSync); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("engine: writing %s: %w", tmp, err)
	}
	if err := db.faults.Check(fpModelRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, file); err != nil {
		return fmt.Errorf("engine: committing %s: %w", file, err)
	}
	return nil
}

// saveCatalog serialises the catalog next to the database file. See the
// package comment for the crash-safety protocol.
func (db *DB) saveCatalog() error {
	newGen := db.gen + 1
	meta := metaFile{
		Version:    2,
		Generation: newGen,
		CommitCSN:  db.committedCSN.Load(),
		NumPages:   db.disk.NumPages(),
	}
	for _, name := range db.cat.Tables() {
		te, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		slots, err := te.Heap.LastSlots()
		if err != nil {
			return fmt.Errorf("engine: reading %q tail state: %w", name, err)
		}
		pages, err := te.Heap.Pages()
		if err != nil {
			return fmt.Errorf("engine: walking %q page chain: %w", name, err)
		}
		mt := metaTable{
			Name:      name,
			First:     uint32(te.Heap.FirstPage()),
			Last:      uint32(te.Heap.LastPage()),
			Count:     te.Heap.Count(),
			LastSlots: slots,
		}
		for _, id := range pages {
			mt.Pages = append(mt.Pages, uint32(id))
		}
		for _, c := range te.Heap.Schema().Cols {
			mt.Cols = append(mt.Cols, metaColumn{Name: c.Name, Type: uint8(c.Type)})
		}
		meta.Tables = append(meta.Tables, mt)
	}
	for _, id := range db.disk.FreeList() {
		meta.FreePages = append(meta.FreePages, uint32(id))
	}
	if names := db.cat.Models(); len(names) > 0 {
		if err := os.MkdirAll(db.modelsDir(), 0o755); err != nil {
			return fmt.Errorf("engine: creating models dir: %w", err)
		}
		for i, name := range names {
			entry, err := db.cat.ModelEntryFor(name)
			if err != nil {
				return err
			}
			file := filepath.Join(db.modelsDir(), fmt.Sprintf("g%06d-m%04d.tbm", newGen, i))
			if err := db.saveModelDurable(file, entry.Versions[0].Model); err != nil {
				return fmt.Errorf("engine: saving model %s: %w", name, err)
			}
			meta.Models = append(meta.Models, metaModel{
				Name:     name,
				File:     file,
				Accuracy: entry.Versions[0].Accuracy,
			})
		}
		if err := db.faults.Check(fpModelsDirSync); err != nil {
			return err
		}
		if err := syncDir(db.modelsDir()); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := db.metaPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: writing catalog: %w", err)
	}
	err = db.faults.Check(fpMetaWrite)
	if err == nil {
		_, err = f.Write(raw)
	}
	if err == nil {
		if err = db.faults.Check(fpMetaSync); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("engine: writing catalog: %w", err)
	}
	if err := db.faults.Check(fpMetaRename); err != nil {
		return err
	}
	// Commit point: after this rename the new catalog is the catalog.
	if err := os.Rename(tmp, db.metaPath()); err != nil {
		return fmt.Errorf("engine: committing catalog: %w", err)
	}
	if err := db.faults.Check(fpMetaDirSync); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(db.metaPath())); err != nil {
		return err
	}
	db.gen = newGen
	db.gcModelFiles(meta)
	return nil
}

// gcModelFiles removes model files (and tmp leftovers) that the
// just-committed meta does not reference. Best-effort: a failure here
// leaves garbage, never corruption.
func (db *DB) gcModelFiles(meta metaFile) {
	live := make(map[string]bool, len(meta.Models))
	for _, m := range meta.Models {
		live[filepath.Base(m.File)] = true
	}
	entries, err := os.ReadDir(db.modelsDir())
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && !live[e.Name()] {
			os.Remove(filepath.Join(db.modelsDir(), e.Name()))
		}
	}
}

// loadCatalog restores tables and models from a previous Close. A missing
// meta file is a fresh database, not an error.
func (db *DB) loadCatalog() error {
	raw, err := os.ReadFile(db.metaPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("engine: reading catalog: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(raw, &meta); err != nil {
		return fmt.Errorf("engine: corrupt catalog %s: %w", db.metaPath(), err)
	}
	if meta.Version != 1 && meta.Version != 2 {
		return fmt.Errorf("engine: unsupported catalog version %d", meta.Version)
	}
	db.gen = meta.Generation
	if meta.Version >= 2 {
		info := &checkpointInfo{
			CommitCSN: meta.CommitCSN,
			NumPages:  meta.NumPages,
			LastSlots: make(map[string]int, len(meta.Tables)),
			Pages:     make(map[string][]storage.PageID, len(meta.Tables)),
		}
		for _, mt := range meta.Tables {
			info.LastSlots[mt.Name] = mt.LastSlots
			pages := make([]storage.PageID, len(mt.Pages))
			for i, id := range mt.Pages {
				pages[i] = storage.PageID(id)
			}
			info.Pages[mt.Name] = pages
		}
		db.ckptInfo = info
	}
	if len(meta.FreePages) > 0 {
		free := make([]storage.PageID, len(meta.FreePages))
		for i, id := range meta.FreePages {
			free[i] = storage.PageID(id)
		}
		if err := db.disk.RestoreFreeList(free); err != nil {
			return fmt.Errorf("engine: restoring free list: %w", err)
		}
	}
	for _, mt := range meta.Tables {
		cols := make([]table.Column, len(mt.Cols))
		for i, c := range mt.Cols {
			cols[i] = table.Column{Name: c.Name, Type: table.ColType(c.Type)}
		}
		schema, err := table.NewSchema(cols...)
		if err != nil {
			return fmt.Errorf("engine: restoring table %s: %w", mt.Name, err)
		}
		if uint32(db.disk.NumPages()) <= mt.First || uint32(db.disk.NumPages()) <= mt.Last {
			return fmt.Errorf("engine: catalog references pages beyond the database file (table %s)", mt.Name)
		}
		heap := table.OpenHeap(db.pool, schema, storage.PageID(mt.First), storage.PageID(mt.Last), mt.Count)
		if err := db.cat.CreateTable(mt.Name, heap); err != nil {
			return err
		}
	}
	for _, mm := range meta.Models {
		f, err := os.Open(mm.File)
		if err != nil {
			return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
		}
		m, err := nn.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
		}
		if err := db.registerModel(m, mm.Accuracy); err != nil {
			return err
		}
	}
	return nil
}
