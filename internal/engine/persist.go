package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

// Catalog persistence. Table metadata (schemas, heap page chains, row
// counts) is written as JSON to <db>.meta on Close and restored on Open;
// models are written as TBM1 files into a <db>.models/ directory. Page data
// itself lives in the database file, so a reopened engine sees every table
// and model that was present at the last clean Close.

// metaFile is the serialised catalog.
type metaFile struct {
	Version int         `json:"version"`
	Tables  []metaTable `json:"tables"`
	Models  []metaModel `json:"models"`
}

type metaTable struct {
	Name  string       `json:"name"`
	Cols  []metaColumn `json:"cols"`
	First uint32       `json:"first_page"`
	Last  uint32       `json:"last_page"`
	Count int64        `json:"count"`
}

type metaColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

type metaModel struct {
	Name     string  `json:"name"`
	File     string  `json:"file"`
	Accuracy float64 `json:"accuracy"`
}

func (db *DB) metaPath() string { return db.path + ".meta" }

func (db *DB) modelsDir() string { return db.path + ".models" }

// saveCatalog serialises the catalog next to the database file.
func (db *DB) saveCatalog() error {
	meta := metaFile{Version: 1}
	for _, name := range db.cat.Tables() {
		te, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		mt := metaTable{
			Name:  name,
			First: uint32(te.Heap.FirstPage()),
			Last:  uint32(te.Heap.LastPage()),
			Count: te.Heap.Count(),
		}
		for _, c := range te.Heap.Schema().Cols {
			mt.Cols = append(mt.Cols, metaColumn{Name: c.Name, Type: uint8(c.Type)})
		}
		meta.Tables = append(meta.Tables, mt)
	}
	if names := db.cat.Models(); len(names) > 0 {
		if err := os.MkdirAll(db.modelsDir(), 0o755); err != nil {
			return fmt.Errorf("engine: creating models dir: %w", err)
		}
		for i, name := range names {
			entry, err := db.cat.ModelEntryFor(name)
			if err != nil {
				return err
			}
			file := filepath.Join(db.modelsDir(), fmt.Sprintf("m%04d.tbm", i))
			f, err := os.Create(file)
			if err != nil {
				return fmt.Errorf("engine: saving model %s: %w", name, err)
			}
			err = nn.Save(f, entry.Versions[0].Model)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("engine: saving model %s: %w", name, err)
			}
			meta.Models = append(meta.Models, metaModel{
				Name:     name,
				File:     file,
				Accuracy: entry.Versions[0].Accuracy,
			})
		}
	}
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := db.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("engine: writing catalog: %w", err)
	}
	return os.Rename(tmp, db.metaPath())
}

// loadCatalog restores tables and models from a previous Close. A missing
// meta file is a fresh database, not an error.
func (db *DB) loadCatalog() error {
	raw, err := os.ReadFile(db.metaPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("engine: reading catalog: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(raw, &meta); err != nil {
		return fmt.Errorf("engine: corrupt catalog %s: %w", db.metaPath(), err)
	}
	if meta.Version != 1 {
		return fmt.Errorf("engine: unsupported catalog version %d", meta.Version)
	}
	for _, mt := range meta.Tables {
		cols := make([]table.Column, len(mt.Cols))
		for i, c := range mt.Cols {
			cols[i] = table.Column{Name: c.Name, Type: table.ColType(c.Type)}
		}
		schema, err := table.NewSchema(cols...)
		if err != nil {
			return fmt.Errorf("engine: restoring table %s: %w", mt.Name, err)
		}
		if uint32(db.disk.NumPages()) <= mt.First || uint32(db.disk.NumPages()) <= mt.Last {
			return fmt.Errorf("engine: catalog references pages beyond the database file (table %s)", mt.Name)
		}
		heap := table.OpenHeap(db.pool, schema, storage.PageID(mt.First), storage.PageID(mt.Last), mt.Count)
		if err := db.cat.CreateTable(mt.Name, heap); err != nil {
			return err
		}
	}
	for _, mm := range meta.Models {
		f, err := os.Open(mm.File)
		if err != nil {
			return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
		}
		m, err := nn.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
		}
		if err := db.LoadModel(m, mm.Accuracy); err != nil {
			return err
		}
	}
	return nil
}
