package engine

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tensorbase/internal/blockstore"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

// Catalog persistence. Table metadata (schemas, heap page chains, row
// counts) is written as JSON to <db>.meta on Close and restored on Open;
// model weights live as content-addressed block files in a <db>.blocks/
// directory (one immutable file per distinct 64 KiB block, named by its
// SHA-256), with each model's manifest embedded in the meta file. Page
// data itself lives in the database file, so a reopened engine sees every
// table and model that was present at the last clean Close.
//
// Durability contract: a crash at ANY point during saveCatalog leaves the
// database openable with either the previous catalog or the new one, never
// a hybrid. The save is structured around block immutability:
//
//  1. Block files are content-addressed and never overwritten: only blocks
//     missing from <db>.blocks/ are written (tmp + fsync + rename), so a
//     checkpoint where no model changed writes zero model bytes, and files
//     referenced by the committed meta are never touched.
//  2. The blocks directory is fsynced when anything was written.
//  3. The meta file — carrying every model's manifest — is written via
//     tmp + fsync + rename + parent-dir fsync; the rename is the commit
//     point.
//  4. Only after the commit are unreferenced block files (and any legacy
//     pre-blockstore .models directory) deleted.
//
// Every step carries a fault point ("persist.*") so tests can kill the save
// mid-way and assert the old-or-new invariant.

// Fault points exercised by the persistence crash tests, in save order.
const (
	fpBlockCreate   = "persist.block.create"
	fpBlockWrite    = "persist.block.write"
	fpBlockSync     = "persist.block.sync"
	fpBlockRename   = "persist.block.rename"
	fpBlocksDirSync = "persist.blocksdir.sync"
	fpMetaWrite     = "persist.meta.write"
	fpMetaSync      = "persist.meta.sync"
	fpMetaRename    = "persist.meta.rename"
	fpMetaDirSync   = "persist.metadir.sync"
)

// PersistFaultPoints lists every fault point in saveCatalog, in the order
// they are visited — the crash test iterates it so a new step cannot be
// added without being covered.
var PersistFaultPoints = []string{
	fpBlockCreate, fpBlockWrite, fpBlockSync, fpBlockRename,
	fpBlocksDirSync, fpMetaWrite, fpMetaSync, fpMetaRename, fpMetaDirSync,
}

// metaFile is the serialised catalog. Version 3 stores models as block
// manifests against the content-addressed <db>.blocks/ directory; version
// 2 added the WAL checkpoint's recovery inputs; versions 1 and 2 (whole
// TBM1 model files) are still read, their models interned into the block
// store at open, and the next checkpoint rewrites them as v3.
type metaFile struct {
	Version int `json:"version"`
	// Generation increments on every committed save.
	Generation uint64      `json:"generation"`
	Tables     []metaTable `json:"tables"`
	Models     []metaModel `json:"models"`
	// FreePages is the storage free list (pages reclaimed by DROP TABLE),
	// committed atomically with the table set at the meta rename: a crash
	// can lose a free (a leak) but can never free a page a committed table
	// still references.
	FreePages []uint32 `json:"free_pages,omitempty"`
	// CommitCSN is the committed horizon folded into this checkpoint; WAL
	// commit records at or below it are already in the page image.
	CommitCSN uint64 `json:"commit_csn,omitempty"`
	// NumPages is the database file length at the checkpoint; recovery
	// treats pages at or beyond it as post-checkpoint orphans.
	NumPages uint32 `json:"num_pages,omitempty"`
}

type metaTable struct {
	Name  string       `json:"name"`
	Cols  []metaColumn `json:"cols"`
	First uint32       `json:"first_page"`
	Last  uint32       `json:"last_page"`
	Count int64        `json:"count"`
	// LastSlots is the tail page's slot count at the checkpoint — the
	// input recovery feeds Heap.ResetTail before replaying the log.
	LastSlots int `json:"last_slots"`
	// Pages is the full page chain at the checkpoint, so recovery can free
	// a dropped table without walking on-disk links that post-checkpoint
	// page reuse may have zeroed.
	Pages []uint32 `json:"pages"`
}

type metaColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

type metaModel struct {
	Name string `json:"name"`
	// File is the legacy (v1/v2) whole-model TBM1 path; empty in v3.
	File     string  `json:"file,omitempty"`
	Accuracy float64 `json:"accuracy"`
	// Manifest is the model's TBMF manifest, base64-encoded (v3). The
	// weight bytes live as block files under <db>.blocks/.
	Manifest string `json:"manifest,omitempty"`
}

func (db *DB) metaPath() string { return db.path + ".meta" }

// modelsDir is the legacy pre-blockstore model directory; still read for
// old catalogs, removed by the first committed checkpoint.
func (db *DB) modelsDir() string { return db.path + ".models" }

// blocksDir holds one immutable file per distinct weight block, named by
// the block's content hash.
func (db *DB) blocksDir() string { return db.path + ".blocks" }

func (db *DB) blockPath(h blockstore.Hash) string {
	return filepath.Join(db.blocksDir(), h.String()+".blk")
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("engine: syncing dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("engine: syncing dir %s: %w", dir, err)
	}
	return nil
}

// saveBlockDurable writes one block file via tmp + fsync + rename. A
// failure (or injected crash) at any step leaves at most a *.tmp leftover;
// the final name never holds partial bytes — and since block files are
// content-addressed, a committed name is never rewritten.
func (db *DB) saveBlockDurable(h blockstore.Hash, data []float32) error {
	file := db.blockPath(h)
	tmp := file + ".tmp"
	if err := db.faults.Check(fpBlockCreate); err != nil {
		return err
	}
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: creating %s: %w", tmp, err)
	}
	err = db.faults.Check(fpBlockWrite)
	if err == nil {
		_, err = f.Write(blockstore.Encode(data))
	}
	if err == nil {
		if err = db.faults.Check(fpBlockSync); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("engine: writing %s: %w", tmp, err)
	}
	if err := db.faults.Check(fpBlockRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, file); err != nil {
		return fmt.Errorf("engine: committing %s: %w", file, err)
	}
	return nil
}

// saveCatalog serialises the catalog next to the database file. See the
// package comment for the crash-safety protocol.
func (db *DB) saveCatalog() error {
	newGen := db.gen + 1
	meta := metaFile{
		Version:    3,
		Generation: newGen,
		CommitCSN:  db.committedCSN.Load(),
		NumPages:   db.disk.NumPages(),
	}
	for _, name := range db.cat.Tables() {
		te, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		slots, err := te.Heap.LastSlots()
		if err != nil {
			return fmt.Errorf("engine: reading %q tail state: %w", name, err)
		}
		pages, err := te.Heap.Pages()
		if err != nil {
			return fmt.Errorf("engine: walking %q page chain: %w", name, err)
		}
		mt := metaTable{
			Name:      name,
			First:     uint32(te.Heap.FirstPage()),
			Last:      uint32(te.Heap.LastPage()),
			Count:     te.Heap.Count(),
			LastSlots: slots,
		}
		for _, id := range pages {
			mt.Pages = append(mt.Pages, uint32(id))
		}
		for _, c := range te.Heap.Schema().Cols {
			mt.Cols = append(mt.Cols, metaColumn{Name: c.Name, Type: uint8(c.Type)})
		}
		meta.Tables = append(meta.Tables, mt)
	}
	for _, id := range db.disk.FreeList() {
		meta.FreePages = append(meta.FreePages, uint32(id))
	}
	// Models: embed each durable model's manifest in the meta and persist
	// only the referenced blocks that have no file yet. Memory-resident
	// models (nil manifest) are skipped — exactly the pre-WAL contract.
	referenced := make(map[blockstore.Hash]bool)
	for _, name := range db.cat.Models() {
		mf, ok := db.manifestFor(name)
		if !ok {
			continue
		}
		entry, err := db.cat.ModelEntryFor(name)
		if err != nil {
			return err
		}
		for _, h := range mf.Hashes() {
			referenced[h] = true
		}
		meta.Models = append(meta.Models, metaModel{
			Name:     name,
			Accuracy: entry.Versions[0].Accuracy,
			Manifest: base64.StdEncoding.EncodeToString(nn.EncodeManifest(mf)),
		})
	}
	wrote := false
	for _, h := range db.blocks.ReferencedHashes() {
		if !referenced[h] || db.persistedBlocks[h] {
			continue
		}
		if !wrote {
			if err := os.MkdirAll(db.blocksDir(), 0o755); err != nil {
				return fmt.Errorf("engine: creating blocks dir: %w", err)
			}
		}
		data, ok := db.blocks.BlockData(h)
		if !ok {
			return fmt.Errorf("engine: referenced block %s not resident", h)
		}
		if err := db.saveBlockDurable(h, data); err != nil {
			return err
		}
		wrote = true
		db.persistedBlocks[h] = true
	}
	if wrote {
		if err := db.faults.Check(fpBlocksDirSync); err != nil {
			return err
		}
		if err := syncDir(db.blocksDir()); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := db.metaPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: writing catalog: %w", err)
	}
	err = db.faults.Check(fpMetaWrite)
	if err == nil {
		_, err = f.Write(raw)
	}
	if err == nil {
		if err = db.faults.Check(fpMetaSync); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("engine: writing catalog: %w", err)
	}
	if err := db.faults.Check(fpMetaRename); err != nil {
		return err
	}
	// Commit point: after this rename the new catalog is the catalog.
	if err := os.Rename(tmp, db.metaPath()); err != nil {
		return fmt.Errorf("engine: committing catalog: %w", err)
	}
	if err := db.faults.Check(fpMetaDirSync); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(db.metaPath())); err != nil {
		return err
	}
	db.gen = newGen
	db.gcBlockFiles(referenced)
	return nil
}

// gcBlockFiles removes block files the just-committed meta no longer
// references, tmp leftovers from interrupted saves, and the legacy
// pre-blockstore .models directory (whose weight files the manifest form
// fully supersedes — this is also what reclaims follower-staged model
// files from old replication runs). Best-effort: a failure here leaves
// garbage, never corruption.
func (db *DB) gcBlockFiles(referenced map[blockstore.Hash]bool) {
	entries, err := os.ReadDir(db.blocksDir())
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				continue
			}
			if strings.HasSuffix(name, ".tmp") {
				os.Remove(filepath.Join(db.blocksDir(), name))
				continue
			}
			h, perr := blockstore.ParseHash(strings.TrimSuffix(name, ".blk"))
			if perr != nil || !referenced[h] {
				os.Remove(filepath.Join(db.blocksDir(), name))
				if perr == nil {
					delete(db.persistedBlocks, h)
				}
			}
		}
	}
	os.RemoveAll(db.modelsDir())
}

// stageBlockFile loads one block file into the store, verifying that its
// content matches its name — a corrupt or truncated file fails here, not
// at serving time.
func (db *DB) stageBlockFile(h blockstore.Hash) error {
	raw, err := os.ReadFile(db.blockPath(h))
	if err != nil {
		return fmt.Errorf("engine: reading block %s: %w", h, err)
	}
	got, err := db.blocks.PutStagedBytes(raw)
	if err != nil {
		return fmt.Errorf("engine: block %s: %w", h, err)
	}
	if got != h {
		return fmt.Errorf("engine: block file %s content hashes to %s", h, got)
	}
	return nil
}

// internModel registers a model by decomposing it into the block store —
// the path for legacy whole-file models (old catalogs, old WAL records,
// LoadModel). Models whose layers cannot be blocked register memory-
// resident. The interned (block-backed) model is what serves.
func (db *DB) internModel(m *nn.Model, accuracy float64) error {
	mf, _, err := nn.BlockModel(m, db.blocks)
	if err != nil {
		db.blocks.Sweep()
		return db.registerModel(m, accuracy, nil)
	}
	am, err := nn.ModelFromManifest(mf, db.blocks)
	if err != nil {
		db.blocks.Sweep()
		return err
	}
	if err := db.registerModel(am, accuracy, mf); err != nil {
		nn.ReleaseManifest(mf, db.blocks)
		db.blocks.Sweep()
		return err
	}
	return nil
}

// loadCatalog restores tables and models from a previous Close. A missing
// meta file is a fresh database, not an error.
func (db *DB) loadCatalog() error {
	raw, err := os.ReadFile(db.metaPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("engine: reading catalog: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(raw, &meta); err != nil {
		return fmt.Errorf("engine: corrupt catalog %s: %w", db.metaPath(), err)
	}
	if meta.Version < 1 || meta.Version > 3 {
		return fmt.Errorf("engine: unsupported catalog version %d", meta.Version)
	}
	db.gen = meta.Generation
	if meta.Version >= 2 {
		info := &checkpointInfo{
			CommitCSN: meta.CommitCSN,
			NumPages:  meta.NumPages,
			LastSlots: make(map[string]int, len(meta.Tables)),
			Pages:     make(map[string][]storage.PageID, len(meta.Tables)),
		}
		for _, mt := range meta.Tables {
			info.LastSlots[mt.Name] = mt.LastSlots
			pages := make([]storage.PageID, len(mt.Pages))
			for i, id := range mt.Pages {
				pages[i] = storage.PageID(id)
			}
			info.Pages[mt.Name] = pages
		}
		db.ckptInfo = info
	}
	if len(meta.FreePages) > 0 {
		free := make([]storage.PageID, len(meta.FreePages))
		for i, id := range meta.FreePages {
			free[i] = storage.PageID(id)
		}
		if err := db.disk.RestoreFreeList(free); err != nil {
			return fmt.Errorf("engine: restoring free list: %w", err)
		}
	}
	for _, mt := range meta.Tables {
		cols := make([]table.Column, len(mt.Cols))
		for i, c := range mt.Cols {
			cols[i] = table.Column{Name: c.Name, Type: table.ColType(c.Type)}
		}
		schema, err := table.NewSchema(cols...)
		if err != nil {
			return fmt.Errorf("engine: restoring table %s: %w", mt.Name, err)
		}
		if uint32(db.disk.NumPages()) <= mt.First || uint32(db.disk.NumPages()) <= mt.Last {
			return fmt.Errorf("engine: catalog references pages beyond the database file (table %s)", mt.Name)
		}
		heap := table.OpenHeap(db.pool, schema, storage.PageID(mt.First), storage.PageID(mt.Last), mt.Count)
		if err := db.cat.CreateTable(mt.Name, heap); err != nil {
			return err
		}
	}
	for _, mm := range meta.Models {
		if mm.Manifest != "" {
			if err := db.loadManifestModel(mm); err != nil {
				return err
			}
			continue
		}
		// Legacy v1/v2 whole-file model: load and intern into the block
		// store. Its blocks have no files yet (persistedBlocks stays
		// unset), so the next checkpoint writes them and removes the old
		// .models directory.
		f, err := os.Open(mm.File)
		if err != nil {
			return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
		}
		m, err := nn.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
		}
		if err := db.internModel(m, mm.Accuracy); err != nil {
			return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
		}
	}
	return nil
}

// loadManifestModel restores one v3 model: decode its manifest, stage any
// block files not already resident (verifying content hashes), and
// assemble the serving model against the shared store.
func (db *DB) loadManifestModel(mm metaModel) error {
	raw, err := base64.StdEncoding.DecodeString(mm.Manifest)
	if err != nil {
		return fmt.Errorf("engine: restoring model %s: manifest: %w", mm.Name, err)
	}
	mf, err := nn.DecodeManifest(raw)
	if err != nil {
		return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
	}
	for _, h := range mf.Hashes() {
		if !db.blocks.Has(h) {
			if err := db.stageBlockFile(h); err != nil {
				return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
			}
		}
		db.persistedBlocks[h] = true
	}
	am, err := nn.ModelFromManifest(mf, db.blocks)
	if err != nil {
		return fmt.Errorf("engine: restoring model %s: %w", mm.Name, err)
	}
	if err := db.registerModel(am, mm.Accuracy, mf); err != nil {
		nn.ReleaseManifest(mf, db.blocks)
		return err
	}
	return nil
}
