package engine

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tensorbase/internal/exec"
)

// TestMetricsMatchStats pins the pull-model wiring: the snapshot the
// registry serves must agree with the engine's own Stats() counters.
func TestMetricsMatchStats(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16, ResultCache: true, ResultCacheDistance: 1e-9})
	loadFraud(t, db, 100)
	mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	mustExec(t, db, "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
	if _, err := db.Exec("SELECT nope FROM txns"); err == nil {
		t.Fatal("bad query must error")
	}

	snap := db.Metrics()
	st := db.Stats()
	checks := []struct {
		metric string
		want   int64
	}{
		{"tensorbase_pool_hits_total", int64(st.PoolHits)},
		{"tensorbase_pool_misses_total", int64(st.PoolMisses)},
		{"tensorbase_disk_reads_total", int64(st.DiskReads)},
		{"tensorbase_disk_writes_total", int64(st.DiskWrites)},
		{"tensorbase_cache_hits_total", st.CacheHits},
		{"tensorbase_cache_misses_total", st.CacheMisses},
		{"tensorbase_predict_udf_calls_total", st.PredictUDFCalls},
		{"tensorbase_predict_batches_total", st.PredictBatches},
		{"tensorbase_panics_total", st.Panics},
	}
	for _, c := range checks {
		if got := snap.Counter(c.metric); got != c.want {
			t.Errorf("%s = %d, Stats says %d", c.metric, got, c.want)
		}
	}
	if got := snap.Counter("tensorbase_queries_total"); got != 3 {
		t.Errorf("queries_total = %d, want 3", got)
	}
	if got := snap.Counter("tensorbase_query_errors_total"); got != 1 {
		t.Errorf("query_errors_total = %d, want 1", got)
	}
	if st.CacheHits == 0 {
		t.Error("repeat PREDICT produced no cache hits")
	}
	h, ok := snap.Histograms["tensorbase_query_seconds"]
	if !ok || h.Count != 3 {
		t.Errorf("query_seconds histogram count = %d, want 3", h.Count)
	}

	// The Prometheus rendering carries the same numbers.
	var buf bytes.Buffer
	if err := db.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"tensorbase_queries_total 3",
		"tensorbase_query_errors_total 1",
		"tensorbase_query_seconds_count 3",
		fmt.Sprintf("tensorbase_cache_hits_total %d", st.CacheHits),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsSurviveReopen asserts counters behave coherently across a
// close/reopen: pushed query counters reset with the new instance, while
// pull-model storage counters restart from the fresh pool/disk — never
// stale handles into the closed instance.
func TestMetricsSurviveReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	mustExec(t, db, "SELECT a FROM t")
	before := db.Metrics()
	if before.Counter("tensorbase_queries_total") != 3 {
		t.Fatalf("queries_total = %d before close", before.Counter("tensorbase_queries_total"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	snap := re.Metrics()
	if got := snap.Counter("tensorbase_queries_total"); got != 0 {
		t.Fatalf("queries_total = %d after reopen, want 0", got)
	}
	mustExec(t, re, "SELECT a FROM t")
	snap = re.Metrics()
	if got := snap.Counter("tensorbase_queries_total"); got != 1 {
		t.Fatalf("queries_total = %d after reopen+query, want 1", got)
	}
	// The scan re-read pages through the fresh pool; the pull metrics must
	// reflect the new instance's counters exactly.
	st := re.Stats()
	if got := snap.Counter("tensorbase_pool_misses_total"); got != int64(st.PoolMisses) {
		t.Fatalf("pool_misses_total = %d, Stats says %d", got, st.PoolMisses)
	}
	if st.PoolMisses == 0 {
		t.Fatal("reopen scan should miss the cold pool")
	}
}

// TestSlowQueryLogExactlyOneLine is the acceptance test for the slow-query
// log: a statement over the threshold produces exactly one line, carrying
// the statement text and a per-operator span summary.
func TestSlowQueryLogExactlyOneLine(t *testing.T) {
	var buf bytes.Buffer
	db := openDB(t, Options{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	buf.Reset()
	base := db.Metrics().Counter("tensorbase_slow_queries_total")

	mustExec(t, db, "SELECT a FROM t WHERE a > 1")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow query produced %d lines: %q", len(lines), buf.String())
	}
	line := lines[0]
	for _, want := range []string{"slow-query", "SELECT a FROM t WHERE a > 1", "spans=[", "scan", "filter", "rows=2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-query line missing %q: %s", want, line)
		}
	}
	if got := db.Metrics().Counter("tensorbase_slow_queries_total") - base; got != 1 {
		t.Fatalf("slow_queries_total advanced by %d, want 1", got)
	}
}

// TestSlowQueryLogRespectsThreshold: fast statements under a generous
// threshold stay out of the log.
func TestSlowQueryLogRespectsThreshold(t *testing.T) {
	var buf bytes.Buffer
	db := openDB(t, Options{SlowQueryThreshold: time.Hour, SlowQueryLog: &buf})
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "SELECT a FROM t")
	if buf.Len() != 0 {
		t.Fatalf("fast queries logged: %q", buf.String())
	}
	if got := db.Metrics().Counter("tensorbase_slow_queries_total"); got != 0 {
		t.Fatalf("slow_queries_total = %d, want 0", got)
	}
}

// TestExplainAnalyzeFullTree is the headline acceptance test: EXPLAIN
// ANALYZE over a query combining an external sort with a cached PREDICT
// renders the full operator tree with per-operator rows, elapsed time
// including Close, pages fetched, spill volume, and cache probe outcomes.
func TestExplainAnalyzeFullTree(t *testing.T) {
	db := openDB(t, Options{InferBatch: 64, ResultCache: true, ResultCacheDistance: 1e-9})
	// 1500 rows > the sort's 1024-row run budget, forcing at least one
	// spilled run through the buffer pool.
	loadFraud(t, db, 1500)
	const q = "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns ORDER BY id"
	mustExec(t, db, q) // warm the result cache so the profile shows hits

	res, stats, err := db.ExecProfiled(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1500 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]exec.StageStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	for _, name := range []string{"scan", "predict", "project", "sort"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("profile missing stage %q: %+v", name, stats)
		}
		if s.Rows != 1500 {
			t.Errorf("stage %s rows = %d, want 1500", name, s.Rows)
		}
		if s.Elapsed <= 0 {
			t.Errorf("stage %s has no elapsed time", name)
		}
	}
	sort := byName["sort"]
	if sort.SpillRuns < 2 || sort.SpillBytes <= 0 {
		t.Errorf("sort did not record spill: runs=%d bytes=%d", sort.SpillRuns, sort.SpillBytes)
	}
	if sort.PagesFetched == 0 {
		t.Errorf("sort recorded no page fetches despite spilling")
	}
	if byName["scan"].PagesFetched == 0 {
		t.Errorf("scan recorded no page fetches")
	}
	predict := byName["predict"]
	if predict.CacheHits == 0 {
		t.Errorf("cached PREDICT recorded no cache hits: %+v", predict)
	}

	out := exec.FormatProfile(stats)
	for _, want := range []string{"close", "pages=", "spill=", "probes=", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered profile missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsConcurrentWithQueries hammers Metrics() and the Prometheus
// renderer while PREDICT queries run — the engine-level companion to the
// obs package's registry hammer (run under -race in CI).
func TestMetricsConcurrentWithQueries(t *testing.T) {
	db := openDB(t, Options{InferBatch: 16, ResultCache: true, ResultCacheDistance: 1e-9})
	loadFraud(t, db, 64)

	const workers, iters = 4, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.Exec("SELECT id, PREDICT(Fraud-FC-32, features) FROM txns WHERE id < 32"); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap := db.Metrics()
				if snap.Counter("tensorbase_queries_total") < 0 {
					errs <- fmt.Errorf("negative counter")
					return
				}
				if err := db.Registry().WritePrometheus(io.Discard); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Metrics().Counter("tensorbase_queries_total"); got != workers*iters {
		t.Fatalf("queries_total = %d, want %d", got, workers*iters)
	}
}
