package tensor

import (
	"fmt"
	"math"
)

// ReLUInto applies max(0,x) elementwise in place and returns t.
func ReLUInto(t *Tensor) *Tensor {
	// Branchless: clear the word when the sign bit is set. Activation signs
	// are data-dependent coin flips, so the obvious `if v < 0` mispredicts
	// its way through every post-GEMM sweep; the mask form runs at memory
	// speed. (−0 maps to +0, which compares equal everywhere it matters.)
	for i, v := range t.data {
		b := math.Float32bits(v)
		t.data[i] = math.Float32frombits(b &^ uint32(int32(b)>>31))
	}
	return t
}

// SigmoidInto applies the logistic function elementwise in place and returns t.
func SigmoidInto(t *Tensor) *Tensor {
	for i, v := range t.data {
		t.data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return t
}

// TanhInto applies tanh elementwise in place and returns t.
func TanhInto(t *Tensor) *Tensor {
	for i, v := range t.data {
		t.data[i] = float32(math.Tanh(float64(v)))
	}
	return t
}

// SoftmaxRowsInto applies a numerically stable softmax to each row of a 2-D
// tensor in place and returns t.
func SoftmaxRowsInto(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SoftmaxRows requires a 2-D tensor")
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
	return t
}

// AddBiasRowsInto adds bias (length n) to every row of a 2-D (m,n) tensor in
// place and returns t.
func AddBiasRowsInto(t *Tensor, bias *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: AddBiasRows requires a 2-D tensor")
	}
	n := t.shape[1]
	if bias.Len() != n {
		panic(fmt.Sprintf("tensor: bias length %d does not match row width %d", bias.Len(), n))
	}
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, b := range bias.data {
			row[j] += b
		}
	}
	return t
}

// ScaleInto multiplies every element by s in place and returns t.
func ScaleInto(t *Tensor, s float32) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// Sum returns the sum of all elements as float64 for accumulation accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Dot returns the dot product of two equal-length 1-D views (flat data).
func Dot(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", a.Len(), b.Len()))
	}
	var s float64
	for i, v := range a.data {
		s += float64(v) * float64(b.data[i])
	}
	return s
}

// L2Distance returns the Euclidean distance between two equal-length flat
// tensors.
func L2Distance(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("tensor: L2Distance length mismatch %d vs %d", a.Len(), b.Len()))
	}
	var s float64
	for i, v := range a.data {
		d := float64(v) - float64(b.data[i])
		s += d * d
	}
	return math.Sqrt(s)
}
