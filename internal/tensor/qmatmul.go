package tensor

import (
	"fmt"
)

// QuantizeRowsQ8 symmetrically quantizes each row of src — an (m,k)
// row-major matrix — to int8: scales[i] = maxAbs(row i)/127 (1 for an
// all-zero row, so dequantization is exact) and
// dst[i*k+j] = round(src[i*k+j]/scales[i]) clamped to ±127.
//
// Per-ROW scales matter beyond accuracy: the serving path quantizes
// activations with this function, and a per-row scale makes every row's
// int8 image independent of which batch it rides in — so cached, coalesced
// and pipelined executions of the same tuple are bit-identical.
func QuantizeRowsQ8(dst []int8, scales []float32, src []float32, m, k int) {
	if len(src) < m*k || len(dst) < m*k || len(scales) < m {
		panic(fmt.Sprintf("tensor: QuantizeRowsQ8 buffers too short for (%d,%d)", m, k))
	}
	for i := 0; i < m; i++ {
		row := src[i*k : (i+1)*k : (i+1)*k]
		var maxAbs float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		scales[i] = scale
		q := dst[i*k : (i+1)*k : (i+1)*k]
		inv := 1 / scale
		for j, v := range row {
			q[j] = int8(quantQ8(v, inv))
		}
	}
}

// quantQ8 rounds v·inv half away from zero and clamps to ±127 — the exact
// arithmetic QuantizeRowsQ8 has always used, with the math.Round call
// replaced by an add-and-truncate that the hot loops can afford. The
// product is computed in float32 (matching the historical behaviour) and
// widened before the ±0.5 add, which is then exact: a widened float32 of
// magnitude ≥ 2⁻²⁹ has its lowest bit well above float64's rounding point,
// and anything smaller rounds to 0 either way.
func quantQ8(v, inv float32) int32 {
	f := float64(v * inv)
	switch {
	case f >= 126.5: // rounds to ≥ 127: clamp before int conversion
		return 127
	case f <= -126.5:
		return -127
	case f >= 0:
		return int32(f + 0.5)
	case f < 0:
		return int32(f - 0.5)
	}
	return 0 // NaN input: comparisons all false
}

// QuantizePackQ8A is the fused form of QuantizeRowsQ8 + PackQ8A: it
// quantizes each row of the (m,k) f32 matrix with a per-row scale and
// packs the biased int8 image straight into the activation-side SWAR
// layout, never materialising the intermediate int8 matrix. lanes, sums
// and scales are fully overwritten (dirty scratch buffers are fine);
// results are bit-identical to running the two steps separately. This is
// what makes per-batch activation quantization affordable: the serving
// path pays one read of the activations and one write of the packed words,
// instead of quantize-write, pack-read, pack-write.
func QuantizePackQ8A(lanes []uint64, sums []int32, scales []float32, src []float32, m, k int) {
	words := Q8Lanes(k)
	if len(src) < m*k || len(lanes) < m*words || len(sums) < m || len(scales) < m {
		panic(fmt.Sprintf("tensor: QuantizePackQ8A buffers too short for (%d,%d)", m, k))
	}
	full := k / q8Lanes
	rem := k - full*q8Lanes
	for i := 0; i < m; i++ {
		row := src[i*k : (i+1)*k : (i+1)*k]
		var maxAbs float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		scales[i] = scale
		inv := 1 / scale
		dst := lanes[i*words : (i+1)*words : (i+1)*words]
		var sum int32
		for w := 0; w < full; w++ {
			p := w * q8Lanes
			q0 := quantQ8(row[p], inv)
			q1 := quantQ8(row[p+1], inv)
			q2 := quantQ8(row[p+2], inv)
			sum += q0 + q1 + q2 + 3*q8Bias
			dst[w] = uint64(uint32(q0+q8Bias)) |
				uint64(uint32(q1+q8Bias))<<q8Shift |
				uint64(uint32(q2+q8Bias))<<(2*q8Shift)
		}
		w := full
		if rem > 0 {
			var packed uint64
			p := full * q8Lanes
			for l := 0; l < rem; l++ {
				q := quantQ8(row[p+l], inv)
				sum += q + q8Bias
				packed |= uint64(uint32(q+q8Bias)) << (q8Shift * l)
			}
			dst[w] = packed
			w++
		}
		for ; w < words; w++ {
			dst[w] = 0 // pad words contribute nothing to any bucket
		}
		sums[i] = sum
	}
}

// MatMulQ8Into computes the int8 GEMM out = (a8 · b8ᵀ) scaled back to f32:
// a8 is an (m,k) row-major int8 matrix with one scale per row (quantized
// activations), b8 an (n,k) row-major int8 matrix with one scale per row —
// the (out,in) weight layout, so b8's rows are output channels and its
// scales are the per-channel weight scales. Accumulation is exact int32;
// each element dequantizes on store:
//
//	out[i,j] = Σₚ a8[i,p]·b8[j,p] × aScales[i] × bScales[j]
//
// The same fanOut/bandLoop machinery as the f32 kernels supplies row-band
// parallelism, and integer accumulation is order-independent, so
// parallel-vs-serial bit-identity is exact rather than tolerance-level.
func MatMulQ8Into(out *Tensor, a8 []int8, aScales []float32, b8 []int8, bScales []float32, m, k, n int) {
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulQ8Into output shape %v, want (%d,%d)", out.shape, m, n))
	}
	if len(a8) < m*k || len(aScales) < m || len(b8) < n*k || len(bScales) < n {
		panic(fmt.Sprintf("tensor: MatMulQ8Into operands too short for (%d,%d)×(%d,%d)ᵀ", m, k, n, k))
	}
	kernelQ8Calls.Add(1)
	rows := matmulQ8Rows
	if k > q8WideK {
		rows = matmulQ8RowsWide
	}
	workers, release := fanOut(m, m*k*n)
	if workers == 1 {
		rows(out.data, a8, aScales, b8, bScales, 0, m, k, n)
		return
	}
	defer release()
	bandLoop(m, workers, func(r0, r1 int) {
		rows(out.data, a8, aScales, b8, bScales, r0, r1, k, n)
	})
}

// q8WideK is the largest inner dimension the int32-accumulator kernel
// handles without overflow risk: k·127² must stay below 2³¹.
const q8WideK = 1 << 17

// matmulQ8RowsWide is the int64-accumulator fallback for very wide inner
// dimensions (Amazon-14k-class layers), where k·127² could overflow int32.
func matmulQ8RowsWide(out []float32, a8 []int8, aScales []float32, b8 []int8, bScales []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a8[i*k : (i+1)*k : (i+1)*k]
		orow := out[i*n : (i+1)*n : (i+1)*n]
		as := aScales[i]
		for j := 0; j < n; j++ {
			brow := b8[j*k : (j+1)*k : (j+1)*k]
			var sum int64
			for p, av := range arow {
				sum += int64(av) * int64(brow[p])
			}
			orow[j] = float32(sum) * as * bScales[j]
		}
	}
}

// matmulQ8Rows computes rows [r0,r1) of the int8 GEMM. Same shape as
// matmulTransBRows: four output channels per pass over the activation row,
// int32 accumulators (independent integer add chains pipeline freely),
// dequantize on store.
func matmulQ8Rows(out []float32, a8 []int8, aScales []float32, b8 []int8, bScales []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a8[i*k : (i+1)*k : (i+1)*k]
		orow := out[i*n : (i+1)*n : (i+1)*n]
		as := aScales[i]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b8[j*k : (j+1)*k : (j+1)*k]
			b1 := b8[(j+1)*k : (j+2)*k : (j+2)*k]
			b2 := b8[(j+2)*k : (j+3)*k : (j+3)*k]
			b3 := b8[(j+3)*k : (j+4)*k : (j+4)*k]
			var s0, s1, s2, s3 int32
			for p, av := range arow {
				a := int32(av)
				s0 += a * int32(b0[p])
				s1 += a * int32(b1[p])
				s2 += a * int32(b2[p])
				s3 += a * int32(b3[p])
			}
			bs := bScales[j : j+4 : j+4]
			orow[j] = float32(s0) * as * bs[0]
			orow[j+1] = float32(s1) * as * bs[1]
			orow[j+2] = float32(s2) * as * bs[2]
			orow[j+3] = float32(s3) * as * bs[3]
		}
		for ; j < n; j++ {
			orow[j] = float32(dotQ8(arow, b8[j*k:(j+1)*k:(j+1)*k])) * as * bScales[j]
		}
	}
}

// SWAR-packed int8 GEMM
//
// Scalar int8 dot products are bottlenecked on integer-multiply throughput
// (one IMUL per port per cycle), which makes a straight int8 kernel no
// faster than the f32 one. The packed kernel fixes that by biasing int8
// values to uint8 (v+128 ∈ [1,255], pad 0) and packing three per uint64 at
// 21-bit spacing. For packed words A = a₀ + a₁·2²¹ + a₂·2⁴² and (lane-
// reversed) B = b₂ + b₁·2²¹ + b₀·2⁴², the single 64-bit product A·B carries
// a₀b₀ + a₁b₁ + a₂b₂ — a 3-element dot product — in bits 42..59:
//
//   - diagonal terms aᵢbⱼ with i=j land at 2⁴², summing to ≤ 3·255² < 2¹⁸
//   - sub-diagonal buckets (2⁰, 2²¹) each stay < 2²¹, so nothing carries
//     into bit 42
//   - super-diagonal buckets land at 2⁶³ and 2⁸⁴ — masked or truncated away
//
// One multiply per three MACs, versus three, and the biased dot is mapped
// back exactly: Σab = Σa'b' − 128Σa' − 128Σb' + 128²k, with the biased row
// sums Σa', Σb' computed once at pack time. The result is the same integer
// a plain int32 kernel produces, so the packed path is bit-identical to
// MatMulQ8Into — just faster.

const (
	q8Lanes = 3                       // int8 values per packed uint64
	q8Shift = 21                      // lane spacing in bits
	q8Bias  = 128                     // int8 → biased uint8 offset
	q8DotSh = (q8Lanes - 1) * q8Shift // diagonal bucket position (42)

	// The inner loop accumulates RAW packed products and extracts the
	// diagonal bucket once per chunk, so each 3-MAC step is one multiply
	// and one add. Every 2¹²-bit bucket has 2²¹ of headroom before it
	// collides with the next; the largest per-word bucket value is
	// 3·255² = 195075, so up to ⌊2²¹/195075⌋ = 10 words (30 MACs) can
	// accumulate before extraction.
	q8Chunk     = 10
	q8ChunkMask = (1 << q8Shift) - 1 // chunked diagonal sum: < 2²¹
)

// Q8Lanes returns the number of packed uint64 words per row of k int8
// values: ⌈k/3⌉ rounded up to a whole number of extraction chunks, so the
// kernel's inner loop always runs a constant q8Chunk words (padding words
// are all-zero lanes, which contribute nothing to any bucket).
func Q8Lanes(k int) int {
	words := (k + q8Lanes - 1) / q8Lanes
	return (words + q8Chunk - 1) / q8Chunk * q8Chunk
}

// PackQ8A packs m rows of k int8 values into the activation-side SWAR
// layout: lanes in ascending order, biased by 128, zero-padded. sums[i]
// receives the biased row sum Σ(v+128), which the kernel needs to undo the
// bias exactly.
func PackQ8A(lanes []uint64, sums []int32, src []int8, m, k int) {
	packQ8(lanes, sums, src, m, k, false)
}

func packQ8(lanes []uint64, sums []int32, src []int8, m, k int, reverse bool) {
	words := Q8Lanes(k)
	if len(src) < m*k || len(lanes) < m*words || len(sums) < m {
		panic(fmt.Sprintf("tensor: packQ8 buffers too short for (%d,%d)", m, k))
	}
	for i := 0; i < m; i++ {
		row := src[i*k : (i+1)*k]
		dst := lanes[i*words : (i+1)*words]
		var sum int32
		for w := range dst {
			var packed uint64
			for l := 0; l < q8Lanes; l++ {
				p := w*q8Lanes + l
				if p >= k {
					break // pad lanes stay 0, contributing nothing
				}
				v := uint64(uint16(int16(row[p]) + q8Bias))
				sum += int32(row[p]) + q8Bias
				if reverse {
					packed |= v << (q8Shift * (q8Lanes - 1 - l))
				} else {
					packed |= v << (q8Shift * l)
				}
			}
			dst[w] = packed
		}
		sums[i] = sum
	}
}

// q8Panel is the number of output channels interleaved per weight panel.
const q8Panel = 4

// Q8BLanes returns the packed weight buffer length for n output channels of
// k weights: channels are rounded up to whole panels of q8Panel.
func Q8BLanes(n, k int) int {
	return (n + q8Panel - 1) / q8Panel * q8Panel * Q8Lanes(k)
}

// PackQ8B packs the weight side — n output channels of k int8 weights in
// (out,in) layout — for MatMulQ8PackedInto. Within each word lanes are
// stored in reverse order (which is what places the diagonal products of
// A·B in one bucket), and channels are interleaved in panels of four:
// panel g, word w, channel c lands at lanes[(g·words+w)·4+c]. The
// interleave keeps the kernel's inner loop down to two base pointers, so
// its four accumulators stay in registers. lanes must have Q8BLanes(n,k)
// elements and be zero-filled (pad channels contribute zero); sums[j]
// receives channel j's biased weight sum.
func PackQ8B(lanes []uint64, sums []int32, src []int8, n, k int) {
	words := Q8Lanes(k)
	if len(src) < n*k || len(lanes) < Q8BLanes(n, k) || len(sums) < n {
		panic(fmt.Sprintf("tensor: PackQ8B buffers too short for (%d,%d)", n, k))
	}
	for j := 0; j < n; j++ {
		row := src[j*k : (j+1)*k]
		g, c := j/q8Panel, j%q8Panel
		var sum int32
		for w := 0; w < words; w++ {
			var packed uint64
			for l := 0; l < q8Lanes; l++ {
				p := w*q8Lanes + l
				if p >= k {
					break
				}
				v := uint64(uint16(int16(row[p]) + q8Bias))
				sum += int32(row[p]) + q8Bias
				packed |= v << (q8Shift * (q8Lanes - 1 - l))
			}
			lanes[(g*words+w)*q8Panel+c] = packed
		}
		sums[j] = sum
	}
}

// MatMulQ8PackedInto is the packed-operand form of MatMulQ8Into: a is m
// rows packed with PackQ8A, b is n rows (output channels) packed with
// PackQ8B, k is the logical inner dimension. Results are bit-identical to
// MatMulQ8Into on the same int8 operands. k must be ≤ q8WideK·3 lanes'
// worth of exact-sum headroom — in practice any k below ~10⁶ is exact, and
// callers with larger k use MatMulQ8Into's wide path instead.
func MatMulQ8PackedInto(out *Tensor, aLanes []uint64, aSums []int32, aScales []float32, bLanes []uint64, bSums []int32, bScales []float32, m, k, n int) {
	if out.Rank() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulQ8PackedInto output shape %v, want (%d,%d)", out.shape, m, n))
	}
	words := Q8Lanes(k)
	if len(aLanes) < m*words || len(aSums) < m || len(aScales) < m || len(bLanes) < Q8BLanes(n, k) || len(bSums) < n || len(bScales) < n {
		panic(fmt.Sprintf("tensor: MatMulQ8PackedInto operands too short for (%d,%d)×(%d,%d)ᵀ", m, k, n, k))
	}
	kernelQ8Calls.Add(1)
	workers, release := fanOut(m, m*k*n)
	if workers == 1 {
		matmulQ8PackedRows(out.data, aLanes, aSums, aScales, bLanes, bSums, bScales, 0, m, k, n)
		return
	}
	defer release()
	bandLoop(m, workers, func(r0, r1 int) {
		matmulQ8PackedRows(out.data, aLanes, aSums, aScales, bLanes, bSums, bScales, r0, r1, k, n)
	})
}

func matmulQ8PackedRows(out []float32, aLanes []uint64, aSums []int32, aScales []float32, bLanes []uint64, bSums []int32, bScales []float32, r0, r1, k, n int) {
	words := Q8Lanes(k)
	panelLen := words * q8Panel
	bias := q8Bias * int64(k) * q8Bias // +128²k term of the bias correction
	i := r0
	// 2×4 register block: two activation rows share every panel load, so
	// the kernel runs close to its integer-multiply floor instead of its
	// load/store overhead.
	for ; i+2 <= r1; i += 2 {
		arow0 := aLanes[i*words : (i+1)*words : (i+1)*words]
		arow1 := aLanes[(i+1)*words : (i+2)*words : (i+2)*words]
		orow0 := out[i*n : (i+1)*n : (i+1)*n]
		orow1 := out[(i+1)*n : (i+2)*n : (i+2)*n]
		as0, as1 := aScales[i], aScales[i+1]
		acorr0 := bias - q8Bias*int64(aSums[i])
		acorr1 := bias - q8Bias*int64(aSums[i+1])
		for g := 0; g*q8Panel < n; g++ {
			panel := bLanes[g*panelLen : (g+1)*panelLen : (g+1)*panelLen]
			var s0, s1, s2, s3, u0, u1, u2, u3 uint64
			for base := 0; base+q8Chunk <= len(arow0); base += q8Chunk {
				a0 := arow0[base : base+q8Chunk : base+q8Chunk]
				a1 := arow1[base : base+q8Chunk : base+q8Chunk]
				p := panel[base*q8Panel : base*q8Panel+q8Chunk*q8Panel : base*q8Panel+q8Chunk*q8Panel]
				r0 := a0[0]*p[0] + a0[1]*p[4] + a0[2]*p[8] + a0[3]*p[12] + a0[4]*p[16] +
					a0[5]*p[20] + a0[6]*p[24] + a0[7]*p[28] + a0[8]*p[32] + a0[9]*p[36]
				r1 := a0[0]*p[1] + a0[1]*p[5] + a0[2]*p[9] + a0[3]*p[13] + a0[4]*p[17] +
					a0[5]*p[21] + a0[6]*p[25] + a0[7]*p[29] + a0[8]*p[33] + a0[9]*p[37]
				r2 := a0[0]*p[2] + a0[1]*p[6] + a0[2]*p[10] + a0[3]*p[14] + a0[4]*p[18] +
					a0[5]*p[22] + a0[6]*p[26] + a0[7]*p[30] + a0[8]*p[34] + a0[9]*p[38]
				r3 := a0[0]*p[3] + a0[1]*p[7] + a0[2]*p[11] + a0[3]*p[15] + a0[4]*p[19] +
					a0[5]*p[23] + a0[6]*p[27] + a0[7]*p[31] + a0[8]*p[35] + a0[9]*p[39]
				t0 := a1[0]*p[0] + a1[1]*p[4] + a1[2]*p[8] + a1[3]*p[12] + a1[4]*p[16] +
					a1[5]*p[20] + a1[6]*p[24] + a1[7]*p[28] + a1[8]*p[32] + a1[9]*p[36]
				t1 := a1[0]*p[1] + a1[1]*p[5] + a1[2]*p[9] + a1[3]*p[13] + a1[4]*p[17] +
					a1[5]*p[21] + a1[6]*p[25] + a1[7]*p[29] + a1[8]*p[33] + a1[9]*p[37]
				t2 := a1[0]*p[2] + a1[1]*p[6] + a1[2]*p[10] + a1[3]*p[14] + a1[4]*p[18] +
					a1[5]*p[22] + a1[6]*p[26] + a1[7]*p[30] + a1[8]*p[34] + a1[9]*p[38]
				t3 := a1[0]*p[3] + a1[1]*p[7] + a1[2]*p[11] + a1[3]*p[15] + a1[4]*p[19] +
					a1[5]*p[23] + a1[6]*p[27] + a1[7]*p[31] + a1[8]*p[35] + a1[9]*p[39]
				s0 += (r0 >> q8DotSh) & q8ChunkMask
				s1 += (r1 >> q8DotSh) & q8ChunkMask
				s2 += (r2 >> q8DotSh) & q8ChunkMask
				s3 += (r3 >> q8DotSh) & q8ChunkMask
				u0 += (t0 >> q8DotSh) & q8ChunkMask
				u1 += (t1 >> q8DotSh) & q8ChunkMask
				u2 += (t2 >> q8DotSh) & q8ChunkMask
				u3 += (t3 >> q8DotSh) & q8ChunkMask
			}
			j := g * q8Panel
			if j+q8Panel <= n {
				bs := bScales[j : j+4 : j+4]
				bsum := bSums[j : j+4 : j+4]
				orow0[j] = float32(int64(s0)+acorr0-q8Bias*int64(bsum[0])) * as0 * bs[0]
				orow0[j+1] = float32(int64(s1)+acorr0-q8Bias*int64(bsum[1])) * as0 * bs[1]
				orow0[j+2] = float32(int64(s2)+acorr0-q8Bias*int64(bsum[2])) * as0 * bs[2]
				orow0[j+3] = float32(int64(s3)+acorr0-q8Bias*int64(bsum[3])) * as0 * bs[3]
				orow1[j] = float32(int64(u0)+acorr1-q8Bias*int64(bsum[0])) * as1 * bs[0]
				orow1[j+1] = float32(int64(u1)+acorr1-q8Bias*int64(bsum[1])) * as1 * bs[1]
				orow1[j+2] = float32(int64(u2)+acorr1-q8Bias*int64(bsum[2])) * as1 * bs[2]
				orow1[j+3] = float32(int64(u3)+acorr1-q8Bias*int64(bsum[3])) * as1 * bs[3]
			} else {
				ss := [q8Panel]uint64{s0, s1, s2, s3}
				uu := [q8Panel]uint64{u0, u1, u2, u3}
				for c := 0; j+c < n; c++ {
					bc := -q8Bias * int64(bSums[j+c])
					orow0[j+c] = float32(int64(ss[c])+acorr0+bc) * as0 * bScales[j+c]
					orow1[j+c] = float32(int64(uu[c])+acorr1+bc) * as1 * bScales[j+c]
				}
			}
		}
	}
	for ; i < r1; i++ {
		arow := aLanes[i*words : (i+1)*words : (i+1)*words]
		orow := out[i*n : (i+1)*n : (i+1)*n]
		as := aScales[i]
		acorr := bias - q8Bias*int64(aSums[i])
		for g := 0; g*q8Panel < n; g++ {
			panel := bLanes[g*panelLen : (g+1)*panelLen : (g+1)*panelLen]
			var s0, s1, s2, s3 uint64
			for base := 0; base+q8Chunk <= len(arow); base += q8Chunk {
				a := arow[base : base+q8Chunk : base+q8Chunk]
				p := panel[base*q8Panel : base*q8Panel+q8Chunk*q8Panel : base*q8Panel+q8Chunk*q8Panel]
				r0 := a[0]*p[0] + a[1]*p[4] + a[2]*p[8] + a[3]*p[12] + a[4]*p[16] +
					a[5]*p[20] + a[6]*p[24] + a[7]*p[28] + a[8]*p[32] + a[9]*p[36]
				r1 := a[0]*p[1] + a[1]*p[5] + a[2]*p[9] + a[3]*p[13] + a[4]*p[17] +
					a[5]*p[21] + a[6]*p[25] + a[7]*p[29] + a[8]*p[33] + a[9]*p[37]
				r2 := a[0]*p[2] + a[1]*p[6] + a[2]*p[10] + a[3]*p[14] + a[4]*p[18] +
					a[5]*p[22] + a[6]*p[26] + a[7]*p[30] + a[8]*p[34] + a[9]*p[38]
				r3 := a[0]*p[3] + a[1]*p[7] + a[2]*p[11] + a[3]*p[15] + a[4]*p[19] +
					a[5]*p[23] + a[6]*p[27] + a[7]*p[31] + a[8]*p[35] + a[9]*p[39]
				s0 += (r0 >> q8DotSh) & q8ChunkMask
				s1 += (r1 >> q8DotSh) & q8ChunkMask
				s2 += (r2 >> q8DotSh) & q8ChunkMask
				s3 += (r3 >> q8DotSh) & q8ChunkMask
			}
			j := g * q8Panel
			if j+q8Panel <= n {
				bs := bScales[j : j+4 : j+4]
				bsum := bSums[j : j+4 : j+4]
				orow[j] = float32(int64(s0)+acorr-q8Bias*int64(bsum[0])) * as * bs[0]
				orow[j+1] = float32(int64(s1)+acorr-q8Bias*int64(bsum[1])) * as * bs[1]
				orow[j+2] = float32(int64(s2)+acorr-q8Bias*int64(bsum[2])) * as * bs[2]
				orow[j+3] = float32(int64(s3)+acorr-q8Bias*int64(bsum[3])) * as * bs[3]
			} else {
				ss := [q8Panel]uint64{s0, s1, s2, s3}
				for c := 0; j+c < n; c++ {
					orow[j+c] = float32(int64(ss[c])+acorr-q8Bias*int64(bSums[j+c])) * as * bScales[j+c]
				}
			}
		}
	}
}

// dotQ8 is the tail-channel int8 dot product with four partial int32
// accumulators over a 4-wide k unroll. Integer addition is associative, so
// the split changes nothing.
func dotQ8(x, y []int8) int32 {
	k := min(len(x), len(y))
	var s0, s1, s2, s3 int32
	p := 0
	for ; p+4 <= k; p += 4 {
		xs := x[p : p+4 : p+4]
		ys := y[p : p+4 : p+4]
		s0 += int32(xs[0]) * int32(ys[0])
		s1 += int32(xs[1]) * int32(ys[1])
		s2 += int32(xs[2]) * int32(ys[2])
		s3 += int32(xs[3]) * int32(ys[3])
	}
	for ; p < k; p++ {
		s0 += int32(x[p]) * int32(y[p])
	}
	return s0 + s1 + s2 + s3
}
