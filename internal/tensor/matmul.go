package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tensorbase/internal/parallel"
)

// matmulParallelThreshold is the minimum number of multiply-adds before
// MatMul fans work out to worker goroutines; below it the goroutine overhead
// dominates for the small models this engine serves.
const matmulParallelThreshold = 1 << 18

// maxWorkers caps kernel parallelism when set (> 0). The resource governor
// uses it to coordinate kernel threads with the engine's own workers — the
// Sec. 3 problem of RDBMS threads and BLAS/OpenMP threads fighting for the
// same cores.
var maxWorkers atomic.Int32

// SetMaxWorkers caps the number of goroutines a single kernel may fan out
// to; n <= 0 restores the default (GOMAXPROCS).
func SetMaxWorkers(n int) {
	if n < 0 {
		n = 0
	}
	maxWorkers.Store(int32(n))
}

// kernelWorkers returns the static per-kernel parallelism cap.
func kernelWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if cap := int(maxWorkers.Load()); cap > 0 && cap < w {
		w = cap
	}
	return w
}

// fanOut decides how many goroutines a kernel over m result rows and `work`
// multiply-adds may use. Beyond the static cap (GOMAXPROCS ∧ SetMaxWorkers)
// it asks the shared parallel.Budget for tokens, so a kernel running inside
// an engine worker that already holds the machine's cores degrades to
// serial instead of oversubscribing (Sec. 3). The caller's goroutine is the
// first worker; extra tokens are returned via the release func (nil when
// the kernel should run serially).
func fanOut(m, work int) (workers int, release func()) {
	w := kernelWorkers()
	if work < matmulParallelThreshold || w <= 1 || m <= 1 {
		return 1, nil
	}
	if w > m {
		w = m
	}
	budget := parallel.Default()
	extra := budget.TryAcquireUpTo(w - 1)
	if extra == 0 {
		return 1, nil
	}
	return extra + 1, func() { budget.Release(extra) }
}

// bandLoop runs fn over row bands [r0,r1) of m rows split across workers,
// computing the first band on the caller's goroutine.
func bandLoop(m, workers int, fn func(r0, r1 int)) {
	band := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := band; r0 < m; r0 += band {
		r1 := min(r0+band, m)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	fn(0, min(band, m))
	wg.Wait()
}

// MatMul returns a × b for 2-D tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, reusing out's storage. Shapes must be
// (m,k) × (k,n) → (m,n). The kernel is a cache-friendly i-k-j loop with the
// inner loop over contiguous rows of b, parallelised across row bands of a
// when the problem is large enough and the shared core budget has tokens
// free.
func MatMulInto(out, a, b *Tensor) {
	m, k, n := checkMatMulShapes(out, a, b)
	for i := range out.data {
		out.data[i] = 0
	}
	matmulAdd(out.data, a.data, b.data, m, k, n)
}

// MatMulAddInto computes out += a × b — the fused multiply-accumulate the
// blocked execution paths use so the per-k-step partial product of
// C[rb,cb] = Σₖ A[rb,k]·B[k,cb] accumulates straight into the result block
// instead of materialising a temporary tensor per step. Shapes must be
// (m,k) × (k,n) → (m,n).
func MatMulAddInto(out, a, b *Tensor) {
	m, k, n := checkMatMulShapes(out, a, b)
	matmulAdd(out.data, a.data, b.data, m, k, n)
}

func checkMatMulShapes(out, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%d,%d)×(%d,%d)", m, k, k2, n))
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul output shape %v, want (%d,%d)", out.shape, m, n))
	}
	return m, k, n
}

// matmulAdd accumulates a×b into out, fanning out across row bands when the
// problem is large enough. Row bands write disjoint rows of out, so the
// parallel result is bit-identical to the serial one.
func matmulAdd(out, a, b []float32, m, k, n int) {
	workers, release := fanOut(m, m*k*n)
	if workers == 1 {
		matmulRows(out, a, b, 0, m, k, n)
		return
	}
	defer release()
	bandLoop(m, workers, func(r0, r1 int) {
		matmulRows(out, a, b, r0, r1, k, n)
	})
}

// matmulRows accumulates rows [r0,r1) of the product into out.
func matmulRows(out, a, b []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a × bᵀ for shapes (m,k) and (n,k). Weight matrices in
// the model zoo are stored (out,in), so X × Wᵀ is the hot path.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch (%d,%d)×(%d,%d)ᵀ", m, k, n, k2))
	}
	out := New(m, n)
	workers, release := fanOut(m, m*k*n)
	if workers == 1 {
		matmulTransBRows(out.data, a.data, b.data, 0, m, k, n)
		return out
	}
	defer release()
	bandLoop(m, workers, func(r0, r1 int) {
		matmulTransBRows(out.data, a.data, b.data, r0, r1, k, n)
	})
	return out
}

func matmulTransBRows(out, a, b []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var sum float32
			for p, av := range arow {
				sum += av * brow[p]
			}
			orow[j] = sum
		}
	}
}

// AddInto computes out[i] += add[i] elementwise; shapes must match.
func AddInto(out, add *Tensor) {
	if !sameShape(out.shape, add.shape) {
		panic(fmt.Sprintf("tensor: AddInto shape mismatch %v vs %v", out.shape, add.shape))
	}
	for i, v := range add.data {
		out.data[i] += v
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}
