package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tensorbase/internal/parallel"
)

// matmulParallelThreshold is the minimum number of multiply-adds before
// MatMul fans work out to worker goroutines; below it the goroutine overhead
// dominates for the small models this engine serves.
const matmulParallelThreshold = 1 << 18

// maxWorkers caps kernel parallelism when set (> 0). The resource governor
// uses it to coordinate kernel threads with the engine's own workers — the
// Sec. 3 problem of RDBMS threads and BLAS/OpenMP threads fighting for the
// same cores.
var maxWorkers atomic.Int32

// Process-wide kernel counters, exported through the engine's metrics
// registry. They count dispatch decisions (fanned-out vs serial) and int8
// GEMM invocations, not FLOPs.
var (
	kernelSerialRuns atomic.Uint64
	kernelFanOuts    atomic.Uint64
	kernelQ8Calls    atomic.Uint64
)

// KernelStats is a snapshot of the kernel dispatch counters.
type KernelStats struct {
	SerialRuns uint64 // kernels that ran on the caller's goroutine alone
	FanOuts    uint64 // kernels that drew extra workers from the shared budget
	Q8Calls    uint64 // int8 GEMM invocations (MatMulQ8Into)
}

// Kernels returns the process-wide kernel dispatch counters.
func Kernels() KernelStats {
	return KernelStats{
		SerialRuns: kernelSerialRuns.Load(),
		FanOuts:    kernelFanOuts.Load(),
		Q8Calls:    kernelQ8Calls.Load(),
	}
}

// SetMaxWorkers caps the number of goroutines a single kernel may fan out
// to; n <= 0 restores the default (GOMAXPROCS).
func SetMaxWorkers(n int) {
	if n < 0 {
		n = 0
	}
	maxWorkers.Store(int32(n))
}

// kernelWorkers returns the static per-kernel parallelism cap.
func kernelWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if cap := int(maxWorkers.Load()); cap > 0 && cap < w {
		w = cap
	}
	return w
}

// fanOut decides how many goroutines a kernel over m result rows and `work`
// multiply-adds may use. Beyond the static cap (GOMAXPROCS ∧ SetMaxWorkers)
// it asks the shared parallel.Budget for tokens, so a kernel running inside
// an engine worker that already holds the machine's cores degrades to
// serial instead of oversubscribing (Sec. 3). The caller's goroutine is the
// first worker; extra tokens are returned via the release func (nil when
// the kernel should run serially).
func fanOut(m, work int) (workers int, release func()) {
	w := kernelWorkers()
	if work < matmulParallelThreshold || w <= 1 || m <= 1 {
		kernelSerialRuns.Add(1)
		return 1, nil
	}
	if w > m {
		w = m
	}
	budget := parallel.Default()
	extra := budget.TryAcquireUpTo(w - 1)
	if extra == 0 {
		kernelSerialRuns.Add(1)
		return 1, nil
	}
	kernelFanOuts.Add(1)
	return extra + 1, func() { budget.Release(extra) }
}

// bandLoop runs fn over row bands [r0,r1) of m rows split across workers,
// computing the first band on the caller's goroutine.
func bandLoop(m, workers int, fn func(r0, r1 int)) {
	band := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := band; r0 < m; r0 += band {
		r1 := min(r0+band, m)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	fn(0, min(band, m))
	wg.Wait()
}

// MatMul returns a × b for 2-D tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a × b, reusing out's storage. Shapes must be
// (m,k) × (k,n) → (m,n). The kernel is a cache-friendly i-k-j loop with the
// inner loop over contiguous rows of b, parallelised across row bands of a
// when the problem is large enough and the shared core budget has tokens
// free.
func MatMulInto(out, a, b *Tensor) {
	m, k, n := checkMatMulShapes(out, a, b)
	for i := range out.data {
		out.data[i] = 0
	}
	matmulAdd(out.data, a.data, b.data, m, k, n, matmulRows)
}

// MatMulAddInto computes out += a × b — the fused multiply-accumulate the
// blocked execution paths use so the per-k-step partial product of
// C[rb,cb] = Σₖ A[rb,k]·B[k,cb] accumulates straight into the result block
// instead of materialising a temporary tensor per step. Shapes must be
// (m,k) × (k,n) → (m,n).
func MatMulAddInto(out, a, b *Tensor) {
	m, k, n := checkMatMulShapes(out, a, b)
	matmulAdd(out.data, a.data, b.data, m, k, n, matmulRows)
}

// sparseSkipFraction is the zero fraction of a above which the adaptive
// dispatch prefers the zero-skipping kernel over the dense unrolled one.
const sparseSkipFraction = 0.5

// MatMulAddAutoInto computes out += a × b like MatMulAddInto, but first
// samples a's zero fraction and dispatches to a zero-skipping kernel when
// more than half of a is zero — the deduplicated/padded tensor blocks the
// blocked execution path produces. The dispatch depends only on a's
// contents, so parallel and serial execution still pick the same kernel and
// remain bit-identical.
func MatMulAddAutoInto(out, a, b *Tensor) {
	m, k, n := checkMatMulShapes(out, a, b)
	zeros := 0
	for _, v := range a.data {
		if v == 0 {
			zeros++
		}
	}
	rows := matmulRows
	if float64(zeros) > sparseSkipFraction*float64(len(a.data)) {
		rows = matmulRowsSparse
	}
	matmulAdd(out.data, a.data, b.data, m, k, n, rows)
}

func checkMatMulShapes(out, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%d,%d)×(%d,%d)", m, k, k2, n))
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul output shape %v, want (%d,%d)", out.shape, m, n))
	}
	return m, k, n
}

// matmulAdd accumulates a×b into out via rows, fanning out across row bands
// when the problem is large enough. Row bands write disjoint rows of out, so
// the parallel result is bit-identical to the serial one.
func matmulAdd(out, a, b []float32, m, k, n int, rows func(out, a, b []float32, r0, r1, k, n int)) {
	workers, release := fanOut(m, m*k*n)
	if workers == 1 {
		rows(out, a, b, 0, m, k, n)
		return
	}
	defer release()
	bandLoop(m, workers, func(r0, r1 int) {
		rows(out, a, b, r0, r1, k, n)
	})
}

// axpyUnrolled computes orow[j] += av*brow[j] over min(len(orow), len(brow))
// elements — the shared i-k-j inner loop. The 8-wide unroll works on
// constant-length subslices so the compiler proves all eight accesses in
// bounds from one slice operation; per-element accumulation order is
// unchanged from the scalar loop, keeping results bit-identical.
func axpyUnrolled(orow, brow []float32, av float32) {
	n := min(len(orow), len(brow))
	j := 0
	for ; j+8 <= n; j += 8 {
		o := orow[j : j+8 : j+8]
		r := brow[j : j+8 : j+8]
		o[0] += av * r[0]
		o[1] += av * r[1]
		o[2] += av * r[2]
		o[3] += av * r[3]
		o[4] += av * r[4]
		o[5] += av * r[5]
		o[6] += av * r[6]
		o[7] += av * r[7]
	}
	for ; j < n; j++ {
		orow[j] += av * brow[j]
	}
}

// matmulRows accumulates rows [r0,r1) of the product into out: the dense
// micro-kernel. Unlike the seed kernel it does not test every a element for
// zero — the branch cost more than the multiply on dense activations.
func matmulRows(out, a, b []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			axpyUnrolled(orow, b[p*n:(p+1)*n], av)
		}
	}
}

// matmulRowsSparse is the zero-skipping variant of matmulRows, profitable
// only when a is mostly zeros (MatMulAddAutoInto decides). Skipping av == 0
// instead of adding av*bv can differ from the dense kernel only in the sign
// of zeros and for non-finite b values.
func matmulRowsSparse(out, a, b []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			axpyUnrolled(orow, b[p*n:(p+1)*n], av)
		}
	}
}

// MatMulTransB returns a × bᵀ for shapes (m,k) and (n,k). Weight matrices in
// the model zoo are stored (out,in), so X × Wᵀ is the hot path.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch (%d,%d)×(%d,%d)ᵀ", m, k, n, k2))
	}
	out := New(m, n)
	workers, release := fanOut(m, m*k*n)
	if workers == 1 {
		matmulTransBRows(out.data, a.data, b.data, 0, m, k, n)
		return out
	}
	defer release()
	bandLoop(m, workers, func(r0, r1 int) {
		matmulTransBRows(out.data, a.data, b.data, r0, r1, k, n)
	})
	return out
}

// matmulTransBRows computes rows [r0,r1) of a × bᵀ. The micro-kernel blocks
// four output columns per pass — one read of the a row feeds four
// independent dot-product accumulators, which hides the float-add latency
// chain the seed's single-accumulator loop serialised on — and each dot
// product unrolls four k steps. Accumulation order differs from the seed
// kernel (a tolerance-level fp difference, not a correctness one); parallel
// row bands still run this exact kernel, so parallel-vs-serial stays
// bit-identical.
func matmulTransBRows(out, a, b []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k : (i+1)*k]
		orow := out[i*n : (i+1)*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			orow[j] = s0
			orow[j+1] = s1
			orow[j+2] = s2
			orow[j+3] = s3
		}
		for ; j < n; j++ {
			orow[j] = dotUnrolled(arow, b[j*k:(j+1)*k:(j+1)*k])
		}
	}
}

// dotUnrolled is the tail-column dot product: four partial accumulators
// over a 4-wide k unroll, summed pairwise at the end.
func dotUnrolled(x, y []float32) float32 {
	k := min(len(x), len(y))
	var s0, s1, s2, s3 float32
	p := 0
	for ; p+4 <= k; p += 4 {
		xs := x[p : p+4 : p+4]
		ys := y[p : p+4 : p+4]
		s0 += xs[0] * ys[0]
		s1 += xs[1] * ys[1]
		s2 += xs[2] * ys[2]
		s3 += xs[3] * ys[3]
	}
	for ; p < k; p++ {
		s0 += x[p] * y[p]
	}
	return (s0 + s1) + (s2 + s3)
}

// AddInto computes out[i] += add[i] elementwise; shapes must match.
func AddInto(out, add *Tensor) {
	if !sameShape(out.shape, add.shape) {
		panic(fmt.Sprintf("tensor: AddInto shape mismatch %v vs %v", out.shape, add.shape))
	}
	for i, v := range add.data {
		out.data[i] += v
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}
