// Package tensor implements dense numeric tensors and the linear-algebra
// kernels the in-database inference engine is built on: blocked matrix
// multiplication, 2-D convolution (direct and via im2col spatial rewriting),
// and the elementwise activations used by the supported model families.
//
// Tensors are row-major float32. The representation is deliberately simple —
// a shape vector plus a flat backing slice — because every higher layer
// (the UDF runtime, the tensor-block relations, the simulated external DL
// runtime) shares it, and block slicing must be cheap and explicit.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is NOT
// copied; the tensor aliases it. It panics if len(data) does not match the
// shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The caller must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the flat backing slice in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Bytes returns the in-memory size of the tensor payload in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a view of t with a new shape of equal volume.
// The data is shared, not copied.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Reuse2D repoints t at data as an r×c matrix, reusing t's shape slice —
// the allocation-free counterpart of FromSlice for block-streaming inner
// loops that cycle one Tensor header over many scratch buffers. The slice
// is not copied; the tensor aliases it.
func (t *Tensor) Reuse2D(data []float32, r, c int) {
	if r < 0 || c < 0 || len(data) != r*c {
		panic(fmt.Sprintf("tensor: Reuse2D data length %d does not match (%d,%d)", len(data), r, c))
	}
	if cap(t.shape) >= 2 {
		t.shape = t.shape[:2]
	} else {
		t.shape = make([]int, 2)
	}
	t.shape[0], t.shape[1] = r, c
	t.data = data
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// Row returns a view of row i of a 2-D tensor as a length-cols slice.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Equal reports whether t and o have identical shape and element values.
func (t *Tensor) Equal(o *Tensor) bool {
	if !sameShape(t.shape, o.shape) {
		return false
	}
	for i, v := range t.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether t and o have the same shape and all elements
// within tol of each other.
func (t *Tensor) AlmostEqual(o *Tensor, tol float64) bool {
	if !sameShape(t.shape, o.shape) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(float64(v-o.data[i])) > tol {
			return false
		}
	}
	return true
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elems, %.1f KiB]", t.shape, len(t.data), float64(t.Bytes())/1024)
}

// Slice2D returns a copy of the block rows [r0,r1) × cols [c0,c1) of a 2-D
// tensor. Out-of-range portions are clamped to the tensor bounds, so callers
// tiling a matrix into fixed-size blocks can pass unclipped coordinates.
func (t *Tensor) Slice2D(r0, r1, c0, c1 int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Slice2D requires a 2-D tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	r1 = min(r1, rows)
	c1 = min(c1, cols)
	if r0 < 0 || c0 < 0 || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("tensor: invalid Slice2D range [%d:%d, %d:%d] for shape %v", r0, r1, c0, c1, t.shape))
	}
	out := New(r1-r0, c1-c0)
	w := c1 - c0
	for r := r0; r < r1; r++ {
		copy(out.data[(r-r0)*w:(r-r0+1)*w], t.data[r*cols+c0:r*cols+c1])
	}
	return out
}

// SetBlock2D copies block src into t at row offset r0, column offset c0.
// The block must fit within t.
func (t *Tensor) SetBlock2D(src *Tensor, r0, c0 int) {
	if len(t.shape) != 2 || len(src.shape) != 2 {
		panic("tensor: SetBlock2D requires 2-D tensors")
	}
	br, bc := src.shape[0], src.shape[1]
	if r0 < 0 || c0 < 0 || r0+br > t.shape[0] || c0+bc > t.shape[1] {
		panic(fmt.Sprintf("tensor: block %v at (%d,%d) does not fit in %v", src.shape, r0, c0, t.shape))
	}
	cols := t.shape[1]
	for r := 0; r < br; r++ {
		copy(t.data[(r0+r)*cols+c0:(r0+r)*cols+c0+bc], src.data[r*bc:(r+1)*bc])
	}
}

// SliceRows returns a view of rows [r0, r1) along dimension 0, sharing
// storage (row-major layout makes any dim-0 range contiguous).
func (t *Tensor) SliceRows(r0, r1 int) *Tensor {
	n := t.shape[0]
	if r0 < 0 || r1 > n || r0 > r1 {
		panic(fmt.Sprintf("tensor: SliceRows [%d:%d) out of range for %v", r0, r1, t.shape))
	}
	per := len(t.data) / max(n, 1)
	shape := append([]int(nil), t.shape...)
	shape[0] = r1 - r0
	return &Tensor{shape: shape, data: t.data[r0*per : r1*per]}
}

// ArgMaxRow returns the index of the maximum element in row i of a 2-D
// tensor. Ties resolve to the lowest index.
func (t *Tensor) ArgMaxRow(i int) int {
	row := t.Row(i)
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}
