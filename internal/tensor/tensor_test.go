package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "FromSlice with wrong length")
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset: ((2*4)+1)*5 + 3 = 48.
	if x.Data()[48] != 7.5 {
		t.Fatalf("row-major layout wrong: data[48] = %v", x.Data()[48])
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer expectPanic(t, "At out of bounds")
	New(2, 2).At(2, 0)
}

func TestAtWrongRankPanics(t *testing.T) {
	defer expectPanic(t, "At with wrong rank")
	New(2, 2).At(1)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Fatal("Reshape must share data")
	}
}

func TestReshapeVolumeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Reshape with wrong volume")
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestRow(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
}

func TestEqualAndAlmostEqual(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2.0005}, 2)
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.AlmostEqual(b, 1e-3) {
		t.Fatal("AlmostEqual within tolerance should hold")
	}
	if a.AlmostEqual(New(3), 1) {
		t.Fatal("AlmostEqual must reject shape mismatch")
	}
}

func TestSlice2DClampsAndCopies(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, 3)
	b := x.Slice2D(1, 5, 1, 5) // clamped to [1:3, 1:3]
	want := FromSlice([]float32{5, 6, 8, 9}, 2, 2)
	if !b.Equal(want) {
		t.Fatalf("Slice2D = %v, want %v", b, want)
	}
	b.Set(0, 0, 0)
	if x.At(1, 1) != 5 {
		t.Fatal("Slice2D must copy, not alias")
	}
}

func TestSetBlock2D(t *testing.T) {
	x := New(3, 3)
	x.SetBlock2D(FromSlice([]float32{1, 2, 3, 4}, 2, 2), 1, 1)
	if x.At(1, 1) != 1 || x.At(2, 2) != 4 || x.At(0, 0) != 0 {
		t.Fatalf("SetBlock2D wrong: %v", x.Data())
	}
}

func TestSetBlock2DOutOfBoundsPanics(t *testing.T) {
	defer expectPanic(t, "SetBlock2D out of bounds")
	New(2, 2).SetBlock2D(New(2, 2), 1, 1)
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float32{0.1, 0.9, 0.3, 0.5, 0.5, 0.2}, 2, 3)
	if got := x.ArgMaxRow(0); got != 1 {
		t.Fatalf("ArgMaxRow(0) = %d, want 1", got)
	}
	if got := x.ArgMaxRow(1); got != 0 {
		t.Fatalf("ArgMaxRow(1) = %d, want 0 (first of tie)", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "MatMul shape mismatch")
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 7, 7)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.AlmostEqual(a, 1e-6) {
		t.Fatal("A × I must equal A")
	}
	if got := MatMul(id, a); !got.AlmostEqual(a, 1e-6) {
		t.Fatal("I × A must equal A")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Big enough to cross matmulParallelThreshold.
	a := randTensor(rng, 80, 100)
	b := randTensor(rng, 100, 90)
	got := MatMul(a, b)
	want := New(80, 90)
	matmulRows(want.Data(), a.Data(), b.Data(), 0, 80, 100, 90)
	if !got.AlmostEqual(want, 1e-4) {
		t.Fatal("parallel MatMul disagrees with serial kernel")
	}
}

func TestMatMulTransBMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 5, 8)
	w := randTensor(rng, 6, 8) // (out,in) layout
	got := MatMulTransB(a, w)
	want := MatMul(a, Transpose(w))
	if !got.AlmostEqual(want, 1e-5) {
		t.Fatalf("MatMulTransB = %v, want %v", got, want)
	}
}

func TestMatMulTransBParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randTensor(rng, 64, 128)
	w := randTensor(rng, 64, 128)
	got := MatMulTransB(a, w)
	want := New(64, 64)
	matmulTransBRows(want.Data(), a.Data(), w.Data(), 0, 64, 128, 64)
	if !got.AlmostEqual(want, 1e-4) {
		t.Fatal("parallel MatMulTransB disagrees with serial kernel")
	}
}

// Property: (A×B)×C == A×(B×C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b, c := randTensor(r, m, k), randTensor(r, k, n), randTensor(r, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.AlmostEqual(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: distributivity A×(B+C) == A×B + A×C.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b, c := randTensor(r, m, k), randTensor(r, k, n), randTensor(r, k, n)
		sum := b.Clone()
		AddInto(sum, c)
		left := MatMul(a, sum)
		right := MatMul(a, b)
		AddInto(right, MatMul(a, c))
		return left.AlmostEqual(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose(x)
	want := FromSlice([]float32{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.Equal(want) {
		t.Fatalf("Transpose = %v, want %v", got, want)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		x := randTensor(r, m, n)
		return Transpose(Transpose(x)).Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReLU(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 2}, 3)
	ReLUInto(x)
	want := FromSlice([]float32{0, 0, 2}, 3)
	if !x.Equal(want) {
		t.Fatalf("ReLU = %v", x.Data())
	}
}

func TestSigmoidBounds(t *testing.T) {
	x := FromSlice([]float32{-100, 0, 100}, 3)
	SigmoidInto(x)
	if x.At(0) < 0 || x.At(0) > 1e-6 {
		t.Fatalf("sigmoid(-100) = %v", x.At(0))
	}
	if math.Abs(float64(x.At(1))-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", x.At(1))
	}
	if x.At(2) < 1-1e-6 || x.At(2) > 1 {
		t.Fatalf("sigmoid(100) = %v", x.At(2))
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randTensor(rng, 4, 9)
	SoftmaxRowsInto(x)
	for i := 0; i < 4; i++ {
		var sum float64
		for _, v := range x.Row(i) {
			if v < 0 {
				t.Fatalf("softmax produced negative value %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v, want 1", i, sum)
		}
	}
}

func TestSoftmaxStableOnLargeInputs(t *testing.T) {
	x := FromSlice([]float32{1000, 1001, 1002}, 1, 3)
	SoftmaxRowsInto(x)
	for _, v := range x.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax not stable: %v", x.Data())
		}
	}
}

func TestAddBiasRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	AddBiasRowsInto(x, FromSlice([]float32{10, 20}, 2))
	want := FromSlice([]float32{11, 22, 13, 24}, 2, 2)
	if !x.Equal(want) {
		t.Fatalf("AddBiasRows = %v", x.Data())
	}
}

func TestDotAndL2(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := L2Distance(a, b); math.Abs(got-math.Sqrt(27)) > 1e-9 {
		t.Fatalf("L2 = %v", got)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1×1 identity kernel over 1 channel must reproduce the input.
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	k := FromSlice([]float32{1}, 1, 1, 1, 1)
	out := Conv2D(in, k)
	if !out.Reshape(1, 2, 2, 1).AlmostEqual(in, 1e-6) {
		t.Fatalf("identity conv = %v", out.Data())
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3×3 single-channel input, 2×2 all-ones kernel: sliding window sums.
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3, 1)
	k := FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2, 1)
	out := Conv2D(in, k)
	want := FromSlice([]float32{12, 16, 24, 28}, 1, 2, 2, 1)
	if !out.AlmostEqual(want, 1e-6) {
		t.Fatalf("conv = %v, want %v", out.Data(), want.Data())
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// 1×1 kernel mixing 2 channels into 1: out = 2*c0 + 3*c1.
	in := FromSlice([]float32{1, 10, 2, 20}, 1, 1, 2, 2)
	k := FromSlice([]float32{2, 3}, 1, 1, 1, 2)
	out := Conv2D(in, k)
	want := FromSlice([]float32{32, 64}, 1, 1, 2, 1)
	if !out.AlmostEqual(want, 1e-6) {
		t.Fatalf("conv = %v, want %v", out.Data(), want.Data())
	}
}

// Property: the im2col spatial rewriting computes the same convolution as
// the direct kernel — the correctness condition behind the paper's
// relation-centric conversion of convolutions.
func TestConv2DIm2ColEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(2)
		h := 2 + r.Intn(6)
		w := 2 + r.Intn(6)
		c := 1 + r.Intn(3)
		kh := 1 + r.Intn(h)
		kw := 1 + r.Intn(w)
		oc := 1 + r.Intn(4)
		in := randTensor(r, n, h, w, c)
		k := randTensor(r, oc, kh, kw, c)
		direct := Conv2D(in, k)
		rewritten := Conv2DIm2Col(in, k)
		return direct.AlmostEqual(rewritten, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColShape(t *testing.T) {
	in := New(2, 5, 6, 3)
	f := Im2Col(in, 2, 2)
	if f.Dim(0) != 2*4*5 || f.Dim(1) != 2*2*3 {
		t.Fatalf("Im2Col shape = %v", f.Shape())
	}
}

func randTensor(r *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data() {
		t.Data()[i] = float32(r.NormFloat64())
	}
	return t
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s should panic", what)
	}
}
