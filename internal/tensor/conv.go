package tensor

import "fmt"

// Conv2D computes a 2-D convolution with stride 1 and no padding — the
// configuration used by every convolutional model in the paper's evaluation
// (Table 2). Input is NHWC (batch, height, width, channels) and the kernel is
// OHWI (outChannels, kh, kw, inChannels). The output is NHWC with
// outH = h-kh+1 and outW = w-kw+1.
func Conv2D(input, kernel *Tensor) *Tensor {
	n, h, w, c, oc, kh, kw := convDims(input, kernel)
	oh, ow := h-kh+1, w-kw+1
	out := New(n, oh, ow, oc)
	for b := 0; b < n; b++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for o := 0; o < oc; o++ {
					var sum float32
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							inOff := ((b*h+y+ky)*w + x + kx) * c
							kOff := ((o*kh+ky)*kw + kx) * c
							for ch := 0; ch < c; ch++ {
								sum += input.data[inOff+ch] * kernel.data[kOff+ch]
							}
						}
					}
					out.data[((b*oh+y)*ow+x)*oc+o] = sum
				}
			}
		}
	}
	return out
}

func convDims(input, kernel *Tensor) (n, h, w, c, oc, kh, kw int) {
	if input.Rank() != 4 || kernel.Rank() != 4 {
		panic("tensor: Conv2D requires NHWC input and OHWI kernel")
	}
	n, h, w, c = input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oc, kh, kw = kernel.shape[0], kernel.shape[1], kernel.shape[2]
	if kernel.shape[3] != c {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch: input %d, kernel %d", c, kernel.shape[3]))
	}
	if kh > h || kw > w {
		panic(fmt.Sprintf("tensor: Conv2D kernel %dx%d larger than input %dx%d", kh, kw, h, w))
	}
	return
}

// Im2Col applies the spatial rewriting used by the relation-centric
// representation: each output position of the convolution becomes one row of
// a patch matrix F of shape (n·outH·outW, kh·kw·c), so the convolution
// reduces to the matrix product F × Kᵀ with K the (oc, kh·kw·c) flattened
// kernel. For the 1×1 kernels of Table 2 this is exactly the paper's
// "flatten each image into a matrix" transformation.
func Im2Col(input *Tensor, kh, kw int) *Tensor {
	if input.Rank() != 4 {
		panic("tensor: Im2Col requires NHWC input")
	}
	n, h, w, c := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col kernel %dx%d larger than input %dx%d", kh, kw, h, w))
	}
	cols := kh * kw * c
	out := New(n*oh*ow, cols)
	row := 0
	for b := 0; b < n; b++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				dst := out.data[row*cols : (row+1)*cols]
				di := 0
				for ky := 0; ky < kh; ky++ {
					srcOff := ((b*h+y+ky)*w + x) * c
					copy(dst[di:di+kw*c], input.data[srcOff:srcOff+kw*c])
					di += kw * c
				}
				row++
			}
		}
	}
	return out
}

// FlattenKernel reshapes an OHWI kernel into the (oc, kh·kw·c) matrix K used
// by the im2col matmul form. The data is shared with the input tensor.
func FlattenKernel(kernel *Tensor) *Tensor {
	if kernel.Rank() != 4 {
		panic("tensor: FlattenKernel requires an OHWI kernel")
	}
	oc := kernel.shape[0]
	return kernel.Reshape(oc, kernel.shape[1]*kernel.shape[2]*kernel.shape[3])
}

// Conv2DIm2Col computes the same convolution as Conv2D via the im2col
// spatial rewriting followed by a matrix multiplication — the form the
// relation-centric representation converts into a join + aggregation.
func Conv2DIm2Col(input, kernel *Tensor) *Tensor {
	n, h, w, _, oc, kh, kw := convDims(input, kernel)
	oh, ow := h-kh+1, w-kw+1
	f := Im2Col(input, kh, kw)
	k := FlattenKernel(kernel)
	prod := MatMulTransB(f, k) // (n·oh·ow, oc)
	return prod.Reshape(n, oh, ow, oc)
}
