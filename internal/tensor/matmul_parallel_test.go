package tensor

import (
	"math/rand"
	"runtime"
	"testing"

	"tensorbase/internal/parallel"
)

func TestMatMulAddIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 7, 11)
	b := randTensor(rng, 11, 5)
	want := MatMul(a, b)

	out := New(7, 5)
	MatMulAddInto(out, a, b)
	if !out.Equal(want) {
		t.Fatal("one accumulation into zeros must equal MatMul")
	}
	MatMulAddInto(out, a, b)
	for i, v := range out.Data() {
		w := 2 * want.Data()[i]
		if diff := v - w; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("elem %d: %v, want %v (accumulation lost)", i, v, w)
		}
	}
}

func TestMatMulAddIntoShapePanics(t *testing.T) {
	for _, c := range []struct {
		name      string
		out, a, b *Tensor
	}{
		{"inner mismatch", New(2, 2), New(2, 3), New(4, 2)},
		{"out mismatch", New(3, 3), New(2, 3), New(3, 2)},
		{"rank", New(2, 2), New(2, 2, 1), New(2, 2)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: must panic", c.name)
				}
			}()
			MatMulAddInto(c.out, c.a, c.b)
		}()
	}
}

// The fused kernel is the per-k-step inner call of the blocked multiply;
// it must not allocate at all.
func TestMatMulAddIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 64, 64)
	b := randTensor(rng, 64, 64)
	out := New(64, 64)
	if allocs := testing.AllocsPerRun(20, func() {
		MatMulAddInto(out, a, b)
	}); allocs != 0 {
		t.Fatalf("MatMulAddInto allocates %.1f objects per call, want 0", allocs)
	}
}

// withProcs widens GOMAXPROCS so the fan-out path is reachable on small CI
// machines, restoring it afterwards.
func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// withBudget installs a private compute budget as the process default for
// the test's duration.
func withBudget(t *testing.T, n int) *parallel.Budget {
	t.Helper()
	b := parallel.NewBudget(n)
	prev := parallel.SetDefault(b)
	t.Cleanup(func() { parallel.SetDefault(prev) })
	return b
}

// Kernels must draw their extra goroutines from the shared budget: with the
// budget drained the kernel runs serially, and it never holds tokens after
// returning. This is the oversubscription regression test of Sec. 3 — the
// engine's block workers and the kernels cannot multiply their thread
// counts because both debit one account.
func TestKernelFanOutRespectsSharedBudget(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 128, 128)
	b := randTensor(rng, 128, 128) // 128³ = 2M mul-adds, over the threshold
	want := MatMul(a, b)           // computed under the real default budget

	drained := withBudget(t, 2)
	drained.Acquire(2)
	drained.ResetHighWater()
	got := MatMul(a, b)
	drained.Release(2)
	if hw := drained.HighWater(); hw > 2 {
		t.Fatalf("kernel pushed high water to %d with budget drained", hw)
	}
	if !got.Equal(want) {
		t.Fatal("serial-degraded kernel changed the result")
	}

	open := withBudget(t, 4)
	got = MatMul(a, b)
	if hw := open.HighWater(); hw > 4 {
		t.Fatalf("kernel high water %d exceeds budget 4", hw)
	}
	if open.InUse() != 0 {
		t.Fatalf("kernel leaked %d tokens", open.InUse())
	}
	if !got.Equal(want) {
		t.Fatal("parallel kernel result is not bit-identical to serial")
	}
}

func TestSetMaxWorkersCapsKernel(t *testing.T) {
	withProcs(t, 4)
	b := withBudget(t, 4)
	SetMaxWorkers(1)
	defer SetMaxWorkers(0)
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 128, 128)
	y := randTensor(rng, 128, 128)
	_ = MatMul(x, y)
	if hw := b.HighWater(); hw != 0 {
		t.Fatalf("capped kernel still took %d tokens", hw)
	}
}

func TestReuse2D(t *testing.T) {
	var v Tensor
	buf := []float32{1, 2, 3, 4, 5, 6}
	v.Reuse2D(buf, 2, 3)
	if v.Dim(0) != 2 || v.Dim(1) != 3 || &v.Data()[0] != &buf[0] {
		t.Fatal("Reuse2D must alias the caller's buffer")
	}
	v.Reuse2D(buf[:4], 2, 2) // shrinking reuses the shape slice
	if v.Dim(0) != 2 || v.Dim(1) != 2 {
		t.Fatalf("reshaped to %v", v.Shape())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	v.Reuse2D(buf, 2, 2)
}
