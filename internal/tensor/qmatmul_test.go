package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeRowsQ8(t *testing.T) {
	src := []float32{
		1, -2, 4, // maxAbs 4 → scale 4/127
		0, 0, 0, // zero row → scale 1, exact zeros
		254, -127, 0, // maxAbs 254 → scale 2
	}
	dst := make([]int8, 9)
	scales := make([]float32, 3)
	QuantizeRowsQ8(dst, scales, src, 3, 3)

	if scales[1] != 1 {
		t.Fatalf("zero row scale = %v, want 1", scales[1])
	}
	if dst[3] != 0 || dst[4] != 0 || dst[5] != 0 {
		t.Fatalf("zero row quantized to %v", dst[3:6])
	}
	if scales[2] != 2 {
		t.Fatalf("row 2 scale = %v, want 2", scales[2])
	}
	if dst[6] != 127 || dst[7] != -64 || dst[8] != 0 {
		t.Fatalf("row 2 quantized to %v, want [127 -64 0]", dst[6:9])
	}
	// Every row's maxAbs element must map to ±127 exactly.
	if dst[2] != 127 {
		t.Fatalf("row 0 max element quantized to %d, want 127", dst[2])
	}
}

func TestQuantizeRowsQ8Clamps(t *testing.T) {
	// A value slightly above maxAbs would round past 127 without the clamp;
	// construct it by quantizing a row whose scale derives from an earlier
	// element via shared buffers is impossible, so just verify ±127 bounds
	// hold for extreme ratios.
	src := []float32{math.MaxFloat32, -math.MaxFloat32, 1e-20}
	dst := make([]int8, 3)
	scales := make([]float32, 1)
	QuantizeRowsQ8(dst, scales, src, 1, 3)
	if dst[0] != 127 || dst[1] != -127 {
		t.Fatalf("extremes quantized to %v, want ±127", dst[:2])
	}
}

// TestQuantizePackQ8AMatchesSeparate: the fused quantize+pack must produce
// exactly the lanes, sums and scales of QuantizeRowsQ8 followed by PackQ8A
// — including ragged k (partial last word), pad words, and reuse of dirty
// scratch buffers (the serving path pools them).
func TestQuantizePackQ8AMatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range [][2]int{{1, 1}, {3, 2}, {5, 3}, {4, 28}, {7, 29}, {2, 30}, {9, 31}, {6, 256}} {
		m, k := dims[0], dims[1]
		src := make([]float32, m*k)
		for i := range src {
			src[i] = float32(rng.NormFloat64() * 10)
		}
		// One all-zero row exercises the scale=1 special case.
		if m > 1 {
			for j := 0; j < k; j++ {
				src[k+j] = 0
			}
		}
		words := Q8Lanes(k)
		a8 := make([]int8, m*k)
		wantScales := make([]float32, m)
		QuantizeRowsQ8(a8, wantScales, src, m, k)
		wantLanes := make([]uint64, m*words)
		wantSums := make([]int32, m)
		PackQ8A(wantLanes, wantSums, a8, m, k)

		// Dirty scratch: the fused pass must overwrite every word.
		gotLanes := make([]uint64, m*words)
		gotSums := make([]int32, m)
		gotScales := make([]float32, m)
		for i := range gotLanes {
			gotLanes[i] = ^uint64(0)
		}
		for i := 0; i < m; i++ {
			gotSums[i], gotScales[i] = -1, -1
		}
		QuantizePackQ8A(gotLanes, gotSums, gotScales, src, m, k)

		for i := range wantLanes {
			if gotLanes[i] != wantLanes[i] {
				t.Fatalf("(%d,%d) lane %d: fused %#x, separate %#x", m, k, i, gotLanes[i], wantLanes[i])
			}
		}
		for i := 0; i < m; i++ {
			if gotSums[i] != wantSums[i] {
				t.Fatalf("(%d,%d) sum %d: fused %d, separate %d", m, k, i, gotSums[i], wantSums[i])
			}
			if math.Float32bits(gotScales[i]) != math.Float32bits(wantScales[i]) {
				t.Fatalf("(%d,%d) scale %d: fused %v, separate %v", m, k, i, gotScales[i], wantScales[i])
			}
		}
	}
}

// q8Reference computes the quantized product exactly in integer arithmetic.
func q8Reference(a8 []int8, aScales []float32, b8 []int8, bScales []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum int64
			for p := 0; p < k; p++ {
				sum += int64(a8[i*k+p]) * int64(b8[j*k+p])
			}
			out[i*n+j] = float32(sum) * aScales[i] * bScales[j]
		}
	}
	return out
}

func TestMatMulQ8IntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {4, 28, 9}, {17, 13, 2}, {8, 4, 4},
	} {
		a8 := make([]int8, c.m*c.k)
		b8 := make([]int8, c.n*c.k)
		for i := range a8 {
			a8[i] = int8(rng.Intn(255) - 127)
		}
		for i := range b8 {
			b8[i] = int8(rng.Intn(255) - 127)
		}
		aScales := make([]float32, c.m)
		bScales := make([]float32, c.n)
		for i := range aScales {
			aScales[i] = rng.Float32() + 0.01
		}
		for i := range bScales {
			bScales[i] = rng.Float32() + 0.01
		}
		want := q8Reference(a8, aScales, b8, bScales, c.m, c.k, c.n)
		out := New(c.m, c.n)
		MatMulQ8Into(out, a8, aScales, b8, bScales, c.m, c.k, c.n)
		for i, v := range out.Data() {
			if v != want[i] {
				t.Fatalf("(%d,%d,%d): elem %d = %v, want %v", c.m, c.k, c.n, i, v, want[i])
			}
		}
	}
}

// The int8 kernel must stay bit-identical when it fans out across row bands:
// integer accumulation is order-independent and bands write disjoint rows.
func TestMatMulQ8ParallelBitIdentical(t *testing.T) {
	withProcs(t, 4)
	withBudget(t, 4)
	rng := rand.New(rand.NewSource(8))
	m, k, n := 128, 64, 64 // 512k mul-adds, over the fan-out threshold
	a8 := make([]int8, m*k)
	b8 := make([]int8, n*k)
	for i := range a8 {
		a8[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b8 {
		b8[i] = int8(rng.Intn(255) - 127)
	}
	aScales := make([]float32, m)
	bScales := make([]float32, n)
	for i := range aScales {
		aScales[i] = rng.Float32() + 0.01
	}
	for i := range bScales {
		bScales[i] = rng.Float32() + 0.01
	}

	SetMaxWorkers(1)
	serial := New(m, n)
	MatMulQ8Into(serial, a8, aScales, b8, bScales, m, k, n)
	SetMaxWorkers(0)

	parallel := New(m, n)
	MatMulQ8Into(parallel, a8, aScales, b8, bScales, m, k, n)
	if !parallel.Equal(serial) {
		t.Fatal("parallel int8 GEMM differs from serial")
	}
}

// The wide-k fallback must agree with the int32 kernel where both apply.
func TestMatMulQ8WideKernelAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 3, 33, 5
	a8 := make([]int8, m*k)
	b8 := make([]int8, n*k)
	for i := range a8 {
		a8[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b8 {
		b8[i] = int8(rng.Intn(255) - 127)
	}
	aScales := []float32{0.5, 1, 2}
	bScales := []float32{1, 0.25, 3, 0.125, 1}
	narrow := make([]float32, m*n)
	wide := make([]float32, m*n)
	matmulQ8Rows(narrow, a8, aScales, b8, bScales, 0, m, k, n)
	matmulQ8RowsWide(wide, a8, aScales, b8, bScales, 0, m, k, n)
	for i := range narrow {
		if narrow[i] != wide[i] {
			t.Fatalf("elem %d: narrow %v, wide %v", i, narrow[i], wide[i])
		}
	}
}

// The SWAR-packed kernel must be bit-identical to the scalar int8 kernel:
// same integer dot, same dequantization expression.
func TestMatMulQ8PackedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, c := range []struct{ m, k, n int }{
		{1, 1, 1}, {1, 3, 1}, {2, 4, 3}, {5, 28, 7}, {4, 29, 6}, {3, 30, 9}, {8, 256, 5},
	} {
		a8 := make([]int8, c.m*c.k)
		b8 := make([]int8, c.n*c.k)
		for i := range a8 {
			a8[i] = int8(rng.Intn(255) - 127)
		}
		for i := range b8 {
			b8[i] = int8(rng.Intn(255) - 127)
		}
		aScales := make([]float32, c.m)
		bScales := make([]float32, c.n)
		for i := range aScales {
			aScales[i] = rng.Float32() + 0.01
		}
		for i := range bScales {
			bScales[i] = rng.Float32() + 0.01
		}
		want := New(c.m, c.n)
		MatMulQ8Into(want, a8, aScales, b8, bScales, c.m, c.k, c.n)

		words := Q8Lanes(c.k)
		aLanes := make([]uint64, c.m*words)
		aSums := make([]int32, c.m)
		bLanes := make([]uint64, Q8BLanes(c.n, c.k))
		bSums := make([]int32, c.n)
		PackQ8A(aLanes, aSums, a8, c.m, c.k)
		PackQ8B(bLanes, bSums, b8, c.n, c.k)
		got := New(c.m, c.n)
		MatMulQ8PackedInto(got, aLanes, aSums, aScales, bLanes, bSums, bScales, c.m, c.k, c.n)
		if !got.Equal(want) {
			t.Fatalf("(%d,%d,%d): packed kernel differs from scalar int8 kernel", c.m, c.k, c.n)
		}
	}
}

func TestMatMulQ8PackedParallelBitIdentical(t *testing.T) {
	withProcs(t, 4)
	withBudget(t, 4)
	rng := rand.New(rand.NewSource(14))
	m, k, n := 128, 64, 64
	a8 := make([]int8, m*k)
	b8 := make([]int8, n*k)
	for i := range a8 {
		a8[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b8 {
		b8[i] = int8(rng.Intn(255) - 127)
	}
	aScales := make([]float32, m)
	bScales := make([]float32, n)
	for i := range aScales {
		aScales[i] = rng.Float32() + 0.01
	}
	for i := range bScales {
		bScales[i] = rng.Float32() + 0.01
	}
	words := Q8Lanes(k)
	aLanes := make([]uint64, m*words)
	aSums := make([]int32, m)
	bLanes := make([]uint64, Q8BLanes(n, k))
	bSums := make([]int32, n)
	PackQ8A(aLanes, aSums, a8, m, k)
	PackQ8B(bLanes, bSums, b8, n, k)

	SetMaxWorkers(1)
	serial := New(m, n)
	MatMulQ8PackedInto(serial, aLanes, aSums, aScales, bLanes, bSums, bScales, m, k, n)
	SetMaxWorkers(0)
	par := New(m, n)
	MatMulQ8PackedInto(par, aLanes, aSums, aScales, bLanes, bSums, bScales, m, k, n)
	if !par.Equal(serial) {
		t.Fatal("parallel packed int8 GEMM differs from serial")
	}
}

// seedMatMulTransBRows is the pre-unrolling kernel, kept verbatim as the
// baseline the unrolled kernel is benchmarked and cross-checked against.
func seedMatMulTransBRows(out, a, b []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var sum float32
			for p, av := range arow {
				sum += av * brow[p]
			}
			orow[j] = sum
		}
	}
}

func TestMatMulTransBUnrolledMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, c := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 28, 5}, {7, 13, 4}, {5, 3, 9}, {256, 28, 2},
	} {
		a := randTensor(rng, c.m, c.k)
		b := randTensor(rng, c.n, c.k)
		want := New(c.m, c.n)
		seedMatMulTransBRows(want.Data(), a.Data(), b.Data(), 0, c.m, c.k, c.n)
		got := MatMulTransB(a, b)
		if !got.AlmostEqual(want, 1e-4) {
			t.Fatalf("(%d,%d,%d): unrolled kernel diverged from seed", c.m, c.k, c.n)
		}
	}
}

// The sparse-dispatch accumulate must agree with the dense kernel on both
// sides of the zero-fraction threshold.
func TestMatMulAddAutoInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, zeroFrac := range []float64{0, 0.3, 0.8, 1} {
		a := randTensor(rng, 19, 23)
		for i := range a.Data() {
			if rng.Float64() < zeroFrac {
				a.Data()[i] = 0
			}
		}
		b := randTensor(rng, 23, 11)
		want := New(19, 11)
		MatMulAddInto(want, a, b)
		MatMulAddInto(want, a, b) // accumulate twice

		got := New(19, 11)
		MatMulAddAutoInto(got, a, b)
		MatMulAddAutoInto(got, a, b)
		if !got.AlmostEqual(want, 1e-5) {
			t.Fatalf("zeroFrac %v: auto dispatch diverged from dense", zeroFrac)
		}
	}
}

func TestKernelCounters(t *testing.T) {
	before := Kernels()
	rng := rand.New(rand.NewSource(12))
	_ = MatMul(randTensor(rng, 4, 4), randTensor(rng, 4, 4)) // under threshold → serial
	a8 := []int8{1, 2}
	b8 := []int8{3, 4}
	MatMulQ8Into(New(1, 1), a8[:2], []float32{1}, b8[:2], []float32{1}, 1, 2, 1)
	after := Kernels()
	if after.SerialRuns <= before.SerialRuns {
		t.Fatal("serial kernel run not counted")
	}
	if after.Q8Calls != before.Q8Calls+1 {
		t.Fatalf("q8 calls %d → %d, want +1", before.Q8Calls, after.Q8Calls)
	}
}

// Fraud-FC-256 serving shapes: the batch × hidden layer dominates.
const (
	benchM = 256 // batch rows
	benchK = 28  // feature width
	benchN = 256 // hidden units
)

func benchOperands(rng *rand.Rand) (a, b *Tensor) {
	return randTensor(rng, benchM, benchK), randTensor(rng, benchN, benchK)
}

func BenchmarkKernelTransBSeed(bm *testing.B) {
	a, b := benchOperands(rand.New(rand.NewSource(20)))
	out := New(benchM, benchN)
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		seedMatMulTransBRows(out.Data(), a.Data(), b.Data(), 0, benchM, benchK, benchN)
	}
}

func BenchmarkKernelTransBUnrolled(bm *testing.B) {
	a, b := benchOperands(rand.New(rand.NewSource(20)))
	out := New(benchM, benchN)
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		matmulTransBRows(out.Data(), a.Data(), b.Data(), 0, benchM, benchK, benchN)
	}
}

func BenchmarkKernelQ8Packed(bm *testing.B) {
	rng := rand.New(rand.NewSource(20))
	a, b := benchOperands(rng)
	b8 := make([]int8, benchN*benchK)
	aScales := make([]float32, benchM)
	bScales := make([]float32, benchN)
	QuantizeRowsQ8(b8, bScales, b.Data(), benchN, benchK)
	words := Q8Lanes(benchK)
	aLanes := make([]uint64, benchM*words)
	aSums := make([]int32, benchM)
	bLanes := make([]uint64, Q8BLanes(benchN, benchK))
	bSums := make([]int32, benchN)
	PackQ8B(bLanes, bSums, b8, benchN, benchK)
	out := New(benchM, benchN)
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		// The serving path pays quantize + pack per batch; include both
		// via the fused single-pass form it actually calls.
		QuantizePackQ8A(aLanes, aSums, aScales, a.Data(), benchM, benchK)
		matmulQ8PackedRows(out.Data(), aLanes, aSums, aScales, bLanes, bSums, bScales, 0, benchM, benchK, benchN)
	}
}

func BenchmarkKernelQ8(bm *testing.B) {
	rng := rand.New(rand.NewSource(20))
	a, b := benchOperands(rng)
	a8 := make([]int8, benchM*benchK)
	b8 := make([]int8, benchN*benchK)
	aScales := make([]float32, benchM)
	bScales := make([]float32, benchN)
	QuantizeRowsQ8(b8, bScales, b.Data(), benchN, benchK)
	out := New(benchM, benchN)
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		// Include per-batch activation quantization: the serving path pays it.
		QuantizeRowsQ8(a8, aScales, a.Data(), benchM, benchK)
		matmulQ8Rows(out.Data(), a8, aScales, b8, bScales, 0, benchM, benchK, benchN)
	}
}
