package repl

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"tensorbase/internal/blockstore"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, replication")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q round-tripped to %q", payload, got)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] ^= 0x40 // flip a payload bit
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, errStreamBroken) {
		t.Fatalf("corrupt frame read = %v, want errStreamBroken", err)
	}
}

func TestFrameRejectsInsaneLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, errStreamBroken) {
		t.Fatalf("oversized length = %v, want errStreamBroken", err)
	}
}

func TestGroupRoundTrip(t *testing.T) {
	g := &groupMsg{
		Seq:  7,
		CSN:  42,
		Recs: [][]byte{[]byte("rec-one"), []byte("rec-two"), []byte("model-rec")},
	}
	got, err := decodeGroup(encodeGroup(g))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("group round-trip:\nsent %+v\ngot  %+v", g, got)
	}
}

func TestGroupRejectsTrailingBytes(t *testing.T) {
	b := encodeGroup(&groupMsg{Seq: 1, CSN: 1, Recs: [][]byte{[]byte("r")}})
	if _, err := decodeGroup(append(b, 0xEE)); !errors.Is(err, errStreamBroken) {
		t.Fatalf("trailing bytes = %v, want errStreamBroken", err)
	}
}

func TestResyncRoundTrip(t *testing.T) {
	m := &resyncMsg{
		Seq:  3,
		CSN:  99,
		Recs: [][]byte{[]byte("create"), []byte("insert")},
		Models: []modelManifest{
			{Name: "Fraud-FC-32", Acc: 0.95, Manifest: []byte("TBMF-manifest")},
		},
	}
	got, err := decodeResync(encodeResync(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("resync round-trip:\nsent %+v\ngot  %+v", m, got)
	}
}

func TestResyncRejectsTruncation(t *testing.T) {
	b := encodeResync(&resyncMsg{Seq: 1, CSN: 1, Models: []modelManifest{{Name: "m", Manifest: []byte("d")}}})
	for cut := 18; cut < len(b); cut += 3 {
		if _, err := decodeResync(b[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestBlockReqRoundTrip(t *testing.T) {
	var h1, h2 blockstore.Hash
	h1[0], h2[31] = 0xAB, 0xCD
	got, err := decodeBlockReq(encodeBlockReq([]blockstore.Hash{h1, h2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != h1 || got[1] != h2 {
		t.Fatalf("block request round-trip: %v", got)
	}
	// Empty requests are legal — a fully deduplicated replica sends one.
	if got, err := decodeBlockReq(encodeBlockReq(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty block request round-trip: (%v, %v)", got, err)
	}
	if _, err := decodeBlockReq(encodeBlockReq([]blockstore.Hash{h1})[:20]); !errors.Is(err, errStreamBroken) {
		t.Fatalf("truncated block request = %v, want errStreamBroken", err)
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	var h blockstore.Hash
	h[7] = 0x7E
	m := &blocksMsg{Seq: 11, Hashes: []blockstore.Hash{h}, Data: [][]byte{[]byte("payload")}}
	got, err := decodeBlocks(encodeBlocks(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("blocks round-trip:\nsent %+v\ngot  %+v", m, got)
	}
	if _, err := decodeBlocks(append(encodeBlocks(m), 0xEE)); !errors.Is(err, errStreamBroken) {
		t.Fatalf("trailing blocks bytes = %v, want errStreamBroken", err)
	}
}

func TestHelloAndHeartbeatRoundTrip(t *testing.T) {
	csn, err := decodeHello(encodeHello(1234))
	if err != nil || csn != 1234 {
		t.Fatalf("hello round-trip = (%d, %v)", csn, err)
	}
	if _, err := decodeHello([]byte{msgHello, 1}); !errors.Is(err, errStreamBroken) {
		t.Fatalf("short hello = %v", err)
	}
	seq, hcsn, err := decodeHeartbeat(encodeHeartbeat(9, 77))
	if err != nil || seq != 9 || hcsn != 77 {
		t.Fatalf("heartbeat round-trip = (%d, %d, %v)", seq, hcsn, err)
	}
}

func TestCheckSeq(t *testing.T) {
	var last uint64
	if dup, err := checkSeq(&last, 1); dup || err != nil {
		t.Fatalf("seq 1: dup=%v err=%v", dup, err)
	}
	if dup, err := checkSeq(&last, 1); !dup || err != nil {
		t.Fatalf("replayed seq 1: dup=%v err=%v, want duplicate", dup, err)
	}
	if dup, err := checkSeq(&last, 2); dup || err != nil {
		t.Fatalf("seq 2: dup=%v err=%v", dup, err)
	}
	if _, err := checkSeq(&last, 4); !errors.Is(err, errStreamBroken) {
		t.Fatalf("gapped seq 4 after 2 = %v, want errStreamBroken", err)
	}
}
