package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tensorbase/internal/engine"
	"tensorbase/internal/fault"
	"tensorbase/internal/wal"
)

// PrimaryOptions configures the shipping side.
type PrimaryOptions struct {
	// RingBytes caps the in-memory retention of encoded commit groups
	// (default 8 MiB). A replica whose applied CSN falls behind the ring's
	// floor is full-resynced from a snapshot — shrink this in tests to
	// force that path.
	RingBytes int
	// HeartbeatInterval is how often an idle stream sends its committed
	// CSN (default 100ms). Replicas treat ~4 missed heartbeats as a dead
	// or partitioned link.
	HeartbeatInterval time.Duration
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	return o
}

// Primary taps its engine's commit protocol and streams every published
// group to any number of attached replica connections. It implements
// engine.Shipper; NewPrimary installs it.
type Primary struct {
	db   *engine.DB
	ring *Ring
	opts PrimaryOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	shipped     atomic.Uint64 // commit groups entered into the ring
	resyncs     atomic.Uint64 // snapshots sent to lagging replicas
	heartbeats  atomic.Uint64
	streamDrops atomic.Uint64 // streams ended by transport errors
	truncates   atomic.Uint64 // WAL truncations observed (ring unaffected)
	active      atomic.Int64  // attached replica streams
}

// NewPrimary wraps db as a replication primary: installs the commit tap
// and starts an empty ring at the current committed horizon. Call Close to
// detach.
func NewPrimary(db *engine.DB, opts PrimaryOptions) *Primary {
	p := &Primary{
		db:    db,
		ring:  NewRing(opts.RingBytes),
		opts:  opts.withDefaults(),
		conns: make(map[net.Conn]struct{}),
	}
	db.SetShipper(p)
	// Commits before the tap never shipped: the floor starts at the
	// committed horizon so replicas below it resync. An Append racing this
	// call bootstraps the floor itself first, making Bootstrap a no-op.
	p.ring.Bootstrap(db.CommittedCSN())
	p.registerMetrics()
	return p
}

func (p *Primary) registerMetrics() {
	r := p.db.Registry()
	r.CounterFunc("tensorbase_repl_shipped_groups_total", "commit groups entered into the replication ring", func() float64 { return float64(p.shipped.Load()) })
	r.CounterFunc("tensorbase_repl_resyncs_total", "full snapshots sent to lagging replicas", func() float64 { return float64(p.resyncs.Load()) })
	r.CounterFunc("tensorbase_repl_heartbeats_total", "heartbeats sent across all streams", func() float64 { return float64(p.heartbeats.Load()) })
	r.CounterFunc("tensorbase_repl_stream_errors_total", "replica streams ended by transport errors", func() float64 { return float64(p.streamDrops.Load()) })
	r.GaugeFunc("tensorbase_repl_streams", "attached replica streams", func() float64 { return float64(p.active.Load()) })
	r.GaugeFunc("tensorbase_repl_ring_floor_csn", "oldest CSN replayable from the ring", func() float64 { return float64(p.ring.Floor()) })
}

// Ship implements engine.Shipper: called inside CSN publication, strictly
// in order. Encoding here is memcpy-bound; file reads for model blobs are
// deferred to send time, outside the commit path.
func (p *Primary) Ship(csn uint64, recs []*wal.Record) {
	enc := make([][]byte, len(recs))
	for i, r := range recs {
		enc[i] = wal.EncodeRecord(r)
	}
	p.ring.Append(csn, enc)
	p.shipped.Add(1)
}

// Truncated implements engine.Shipper. The ring's retention is in-memory
// and unaffected by WAL truncation; what a checkpoint does invalidate is
// model files referenced by buffered RecLoadModel records (their GC), and
// the send path converts that read failure into a resync.
func (p *Primary) Truncated(throughCSN uint64) { p.truncates.Add(1) }

// Stats is a snapshot of the primary's shipping counters.
type PrimaryStats struct {
	Shipped    uint64
	Resyncs    uint64
	Heartbeats uint64
	Streams    int64
	RingFloor  uint64
}

// Stats returns the primary's shipping counters.
func (p *Primary) Stats() PrimaryStats {
	return PrimaryStats{
		Shipped:    p.shipped.Load(),
		Resyncs:    p.resyncs.Load(),
		Heartbeats: p.heartbeats.Load(),
		Streams:    p.active.Load(),
		RingFloor:  p.ring.Floor(),
	}
}

// Attach serves one replica connection on its own goroutine. link, when
// non-nil, injects transport faults into every outgoing frame (tests).
func (p *Primary) Attach(conn net.Conn, link *fault.Link) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conns[conn] = struct{}{}
	p.mu.Unlock()
	go func() {
		p.active.Add(1)
		defer p.active.Add(-1)
		defer func() {
			conn.Close()
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
		if err := p.serve(conn, link); err != nil {
			p.streamDrops.Add(1)
		}
	}()
}

// Serve accepts replica connections until the listener closes.
func (p *Primary) Serve(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		p.Attach(conn, nil)
	}
}

// Close detaches the shipper, closes every stream, and wakes blocked
// senders. The engine itself is untouched.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.db.SetShipper(nil)
	p.ring.Close()
	for _, c := range conns {
		c.Close()
	}
}

// serve runs one replica stream: hello, catch-up from the replica's
// applied CSN (or a snapshot resync if the ring evicted it), then the live
// tail with heartbeats while idle.
func (p *Primary) serve(conn net.Conn, link *fault.Link) error {
	payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	pos, err := decodeHello(payload)
	if err != nil {
		return err
	}
	s := &faultySender{conn: conn, link: link}
	var seq uint64
	hb := time.NewTicker(p.opts.HeartbeatInterval)
	defer hb.Stop()
	for {
		recs, gap, ok := p.ring.TryNext(pos + 1)
		switch {
		case gap:
			seq++
			csn, err := p.sendResync(s, seq)
			if err != nil {
				return err
			}
			pos = csn
		case ok:
			seq++
			if err := p.sendGroup(s, seq, pos+1, recs); err != nil {
				if err == errModelGone {
					// A checkpoint GCed a model file a buffered record
					// references; the snapshot has the model in memory.
					seq++
					csn, rerr := p.sendResync(s, seq)
					if rerr != nil {
						return rerr
					}
					pos = csn
					continue
				}
				return err
			}
			pos = pos + 1
		default:
			if p.ring.Closed() {
				return nil
			}
			select {
			case <-p.ring.Pulse():
			case <-hb.C:
				seq++
				p.heartbeats.Add(1)
				if err := s.send(encodeHeartbeat(seq, p.db.CommittedCSN())); err != nil {
					return err
				}
			}
		}
	}
}

// errModelGone marks a buffered RecLoadModel whose file a checkpoint
// already collected — recoverable by resync, not a transport error.
var errModelGone = fmt.Errorf("repl: shipped model file already collected")

func (p *Primary) sendGroup(s *faultySender, seq, csn uint64, recs [][]byte) error {
	g := &groupMsg{Seq: seq, CSN: csn, Recs: recs, Blobs: make([][]byte, len(recs))}
	for i, rb := range recs {
		rec, err := wal.DecodeRecord(rb)
		if err != nil {
			return fmt.Errorf("repl: corrupt ring record: %w", err)
		}
		if rec.Type != wal.RecLoadModel {
			continue
		}
		blob, err := os.ReadFile(rec.File)
		if err != nil {
			return errModelGone
		}
		g.Blobs[i] = blob
	}
	return s.send(encodeGroup(g))
}

func (p *Primary) sendResync(s *faultySender, seq uint64) (uint64, error) {
	csn, recs, models, err := p.db.ReplicaSnapshot()
	if err != nil {
		return 0, err
	}
	m := &resyncMsg{Seq: seq, CSN: csn, Recs: make([][]byte, len(recs))}
	for i, r := range recs {
		m.Recs[i] = wal.EncodeRecord(r)
	}
	for _, mb := range models {
		m.Models = append(m.Models, modelBlob{Name: mb.Name, Acc: mb.Acc, Data: mb.Data})
	}
	p.resyncs.Add(1)
	return csn, s.send(encodeResync(m))
}

// faultySender frames and writes messages, routing each frame through the
// connection's fault.Link: drops are silent (the replica sees the seq gap
// and resets), a held frame is released after the next one (a one-slot
// reorder), duplicates are written twice, delays sleep in-line.
type faultySender struct {
	conn net.Conn
	link *fault.Link
	held []byte
}

func (s *faultySender) send(payload []byte) error {
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))

	v := s.link.Next()
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	switch {
	case v.Drop:
		return nil
	case v.Hold && s.held == nil:
		s.held = frame
		return nil
	}
	if _, err := s.conn.Write(frame); err != nil {
		return err
	}
	if v.Dup {
		if _, err := s.conn.Write(frame); err != nil {
			return err
		}
	}
	if s.held != nil {
		held := s.held
		s.held = nil
		if _, err := s.conn.Write(held); err != nil {
			return err
		}
		s.link.Released()
	}
	return nil
}
