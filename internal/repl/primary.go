package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tensorbase/internal/engine"
	"tensorbase/internal/fault"
	"tensorbase/internal/wal"
)

// PrimaryOptions configures the shipping side.
type PrimaryOptions struct {
	// RingBytes caps the in-memory retention of encoded commit groups
	// (default 8 MiB). A replica whose applied CSN falls behind the ring's
	// floor is full-resynced from a snapshot — shrink this in tests to
	// force that path.
	RingBytes int
	// HeartbeatInterval is how often an idle stream sends its committed
	// CSN (default 100ms). Replicas treat ~4 missed heartbeats as a dead
	// or partitioned link.
	HeartbeatInterval time.Duration
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	return o
}

// Primary taps its engine's commit protocol and streams every published
// group to any number of attached replica connections. It implements
// engine.Shipper; NewPrimary installs it.
type Primary struct {
	db   *engine.DB
	ring *Ring
	opts PrimaryOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	shipped     atomic.Uint64 // commit groups entered into the ring
	resyncs     atomic.Uint64 // snapshots sent to lagging replicas
	heartbeats  atomic.Uint64
	streamDrops atomic.Uint64 // streams ended by transport errors
	truncates   atomic.Uint64 // WAL truncations observed (ring unaffected)
	active      atomic.Int64  // attached replica streams
}

// NewPrimary wraps db as a replication primary: installs the commit tap
// and starts an empty ring at the current committed horizon. Call Close to
// detach.
func NewPrimary(db *engine.DB, opts PrimaryOptions) *Primary {
	p := &Primary{
		db:    db,
		ring:  NewRing(opts.RingBytes),
		opts:  opts.withDefaults(),
		conns: make(map[net.Conn]struct{}),
	}
	db.SetShipper(p)
	// Commits before the tap never shipped: the floor starts at the
	// committed horizon so replicas below it resync. An Append racing this
	// call bootstraps the floor itself first, making Bootstrap a no-op.
	p.ring.Bootstrap(db.CommittedCSN())
	p.registerMetrics()
	return p
}

func (p *Primary) registerMetrics() {
	r := p.db.Registry()
	r.CounterFunc("tensorbase_repl_shipped_groups_total", "commit groups entered into the replication ring", func() float64 { return float64(p.shipped.Load()) })
	r.CounterFunc("tensorbase_repl_resyncs_total", "full snapshots sent to lagging replicas", func() float64 { return float64(p.resyncs.Load()) })
	r.CounterFunc("tensorbase_repl_heartbeats_total", "heartbeats sent across all streams", func() float64 { return float64(p.heartbeats.Load()) })
	r.CounterFunc("tensorbase_repl_stream_errors_total", "replica streams ended by transport errors", func() float64 { return float64(p.streamDrops.Load()) })
	r.GaugeFunc("tensorbase_repl_streams", "attached replica streams", func() float64 { return float64(p.active.Load()) })
	r.GaugeFunc("tensorbase_repl_ring_floor_csn", "oldest CSN replayable from the ring", func() float64 { return float64(p.ring.Floor()) })
}

// Ship implements engine.Shipper: called inside CSN publication, strictly
// in order. Encoding here is memcpy-bound; a LOAD MODEL group is already
// self-contained (weight blocks and manifest are WAL records), so shipping
// never touches the filesystem.
func (p *Primary) Ship(csn uint64, recs []*wal.Record) {
	enc := make([][]byte, len(recs))
	for i, r := range recs {
		enc[i] = wal.EncodeRecord(r)
	}
	p.ring.Append(csn, enc)
	p.shipped.Add(1)
}

// Truncated implements engine.Shipper. The ring's retention is in-memory
// and unaffected by WAL truncation; buffered groups are self-contained
// (model weights ride as RecBlock records), so a checkpoint invalidates
// nothing the stream still needs.
func (p *Primary) Truncated(throughCSN uint64) { p.truncates.Add(1) }

// Stats is a snapshot of the primary's shipping counters.
type PrimaryStats struct {
	Shipped    uint64
	Resyncs    uint64
	Heartbeats uint64
	Streams    int64
	RingFloor  uint64
}

// Stats returns the primary's shipping counters.
func (p *Primary) Stats() PrimaryStats {
	return PrimaryStats{
		Shipped:    p.shipped.Load(),
		Resyncs:    p.resyncs.Load(),
		Heartbeats: p.heartbeats.Load(),
		Streams:    p.active.Load(),
		RingFloor:  p.ring.Floor(),
	}
}

// Attach serves one replica connection on its own goroutine. link, when
// non-nil, injects transport faults into every outgoing frame (tests).
func (p *Primary) Attach(conn net.Conn, link *fault.Link) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conns[conn] = struct{}{}
	p.mu.Unlock()
	go func() {
		p.active.Add(1)
		defer p.active.Add(-1)
		defer func() {
			conn.Close()
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
		if err := p.serve(conn, link); err != nil {
			p.streamDrops.Add(1)
		}
	}()
}

// Serve accepts replica connections until the listener closes.
func (p *Primary) Serve(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		p.Attach(conn, nil)
	}
}

// Close detaches the shipper, closes every stream, and wakes blocked
// senders. The engine itself is untouched.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.db.SetShipper(nil)
	p.ring.Close()
	for _, c := range conns {
		c.Close()
	}
}

// serve runs one replica stream: hello, catch-up from the replica's
// applied CSN (or a snapshot resync if the ring evicted it), then the live
// tail with heartbeats while idle.
func (p *Primary) serve(conn net.Conn, link *fault.Link) error {
	payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	pos, err := decodeHello(payload)
	if err != nil {
		return err
	}
	s := &faultySender{conn: conn, link: link}
	var seq uint64
	hb := time.NewTicker(p.opts.HeartbeatInterval)
	defer hb.Stop()
	for {
		recs, gap, ok := p.ring.TryNext(pos + 1)
		switch {
		case gap:
			csn, err := p.sendResync(s, conn, &seq)
			if err != nil {
				return err
			}
			pos = csn
		case ok:
			seq++
			if err := p.sendGroup(s, seq, pos+1, recs); err != nil {
				return err
			}
			pos = pos + 1
		default:
			if p.ring.Closed() {
				return nil
			}
			select {
			case <-p.ring.Pulse():
			case <-hb.C:
				seq++
				p.heartbeats.Add(1)
				if err := s.send(encodeHeartbeat(seq, p.db.CommittedCSN())); err != nil {
					return err
				}
			}
		}
	}
}

func (p *Primary) sendGroup(s *faultySender, seq, csn uint64, recs [][]byte) error {
	return s.send(encodeGroup(&groupMsg{Seq: seq, CSN: csn, Recs: recs}))
}

// sendResync runs the snapshot handshake: ship the records and model
// manifests, read back the replica's missing-block request, answer with
// exactly those blocks. Every failure mode — the resync frame dropped by
// the fault injector, the replica gone, a block swept between snapshot and
// fetch — surfaces as a stream error here, and the replica's reconnect
// path converges on a fresh hello.
func (p *Primary) sendResync(s *faultySender, conn net.Conn, seq *uint64) (uint64, error) {
	csn, recs, models, err := p.db.ReplicaSnapshot()
	if err != nil {
		return 0, err
	}
	*seq++
	m := &resyncMsg{Seq: *seq, CSN: csn, Recs: make([][]byte, len(recs))}
	for i, r := range recs {
		m.Recs[i] = wal.EncodeRecord(r)
	}
	for _, mb := range models {
		m.Models = append(m.Models, modelManifest{Name: mb.Name, Acc: mb.Acc, Manifest: mb.Manifest})
	}
	p.resyncs.Add(1)
	if err := s.send(encodeResync(m)); err != nil {
		return 0, err
	}
	// The replica always answers, even with an empty request; the deadline
	// guards against one that died mid-handshake (its conn close also
	// unblocks this read immediately).
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return 0, err
	}
	hashes, err := decodeBlockReq(payload)
	if err != nil {
		return 0, err
	}
	*seq++
	reply := &blocksMsg{Seq: *seq, Hashes: hashes, Data: make([][]byte, len(hashes))}
	for i, h := range hashes {
		data, ok := p.db.BlockPayload(h)
		if !ok {
			return 0, fmt.Errorf("repl: replica requested unknown block %s", h)
		}
		reply.Data[i] = data
	}
	return csn, s.send(encodeBlocks(reply))
}

// faultySender frames and writes messages, routing each frame through the
// connection's fault.Link: drops are silent (the replica sees the seq gap
// and resets), a held frame is released after the next one (a one-slot
// reorder), duplicates are written twice, delays sleep in-line.
type faultySender struct {
	conn net.Conn
	link *fault.Link
	held []byte
}

func (s *faultySender) send(payload []byte) error {
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))

	v := s.link.Next()
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	switch {
	case v.Drop:
		return nil
	case v.Hold && s.held == nil:
		s.held = frame
		return nil
	}
	if _, err := s.conn.Write(frame); err != nil {
		return err
	}
	if v.Dup {
		if _, err := s.conn.Write(frame); err != nil {
			return err
		}
	}
	if s.held != nil {
		held := s.held
		s.held = nil
		if _, err := s.conn.Write(held); err != nil {
			return err
		}
		s.link.Released()
	}
	return nil
}
