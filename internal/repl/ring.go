// Package repl is the log-shipping replication tier: a primary taps the
// engine's commit protocol (engine.Shipper), retains recent commit groups
// in an in-memory ring, and streams them over a CRC-framed transport to
// replicas that replay each group into their own engine and serve snapshot
// reads at their applied CSN. A replica that falls behind the ring's
// retention — the shipping-level analogue of a checkpoint truncating the
// WAL under it — full-resyncs from a logical snapshot instead.
//
// The stream carries sequence numbers on every frame; any gap, reorder, or
// CRC failure resets the stream and the replica reconnects with its
// applied CSN, so transport faults (see fault.Link) degrade to retries,
// never to divergence. Correctness flows from the engine's own commit
// protocol: groups apply through the replica's WAL with the same
// commit-record gating recovery uses, so a replica killed mid-apply comes
// back to its last applied CSN and the stream re-delivers.
package repl

import (
	"sync"
)

// group is one published commit: the CSN and its encoded WAL records
// (shared with the sender goroutines; never mutated after append).
type group struct {
	csn   uint64
	recs  [][]byte // wal.EncodeRecord payloads
	bytes int
}

// Ring retains recent commit groups for catch-up replay. Eviction is
// byte-capped: the floor rises as old groups fall off, and a replica whose
// applied CSN sank below the floor must resync. The ring orders groups by
// CSN with no gaps — the engine ships every CSN, aborts included (as
// empty groups).
type Ring struct {
	mu       sync.Mutex
	pulse    chan struct{} // closed and replaced on every Append/Close
	groups   []group       // groups[i].csn == floor+1+i
	floor    uint64        // every csn ≤ floor has been evicted (or never buffered)
	size     int
	maxBytes int
	booted   bool
	closed   bool
}

// NewRing returns a ring retaining up to maxBytes of encoded records
// (default 8 MiB if maxBytes ≤ 0).
func NewRing(maxBytes int) *Ring {
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	return &Ring{maxBytes: maxBytes, pulse: make(chan struct{})}
}

// Bootstrap sets the ring's floor before any group arrives: a primary at
// committed CSN c starts its ring at floor c, so replicas already at c
// need nothing and replicas below c resync. Idempotent; the first Append
// also bootstraps implicitly.
func (r *Ring) Bootstrap(csn uint64) {
	r.mu.Lock()
	if !r.booted {
		r.floor = csn
		r.booted = true
	}
	r.mu.Unlock()
}

// Append adds the next commit group. CSNs must arrive in order (the
// engine's publish guarantees it); the first Append bootstraps the floor
// to csn-1.
func (r *Ring) Append(csn uint64, recs [][]byte) {
	n := 0
	for _, b := range recs {
		n += len(b)
	}
	r.mu.Lock()
	if !r.booted {
		r.floor = csn - 1
		r.booted = true
	}
	r.groups = append(r.groups, group{csn: csn, recs: recs, bytes: n})
	r.size += n
	for r.size > r.maxBytes && len(r.groups) > 1 {
		r.size -= r.groups[0].bytes
		r.floor = r.groups[0].csn
		r.groups = r.groups[1:]
	}
	if !r.closed {
		close(r.pulse)
		r.pulse = make(chan struct{})
	}
	r.mu.Unlock()
}

// Floor returns the highest evicted CSN: a subscriber must have applied at
// least Floor to replay from the ring.
func (r *Ring) Floor() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.floor
}

// Head returns the newest buffered CSN (== Floor before any Append).
func (r *Ring) Head() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.groups) == 0 {
		return r.floor
	}
	return r.groups[len(r.groups)-1].csn
}

// TryNext returns the group for csn if buffered. gap=true means csn fell
// at or below the floor — the subscriber must resync. With neither ok nor
// gap, the group has not been published yet: wait on Pulse and retry.
func (r *Ring) TryNext(csn uint64) (recs [][]byte, gap bool, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.booted && csn <= r.floor {
		return nil, true, false
	}
	if n := len(r.groups); n > 0 && csn >= r.groups[0].csn && csn <= r.groups[n-1].csn {
		i := int(csn - r.groups[0].csn)
		return r.groups[i].recs, false, true
	}
	return nil, false, false
}

// Pulse returns a channel closed at the next Append or Close — the wait
// handle for a sender that drained the ring.
func (r *Ring) Pulse() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pulse
}

// Closed reports whether the ring was shut down.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Close wakes every Pulse waiter permanently: the closed channel stays in
// place, so Pulse never blocks again after Close.
func (r *Ring) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.pulse)
	}
	r.mu.Unlock()
}
