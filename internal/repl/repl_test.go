package repl

import (
	"fmt"
	"io/fs"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tensorbase/internal/data"
	"tensorbase/internal/engine"
	"tensorbase/internal/fault"
	"tensorbase/internal/nn"
)

// End-to-end and chaos tests: a real primary engine shipping over net.Pipe
// to real follower engines, with fault.Link injecting transport faults on
// the primary→replica direction. Every test asserts the only correctness
// condition that matters — after the dust settles, the replica reaches the
// primary's CSN and serves bit-identical results.

const testHB = 10 * time.Millisecond

func newPrimary(t *testing.T, opts PrimaryOptions) (*engine.DB, *Primary) {
	t.Helper()
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = testHB
	}
	db, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(db, opts)
	t.Cleanup(func() {
		p.Close()
		db.Close()
	})
	return db, p
}

// pipeDialer connects a replica to the primary over an in-process pipe,
// with link injecting faults into the shipped frames.
func pipeDialer(p *Primary, link *fault.Link) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c1, c2 := net.Pipe()
		p.Attach(c2, link)
		return c1, nil
	}
}

func newReplica(t *testing.T, path string, p *Primary, link *fault.Link) *Replica {
	t.Helper()
	r, err := NewReplica(path, ReplicaOptions{
		Name:              "r1",
		Dial:              pipeDialer(p, link),
		HeartbeatInterval: testHB,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func waitConverged(t *testing.T, db *engine.DB, r *Replica, timeout time.Duration) {
	t.Helper()
	target := db.CommittedCSN()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.AppliedCSN() >= target {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica stuck at CSN %d, primary at %d (stats %+v)",
		r.AppliedCSN(), target, r.Stats())
}

func assertSameResults(t *testing.T, a, b *engine.DB, query string) {
	t.Helper()
	ra, err := a.Exec(query)
	if err != nil {
		t.Fatalf("primary %q: %v", query, err)
	}
	rb, err := b.Exec(query)
	if err != nil {
		t.Fatalf("replica %q: %v", query, err)
	}
	if !reflect.DeepEqual(ra.Rows, rb.Rows) {
		t.Fatalf("%q diverged:\nprimary: %v\nreplica: %v", query, ra.Rows, rb.Rows)
	}
}

func mustExec(t *testing.T, db *engine.DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func TestReplicaStreamsLiveCommits(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{})
	r := newReplica(t, filepath.Join(t.TempDir(), "r.db"), p, nil)

	mustExec(t, db, "CREATE TABLE t (a INT, s TEXT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", i, i))
	}
	waitConverged(t, db, r, 5*time.Second)
	assertSameResults(t, db, r.DB(), "SELECT a, s FROM t")
	if !r.Healthy() {
		t.Fatalf("converged replica unhealthy: %+v", r.Stats())
	}
	if s := p.Stats(); s.Streams != 1 {
		t.Fatalf("primary streams = %d, want 1", s.Streams)
	}
}

// TestReplicaResyncsFromSnapshot: a replica joining a primary whose history
// predates the ring (the shipping-tier analogue of a checkpoint truncating
// the WAL under a lagging replica) full-resyncs, models included, then
// follows the live tail.
func TestReplicaResyncsFromSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	db, err := engine.Open(path, engine.Options{InferBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	// History written before the primary ever shipped: table + model.
	d := data.Fraud(1, 64)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("txns", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRows("txns", rows); err != nil {
		t.Fatal(err)
	}
	m := nn.FraudFC(rand.New(rand.NewSource(2)), 32)
	if _, err := nn.Train(m, d.X, d.Labels, nn.TrainConfig{Epochs: 2, BatchSize: 32, LR: 0.05, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadModel(m, 0.95); err != nil {
		t.Fatal(err)
	}

	p := NewPrimary(db, PrimaryOptions{HeartbeatInterval: testHB})
	t.Cleanup(p.Close)
	r := newReplica(t, filepath.Join(t.TempDir(), "r.db"), p, nil)
	waitConverged(t, db, r, 10*time.Second)
	if s := p.Stats(); s.Resyncs == 0 {
		t.Fatalf("pre-ring history must arrive via resync: %+v", s)
	}
	if s := r.Stats(); s.Resyncs == 0 {
		t.Fatalf("replica applied no resync: %+v", s)
	}
	assertSameResults(t, db, r.DB(), "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")

	// The live tail streams as ordinary groups after the resync.
	mustExec(t, db, "CREATE TABLE after (a INT)")
	mustExec(t, db, "INSERT INTO after VALUES (1), (2)")
	waitConverged(t, db, r, 5*time.Second)
	assertSameResults(t, db, r.DB(), "SELECT a FROM after")
}

// TestModelShipsInLiveGroup: a LOAD MODEL committed while the stream is
// live ships its weights inline and PREDICT answers identically.
func TestModelShipsInLiveGroup(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{})
	r := newReplica(t, filepath.Join(t.TempDir(), "r.db"), p, nil)

	d := data.Fraud(1, 64)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("txns", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRows("txns", rows); err != nil {
		t.Fatal(err)
	}
	m := nn.FraudFC(rand.New(rand.NewSource(2)), 32)
	if err := db.LoadModel(m, 0.9); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, db, r, 10*time.Second)
	assertSameResults(t, db, r.DB(), "SELECT id, PREDICT(Fraud-FC-32, features) FROM txns")
}

// TestReplicaModelFilesDoNotLeak is the regression for the follower-staged
// model-file leak: shipped models used to be staged as repl-%08d-%03d.tbm
// files that nothing ever deleted. Weights now ride the stream as WAL
// block records, so after shipping several models and checkpointing, the
// replica's directory must hold only content-addressed block files — no
// .tbm staging files, and any legacy .models directory (the old leak's
// home) is removed by the first committed checkpoint.
func TestReplicaModelFilesDoNotLeak(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{})
	dir := t.TempDir()
	rpath := filepath.Join(dir, "r.db")
	// Seed a legacy leak: a pre-upgrade staging directory with orphans.
	if err := os.MkdirAll(rpath+".models", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(rpath+".models", "repl-00000007-001.tbm"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := newReplica(t, rpath, p, nil)

	d := data.Fraud(1, 64)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("txns", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRows("txns", rows); err != nil {
		t.Fatal(err)
	}
	for _, hidden := range []int{16, 32, 48} {
		if err := db.LoadModel(nn.FraudFC(rand.New(rand.NewSource(int64(hidden))), hidden), 0.9); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, db, r, 10*time.Second)
	for _, hidden := range []int{16, 32, 48} {
		assertSameResults(t, db, r.DB(), fmt.Sprintf("SELECT id, PREDICT(Fraud-FC-%d, features) FROM txns", hidden))
	}

	if err := r.DB().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(rpath + ".models"); !os.IsNotExist(err) {
		t.Fatalf("legacy staging dir survives a committed checkpoint (stat err: %v)", err)
	}
	var leaked []string
	if err := filepath.WalkDir(dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && strings.HasSuffix(path, ".tbm") {
			leaked = append(leaked, path)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(leaked) != 0 {
		t.Fatalf("staged model files leaked on the replica: %v", leaked)
	}
	blocks, err := os.ReadDir(rpath + ".blocks")
	if err != nil || len(blocks) == 0 {
		t.Fatalf("replica checkpoint left no block files (err: %v)", err)
	}
}

// TestReplicaKillRestartCatchUp: kill -9 a replica mid-stream; a new
// process over the same directory recovers to its applied CSN and the
// stream re-delivers the rest.
func TestReplicaKillRestartCatchUp(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{})
	rpath := filepath.Join(t.TempDir(), "r.db")
	r := newReplica(t, rpath, p, nil)

	mustExec(t, db, "CREATE TABLE t (a INT)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	waitConverged(t, db, r, 5*time.Second)
	if err := r.Kill(); err != nil {
		t.Fatal(err)
	}
	// The primary keeps committing while the replica is down.
	for i := 10; i < 30; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	r2 := newReplica(t, rpath, p, nil)
	if r2.AppliedCSN() == 0 {
		t.Fatal("restarted replica recovered nothing")
	}
	waitConverged(t, db, r2, 5*time.Second)
	assertSameResults(t, db, r2.DB(), "SELECT a FROM t")
}

// TestLaggingReplicaResyncsPastEviction: a tiny ring evicts history faster
// than a downed replica can claim it; on reconnect the gap forces a full
// resync and the replica still converges bit-identically.
func TestLaggingReplicaResyncsPastEviction(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{RingBytes: 1})
	rpath := filepath.Join(t.TempDir(), "r.db")
	r := newReplica(t, rpath, p, nil)

	mustExec(t, db, "CREATE TABLE t (a INT)")
	waitConverged(t, db, r, 5*time.Second)
	if err := r.Kill(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	r2 := newReplica(t, rpath, p, nil)
	waitConverged(t, db, r2, 10*time.Second)
	if s := p.Stats(); s.Resyncs == 0 {
		t.Fatalf("eviction gap must force a resync: %+v", s)
	}
	assertSameResults(t, db, r2.DB(), "SELECT a FROM t")
}

// TestPartitionHealsAndCatchesUp: a partitioned replica goes unhealthy
// (router steers around it), keeps its last snapshot readable, and after
// the partition heals converges to the primary.
func TestPartitionHealsAndCatchesUp(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{})
	link := fault.NewLink(1)
	r := newReplica(t, filepath.Join(t.TempDir(), "r.db"), p, link)

	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	waitConverged(t, db, r, 5*time.Second)
	frozen := r.AppliedCSN()

	link.SetPartitioned(true)
	mustExec(t, db, "INSERT INTO t VALUES (2), (3)")
	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy() {
		if time.Now().After(deadline) {
			t.Fatal("partitioned replica never went unhealthy")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Still serving its frozen snapshot.
	if r.AppliedCSN() != frozen {
		t.Fatalf("partitioned replica advanced from %d to %d", frozen, r.AppliedCSN())
	}
	if res, err := r.DB().Exec("SELECT a FROM t"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("stale read = (%v, %v), want the 1-row snapshot", res, err)
	}

	link.SetPartitioned(false)
	waitConverged(t, db, r, 5*time.Second)
	assertSameResults(t, db, r.DB(), "SELECT a FROM t")
	deadline = time.Now().Add(5 * time.Second)
	for !r.Healthy() {
		if time.Now().After(deadline) {
			t.Fatalf("healed replica never became healthy: %+v", r.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosSoak: seeded drop/duplicate/reorder/delay on the stream plus a
// mid-soak partition, while the primary commits continuously. The replica
// must converge to a bit-identical state once the writes stop — transport
// faults degrade to retries, never to divergence.
func TestChaosSoak(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{RingBytes: 4 << 10})
	link := fault.NewLink(42)
	link.SetDrop(0.05)
	link.SetDuplicate(0.05)
	link.SetReorder(0.05)
	link.SetDelay(0.10, time.Millisecond)
	r := newReplica(t, filepath.Join(t.TempDir(), "r.db"), p, link)

	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d.5)", i, i))
		if i == 100 {
			link.SetPartitioned(true)
		}
		if i == 120 {
			link.SetPartitioned(false)
		}
	}
	waitConverged(t, db, r, 30*time.Second)
	assertSameResults(t, db, r.DB(), "SELECT a, b FROM t")
	t.Logf("soak: primary %+v, replica %+v, link %s", p.Stats(), r.Stats(), link)
}

// TestTwoReplicasConvergeIdentically: one primary, two replicas on
// independent links; both reach the same CSN with identical results.
func TestTwoReplicasConvergeIdentically(t *testing.T) {
	db, p := newPrimary(t, PrimaryOptions{})
	linkA := fault.NewLink(7)
	linkA.SetDrop(0.1)
	r1 := newReplica(t, filepath.Join(t.TempDir(), "r1.db"), p, linkA)
	r2 := newReplica(t, filepath.Join(t.TempDir(), "r2.db"), p, nil)

	mustExec(t, db, "CREATE TABLE t (a INT)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	waitConverged(t, db, r1, 15*time.Second)
	waitConverged(t, db, r2, 15*time.Second)
	assertSameResults(t, db, r1.DB(), "SELECT a FROM t")
	assertSameResults(t, r1.DB(), r2.DB(), "SELECT a FROM t")
}
