package repl

import (
	"testing"
	"time"
)

func TestRingBootstrapAndTryNext(t *testing.T) {
	r := NewRing(0)
	r.Bootstrap(5)
	if f := r.Floor(); f != 5 {
		t.Fatalf("Floor = %d, want 5", f)
	}
	// Below or at the floor: the subscriber must resync.
	if _, gap, ok := r.TryNext(5); !gap || ok {
		t.Fatalf("TryNext(5) gap=%v ok=%v, want gap", gap, ok)
	}
	// Beyond the head: not yet published.
	if _, gap, ok := r.TryNext(6); gap || ok {
		t.Fatalf("TryNext(6) gap=%v ok=%v, want neither", gap, ok)
	}
	r.Append(6, [][]byte{[]byte("a")})
	recs, gap, ok := r.TryNext(6)
	if gap || !ok || len(recs) != 1 || string(recs[0]) != "a" {
		t.Fatalf("TryNext(6) = %v gap=%v ok=%v", recs, gap, ok)
	}
	// Bootstrap after boot is a no-op.
	r.Bootstrap(100)
	if f := r.Floor(); f != 5 {
		t.Fatalf("Floor moved to %d after late Bootstrap", f)
	}
}

func TestRingImplicitBootstrap(t *testing.T) {
	r := NewRing(0)
	r.Append(10, [][]byte{[]byte("x")})
	if f := r.Floor(); f != 9 {
		t.Fatalf("Floor = %d after implicit bootstrap, want 9", f)
	}
	if _, _, ok := r.TryNext(10); !ok {
		t.Fatal("group 10 not replayable")
	}
}

func TestRingEvictionRaisesFloor(t *testing.T) {
	r := NewRing(8) // tiny: holds at most two 4-byte groups
	for csn := uint64(1); csn <= 5; csn++ {
		r.Append(csn, [][]byte{[]byte("abcd")})
	}
	if f := r.Floor(); f != 3 {
		t.Fatalf("Floor = %d, want 3 (the 8-byte cap holds two 4-byte groups)", f)
	}
	if h := r.Head(); h != 5 {
		t.Fatalf("Head = %d, want 5", h)
	}
	if _, gap, _ := r.TryNext(3); !gap {
		t.Fatal("evicted group must report a gap")
	}
	if _, _, ok := r.TryNext(5); !ok {
		t.Fatal("newest group must stay replayable")
	}
}

func TestRingKeepsAtLeastOneGroup(t *testing.T) {
	r := NewRing(1)
	big := make([]byte, 1024)
	r.Append(1, [][]byte{big})
	if _, _, ok := r.TryNext(1); !ok {
		t.Fatal("a group larger than the cap must still be retained")
	}
	r.Append(2, [][]byte{big})
	if _, gap, _ := r.TryNext(1); !gap {
		t.Fatal("the next append must evict it")
	}
}

func TestRingPulseWakesOnAppend(t *testing.T) {
	r := NewRing(0)
	ch := r.Pulse()
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	r.Append(1, nil)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Pulse waiter not woken by Append")
	}
}

func TestRingCloseWakesForever(t *testing.T) {
	r := NewRing(0)
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	select {
	case <-r.Pulse():
	default:
		t.Fatal("Pulse must be closed after Close")
	}
	// Append after Close must not panic (double close) and Pulse stays open.
	r.Append(1, nil)
	select {
	case <-r.Pulse():
	default:
		t.Fatal("Pulse must stay closed after a post-Close Append")
	}
}
