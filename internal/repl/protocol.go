package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire protocol. Every message travels as one CRC-framed blob, the same
// framing the WAL and the connector batch format use:
//
//	u32 len | payload | u32 CRC32-C(payload)
//
// payload: u8 msgType | type-specific fields. Primary→replica messages
// carry a sequence number as their first field; the replica accepts only
// seq == last+1 — a duplicate (seq ≤ last) is discarded, a gap or reorder
// resets the stream and the replica reconnects with its applied CSN. The
// replica→primary direction has exactly one message, the hello.
//
// A group message carries one published commit: the CSN and its encoded
// WAL records; RecLoadModel records additionally carry the model file's
// bytes inline (read at send time — the file lives on the primary), which
// the replica stages into its own models directory before applying. A
// resync message is a whole logical snapshot: records plus named model
// blobs, applied as one atomic group that replaces the replica's state.

const (
	msgHello     byte = 1 // replica → primary: u64 appliedCSN
	msgGroup     byte = 2 // u64 seq | u64 csn | recs with inline model blobs
	msgHeartbeat byte = 3 // u64 seq | u64 committedCSN
	msgResync    byte = 4 // u64 seq | u64 snapCSN | recs | model blobs
)

// maxFrame bounds one message: a resync carries a whole database snapshot
// in one frame, so the cap is generous; anything larger in a length field
// is damage or a protocol break.
const maxFrame = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errStreamBroken is the replica's "reset and reconnect" signal: CRC
// failure, sequence gap, reorder, unknown message, or a short read.
var errStreamBroken = errors.New("repl: stream broken")

// writeFrame frames payload and writes it in one Write call (net.Pipe and
// TCP both deliver it atomically enough for the reader's io.ReadFull).
func writeFrame(w io.Writer, payload []byte) error {
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	_, err := w.Write(frame)
	return err
}

// readFrame reads one frame and returns its CRC-verified payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", errStreamBroken, n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.Checksum(body[:n], castagnoli) != binary.LittleEndian.Uint32(body[n:]) {
		return nil, fmt.Errorf("%w: frame CRC mismatch", errStreamBroken)
	}
	return body[:n], nil
}

func appendBytes(b, data []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

func readBytes(b []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return nil, nil, fmt.Errorf("%w: truncated field", errStreamBroken)
	}
	return b[sz : sz+int(n)], b[sz+int(n):], nil
}

// modelBlob is one serialised model riding a group or resync message.
type modelBlob struct {
	Name string
	Acc  float64
	Data []byte
}

// groupMsg is one shipped commit group. Blobs parallels Recs: Blobs[i] is
// the inline model bytes for a RecLoadModel record, nil otherwise.
type groupMsg struct {
	Seq   uint64
	CSN   uint64
	Recs  [][]byte
	Blobs [][]byte
}

func encodeGroup(g *groupMsg) []byte {
	b := []byte{msgGroup}
	b = binary.LittleEndian.AppendUint64(b, g.Seq)
	b = binary.LittleEndian.AppendUint64(b, g.CSN)
	b = binary.AppendUvarint(b, uint64(len(g.Recs)))
	for i, rec := range g.Recs {
		b = appendBytes(b, rec)
		var blob []byte
		if i < len(g.Blobs) {
			blob = g.Blobs[i]
		}
		b = appendBytes(b, blob)
	}
	return b
}

func decodeGroup(b []byte) (*groupMsg, error) {
	if len(b) < 17 {
		return nil, fmt.Errorf("%w: short group", errStreamBroken)
	}
	g := &groupMsg{
		Seq: binary.LittleEndian.Uint64(b[1:9]),
		CSN: binary.LittleEndian.Uint64(b[9:17]),
	}
	b = b[17:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: bad group record count", errStreamBroken)
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		rec, rest, err := readBytes(b)
		if err != nil {
			return nil, err
		}
		blob, rest, err := readBytes(rest)
		if err != nil {
			return nil, err
		}
		b = rest
		g.Recs = append(g.Recs, rec)
		if len(blob) > 0 {
			g.Blobs = append(g.Blobs, blob)
		} else {
			g.Blobs = append(g.Blobs, nil)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing group bytes", errStreamBroken, len(b))
	}
	return g, nil
}

// resyncMsg is a whole snapshot: recs create and fill every table; models
// are staged then applied as RecLoadModel records at the snapshot CSN.
type resyncMsg struct {
	Seq    uint64
	CSN    uint64
	Recs   [][]byte
	Models []modelBlob
}

func encodeResync(m *resyncMsg) []byte {
	b := []byte{msgResync}
	b = binary.LittleEndian.AppendUint64(b, m.Seq)
	b = binary.LittleEndian.AppendUint64(b, m.CSN)
	b = binary.AppendUvarint(b, uint64(len(m.Recs)))
	for _, rec := range m.Recs {
		b = appendBytes(b, rec)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Models)))
	for _, mb := range m.Models {
		b = appendBytes(b, []byte(mb.Name))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(mb.Acc))
		b = appendBytes(b, mb.Data)
	}
	return b
}

func decodeResync(b []byte) (*resyncMsg, error) {
	if len(b) < 17 {
		return nil, fmt.Errorf("%w: short resync", errStreamBroken)
	}
	m := &resyncMsg{
		Seq: binary.LittleEndian.Uint64(b[1:9]),
		CSN: binary.LittleEndian.Uint64(b[9:17]),
	}
	b = b[17:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: bad resync record count", errStreamBroken)
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		rec, rest, err := readBytes(b)
		if err != nil {
			return nil, err
		}
		b = rest
		m.Recs = append(m.Recs, rec)
	}
	n, sz = binary.Uvarint(b)
	if sz <= 0 || n > 1<<16 {
		return nil, fmt.Errorf("%w: bad resync model count", errStreamBroken)
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		name, rest, err := readBytes(b)
		if err != nil {
			return nil, err
		}
		if len(rest) < 8 {
			return nil, fmt.Errorf("%w: truncated model accuracy", errStreamBroken)
		}
		acc := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		data, rest, err := readBytes(rest[8:])
		if err != nil {
			return nil, err
		}
		b = rest
		m.Models = append(m.Models, modelBlob{Name: string(name), Acc: acc, Data: data})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing resync bytes", errStreamBroken, len(b))
	}
	return m, nil
}

func encodeHello(applied uint64) []byte {
	b := []byte{msgHello}
	return binary.LittleEndian.AppendUint64(b, applied)
}

func decodeHello(b []byte) (uint64, error) {
	if len(b) != 9 || b[0] != msgHello {
		return 0, fmt.Errorf("%w: bad hello", errStreamBroken)
	}
	return binary.LittleEndian.Uint64(b[1:9]), nil
}

func encodeHeartbeat(seq, csn uint64) []byte {
	b := []byte{msgHeartbeat}
	b = binary.LittleEndian.AppendUint64(b, seq)
	return binary.LittleEndian.AppendUint64(b, csn)
}

func decodeHeartbeat(b []byte) (seq, csn uint64, err error) {
	if len(b) != 17 {
		return 0, 0, fmt.Errorf("%w: bad heartbeat", errStreamBroken)
	}
	return binary.LittleEndian.Uint64(b[1:9]), binary.LittleEndian.Uint64(b[9:17]), nil
}
