package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"tensorbase/internal/blockstore"
)

// Wire protocol. Every message travels as one CRC-framed blob, the same
// framing the WAL and the connector batch format use:
//
//	u32 len | payload | u32 CRC32-C(payload)
//
// payload: u8 msgType | type-specific fields. Primary→replica messages
// carry a sequence number as their first field; the replica accepts only
// seq == last+1 — a duplicate (seq ≤ last) is discarded, a gap or reorder
// resets the stream and the replica reconnects with its applied CSN. The
// replica→primary direction has two messages: the hello, and the
// block-request that answers a resync.
//
// A group message carries one published commit verbatim: the CSN and its
// encoded WAL records. Model weights need no side channel — a LOAD MODEL
// group already contains its new weight blocks as RecBlock records and the
// manifest inside the RecLoadModel record, so the stream ships exactly the
// bytes the primary's own WAL holds, deduplicated at the source (blocks
// the primary already had are not re-logged, hence not re-shipped).
//
// A resync is a handshake: the snapshot message carries the table records
// plus each model's manifest (names + block hashes, no weights); the
// replica answers with the hashes it is missing (always — an empty request
// keeps the exchange symmetric); the primary replies with exactly those
// blocks. The replica verifies each block against its requested hash,
// synthesizes RecBlock records, and applies the whole snapshot as one
// atomic group. A replica that already holds most blocks (it fell behind,
// it is a restarted twin, the models share layers) fetches only the delta.

const (
	msgHello     byte = 1 // replica → primary: u64 appliedCSN
	msgGroup     byte = 2 // u64 seq | u64 csn | encoded WAL records
	msgHeartbeat byte = 3 // u64 seq | u64 committedCSN
	msgResync    byte = 4 // u64 seq | u64 snapCSN | recs | model manifests
	msgBlockReq  byte = 5 // replica → primary: requested block hashes
	msgBlocks    byte = 6 // u64 seq | (hash, payload) pairs
)

// maxFrame bounds one message: a resync carries a whole database snapshot
// in one frame, so the cap is generous; anything larger in a length field
// is damage or a protocol break.
const maxFrame = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errStreamBroken is the replica's "reset and reconnect" signal: CRC
// failure, sequence gap, reorder, unknown message, or a short read.
var errStreamBroken = errors.New("repl: stream broken")

// writeFrame frames payload and writes it in one Write call (net.Pipe and
// TCP both deliver it atomically enough for the reader's io.ReadFull).
func writeFrame(w io.Writer, payload []byte) error {
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	_, err := w.Write(frame)
	return err
}

// readFrame reads one frame and returns its CRC-verified payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", errStreamBroken, n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.Checksum(body[:n], castagnoli) != binary.LittleEndian.Uint32(body[n:]) {
		return nil, fmt.Errorf("%w: frame CRC mismatch", errStreamBroken)
	}
	return body[:n], nil
}

func appendBytes(b, data []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

func readBytes(b []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return nil, nil, fmt.Errorf("%w: truncated field", errStreamBroken)
	}
	return b[sz : sz+int(n)], b[sz+int(n):], nil
}

// modelManifest is one model riding a resync message: identity plus the
// encoded block manifest. Weight bytes travel separately, on demand, in the
// msgBlockReq/msgBlocks exchange.
type modelManifest struct {
	Name     string
	Acc      float64
	Manifest []byte
}

// groupMsg is one shipped commit group: the published WAL records,
// verbatim.
type groupMsg struct {
	Seq  uint64
	CSN  uint64
	Recs [][]byte
}

func encodeGroup(g *groupMsg) []byte {
	b := []byte{msgGroup}
	b = binary.LittleEndian.AppendUint64(b, g.Seq)
	b = binary.LittleEndian.AppendUint64(b, g.CSN)
	b = binary.AppendUvarint(b, uint64(len(g.Recs)))
	for _, rec := range g.Recs {
		b = appendBytes(b, rec)
	}
	return b
}

func decodeGroup(b []byte) (*groupMsg, error) {
	if len(b) < 17 {
		return nil, fmt.Errorf("%w: short group", errStreamBroken)
	}
	g := &groupMsg{
		Seq: binary.LittleEndian.Uint64(b[1:9]),
		CSN: binary.LittleEndian.Uint64(b[9:17]),
	}
	b = b[17:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: bad group record count", errStreamBroken)
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		rec, rest, err := readBytes(b)
		if err != nil {
			return nil, err
		}
		b = rest
		g.Recs = append(g.Recs, rec)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing group bytes", errStreamBroken, len(b))
	}
	return g, nil
}

// resyncMsg is a whole snapshot: recs create and fill every table; models
// arrive as manifests whose missing blocks the replica then requests.
type resyncMsg struct {
	Seq    uint64
	CSN    uint64
	Recs   [][]byte
	Models []modelManifest
}

func encodeResync(m *resyncMsg) []byte {
	b := []byte{msgResync}
	b = binary.LittleEndian.AppendUint64(b, m.Seq)
	b = binary.LittleEndian.AppendUint64(b, m.CSN)
	b = binary.AppendUvarint(b, uint64(len(m.Recs)))
	for _, rec := range m.Recs {
		b = appendBytes(b, rec)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Models)))
	for _, mb := range m.Models {
		b = appendBytes(b, []byte(mb.Name))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(mb.Acc))
		b = appendBytes(b, mb.Manifest)
	}
	return b
}

func decodeResync(b []byte) (*resyncMsg, error) {
	if len(b) < 17 {
		return nil, fmt.Errorf("%w: short resync", errStreamBroken)
	}
	m := &resyncMsg{
		Seq: binary.LittleEndian.Uint64(b[1:9]),
		CSN: binary.LittleEndian.Uint64(b[9:17]),
	}
	b = b[17:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: bad resync record count", errStreamBroken)
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		rec, rest, err := readBytes(b)
		if err != nil {
			return nil, err
		}
		b = rest
		m.Recs = append(m.Recs, rec)
	}
	n, sz = binary.Uvarint(b)
	if sz <= 0 || n > 1<<16 {
		return nil, fmt.Errorf("%w: bad resync model count", errStreamBroken)
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		name, rest, err := readBytes(b)
		if err != nil {
			return nil, err
		}
		if len(rest) < 8 {
			return nil, fmt.Errorf("%w: truncated model accuracy", errStreamBroken)
		}
		acc := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		data, rest, err := readBytes(rest[8:])
		if err != nil {
			return nil, err
		}
		b = rest
		m.Models = append(m.Models, modelManifest{Name: string(name), Acc: acc, Manifest: data})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing resync bytes", errStreamBroken, len(b))
	}
	return m, nil
}

// blockReq is the replica's half of the resync block fetch: the hashes of
// every manifest-referenced block it does not hold. Always sent, even
// empty, so the primary's read after a resync never hangs on a fully
// deduplicated replica.
func encodeBlockReq(hashes []blockstore.Hash) []byte {
	b := []byte{msgBlockReq}
	b = binary.AppendUvarint(b, uint64(len(hashes)))
	for _, h := range hashes {
		b = append(b, h[:]...)
	}
	return b
}

func decodeBlockReq(b []byte) ([]blockstore.Hash, error) {
	if len(b) < 1 || b[0] != msgBlockReq {
		return nil, fmt.Errorf("%w: bad block request", errStreamBroken)
	}
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<20 {
		return nil, fmt.Errorf("%w: bad block request count", errStreamBroken)
	}
	b = b[sz:]
	if uint64(len(b)) != n*uint64(len(blockstore.Hash{})) {
		return nil, fmt.Errorf("%w: truncated block request", errStreamBroken)
	}
	hashes := make([]blockstore.Hash, n)
	for i := range hashes {
		copy(hashes[i][:], b[:len(blockstore.Hash{})])
		b = b[len(blockstore.Hash{}):]
	}
	return hashes, nil
}

// blocksMsg is the primary's reply: the requested blocks as (hash, encoded
// payload) pairs, in request order.
type blocksMsg struct {
	Seq    uint64
	Hashes []blockstore.Hash
	Data   [][]byte
}

func encodeBlocks(m *blocksMsg) []byte {
	b := []byte{msgBlocks}
	b = binary.LittleEndian.AppendUint64(b, m.Seq)
	b = binary.AppendUvarint(b, uint64(len(m.Hashes)))
	for i, h := range m.Hashes {
		b = append(b, h[:]...)
		b = appendBytes(b, m.Data[i])
	}
	return b
}

func decodeBlocks(b []byte) (*blocksMsg, error) {
	if len(b) < 9 || b[0] != msgBlocks {
		return nil, fmt.Errorf("%w: bad blocks message", errStreamBroken)
	}
	m := &blocksMsg{Seq: binary.LittleEndian.Uint64(b[1:9])}
	b = b[9:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<20 {
		return nil, fmt.Errorf("%w: bad blocks count", errStreamBroken)
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		if len(b) < len(blockstore.Hash{}) {
			return nil, fmt.Errorf("%w: truncated block hash", errStreamBroken)
		}
		var h blockstore.Hash
		copy(h[:], b[:len(h)])
		data, rest, err := readBytes(b[len(h):])
		if err != nil {
			return nil, err
		}
		b = rest
		m.Hashes = append(m.Hashes, h)
		m.Data = append(m.Data, data)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing blocks bytes", errStreamBroken, len(b))
	}
	return m, nil
}

func encodeHello(applied uint64) []byte {
	b := []byte{msgHello}
	return binary.LittleEndian.AppendUint64(b, applied)
}

func decodeHello(b []byte) (uint64, error) {
	if len(b) != 9 || b[0] != msgHello {
		return 0, fmt.Errorf("%w: bad hello", errStreamBroken)
	}
	return binary.LittleEndian.Uint64(b[1:9]), nil
}

func encodeHeartbeat(seq, csn uint64) []byte {
	b := []byte{msgHeartbeat}
	b = binary.LittleEndian.AppendUint64(b, seq)
	return binary.LittleEndian.AppendUint64(b, csn)
}

func decodeHeartbeat(b []byte) (seq, csn uint64, err error) {
	if len(b) != 17 {
		return 0, 0, fmt.Errorf("%w: bad heartbeat", errStreamBroken)
	}
	return binary.LittleEndian.Uint64(b[1:9]), binary.LittleEndian.Uint64(b[9:17]), nil
}
