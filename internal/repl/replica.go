package repl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tensorbase/internal/blockstore"
	"tensorbase/internal/engine"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/retry"
	"tensorbase/internal/wal"
)

// ReplicaOptions configures the receiving side.
type ReplicaOptions struct {
	// Name labels this replica in router decisions and errors.
	Name string
	// Dial opens a connection to the primary. Required. Tests wire it to
	// net.Pipe + Primary.Attach; production uses net.Dial.
	Dial func() (net.Conn, error)
	// HeartbeatInterval must match the primary's (default 100ms); a stream
	// silent for 4 intervals is declared dead and the replica reconnects.
	HeartbeatInterval time.Duration
	// Retry shapes the reconnect backoff (defaults: 10ms base, 1s cap).
	Retry retry.Policy
	// Engine configures the replica's own database; Follower is forced on.
	Engine engine.Options
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.Name == "" {
		o.Name = "replica"
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	return o
}

// Replica maintains a follower engine fed from the primary's commit
// stream. It reconnects forever (with capped backoff) until Close: every
// transport fault — drop, reorder, partition, corruption — lands in one
// recovery path, "reset the stream, reconnect, re-hello with the applied
// CSN". Reads are served from the follower engine at its applied CSN.
type Replica struct {
	name string
	path string
	eng  engine.Options
	opts ReplicaOptions

	db atomic.Pointer[engine.DB]

	lastMsg    atomic.Int64 // unix nanos of the last verified frame
	connected  atomic.Bool
	primaryCSN atomic.Uint64 // committed horizon last advertised by the primary

	applies    atomic.Uint64 // commit groups applied
	resyncs    atomic.Uint64 // snapshot resyncs applied
	resets     atomic.Uint64 // streams reset (transport fault or apply error)
	reconnects atomic.Uint64

	cancel context.CancelFunc
	tok    *lifecycle.Token
	unwat  func()
	wg     sync.WaitGroup

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	dead   error // set when the follower engine cannot be reopened
}

// NewReplica opens (or creates) the follower database at path and starts
// the replication loop. The returned replica is immediately usable for
// reads at whatever CSN its local state recovered to.
func NewReplica(path string, opts ReplicaOptions) (*Replica, error) {
	if opts.Dial == nil {
		return nil, errors.New("repl: ReplicaOptions.Dial is required")
	}
	opts = opts.withDefaults()
	eng := opts.Engine
	eng.Follower = true
	db, err := engine.Open(path, eng)
	if err != nil {
		return nil, fmt.Errorf("repl: opening follower db: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tok, unwat := lifecycle.Watch(ctx)
	r := &Replica{
		name:   opts.Name,
		path:   path,
		eng:    eng,
		opts:   opts,
		cancel: cancel,
		tok:    tok,
		unwat:  unwat,
	}
	r.db.Store(db)
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// DB returns the follower engine currently serving reads. The pointer can
// change across an apply-error crash/reopen cycle — callers must not cache
// it beyond one query.
func (r *Replica) DB() *engine.DB { return r.db.Load() }

// Name returns the replica's label.
func (r *Replica) Name() string { return r.name }

// AppliedCSN returns the snapshot horizon this replica serves.
func (r *Replica) AppliedCSN() uint64 {
	if db := r.db.Load(); db != nil {
		return db.CommittedCSN()
	}
	return 0
}

// PrimaryCSN returns the primary's committed horizon as of the last
// heartbeat — AppliedCSN lag against it is the health signal.
func (r *Replica) PrimaryCSN() uint64 { return r.primaryCSN.Load() }

// Healthy reports whether the replica is connected and heard from the
// primary within the staleness window (4 heartbeat intervals). A replica
// that is partitioned, killed, or resyncing reads false and the router
// steers around it.
func (r *Replica) Healthy() bool {
	r.mu.Lock()
	closed, dead := r.closed, r.dead
	r.mu.Unlock()
	if closed || dead != nil || !r.connected.Load() {
		return false
	}
	last := r.lastMsg.Load()
	return last > 0 && time.Since(time.Unix(0, last)) < 4*r.opts.HeartbeatInterval
}

// ReplicaStats is a snapshot of the replica's stream counters.
type ReplicaStats struct {
	Applies    uint64
	Resyncs    uint64
	Resets     uint64
	Reconnects uint64
	Applied    uint64
	Primary    uint64
	Healthy    bool
}

// Stats returns the replica's stream counters.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		Applies:    r.applies.Load(),
		Resyncs:    r.resyncs.Load(),
		Resets:     r.resets.Load(),
		Reconnects: r.reconnects.Load(),
		Applied:    r.AppliedCSN(),
		Primary:    r.primaryCSN.Load(),
		Healthy:    r.Healthy(),
	}
}

// Close stops the replication loop and closes the follower engine.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	r.cancel()
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
	r.unwat()
	if db := r.db.Load(); db != nil {
		return db.Close()
	}
	return nil
}

// Kill simulates a replica process death: the engine is crashed (no
// checkpoint, no sync) and the loop stops. The on-disk state stays for a
// later NewReplica to recover. Test hook.
func (r *Replica) Kill() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	r.cancel()
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
	r.unwat()
	if db := r.db.Load(); db != nil {
		return db.Crash()
	}
	return nil
}

func (r *Replica) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *Replica) setConn(c net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.conn = c
	return true
}

// run is the replica's life: dial, stream, reset, backoff, repeat.
func (r *Replica) run() {
	defer r.wg.Done()
	pol := r.opts.Retry
	failures := 0
	for !r.isClosed() {
		conn, err := r.opts.Dial()
		if err != nil {
			failures++
			if retry.Sleep(r.tok, pol.Backoff(failures)) != nil {
				return
			}
			continue
		}
		if !r.setConn(conn) {
			conn.Close()
			return
		}
		r.reconnects.Add(1)
		failures = 0
		err = r.stream(conn)
		conn.Close()
		r.connected.Store(false)
		r.setConn(nil)
		if r.isClosed() {
			return
		}
		r.mu.Lock()
		dead := r.dead
		r.mu.Unlock()
		if dead != nil {
			return
		}
		if err != nil {
			r.resets.Add(1)
		}
		failures++
		if retry.Sleep(r.tok, pol.Backoff(failures)) != nil {
			return
		}
	}
}

// stream runs one connection: hello with the applied CSN, then verify and
// apply frames until the link breaks or goes silent.
func (r *Replica) stream(conn net.Conn) error {
	if err := writeFrame(conn, encodeHello(r.AppliedCSN())); err != nil {
		return err
	}
	r.connected.Store(true)
	r.lastMsg.Store(time.Now().UnixNano())
	stale := 4 * r.opts.HeartbeatInterval
	var lastSeq uint64
	for {
		conn.SetReadDeadline(time.Now().Add(stale))
		payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		r.lastMsg.Store(time.Now().UnixNano())
		var seq uint64
		switch payload[0] {
		case msgHeartbeat:
			var csn uint64
			if seq, csn, err = decodeHeartbeat(payload); err != nil {
				return err
			}
			if dup, err := checkSeq(&lastSeq, seq); err != nil || dup {
				if err != nil {
					return err
				}
				continue
			}
			r.primaryCSN.Store(csn)
		case msgGroup:
			g, err := decodeGroup(payload)
			if err != nil {
				return err
			}
			if dup, err := checkSeq(&lastSeq, g.Seq); err != nil || dup {
				if err != nil {
					return err
				}
				continue
			}
			if err := r.applyGroup(g); err != nil {
				return err
			}
			if g.CSN > r.primaryCSN.Load() {
				r.primaryCSN.Store(g.CSN)
			}
		case msgResync:
			m, err := decodeResync(payload)
			if err != nil {
				return err
			}
			if dup, err := checkSeq(&lastSeq, m.Seq); err != nil || dup {
				if err != nil {
					return err
				}
				continue
			}
			if err := r.applyResync(conn, m, &lastSeq); err != nil {
				return err
			}
			if m.CSN > r.primaryCSN.Load() {
				r.primaryCSN.Store(m.CSN)
			}
		default:
			return fmt.Errorf("%w: unknown message type %d", errStreamBroken, payload[0])
		}
	}
}

// checkSeq enforces in-order delivery: a duplicate (seq ≤ last) is
// discarded silently — the sender's fault injector duplicates frames — and
// a gap or reorder breaks the stream so the replica re-hellos from its
// applied CSN.
func checkSeq(last *uint64, seq uint64) (dup bool, err error) {
	switch {
	case seq <= *last:
		return true, nil
	case seq != *last+1:
		return false, fmt.Errorf("%w: seq %d after %d", errStreamBroken, seq, *last)
	}
	*last = seq
	return false, nil
}

func (r *Replica) applyGroup(g *groupMsg) error {
	db := r.db.Load()
	recs := make([]*wal.Record, len(g.Recs))
	for i, rb := range g.Recs {
		rec, err := wal.DecodeRecord(rb)
		if err != nil {
			return fmt.Errorf("%w: corrupt record in group %d: %v", errStreamBroken, g.CSN, err)
		}
		recs[i] = rec
	}
	if err := db.ApplyReplicated(g.CSN, recs, false); err != nil {
		return r.crashReopen(fmt.Errorf("applying group %d: %w", g.CSN, err))
	}
	r.applies.Add(1)
	return nil
}

// applyResync finishes the resync handshake and applies the snapshot. The
// manifests name every weight block the snapshot's models need; only the
// ones this replica doesn't already hold are requested, and the fetched
// bytes are verified against their content hashes before anything touches
// the engine. The synthesized RecBlock records go through ApplyReplicated
// with the snapshot, so the replica's own WAL is self-contained: a crash
// mid-apply recovers without the primary.
func (r *Replica) applyResync(conn net.Conn, m *resyncMsg, lastSeq *uint64) error {
	db := r.db.Load()
	manifests := make([][]byte, len(m.Models))
	for i, mb := range m.Models {
		manifests[i] = mb.Manifest
	}
	missing, err := db.MissingBlocks(manifests)
	if err != nil {
		return fmt.Errorf("%w: resync %d: %v", errStreamBroken, m.CSN, err)
	}
	if err := writeFrame(conn, encodeBlockReq(missing)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(4 * r.opts.HeartbeatInterval))
	payload, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return err
	}
	r.lastMsg.Store(time.Now().UnixNano())
	blocks, err := decodeBlocks(payload)
	if err != nil {
		return err
	}
	if dup, err := checkSeq(lastSeq, blocks.Seq); err != nil || dup {
		if err != nil {
			return err
		}
		return fmt.Errorf("%w: duplicate blocks reply", errStreamBroken)
	}
	want := make(map[blockstore.Hash]bool, len(missing))
	for _, h := range missing {
		want[h] = true
	}
	recs := make([]*wal.Record, 0, len(blocks.Data)+len(m.Recs)+len(m.Models))
	for i, raw := range blocks.Data {
		data, err := blockstore.Decode(raw)
		if err != nil {
			return fmt.Errorf("%w: resync block: %v", errStreamBroken, err)
		}
		h := blockstore.HashOf(data)
		if h != blocks.Hashes[i] || !want[h] {
			return fmt.Errorf("%w: resync block %s not requested or content mismatch", errStreamBroken, blocks.Hashes[i])
		}
		delete(want, h)
		recs = append(recs, &wal.Record{Type: wal.RecBlock, CSN: m.CSN, Data: raw})
	}
	if len(want) != 0 {
		return fmt.Errorf("%w: resync reply missing %d requested blocks", errStreamBroken, len(want))
	}
	for _, rb := range m.Recs {
		rec, err := wal.DecodeRecord(rb)
		if err != nil {
			return fmt.Errorf("%w: corrupt record in resync %d: %v", errStreamBroken, m.CSN, err)
		}
		recs = append(recs, rec)
	}
	for _, mb := range m.Models {
		recs = append(recs, &wal.Record{
			Type:  wal.RecLoadModel,
			CSN:   m.CSN,
			Model: mb.Name,
			Acc:   mb.Acc,
			Data:  mb.Manifest,
		})
	}
	if err := db.ApplyReplicated(m.CSN, recs, true); err != nil {
		return r.crashReopen(fmt.Errorf("applying resync %d: %w", m.CSN, err))
	}
	r.resyncs.Add(1)
	return nil
}

// crashReopen is ApplyReplicated's error contract: the follower's state may
// hold a half-applied group, so crash it and recover — the WAL's
// commit-record gating rolls the partial group back, and the next hello
// reports the recovered applied CSN so the stream re-delivers. If even the
// reopen fails the replica is marked dead and drops out of rotation.
func (r *Replica) crashReopen(cause error) error {
	old := r.db.Load()
	old.Crash()
	db, err := engine.Open(r.path, r.eng)
	if err != nil {
		r.mu.Lock()
		r.dead = fmt.Errorf("repl: follower reopen after %v failed: %w", cause, err)
		r.mu.Unlock()
		return r.dead
	}
	r.db.Store(db)
	return fmt.Errorf("%w: %v", errStreamBroken, cause)
}
