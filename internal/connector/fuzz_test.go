package connector

import (
	"encoding/binary"
	"math"
	"testing"
)

// mustEncode builds a seed frame, panicking on encoder errors (test setup).
func mustEncode(rows [][]float32) []byte {
	frame, err := EncodeBatch(rows)
	if err != nil {
		panic(err)
	}
	return frame
}

// FuzzEncodeBatch drives the encoder with arbitrary shapes and payloads: it
// must never panic or mis-size an allocation, and every frame it emits must
// decode back to bit-identical values.
func FuzzEncodeBatch(f *testing.F) {
	f.Add(uint8(1), uint16(3), false, []byte{1, 2, 3, 4})
	f.Add(uint8(0), uint16(4), false, []byte(nil))
	f.Add(uint8(5), uint16(0), false, []byte(nil))
	f.Add(uint8(3), uint16(7), true, []byte{0xff, 0x80, 0x7f, 0x00, 0xc0})
	f.Fuzz(func(t *testing.T, nrows uint8, width uint16, ragged bool, data []byte) {
		w := int(width) % 512
		rows := make([][]float32, int(nrows))
		for i := range rows {
			rw := w
			if ragged && i == len(rows)-1 && w > 0 {
				rw = w - 1
			}
			row := make([]float32, rw)
			for j := range row {
				if idx := (i*rw + j) * 4; idx+4 <= len(data) {
					row[j] = math.Float32frombits(binary.LittleEndian.Uint32(data[idx:]))
				}
			}
			rows[i] = row
		}
		frame, err := EncodeBatch(rows)
		if err != nil {
			return // rejected cleanly
		}
		dec, err := DecodeBatch(frame)
		if err != nil {
			t.Fatalf("decoding just-encoded frame: %v", err)
		}
		if dec.Dim(0) != len(rows) || dec.Dim(1) != w {
			t.Fatalf("shape %v, want %d×%d", dec.Shape(), len(rows), w)
		}
		for i, row := range rows {
			got := dec.Row(i)
			for j := range row {
				if math.Float32bits(got[j]) != math.Float32bits(row[j]) {
					t.Fatalf("row %d col %d: %x != %x", i, j, math.Float32bits(got[j]), math.Float32bits(row[j]))
				}
			}
		}
	})
}

// TestEncodeBatchCapsShape is the regression for the encoder's missing
// element-count guard: a batch whose shape exceeds the decoder's cap must be
// rejected before the frame allocation, not allocate gigabytes (or wrap the
// size) on the send side.
func TestEncodeBatchCapsShape(t *testing.T) {
	shared := make([]float32, 1<<10)
	rows := make([][]float32, 1<<20) // 2^30 elems, 4 GiB frame if allocated
	for i := range rows {
		rows[i] = shared
	}
	if _, err := EncodeBatch(rows); err == nil {
		t.Fatal("oversized batch must be rejected")
	}
	// The boundary itself still encodes: shape product == maxFrameElems is
	// legal on the decode side.
	ok := make([][]float32, 4)
	for i := range ok {
		ok[i] = make([]float32, 8)
	}
	if _, err := EncodeBatch(ok); err != nil {
		t.Fatalf("small batch rejected: %v", err)
	}
}

// FuzzDecodeBatch drives DecodeBatch with arbitrary frames: it must never
// panic, and any frame it accepts must round-trip — re-encoding the decoded
// rows yields a frame that decodes to bit-identical values.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Add(mustEncode([][]float32{{1, 2, 3}}))
	f.Add(mustEncode([][]float32{{1, 2}, {3, 4}, {5, 6}}))
	f.Add(mustEncode([][]float32{{float32(math.NaN()), float32(math.Inf(1)), -0}}))
	big := make([][]float32, 17)
	for i := range big {
		big[i] = make([]float32, 33)
		for j := range big[i] {
			big[i][j] = float32(i*33 + j)
		}
	}
	f.Add(mustEncode(big))
	// Seeds a mutator is likely to turn into interesting near-misses.
	trunc := mustEncode([][]float32{{7, 8}})
	f.Add(trunc[:len(trunc)-5])
	f.Add(append(append([]byte(nil), trunc...), 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, frame []byte) {
		got, err := DecodeBatch(frame)
		if err != nil {
			return // rejected cleanly
		}
		rows := make([][]float32, got.Dim(0))
		for i := range rows {
			rows[i] = got.Row(i)
		}
		frame2, err := EncodeBatch(rows)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		got2, err := DecodeBatch(frame2)
		if err != nil {
			t.Fatalf("decoding re-encoded frame: %v", err)
		}
		if got2.Dim(0) != got.Dim(0) || got2.Dim(1) != got.Dim(1) {
			t.Fatalf("round-trip shape %v != %v", got2.Shape(), got.Shape())
		}
		a, b := got.Data(), got2.Data()
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("round-trip value %d: %x != %x", i, math.Float32bits(a[i]), math.Float32bits(b[i]))
			}
		}
	})
}
