package connector

import (
	"math"
	"testing"
)

// mustEncode builds a seed frame, panicking on encoder errors (test setup).
func mustEncode(rows [][]float32) []byte {
	frame, err := EncodeBatch(rows)
	if err != nil {
		panic(err)
	}
	return frame
}

// FuzzDecodeBatch drives DecodeBatch with arbitrary frames: it must never
// panic, and any frame it accepts must round-trip — re-encoding the decoded
// rows yields a frame that decodes to bit-identical values.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Add(mustEncode([][]float32{{1, 2, 3}}))
	f.Add(mustEncode([][]float32{{1, 2}, {3, 4}, {5, 6}}))
	f.Add(mustEncode([][]float32{{float32(math.NaN()), float32(math.Inf(1)), -0}}))
	big := make([][]float32, 17)
	for i := range big {
		big[i] = make([]float32, 33)
		for j := range big[i] {
			big[i][j] = float32(i*33 + j)
		}
	}
	f.Add(mustEncode(big))
	// Seeds a mutator is likely to turn into interesting near-misses.
	trunc := mustEncode([][]float32{{7, 8}})
	f.Add(trunc[:len(trunc)-5])
	f.Add(append(append([]byte(nil), trunc...), 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, frame []byte) {
		got, err := DecodeBatch(frame)
		if err != nil {
			return // rejected cleanly
		}
		rows := make([][]float32, got.Dim(0))
		for i := range rows {
			rows[i] = got.Row(i)
		}
		frame2, err := EncodeBatch(rows)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		got2, err := DecodeBatch(frame2)
		if err != nil {
			t.Fatalf("decoding re-encoded frame: %v", err)
		}
		if got2.Dim(0) != got.Dim(0) || got2.Dim(1) != got.Dim(1) {
			t.Fatalf("round-trip shape %v != %v", got2.Shape(), got.Shape())
		}
		a, b := got.Data(), got2.Data()
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("round-trip value %d: %x != %x", i, math.Float32bits(a[i]), math.Float32bits(b[i]))
			}
		}
	})
}
