package connector

import (
	"errors"
	"strings"
	"testing"

	"tensorbase/internal/fault"
)

func transferRows(n, width int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, width)
		for j := range rows[i] {
			rows[i][j] = float32(i*width + j)
		}
	}
	return rows
}

func TestTransferSurfacesEncodeFault(t *testing.T) {
	errBoom := errors.New("encoder out of memory")
	inj := fault.New()
	inj.FailAt("connector.encode", errBoom, 2)
	SetFaults(inj)
	defer SetFaults(nil)

	_, err := Transfer(NewSliceSource(transferRows(30, 4)), 4, 10, nil)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want injected encode fault", err)
	}
}

func TestTransferDetectsCorruptedFrame(t *testing.T) {
	inj := fault.New()
	inj.CorruptAt("connector.frame", 2)
	SetFaults(inj)
	defer SetFaults(nil)

	_, err := Transfer(NewSliceSource(transferRows(30, 4)), 4, 10, nil)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want frame checksum mismatch", err)
	}
	if inj.Fired("connector.frame") != 1 {
		t.Fatalf("fired = %d, want 1", inj.Fired("connector.frame"))
	}
}

func TestTransferSurfacesDecodeFault(t *testing.T) {
	errBoom := errors.New("receiver allocation failure")
	inj := fault.New()
	inj.FailAt("connector.decode", errBoom, 1)
	SetFaults(inj)
	defer SetFaults(nil)

	_, err := Transfer(NewSliceSource(transferRows(30, 4)), 4, 10, nil)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want injected decode fault", err)
	}
}
