package connector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tensorbase/internal/tensor"
)

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	rows := [][]float32{{1, 2, 3}, {4, 5, 6}}
	frame, err := EncodeBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if !got.Equal(want) {
		t.Fatalf("decode = %v", got.Data())
	}
}

func TestEncodeBatchRejectsRagged(t *testing.T) {
	if _, err := EncodeBatch([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch must error")
	}
	if _, err := EncodeBatch(nil); err == nil {
		t.Fatal("empty batch must error")
	}
}

func TestDecodeBatchRejectsCorruptFrames(t *testing.T) {
	frame, err := EncodeBatch([][]float32{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatch(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame must error")
	}
	if _, err := DecodeBatch(append(frame, 0)); err == nil {
		t.Fatal("oversized frame must error")
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("nil frame must error")
	}
}

func TestTransferAssemblesAllRows(t *testing.T) {
	const n, width, batch = 107, 5, 10 // non-divisible row count
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, width)
		for j := range rows[i] {
			rows[i][j] = float32(i*width + j)
		}
	}
	var stats Stats
	got, err := Transfer(NewSliceSource(rows), width, batch, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != n || got.Dim(1) != width {
		t.Fatalf("shape %v", got.Shape())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < width; j++ {
			if got.At(i, j) != float32(i*width+j) {
				t.Fatalf("element (%d,%d) = %v", i, j, got.At(i, j))
			}
		}
	}
	r, b, by := stats.Snapshot()
	if r != n {
		t.Fatalf("stats rows = %d", r)
	}
	if b != 11 { // ceil(107/10)
		t.Fatalf("stats batches = %d", b)
	}
	if by < int64(n*width*4) {
		t.Fatalf("stats bytes = %d, below payload size", by)
	}
}

func TestTransferWidthMismatch(t *testing.T) {
	rows := [][]float32{{1, 2}, {3, 4, 5}}
	if _, err := Transfer(NewSliceSource(rows), 2, 8, nil); err == nil {
		t.Fatal("row width mismatch must error")
	}
}

func TestTransferEmptySource(t *testing.T) {
	got, err := Transfer(NewSliceSource(nil), 3, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != 0 {
		t.Fatalf("got %d rows from empty source", got.Dim(0))
	}
}

func TestTransferRejectsBadBatchSize(t *testing.T) {
	if _, err := Transfer(NewSliceSource(nil), 3, 0, nil); err == nil {
		t.Fatal("batch size 0 must error")
	}
}

func TestTensorSource(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	got, err := Transfer(NewTensorSource(x), 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x) {
		t.Fatal("tensor source transfer mismatch")
	}
}

// Property: Transfer is the identity on row content for random sizes.
func TestTransferIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(64)
		width := 1 + r.Intn(16)
		batch := 1 + r.Intn(20)
		rows := make([][]float32, n)
		for i := range rows {
			rows[i] = make([]float32, width)
			for j := range rows[i] {
				rows[i][j] = r.Float32()
			}
		}
		got, err := Transfer(NewSliceSource(rows), width, batch, nil)
		if err != nil || got.Dim(0) != n {
			return false
		}
		for i := range rows {
			for j := range rows[i] {
				if got.At(i, j) != rows[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
