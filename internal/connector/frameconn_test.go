package connector

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"tensorbase/internal/fault"
)

func TestFrameConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	client, server := NewFrameConn(a, nil), NewFrameConn(b, nil)
	go func() {
		client.Send([]byte("hello"))
		client.Send([]byte("world"))
	}()
	for _, want := range []string{"hello", "world"} {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	// Response direction numbers its own frames.
	go server.Send([]byte("ack"))
	got, err := client.Recv()
	if err != nil || string(got) != "ack" {
		t.Fatalf("response = %q, %v", got, err)
	}
	if err := client.Send(nil); err == nil {
		t.Fatal("empty payload must be rejected")
	}
}

func TestFrameConnDiscardsDuplicates(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	link := fault.NewLink(1)
	link.SetDuplicate(1)
	client, server := NewFrameConn(a, link), NewFrameConn(b, nil)
	go func() {
		for i := 0; i < 3; i++ {
			client.Send([]byte{byte(i)})
		}
	}()
	for i := 0; i < 3; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("frame %d = %v", i, got)
		}
	}
	if link.Duplicated() == 0 {
		t.Fatal("link never duplicated")
	}
}

func TestFrameConnDropBreaksStream(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	link := fault.NewLink(1)
	client, server := NewFrameConn(a, link), NewFrameConn(b, nil)
	errc := make(chan error, 1)
	go func() {
		if err := client.Send([]byte("one")); err != nil {
			errc <- err
			return
		}
		link.SetPartitioned(true)
		if err := client.Send([]byte("two")); err != nil { // black-holed
			errc <- err
			return
		}
		link.SetPartitioned(false)
		errc <- client.Send([]byte("three"))
	}()
	if got, err := server.Recv(); err != nil || string(got) != "one" {
		t.Fatalf("first = %q, %v", got, err)
	}
	if _, err := server.Recv(); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("gap must break the stream, got %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if link.Dropped() != 1 {
		t.Fatalf("dropped = %d", link.Dropped())
	}
}

func TestFrameConnReorderBreaksStream(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	link := fault.NewLink(1)
	link.SetReorder(1)
	client, server := NewFrameConn(a, link), NewFrameConn(b, nil)
	go func() {
		client.Send([]byte("one")) // held
		client.Send([]byte("two")) // written first, then "one" released
	}()
	if _, err := server.Recv(); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("reorder must break the stream, got %v", err)
	}
}

func TestFrameConnRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	c := NewFrameConn(&buf, nil)
	if err := c.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-6] ^= 0x40 // flip one payload bit in transit
	if _, err := NewFrameConn(&buf, nil).Recv(); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("corruption must break the stream, got %v", err)
	}
}

// TestFrameConnFaultSoak pushes a few hundred frames through a seeded lossy
// link, reconnecting (fresh pipe, fresh seq space) whenever the stream
// breaks — the retry discipline shard clients use. Every frame eventually
// arrives exactly once per accepted attempt and in order per connection.
func TestFrameConnFaultSoak(t *testing.T) {
	link := fault.NewLink(42)
	link.SetDrop(0.05)
	link.SetDuplicate(0.05)
	link.SetReorder(0.05)

	for i := 0; i < 200; i++ {
		payload := []byte(fmt.Sprintf("frame-%d", i))
		for attempt := 0; ; attempt++ {
			if attempt > 100 {
				t.Fatalf("frame %d never delivered", i)
			}
			a, b := net.Pipe()
			b.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			client, server := NewFrameConn(a, link), NewFrameConn(b, nil)
			done := make(chan struct{})
			go func() {
				defer close(done)
				client.Send(payload)
				// Push one trailer frame so a held first frame gets
				// flushed (and a dropped one surfaces as a gap).
				client.Send([]byte("trailer"))
			}()
			got, err := server.Recv()
			ok := err == nil && bytes.Equal(got, payload)
			a.Close()
			b.Close()
			<-done
			if ok {
				break
			}
			// Any transport error — stream break, deadline on a
			// double-drop, teardown race — is a reconnect trigger.
		}
	}
}
