package connector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"tensorbase/internal/fault"
)

// FrameConn promotes the connector's framed-batch format from an in-process
// channel to a network path: opaque payloads travel over any io.ReadWriter
// (net.Pipe in tests, TCP between shard nodes) as sequence-numbered
// CRC-framed blobs.
//
// Wire format, per frame:
//
//	u32 len | u64 seq | payload | u32 CRC32-C(seq|payload)
//
// The sender routes every frame through an optional fault.Link, the same
// lossy-wire model the replication transport uses: drops are silent, a held
// frame is released after its successor (one-slot reorder), duplicates are
// written twice, delays sleep in-line. The receiver enforces the sequence
// discipline those faults attack: a duplicate (seq ≤ last seen) is
// discarded, while a gap or reorder surfaces ErrStreamBroken — the caller's
// signal to drop the connection and retry the whole request on a fresh one.
// Each direction of a connection numbers its own frames, so one FrameConn
// per endpoint covers request/response traffic.

// maxWireFrame bounds one payload; anything larger in a length field is
// damage or a protocol break.
const maxWireFrame = 64 << 20

// ErrStreamBroken reports CRC failure, a sequence gap or reorder, or a
// malformed length — the stream cannot be trusted past this point.
var ErrStreamBroken = errors.New("connector: stream broken")

// FrameConn is one endpoint's view of a framed connection. Not safe for
// concurrent use; callers serialise request/response exchanges.
type FrameConn struct {
	rw      io.ReadWriter
	link    *fault.Link
	sendSeq uint64
	recvSeq uint64
	held    []byte
}

// NewFrameConn wraps rw. link may be nil for a perfect wire.
func NewFrameConn(rw io.ReadWriter, link *fault.Link) *FrameConn {
	return &FrameConn{rw: rw, link: link}
}

// Send frames payload and writes it, applying the link's verdict.
func (c *FrameConn) Send(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxWireFrame {
		return fmt.Errorf("connector: bad frame payload size %d", len(payload))
	}
	c.sendSeq++
	frame := make([]byte, 0, 4+8+len(payload)+frameCRCSize)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(8+len(payload)))
	frame = binary.LittleEndian.AppendUint64(frame, c.sendSeq)
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame[4:], castagnoli))

	v := c.link.Next()
	if v.Delay > 0 {
		time.Sleep(v.Delay)
	}
	switch {
	case v.Drop:
		return nil
	case v.Hold && c.held == nil:
		c.held = frame
		return nil
	}
	if _, err := c.rw.Write(frame); err != nil {
		return err
	}
	if v.Dup {
		if _, err := c.rw.Write(frame); err != nil {
			return err
		}
	}
	if c.held != nil {
		held := c.held
		c.held = nil
		if _, err := c.rw.Write(held); err != nil {
			return err
		}
		c.link.Released()
	}
	return nil
}

// Recv reads the next in-order payload. Duplicates are skipped silently;
// anything else out of order is ErrStreamBroken. io errors (including read
// deadlines, the partition detector) pass through.
func (c *FrameConn) Recv() ([]byte, error) {
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n < 9 || n > maxWireFrame+8 {
			return nil, fmt.Errorf("%w: frame length %d", ErrStreamBroken, n)
		}
		body := make([]byte, n+frameCRCSize)
		if _, err := io.ReadFull(c.rw, body); err != nil {
			return nil, err
		}
		if crc32.Checksum(body[:n], castagnoli) != binary.LittleEndian.Uint32(body[n:]) {
			return nil, fmt.Errorf("%w: frame CRC mismatch", ErrStreamBroken)
		}
		seq := binary.LittleEndian.Uint64(body[:8])
		if seq <= c.recvSeq {
			continue // duplicate delivery
		}
		if seq != c.recvSeq+1 {
			return nil, fmt.Errorf("%w: sequence gap (%d after %d)", ErrStreamBroken, seq, c.recvSeq)
		}
		c.recvSeq = seq
		return body[8:n], nil
	}
}
