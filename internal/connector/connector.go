// Package connector implements the cross-system data path of the DL-centric
// architecture: feature rows produced by the database are serialised into
// length-prefixed binary frames, moved through a bounded channel, and
// deserialised into the external runtime's tensor layout. It stands in for
// the PostgreSQL → ConnectorX → TensorFlow/PyTorch path of the paper's
// baseline, and its measurable per-row encode/copy/decode cost is what makes
// cross-system transfer the bottleneck for small-model inference (Fig. 2/3).
//
// Frames are untrusted input on the receiving side: every frame carries a
// CRC32-C trailer, and DecodeBatch validates the header against the frame
// length with overflow-safe arithmetic, so a truncated, padded, or
// bit-flipped frame is rejected with an error rather than panicking or
// mis-shaping the tensor. For testing, SetFaults installs a fault injector
// observed at three points: "connector.encode" (error rules fail the
// sender), "connector.frame" (corruption rules flip a bit in the encoded
// frame in transit), and "connector.decode" (error rules fail the receiver).
package connector

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync/atomic"

	"tensorbase/internal/fault"
	"tensorbase/internal/tensor"
)

// frameCRCSize is the CRC32-C trailer appended to every frame.
const frameCRCSize = 4

// maxFrameElems caps the decoded element count (1 GiB of float32 payload),
// bounding allocations driven by a hostile header.
const maxFrameElems = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// faults is the package-wide fault injector (nil means no injection). A
// package-level atomic rather than per-transfer plumbing keeps the injection
// surface out of the hot-path API.
var faults atomic.Pointer[fault.Injector]

// SetFaults installs inj for all subsequent encode/transfer/decode calls;
// nil removes it.
func SetFaults(inj *fault.Injector) { faults.Store(inj) }

// Stats counts transferred data. All fields are updated atomically.
type Stats struct {
	Rows    atomic.Int64
	Batches atomic.Int64
	Bytes   atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() (rows, batches, bytes int64) {
	return s.Rows.Load(), s.Batches.Load(), s.Bytes.Load()
}

// EncodeBatch serialises a batch of equal-width float32 rows into a frame:
// uvarint row count, uvarint width, row-major little-endian payload, and a
// CRC32-C trailer over everything before it.
func EncodeBatch(rows [][]float32) ([]byte, error) {
	if err := faults.Load().Check("connector.encode"); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("connector: empty batch")
	}
	width := len(rows[0])
	if width == 0 {
		return nil, fmt.Errorf("connector: zero-width rows")
	}
	// Mirror DecodeBatch's shape cap with overflow-safe arithmetic: a
	// hostile or buggy caller must not be able to wrap the allocation
	// size (n + 4*rows*width can overflow int) into a small frame.
	elems := uint64(len(rows)) * uint64(width)
	if elems/uint64(width) != uint64(len(rows)) || elems > maxFrameElems {
		return nil, fmt.Errorf("connector: implausible batch shape %d×%d", len(rows), width)
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rows)))
	n += binary.PutUvarint(hdr[n:], uint64(width))
	frame := make([]byte, n+int(4*elems)+frameCRCSize)
	copy(frame, hdr[:n])
	off := n
	for i, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("connector: ragged batch: row %d has %d values, want %d", i, len(row), width)
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(frame[off:], math.Float32bits(v))
			off += 4
		}
	}
	binary.LittleEndian.PutUint32(frame[off:], crc32.Checksum(frame[:off], castagnoli))
	return frame, nil
}

// DecodeBatch parses a frame produced by EncodeBatch into a fresh
// (rows, width) tensor — the copy into the receiving system's layout. The
// frame is treated as untrusted: the CRC trailer is verified first, the
// header is validated against the frame length with overflow-safe
// arithmetic, and any mismatch returns an error.
func DecodeBatch(frame []byte) (*tensor.Tensor, error) {
	if err := faults.Load().Check("connector.decode"); err != nil {
		return nil, err
	}
	if len(frame) < frameCRCSize+2 {
		return nil, fmt.Errorf("connector: frame of %d bytes is too short", len(frame))
	}
	body := frame[:len(frame)-frameCRCSize]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(frame[len(body):]); got != want {
		return nil, fmt.Errorf("connector: frame checksum mismatch (%08x != %08x)", got, want)
	}
	rows, n1 := binary.Uvarint(body)
	if n1 <= 0 {
		return nil, fmt.Errorf("connector: bad frame header")
	}
	width, n2 := binary.Uvarint(body[n1:])
	if n2 <= 0 {
		return nil, fmt.Errorf("connector: bad frame width")
	}
	if rows == 0 || width == 0 {
		return nil, fmt.Errorf("connector: empty frame shape %d×%d", rows, width)
	}
	elems := rows * width
	if width != 0 && elems/width != rows || elems > maxFrameElems {
		return nil, fmt.Errorf("connector: implausible frame shape %d×%d", rows, width)
	}
	off := n1 + n2
	if uint64(len(body)-off) != 4*elems {
		return nil, fmt.Errorf("connector: frame payload is %d bytes, want %d for %d×%d", len(body)-off, 4*elems, rows, width)
	}
	t := tensor.New(int(rows), int(width))
	data := t.Data()
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
		off += 4
	}
	return t, nil
}

// RowSource yields feature rows; it returns ok=false at end of stream.
type RowSource interface {
	NextRow() (row []float32, ok bool, err error)
}

// SliceSource adapts an in-memory row set to RowSource.
type SliceSource struct {
	rows [][]float32
	pos  int
}

// NewSliceSource returns a RowSource over rows.
func NewSliceSource(rows [][]float32) *SliceSource { return &SliceSource{rows: rows} }

// NextRow implements RowSource.
func (s *SliceSource) NextRow() ([]float32, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// TensorSource adapts a 2-D tensor to RowSource, one row at a time.
type TensorSource struct {
	t   *tensor.Tensor
	pos int
}

// NewTensorSource returns a RowSource over the rows of a 2-D tensor.
func NewTensorSource(t *tensor.Tensor) *TensorSource {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("connector: TensorSource requires a 2-D tensor, got %v", t.Shape()))
	}
	return &TensorSource{t: t}
}

// NextRow implements RowSource.
func (s *TensorSource) NextRow() ([]float32, bool, error) {
	if s.pos >= s.t.Dim(0) {
		return nil, false, nil
	}
	r := s.t.Row(s.pos)
	s.pos++
	return r, true, nil
}

// Transfer moves all rows from src through encode → frame channel → decode,
// in batches of batchRows, and returns the assembled tensor on the receiver
// side. It runs sender and receiver concurrently over a bounded channel,
// like a connector cursor feeding a training/inference process, and records
// traffic in stats (which may be nil).
func Transfer(src RowSource, width, batchRows int, stats *Stats) (*tensor.Tensor, error) {
	if batchRows < 1 {
		return nil, fmt.Errorf("connector: batch size %d < 1", batchRows)
	}
	frames := make(chan []byte, 4)
	errc := make(chan error, 1)
	go func() {
		defer close(frames)
		batch := make([][]float32, 0, batchRows)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			frame, err := EncodeBatch(batch)
			if err != nil {
				return err
			}
			// In-transit corruption point: a corruption rule flips one bit
			// in the frame, which the receiver's CRC check must catch.
			if err := faults.Load().CheckData("connector.frame", frame); err != nil {
				return err
			}
			if stats != nil {
				stats.Rows.Add(int64(len(batch)))
				stats.Batches.Add(1)
				stats.Bytes.Add(int64(len(frame)))
			}
			frames <- frame
			batch = batch[:0]
			return nil
		}
		for {
			row, ok, err := src.NextRow()
			if err != nil {
				errc <- err
				return
			}
			if !ok {
				break
			}
			if len(row) != width {
				errc <- fmt.Errorf("connector: row width %d, want %d", len(row), width)
				return
			}
			// Copy: the source may reuse row storage.
			batch = append(batch, append([]float32(nil), row...))
			if len(batch) == batchRows {
				if err := flush(); err != nil {
					errc <- err
					return
				}
			}
		}
		if err := flush(); err != nil {
			errc <- err
		}
	}()

	var parts []*tensor.Tensor
	var decodeErr error
	total := 0
	for frame := range frames {
		if decodeErr != nil {
			continue // drain so the sender can finish and close the channel
		}
		t, err := DecodeBatch(frame)
		if err != nil {
			decodeErr = err
			continue
		}
		parts = append(parts, t)
		total += t.Dim(0)
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	out := tensor.New(max(total, 0), width)
	row := 0
	for _, p := range parts {
		copy(out.Data()[row*width:], p.Data())
		row += p.Dim(0)
	}
	return out, nil
}
