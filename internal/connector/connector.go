// Package connector implements the cross-system data path of the DL-centric
// architecture: feature rows produced by the database are serialised into
// length-prefixed binary frames, moved through a bounded channel, and
// deserialised into the external runtime's tensor layout. It stands in for
// the PostgreSQL → ConnectorX → TensorFlow/PyTorch path of the paper's
// baseline, and its measurable per-row encode/copy/decode cost is what makes
// cross-system transfer the bottleneck for small-model inference (Fig. 2/3).
package connector

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"tensorbase/internal/tensor"
)

// Stats counts transferred data. All fields are updated atomically.
type Stats struct {
	Rows    atomic.Int64
	Batches atomic.Int64
	Bytes   atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() (rows, batches, bytes int64) {
	return s.Rows.Load(), s.Batches.Load(), s.Bytes.Load()
}

// EncodeBatch serialises a batch of equal-width float32 rows into a frame:
// uvarint row count, uvarint width, then row-major little-endian payload.
func EncodeBatch(rows [][]float32) ([]byte, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("connector: empty batch")
	}
	width := len(rows[0])
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rows)))
	n += binary.PutUvarint(hdr[n:], uint64(width))
	frame := make([]byte, n+4*len(rows)*width)
	copy(frame, hdr[:n])
	off := n
	for i, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("connector: ragged batch: row %d has %d values, want %d", i, len(row), width)
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(frame[off:], math.Float32bits(v))
			off += 4
		}
	}
	return frame, nil
}

// DecodeBatch parses a frame produced by EncodeBatch into a fresh
// (rows, width) tensor — the copy into the receiving system's layout.
func DecodeBatch(frame []byte) (*tensor.Tensor, error) {
	rows, n1 := binary.Uvarint(frame)
	if n1 <= 0 {
		return nil, fmt.Errorf("connector: bad frame header")
	}
	width, n2 := binary.Uvarint(frame[n1:])
	if n2 <= 0 {
		return nil, fmt.Errorf("connector: bad frame width")
	}
	off := n1 + n2
	want := off + 4*int(rows)*int(width)
	if len(frame) != want {
		return nil, fmt.Errorf("connector: frame is %d bytes, want %d for %d×%d", len(frame), want, rows, width)
	}
	t := tensor.New(int(rows), int(width))
	data := t.Data()
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(frame[off:]))
		off += 4
	}
	return t, nil
}

// RowSource yields feature rows; it returns ok=false at end of stream.
type RowSource interface {
	NextRow() (row []float32, ok bool, err error)
}

// SliceSource adapts an in-memory row set to RowSource.
type SliceSource struct {
	rows [][]float32
	pos  int
}

// NewSliceSource returns a RowSource over rows.
func NewSliceSource(rows [][]float32) *SliceSource { return &SliceSource{rows: rows} }

// NextRow implements RowSource.
func (s *SliceSource) NextRow() ([]float32, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// TensorSource adapts a 2-D tensor to RowSource, one row at a time.
type TensorSource struct {
	t   *tensor.Tensor
	pos int
}

// NewTensorSource returns a RowSource over the rows of a 2-D tensor.
func NewTensorSource(t *tensor.Tensor) *TensorSource {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("connector: TensorSource requires a 2-D tensor, got %v", t.Shape()))
	}
	return &TensorSource{t: t}
}

// NextRow implements RowSource.
func (s *TensorSource) NextRow() ([]float32, bool, error) {
	if s.pos >= s.t.Dim(0) {
		return nil, false, nil
	}
	r := s.t.Row(s.pos)
	s.pos++
	return r, true, nil
}

// Transfer moves all rows from src through encode → frame channel → decode,
// in batches of batchRows, and returns the assembled tensor on the receiver
// side. It runs sender and receiver concurrently over a bounded channel,
// like a connector cursor feeding a training/inference process, and records
// traffic in stats (which may be nil).
func Transfer(src RowSource, width, batchRows int, stats *Stats) (*tensor.Tensor, error) {
	if batchRows < 1 {
		return nil, fmt.Errorf("connector: batch size %d < 1", batchRows)
	}
	frames := make(chan []byte, 4)
	errc := make(chan error, 1)
	go func() {
		defer close(frames)
		batch := make([][]float32, 0, batchRows)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			frame, err := EncodeBatch(batch)
			if err != nil {
				return err
			}
			if stats != nil {
				stats.Rows.Add(int64(len(batch)))
				stats.Batches.Add(1)
				stats.Bytes.Add(int64(len(frame)))
			}
			frames <- frame
			batch = batch[:0]
			return nil
		}
		for {
			row, ok, err := src.NextRow()
			if err != nil {
				errc <- err
				return
			}
			if !ok {
				break
			}
			if len(row) != width {
				errc <- fmt.Errorf("connector: row width %d, want %d", len(row), width)
				return
			}
			// Copy: the source may reuse row storage.
			batch = append(batch, append([]float32(nil), row...))
			if len(batch) == batchRows {
				if err := flush(); err != nil {
					errc <- err
					return
				}
			}
		}
		if err := flush(); err != nil {
			errc <- err
		}
	}()

	var parts []*tensor.Tensor
	total := 0
	for frame := range frames {
		t, err := DecodeBatch(frame)
		if err != nil {
			return nil, err
		}
		parts = append(parts, t)
		total += t.Dim(0)
	}
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	out := tensor.New(max(total, 0), width)
	row := 0
	for _, p := range parts {
		copy(out.Data()[row*width:], p.Data())
		row += p.Dim(0)
	}
	return out, nil
}
