// Package lifecycle is the query-lifecycle robustness layer shared by every
// long-running loop in the engine: a cheap atomic cancellation token derived
// from a context.Context, and a typed panic error that converts a crash in a
// model forward pass or worker goroutine into an ordinary query error
// carrying the offending stack.
//
// The token exists because the hot loops — block multiplies, heap scans,
// pipelined batch producers — cannot afford a mutex-guarded ctx.Err() per
// tuple. Watch spawns one watcher goroutine per query that flips an atomic
// flag when the context fires; every loop then pays a single atomic load per
// check. A nil *Token is valid everywhere and means "never cancelled", so
// pre-existing entry points thread nil without branching.
package lifecycle

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Token is the cancellation flag threaded from DB.QueryContext through the
// executor's loops. All methods are safe on a nil receiver (never
// cancelled) and for concurrent use.
type Token struct {
	ctx  context.Context
	flag atomic.Bool
}

// Watch derives a token from ctx. The returned stop function must be called
// when the query finishes (successfully or not) to release the watcher
// goroutine; it is idempotent. A context that can never be cancelled costs
// no goroutine at all.
func Watch(ctx context.Context) (*Token, func()) {
	t := &Token{ctx: ctx}
	done := ctx.Done()
	if done == nil {
		return t, func() {}
	}
	if ctx.Err() != nil {
		t.flag.Store(true)
		return t, func() {}
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			t.flag.Store(true)
		case <-stop:
		}
	}()
	var once sync.Once
	return t, func() { once.Do(func() { close(stop) }) }
}

// Canceled reports whether the context has fired. One atomic load; the
// intended per-tuple / per-block check.
func (t *Token) Canceled() bool {
	return t != nil && t.flag.Load()
}

// Err returns nil while the query is live, and the context's error
// (context.Canceled or context.DeadlineExceeded) once it has been
// cancelled. Loops use `if err := tok.Err(); err != nil { return err }`.
func (t *Token) Err() error {
	if t == nil || !t.flag.Load() {
		return nil
	}
	return t.ctx.Err()
}

// Done returns the underlying context's done channel for select-based
// waits (single-flight, channel handoffs). Nil receiver (or a context that
// cannot be cancelled) returns nil, which blocks forever in a select — the
// correct behaviour for "never cancelled".
func (t *Token) Done() <-chan struct{} {
	if t == nil || t.ctx == nil {
		return nil
	}
	return t.ctx.Done()
}

// Cause returns the underlying context error regardless of whether the
// watcher has flipped the atomic flag yet. Call it after Done() fires,
// where the context guarantees a non-nil error.
func (t *Token) Cause() error {
	if t == nil || t.ctx == nil {
		return nil
	}
	return t.ctx.Err()
}

// PanicError is a recovered panic converted into a query error: the
// panicking value plus the goroutine stack at the recovery point. It is
// what a bad model, malformed tensor block, or buggy UDF produces instead
// of killing the database process.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// recovered counts panics converted to errors process-wide, surfaced by
// engine.Stats so operators can see shared-fate hazards that were contained.
var recovered atomic.Int64

// Recovered reports how many panics have been converted to errors since the
// process started.
func Recovered() int64 { return recovered.Load() }

// AsError converts a recover() value into a *PanicError, capturing the
// current stack and bumping the process-wide counter. It returns nil for a
// nil value so callers can write `if err := lifecycle.AsError(recover());
// err != nil { ... }` unconditionally in a deferred function.
func AsError(v any) error {
	if v == nil {
		return nil
	}
	recovered.Add(1)
	return &PanicError{Value: v, Stack: debug.Stack()}
}
