package lifecycle

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilTokenNeverCancels(t *testing.T) {
	var tok *Token
	if tok.Canceled() {
		t.Fatal("nil token canceled")
	}
	if tok.Err() != nil || tok.Cause() != nil {
		t.Fatal("nil token has error")
	}
	if tok.Done() != nil {
		t.Fatal("nil token has done channel")
	}
}

func TestWatchFlagsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok, stop := Watch(ctx)
	defer stop()
	if tok.Canceled() || tok.Err() != nil {
		t.Fatal("fresh token canceled")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("token never observed cancellation")
		}
	}
	if !errors.Is(tok.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", tok.Err())
	}
	if !errors.Is(tok.Cause(), context.Canceled) {
		t.Fatalf("Cause() = %v, want context.Canceled", tok.Cause())
	}
}

func TestWatchDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	tok, stop := Watch(ctx)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("token never observed deadline")
		}
	}
	if !errors.Is(tok.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want DeadlineExceeded", tok.Err())
	}
}

func TestWatchAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tok, stop := Watch(ctx)
	defer stop()
	if !tok.Canceled() {
		t.Fatal("token over a dead context not canceled immediately")
	}
}

func TestWatchBackgroundNeedsNoGoroutine(t *testing.T) {
	tok, stop := Watch(context.Background())
	defer stop()
	if tok.Canceled() || tok.Err() != nil {
		t.Fatal("background token canceled")
	}
	if tok.Done() != nil {
		t.Fatal("background context should have nil done channel")
	}
	stop()
	stop() // idempotent
}

func TestAsError(t *testing.T) {
	if err := AsError(nil); err != nil {
		t.Fatalf("AsError(nil) = %v", err)
	}
	before := Recovered()
	err := func() (err error) {
		defer func() { err = AsError(recover()) }()
		panic("kaboom")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *PanicError", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError missing value/stack: %+v", pe)
	}
	if Recovered() != before+1 {
		t.Fatalf("Recovered() = %d, want %d", Recovered(), before+1)
	}
}
