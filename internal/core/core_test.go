package core

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"tensorbase/internal/dlruntime"
	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

func newPool(t *testing.T, frames int) *storage.BufferPool {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "core.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return storage.NewBufferPool(d, frames)
}

func TestOptimizerChoosesUDFForSmallModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.FraudFC(rng, 256)
	plan, err := NewOptimizer(2<<30).Plan(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.AllUDF() {
		t.Fatalf("small model should be fully UDF-centric:\n%s", plan.Explain())
	}
}

func TestOptimizerChoosesRelationCentricAboveThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := nn.Amazon14kFC(rng, 100) // 5975 → 1024 → 145
	// First-layer estimate at batch 1000: 1000·5975 + 5975·1024 + 1000·1024
	// floats ≈ 52 MB. Threshold below that forces relation-centric.
	plan, err := NewOptimizer(16<<20).Plan(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Decisions[0].Repr != ReprRelation {
		t.Fatalf("first layer should be relation-centric:\n%s", plan.Explain())
	}
	if plan.NumRelational() == 0 || plan.AllUDF() {
		t.Fatalf("plan summary wrong:\n%s", plan.Explain())
	}
	// The cheap tail ops must stay UDF-centric.
	last := plan.Decisions[len(plan.Decisions)-1]
	if last.Repr != ReprUDF {
		t.Fatalf("tail op should be UDF-centric:\n%s", plan.Explain())
	}
}

func TestOptimizerThresholdBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := nn.FraudFC(rng, 256)
	ests, err := m.MemEstimates(100)
	if err != nil {
		t.Fatal(err)
	}
	maxEst := ests[0].Bytes
	for _, e := range ests {
		if e.Bytes > maxEst {
			maxEst = e.Bytes
		}
	}
	// Threshold exactly at the max estimate: not strictly above, stays UDF.
	plan, err := NewOptimizer(maxEst).Plan(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.AllUDF() {
		t.Fatal("estimate equal to threshold must stay UDF-centric")
	}
	plan, err = NewOptimizer(maxEst-1).Plan(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AllUDF() {
		t.Fatal("estimate above threshold must switch representation")
	}
}

func TestOptimizerZeroThresholdMeansUnlimited(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := nn.EncoderFC(rng)
	plan, err := NewOptimizer(0).Plan(m, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.AllUDF() {
		t.Fatal("zero threshold disables relation-centric switching")
	}
}

func TestOptimizerRejectsBadBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := NewOptimizer(1).Plan(nn.FraudFC(rng, 16), 0); err == nil {
		t.Fatal("batch 0 must error")
	}
}

func TestExplainMentionsRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := nn.Amazon14kFC(rng, 200)
	plan, err := NewOptimizer(16<<20).Plan(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Explain()
	if !strings.Contains(s, "relation-centric") || !strings.Contains(s, "udf-centric") {
		t.Fatalf("explain missing representations:\n%s", s)
	}
}

func TestExecutorFusedUDFMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := nn.FraudFC(rng, 64)
	plan, err := NewOptimizer(1<<30).Plan(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(newPool(t, 16), nil)
	x := tensor.New(8, 28)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	res, err := ex.Run(plan, x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(m.Forward(x.Clone()), 1e-5) {
		t.Fatal("fused UDF result differs from direct forward")
	}
}

func TestExecutorMixedPlanMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := nn.MustModel("mixed", []int{1, 96},
		nn.NewLinear(rng, 96, 80), nn.ReLU{},
		nn.NewLinear(rng, 80, 8), nn.Softmax{},
	)
	// Force the first linear relation-centric with a tiny threshold that
	// the later ops stay under.
	ests, err := m.MemEstimates(16)
	if err != nil {
		t.Fatal(err)
	}
	threshold := ests[2].Bytes + 1 // above the 80→8 linear, below the 96→80 one
	plan, err := NewOptimizer(threshold).Plan(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AllUDF() || plan.Decisions[0].Repr != ReprRelation {
		t.Fatalf("test setup wrong:\n%s", plan.Explain())
	}
	ex := NewExecutor(newPool(t, 64), nil)
	x := tensor.New(16, 96)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	res, err := ex.Run(plan, x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(m.Forward(x.Clone()), 1e-3) {
		t.Fatal("mixed plan result differs from direct forward")
	}
}

func TestExecutorRelationalConvMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := nn.MustModel("conv", []int{1, 10, 10, 3}, nn.NewConv2D(rng, 6, 1, 1, 3))
	plan, err := NewOptimizer(1).Plan(m, 1) // everything relation-centric
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(newPool(t, 64), nil)
	x := tensor.New(1, 10, 10, 3)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	res, err := ex.Run(plan, x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocked == nil {
		t.Fatal("relation-centric conv should leave a blocked result")
	}
	got, err := res.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	want := m.Forward(x.Clone()).Reshape(100, 6)
	if !got.AlmostEqual(want, 1e-3) {
		t.Fatal("relational conv result differs from direct forward")
	}
}

func TestExecutorUDFPlanOOMsButRelationalCompletes(t *testing.T) {
	// The Table 3 mechanism in miniature: a whole-tensor (UDF) plan whose
	// operator footprint exceeds the budget OOMs, while the relational
	// plan for the same model and batch completes within it.
	rng := rand.New(rand.NewSource(10))
	m := nn.MustModel("big", []int{1, 512}, nn.NewLinear(rng, 512, 256))
	batch := 512
	est, err := m.MaxOpBytes(batch)
	if err != nil {
		t.Fatal(err)
	}
	budget := memlimit.NewBudget(est / 2)
	x := tensor.New(batch, 512)

	udfPlan, err := NewOptimizer(0).Plan(m, batch) // all UDF
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(newPool(t, 256), budget)
	if _, err := ex.Run(udfPlan, x); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("whole-tensor plan err = %v, want ErrOOM", err)
	}

	relPlan, err := NewOptimizer(1).Plan(m, batch) // all relational
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(relPlan, x)
	if err != nil {
		t.Fatalf("relational plan should complete: %v", err)
	}
	if res.Rows() != batch {
		t.Fatalf("rows = %d", res.Rows())
	}
}

func TestExecutorRejectsFlattenAfterRelationalConv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := nn.MustModel("convflat", []int{1, 8, 8, 3},
		nn.NewConv2D(rng, 4, 1, 1, 3), nn.Flatten{})
	plan, err := NewOptimizer(1).Plan(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(newPool(t, 32), nil)
	if _, err := ex.Run(plan, tensor.New(1, 8, 8, 3)); err == nil {
		t.Fatal("flatten after relational conv must be rejected")
	}
}

func TestSplitLinearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := nn.NewLinear(rng, 10, 6)
	for i := range l.B.Data() {
		l.B.Data()[i] = rng.Float32()
	}
	left, right, err := SplitLinear(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 10)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	want := l.Forward(x)
	x1 := x.Slice2D(0, 3, 0, 4)
	x2 := x.Slice2D(0, 3, 4, 10)
	got := left.Forward(x1)
	tensor.AddInto(got, right.Forward(x2))
	if !got.AlmostEqual(want, 1e-5) {
		t.Fatal("split violates W·[x1;x2] = W1·x1 + W2·x2")
	}
}

func TestSplitLinearValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := nn.NewLinear(rng, 10, 6)
	if _, _, err := SplitLinear(l, 0); err == nil {
		t.Fatal("split width 0 must error")
	}
	if _, _, err := SplitLinear(l, 10); err == nil {
		t.Fatal("split width = in must error")
	}
}

func featureTable(rng *rand.Rand, n, width int, simSpread float64) []table.Tuple {
	rows := make([]table.Tuple, n)
	for i := range rows {
		vec := make([]float32, width)
		for j := range vec {
			vec[j] = float32(rng.NormFloat64())
		}
		rows[i] = table.Tuple{
			table.FloatVal(rng.Float64() * simSpread),
			table.VecVal(vec),
		}
	}
	return rows
}

func featureSchema(sim, vec string) *table.Schema {
	return table.MustSchema(
		table.Column{Name: sim, Type: table.Float64},
		table.Column{Name: vec, Type: table.FloatVec},
	)
}

func TestPushdownMatchesNaivePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const f1, f2 = 12, 8
	d1 := featureTable(rng, 40, f1, 3)
	d2 := featureTable(rng, 40, f2, 3)
	model := nn.MustModel("pd", []int{1, f1 + f2},
		nn.NewLinear(rng, f1+f2, 16), nn.ReLU{},
		nn.NewLinear(rng, 16, 2), nn.Softmax{},
	)
	q := &FeatureJoinQuery{
		Left:    exec.NewMemScan(featureSchema("s1", "v1"), d1),
		Right:   exec.NewMemScan(featureSchema("s2", "v2"), d2),
		LeftSim: "s1", RightSim: "s2",
		LeftVec: "v1", RightVec: "v2",
		Eps:   0.05,
		Model: model,
	}
	naive, err := q.BuildNaive()
	if err != nil {
		t.Fatal(err)
	}
	nrows, err := exec.Collect(naive)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := q.BuildPushdown()
	if err != nil {
		t.Fatal(err)
	}
	prows, err := exec.Collect(pd)
	if err != nil {
		t.Fatal(err)
	}
	if len(nrows) != len(prows) {
		t.Fatalf("row counts differ: naive %d, pushdown %d", len(nrows), len(prows))
	}
	if len(nrows) == 0 {
		t.Fatal("test produced no join matches; widen eps")
	}
	// Both plans end with a prediction column; compare as multisets of
	// prediction vectors rendered to strings.
	np := predictionSet(t, nrows)
	pp := predictionSet(t, prows)
	for i := range np {
		if np[i] != pp[i] {
			t.Fatalf("prediction %d differs:\n%s\n%s", i, np[i], pp[i])
		}
	}
}

func predictionSet(t *testing.T, rows []table.Tuple) []string {
	t.Helper()
	out := make([]string, len(rows))
	for i, r := range rows {
		vec := r[len(r)-1].Vec
		var sb strings.Builder
		for _, v := range vec {
			// Round to absorb float reassociation differences.
			fmt.Fprintf(&sb, "%.4f,", v)
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func TestPlanCacheLadderServesWithoutRecompile(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := nn.FraudFC(rng, 64)
	pc, err := NewPlanCache(NewOptimizer(1<<30), m, []int{16, 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 16, 100, 256} {
		plan, err := pc.PlanFor(b)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Batch < b {
			t.Fatalf("plan for batch %d compiled at %d (< requested)", b, plan.Batch)
		}
	}
	hits, misses := pc.Stats()
	if hits != 4 || misses != 0 {
		t.Fatalf("stats = %d/%d, want 4/0", hits, misses)
	}
	// Beyond the ladder: runtime compile, then cached.
	if _, err := pc.PlanFor(10000); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.PlanFor(10000); err != nil {
		t.Fatal(err)
	}
	hits, misses = pc.Stats()
	if misses != 1 || hits != 5 {
		t.Fatalf("stats after overflow = %d/%d, want 5/1", hits, misses)
	}
	if got := pc.Ladder(); len(got) != 3 || got[2] != 10000 {
		t.Fatalf("ladder = %v", got)
	}
}

func TestPlanCacheConservativeForSmallerBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := nn.MustModel("pc", []int{1, 128}, nn.NewLinear(rng, 128, 64))
	// Threshold between the batch-16 and batch-256 estimates of the op.
	e16, err := m.MaxOpBytes(16)
	if err != nil {
		t.Fatal(err)
	}
	e256, err := m.MaxOpBytes(256)
	if err != nil {
		t.Fatal(err)
	}
	if e16 >= e256 {
		t.Fatal("estimates must grow with batch")
	}
	pc, err := NewPlanCache(NewOptimizer((e16+e256)/2), m, []int{256})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pc.PlanFor(16)
	if err != nil {
		t.Fatal(err)
	}
	// AoT serves the batch-256 plan: relation-centric, which is the
	// conservative (memory-safe) choice for the smaller batch.
	if plan.Decisions[0].Repr != ReprRelation {
		t.Fatalf("plan = %s", plan.Explain())
	}
}

func TestPlanCacheValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	m := nn.FraudFC(rng, 16)
	if _, err := NewPlanCache(NewOptimizer(0), m, []int{0}); err == nil {
		t.Fatal("ladder batch 0 must error")
	}
	pc, err := NewPlanCache(NewOptimizer(0), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.PlanFor(0); err == nil {
		t.Fatal("batch 0 must error")
	}
	if len(pc.Ladder()) != len(DefaultPlanLadder) {
		t.Fatalf("default ladder = %v", pc.Ladder())
	}
}

func TestLowerLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	m := nn.FraudFC(rng, 64) // linear+bias, relu, linear+bias, softmax
	plan, err := NewOptimizer(1<<30).Plan(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	counts := g.Counts()
	if counts["input"] != 1 || counts["matmul"] != 2 || counts["add_bias"] != 2 ||
		counts["relu"] != 1 || counts["softmax"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// The graph is a chain: every non-input op consumes the previous one.
	for i, op := range g.Ops {
		if i == 0 {
			if op.Kind != "input" || len(op.Inputs) != 0 {
				t.Fatalf("op 0 = %+v", op)
			}
			continue
		}
		if len(op.Inputs) != 1 || op.Inputs[0] != i-1 {
			t.Fatalf("op %d inputs = %v", i, op.Inputs)
		}
	}
	out := g.Output()
	if out.Kind != "softmax" || out.OutShape[0] != 32 || out.OutShape[1] != 2 {
		t.Fatalf("output = %+v", out)
	}
}

func TestLowerRelationalConvUsesSpatialRewriting(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	m := nn.MustModel("c", []int{1, 8, 8, 3}, nn.NewConv2D(rng, 4, 1, 1, 3))
	rel, err := NewOptimizer(1).Plan(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Lower(rel)
	if err != nil {
		t.Fatal(err)
	}
	counts := g.Counts()
	if counts["im2col"] != 1 || counts["matmul"] != 1 || counts["reshape"] != 1 || counts["conv2d"] != 0 {
		t.Fatalf("relational conv lowering = %v", counts)
	}
	// im2col output: (batch·oh·ow, kh·kw·c) = (2·64, 3).
	for _, op := range g.Ops {
		if op.Kind == "im2col" {
			if op.OutShape[0] != 128 || op.OutShape[1] != 3 {
				t.Fatalf("im2col shape = %v", op.OutShape)
			}
		}
	}
	udf, err := NewOptimizer(1<<40).Plan(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Lower(udf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Counts()["conv2d"] != 1 || g2.Counts()["im2col"] != 0 {
		t.Fatalf("UDF conv lowering = %v", g2.Counts())
	}
}

func TestLowerDotRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := nn.Amazon14kFC(rng, 512)
	plan, err := NewOptimizer(4<<20).Plan(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot()
	for _, want := range []string{"digraph", "matmul", "style=dashed", "style=solid", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestOffloadPolicyMarksIntensiveOps(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	// Encoder-FC's 76→3072 and 3072→768 linears are compute-intensive;
	// relu/softmax never offload.
	m := nn.EncoderFC(rng)
	rt := dlruntime.New(dlruntime.Graph, 0)
	opt := NewOptimizer(1 << 40)
	opt.Offload = &OffloadPolicy{Runtime: rt, MinFlopsPerByte: 50}
	plan, err := opt.Plan(m, 256)
	if err != nil {
		t.Fatal(err)
	}
	var offloaded, udfOnly int
	for _, d := range plan.Decisions {
		switch d.Repr {
		case ReprDLRuntime:
			offloaded++
			if d.Op == "relu" {
				t.Fatal("elementwise op offloaded")
			}
		case ReprUDF:
			udfOnly++
		}
	}
	if offloaded == 0 {
		t.Fatalf("no ops offloaded:\n%s", plan.Explain())
	}
	if udfOnly == 0 {
		t.Fatalf("everything offloaded:\n%s", plan.Explain())
	}
}

func TestOffloadRespectsRuntimeMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	m := nn.EncoderFC(rng)
	rt := dlruntime.New(dlruntime.Graph, 1024) // 1 KiB: nothing fits
	opt := NewOptimizer(1 << 40)
	opt.Offload = &OffloadPolicy{Runtime: rt, MinFlopsPerByte: 1}
	plan, err := opt.Plan(m, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Decisions {
		if d.Repr == ReprDLRuntime {
			t.Fatalf("op offloaded beyond runtime memory:\n%s", plan.Explain())
		}
	}
}

func TestOffloadNeverUpgradesRelational(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	m := nn.Amazon14kFC(rng, 512)
	rt := dlruntime.New(dlruntime.Graph, 0)
	opt := NewOptimizer(1) // everything over threshold → relational
	opt.Offload = &OffloadPolicy{Runtime: rt, MinFlopsPerByte: 0}
	plan, err := opt.Plan(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Decisions {
		if d.Repr == ReprDLRuntime {
			t.Fatal("relation-centric decision was offloaded")
		}
	}
}

func TestExecutorOffloadedSpanMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	m := nn.EncoderFC(rng) // linear, relu, linear
	rt := dlruntime.New(dlruntime.Eager, 0)
	rt.SetOverheads(dlruntime.Overheads{ActivationFactor: 1})
	opt := NewOptimizer(1 << 40)
	opt.Offload = &OffloadPolicy{Runtime: rt, MinFlopsPerByte: 50}
	plan, err := opt.Plan(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AllUDF() {
		t.Fatalf("test needs a mixed plan:\n%s", plan.Explain())
	}
	ex := NewExecutor(newPool(t, 32), nil)
	x := tensor.New(8, 76)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	res, err := ex.Run(plan, x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(m.Forward(x.Clone()), 1e-4) {
		t.Fatal("offloaded execution differs from direct forward")
	}
}

func TestExecutorOffloadedSpanGroupsConsecutiveOps(t *testing.T) {
	// Two adjacent intensive linears with an offloadable relu between
	// them... relu never offloads, so the spans are [linear][relu][linear]:
	// verify correctness with interleaved representations either way.
	rng := rand.New(rand.NewSource(105))
	m := nn.MustModel("span", []int{1, 64},
		nn.NewLinear(rng, 64, 512), nn.ReLU{},
		nn.NewLinear(rng, 512, 512), nn.ReLU{},
		nn.NewLinear(rng, 512, 8),
	)
	rt := dlruntime.New(dlruntime.Graph, 0)
	rt.SetOverheads(dlruntime.Overheads{})
	opt := NewOptimizer(1 << 40)
	opt.Offload = &OffloadPolicy{Runtime: rt, MinFlopsPerByte: 20}
	plan, err := opt.Plan(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(newPool(t, 32), nil)
	x := tensor.New(16, 64)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	res, err := ex.Run(plan, x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(m.Forward(x.Clone()), 1e-3) {
		t.Fatal("mixed offloaded plan differs from direct forward")
	}
}

func TestExecutorOffloadWithoutRuntimeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	m := nn.FraudFC(rng, 16)
	plan, err := NewOptimizer(1<<40).Plan(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a DL-centric decision with no runtime attached.
	plan.Decisions[0].Repr = ReprDLRuntime
	ex := NewExecutor(newPool(t, 8), nil)
	if _, err := ex.Run(plan, tensor.New(4, 28)); err == nil {
		t.Fatal("offload without a runtime must error")
	}
}

func TestAdaptiveUDFUsesAoTPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	m := nn.FraudFC(rng, 32)
	u := NewAdaptiveUDF(m, NewOptimizer(1<<30), newPool(t, 16), nil)
	if u.plans == nil {
		t.Fatal("AoT plan cache not built")
	}
	x := tensor.New(10, 28)
	if _, err := u.Apply(x); err != nil {
		t.Fatal(err)
	}
	hits, misses := u.plans.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("plan cache stats = %d/%d, want 1/0 (batch 10 served by the ladder)", hits, misses)
	}
	if u.Name() != "adaptive:Fraud-FC-32" {
		t.Fatalf("Name = %q", u.Name())
	}
	if u.Model() != m {
		t.Fatal("Model accessor wrong")
	}
	plan, err := u.Plan(100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Batch != 100 {
		t.Fatalf("Plan batch = %d", plan.Batch)
	}
}

func TestAdaptiveUDFRejectsWrongWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	m := nn.CacheCNN(rng, 8) // expects 8×8×1 images
	u := NewAdaptiveUDF(m, NewOptimizer(1<<30), newPool(t, 16), nil)
	if _, err := u.Apply(tensor.New(2, 63)); err == nil {
		t.Fatal("wrong flat width must error")
	}
	if _, err := u.Apply(tensor.New(2, 64)); err != nil {
		t.Fatalf("valid flat width rejected: %v", err)
	}
}
