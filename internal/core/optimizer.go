package core

import (
	"fmt"

	"tensorbase/internal/nn"
)

// Optimizer is the rule-based adaptive optimizer of Sec. 7.1: it traverses
// the model's operators, estimates each operator's memory requirement as
// input + parameters + output (for a matrix multiplication with shapes
// (m,k) and (k,n): m·k + k·n + m·n elements), and chooses the
// relation-centric representation when the estimate exceeds the memory
// limit threshold, the UDF-centric representation otherwise.
type Optimizer struct {
	// ThresholdBytes is the memory-limit threshold (the paper uses 2 GiB
	// on its 61 GiB testbed). Operators estimated above it run
	// relation-centrically.
	ThresholdBytes int64
	// Offload, when set, lets the optimizer schedule compute-intensive
	// operators onto the external DL runtime (the third representation of
	// the paper's vision). See OffloadPolicy.
	Offload *OffloadPolicy
}

// NewOptimizer returns an optimizer with the given threshold in bytes.
func NewOptimizer(thresholdBytes int64) *Optimizer {
	return &Optimizer{ThresholdBytes: thresholdBytes}
}

// Plan compiles the inference of m at the given batch size into an
// InferencePlan with a representation chosen per operator.
func (o *Optimizer) Plan(m *nn.Model, batch int) (*InferencePlan, error) {
	if batch < 1 {
		return nil, fmt.Errorf("core: batch size %d < 1", batch)
	}
	ests, err := m.MemEstimates(batch)
	if err != nil {
		return nil, fmt.Errorf("core: planning %s: %w", m.Name(), err)
	}
	plan := &InferencePlan{
		Model:          m,
		Batch:          batch,
		ThresholdBytes: o.ThresholdBytes,
		Decisions:      make([]OpDecision, 0, len(ests)),
	}
	for _, e := range ests {
		repr := ReprUDF
		if o.ThresholdBytes > 0 && e.Bytes > o.ThresholdBytes {
			repr = ReprRelation
		}
		plan.Decisions = append(plan.Decisions, OpDecision{
			Layer:         e.Index,
			Op:            e.Op,
			EstimateBytes: e.Bytes,
			Repr:          repr,
		})
	}
	if err := planOffload(plan, o.Offload); err != nil {
		return nil, err
	}
	plan.Offload = o.Offload
	return plan, nil
}
