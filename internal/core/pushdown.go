package core

import (
	"fmt"

	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
	"tensorbase/internal/udf"
)

// Model decomposition and push-down (Sec. 2, validated in Sec. 7.2.1).
//
// For a pipeline that joins two feature tables D1 ⋈ D2 and then applies a
// model whose first layer is fully connected, the weight matrix W splits
// column-wise into W1 (over D1's features) and W2 (over D2's features) such
// that W·[d1;d2] = W1·d1 + W2·d2. The transformation pushes the two partial
// matrix multiplications below the join: each base table is projected into
// the (much narrower) hidden space once per row, the join carries
// hidden-width vectors instead of raw features, and the partials are summed
// after the join. The win is twofold: the join shuffles less data, and the
// first-layer multiplication runs once per base row instead of once per
// join-output row.

// SplitLinear decomposes l into left and right parts over the first
// leftWidth and the remaining input columns:
//
//	l(concat(x1, x2)) = left(x1) + right(x2)
//
// The bias is assigned to the left part so the identity holds exactly.
func SplitLinear(l *nn.Linear, leftWidth int) (left, right *nn.Linear, err error) {
	in := l.In()
	if leftWidth <= 0 || leftWidth >= in {
		return nil, nil, fmt.Errorf("core: split width %d out of range (0, %d)", leftWidth, in)
	}
	out := l.Out()
	w1 := tensor.New(out, leftWidth)
	w2 := tensor.New(out, in-leftWidth)
	for o := 0; o < out; o++ {
		row := l.W.Row(o)
		copy(w1.Row(o), row[:leftWidth])
		copy(w2.Row(o), row[leftWidth:])
	}
	left = &nn.Linear{W: w1}
	if l.B != nil {
		left.B = l.B.Clone()
	}
	right = &nn.Linear{W: w2}
	return left, right, nil
}

// FeatureJoinQuery describes the Sec. 7.2.1 pipeline: two feature tables
// joined by similarity of one numeric column from each side, followed by a
// model over the concatenated feature vectors.
type FeatureJoinQuery struct {
	Left, Right       exec.Operator
	LeftSim, RightSim string // Float64 similarity-join columns
	LeftVec, RightVec string // FloatVec feature columns
	Eps               float64
	Model             *nn.Model // first layer must be *nn.Linear
	Batch             int       // inference micro-batch size
	Budget            *memlimit.Budget
}

func (q *FeatureJoinQuery) batch() int {
	if q.Batch > 0 {
		return q.Batch
	}
	return 256
}

// BuildNaive compiles the query without the push-down rule: similarity-join
// the raw feature tables, concatenate feature vectors, then run the whole
// model as a fused UDF over the joined rows. The output schema ends with a
// "prediction" FloatVec column.
func (q *FeatureJoinQuery) BuildNaive() (exec.Operator, error) {
	join, err := exec.NewBandJoin(q.Left, q.Right, q.LeftSim, q.RightSim, q.Eps)
	if err != nil {
		return nil, err
	}
	li := join.Schema().ColIndex(q.LeftVec)
	ri, err := rightVecIndex(join.Schema(), q.Left.Schema(), q.RightVec)
	if err != nil {
		return nil, err
	}
	if li < 0 {
		return nil, fmt.Errorf("core: unknown feature column %q", q.LeftVec)
	}
	concatSchema := table.MustSchema(table.Column{Name: "features", Type: table.FloatVec})
	concat := exec.NewMap(join, concatSchema, func(t table.Tuple) (table.Tuple, error) {
		l, r := t[li].Vec, t[ri].Vec
		full := make([]float32, 0, len(l)+len(r))
		full = append(full, l...)
		full = append(full, r...)
		return table.Tuple{table.VecVal(full)}, nil
	})
	return udf.NewInferOp(concat, udf.NewModelUDF(q.Model, q.Budget), "features", q.batch())
}

// BuildPushdown compiles the query with the decomposition + push-down rule
// applied: W1×D1 and W2×D2 run below the join, the join carries
// hidden-width partials, and the model tail runs over their sum. The output
// schema ends with a "prediction" FloatVec column, and the result rows
// equal BuildNaive's (up to order).
func (q *FeatureJoinQuery) BuildPushdown() (exec.Operator, error) {
	if len(q.Model.Layers) == 0 {
		return nil, fmt.Errorf("core: empty model")
	}
	first, ok := q.Model.Layers[0].(*nn.Linear)
	if !ok {
		return nil, fmt.Errorf("core: push-down requires a fully connected first layer, got %s", q.Model.Layers[0].Name())
	}
	leftWidth, err := vecWidthHint(q.Left, q.LeftVec)
	if err != nil {
		return nil, err
	}
	w1, w2, err := SplitLinear(first, leftWidth)
	if err != nil {
		return nil, err
	}

	// Push each partial multiplication below the join.
	leftPartial, err := udf.NewInferOp(q.Left, udf.NewOperatorUDF(w1, 0, q.Model.Name()+"/W1", q.Budget), q.LeftVec, q.batch())
	if err != nil {
		return nil, err
	}
	rightPartial, err := udf.NewInferOp(q.Right, udf.NewOperatorUDF(w2, 0, q.Model.Name()+"/W2", q.Budget), q.RightVec, q.batch())
	if err != nil {
		return nil, err
	}

	join, err := exec.NewBandJoin(leftPartial, rightPartial, q.LeftSim, q.RightSim, q.Eps)
	if err != nil {
		return nil, err
	}
	// The join output has the left side's "prediction" column and the
	// right side's disambiguated one.
	lp := join.Schema().ColIndex("prediction")
	rp, err := rightVecIndex(join.Schema(), leftPartial.Schema(), "prediction")
	if err != nil {
		return nil, err
	}

	hiddenSchema := table.MustSchema(table.Column{Name: "hidden", Type: table.FloatVec})
	sum := exec.NewMap(join, hiddenSchema, func(t table.Tuple) (table.Tuple, error) {
		l, r := t[lp].Vec, t[rp].Vec
		if len(l) != len(r) {
			return nil, fmt.Errorf("core: partial widths differ (%d vs %d)", len(l), len(r))
		}
		h := make([]float32, len(l))
		for i := range h {
			h[i] = l[i] + r[i]
		}
		return table.Tuple{table.VecVal(h)}, nil
	})

	tail, err := nn.NewModel(q.Model.Name()+"/tail", []int{1, first.Out()}, q.Model.Layers[1:]...)
	if err != nil {
		return nil, err
	}
	return udf.NewInferOp(sum, udf.NewModelUDF(tail, q.Budget), "hidden", q.batch())
}

// rightVecIndex finds the post-join index of the right side's column named
// base, accounting for Concat's collision renaming.
func rightVecIndex(joined, left *table.Schema, base string) (int, error) {
	// Right-side columns start after the left side's.
	for i := left.Len(); i < joined.Len(); i++ {
		name := joined.Cols[i].Name
		if name == base || (len(name) > len(base) && name[:len(base)] == base && name[len(base)] == '_') {
			return i, nil
		}
	}
	return -1, fmt.Errorf("core: right-side column %q not found in join output", base)
}

// vecWidthHint peeks at the operator's first tuple to learn the feature
// width. It requires the operator to be restartable (Open resets).
func vecWidthHint(op exec.Operator, col string) (int, error) {
	idx := op.Schema().ColIndex(col)
	if idx < 0 {
		return 0, fmt.Errorf("core: unknown feature column %q", col)
	}
	if err := op.Open(); err != nil {
		return 0, err
	}
	t, ok, err := op.Next()
	cerr := op.Close()
	if err != nil {
		return 0, err
	}
	if cerr != nil {
		return 0, cerr
	}
	if !ok {
		return 0, fmt.Errorf("core: cannot infer feature width from empty input")
	}
	return len(t[idx].Vec), nil
}
