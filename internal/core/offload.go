package core

import (
	"fmt"
	"sync"

	"tensorbase/internal/connector"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// DL-centric offloading as a first-class plan decision (Sec. 1/2): the
// envisioned optimizer may schedule any subgraph of the inference IR onto
// the external DL runtime — not just choose between the two in-database
// representations. OffloadPolicy teaches the optimizer when offloading
// pays: the operator must be compute-intensive enough that the runtime's
// faster kernels beat the connector's transfer cost, and its working set
// must fit the runtime's memory.

// OffloadPolicy configures DL-centric offloading in the optimizer.
type OffloadPolicy struct {
	// Runtime is the target external runtime.
	Runtime *dlruntime.Runtime
	// MinFlopsPerByte is the arithmetic-intensity threshold: operators
	// whose multiply-adds per transferred byte exceed it offload.
	// The break-even point is wireCost(bytes) < computeSaving(flops), so
	// the threshold encodes the runtime-speedup-vs-wire-bandwidth ratio.
	MinFlopsPerByte float64
}

// opIntensity estimates an operator's multiply-adds per byte of
// input + output traffic.
func opIntensity(l nn.Layer, inShape, outShape []int) float64 {
	var flops float64
	switch l := l.(type) {
	case *nn.Linear:
		flops = float64(inShape[0]) * float64(l.In()) * float64(l.Out())
	case *nn.Conv2D:
		flops = float64(outShape[0]*outShape[1]*outShape[2]) * float64(l.K.Len())
	default:
		return 0 // elementwise ops never justify a round trip
	}
	bytes := float64(volumeOf(inShape)+volumeOf(outShape)) * 4
	if bytes == 0 {
		return 0
	}
	return flops / bytes
}

func volumeOf(shape []int) int64 {
	n := int64(1)
	for _, d := range shape {
		n *= int64(d)
	}
	return n
}

// planOffload upgrades UDF-centric decisions to DL-centric where the policy
// says offloading pays. Relation-centric decisions are never offloaded: by
// construction those operators exceed whole-tensor memory, so the external
// runtime would OOM on them (the Table 3 lesson).
func planOffload(plan *InferencePlan, policy *OffloadPolicy) error {
	if policy == nil || policy.Runtime == nil {
		return nil
	}
	m := plan.Model
	ests, err := m.MemEstimates(plan.Batch)
	if err != nil {
		return err
	}
	budget := policy.Runtime.Budget().Limit()
	for i := range plan.Decisions {
		d := &plan.Decisions[i]
		if d.Repr != ReprUDF {
			continue
		}
		e := ests[d.Layer]
		if budget > 0 && e.Bytes > budget {
			continue
		}
		if opIntensity(m.Layers[d.Layer], e.InShape, e.OutShape) >= policy.MinFlopsPerByte {
			d.Repr = ReprDLRuntime
		}
	}
	return nil
}

// offloadExecutor runs maximal consecutive ReprDLRuntime spans by shipping
// the batch across the connector to a session over the span's sub-model.
// Sessions are cached per span, as a serving system keeps models resident.
type offloadExecutor struct {
	runtime *dlruntime.Runtime
	mu      sync.Mutex
	// sessions caches loaded sub-model sessions keyed by layer span.
	sessions map[[2]int]*dlruntime.Session
	// Stats.
	transfers connector.Stats
}

func newOffloadExecutor(rt *dlruntime.Runtime) *offloadExecutor {
	return &offloadExecutor{runtime: rt, sessions: make(map[[2]int]*dlruntime.Session)}
}

// session returns (loading on first use) the session for layers [from, to)
// of model.
func (o *offloadExecutor) session(model *nn.Model, from, to int) (*dlruntime.Session, error) {
	key := [2]int{from, to}
	o.mu.Lock()
	defer o.mu.Unlock()
	if s, ok := o.sessions[key]; ok {
		return s, nil
	}
	inShape := append([]int(nil), model.InShape...)
	if from > 0 {
		// The sub-model's input is the previous layer's output shape.
		shape := append([]int(nil), model.InShape...)
		for _, l := range model.Layers[:from] {
			next, err := l.OutShape(shape)
			if err != nil {
				return nil, err
			}
			shape = next
		}
		inShape = shape
	}
	sub, err := nn.NewModel(fmt.Sprintf("%s[%d:%d]", model.Name(), from, to), inShape, model.Layers[from:to]...)
	if err != nil {
		return nil, err
	}
	s, err := o.runtime.Load(sub)
	if err != nil {
		return nil, err
	}
	o.sessions[key] = s
	return s, nil
}

// run ships x across the connector, infers layers [from, to) remotely, and
// returns the result (which also crosses back).
func (o *offloadExecutor) run(model *nn.Model, from, to int, x *tensor.Tensor) (*tensor.Tensor, error) {
	sess, err := o.session(model, from, to)
	if err != nil {
		return nil, err
	}
	// Out: flatten to rows, transfer, restore shape on the runtime side.
	n := x.Dim(0)
	width := x.Len() / n
	flat := x.Reshape(n, width)
	sent, err := connector.Transfer(connector.NewTensorSource(flat), width, 1024, &o.transfers)
	if err != nil {
		return nil, err
	}
	shape := append([]int(nil), x.Shape()...)
	out, err := sess.Infer(sent.Reshape(shape...))
	if err != nil {
		return nil, err
	}
	// Back: the result crosses the connector into the engine.
	outN := out.Dim(0)
	outWidth := out.Len() / outN
	back, err := connector.Transfer(connector.NewTensorSource(out.Reshape(outN, outWidth)), outWidth, 1024, &o.transfers)
	if err != nil {
		return nil, err
	}
	outShape := append([]int(nil), out.Shape()...)
	return back.Reshape(outShape...), nil
}
