package core

import (
	"fmt"
	"strings"

	"tensorbase/internal/nn"
)

// Lowering (Sec. 2): a model UDF operator in the relational IR lowers to a
// graph IR whose nodes are linear-algebra operators — matrix multiply, bias
// add, relu, softmax, conv2d / im2col — each carrying the representation
// the adaptive optimizer chose. The lowered graph is what transformation
// rules (fusion, relational conversion, offloading) operate over; this
// package uses it for EXPLAIN-style introspection and DOT rendering.

// LAOp is one linear-algebra operator node.
type LAOp struct {
	ID       int
	Kind     string // input | matmul | add_bias | relu | sigmoid | softmax | conv2d | im2col | reshape | flatten
	Inputs   []int  // ids of producer nodes
	OutShape []int
	Repr     Representation
	// Layer is the model layer this op lowers from (-1 for the input).
	Layer int
}

// LAGraph is the lowered linear-algebra graph of one inference plan.
type LAGraph struct {
	Model string
	Batch int
	Ops   []LAOp
}

// Lower expands an inference plan into its linear-algebra graph: each
// model layer becomes one or more LA operators inheriting the layer's
// chosen representation. Linear lowers to matmul (+ add_bias); a Conv2D
// executing relation-centrically lowers through the spatial rewriting
// (im2col → matmul → reshape), matching what the executor actually runs.
func Lower(plan *InferencePlan) (*LAGraph, error) {
	g := &LAGraph{Model: plan.Model.Name(), Batch: plan.Batch}
	shape := append([]int(nil), plan.Model.InShape...)
	shape[0] = plan.Batch

	add := func(kind string, inputs []int, outShape []int, repr Representation, layer int) int {
		id := len(g.Ops)
		g.Ops = append(g.Ops, LAOp{
			ID: id, Kind: kind, Inputs: inputs,
			OutShape: append([]int(nil), outShape...),
			Repr:     repr, Layer: layer,
		})
		return id
	}
	cur := add("input", nil, shape, ReprUDF, -1)

	for _, d := range plan.Decisions {
		layer := plan.Model.Layers[d.Layer]
		out, err := layer.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("core: lowering layer %d: %w", d.Layer, err)
		}
		switch l := layer.(type) {
		case *nn.Linear:
			cur = add("matmul", []int{cur}, out, d.Repr, d.Layer)
			if l.B != nil {
				cur = add("add_bias", []int{cur}, out, d.Repr, d.Layer)
			}
		case *nn.Conv2D:
			if d.Repr == ReprRelation {
				// Spatial rewriting: F = im2col(x); F × Kᵀ; reshape.
				kh, kw := l.K.Dim(1), l.K.Dim(2)
				rows := shape[0] * out[1] * out[2]
				cols := kh * kw * shape[3]
				f := add("im2col", []int{cur}, []int{rows, cols}, d.Repr, d.Layer)
				mm := add("matmul", []int{f}, []int{rows, out[3]}, d.Repr, d.Layer)
				cur = add("reshape", []int{mm}, out, d.Repr, d.Layer)
			} else {
				cur = add("conv2d", []int{cur}, out, d.Repr, d.Layer)
			}
		case nn.ReLU:
			cur = add("relu", []int{cur}, out, d.Repr, d.Layer)
		case nn.Sigmoid:
			cur = add("sigmoid", []int{cur}, out, d.Repr, d.Layer)
		case nn.Softmax:
			cur = add("softmax", []int{cur}, out, d.Repr, d.Layer)
		case nn.Flatten:
			cur = add("flatten", []int{cur}, out, d.Repr, d.Layer)
		default:
			return nil, fmt.Errorf("core: no lowering for layer %s", layer.Name())
		}
		shape = out
	}
	return g, nil
}

// Output returns the graph's sink op.
func (g *LAGraph) Output() LAOp { return g.Ops[len(g.Ops)-1] }

// Dot renders the graph in Graphviz format, colouring nodes by
// representation (UDF-centric solid, relation-centric dashed boxes).
func (g *LAGraph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", g.Model)
	for _, op := range g.Ops {
		style := "solid"
		if op.Repr == ReprRelation {
			style = "dashed"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\\n%v\\n%s\" shape=box style=%s];\n",
			op.ID, op.Kind, op.OutShape, op.Repr, style)
		for _, in := range op.Inputs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", in, op.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Counts returns the number of ops per kind, for tests and summaries.
func (g *LAGraph) Counts() map[string]int {
	out := make(map[string]int)
	for _, op := range g.Ops {
		out[op.Kind]++
	}
	return out
}
