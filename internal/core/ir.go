// Package core implements the paper's primary contribution: the unified
// intermediate representation for inference queries and the adaptive
// optimizer that assigns each operator one of the three execution
// representations — DL-centric (offload to an external runtime),
// UDF-centric (whole-tensor UDF inside the database), or relation-centric
// (tensor-block relations, matmul as join + aggregation) — plus the
// co-optimization rules that rewrite across the relational/tensor boundary
// (model decomposition and push-down, Sec. 2 / Sec. 7.2.1).
package core

import (
	"fmt"
	"strings"

	"tensorbase/internal/nn"
)

// Representation is the execution strategy chosen for one operator.
type Representation int

// Operator representations.
const (
	// ReprUDF executes the operator as a whole-tensor UDF inside the
	// database.
	ReprUDF Representation = iota
	// ReprRelation executes the operator over tensor-block relations
	// (matrix multiply as join + aggregation) with buffer-pool spilling.
	ReprRelation
	// ReprDLRuntime offloads the operator to the external DL runtime
	// across the connector.
	ReprDLRuntime
)

// String implements fmt.Stringer.
func (r Representation) String() string {
	switch r {
	case ReprUDF:
		return "udf-centric"
	case ReprRelation:
		return "relation-centric"
	case ReprDLRuntime:
		return "dl-centric"
	default:
		return fmt.Sprintf("Representation(%d)", int(r))
	}
}

// OpDecision is the optimizer's choice for one model operator: the IR node
// after representation selection.
type OpDecision struct {
	Layer         int    // index into the model's layer list
	Op            string // operator kind ("linear", "conv2d", ...)
	EstimateBytes int64  // the m·k + k·n + m·n footprint estimate
	Repr          Representation
}

// InferencePlan is the compiled plan for running one model at one batch
// size: the unified IR of the inference part of a query after the adaptive
// optimizer has assigned representations.
type InferencePlan struct {
	Model          *nn.Model
	Batch          int
	ThresholdBytes int64
	Decisions      []OpDecision
	// Offload carries the DL-centric policy the plan was compiled with,
	// so the executor can reach the target runtime.
	Offload *OffloadPolicy
}

// AllUDF reports whether every operator chose the UDF-centric
// representation; such plans fuse into a single coarse-grained model UDF.
func (p *InferencePlan) AllUDF() bool {
	for _, d := range p.Decisions {
		if d.Repr != ReprUDF {
			return false
		}
	}
	return true
}

// NumRelational returns how many operators chose the relation-centric
// representation.
func (p *InferencePlan) NumRelational() int {
	n := 0
	for _, d := range p.Decisions {
		if d.Repr == ReprRelation {
			n++
		}
	}
	return n
}

// Explain renders the plan like an EXPLAIN output.
func (p *InferencePlan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "InferencePlan model=%s batch=%d threshold=%s\n",
		p.Model.Name(), p.Batch, fmtBytes(p.ThresholdBytes))
	if p.AllUDF() {
		fmt.Fprintf(&sb, "  fused: single model UDF (%d ops)\n", len(p.Decisions))
	}
	for _, d := range p.Decisions {
		fmt.Fprintf(&sb, "  [%d] %-8s est=%-10s → %s\n", d.Layer, d.Op, fmtBytes(d.EstimateBytes), d.Repr)
	}
	return sb.String()
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
