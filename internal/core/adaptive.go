package core

import (
	"fmt"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/tensor"
	"tensorbase/internal/udf"
)

// AdaptiveUDF is the engine's single entry point for in-database inference:
// a UDF whose Apply compiles an InferencePlan for the incoming batch with
// the adaptive optimizer and executes it — fused whole-model UDF when every
// operator fits the threshold, tensor-block relations otherwise. It
// implements udf.UDF, so `PREDICT(model, features)` in a query plan is
// adaptive without the relational layer knowing.
type AdaptiveUDF struct {
	model *nn.Model
	opt   *Optimizer
	plans *PlanCache // ahead-of-time compiled plans (Sec. 2); nil until first use
	ex    *Executor
}

// NewAdaptiveUDF returns an adaptive inference UDF for model. Plans for the
// default batch ladder are compiled ahead of time, so steady-state queries
// skip the optimizer entirely.
func NewAdaptiveUDF(model *nn.Model, opt *Optimizer, pool *storage.BufferPool, budget *memlimit.Budget) *AdaptiveUDF {
	u := &AdaptiveUDF{model: model, opt: opt, ex: NewExecutor(pool, budget)}
	// AoT compilation can only fail on invalid models, which NewModel
	// already rejects; fall back to per-call planning if it does.
	if plans, err := NewPlanCache(opt, model, nil); err == nil {
		u.plans = plans
	}
	return u
}

// Name implements udf.UDF.
func (u *AdaptiveUDF) Name() string { return "adaptive:" + u.model.Name() }

// Model returns the wrapped model.
func (u *AdaptiveUDF) Model() *nn.Model { return u.model }

// Plan exposes the optimizer's decision for a batch size, for EXPLAIN.
func (u *AdaptiveUDF) Plan(batch int) (*InferencePlan, error) {
	return u.opt.Plan(u.model, batch)
}

// Apply implements udf.UDF. Flat 2-D batches are reshaped to the model's
// input shape when it expects higher-rank input (images stored as flat
// feature vectors in a table).
func (u *AdaptiveUDF) Apply(x *tensor.Tensor) (*tensor.Tensor, error) {
	return u.ApplyCancel(nil, x)
}

// ApplyCancel implements udf.CancelUDF: the executor observes tok between
// layers and inside the block-multiply loops, so a cancelled PREDICT batch
// stops within one block of work.
func (u *AdaptiveUDF) ApplyCancel(tok *lifecycle.Token, x *tensor.Tensor) (*tensor.Tensor, error) {
	if want := len(u.model.InShape); want > 2 && x.Rank() == 2 {
		shape := append([]int(nil), u.model.InShape...)
		shape[0] = x.Dim(0)
		vol := 1
		for _, d := range shape[1:] {
			vol *= d
		}
		if vol != x.Dim(1) {
			return nil, fmt.Errorf("core: row width %d does not match model input %v", x.Dim(1), u.model.InShape[1:])
		}
		x = x.Reshape(shape...)
	}
	var plan *InferencePlan
	var err error
	if u.plans != nil {
		plan, err = u.plans.PlanFor(x.Dim(0))
	} else {
		plan, err = u.opt.Plan(u.model, x.Dim(0))
	}
	if err != nil {
		return nil, err
	}
	res, err := u.ex.RunCancel(plan, x, tok)
	if err != nil {
		return nil, fmt.Errorf("core: adaptive inference of %s: %w", u.model.Name(), err)
	}
	return res.AsDense()
}

// Interface conformance.
var (
	_ udf.UDF       = (*AdaptiveUDF)(nil)
	_ udf.CancelUDF = (*AdaptiveUDF)(nil)
)
