package core

import (
	"fmt"

	"tensorbase/internal/blocked"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/tensor"
	"tensorbase/internal/udf"
)

// Result is the value produced by executing an inference plan. Exactly one
// of Dense and Blocked is set: plans whose final operator ran
// relation-centrically leave the result as a blocked relation (so a huge
// feature map is never assembled), others produce a dense tensor.
type Result struct {
	Dense   *tensor.Tensor
	Blocked *blocked.Matrix
}

// Rows returns the number of result rows.
func (r *Result) Rows() int {
	if r.Dense != nil {
		return r.Dense.Dim(0)
	}
	return r.Blocked.Rows
}

// AsDense returns the result as a dense tensor, assembling a blocked result
// if necessary. Intended for verification and small results.
func (r *Result) AsDense() (*tensor.Tensor, error) {
	if r.Dense != nil {
		return r.Dense, nil
	}
	return r.Blocked.Assemble()
}

// Executor runs InferencePlans, dispatching each operator to its chosen
// representation: UDF-centric operators run whole-tensor inside the
// database (charged against Budget), relation-centric operators run over
// tensor-block relations in the buffer pool.
type Executor struct {
	Pool      *storage.BufferPool
	Budget    *memlimit.Budget
	BlockSize int
	// weights caches the chunked (blocked) transposed weight matrices of
	// relation-centric Linear operators, keyed per layer — the paper's
	// "chunk the weight matrix into matrix blocks" done once at load.
	weights map[*nn.Linear]*blocked.Matrix
	// offloaders caches DL-centric executors per target runtime.
	offloaders map[*dlruntime.Runtime]*offloadExecutor
}

// NewExecutor returns an executor over pool with the given whole-tensor
// budget (nil means unlimited).
func NewExecutor(pool *storage.BufferPool, budget *memlimit.Budget) *Executor {
	if budget == nil {
		budget = memlimit.Unlimited()
	}
	return &Executor{
		Pool: pool, Budget: budget, BlockSize: blocked.DefaultBlockSize,
		weights:    make(map[*nn.Linear]*blocked.Matrix),
		offloaders: make(map[*dlruntime.Runtime]*offloadExecutor),
	}
}

// Prepare chunks the weight tensors of every relation-centric Linear
// operator in the plan into block relations, as happens when a model is
// loaded into the database. Safe to call more than once.
func (e *Executor) Prepare(plan *InferencePlan) error {
	for _, d := range plan.Decisions {
		if d.Repr != ReprRelation {
			continue
		}
		if lin, ok := plan.Model.Layers[d.Layer].(*nn.Linear); ok {
			if _, done := e.weights[lin]; done {
				continue
			}
			wt, err := blocked.Store(e.Pool, tensor.Transpose(lin.W), e.BlockSize)
			if err != nil {
				return fmt.Errorf("core: chunking weights of layer %d: %w", d.Layer, err)
			}
			e.weights[lin] = wt
		}
	}
	return nil
}

// value is the executor's intermediate state: dense or blocked.
type value struct {
	dense *tensor.Tensor
	blk   *blocked.Matrix
}

// Run executes the plan over input x (dense, batch in dimension 0).
//
// Fully UDF-centric plans fuse into one model UDF. Mixed plans run operator
// by operator, converting between dense and blocked forms at representation
// boundaries; the dense↔blocked conversions are charged to the budget, so a
// plan that would need an over-budget dense intermediate fails with
// memlimit.ErrOOM rather than silently materialising it.
func (e *Executor) Run(plan *InferencePlan, x *tensor.Tensor) (*Result, error) {
	return e.RunCancel(plan, x, nil)
}

// RunCancel is Run observing a cancellation token: the executor checks tok
// between layers and threads it into the relation-centric block multiplies,
// so a cancelled query abandons the plan within one block of work. A nil
// token behaves exactly like Run.
func (e *Executor) RunCancel(plan *InferencePlan, x *tensor.Tensor, tok *lifecycle.Token) (*Result, error) {
	if plan.AllUDF() {
		out, err := udf.NewModelUDF(plan.Model, e.Budget).Apply(x)
		if err != nil {
			return nil, err
		}
		return &Result{Dense: out}, nil
	}
	if err := e.Prepare(plan); err != nil {
		return nil, err
	}
	// A relation-centric conv2d produces the (n·outH·outW, outC) patch-major
	// layout, which a later Flatten cannot reinterpret as (n, h·w·c); reject
	// such plans instead of silently mis-shaping them. (None of the paper's
	// workloads hit this: large convs are terminal operators.)
	convRelational := false
	for _, d := range plan.Decisions {
		if d.Op == "conv2d" && d.Repr == ReprRelation {
			convRelational = true
		}
		if convRelational && d.Op == "flatten" {
			return nil, fmt.Errorf("core: flatten after a relation-centric conv2d is unsupported")
		}
	}
	cur := value{dense: x}
	for i := 0; i < len(plan.Decisions); {
		if err := tok.Err(); err != nil {
			return nil, err
		}
		d := plan.Decisions[i]
		if d.Repr == ReprDLRuntime {
			// Execute the maximal consecutive offloaded span in one
			// round trip to the external runtime.
			j := i
			for j < len(plan.Decisions) && plan.Decisions[j].Repr == ReprDLRuntime {
				j++
			}
			out, err := e.runOffloaded(plan, plan.Decisions[i].Layer, plan.Decisions[j-1].Layer+1, cur)
			if err != nil {
				return nil, fmt.Errorf("core: layers %d-%d (dl-centric): %w", plan.Decisions[i].Layer, plan.Decisions[j-1].Layer, err)
			}
			cur = out
			i = j
			continue
		}
		layer := plan.Model.Layers[d.Layer]
		var err error
		if d.Repr == ReprRelation {
			cur, err = e.runRelational(plan, d, layer, cur, tok)
		} else {
			cur, err = e.runUDF(plan, d, layer, cur)
		}
		if err != nil {
			return nil, fmt.Errorf("core: layer %d (%s, %s): %w", d.Layer, d.Op, d.Repr, err)
		}
		i++
	}
	if cur.blk != nil {
		return &Result{Blocked: cur.blk}, nil
	}
	return &Result{Dense: cur.dense}, nil
}

// toDense assembles a blocked value, charging the dense footprint.
func (e *Executor) toDense(v value) (*tensor.Tensor, error) {
	if v.dense != nil {
		return v.dense, nil
	}
	need := int64(v.blk.Rows) * int64(v.blk.Cols) * 4
	res, err := e.Budget.TryReserve(need)
	if err != nil {
		return nil, fmt.Errorf("assembling blocked intermediate: %w", err)
	}
	defer res.Close()
	return v.blk.Assemble()
}

// runOffloaded ships the current value to the plan's external runtime for
// layers [from, to).
func (e *Executor) runOffloaded(plan *InferencePlan, from, to int, cur value) (value, error) {
	if plan.Offload == nil || plan.Offload.Runtime == nil {
		return value{}, fmt.Errorf("plan has offloaded operators but no runtime")
	}
	dense, err := e.toDense(cur)
	if err != nil {
		return value{}, err
	}
	rt := plan.Offload.Runtime
	o, ok := e.offloaders[rt]
	if !ok {
		o = newOffloadExecutor(rt)
		e.offloaders[rt] = o
	}
	out, err := o.run(plan.Model, from, to, dense)
	if err != nil {
		return value{}, err
	}
	return value{dense: out}, nil
}

func (e *Executor) runUDF(plan *InferencePlan, d OpDecision, layer nn.Layer, cur value) (value, error) {
	dense, err := e.toDense(cur)
	if err != nil {
		return value{}, err
	}
	out, err := udf.NewOperatorUDF(layer, d.Layer, plan.Model.Name(), e.Budget).Apply(dense)
	if err != nil {
		return value{}, err
	}
	return value{dense: out}, nil
}

func (e *Executor) runRelational(plan *InferencePlan, d OpDecision, layer nn.Layer, cur value, tok *lifecycle.Token) (value, error) {
	switch l := layer.(type) {
	case *nn.Linear:
		in := cur.blk
		if in == nil {
			var err error
			in, err = blocked.Store(e.Pool, cur.dense, e.BlockSize)
			if err != nil {
				return value{}, err
			}
		}
		wt, ok := e.weights[l]
		if !ok {
			return value{}, fmt.Errorf("weights not prepared")
		}
		out, err := blocked.MultiplyStreamingCancel(e.Pool, in, wt, e.Budget, tok)
		if err != nil {
			return value{}, err
		}
		if l.B != nil {
			out, err = blocked.AddBiasBlocks(e.Pool, out, l.B.Data())
			if err != nil {
				return value{}, err
			}
		}
		return value{blk: out}, nil

	case *nn.Conv2D:
		if cur.dense == nil {
			return value{}, fmt.Errorf("relation-centric conv2d needs a dense NHWC input (blocked feature maps cannot be re-windowed)")
		}
		out, err := blocked.Conv2DRelational(e.Pool, cur.dense, l.K, e.BlockSize, e.Budget)
		if err != nil {
			return value{}, err
		}
		return value{blk: out}, nil

	case nn.ReLU:
		if cur.blk != nil {
			out, err := blocked.ReLUBlocks(e.Pool, cur.blk)
			if err != nil {
				return value{}, err
			}
			return value{blk: out}, nil
		}
		return value{dense: tensor.ReLUInto(cur.dense)}, nil

	case nn.Sigmoid:
		if cur.blk != nil {
			out, err := blocked.MapBlocks(e.Pool, cur.blk, func(_, _ int, blk *tensor.Tensor) (*tensor.Tensor, error) {
				return tensor.SigmoidInto(blk), nil
			})
			if err != nil {
				return value{}, err
			}
			return value{blk: out}, nil
		}
		return value{dense: tensor.SigmoidInto(cur.dense)}, nil

	default:
		// Softmax (needs whole rows) and Flatten (reshapes across the
		// block grid) fall back to whole-tensor execution.
		return e.runUDF(plan, d, layer, cur)
	}
}
