package core

import (
	"fmt"
	"sort"
	"sync"

	"tensorbase/internal/nn"
)

// PlanCache implements the ahead-of-time compilation strategy of Sec. 2:
// when a model is loaded, plans are compiled for a ladder of batch sizes;
// at query time the cached plan for the smallest compiled batch that covers
// the request is selected without re-running the optimizer. Representation
// choices are monotone in batch size under the m·k + k·n + m·n estimate
// (every term is non-decreasing in m), so a plan compiled for a larger
// batch is always memory-safe for a smaller one.
type PlanCache struct {
	opt   *Optimizer
	model *nn.Model

	mu      sync.RWMutex
	batches []int // sorted ascending
	plans   map[int]*InferencePlan
	// misses counts PlanFor calls that had to compile at runtime.
	misses int64
	hits   int64
}

// DefaultPlanLadder is the batch ladder compiled at load time.
var DefaultPlanLadder = []int{1, 16, 256, 4096, 65536}

// NewPlanCache compiles plans for every batch in ladder (DefaultPlanLadder
// if empty).
func NewPlanCache(opt *Optimizer, model *nn.Model, ladder []int) (*PlanCache, error) {
	if len(ladder) == 0 {
		ladder = DefaultPlanLadder
	}
	c := &PlanCache{opt: opt, model: model, plans: make(map[int]*InferencePlan, len(ladder))}
	for _, b := range ladder {
		if b < 1 {
			return nil, fmt.Errorf("core: invalid ladder batch %d", b)
		}
		plan, err := opt.Plan(model, b)
		if err != nil {
			return nil, err
		}
		c.plans[b] = plan
		c.batches = append(c.batches, b)
	}
	sort.Ints(c.batches)
	return c, nil
}

// PlanFor returns the cached plan covering batch (the smallest compiled
// batch >= batch). Batches beyond the ladder compile on demand and join the
// cache.
func (c *PlanCache) PlanFor(batch int) (*InferencePlan, error) {
	if batch < 1 {
		return nil, fmt.Errorf("core: batch %d < 1", batch)
	}
	c.mu.RLock()
	idx := sort.SearchInts(c.batches, batch)
	if idx < len(c.batches) {
		plan := c.plans[c.batches[idx]]
		c.mu.RUnlock()
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return plan, nil
	}
	c.mu.RUnlock()

	plan, err := c.opt.Plan(c.model, batch)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
	if _, dup := c.plans[batch]; !dup {
		c.plans[batch] = plan
		c.batches = append(c.batches, batch)
		sort.Ints(c.batches)
	}
	return plan, nil
}

// Stats returns cache hits (ladder served) and misses (runtime compiles).
func (c *PlanCache) Stats() (hits, misses int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Ladder returns the compiled batch sizes, ascending.
func (c *PlanCache) Ladder() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]int(nil), c.batches...)
}
