package device

import (
	"math/rand"
	"testing"
	"time"

	"tensorbase/internal/nn"
)

func profile() Profile {
	return Profile{
		CPUFlops:            1e9,
		Speedup:             20,
		TransferBytesPerSec: 12e9,
		LaunchOverhead:      10 * time.Microsecond,
	}
}

func TestEstimateCPUHasNoTransfer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.FraudFC(rng, 256)
	est, err := EstimateModel(profile(), m, 100, CPU)
	if err != nil {
		t.Fatal(err)
	}
	if est.Transfer != 0 || est.Overhead != 0 {
		t.Fatalf("CPU estimate has device costs: %+v", est)
	}
	if est.Compute <= 0 {
		t.Fatalf("compute estimate %v", est.Compute)
	}
}

func TestEstimateAcceleratorComputeFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := nn.EncoderFC(rng)
	cpu, err := EstimateModel(profile(), m, 1000, CPU)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EstimateModel(profile(), m, 1000, Accelerator)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Compute >= cpu.Compute {
		t.Fatalf("accelerator compute %v not faster than CPU %v", acc.Compute, cpu.Compute)
	}
	if acc.Transfer == 0 || acc.Overhead == 0 {
		t.Fatalf("accelerator estimate missing device costs: %+v", acc)
	}
}

func TestChooseSmallQueryStaysOnCPU(t *testing.T) {
	// The paper's observation: simple model + small batch → transfer
	// outweighs the accelerator's advantage.
	rng := rand.New(rand.NewSource(3))
	m := nn.FraudFC(rng, 256)
	dev, cpu, acc, err := Choose(profile(), m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dev != CPU {
		t.Fatalf("batch-1 fraud scoring chose %v (cpu %v vs acc %v)", dev, cpu.Total(), acc.Total())
	}
}

func TestChooseHeavyQueryOffloads(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := nn.EncoderFC(rng) // 76→3072→768: compute-heavy per byte
	dev, cpu, acc, err := Choose(profile(), m, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if dev != Accelerator {
		t.Fatalf("large encoder batch chose %v (cpu %v vs acc %v)", dev, cpu.Total(), acc.Total())
	}
}

func TestCrossoverMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := nn.EncoderFC(rng)
	cross, err := Crossover(profile(), m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if cross == 0 {
		t.Fatal("encoder workload should eventually favour the accelerator")
	}
	// Below the crossover: CPU; at and above: accelerator.
	if cross > 1 {
		dev, _, _, err := Choose(profile(), m, cross-1)
		if err != nil {
			t.Fatal(err)
		}
		if dev != CPU {
			t.Fatalf("batch %d (below crossover %d) chose %v", cross-1, cross, dev)
		}
	}
	dev, _, _, err := Choose(profile(), m, cross)
	if err != nil {
		t.Fatal(err)
	}
	if dev != Accelerator {
		t.Fatalf("batch %d (crossover) chose %v", cross, dev)
	}
}

func TestCrossoverNeverForTransferBound(t *testing.T) {
	// A 1-layer identity-ish model moves many bytes per flop: the
	// accelerator never pays off.
	rng := rand.New(rand.NewSource(6))
	m := nn.MustModel("thin", []int{1, 1024}, nn.NewLinear(rng, 1024, 1024))
	p := profile()
	p.Speedup = 1.01            // nearly no compute advantage...
	p.TransferBytesPerSec = 1e6 // ...behind a very slow interconnect
	cross, err := Crossover(p, m, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if cross != 0 {
		t.Fatalf("transfer-bound workload offloaded at batch %d", cross)
	}
}

func TestCalibrateReturnsPlausibleThroughput(t *testing.T) {
	f := Calibrate()
	if f < 1e6 || f > 1e13 {
		t.Fatalf("calibrated throughput %g implausible", f)
	}
}

func TestEstimateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := nn.FraudFC(rng, 16)
	if _, err := EstimateModel(profile(), m, 0, CPU); err == nil {
		t.Fatal("batch 0 must error")
	}
}

func TestDefaultProfile(t *testing.T) {
	p := DefaultProfile(0)
	if p.CPUFlops <= 0 || p.Speedup <= 1 {
		t.Fatalf("%+v", p)
	}
}
