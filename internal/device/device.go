// Package device implements the device-allocation component of Sec. 3(2):
// modelling the execution of a model UDF as a producer → transfer →
// consumer process and choosing between the CPU and an accelerator per
// query. The paper's observation (from the decision-forest study it cites)
// is that for simple models and small batches the host→device transfer
// outweighs the accelerator's compute advantage, so the allocator must be
// cost-based, not static.
//
// There is no real accelerator in this repository; the accelerator is a
// calibrated cost model (compute speedup factor + transfer bandwidth +
// launch overhead), which is all the *allocation decision* needs.
package device

import (
	"fmt"
	"time"

	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// Kind identifies an execution device.
type Kind int

// Devices.
const (
	CPU Kind = iota
	Accelerator
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == CPU {
		return "cpu"
	}
	return "accelerator"
}

// Profile calibrates the cost model.
type Profile struct {
	// CPUFlops is the measured CPU throughput in multiply-adds/second.
	CPUFlops float64
	// Speedup is the accelerator's compute advantage over the CPU.
	Speedup float64
	// TransferBytesPerSec is the host↔device bandwidth (PCIe-like).
	TransferBytesPerSec float64
	// LaunchOverhead is the fixed cost per offloaded operator.
	LaunchOverhead time.Duration
}

// DefaultProfile models a PCIe-attached accelerator: 20× compute, 12 GB/s,
// 10 µs launches.
func DefaultProfile(cpuFlops float64) Profile {
	if cpuFlops <= 0 {
		cpuFlops = 1e9
	}
	return Profile{
		CPUFlops:            cpuFlops,
		Speedup:             20,
		TransferBytesPerSec: 12e9,
		LaunchOverhead:      10 * time.Microsecond,
	}
}

// Calibrate measures the host's multiply-add throughput with a short
// matmul probe, for use as Profile.CPUFlops.
func Calibrate() float64 {
	const n = 192
	a := tensor.New(n, n)
	b := tensor.New(n, n)
	for i := range a.Data() {
		a.Data()[i] = 1.0000001
		b.Data()[i] = 0.9999999
	}
	start := time.Now()
	tensor.MatMul(a, b)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 1e9
	}
	return float64(n) * float64(n) * float64(n) / elapsed.Seconds()
}

// flopsOf estimates the multiply-adds of one operator on a batch.
func flopsOf(l nn.Layer, inShape []int) float64 {
	switch l := l.(type) {
	case *nn.Linear:
		return float64(inShape[0]) * float64(l.In()) * float64(l.Out())
	case *nn.Conv2D:
		out, err := l.OutShape(inShape)
		if err != nil {
			return 0
		}
		kernel := float64(l.K.Len())
		return float64(out[0]*out[1]*out[2]) * kernel
	default:
		// Elementwise ops: one op per element.
		n := 1.0
		for _, d := range inShape {
			n *= float64(d)
		}
		return n
	}
}

// Estimate is the modelled latency of running model inference on a device.
type Estimate struct {
	Device   Kind
	Compute  time.Duration
	Transfer time.Duration
	Overhead time.Duration
}

// Total returns the end-to-end estimate.
func (e Estimate) Total() time.Duration { return e.Compute + e.Transfer + e.Overhead }

// EstimateModel prices the whole forward pass of m at the given batch on a
// device: compute at the device's throughput, plus (for the accelerator)
// the input/output transfer and per-operator launches — the
// producer-transfer-consumer decomposition.
func EstimateModel(p Profile, m *nn.Model, batch int, device Kind) (Estimate, error) {
	if batch < 1 {
		return Estimate{}, fmt.Errorf("device: batch %d < 1", batch)
	}
	shape := append([]int(nil), m.InShape...)
	shape[0] = batch
	inBytes := int64(4)
	for _, d := range shape {
		inBytes *= int64(d)
	}
	var flops float64
	cur := shape
	for _, l := range m.Layers {
		flops += flopsOf(l, cur)
		next, err := l.OutShape(cur)
		if err != nil {
			return Estimate{}, err
		}
		cur = next
	}
	outBytes := int64(4)
	for _, d := range cur {
		outBytes *= int64(d)
	}

	est := Estimate{Device: device}
	throughput := p.CPUFlops
	if device == Accelerator {
		throughput *= p.Speedup
		est.Transfer = time.Duration(float64(inBytes+outBytes) / p.TransferBytesPerSec * float64(time.Second))
		est.Overhead = time.Duration(len(m.Layers)) * p.LaunchOverhead
	}
	est.Compute = time.Duration(flops / throughput * float64(time.Second))
	return est, nil
}

// Choose returns the device with the lower modelled latency for the query,
// with both estimates for EXPLAIN output.
func Choose(p Profile, m *nn.Model, batch int) (Kind, Estimate, Estimate, error) {
	cpu, err := EstimateModel(p, m, batch, CPU)
	if err != nil {
		return CPU, Estimate{}, Estimate{}, err
	}
	acc, err := EstimateModel(p, m, batch, Accelerator)
	if err != nil {
		return CPU, Estimate{}, Estimate{}, err
	}
	if acc.Total() < cpu.Total() {
		return Accelerator, cpu, acc, nil
	}
	return CPU, cpu, acc, nil
}

// Crossover returns the smallest batch size in [1, maxBatch] at which the
// accelerator wins, or 0 if it never does. It binary-searches on the
// monotone advantage.
func Crossover(p Profile, m *nn.Model, maxBatch int) (int, error) {
	lo, hi := 1, maxBatch
	found := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		dev, _, _, err := Choose(p, m, mid)
		if err != nil {
			return 0, err
		}
		if dev == Accelerator {
			found = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return found, nil
}
