package memlimit

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestReserveWithinLimit(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(40); err != nil {
		t.Fatal(err)
	}
	if got := b.Reserved(); got != 100 {
		t.Fatalf("Reserved = %d, want 100", got)
	}
}

func TestReserveOverLimitReturnsErrOOM(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(101); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	if got := b.Reserved(); got != 0 {
		t.Fatalf("failed reservation must not claim bytes, Reserved = %d", got)
	}
}

func TestOOMBoundaryExact(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(100); err != nil {
		t.Fatalf("reservation equal to the limit must succeed: %v", err)
	}
	if err := b.Reserve(1); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestUnlimitedNeverRefuses(t *testing.T) {
	b := Unlimited()
	if err := b.Reserve(1 << 60); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(100); err != nil {
		t.Fatal(err)
	}
	b.Release(50)
	if err := b.Reserve(50); err != nil {
		t.Fatalf("reserve after release failed: %v", err)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(10); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release should panic")
		}
	}()
	b.Release(11)
}

func TestNegativeReservationRejected(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(-1); err == nil {
		t.Fatal("negative reservation must error")
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	b := NewBudget(0)
	mustReserve(t, b, 70)
	b.Release(50)
	mustReserve(t, b, 10)
	if got := b.Peak(); got != 70 {
		t.Fatalf("Peak = %d, want 70", got)
	}
}

func TestReset(t *testing.T) {
	b := NewBudget(100)
	mustReserve(t, b, 80)
	b.Reset()
	if b.Reserved() != 0 || b.Peak() != 0 {
		t.Fatalf("Reset left reserved=%d peak=%d", b.Reserved(), b.Peak())
	}
	mustReserve(t, b, 100)
}

func TestTryReserveCloseIdempotent(t *testing.T) {
	b := NewBudget(100)
	r, err := b.TryReserve(40)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // must not double-release
	if got := b.Reserved(); got != 0 {
		t.Fatalf("Reserved after Close = %d", got)
	}
}

func TestTryReserveOOM(t *testing.T) {
	b := NewBudget(10)
	if _, err := b.TryReserve(11); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestConcurrentReserveReleaseNeverExceedsLimit(t *testing.T) {
	const limit = 1000
	b := NewBudget(limit)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := b.Reserve(7); err == nil {
					if r := b.Reserved(); r > limit {
						t.Errorf("reserved %d exceeds limit", r)
					}
					b.Release(7)
				}
			}
		}()
	}
	wg.Wait()
	if b.Reserved() != 0 {
		t.Fatalf("leaked %d bytes", b.Reserved())
	}
}

// Property: any interleaving of successful reserves and matching releases
// leaves the budget balanced, and reserved never exceeds the limit.
func TestReserveReleaseBalanceProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		b := NewBudget(1 << 20)
		var held []int64
		for _, s := range sizes {
			n := int64(s)
			if err := b.Reserve(n); err == nil {
				held = append(held, n)
			}
			if b.Reserved() > 1<<20 {
				return false
			}
		}
		for _, n := range held {
			b.Release(n)
		}
		return b.Reserved() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustReserve(t *testing.T, b *Budget, n int64) {
	t.Helper()
	if err := b.Reserve(n); err != nil {
		t.Fatal(err)
	}
}
