// Package memlimit provides cooperative memory accounting with a hard
// budget. It is how the repository reproduces the resource-constrained
// environment of the paper's evaluation (an r4.2xlarge with an effective
// per-operator limit): every runtime that allocates tensors — the simulated
// external DL runtime, the in-database UDF executor, and the relation-centric
// block executor — reserves its working-set bytes against a Budget and
// receives ErrOOM when the reservation would exceed the limit, exactly where
// TensorFlow/PyTorch/the UDF build would have thrown an out-of-memory error.
package memlimit

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOOM is returned when a reservation would exceed the budget's limit.
var ErrOOM = errors.New("memlimit: out of memory")

// Budget tracks reserved bytes against a fixed limit. A zero or negative
// limit means unlimited. Budget is safe for concurrent use.
type Budget struct {
	mu       sync.Mutex
	limit    int64
	reserved int64
	peak     int64
}

// NewBudget returns a budget with the given limit in bytes.
// limit <= 0 means unlimited.
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Unlimited returns a budget that never refuses a reservation.
func Unlimited() *Budget { return &Budget{} }

// Limit returns the configured limit in bytes (0 if unlimited).
func (b *Budget) Limit() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.limit
}

// Reserve claims n bytes. It returns a wrapped ErrOOM without claiming
// anything if the reservation would exceed the limit.
func (b *Budget) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("memlimit: negative reservation %d", n)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && b.reserved+n > b.limit {
		return fmt.Errorf("%w: need %d bytes, %d of %d already reserved",
			ErrOOM, n, b.reserved, b.limit)
	}
	b.reserved += n
	if b.reserved > b.peak {
		b.peak = b.reserved
	}
	return nil
}

// Release returns n bytes to the budget. Releasing more than is reserved
// panics: it indicates double-free accounting in the caller.
func (b *Budget) Release(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("memlimit: negative release %d", n))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.reserved {
		panic(fmt.Sprintf("memlimit: release of %d bytes exceeds %d reserved", n, b.reserved))
	}
	b.reserved -= n
}

// Reserved returns the currently reserved byte count.
func (b *Budget) Reserved() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reserved
}

// Peak returns the high-water mark of reserved bytes.
func (b *Budget) Peak() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Reset releases all reservations and clears the peak. Intended for reusing
// one budget across benchmark iterations.
func (b *Budget) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reserved = 0
	b.peak = 0
}

// Reservation is a convenience handle that releases its bytes exactly once.
type Reservation struct {
	budget *Budget
	n      int64
	once   sync.Once
}

// TryReserve reserves n bytes and returns a handle that releases them via
// Close. The handle's Close is idempotent.
func (b *Budget) TryReserve(n int64) (*Reservation, error) {
	if err := b.Reserve(n); err != nil {
		return nil, err
	}
	return &Reservation{budget: b, n: n}, nil
}

// Close releases the reservation. Safe to call multiple times.
func (r *Reservation) Close() error {
	r.once.Do(func() { r.budget.Release(r.n) })
	return nil
}
