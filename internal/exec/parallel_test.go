package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tensorbase/internal/parallel"
	"tensorbase/internal/table"
)

// groupedRows builds n tuples spread over g groups with deterministic
// pseudo-random values.
func groupedRows(n, g int, seed int64) []table.Tuple {
	r := rand.New(rand.NewSource(seed))
	out := make([]table.Tuple, n)
	for i := range out {
		out[i] = table.Tuple{
			table.IntVal(int64(i % g)),
			table.FloatVal(r.NormFloat64()),
		}
	}
	return out
}

func collectAgg(t *testing.T, op Operator) []table.Tuple {
	t.Helper()
	got, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// The partitioned aggregate must produce exactly the serial operator's
// output — same groups, same values (bit-identical floats, since each
// group folds in input order within one partition), same order.
func TestPartitionedAggregateMatchesSerial(t *testing.T) {
	specs := []AggSpec{
		{Kind: Count, As: "n"},
		{Kind: Sum, Col: "v", As: "sum"},
		{Kind: Min, Col: "v", As: "min"},
		{Kind: Max, Col: "v", As: "max"},
		{Kind: Avg, Col: "v", As: "avg"},
	}
	rows := groupedRows(5000, 37, 20)
	serialOp, err := NewHashAggregate(NewMemScan(intsSchema(), rows), []string{"id"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	want := collectAgg(t, serialOp)

	for _, workers := range []int{1, 2, 3, 8} {
		op, err := NewPartitionedAggregate(NewMemScan(intsSchema(), rows), []string{"id"}, specs, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := collectAgg(t, op)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: partitioned output differs from serial", workers)
		}
	}
}

func TestPartitionedAggregateVecFold(t *testing.T) {
	schema := table.MustSchema(
		table.Column{Name: "g", Type: table.Int64},
		table.Column{Name: "vec", Type: table.FloatVec},
	)
	var rows []table.Tuple
	for i := 0; i < 200; i++ {
		rows = append(rows, table.Tuple{
			table.IntVal(int64(i % 7)),
			table.VecVal([]float32{float32(i), float32(2 * i)}),
		})
	}
	fold := func(acc []float32, t table.Tuple) ([]float32, error) {
		if acc == nil {
			acc = make([]float32, len(t[1].Vec))
		}
		for i, v := range t[1].Vec {
			acc[i] += v
		}
		return acc, nil
	}
	specs := []AggSpec{{Kind: VecFold, Fold: fold, As: "total"}}

	serialOp, _ := NewHashAggregate(NewMemScan(schema, rows), []string{"g"}, specs)
	want := collectAgg(t, serialOp)

	op, err := NewPartitionedAggregate(NewMemScan(schema, rows), []string{"g"}, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := collectAgg(t, op)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("partitioned VecFold differs from serial")
	}
}

func TestPartitionedAggregateValidatesLikeSerial(t *testing.T) {
	sc := NewMemScan(intsSchema(), nil)
	if _, err := NewPartitionedAggregate(sc, []string{"ghost"}, []AggSpec{{Kind: Count, As: "n"}}, 2); err == nil {
		t.Fatal("unknown group column must error at construction")
	}
	if _, err := NewPartitionedAggregate(sc, []string{"id"}, []AggSpec{{Kind: VecFold, As: "x"}}, 2); err == nil {
		t.Fatal("VecFold without a Fold func must error")
	}
}

func TestPartitionedAggregateFoldErrorPropagates(t *testing.T) {
	schema := table.MustSchema(
		table.Column{Name: "g", Type: table.Int64},
		table.Column{Name: "vec", Type: table.FloatVec},
	)
	var rows []table.Tuple
	for i := 0; i < 100; i++ {
		rows = append(rows, table.Tuple{table.IntVal(int64(i % 5)), table.VecVal([]float32{1})})
	}
	boom := errors.New("fold failed")
	fold := func(acc []float32, t table.Tuple) ([]float32, error) {
		if t[0].Int == 3 {
			return nil, boom
		}
		return []float32{0}, nil
	}
	op, err := NewPartitionedAggregate(NewMemScan(schema, rows),
		[]string{"g"}, []AggSpec{{Kind: VecFold, Fold: fold, As: "x"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fold error", err)
	}
}

type failingScan struct {
	schema *table.Schema
	n      int
}

func (f *failingScan) Schema() *table.Schema { return f.schema }
func (f *failingScan) Open() error           { return nil }
func (f *failingScan) Close() error          { return nil }
func (f *failingScan) Next() (table.Tuple, bool, error) {
	if f.n <= 0 {
		return nil, false, fmt.Errorf("input died")
	}
	f.n--
	return table.Tuple{table.IntVal(int64(f.n)), table.FloatVal(1)}, true, nil
}

func TestPartitionedAggregateInputErrorPropagates(t *testing.T) {
	op, err := NewPartitionedAggregate(&failingScan{schema: intsSchema(), n: 50},
		[]string{"id"}, []AggSpec{{Kind: Count, As: "n"}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); err == nil {
		t.Fatal("input error must propagate through the partition fan-out")
	}
}

// Unforced fan-out sizes from the shared budget and returns every token.
func TestPartitionedAggregateReturnsBudgetTokens(t *testing.T) {
	shared := parallel.NewBudget(4)
	prev := parallel.SetDefault(shared)
	defer parallel.SetDefault(prev)

	rows := groupedRows(1000, 11, 21)
	op, err := NewPartitionedAggregate(NewMemScan(intsSchema(), rows),
		[]string{"id"}, []AggSpec{{Kind: Count, As: "n"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectAgg(t, op); len(got) != 11 {
		t.Fatalf("groups = %d, want 11", len(got))
	}
	if shared.InUse() != 0 {
		t.Fatalf("aggregate leaked %d tokens", shared.InUse())
	}
}

// More workers than groups: some partitions see no tuples and contribute
// nothing; the merge must still be complete and ordered.
func TestPartitionedAggregateMoreWorkersThanGroups(t *testing.T) {
	rows := groupedRows(40, 2, 22)
	serialOp, _ := NewHashAggregate(NewMemScan(intsSchema(), rows), []string{"id"},
		[]AggSpec{{Kind: Sum, Col: "v", As: "s"}})
	want := collectAgg(t, serialOp)
	op, err := NewPartitionedAggregate(NewMemScan(intsSchema(), rows), []string{"id"},
		[]AggSpec{{Kind: Sum, Col: "v", As: "s"}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectAgg(t, op); !reflect.DeepEqual(got, want) {
		t.Fatal("sparse partitions broke the merge")
	}
}
