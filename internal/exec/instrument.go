package exec

import (
	"fmt"
	"strings"
	"time"

	"tensorbase/internal/table"
)

// Instrumented wraps an operator and records rows produced and time spent
// inside it (cumulative across Open and Next) — the per-operator view an
// EXPLAIN ANALYZE renders.
type Instrumented struct {
	in      Operator
	name    string
	rows    int64
	elapsed time.Duration
}

// Instrument wraps op under a display name.
func Instrument(name string, op Operator) *Instrumented {
	return &Instrumented{in: op, name: name}
}

// Name returns the display name.
func (i *Instrumented) Name() string { return i.name }

// Rows returns the number of rows produced so far.
func (i *Instrumented) Rows() int64 { return i.rows }

// Elapsed returns the cumulative time inside Open and Next. Time spent in
// the operator's own inputs is included (wall-clock semantics, like
// EXPLAIN ANALYZE's actual time).
func (i *Instrumented) Elapsed() time.Duration { return i.elapsed }

// Schema implements Operator.
func (i *Instrumented) Schema() *table.Schema { return i.in.Schema() }

// Open implements Operator.
func (i *Instrumented) Open() error {
	start := time.Now()
	err := i.in.Open()
	i.elapsed += time.Since(start)
	return err
}

// Next implements Operator.
func (i *Instrumented) Next() (table.Tuple, bool, error) {
	start := time.Now()
	t, ok, err := i.in.Next()
	i.elapsed += time.Since(start)
	if ok {
		i.rows++
	}
	return t, ok, err
}

// Close implements Operator.
func (i *Instrumented) Close() error { return i.in.Close() }

// Noter is implemented by operators that can summarise internal counters
// (cache hit rates, pipeline fill/stall) in one line; EXPLAIN ANALYZE
// surfaces the note next to the stage's row/time stats.
type Noter interface {
	StageNote() string
}

// Note returns the wrapped operator's stage note, if it provides one.
func (i *Instrumented) Note() string {
	if n, ok := i.in.(Noter); ok {
		return n.StageNote()
	}
	return ""
}

// StageStat is one row of a query profile.
type StageStat struct {
	Name    string
	Rows    int64
	Elapsed time.Duration
	Note    string // operator-provided counter summary, may be empty
}

// Profile drains stats from instrumented stages, outermost first.
func Profile(stages []*Instrumented) []StageStat {
	out := make([]StageStat, len(stages))
	for i, s := range stages {
		out[i] = StageStat{Name: s.Name(), Rows: s.Rows(), Elapsed: s.Elapsed(), Note: s.Note()}
	}
	return out
}

// FormatProfile renders stage stats with self-time (outer minus inner),
// assuming stages are ordered outermost → innermost.
func FormatProfile(stats []StageStat) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %14s %14s\n", "stage", "rows", "total", "self")
	for i, s := range stats {
		self := s.Elapsed
		if i+1 < len(stats) {
			self -= stats[i+1].Elapsed
			if self < 0 {
				self = 0
			}
		}
		note := ""
		if s.Note != "" {
			note = "  " + s.Note
		}
		fmt.Fprintf(&sb, "%-12s %10d %14s %14s%s\n",
			s.Name, s.Rows, s.Elapsed.Round(time.Microsecond), self.Round(time.Microsecond), note)
	}
	return sb.String()
}
