package exec

import (
	"fmt"
	"strings"
	"time"

	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

// Instrumented wraps an operator and records rows produced and time spent
// inside it — cumulative across Open, Next, AND Close — the per-operator
// view an EXPLAIN ANALYZE renders. Close is timed like the other calls
// because operators can do real work there (external-sort spill teardown,
// unpin storms); an untimed Close made that work invisible in profiles.
type Instrumented struct {
	in      Operator
	name    string
	rows    int64
	elapsed time.Duration
	// closeElapsed is the Close-side portion of elapsed, kept separate so
	// profiles can show where teardown-heavy operators spend their time.
	closeElapsed time.Duration

	// Optional buffer-pool attribution: with a pool attached, the stage
	// records the pool's fetch activity between Open and Close. Like the
	// wall-clock elapsed, the window covers the operator's whole subtree.
	pool      *storage.BufferPool
	poolStart storage.PoolStats
	poolEnd   storage.PoolStats
	closed    bool

	// notes are engine-attached annotations (e.g. a stale-vector-index
	// warning) surfaced alongside the operator's own StageNote.
	notes []string
}

// Instrument wraps op under a display name.
func Instrument(name string, op Operator) *Instrumented {
	return &Instrumented{in: op, name: name}
}

// WithPool attaches a buffer pool whose fetch counters (hits/misses) are
// delta-sampled across the stage's Open..Close window. Returns i for
// chaining at wrap sites.
func (i *Instrumented) WithPool(p *storage.BufferPool) *Instrumented {
	i.pool = p
	return i
}

// AddNote appends an engine-provided annotation to the stage (rendered
// after the operator's own StageNote).
func (i *Instrumented) AddNote(note string) { i.notes = append(i.notes, note) }

// Name returns the display name.
func (i *Instrumented) Name() string { return i.name }

// Rows returns the number of rows produced so far.
func (i *Instrumented) Rows() int64 { return i.rows }

// Elapsed returns the cumulative time inside Open, Next, and Close. Time
// spent in the operator's own inputs is included (wall-clock semantics,
// like EXPLAIN ANALYZE's actual time).
func (i *Instrumented) Elapsed() time.Duration { return i.elapsed }

// CloseElapsed returns the portion of Elapsed spent inside Close.
func (i *Instrumented) CloseElapsed() time.Duration { return i.closeElapsed }

// Schema implements Operator.
func (i *Instrumented) Schema() *table.Schema { return i.in.Schema() }

// Open implements Operator.
func (i *Instrumented) Open() error {
	if i.pool != nil {
		i.poolStart = i.pool.Stats()
	}
	i.closed = false
	start := time.Now()
	err := i.in.Open()
	i.elapsed += time.Since(start)
	return err
}

// Next implements Operator.
func (i *Instrumented) Next() (table.Tuple, bool, error) {
	start := time.Now()
	t, ok, err := i.in.Next()
	i.elapsed += time.Since(start)
	if ok {
		i.rows++
	}
	return t, ok, err
}

// Close implements Operator. Close time counts toward Elapsed and is also
// recorded separately; the pool delta is sampled once, at the first Close.
func (i *Instrumented) Close() error {
	start := time.Now()
	err := i.in.Close()
	d := time.Since(start)
	if !i.closed {
		i.closed = true
		i.elapsed += d
		i.closeElapsed += d
		if i.pool != nil {
			i.poolEnd = i.pool.Stats()
		}
	}
	return err
}

// Noter is implemented by operators that can summarise internal counters
// (cache hit rates, pipeline fill/stall) in one line; EXPLAIN ANALYZE
// surfaces the note next to the stage's row/time stats.
type Noter interface {
	StageNote() string
}

// StageReporter is implemented by operators that contribute structured
// counters (spill bytes, cache probe outcomes) to their profile row. The
// operator fills only the fields it owns.
type StageReporter interface {
	ReportStage(s *StageStat)
}

// Note returns the wrapped operator's stage note plus any engine-attached
// annotations.
func (i *Instrumented) Note() string {
	var parts []string
	if n, ok := i.in.(Noter); ok {
		if s := n.StageNote(); s != "" {
			parts = append(parts, s)
		}
	}
	parts = append(parts, i.notes...)
	return strings.Join(parts, "; ")
}

// StageStat is one row of a query profile — a per-operator span. Elapsed
// includes CloseElapsed. PagesFetched/PoolHits/PoolMisses are deltas over
// the stage's Open..Close window (subtree-inclusive, like Elapsed) and are
// present only when the stage was instrumented with a pool. SpillBytes and
// the Cache* fields are filled by operators implementing StageReporter.
type StageStat struct {
	Name         string
	Rows         int64
	Elapsed      time.Duration
	CloseElapsed time.Duration
	Depth        int // nesting depth, 0 = outermost (profiles are chains)

	PagesFetched uint64 // pool fetches (hits + misses) in the window
	PoolHits     uint64
	PoolMisses   uint64

	SpillBytes int64 // bytes spilled through the buffer pool (sorts)
	SpillRuns  int64

	CacheHits   int64 // result-cache probe outcomes (PREDICT)
	CacheMisses int64
	CacheShared int64

	Note string // operator-provided counter summary, may be empty
}

// Stat assembles the stage's span: timing, rows, pool deltas, and any
// operator-reported extras.
func (i *Instrumented) Stat() StageStat {
	s := StageStat{
		Name:         i.name,
		Rows:         i.rows,
		Elapsed:      i.elapsed,
		CloseElapsed: i.closeElapsed,
		Note:         i.Note(),
	}
	if i.pool != nil && i.closed {
		s.PoolHits = i.poolEnd.Hits - i.poolStart.Hits
		s.PoolMisses = i.poolEnd.Misses - i.poolStart.Misses
		s.PagesFetched = s.PoolHits + s.PoolMisses
	}
	if r, ok := i.in.(StageReporter); ok {
		r.ReportStage(&s)
	}
	return s
}

// Profile drains stats from instrumented stages, outermost first, setting
// each stage's depth from its position (query pipelines are chains).
func Profile(stages []*Instrumented) []StageStat {
	out := make([]StageStat, len(stages))
	for i, s := range stages {
		out[i] = s.Stat()
		out[i].Depth = i
	}
	return out
}

// FormatProfile renders stage stats as an operator tree with self-time
// (outer minus inner), assuming stages are ordered outermost → innermost.
func FormatProfile(stats []StageStat) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %10s %14s %14s %12s\n", "stage", "rows", "total", "self", "close")
	for i, s := range stats {
		self := s.Elapsed
		if i+1 < len(stats) {
			self -= stats[i+1].Elapsed
			if self < 0 {
				self = 0
			}
		}
		name := s.Name
		if s.Depth > 0 {
			name = strings.Repeat("  ", s.Depth-1) + "└─" + name
		}
		fmt.Fprintf(&sb, "%-24s %10d %14s %14s %12s%s\n",
			name, s.Rows,
			s.Elapsed.Round(time.Microsecond),
			self.Round(time.Microsecond),
			s.CloseElapsed.Round(time.Microsecond),
			formatExtras(s))
	}
	return sb.String()
}

// formatExtras renders the structured span fields that are present.
func formatExtras(s StageStat) string {
	var parts []string
	if s.PagesFetched > 0 {
		parts = append(parts, fmt.Sprintf("pages=%d (%dh/%dm)", s.PagesFetched, s.PoolHits, s.PoolMisses))
	}
	if s.SpillBytes > 0 {
		parts = append(parts, fmt.Sprintf("spill=%dB/%d runs", s.SpillBytes, s.SpillRuns))
	}
	if s.CacheHits+s.CacheMisses+s.CacheShared > 0 {
		parts = append(parts, fmt.Sprintf("probes=%dh/%dm/%ds",
			s.CacheHits, s.CacheMisses, s.CacheShared))
	}
	if s.Note != "" {
		parts = append(parts, s.Note)
	}
	if len(parts) == 0 {
		return ""
	}
	return "  " + strings.Join(parts, " ")
}

// SummarizeProfile renders spans as one line for the slow-query log:
// "scan 1000r 1.2ms -> filter 400r 300µs -> ...", innermost last.
func SummarizeProfile(stats []StageStat) string {
	if len(stats) == 0 {
		return ""
	}
	parts := make([]string, len(stats))
	for i, s := range stats {
		parts[i] = fmt.Sprintf("%s %dr %s", s.Name, s.Rows, s.Elapsed.Round(time.Microsecond))
	}
	return strings.Join(parts, " -> ")
}
