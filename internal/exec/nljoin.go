package exec

import "tensorbase/internal/table"

// JoinPredicate decides whether a left/right tuple pair joins.
type JoinPredicate func(left, right table.Tuple) (bool, error)

// NestedLoopJoin joins on an arbitrary predicate — the fallback for join
// conditions the specialised joins (hash equi-join, band join) cannot
// handle, and the reference implementation they are tested against. The
// right input is materialised; the left streams.
type NestedLoopJoin struct {
	left, right Operator
	pred        JoinPredicate
	schema      *table.Schema

	rightRows []table.Tuple
	cur       table.Tuple
	pos       int
}

// NewNestedLoopJoin joins left and right on pred.
func NewNestedLoopJoin(left, right Operator, pred JoinPredicate) *NestedLoopJoin {
	return &NestedLoopJoin{
		left: left, right: right, pred: pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *table.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.cur = nil
	j.pos = 0
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (table.Tuple, bool, error) {
	for {
		if j.cur == nil {
			t, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t
			j.pos = 0
		}
		for j.pos < len(j.rightRows) {
			r := j.rightRows[j.pos]
			j.pos++
			ok, err := j.pred(j.cur, r)
			if err != nil {
				return nil, false, err
			}
			if ok {
				return concatTuple(j.cur, r), true, nil
			}
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.rightRows = nil
	return j.left.Close()
}
