package exec

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"tensorbase/internal/fault"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

func faultySortPool(t *testing.T, frames int) (*storage.BufferPool, *fault.Injector) {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "fsort.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	inj := fault.New()
	d.SetFaults(inj)
	return storage.NewBufferPool(d, frames), inj
}

func sortInput(n int) (*table.Schema, []table.Tuple) {
	s := intsSchema()
	in := make([]table.Tuple, n)
	for i := range in {
		in[i] = table.Tuple{table.IntVal(int64(n - i)), table.FloatVal(float64(i))}
	}
	return s, in
}

func TestExternalSortSurfacesSpillWriteFault(t *testing.T) {
	pool, inj := faultySortPool(t, 8)
	s, in := sortInput(5000)
	errIO := errors.New("spill write error")
	inj.FailAfter("disk.write", errIO, 1)

	ext, err := NewExternalSort(NewMemScan(s, in), "id", false, pool)
	if err != nil {
		t.Fatal(err)
	}
	ext.RunRows = 128 // force spill runs
	if _, err := Collect(ext); !errors.Is(err, errIO) {
		t.Fatalf("sort err = %v, want injected spill write fault", err)
	}
	if got := pool.Pinned(); got != 0 {
		t.Fatalf("pinned frames after failed sort = %d, want 0", got)
	}
}

func TestExternalSortSurfacesMergeReadFault(t *testing.T) {
	pool, inj := faultySortPool(t, 4)
	s, in := sortInput(5000)
	errIO := errors.New("merge read error")

	ext, err := NewExternalSort(NewMemScan(s, in), "id", false, pool)
	if err != nil {
		t.Fatal(err)
	}
	ext.RunRows = 128
	if err := ext.Open(); err != nil {
		t.Fatal(err)
	}
	inj.Reset() // fault the merge phase only
	inj.FailAfter("disk.read", errIO, 1)
	sawErr := false
	for {
		_, ok, err := ext.Next()
		if err != nil {
			if !errors.Is(err, errIO) {
				t.Fatalf("merge err = %v, want injected read fault", err)
			}
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if err := ext.Close(); err != nil {
		t.Fatal(err)
	}
	if !sawErr {
		t.Fatal("merge never missed the pool; shrink frames or grow the input")
	}
	if got := pool.Pinned(); got != 0 {
		t.Fatalf("pinned frames = %d, want 0", got)
	}
}

func TestExternalSortCancelledMidSpill(t *testing.T) {
	pool, _ := faultySortPool(t, 8)
	s, in := sortInput(5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Open must bail out within one tuple
	tok, stop := lifecycle.Watch(ctx)
	defer stop()

	ext, err := NewExternalSort(NewMemScan(s, in), "id", false, pool)
	if err != nil {
		t.Fatal(err)
	}
	ext.RunRows = 128
	ext.SetCancel(tok)
	if _, err := Collect(ext); !errors.Is(err, context.Canceled) {
		t.Fatalf("sort err = %v, want context.Canceled", err)
	}
	if got := pool.Pinned(); got != 0 {
		t.Fatalf("pinned frames after cancelled sort = %d, want 0", got)
	}
}
