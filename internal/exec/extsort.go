package exec

import (
	"container/heap"
	"fmt"
	"sort"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

// ExternalSort sorts arbitrarily large inputs in bounded memory: the input
// is consumed in runs of at most RunRows tuples, each run is sorted and
// written to a heap file (spilling through the buffer pool like any other
// relation), and the runs are k-way merged on demand. It is the
// out-of-core counterpart of Sort, in the same spirit as the
// relation-centric tensor path: bounded memory, disk-backed state.
type ExternalSort struct {
	in      Operator
	col     string
	desc    bool
	pool    *storage.BufferPool
	RunRows int // max tuples held in memory at once (default 1024)

	colIdx int
	less   func(a, b table.Tuple) bool
	runs   []*table.Scanner
	merge  mergeHeap
	opened bool
	tok    *lifecycle.Token

	// Spill accounting for profiles: runs written and the pages they
	// occupy (bytes through the buffer pool). Survives Close so EXPLAIN
	// ANALYZE, which drains stats after the plan is torn down, sees them.
	spillRuns  int64
	spillBytes int64
}

// NewExternalSort returns an external sort of in by col, spilling runs
// through pool.
func NewExternalSort(in Operator, col string, desc bool, pool *storage.BufferPool) (*ExternalSort, error) {
	idx := in.Schema().ColIndex(col)
	if idx < 0 {
		return nil, fmt.Errorf("exec: external sort: unknown column %q", col)
	}
	typ := in.Schema().Cols[idx].Type
	if typ == table.FloatVec {
		return nil, fmt.Errorf("exec: cannot sort by vector column %q", col)
	}
	s := &ExternalSort{in: in, col: col, desc: desc, pool: pool, RunRows: 1024, colIdx: idx}
	base := func(a, b table.Tuple) bool {
		switch typ {
		case table.Int64:
			return a[idx].Int < b[idx].Int
		case table.Float64:
			return a[idx].Float < b[idx].Float
		default:
			return a[idx].Str < b[idx].Str
		}
	}
	if desc {
		s.less = func(a, b table.Tuple) bool { return base(b, a) }
	} else {
		s.less = base
	}
	return s, nil
}

// Schema implements Operator.
func (s *ExternalSort) Schema() *table.Schema { return s.in.Schema() }

// SetCancel implements Cancellable: the drain-into-runs loop in Open and
// the merge in Next observe tok.
func (s *ExternalSort) SetCancel(tok *lifecycle.Token) { s.tok = tok }

// Open implements Operator: it drains the input into sorted spill runs and
// prepares the merge.
func (s *ExternalSort) Open() error {
	if s.RunRows < 1 {
		return fmt.Errorf("exec: external sort run size %d < 1", s.RunRows)
	}
	if err := s.in.Open(); err != nil {
		return err
	}
	s.runs = nil
	s.spillRuns, s.spillBytes = 0, 0
	buf := make([]table.Tuple, 0, s.RunRows)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return s.less(buf[i], buf[j]) })
		run, err := table.NewHeap(s.pool, s.in.Schema())
		if err != nil {
			return err
		}
		for _, t := range buf {
			if _, err := run.Insert(t); err != nil {
				return err
			}
		}
		s.spillRuns++
		s.spillBytes += int64(run.LastPage()-run.FirstPage()+1) * storage.PageSize
		s.runs = append(s.runs, run.Scan())
		buf = buf[:0]
		return nil
	}
	for {
		if err := s.tok.Err(); err != nil {
			return err
		}
		t, ok, err := s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		buf = append(buf, t)
		if len(buf) == s.RunRows {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Prime the merge heap with each run's head.
	s.merge = mergeHeap{less: s.less}
	for i, run := range s.runs {
		t, ok, err := run.Next()
		if err != nil {
			return err
		}
		if ok {
			s.merge.items = append(s.merge.items, mergeItem{t: t, run: i})
		}
	}
	heap.Init(&s.merge)
	s.opened = true
	return nil
}

// Next implements Operator.
func (s *ExternalSort) Next() (table.Tuple, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("exec: ExternalSort.Next before Open")
	}
	if err := s.tok.Err(); err != nil {
		return nil, false, err
	}
	if s.merge.Len() == 0 {
		return nil, false, nil
	}
	top := s.merge.items[0]
	next, ok, err := s.runs[top.run].Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		s.merge.items[0] = mergeItem{t: next, run: top.run}
		heap.Fix(&s.merge, 0)
	} else {
		heap.Pop(&s.merge)
	}
	return top.t, true, nil
}

// Close implements Operator. Spill runs remain in the pool's file; they are
// transient pages reclaimed when the database file is discarded.
func (s *ExternalSort) Close() error {
	s.runs = nil
	s.merge.items = nil
	s.opened = false
	return s.in.Close()
}

// ReportStage implements StageReporter: spill volume for the profile span.
func (s *ExternalSort) ReportStage(st *StageStat) {
	st.SpillRuns = s.spillRuns
	st.SpillBytes = s.spillBytes
}

// StageNote implements Noter.
func (s *ExternalSort) StageNote() string {
	if s.spillRuns == 0 {
		return ""
	}
	return fmt.Sprintf("external sort: %d runs, %d spill bytes", s.spillRuns, s.spillBytes)
}

type mergeItem struct {
	t   table.Tuple
	run int
}

type mergeHeap struct {
	items []mergeItem
	less  func(a, b table.Tuple) bool
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.less(h.items[i].t, h.items[j].t) }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
