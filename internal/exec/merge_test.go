package exec

import (
	"testing"

	"tensorbase/internal/table"
)

func mergeSchema(t *testing.T, cols ...table.Column) *table.Schema {
	t.Helper()
	s, err := table.NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func intTuple(vs ...int64) table.Tuple {
	out := make(table.Tuple, len(vs))
	for i, v := range vs {
		out[i] = table.IntVal(v)
	}
	return out
}

func TestConcat(t *testing.T) {
	s := mergeSchema(t, table.Column{Name: "a", Type: table.Int64})
	c, err := NewConcat(
		NewMemScan(s, []table.Tuple{intTuple(1), intTuple(2)}),
		NewMemScan(s, nil),
		NewMemScan(s, []table.Tuple{intTuple(3)}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Int != 1 || rows[2][0].Int != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Mismatched schemas are rejected.
	other := mergeSchema(t, table.Column{Name: "b", Type: table.Int64})
	if _, err := NewConcat(NewMemScan(s, nil), NewMemScan(other, nil)); err == nil {
		t.Fatal("schema mismatch must fail")
	}
}

func TestOrderedMerge(t *testing.T) {
	s := mergeSchema(t,
		table.Column{Name: "k", Type: table.Int64},
		table.Column{Name: "src", Type: table.Int64})
	mk := func(src int64, keys ...int64) Operator {
		var rows []table.Tuple
		for _, k := range keys {
			rows = append(rows, intTuple(k, src))
		}
		return NewMemScan(s, rows)
	}
	m, err := NewOrderedMerge([]Operator{mk(0, 1, 4, 4, 9), mk(1, 2, 4, 8), mk(2)}, "k", false)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	wantK := []int64{1, 2, 4, 4, 4, 8, 9}
	wantSrc := []int64{0, 1, 0, 0, 1, 1, 0} // ties break toward the lower input
	for i := range wantK {
		if rows[i][0].Int != wantK[i] || rows[i][1].Int != wantSrc[i] {
			t.Fatalf("row %d = %v, want k=%d src=%d", i, rows[i], wantK[i], wantSrc[i])
		}
	}
	// Descending.
	m, err = NewOrderedMerge([]Operator{mk(0, 9, 4, 1), mk(1, 8, 4)}, "k", true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err = Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	wantK = []int64{9, 8, 4, 4, 1}
	wantSrc = []int64{0, 1, 0, 1, 0}
	for i := range wantK {
		if rows[i][0].Int != wantK[i] || rows[i][1].Int != wantSrc[i] {
			t.Fatalf("desc row %d = %v", i, rows[i])
		}
	}
	if _, err := NewOrderedMerge([]Operator{mk(0)}, "nope", false); err == nil {
		t.Fatal("unknown column must fail")
	}
}

// TestMergeAggregateMatchesSingleNode partitions rows across three "shards",
// aggregates each partition with HashAggregate, merges the partials, and
// checks bit-identity with one HashAggregate over all rows.
func TestMergeAggregateMatchesSingleNode(t *testing.T) {
	s := mergeSchema(t,
		table.Column{Name: "who", Type: table.Text},
		table.Column{Name: "amount", Type: table.Float64})
	row := func(who string, amt float64) table.Tuple {
		return table.Tuple{table.TextVal(who), table.FloatVal(amt)}
	}
	all := []table.Tuple{
		row("alice", 1.5), row("bob", 2), row("alice", 3.25), row("carol", -1),
		row("bob", 0.5), row("alice", 7), row("carol", 100), row("bob", -0.25),
	}
	specs := []AggSpec{
		{Kind: Count, As: "count"},
		{Kind: Sum, Col: "amount", As: "sum_amount"},
		{Kind: Avg, Col: "amount", As: "avg_amount"},
		{Kind: Min, Col: "amount", As: "min_amount"},
		{Kind: Max, Col: "amount", As: "max_amount"},
	}
	single, err := NewHashAggregate(NewMemScan(s, all), []string{"who"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(single)
	if err != nil {
		t.Fatal(err)
	}

	// Partial per-shard plans compute COUNT and SUM (AVG decomposes into
	// those), plus MIN/MAX.
	partialSpecs := []AggSpec{
		{Kind: Count, As: "count"},
		{Kind: Sum, Col: "amount", As: "sum_amount"},
		{Kind: Min, Col: "amount", As: "min_amount"},
		{Kind: Max, Col: "amount", As: "max_amount"},
	}
	var partials []Operator
	for shard := 0; shard < 3; shard++ {
		var rows []table.Tuple
		for i, r := range all {
			if i%3 == shard {
				rows = append(rows, r)
			}
		}
		p, err := NewHashAggregate(NewMemScan(s, rows), []string{"who"}, partialSpecs)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := Collect(p)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, NewMemScan(p.Schema(), pr))
	}
	// Partial schema: who=0, count=1, sum=2, min=3, max=4.
	finals := []FinalAgg{
		{Kind: Count, Arg: 1, As: "count"},
		{Kind: Sum, Arg: 2, As: "sum_amount"},
		{Kind: Avg, Arg: 2, Count: 1, As: "avg_amount"},
		{Kind: Min, Arg: 3, As: "min_amount"},
		{Kind: Max, Arg: 4, As: "max_amount"},
	}
	m, err := NewMergeAggregate(partials, 1, finals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("group %d width %d vs %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if !got[i][j].Equal(want[i][j]) {
				t.Fatalf("group %d col %d: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	for i, c := range m.Schema().Cols {
		if c != single.Schema().Cols[i] {
			t.Fatalf("schema col %d: %+v vs %+v", i, c, single.Schema().Cols[i])
		}
	}
}
