package exec

import (
	"fmt"
	"sort"
	"strings"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/table"
)

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate kinds. VecSum sums FloatVec columns elementwise — the
// aggregation half of the relation-centric "matmul = join + aggregation"
// rewriting. VecFold runs a user-defined fold over whole input tuples,
// which is how a per-tuple map UDF and its aggregation fuse into one
// operator (e.g. MatMulSum: accumulate each joined block pair's product
// directly into the group's result block).
const (
	Count AggKind = iota + 1
	Sum
	Avg
	Min
	Max
	VecSum
	VecFold
)

// FoldFunc merges one input tuple into a group's float-vector accumulator.
// On the group's first tuple acc is nil and the fold allocates it; the
// possibly-grown accumulator is returned. Folds run once per input tuple in
// input order, so a deterministic fold gives deterministic group results.
type FoldFunc func(acc []float32, t table.Tuple) ([]float32, error)

// AggSpec names one aggregate over an input column.
type AggSpec struct {
	Kind AggKind
	Col  string // ignored for Count and VecFold
	As   string // output column name
	// Fold implements the VecFold kind; required for it, ignored otherwise.
	Fold FoldFunc
}

// HashAggregate groups by key columns and computes aggregates per group.
// Groups are materialised in memory; output order follows the group keys
// (sorted) so results are deterministic.
type HashAggregate struct {
	in       Operator
	groupBy  []string
	specs    []AggSpec
	schema   *table.Schema
	groupIdx []int
	aggIdx   []int

	results []table.Tuple
	pos     int
	tok     *lifecycle.Token
}

type aggState struct {
	key    table.Tuple
	count  int64
	sums   []float64
	mins   []float64
	maxs   []float64
	vecs   [][]float32
	inited bool
}

// NewHashAggregate returns an aggregation of in grouped by groupBy.
func NewHashAggregate(in Operator, groupBy []string, specs []AggSpec) (*HashAggregate, error) {
	inSchema := in.Schema()
	var cols []table.Column
	groupIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		idx := inSchema.ColIndex(g)
		if idx < 0 {
			return nil, fmt.Errorf("exec: aggregate: unknown group column %q", g)
		}
		groupIdx[i] = idx
		cols = append(cols, inSchema.Cols[idx])
	}
	aggIdx := make([]int, len(specs))
	for i, s := range specs {
		if s.As == "" {
			return nil, fmt.Errorf("exec: aggregate %d needs an output name", i)
		}
		switch s.Kind {
		case Count:
			aggIdx[i] = -1
			cols = append(cols, table.Column{Name: s.As, Type: table.Int64})
		case Sum, Avg, Min, Max:
			idx := inSchema.ColIndex(s.Col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: aggregate: unknown column %q", s.Col)
			}
			ct := inSchema.Cols[idx].Type
			if ct != table.Float64 && ct != table.Int64 {
				return nil, fmt.Errorf("exec: %v over non-numeric column %q", s.Kind, s.Col)
			}
			aggIdx[i] = idx
			cols = append(cols, table.Column{Name: s.As, Type: table.Float64})
		case VecSum:
			idx := inSchema.ColIndex(s.Col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: aggregate: unknown column %q", s.Col)
			}
			if inSchema.Cols[idx].Type != table.FloatVec {
				return nil, fmt.Errorf("exec: VecSum over non-vector column %q", s.Col)
			}
			aggIdx[i] = idx
			cols = append(cols, table.Column{Name: s.As, Type: table.FloatVec})
		case VecFold:
			if s.Fold == nil {
				return nil, fmt.Errorf("exec: VecFold aggregate %q needs a Fold function", s.As)
			}
			aggIdx[i] = -1
			cols = append(cols, table.Column{Name: s.As, Type: table.FloatVec})
		default:
			return nil, fmt.Errorf("exec: unknown aggregate kind %d", s.Kind)
		}
	}
	schema, err := table.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &HashAggregate{
		in: in, groupBy: groupBy, specs: specs,
		schema: schema, groupIdx: groupIdx, aggIdx: aggIdx,
	}, nil
}

// Schema implements Operator.
func (a *HashAggregate) Schema() *table.Schema { return a.schema }

// SetCancel implements Cancellable: the build loop in Open observes tok.
func (a *HashAggregate) SetCancel(tok *lifecycle.Token) { a.tok = tok }

// Open implements Operator: it consumes the whole input and builds groups.
func (a *HashAggregate) Open() error {
	if err := a.in.Open(); err != nil {
		return err
	}
	groups := make(map[string]*aggState)
	var order []string
	for {
		if err := a.tok.Err(); err != nil {
			return err
		}
		t, ok, err := a.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key := a.groupKey(t)
		st, ok := groups[key]
		if !ok {
			st = &aggState{
				key:  a.keyTuple(t),
				sums: make([]float64, len(a.specs)),
				mins: make([]float64, len(a.specs)),
				maxs: make([]float64, len(a.specs)),
				vecs: make([][]float32, len(a.specs)),
			}
			groups[key] = st
			order = append(order, key)
		}
		if err := a.accumulate(st, t); err != nil {
			return err
		}
	}
	sort.Strings(order)
	a.results = a.results[:0]
	for _, key := range order {
		a.results = append(a.results, a.finish(groups[key]))
	}
	a.pos = 0
	return nil
}

func (a *HashAggregate) groupKey(t table.Tuple) string {
	return groupKeyOf(t, a.groupIdx)
}

// groupKeyOf builds the canonical group-key string for the values of t at
// idx. The partitioned aggregate uses the same encoding to route tuples and
// to merge-sort results, so its output order matches the serial operator's.
func groupKeyOf(t table.Tuple, idx []int) string {
	var sb strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&sb, "%v|", t[i])
	}
	return sb.String()
}

func (a *HashAggregate) keyTuple(t table.Tuple) table.Tuple {
	key := make(table.Tuple, len(a.groupIdx))
	for i, idx := range a.groupIdx {
		key[i] = t[idx]
	}
	return key
}

func (a *HashAggregate) accumulate(st *aggState, t table.Tuple) error {
	st.count++
	for i, s := range a.specs {
		switch s.Kind {
		case Count:
			// count handled above
		case Sum, Avg, Min, Max:
			v := numeric(t[a.aggIdx[i]])
			st.sums[i] += v
			if !st.inited || v < st.mins[i] {
				st.mins[i] = v
			}
			if !st.inited || v > st.maxs[i] {
				st.maxs[i] = v
			}
		case VecSum:
			vec := t[a.aggIdx[i]].Vec
			if st.vecs[i] == nil {
				st.vecs[i] = make([]float32, len(vec))
			}
			if len(st.vecs[i]) != len(vec) {
				return fmt.Errorf("exec: VecSum over ragged vectors (%d vs %d)", len(st.vecs[i]), len(vec))
			}
			acc := st.vecs[i]
			for j, f := range vec {
				acc[j] += f
			}
		case VecFold:
			acc, err := s.Fold(st.vecs[i], t)
			if err != nil {
				return fmt.Errorf("exec: fold %q: %w", s.As, err)
			}
			st.vecs[i] = acc
		}
	}
	st.inited = true
	return nil
}

func numeric(v table.Value) float64 {
	if v.Type == table.Int64 {
		return float64(v.Int)
	}
	return v.Float
}

func (a *HashAggregate) finish(st *aggState) table.Tuple {
	out := make(table.Tuple, 0, len(st.key)+len(a.specs))
	out = append(out, st.key...)
	for i, s := range a.specs {
		switch s.Kind {
		case Count:
			out = append(out, table.IntVal(st.count))
		case Sum:
			out = append(out, table.FloatVal(st.sums[i]))
		case Avg:
			out = append(out, table.FloatVal(st.sums[i]/float64(st.count)))
		case Min:
			out = append(out, table.FloatVal(st.mins[i]))
		case Max:
			out = append(out, table.FloatVal(st.maxs[i]))
		case VecSum, VecFold:
			out = append(out, table.VecVal(st.vecs[i]))
		}
	}
	return out
}

// Next implements Operator.
func (a *HashAggregate) Next() (table.Tuple, bool, error) {
	if a.pos >= len(a.results) {
		return nil, false, nil
	}
	t := a.results[a.pos]
	a.pos++
	return t, true, nil
}

// Close implements Operator.
func (a *HashAggregate) Close() error {
	a.results = nil
	return a.in.Close()
}

// Sort materialises the input and emits it ordered by a column.
type Sort struct {
	in   Operator
	col  string
	desc bool
	rows []table.Tuple
	pos  int
}

// NewSort returns a sort of in by col (ascending unless desc).
func NewSort(in Operator, col string, desc bool) (*Sort, error) {
	if in.Schema().ColIndex(col) < 0 {
		return nil, fmt.Errorf("exec: sort: unknown column %q", col)
	}
	return &Sort{in: in, col: col, desc: desc}, nil
}

// Schema implements Operator.
func (s *Sort) Schema() *table.Schema { return s.in.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	rows, err := Collect(s.in)
	if err != nil {
		return err
	}
	idx := s.in.Schema().ColIndex(s.col)
	typ := s.in.Schema().Cols[idx].Type
	less := func(a, b table.Tuple) bool {
		switch typ {
		case table.Int64:
			return a[idx].Int < b[idx].Int
		case table.Float64:
			return a[idx].Float < b[idx].Float
		default:
			return a[idx].Str < b[idx].Str
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if s.desc {
			return less(rows[j], rows[i])
		}
		return less(rows[i], rows[j])
	})
	s.rows = rows
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (table.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return nil
}
