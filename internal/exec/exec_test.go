package exec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tensorbase/internal/table"
)

func intsSchema() *table.Schema {
	return table.MustSchema(table.Column{Name: "id", Type: table.Int64}, table.Column{Name: "v", Type: table.Float64})
}

func rows(pairs ...[2]float64) []table.Tuple {
	out := make([]table.Tuple, len(pairs))
	for i, p := range pairs {
		out[i] = table.Tuple{table.IntVal(int64(p[0])), table.FloatVal(p[1])}
	}
	return out
}

func TestMemScan(t *testing.T) {
	sc := NewMemScan(intsSchema(), rows([2]float64{1, 0.5}, [2]float64{2, 1.5}))
	got, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][0].Int != 2 {
		t.Fatalf("Collect = %v", got)
	}
}

func TestFilter(t *testing.T) {
	sc := NewMemScan(intsSchema(), rows([2]float64{1, 0.5}, [2]float64{2, 1.5}, [2]float64{3, 2.5}))
	f := NewFilter(sc, func(tp table.Tuple) (bool, error) { return tp[1].Float > 1, nil })
	got, err := Collect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0].Int != 2 {
		t.Fatalf("filter = %v", got)
	}
}

func TestProject(t *testing.T) {
	sc := NewMemScan(intsSchema(), rows([2]float64{1, 0.5}))
	p, err := NewProject(sc, "v")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 1 || got[0][0].Float != 0.5 {
		t.Fatalf("project = %v", got)
	}
	if _, err := NewProject(NewMemScan(intsSchema(), nil), "ghost"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestMap(t *testing.T) {
	sc := NewMemScan(intsSchema(), rows([2]float64{1, 2}))
	out := table.MustSchema(table.Column{Name: "double", Type: table.Float64})
	m := NewMap(sc, out, func(tp table.Tuple) (table.Tuple, error) {
		return table.Tuple{table.FloatVal(tp[1].Float * 2)}, nil
	})
	got, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Float != 4 {
		t.Fatalf("map = %v", got)
	}
}

func TestLimit(t *testing.T) {
	sc := NewMemScan(intsSchema(), rows([2]float64{1, 1}, [2]float64{2, 2}, [2]float64{3, 3}))
	got, err := Collect(NewLimit(sc, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limit = %d rows", len(got))
	}
}

func joinSchema(key, val string) *table.Schema {
	return table.MustSchema(table.Column{Name: key, Type: table.Int64}, table.Column{Name: val, Type: table.Float64})
}

func TestHashJoinMatchesAndMultiplicity(t *testing.T) {
	left := NewMemScan(joinSchema("k", "lv"), rows([2]float64{1, 10}, [2]float64{2, 20}, [2]float64{2, 21}))
	right := NewMemScan(joinSchema("k", "rv"), rows([2]float64{2, 200}, [2]float64{2, 201}, [2]float64{3, 300}))
	j, err := NewHashJoin(left, right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// keys 2×2 matches on both sides with multiplicity 2 → 4 rows.
	if len(got) != 4 {
		t.Fatalf("join produced %d rows, want 4", len(got))
	}
	for _, r := range got {
		if r[0].Int != 2 || r[2].Int != 2 {
			t.Fatalf("join row with wrong keys: %v", r)
		}
	}
	// Output schema: k, lv, k_2, rv.
	if j.Schema().ColIndex("k_2") < 0 {
		t.Fatalf("schema = %+v", j.Schema().Cols)
	}
}

func TestHashJoinEmptySides(t *testing.T) {
	left := NewMemScan(joinSchema("k", "lv"), nil)
	right := NewMemScan(joinSchema("k", "rv"), rows([2]float64{1, 1}))
	j, err := NewHashJoin(left, right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty probe side must yield 0 rows, got %d", len(got))
	}
}

func TestHashJoinRejectsNonIntKeys(t *testing.T) {
	s := table.MustSchema(table.Column{Name: "f", Type: table.Float64})
	if _, err := NewHashJoin(NewMemScan(s, nil), NewMemScan(s, nil), "f", "f"); err == nil {
		t.Fatal("non-INT keys must be rejected")
	}
}

func floatSchema(key, val string) *table.Schema {
	return table.MustSchema(table.Column{Name: key, Type: table.Float64}, table.Column{Name: val, Type: table.Float64})
}

func frows(pairs ...[2]float64) []table.Tuple {
	out := make([]table.Tuple, len(pairs))
	for i, p := range pairs {
		out[i] = table.Tuple{table.FloatVal(p[0]), table.FloatVal(p[1])}
	}
	return out
}

func TestBandJoinMatchesWithinEps(t *testing.T) {
	left := NewMemScan(floatSchema("a", "lv"), frows([2]float64{1.0, 1}, [2]float64{5.0, 2}))
	right := NewMemScan(floatSchema("b", "rv"), frows([2]float64{1.05, 10}, [2]float64{1.2, 11}, [2]float64{4.0, 12}))
	j, err := NewBandJoin(left, right, "a", "b", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("band join = %d rows, want 1", len(got))
	}
	if got[0][0].Float != 1.0 || got[0][2].Float != 1.05 {
		t.Fatalf("band join row = %v", got[0])
	}
}

// Property: BandJoin equals the nested-loop reference join on random data.
func TestBandJoinMatchesNestedLoopReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		nl, nr := rng.Intn(40), rng.Intn(40)
		eps := rng.Float64() * 0.5
		lrows := make([]table.Tuple, nl)
		for i := range lrows {
			lrows[i] = table.Tuple{table.FloatVal(rng.Float64() * 4), table.FloatVal(float64(i))}
		}
		rrows := make([]table.Tuple, nr)
		for i := range rrows {
			rrows[i] = table.Tuple{table.FloatVal(rng.Float64() * 4), table.FloatVal(float64(i))}
		}
		want := 0
		for _, l := range lrows {
			for _, r := range rrows {
				if math.Abs(l[0].Float-r[0].Float) <= eps {
					want++
				}
			}
		}
		j, err := NewBandJoin(
			NewMemScan(floatSchema("a", "lv"), lrows),
			NewMemScan(floatSchema("b", "rv"), rrows),
			"a", "b", eps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("trial %d: band join = %d rows, nested loop = %d", trial, len(got), want)
		}
	}
}

func TestBandJoinRejectsNegativeEps(t *testing.T) {
	s := floatSchema("a", "v")
	if _, err := NewBandJoin(NewMemScan(s, nil), NewMemScan(s, nil), "a", "a", -1); err == nil {
		t.Fatal("negative eps must be rejected")
	}
}

func TestHashAggregateCountSumAvgMinMax(t *testing.T) {
	s := table.MustSchema(table.Column{Name: "g", Type: table.Int64}, table.Column{Name: "v", Type: table.Float64})
	in := NewMemScan(s, []table.Tuple{
		{table.IntVal(1), table.FloatVal(1)},
		{table.IntVal(1), table.FloatVal(3)},
		{table.IntVal(2), table.FloatVal(10)},
	})
	agg, err := NewHashAggregate(in, []string{"g"}, []AggSpec{
		{Kind: Count, As: "n"},
		{Kind: Sum, Col: "v", As: "sum"},
		{Kind: Avg, Col: "v", As: "avg"},
		{Kind: Min, Col: "v", As: "min"},
		{Kind: Max, Col: "v", As: "max"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d groups", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0].Int < got[j][0].Int })
	g1 := got[0]
	if g1[1].Int != 2 || g1[2].Float != 4 || g1[3].Float != 2 || g1[4].Float != 1 || g1[5].Float != 3 {
		t.Fatalf("group 1 = %v", g1)
	}
	g2 := got[1]
	if g2[1].Int != 1 || g2[2].Float != 10 {
		t.Fatalf("group 2 = %v", g2)
	}
}

func TestHashAggregateVecSum(t *testing.T) {
	s := table.MustSchema(table.Column{Name: "g", Type: table.Int64}, table.Column{Name: "blk", Type: table.FloatVec})
	in := NewMemScan(s, []table.Tuple{
		{table.IntVal(1), table.VecVal([]float32{1, 2})},
		{table.IntVal(1), table.VecVal([]float32{10, 20})},
		{table.IntVal(2), table.VecVal([]float32{5, 5})},
	})
	agg, err := NewHashAggregate(in, []string{"g"}, []AggSpec{{Kind: VecSum, Col: "blk", As: "sum"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d groups", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0].Int < got[j][0].Int })
	if v := got[0][1].Vec; v[0] != 11 || v[1] != 22 {
		t.Fatalf("VecSum = %v", v)
	}
}

func TestHashAggregateVecSumRaggedErrors(t *testing.T) {
	s := table.MustSchema(table.Column{Name: "g", Type: table.Int64}, table.Column{Name: "blk", Type: table.FloatVec})
	in := NewMemScan(s, []table.Tuple{
		{table.IntVal(1), table.VecVal([]float32{1})},
		{table.IntVal(1), table.VecVal([]float32{1, 2})},
	})
	agg, err := NewHashAggregate(in, []string{"g"}, []AggSpec{{Kind: VecSum, Col: "blk", As: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Open(); err == nil {
		t.Fatal("ragged VecSum must error")
	}
}

func TestHashAggregateValidation(t *testing.T) {
	s := intsSchema()
	if _, err := NewHashAggregate(NewMemScan(s, nil), []string{"ghost"}, nil); err == nil {
		t.Fatal("unknown group column must error")
	}
	if _, err := NewHashAggregate(NewMemScan(s, nil), nil, []AggSpec{{Kind: Sum, Col: "ghost", As: "s"}}); err == nil {
		t.Fatal("unknown agg column must error")
	}
	if _, err := NewHashAggregate(NewMemScan(s, nil), nil, []AggSpec{{Kind: Sum, Col: "v"}}); err == nil {
		t.Fatal("missing output name must error")
	}
}

func TestSortAscDesc(t *testing.T) {
	s := intsSchema()
	in := rows([2]float64{3, 3}, [2]float64{1, 1}, [2]float64{2, 2})
	asc, err := NewSort(NewMemScan(s, in), "id", false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(asc)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Int != 1 || got[2][0].Int != 3 {
		t.Fatalf("asc sort = %v", got)
	}
	desc, err := NewSort(NewMemScan(s, in), "id", true)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Collect(desc)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Int != 3 {
		t.Fatalf("desc sort = %v", got)
	}
}

func TestPipelineComposition(t *testing.T) {
	// scan → filter → project → sort → limit end to end.
	s := intsSchema()
	var in []table.Tuple
	for i := 0; i < 100; i++ {
		in = append(in, table.Tuple{table.IntVal(int64(i)), table.FloatVal(float64(i % 10))})
	}
	f := NewFilter(NewMemScan(s, in), func(tp table.Tuple) (bool, error) { return tp[1].Float >= 5, nil })
	p, err := NewProject(f, "id")
	if err != nil {
		t.Fatal(err)
	}
	srt, err := NewSort(p, "id", true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewLimit(srt, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0][0].Int != 99 {
		t.Fatalf("pipeline = %v", got)
	}
}

func TestNestedLoopJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mk := func() ([]table.Tuple, []table.Tuple) {
		l := make([]table.Tuple, 30)
		r := make([]table.Tuple, 25)
		for i := range l {
			l[i] = table.Tuple{table.IntVal(int64(rng.Intn(8))), table.FloatVal(float64(i))}
		}
		for i := range r {
			r[i] = table.Tuple{table.IntVal(int64(rng.Intn(8))), table.FloatVal(float64(-i))}
		}
		return l, r
	}
	lrows, rrows := mk()
	hj, err := NewHashJoin(
		NewMemScan(joinSchema("k", "lv"), lrows),
		NewMemScan(joinSchema("k", "rv"), rrows), "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	hjRows, err := Collect(hj)
	if err != nil {
		t.Fatal(err)
	}
	nl := NewNestedLoopJoin(
		NewMemScan(joinSchema("k", "lv"), lrows),
		NewMemScan(joinSchema("k", "rv"), rrows),
		func(l, r table.Tuple) (bool, error) { return l[0].Int == r[0].Int, nil })
	nlRows, err := Collect(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(hjRows) != len(nlRows) {
		t.Fatalf("hash join %d rows, nested loop %d", len(hjRows), len(nlRows))
	}
}

func TestNestedLoopJoinArbitraryPredicate(t *testing.T) {
	l := []table.Tuple{{table.IntVal(1), table.FloatVal(5)}}
	r := []table.Tuple{{table.IntVal(9), table.FloatVal(3)}, {table.IntVal(9), table.FloatVal(7)}}
	nl := NewNestedLoopJoin(
		NewMemScan(joinSchema("k", "lv"), l),
		NewMemScan(joinSchema("k", "rv"), r),
		func(a, b table.Tuple) (bool, error) { return a[1].Float > b[1].Float, nil })
	rows, err := Collect(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][3].Float != 3 {
		t.Fatalf("rows = %v", rows)
	}
}
