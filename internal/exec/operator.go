// Package exec implements the Volcano-style relational executor: scans,
// filters, projections, hash and similarity joins, hash aggregation, sort,
// and limit. These are the operators the relation-centric representation
// lowers tensor computations onto (matrix multiply → join + aggregation) and
// the substrate for ordinary SQL processing around model inference.
package exec

import (
	"fmt"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/table"
)

// Operator is a pull-based relational operator. The contract is
// Open → Next* → Close; Next returns ok=false at end of stream.
type Operator interface {
	// Schema describes the tuples produced by Next.
	Schema() *table.Schema
	// Open prepares the operator (and its inputs) for iteration.
	Open() error
	// Next produces the next tuple, or ok=false at the end.
	Next() (table.Tuple, bool, error)
	// Close releases resources. It must be safe to call after an error.
	Close() error
}

// ColBatcher is implemented by operators that can also produce decoded rows
// as columnar batches: the feature column of every row lands in the batch's
// one contiguous Feats buffer (see table.ColBatch), which consumers use
// directly as a tensor backing array. The PREDICT operator probes its child
// for this interface at Open and falls back to row-at-a-time Next when the
// child (a filter, an instrumented wrapper) cannot batch columnarly.
type ColBatcher interface {
	Operator
	// NextColBatch appends rows to cb until it is full or the input is
	// exhausted, returning the number appended. Fewer rows than cb's free
	// capacity means end of stream.
	NextColBatch(cb *table.ColBatch) (int, error)
}

// Cancellable is implemented by operators whose loops observe a
// query-cancellation token: scans check per tuple, and the blocking
// operators (joins, aggregates, sorts) check inside the pipeline-breaking
// loops in Open. The engine installs one token across every operator of a
// plan before Open; a nil token means "never cancelled".
type Cancellable interface {
	SetCancel(tok *lifecycle.Token)
}

// SetCancel installs tok on op if it supports cancellation; operators
// without long-running loops of their own are covered by their inputs.
func SetCancel(op Operator, tok *lifecycle.Token) {
	if c, ok := op.(Cancellable); ok {
		c.SetCancel(tok)
	}
}

// Collect drains op into a slice, handling Open/Close. A Close error after
// a clean iteration is returned — an operator whose teardown fails (e.g. a
// spill-file flush) must not report success.
func Collect(op Operator) ([]table.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	var out []table.Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if !ok {
			if cerr := op.Close(); cerr != nil {
				return nil, cerr
			}
			return out, nil
		}
		out = append(out, t)
	}
}

// MemScan produces tuples from an in-memory slice.
type MemScan struct {
	schema *table.Schema
	rows   []table.Tuple
	pos    int
	tok    *lifecycle.Token
}

// NewMemScan returns a scan over rows with the given schema.
func NewMemScan(schema *table.Schema, rows []table.Tuple) *MemScan {
	return &MemScan{schema: schema, rows: rows}
}

// Schema implements Operator.
func (m *MemScan) Schema() *table.Schema { return m.schema }

// Open implements Operator.
func (m *MemScan) Open() error { m.pos = 0; return nil }

// SetCancel implements Cancellable.
func (m *MemScan) SetCancel(tok *lifecycle.Token) { m.tok = tok }

// Next implements Operator.
func (m *MemScan) Next() (table.Tuple, bool, error) {
	if err := m.tok.Err(); err != nil {
		return nil, false, err
	}
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	t := m.rows[m.pos]
	m.pos++
	return t, true, nil
}

// Close implements Operator.
func (m *MemScan) Close() error { return nil }

// HeapScan produces tuples from a heap file, one pinned page at a time.
type HeapScan struct {
	heap *table.Heap
	snap uint64
	scan *table.Scanner
	tok  *lifecycle.Token
}

// NewHeapScan returns a scan over h reading the latest snapshot (every
// non-deleted row).
func NewHeapScan(h *table.Heap) *HeapScan { return &HeapScan{heap: h, snap: table.CSNMax} }

// NewHeapScanAt returns a scan over h pinned to the snapshot csn — the
// lock-free read path: the engine pins the committed CSN at statement start
// and the scan sees exactly the rows committed by then, never a concurrent
// writer's unpublished rows.
func NewHeapScanAt(h *table.Heap, csn uint64) *HeapScan { return &HeapScan{heap: h, snap: csn} }

// Schema implements Operator.
func (s *HeapScan) Schema() *table.Schema { return s.heap.Schema() }

// Open implements Operator.
func (s *HeapScan) Open() error { s.scan = s.heap.ScanAt(s.snap); return nil }

// SetCancel implements Cancellable.
func (s *HeapScan) SetCancel(tok *lifecycle.Token) { s.tok = tok }

// Next implements Operator.
func (s *HeapScan) Next() (table.Tuple, bool, error) {
	if err := s.tok.Err(); err != nil {
		return nil, false, err
	}
	if s.scan == nil {
		return nil, false, fmt.Errorf("exec: HeapScan.Next before Open")
	}
	return s.scan.Next()
}

// NextColBatch implements ColBatcher: one call decodes up to a batch of
// tuples pinning each heap page once, with the feature column swept into
// cb's contiguous buffer. Cancellation is observed per batch (a batch is at
// most cb's capacity, so a cancelled query still stops within one
// micro-batch).
func (s *HeapScan) NextColBatch(cb *table.ColBatch) (int, error) {
	if err := s.tok.Err(); err != nil {
		return 0, err
	}
	if s.scan == nil {
		return 0, fmt.Errorf("exec: HeapScan.NextColBatch before Open")
	}
	return s.scan.NextColumnar(cb)
}

// Close implements Operator.
func (s *HeapScan) Close() error { s.scan = nil; return nil }

// Predicate decides whether a tuple passes a filter.
type Predicate func(table.Tuple) (bool, error)

// Filter passes through tuples satisfying a predicate.
type Filter struct {
	in   Operator
	pred Predicate
}

// NewFilter returns a filter over in.
func NewFilter(in Operator, pred Predicate) *Filter {
	return &Filter{in: in, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *table.Schema { return f.in.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.in.Open() }

// Next implements Operator.
func (f *Filter) Next() (table.Tuple, bool, error) {
	for {
		t, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := f.pred(t)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return t, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.in.Close() }

// Project keeps the named columns, in order.
type Project struct {
	in     Operator
	schema *table.Schema
	idx    []int
}

// NewProject returns a projection of in onto cols.
func NewProject(in Operator, cols ...string) (*Project, error) {
	schema, err := in.Schema().Project(cols...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = in.Schema().ColIndex(c)
	}
	return &Project{in: in, schema: schema, idx: idx}, nil
}

// Schema implements Operator.
func (p *Project) Schema() *table.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.in.Open() }

// Next implements Operator.
func (p *Project) Next() (table.Tuple, bool, error) {
	t, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(table.Tuple, len(p.idx))
	for i, j := range p.idx {
		out[i] = t[j]
	}
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.in.Close() }

// MapFunc transforms a tuple; it is how fine-grained UDFs (e.g. a per-block
// tensor kernel) plug into the relational pipeline.
type MapFunc func(table.Tuple) (table.Tuple, error)

// Map applies a tuple transformation with an explicit output schema.
type Map struct {
	in     Operator
	schema *table.Schema
	fn     MapFunc
}

// NewMap returns a map operator producing tuples of outSchema.
func NewMap(in Operator, outSchema *table.Schema, fn MapFunc) *Map {
	return &Map{in: in, schema: outSchema, fn: fn}
}

// Schema implements Operator.
func (m *Map) Schema() *table.Schema { return m.schema }

// Open implements Operator.
func (m *Map) Open() error { return m.in.Open() }

// Next implements Operator.
func (m *Map) Next() (table.Tuple, bool, error) {
	t, ok, err := m.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out, err := m.fn(t)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// Close implements Operator.
func (m *Map) Close() error { return m.in.Close() }

// Limit passes through at most n tuples.
type Limit struct {
	in   Operator
	n    int
	seen int
}

// NewLimit returns a limit of n rows over in.
func NewLimit(in Operator, n int) *Limit { return &Limit{in: in, n: n} }

// Schema implements Operator.
func (l *Limit) Schema() *table.Schema { return l.in.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.in.Open() }

// Next implements Operator.
func (l *Limit) Next() (table.Tuple, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	t, ok, err := l.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.in.Close() }
