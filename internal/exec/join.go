package exec

import (
	"fmt"
	"sort"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/table"
)

// HashJoin is an equi-join: it builds a hash table over the right input's
// key column and probes with the left input. Output tuples are left columns
// followed by right columns (disambiguated via Schema.Concat).
type HashJoin struct {
	left, right       Operator
	leftCol, rightCol string
	schema            *table.Schema
	leftIdx, rightIdx int
	built             map[int64][]table.Tuple
	cur               table.Tuple // current probe tuple
	matches           []table.Tuple
	matchPos          int
	tok               *lifecycle.Token
}

// NewHashJoin joins left and right on equality of Int64 columns
// leftCol = rightCol.
func NewHashJoin(left, right Operator, leftCol, rightCol string) (*HashJoin, error) {
	li := left.Schema().ColIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("exec: join: unknown left column %q", leftCol)
	}
	ri := right.Schema().ColIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("exec: join: unknown right column %q", rightCol)
	}
	if left.Schema().Cols[li].Type != table.Int64 || right.Schema().Cols[ri].Type != table.Int64 {
		return nil, fmt.Errorf("exec: hash join requires INT key columns")
	}
	return &HashJoin{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol,
		schema:  left.Schema().Concat(right.Schema()),
		leftIdx: li, rightIdx: ri,
	}, nil
}

// Schema implements Operator.
func (j *HashJoin) Schema() *table.Schema { return j.schema }

// SetCancel implements Cancellable: the eager build loop in Open and the
// probe loop in Next observe tok.
func (j *HashJoin) SetCancel(tok *lifecycle.Token) { j.tok = tok }

// Open implements Operator: it consumes the right (build) side eagerly.
func (j *HashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.built = make(map[int64][]table.Tuple)
	for {
		if err := j.tok.Err(); err != nil {
			return err
		}
		t, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := t[j.rightIdx].Int
		j.built[k] = append(j.built[k], t)
	}
	j.cur = nil
	j.matches = nil
	j.matchPos = 0
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() (table.Tuple, bool, error) {
	for {
		if err := j.tok.Err(); err != nil {
			return nil, false, err
		}
		if j.matchPos < len(j.matches) {
			r := j.matches[j.matchPos]
			j.matchPos++
			return concatTuple(j.cur, r), true, nil
		}
		t, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = t
		j.matches = j.built[t[j.leftIdx].Int]
		j.matchPos = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.built = nil
	err := j.left.Close()
	if err2 := j.right.Close(); err == nil {
		err = err2
	}
	return err
}

func concatTuple(a, b table.Tuple) table.Tuple {
	out := make(table.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// BandJoin is the similarity join of Sec. 7.2.1: it matches left and right
// tuples whose Float64 join columns differ by at most eps, using sorted
// inputs and a sliding band — O((n+m)·log + output) instead of the
// nested-loop O(n·m).
type BandJoin struct {
	left, right       Operator
	leftCol, rightCol string
	eps               float64
	schema            *table.Schema
	leftIdx, rightIdx int

	leftRows  []table.Tuple // sorted by join key
	rightRows []table.Tuple // sorted by join key
	li        int           // current left row
	lo        int           // left edge of the right-side band
	bandPos   int           // cursor within the band for the current left row
	tok       *lifecycle.Token
}

// NewBandJoin joins left and right where |leftCol - rightCol| <= eps.
func NewBandJoin(left, right Operator, leftCol, rightCol string, eps float64) (*BandJoin, error) {
	li := left.Schema().ColIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("exec: band join: unknown left column %q", leftCol)
	}
	ri := right.Schema().ColIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("exec: band join: unknown right column %q", rightCol)
	}
	if left.Schema().Cols[li].Type != table.Float64 || right.Schema().Cols[ri].Type != table.Float64 {
		return nil, fmt.Errorf("exec: band join requires DOUBLE key columns")
	}
	if eps < 0 {
		return nil, fmt.Errorf("exec: band join epsilon must be non-negative, got %g", eps)
	}
	return &BandJoin{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol, eps: eps,
		schema:  left.Schema().Concat(right.Schema()),
		leftIdx: li, rightIdx: ri,
	}, nil
}

// Schema implements Operator.
func (j *BandJoin) Schema() *table.Schema { return j.schema }

// SetCancel implements Cancellable; the token also reaches both inputs,
// which Open drains wholesale.
func (j *BandJoin) SetCancel(tok *lifecycle.Token) {
	j.tok = tok
	SetCancel(j.left, tok)
	SetCancel(j.right, tok)
}

// Open implements Operator: it materialises and sorts both inputs.
func (j *BandJoin) Open() error {
	var err error
	j.leftRows, err = Collect(j.left)
	if err != nil {
		return err
	}
	j.rightRows, err = Collect(j.right)
	if err != nil {
		return err
	}
	li, ri := j.leftIdx, j.rightIdx
	sort.SliceStable(j.leftRows, func(a, b int) bool {
		return j.leftRows[a][li].Float < j.leftRows[b][li].Float
	})
	sort.SliceStable(j.rightRows, func(a, b int) bool {
		return j.rightRows[a][ri].Float < j.rightRows[b][ri].Float
	})
	j.li, j.lo, j.bandPos = 0, 0, 0
	if len(j.leftRows) > 0 {
		j.advanceBand()
	}
	return nil
}

// advanceBand moves lo to the first right row within eps of the current
// left row and positions bandPos there.
func (j *BandJoin) advanceBand() {
	v := j.leftRows[j.li][j.leftIdx].Float
	for j.lo < len(j.rightRows) && j.rightRows[j.lo][j.rightIdx].Float < v-j.eps {
		j.lo++
	}
	j.bandPos = j.lo
}

// Next implements Operator.
func (j *BandJoin) Next() (table.Tuple, bool, error) {
	for j.li < len(j.leftRows) {
		if err := j.tok.Err(); err != nil {
			return nil, false, err
		}
		v := j.leftRows[j.li][j.leftIdx].Float
		if j.bandPos < len(j.rightRows) && j.rightRows[j.bandPos][j.rightIdx].Float <= v+j.eps {
			r := j.rightRows[j.bandPos]
			j.bandPos++
			return concatTuple(j.leftRows[j.li], r), true, nil
		}
		j.li++
		if j.li < len(j.leftRows) {
			j.advanceBand()
		}
	}
	return nil, false, nil
}

// Close implements Operator.
func (j *BandJoin) Close() error {
	j.leftRows, j.rightRows = nil, nil
	return nil
}
