package exec

import (
	"strings"
	"testing"
	"time"

	"tensorbase/internal/table"
)

// slowCloseOp does its real work in Close — the shape of an operator whose
// teardown (spill cleanup, unpin storm) used to be invisible in profiles.
type slowCloseOp struct {
	in    Operator
	delay time.Duration
}

func (o *slowCloseOp) Schema() *table.Schema { return o.in.Schema() }
func (o *slowCloseOp) Open() error           { return o.in.Open() }
func (o *slowCloseOp) Next() (table.Tuple, bool, error) {
	return o.in.Next()
}
func (o *slowCloseOp) Close() error {
	time.Sleep(o.delay)
	return o.in.Close()
}

// TestInstrumentedTimesClose is the regression test for the profiling bug
// where Instrumented.Close was never measured: Close-side work must show up
// in both Elapsed and CloseElapsed.
func TestInstrumentedTimesClose(t *testing.T) {
	const delay = 5 * time.Millisecond
	s := intsSchema()
	rows := []table.Tuple{{table.IntVal(1), table.FloatVal(1)}}
	ins := Instrument("slow", &slowCloseOp{in: NewMemScan(s, rows), delay: delay})
	if _, err := Collect(ins); err != nil {
		t.Fatal(err)
	}
	if ins.CloseElapsed() < delay {
		t.Fatalf("CloseElapsed = %v, want ≥ %v (Close not timed)", ins.CloseElapsed(), delay)
	}
	if ins.Elapsed() < ins.CloseElapsed() {
		t.Fatalf("Elapsed %v excludes Close time %v", ins.Elapsed(), ins.CloseElapsed())
	}
	st := ins.Stat()
	if st.CloseElapsed != ins.CloseElapsed() || st.Elapsed != ins.Elapsed() {
		t.Fatalf("StageStat timing mismatch: %+v", st)
	}
}

// TestInstrumentedDoubleCloseCountsOnce guards the idempotence of the
// timing window: a second Close must not inflate the stats.
func TestInstrumentedDoubleCloseCountsOnce(t *testing.T) {
	s := intsSchema()
	ins := Instrument("m", &slowCloseOp{in: NewMemScan(s, nil), delay: time.Millisecond})
	if _, err := Collect(ins); err != nil {
		t.Fatal(err)
	}
	first := ins.CloseElapsed()
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}
	if ins.CloseElapsed() != first {
		t.Fatalf("second Close changed CloseElapsed: %v -> %v", first, ins.CloseElapsed())
	}
}

// TestProfiledExternalSortIncludesCloseAndSpill profiles an external sort
// end-to-end: the span must carry non-zero Close time, spill volume, and
// pool fetch deltas.
func TestProfiledExternalSortIncludesCloseAndSpill(t *testing.T) {
	pool := sortPool(t, 8)
	s := intsSchema()
	var in []table.Tuple
	for i := 0; i < 2000; i++ {
		in = append(in, table.Tuple{table.IntVal(int64(2000 - i)), table.FloatVal(float64(i))})
	}
	ext, err := NewExternalSort(NewMemScan(s, in), "id", false, pool)
	if err != nil {
		t.Fatal(err)
	}
	ext.RunRows = 128 // force multiple spill runs
	ins := Instrument("sort", ext).WithPool(pool)
	rows, err := Collect(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(in) {
		t.Fatalf("rows = %d", len(rows))
	}
	stats := Profile([]*Instrumented{ins})
	st := stats[0]
	if st.CloseElapsed <= 0 {
		t.Fatalf("external sort Close time = %v, must be non-zero and included", st.CloseElapsed)
	}
	if st.Elapsed < st.CloseElapsed {
		t.Fatalf("Elapsed %v excludes Close time %v", st.Elapsed, st.CloseElapsed)
	}
	if st.SpillRuns < 2 || st.SpillBytes <= 0 {
		t.Fatalf("spill stats not reported: runs=%d bytes=%d", st.SpillRuns, st.SpillBytes)
	}
	if st.PagesFetched == 0 {
		t.Fatalf("pool fetches not attributed: %+v", st)
	}
	out := FormatProfile(stats)
	for _, want := range []string{"close", "spill=", "pages="} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFormatProfileTree(t *testing.T) {
	stats := []StageStat{
		{Name: "limit", Rows: 10, Elapsed: 3 * time.Millisecond, Depth: 0},
		{Name: "sort", Rows: 10, Elapsed: 2 * time.Millisecond, Depth: 1, SpillBytes: 65536, SpillRuns: 2},
		{Name: "scan", Rows: 100, Elapsed: time.Millisecond, Depth: 2},
	}
	out := FormatProfile(stats)
	if !strings.Contains(out, "└─sort") || !strings.Contains(out, "  └─scan") {
		t.Fatalf("tree rendering missing nesting:\n%s", out)
	}
	sum := SummarizeProfile(stats)
	if !strings.Contains(sum, "limit 10r") || !strings.Contains(sum, "->") {
		t.Fatalf("summary = %q", sum)
	}
	if SummarizeProfile(nil) != "" {
		t.Fatal("empty profile must summarize to empty string")
	}
}
