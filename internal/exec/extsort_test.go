package exec

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

func sortPool(t *testing.T, frames int) *storage.BufferPool {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "sort.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return storage.NewBufferPool(d, frames)
}

func TestExternalSortMatchesInMemorySort(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := intsSchema()
	var in []table.Tuple
	for i := 0; i < 5000; i++ {
		in = append(in, table.Tuple{table.IntVal(int64(rng.Intn(1000))), table.FloatVal(float64(i))})
	}
	mem, err := NewSort(NewMemScan(s, in), "id", false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(mem)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewExternalSort(NewMemScan(s, in), "id", false, sortPool(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	ext.RunRows = 128 // force ~40 spill runs
	got, err := Collect(ext)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0].Int != want[i][0].Int {
			t.Fatalf("row %d: key %d, want %d", i, got[i][0].Int, want[i][0].Int)
		}
	}
}

func TestExternalSortDescAndTypes(t *testing.T) {
	pool := sortPool(t, 8)
	s := table.MustSchema(table.Column{Name: "name", Type: table.Text})
	in := []table.Tuple{{table.TextVal("b")}, {table.TextVal("a")}, {table.TextVal("c")}}
	ext, err := NewExternalSort(NewMemScan(s, in), "name", true, pool)
	if err != nil {
		t.Fatal(err)
	}
	ext.RunRows = 1
	got, err := Collect(ext)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Str != "c" || got[2][0].Str != "a" {
		t.Fatalf("desc text sort = %v", got)
	}
}

func TestExternalSortValidation(t *testing.T) {
	pool := sortPool(t, 4)
	s := table.MustSchema(table.Column{Name: "v", Type: table.FloatVec})
	if _, err := NewExternalSort(NewMemScan(s, nil), "v", false, pool); err == nil {
		t.Fatal("vector sort key must be rejected")
	}
	if _, err := NewExternalSort(NewMemScan(intsSchema(), nil), "ghost", false, pool); err == nil {
		t.Fatal("unknown column must be rejected")
	}
	ext, err := NewExternalSort(NewMemScan(intsSchema(), nil), "id", false, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ext.Next(); err == nil {
		t.Fatal("Next before Open must error")
	}
	ext.RunRows = 0
	if err := ext.Open(); err == nil {
		t.Fatal("run size 0 must error")
	}
}

func TestExternalSortEmptyInput(t *testing.T) {
	ext, err := NewExternalSort(NewMemScan(intsSchema(), nil), "id", false, sortPool(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(ext)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("rows = %d", len(got))
	}
}

// Property: external sort is stable-equivalent to the in-memory sort for
// random inputs, run sizes, and directions.
func TestExternalSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := intsSchema()
		n := rng.Intn(400)
		in := make([]table.Tuple, n)
		for i := range in {
			in[i] = table.Tuple{table.IntVal(int64(rng.Intn(20))), table.FloatVal(float64(i))}
		}
		desc := rng.Intn(2) == 0
		mem, err := NewSort(NewMemScan(s, in), "id", desc)
		if err != nil {
			return false
		}
		want, err := Collect(mem)
		if err != nil {
			return false
		}
		pool := quickSortPool()
		ext, err := NewExternalSort(NewMemScan(s, in), "id", desc, pool)
		if err != nil {
			return false
		}
		ext.RunRows = 1 + rng.Intn(50)
		got, err := Collect(ext)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i][0].Int != want[i][0].Int {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// quickSortPool builds a pool for property iterations without a *testing.T.
func quickSortPool() *storage.BufferPool {
	f, err := os.CreateTemp("", "extsort-*.db")
	if err != nil {
		panic(err)
	}
	path := f.Name()
	f.Close()
	os.Remove(path) // recreate as a fresh page file
	d, err := storage.OpenDisk(path)
	if err != nil {
		panic(err)
	}
	return storage.NewBufferPool(d, 64)
}
