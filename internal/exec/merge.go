package exec

import (
	"fmt"
	"sort"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/table"
)

// Scatter-gather merge operators: a shard coordinator pushes a subplan to
// every shard, wraps each shard's partial result in a MemScan, and merges
// the partials through one of these — so a distributed plan stays an
// ordinary operator tree above the merge point.

// sameSchemas validates that every input produces an identical schema.
func sameSchemas(ins []Operator) (*table.Schema, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("exec: merge needs at least one input")
	}
	s := ins[0].Schema()
	for i, in := range ins[1:] {
		o := in.Schema()
		if len(o.Cols) != len(s.Cols) {
			return nil, fmt.Errorf("exec: merge input %d schema mismatch", i+1)
		}
		for j := range s.Cols {
			if o.Cols[j] != s.Cols[j] {
				return nil, fmt.Errorf("exec: merge input %d column %d mismatch: %+v vs %+v",
					i+1, j, o.Cols[j], s.Cols[j])
			}
		}
	}
	return s, nil
}

// Concat emits each input's tuples in input order — the merge for unordered
// scatter reads, where shard order is the deterministic tie-break.
type Concat struct {
	ins    []Operator
	schema *table.Schema
	cur    int
	tok    *lifecycle.Token
}

// NewConcat returns a concatenation of ins (all schemas must match).
func NewConcat(ins ...Operator) (*Concat, error) {
	s, err := sameSchemas(ins)
	if err != nil {
		return nil, err
	}
	return &Concat{ins: ins, schema: s}, nil
}

// Schema implements Operator.
func (c *Concat) Schema() *table.Schema { return c.schema }

// SetCancel implements Cancellable.
func (c *Concat) SetCancel(tok *lifecycle.Token) { c.tok = tok }

// Open implements Operator.
func (c *Concat) Open() error {
	for _, in := range c.ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	c.cur = 0
	return nil
}

// Next implements Operator.
func (c *Concat) Next() (table.Tuple, bool, error) {
	for c.cur < len(c.ins) {
		if err := c.tok.Err(); err != nil {
			return nil, false, err
		}
		t, ok, err := c.ins[c.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		c.cur++
	}
	return nil, false, nil
}

// Close implements Operator.
func (c *Concat) Close() error {
	var first error
	for _, in := range c.ins {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OrderedMerge k-way-merges inputs that are each already sorted by col,
// preserving that order globally. Ties break toward the lower input index,
// so with a deterministic shard order the merged stream is deterministic —
// and matches what a single node's stable sort would emit when the shards
// partition that node's rows in scan order.
type OrderedMerge struct {
	ins    []Operator
	schema *table.Schema
	col    string
	desc   bool
	idx    int
	typ    table.ColType
	heads  []table.Tuple
	live   []bool
	tok    *lifecycle.Token
}

// NewOrderedMerge returns an ordered merge of ins by col.
func NewOrderedMerge(ins []Operator, col string, desc bool) (*OrderedMerge, error) {
	s, err := sameSchemas(ins)
	if err != nil {
		return nil, err
	}
	idx := s.ColIndex(col)
	if idx < 0 {
		return nil, fmt.Errorf("exec: merge: unknown column %q", col)
	}
	return &OrderedMerge{ins: ins, schema: s, col: col, desc: desc, idx: idx, typ: s.Cols[idx].Type}, nil
}

// Schema implements Operator.
func (m *OrderedMerge) Schema() *table.Schema { return m.schema }

// SetCancel implements Cancellable.
func (m *OrderedMerge) SetCancel(tok *lifecycle.Token) { m.tok = tok }

// Open implements Operator.
func (m *OrderedMerge) Open() error {
	m.heads = make([]table.Tuple, len(m.ins))
	m.live = make([]bool, len(m.ins))
	for i, in := range m.ins {
		if err := in.Open(); err != nil {
			return err
		}
		if err := m.advance(i); err != nil {
			return err
		}
	}
	return nil
}

func (m *OrderedMerge) advance(i int) error {
	t, ok, err := m.ins[i].Next()
	if err != nil {
		return err
	}
	m.heads[i], m.live[i] = t, ok
	return nil
}

func (m *OrderedMerge) less(a, b table.Tuple) bool {
	switch m.typ {
	case table.Int64:
		return a[m.idx].Int < b[m.idx].Int
	case table.Float64:
		return a[m.idx].Float < b[m.idx].Float
	default:
		return a[m.idx].Str < b[m.idx].Str
	}
}

// Next implements Operator.
func (m *OrderedMerge) Next() (table.Tuple, bool, error) {
	if err := m.tok.Err(); err != nil {
		return nil, false, err
	}
	best := -1
	for i := range m.ins {
		if !m.live[i] {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		if m.desc {
			if m.less(m.heads[best], m.heads[i]) {
				best = i
			}
		} else if m.less(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	t := m.heads[best]
	if err := m.advance(best); err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// Close implements Operator.
func (m *OrderedMerge) Close() error {
	var first error
	for _, in := range m.ins {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FinalAgg describes how one output aggregate combines across partial
// per-shard aggregate rows.
type FinalAgg struct {
	Kind AggKind // Count, Sum, Avg, Min, Max
	// Arg indexes the partial value column in the input schema (the
	// partial count for Count, the partial sum for Sum/Avg, the partial
	// extremum for Min/Max).
	Arg int
	// Count indexes the partial count column; used by Avg only
	// (final avg = Σ partial sums / Σ partial counts).
	Count int
	As    string
}

// MergeAggregate combines partial aggregates from shards into finals:
// counts and sums add, extrema take min/max, averages divide summed sums by
// summed counts. The first groupN input columns are the group key; output
// groups are sorted by the same canonical key encoding HashAggregate uses,
// so a scatter-merged aggregate is bit-identical to the single-node one.
type MergeAggregate struct {
	ins    []Operator
	groupN int
	finals []FinalAgg
	schema *table.Schema

	results []table.Tuple
	pos     int
	tok     *lifecycle.Token
}

type mergeState struct {
	key    table.Tuple
	counts []int64
	sums   []float64
	mins   []float64
	maxs   []float64
	inited bool
}

// NewMergeAggregate returns a merge of partial aggregates.
func NewMergeAggregate(ins []Operator, groupN int, finals []FinalAgg) (*MergeAggregate, error) {
	in, err := sameSchemas(ins)
	if err != nil {
		return nil, err
	}
	if groupN < 0 || groupN > len(in.Cols) {
		return nil, fmt.Errorf("exec: merge aggregate: bad group width %d", groupN)
	}
	cols := append([]table.Column(nil), in.Cols[:groupN]...)
	for _, f := range finals {
		switch f.Kind {
		case Count:
			cols = append(cols, table.Column{Name: f.As, Type: table.Int64})
		case Sum, Avg, Min, Max:
			cols = append(cols, table.Column{Name: f.As, Type: table.Float64})
		default:
			return nil, fmt.Errorf("exec: merge aggregate: unsupported kind %d", f.Kind)
		}
		if f.Arg < groupN || f.Arg >= len(in.Cols) {
			return nil, fmt.Errorf("exec: merge aggregate %q: bad arg index %d", f.As, f.Arg)
		}
		if f.Kind == Avg && (f.Count < groupN || f.Count >= len(in.Cols)) {
			return nil, fmt.Errorf("exec: merge aggregate %q: bad count index %d", f.As, f.Count)
		}
	}
	schema, err := table.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &MergeAggregate{ins: ins, groupN: groupN, finals: finals, schema: schema}, nil
}

// Schema implements Operator.
func (m *MergeAggregate) Schema() *table.Schema { return m.schema }

// SetCancel implements Cancellable.
func (m *MergeAggregate) SetCancel(tok *lifecycle.Token) { m.tok = tok }

// Open implements Operator: it drains every input and merges groups.
func (m *MergeAggregate) Open() error {
	groupIdx := make([]int, m.groupN)
	for i := range groupIdx {
		groupIdx[i] = i
	}
	groups := make(map[string]*mergeState)
	var order []string
	for _, in := range m.ins {
		if err := in.Open(); err != nil {
			return err
		}
		for {
			if err := m.tok.Err(); err != nil {
				return err
			}
			t, ok, err := in.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			key := groupKeyOf(t, groupIdx)
			st, ok := groups[key]
			if !ok {
				st = &mergeState{
					key:    append(table.Tuple(nil), t[:m.groupN]...),
					counts: make([]int64, len(m.finals)),
					sums:   make([]float64, len(m.finals)),
					mins:   make([]float64, len(m.finals)),
					maxs:   make([]float64, len(m.finals)),
				}
				groups[key] = st
				order = append(order, key)
			}
			for i, f := range m.finals {
				switch f.Kind {
				case Count:
					st.counts[i] += t[f.Arg].Int
				case Sum:
					st.sums[i] += t[f.Arg].Float
				case Avg:
					st.sums[i] += t[f.Arg].Float
					st.counts[i] += t[f.Count].Int
				case Min:
					if v := t[f.Arg].Float; !st.inited || v < st.mins[i] {
						st.mins[i] = v
					}
				case Max:
					if v := t[f.Arg].Float; !st.inited || v > st.maxs[i] {
						st.maxs[i] = v
					}
				}
			}
			st.inited = true
		}
	}
	sort.Strings(order)
	m.results = m.results[:0]
	for _, key := range order {
		st := groups[key]
		out := make(table.Tuple, 0, m.groupN+len(m.finals))
		out = append(out, st.key...)
		for i, f := range m.finals {
			switch f.Kind {
			case Count:
				out = append(out, table.IntVal(st.counts[i]))
			case Sum:
				out = append(out, table.FloatVal(st.sums[i]))
			case Avg:
				out = append(out, table.FloatVal(st.sums[i]/float64(st.counts[i])))
			case Min:
				out = append(out, table.FloatVal(st.mins[i]))
			case Max:
				out = append(out, table.FloatVal(st.maxs[i]))
			}
		}
		m.results = append(m.results, out)
	}
	m.pos = 0
	return nil
}

// Next implements Operator.
func (m *MergeAggregate) Next() (table.Tuple, bool, error) {
	if m.pos >= len(m.results) {
		return nil, false, nil
	}
	t := m.results[m.pos]
	m.pos++
	return t, true, nil
}

// Close implements Operator.
func (m *MergeAggregate) Close() error {
	m.results = nil
	var first error
	for _, in := range m.ins {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
