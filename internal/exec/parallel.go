package exec

import (
	"sort"
	"sync"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/parallel"
	"tensorbase/internal/table"
)

// PartitionedAgg is the intra-operator-parallel form of HashAggregate: the
// input stream is hash-partitioned by its group key, one worker per
// partition runs an independent HashAggregate over its share, and the
// per-partition results are merged and sorted into the same deterministic
// order the serial operator produces. Because a group's tuples all land in
// one partition, and channels preserve the producer's order, every group is
// folded in exactly the input order — the parallel result is bit-identical
// to the serial one.
//
// Worker goroutines beyond the caller's are drawn from the shared
// parallel.Budget unless an explicit worker count forces the fan-out, so
// the operator coexists with engine- and kernel-level parallelism without
// oversubscribing cores (Sec. 3).
type PartitionedAgg struct {
	in       Operator
	groupBy  []string
	specs    []AggSpec
	workers  int
	schema   *table.Schema
	groupIdx []int

	results []table.Tuple
	pos     int
	tok     *lifecycle.Token
}

// NewPartitionedAggregate returns an aggregation of in grouped by groupBy,
// executed over `workers` hash partitions. workers <= 0 sizes the fan-out
// from the shared core budget at Open time; workers == 1 degenerates to the
// serial HashAggregate.
func NewPartitionedAggregate(in Operator, groupBy []string, specs []AggSpec, workers int) (*PartitionedAgg, error) {
	// Validate columns and derive the output schema via the serial
	// operator's constructor (the prototype is never opened).
	proto, err := NewHashAggregate(in, groupBy, specs)
	if err != nil {
		return nil, err
	}
	return &PartitionedAgg{
		in: in, groupBy: groupBy, specs: specs, workers: workers,
		schema: proto.Schema(), groupIdx: proto.groupIdx,
	}, nil
}

// Schema implements Operator.
func (p *PartitionedAgg) Schema() *table.Schema { return p.schema }

// SetCancel implements Cancellable: the feed loop and the per-partition
// aggregates observe tok, so a cancelled query stops routing tuples within
// one tuple and the partition workers drain out.
func (p *PartitionedAgg) SetCancel(tok *lifecycle.Token) { p.tok = tok }

// Open implements Operator: it consumes the whole input, routing tuples to
// partition workers, and materialises the merged result.
func (p *PartitionedAgg) Open() error {
	shared := parallel.Default()
	w := p.workers
	extras := 0
	if w <= 0 {
		extras = shared.TryAcquireUpTo(shared.Total() - 1)
		w = 1 + extras
	}
	err := p.open(w)
	if extras > 0 {
		shared.Release(extras)
	}
	return err
}

func (p *PartitionedAgg) open(w int) error {
	if w <= 1 {
		agg, err := NewHashAggregate(p.in, p.groupBy, p.specs)
		if err != nil {
			return err
		}
		agg.SetCancel(p.tok)
		if err := agg.Open(); err != nil {
			return err
		}
		p.results = agg.results
		p.pos = 0
		return nil
	}
	if err := p.in.Open(); err != nil {
		return err
	}
	chans := make([]chan table.Tuple, w)
	aggs := make([]*HashAggregate, w)
	errs := make([]error, w)
	for i := range chans {
		chans[i] = make(chan table.Tuple, 64)
		agg, err := NewHashAggregate(&chanScan{schema: p.in.Schema(), ch: chans[i]}, p.groupBy, p.specs)
		if err != nil {
			return err
		}
		aggs[i] = agg
		// The sub-aggregate keeps draining its channel on cancellation (its
		// chanScan input returns end-of-stream only when the producer closes
		// the channel), so the producer never blocks on a dead worker; no
		// token here, the producer's check stops the stream.
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			if err := aggs[i].Open(); err != nil {
				errs[i] = err
				for range chans[i] { // keep the producer from blocking
				}
			}
		}(i)
	}
	var produceErr error
	for {
		if err := p.tok.Err(); err != nil {
			produceErr = err
			break
		}
		t, ok, err := p.in.Next()
		if err != nil {
			produceErr = err
			break
		}
		if !ok {
			break
		}
		chans[fnvHash(groupKeyOf(t, p.groupIdx))%uint64(w)] <- t
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if produceErr != nil {
		return produceErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Merge and restore the serial operator's deterministic output order.
	// Group columns lead every result tuple, so the sort key is the group
	// key of the first len(groupBy) values.
	n := 0
	for _, agg := range aggs {
		n += len(agg.results)
	}
	p.results = make([]table.Tuple, 0, n)
	outIdx := make([]int, len(p.groupBy))
	for i := range outIdx {
		outIdx[i] = i
	}
	for _, agg := range aggs {
		p.results = append(p.results, agg.results...)
	}
	sort.Slice(p.results, func(i, j int) bool {
		return groupKeyOf(p.results[i], outIdx) < groupKeyOf(p.results[j], outIdx)
	})
	p.pos = 0
	return nil
}

// Next implements Operator.
func (p *PartitionedAgg) Next() (table.Tuple, bool, error) {
	if p.pos >= len(p.results) {
		return nil, false, nil
	}
	t := p.results[p.pos]
	p.pos++
	return t, true, nil
}

// Close implements Operator.
func (p *PartitionedAgg) Close() error {
	p.results = nil
	return p.in.Close()
}

// fnvHash is FNV-1a over s, allocation-free (hash/fnv requires a []byte).
func fnvHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// chanScan adapts a channel of tuples to the Operator interface; it is the
// per-partition input of PartitionedAgg. The producer closes the channel to
// end the stream.
type chanScan struct {
	schema *table.Schema
	ch     chan table.Tuple
}

// Schema implements Operator.
func (c *chanScan) Schema() *table.Schema { return c.schema }

// Open implements Operator.
func (c *chanScan) Open() error { return nil }

// Next implements Operator.
func (c *chanScan) Next() (table.Tuple, bool, error) {
	t, ok := <-c.ch
	if !ok {
		return nil, false, nil
	}
	return t, true, nil
}

// Close implements Operator.
func (c *chanScan) Close() error { return nil }

var (
	_ Operator = (*PartitionedAgg)(nil)
	_ Operator = (*chanScan)(nil)
)
