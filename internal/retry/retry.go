// Package retry is the backoff helper shared by the replication stream and
// the server's replica router: capped exponential backoff with full jitter,
// aware of the engine's lifecycle cancellation tokens so a retry loop dies
// the moment its statement (or its process) is cancelled.
//
// Full jitter — a uniform draw over [0, cappedExponential) rather than the
// capped value itself — is what keeps a fleet of clients retrying a shared
// resource from re-colliding in lockstep; see the AWS architecture blog's
// "Exponential Backoff And Jitter". The cap bounds the worst-case wait so a
// long outage degrades to steady polling instead of unbounded sleep.
package retry

import (
	"errors"
	"math/rand"
	"time"

	"tensorbase/internal/lifecycle"
)

// ErrExhausted is returned by Do when every attempt failed; it wraps the
// last attempt's error.
var ErrExhausted = errors.New("retry: attempts exhausted")

// Policy describes one backoff schedule. The zero value is usable and means
// "3 attempts, 10ms base, 1s cap".
type Policy struct {
	// Base is the pre-jitter backoff after the first failure; each further
	// failure doubles it (default 10ms).
	Base time.Duration
	// Cap bounds the pre-jitter backoff (default 1s).
	Cap time.Duration
	// Attempts is the total number of tries, first one included
	// (default 3; 1 means no retries).
	Attempts int
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = time.Second
	}
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	return p
}

// Backoff returns the jittered sleep before attempt n+1, where n counts
// failures so far (n=1 after the first failure). The draw is uniform over
// [0, min(Cap, Base·2^(n-1))) — full jitter — so concurrent retriers spread
// out instead of thundering together. n below 1 is treated as 1.
func (p Policy) Backoff(n int) time.Duration {
	p = p.withDefaults()
	if n < 1 {
		n = 1
	}
	d := p.Base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.Cap || d < 0 { // overflow guard
			d = p.Cap
			break
		}
	}
	if d > p.Cap {
		d = p.Cap
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(d)))
}

// Sleep waits for d or until tok is cancelled, whichever comes first, and
// reports the cancellation error if any. A nil token never cancels.
func Sleep(tok *lifecycle.Token, d time.Duration) error {
	if d <= 0 {
		return tok.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return tok.Err()
	case <-tok.Done():
		return tok.Cause()
	}
}

// Do runs fn up to p.Attempts times, sleeping a jittered backoff between
// failures. It returns nil on the first success; the token's error if the
// loop was cancelled (mid-sleep or between attempts); otherwise ErrExhausted
// wrapping the last failure. fn itself is responsible for honouring tok
// during long calls.
func Do(tok *lifecycle.Token, p Policy, fn func() error) error {
	p = p.withDefaults()
	var last error
	for n := 1; ; n++ {
		if err := tok.Err(); err != nil {
			return err
		}
		if last = fn(); last == nil {
			return nil
		}
		if n >= p.Attempts {
			return errors.Join(ErrExhausted, last)
		}
		if err := Sleep(tok, p.Backoff(n)); err != nil {
			return err
		}
	}
}
