package retry

import (
	"context"
	"errors"
	"testing"
	"time"

	"tensorbase/internal/lifecycle"
)

func TestBackoffCapAndJitterBounds(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Attempts: 10}
	// Pre-jitter envelope doubles then pins at the cap; every draw must fall
	// strictly under it (full jitter draws from [0, envelope)).
	envelopes := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for n, env := range envelopes {
		for i := 0; i < 200; i++ {
			d := p.Backoff(n + 1)
			if d < 0 || d >= env {
				t.Fatalf("Backoff(%d) = %v, want in [0, %v)", n+1, d, env)
			}
		}
	}
}

func TestBackoffJitterSpreads(t *testing.T) {
	p := Policy{Base: time.Second, Cap: time.Second, Attempts: 3}
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		seen[p.Backoff(1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 jittered draws produced %d distinct values; jitter is not jittering", len(seen))
	}
}

func TestBackoffOverflowPinsAtCap(t *testing.T) {
	p := Policy{Base: time.Hour, Cap: 2 * time.Hour, Attempts: 100}
	for _, n := range []int{1, 40, 64, 99} {
		if d := p.Backoff(n); d < 0 || d >= 2*time.Hour {
			t.Fatalf("Backoff(%d) = %v escaped the cap", n, d)
		}
	}
}

func TestDoSucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Do(nil, Policy{Base: time.Microsecond, Cap: time.Millisecond, Attempts: 5}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhausts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Do(nil, Policy{Base: time.Microsecond, Cap: time.Millisecond, Attempts: 4}, func() error {
		calls++
		return boom
	})
	if calls != 4 {
		t.Fatalf("Do made %d attempts, want 4", calls)
	}
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, boom) {
		t.Fatalf("Do error %v should wrap both ErrExhausted and the last failure", err)
	}
}

func TestDoCancelledMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Do(tok, Policy{Base: 10 * time.Second, Cap: 10 * time.Second, Attempts: 3}, func() error {
		return errors.New("always")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; the backoff sleep ignored the token", elapsed)
	}
}

func TestDoPreCancelledNeverRuns(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	calls := 0
	err := Do(tok, Policy{}, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("Do = %v with %d calls, want context.Canceled with 0", err, calls)
	}
}

func TestSleepNilTokenAndZero(t *testing.T) {
	if err := Sleep(nil, 0); err != nil {
		t.Fatalf("Sleep(nil, 0) = %v", err)
	}
	if err := Sleep(nil, time.Microsecond); err != nil {
		t.Fatalf("Sleep(nil, 1µs) = %v", err)
	}
}
