package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"tensorbase/internal/engine"
	"tensorbase/internal/fault"
	"tensorbase/internal/repl"
)

// The 3-node cluster smoke: one primary and two replicas behind the HTTP
// router. One replica is killed mid-stream, the other partitioned; the
// router keeps serving (degraded to primary), and after the kill-restart
// and partition heal both replicas converge to the primary's CSN with
// bit-identical results. Clients never see a 5xx beyond the documented
// 503-with-Retry-After.

// nodeSlot lets the router survive a replica restart: Kill + NewReplica
// yields a new *repl.Replica, and the slot swaps it in behind the same
// ReadNode identity.
type nodeSlot struct {
	rep atomic.Pointer[repl.Replica]
}

func (n *nodeSlot) Name() string       { return n.rep.Load().Name() }
func (n *nodeSlot) DB() *engine.DB     { return n.rep.Load().DB() }
func (n *nodeSlot) AppliedCSN() uint64 { return n.rep.Load().AppliedCSN() }
func (n *nodeSlot) Healthy() bool      { return n.rep.Load().Healthy() }

func TestClusterSmoke(t *testing.T) {
	// Primary engine + shipper.
	pdb, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pdb.Close() })
	const hb = 10 * time.Millisecond
	prim := repl.NewPrimary(pdb, repl.PrimaryOptions{HeartbeatInterval: hb})
	t.Cleanup(prim.Close)

	dial := func(link *fault.Link) func() (net.Conn, error) {
		return func() (net.Conn, error) {
			c1, c2 := net.Pipe()
			prim.Attach(c2, link)
			return c1, nil
		}
	}
	startReplica := func(path, name string, link *fault.Link) *repl.Replica {
		rep, err := repl.NewReplica(path, repl.ReplicaOptions{
			Name: name, Dial: dial(link), HeartbeatInterval: hb,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	r1path := filepath.Join(t.TempDir(), "r1.db")
	link2 := fault.NewLink(99)
	slot1, slot2 := &nodeSlot{}, &nodeSlot{}
	slot1.rep.Store(startReplica(r1path, "replica-1", nil))
	slot2.rep.Store(startReplica(filepath.Join(t.TempDir(), "r2.db"), "replica-2", link2))
	t.Cleanup(func() {
		slot1.rep.Load().Close()
		slot2.rep.Load().Close()
	})

	// HTTP front end with the router fanning reads across both replicas.
	srv := New(pdb, Options{})
	t.Cleanup(srv.Close)
	srv.SetRouter(NewRouter(pdb, []ReadNode{slot1, slot2}, fastRetry()))
	mux := http.NewServeMux()
	srv.Attach(mux)
	ts := newLocalServer(t, mux)

	// ask runs one statement and enforces the availability contract: no
	// status but 200, 400 (statement error), or 503 with Retry-After.
	session := ""
	ask := func(sql string) (queryResponse, int) {
		t.Helper()
		qr, code := post(t, ts, session, sql)
		switch code {
		case http.StatusOK, http.StatusBadRequest:
		case http.StatusServiceUnavailable:
			// Permitted only as the documented refusal (checked below via
			// postRaw; post drops headers, so re-issue is fine here).
		default:
			t.Fatalf("undocumented status %d for %q (%+v)", code, sql, qr)
		}
		if code == http.StatusOK && qr.Session != "" {
			session = qr.Session
		}
		return qr, code
	}

	mustOK := func(sql string) queryResponse {
		t.Helper()
		qr, code := ask(sql)
		if code != http.StatusOK {
			t.Fatalf("%q = %d (%s)", sql, code, qr.Error)
		}
		return qr
	}

	mustOK("CREATE TABLE t (a INT)")
	for i := 0; i < 10; i++ {
		mustOK(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	waitApplied(t, pdb, slot1, slot2)

	// Both replicas serve reads now; a fresh session's read routes to one.
	qr := mustOK("SELECT a FROM t")
	if qr.Node != "replica-1" && qr.Node != "replica-2" {
		t.Fatalf("read served by %q, want a replica", qr.Node)
	}

	// Chaos: kill replica-1 mid-stream, partition replica-2.
	if err := slot1.rep.Load().Kill(); err != nil {
		t.Fatal(err)
	}
	link2.SetPartitioned(true)
	for i := 10; i < 20; i++ {
		mustOK(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	// Wait for replica-2's staleness window to expire so it leaves rotation.
	deadline := time.Now().Add(5 * time.Second)
	for slot2.Healthy() {
		if time.Now().After(deadline) {
			t.Fatal("partitioned replica-2 never went unhealthy")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Degraded service: reads keep answering. This session wrote, and no
	// replica has its CSN, so the primary must serve — but serve it does.
	for i := 0; i < 5; i++ {
		qr := mustOK("SELECT a FROM t")
		if qr.Node != "primary" {
			t.Fatalf("degraded read served by %q, want primary", qr.Node)
		}
		if len(qr.Rows) != 20 {
			t.Fatalf("degraded read saw %d rows, want 20", len(qr.Rows))
		}
	}

	// Heal: restart replica-1 from its surviving directory, reconnect the
	// partition. Both must converge to the primary's CSN.
	slot1.rep.Store(startReplica(r1path, "replica-1", nil))
	link2.SetPartitioned(false)
	waitApplied(t, pdb, slot1, slot2)

	// Bit-identical convergence at the same CSN.
	want, err := pdb.Exec("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range []*nodeSlot{slot1, slot2} {
		rep := slot.rep.Load()
		if rep.AppliedCSN() != pdb.CommittedCSN() {
			t.Fatalf("%s at CSN %d, primary at %d", rep.Name(), rep.AppliedCSN(), pdb.CommittedCSN())
		}
		got, err := rep.DB().Exec("SELECT a FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Rows, got.Rows) {
			t.Fatalf("%s diverged:\nprimary: %v\nreplica: %v", rep.Name(), want.Rows, got.Rows)
		}
	}

	// Reads route to replicas again once one has the session's write CSN.
	deadline = time.Now().Add(5 * time.Second)
	for {
		qr := mustOK("SELECT a FROM t")
		if qr.Node == "replica-1" || qr.Node == "replica-2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reads never returned to the replicas (last node %q)", qr.Node)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitApplied blocks until every slot reaches the primary's committed CSN.
func waitApplied(t *testing.T, pdb *engine.DB, slots ...*nodeSlot) {
	t.Helper()
	target := pdb.CommittedCSN()
	deadline := time.Now().Add(15 * time.Second)
	for _, s := range slots {
		for s.AppliedCSN() < target {
			if time.Now().After(deadline) {
				rep := s.rep.Load()
				t.Fatalf("%s stuck at CSN %d, primary at %d (stats %+v)",
					rep.Name(), s.AppliedCSN(), target, rep.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// newLocalServer starts an http.Server on a loopback listener and returns
// its base URL (httptest.Server is avoided here so the handler sees real
// network conns, matching production).
func newLocalServer(t *testing.T, mux *http.ServeMux) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		hs.Shutdown(ctx)
		cancel()
	})
	return "http://" + ln.Addr().String()
}
