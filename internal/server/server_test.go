package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tensorbase/internal/engine"
)

func newTestServer(t *testing.T, sopts Options) (*httptest.Server, *Server, *engine.DB) {
	t.Helper()
	db, err := engine.Open(filepath.Join(t.TempDir(), "s.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, sopts)
	mux := http.NewServeMux()
	srv.Attach(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return ts, srv, db
}

// post sends one statement and decodes the reply.
func post(t *testing.T, url, session, sql string) (queryResponse, int) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{Session: session, SQL: sql})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return qr, resp.StatusCode
}

func TestSessionRoundTrip(t *testing.T) {
	ts, srv, _ := newTestServer(t, Options{})

	qr, code := post(t, ts.URL, "", "CREATE TABLE t (a INT, b TEXT)")
	if code != http.StatusOK || qr.Error != "" {
		t.Fatalf("create: %d %q", code, qr.Error)
	}
	if qr.Session == "" || qr.Seq != 1 {
		t.Fatalf("create reply = %+v, want minted session and seq 1", qr)
	}
	sid := qr.Session

	qr, code = post(t, ts.URL, sid, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	if code != http.StatusOK || qr.RowsAffected != 2 || qr.Seq != 2 {
		t.Fatalf("insert reply = %d %+v", code, qr)
	}
	if qr.Session != sid {
		t.Fatal("session id changed mid-stream")
	}

	qr, code = post(t, ts.URL, sid, "SELECT b, a FROM t WHERE a > 1")
	if code != http.StatusOK || qr.Seq != 3 {
		t.Fatalf("select reply = %d %+v", code, qr)
	}
	if len(qr.Columns) != 2 || qr.Columns[0] != "b" || qr.Columns[1] != "a" {
		t.Fatalf("columns = %v", qr.Columns)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0] != "y" || qr.Rows[0][1] != float64(2) {
		t.Fatalf("rows = %v", qr.Rows)
	}
	if n := srv.Sessions(); n != 1 {
		t.Fatalf("live sessions = %d, want 1", n)
	}
}

func TestStatementErrorKeepsSession(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	qr, _ := post(t, ts.URL, "", "CREATE TABLE t (a INT)")
	sid := qr.Session

	qr, code := post(t, ts.URL, sid, "SELECT nope FROM t")
	if code != http.StatusBadRequest || qr.Error == "" {
		t.Fatalf("bad statement = %d %+v, want 400 with error", code, qr)
	}
	// The session survives its statement's failure.
	qr, code = post(t, ts.URL, sid, "SELECT a FROM t")
	if code != http.StatusOK || qr.Error != "" {
		t.Fatalf("session dead after statement error: %d %+v", code, qr)
	}
}

func TestUnknownSession(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	if _, code := post(t, ts.URL, "deadbeef", "SELECT 1 FROM t"); code != http.StatusNotFound {
		t.Fatalf("unknown session = %d, want 404", code)
	}
}

func TestSessionCap(t *testing.T) {
	ts, srv, _ := newTestServer(t, Options{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if qr, code := post(t, ts.URL, "", "CREATE TABLE t"+fmt.Sprint(i)+" (a INT)"); code != http.StatusOK {
			t.Fatalf("mint %d: %d %+v", i, code, qr)
		}
	}
	qr, code := post(t, ts.URL, "", "SELECT a FROM t0")
	if code != http.StatusServiceUnavailable || qr.Error == "" {
		t.Fatalf("over-cap mint = %d %+v, want 503", code, qr)
	}
	if srv.Sessions() != 2 {
		t.Fatalf("sessions = %d", srv.Sessions())
	}
	if got := srv.db.Metrics().Counter("tensorbase_http_sessions_rejected_total"); got != 1 {
		t.Fatalf("rejected counter = %d", got)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d", resp.StatusCode)
	}
	if _, code := post(t, ts.URL, "", ""); code != http.StatusBadRequest {
		t.Fatalf("empty sql = %d", code)
	}
}

// TestConcurrentSessions drives many sessions at once; every statement must
// succeed, with the engine's lock manager serializing the conflicts.
func TestConcurrentSessions(t *testing.T) {
	ts, _, db := newTestServer(t, Options{})
	if qr, code := post(t, ts.URL, "", "CREATE TABLE shared (a INT)"); code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, qr)
	}

	const clients = 6
	const iters = 10
	var wg sync.WaitGroup
	fail := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qr, code := post(t, ts.URL, "", fmt.Sprintf("INSERT INTO shared VALUES (%d)", c))
			if code != http.StatusOK {
				fail <- fmt.Sprintf("client %d mint: %d %s", c, code, qr.Error)
				return
			}
			sid := qr.Session
			for i := 0; i < iters; i++ {
				var sql string
				if i%2 == 0 {
					sql = fmt.Sprintf("INSERT INTO shared VALUES (%d)", c*100+i)
				} else {
					sql = "SELECT a FROM shared LIMIT 5"
				}
				if qr, code := post(t, ts.URL, sid, sql); code != http.StatusOK {
					fail <- fmt.Sprintf("client %d iter %d: %d %s", c, i, code, qr.Error)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	res, err := db.Exec("SELECT a FROM shared")
	if err != nil {
		t.Fatal(err)
	}
	want := clients + clients*iters/2
	if len(res.Rows) != want {
		t.Fatalf("table has %d rows, want %d", len(res.Rows), want)
	}
}

func TestIdleSessionsReaped(t *testing.T) {
	ts, srv, _ := newTestServer(t, Options{IdleTimeout: 50 * time.Millisecond})
	qr, code := post(t, ts.URL, "", "CREATE TABLE t (a INT)")
	if code != http.StatusOK {
		t.Fatalf("mint: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("%d sessions still live after idle timeout", n)
	}
	if _, code := post(t, ts.URL, qr.Session, "SELECT a FROM t"); code != http.StatusNotFound {
		t.Fatalf("reaped session = %d, want 404", code)
	}
}
