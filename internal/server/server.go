// Package server exposes the engine over HTTP as a session-based SQL
// endpoint — the multi-session serving front end the lock manager exists
// for. Each client holds a session (an opaque id minted by the server);
// statements within one session execute in order, while statements from
// different sessions run concurrently against the engine, which serializes
// only what actually conflicts (see internal/lockmgr).
//
// Protocol: POST /query with a JSON body
//
//	{"session": "<id or empty>", "sql": "SELECT ..."}
//
// An empty session id mints a new session; every response echoes the id to
// use next. Responses carry either result rows
//
//	{"session": "...", "seq": 3, "columns": ["a"], "rows": [[1]], "rows_affected": 0}
//
// or a statement error ({"session": "...", "error": "..."}, HTTP 400).
// Unknown sessions get 404 (they may have been idle-reaped); a full session
// table gets 503.
//
// Admission control: the server caps concurrently executing statements with
// a semaphore sized from the process compute budget, so a burst of HTTP
// clients queues at the door instead of oversubscribing the executor.
// Waiting respects client disconnects and is bounded by Options.AdmitWait —
// past it the statement is refused with 503 and a Retry-After header rather
// than queueing unboundedly.
//
// Replication: with a Router attached (SetRouter), SELECTs — PREDICT
// included — fan out across healthy replicas at their applied CSN; writes
// always execute on the primary. Each session carries the CSN of its last
// write, and its subsequent reads only go to replicas that have applied it
// (read-your-writes). With no eligible replica the server degrades to
// primary-only service; clients see which node answered in the response's
// "node" field.
//
// Shutdown(ctx) drains gracefully: new statements get 503 + Retry-After,
// in-flight ones finish (until ctx expires), and the engine is checkpointed
// so restart needs no WAL replay.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tensorbase/internal/engine"
	"tensorbase/internal/obs"
	"tensorbase/internal/parallel"
	"tensorbase/internal/shard"
	"tensorbase/internal/table"
)

// Options configures the SQL server.
type Options struct {
	// MaxSessions caps live sessions; a mint past the cap gets 503
	// (default 64).
	MaxSessions int
	// MaxInflight caps concurrently executing statements (default
	// max(8, 4 × the process compute-token budget)).
	MaxInflight int
	// IdleTimeout reaps sessions with no statement for this long
	// (default 5 minutes).
	IdleTimeout time.Duration
	// AdmitWait bounds how long a statement queues for an execution slot
	// before being refused with 503 + Retry-After (default 1s).
	AdmitWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * parallel.Default().Total()
		if o.MaxInflight < 8 {
			o.MaxInflight = 8
		}
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.AdmitWait <= 0 {
		o.AdmitWait = time.Second
	}
	return o
}

// Server is the session-based SQL-over-HTTP front end.
type Server struct {
	db      *engine.DB
	router  *Router        // nil = primary-only
	cluster *shard.Cluster // nil = unsharded; set, every statement routes through it
	opts    Options

	inflight  chan struct{} // admission semaphore
	inflightN atomic.Int64  // drain watermark
	draining  atomic.Bool

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	stopJanitor chan struct{}
	janitorWG   sync.WaitGroup

	queries  atomic.Int64
	errors   atomic.Int64
	rejected atomic.Int64
	minted   atomic.Int64
	reaped   atomic.Int64

	// Refusals by reason, one labeled series each.
	rejSessions  *obs.Counter
	rejAdmission *obs.Counter
	rejDraining  *obs.Counter
	rejShard     *obs.Counter
}

// session is one client's serialized statement stream.
type session struct {
	id string
	mu sync.Mutex // statements within a session run in order

	lastUsed  atomic.Int64  // unix nanos
	seq       atomic.Int64  // statements executed
	lastWrite atomic.Uint64 // committed CSN of the session's last write (read-your-writes floor)

	// shardSess carries per-shard read-your-writes floors when the server
	// fronts a cluster: one CSN floor per shard rather than one global
	// lastWrite, since shards commit in independent CSN spaces.
	shardSess *shard.Session
}

// New builds a server over db and registers its metrics in the engine's
// registry. Call Close when done to stop the idle-session janitor.
func New(db *engine.DB, opts Options) *Server {
	s := &Server{
		db:          db,
		opts:        opts.withDefaults(),
		sessions:    make(map[string]*session),
		stopJanitor: make(chan struct{}),
	}
	s.inflight = make(chan struct{}, s.opts.MaxInflight)
	s.registerMetrics(db.Registry())
	s.janitorWG.Add(1)
	go s.janitor()
	return s
}

func (s *Server) registerMetrics(r *obs.Registry) {
	r.CounterFunc("tensorbase_http_queries_total", "statements received over /query", func() float64 { return float64(s.queries.Load()) })
	r.CounterFunc("tensorbase_http_query_errors_total", "statements over /query that returned an error", func() float64 { return float64(s.errors.Load()) })
	r.CounterFunc("tensorbase_http_sessions_minted_total", "sessions created", func() float64 { return float64(s.minted.Load()) })
	r.CounterFunc("tensorbase_http_sessions_rejected_total", "session mints refused by the MaxSessions cap", func() float64 { return float64(s.rejected.Load()) })
	r.CounterFunc("tensorbase_http_sessions_reaped_total", "idle sessions reclaimed by the janitor", func() float64 { return float64(s.reaped.Load()) })
	r.GaugeFunc("tensorbase_http_sessions", "live sessions", func() float64 {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		return float64(n)
	})
	r.GaugeFunc("tensorbase_http_inflight", "statements currently executing over HTTP", func() float64 { return float64(len(s.inflight)) })
	s.rejSessions = r.CounterLabeled("tensorbase_http_rejected_total", `reason="sessions"`, "statements refused with 503, by reason")
	s.rejAdmission = r.CounterLabeled("tensorbase_http_rejected_total", `reason="admission"`, "statements refused with 503, by reason")
	s.rejDraining = r.CounterLabeled("tensorbase_http_rejected_total", `reason="draining"`, "statements refused with 503, by reason")
	s.rejShard = r.CounterLabeled("tensorbase_http_rejected_total", `reason="shard"`, "statements refused with 503, by reason")
}

// SetRouter attaches a replica read router. Call before serving traffic.
func (s *Server) SetRouter(rt *Router) { s.router = rt }

// SetCluster attaches a shard cluster: every statement then routes through
// the scatter-gather coordinator (pinned reads to one shard, scatters to
// all, writes hash-split or broadcast), and a shard that is down or
// lagging a session's floor refuses the statement with 503 + Retry-After
// instead of serving partial or stale results. Call before serving
// traffic; the cluster's pinned/scatter counters register in the anchor
// engine's registry.
func (s *Server) SetCluster(cl *shard.Cluster) {
	s.cluster = cl
	cl.RegisterMetrics(s.db.Registry())
}

// Attach mounts the server's endpoints on mux.
func (s *Server) Attach(mux *http.ServeMux) {
	mux.Handle("/query", s)
}

// Close stops the idle janitor. In-flight requests finish normally.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopJanitor)
	s.janitorWG.Wait()
}

// Shutdown drains the server for a clean exit: new statements are refused
// with 503 + Retry-After, in-flight statements finish (bounded by ctx),
// and the engine is checkpointed so the next open replays no WAL. Returns
// ctx.Err() if the drain deadline expired with statements still running —
// the checkpoint still happens; those statements' effects are either
// committed (and checkpointed) or rolled back by recovery, never half-kept.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	drained := func() bool { return s.inflightN.Load() == 0 }
	var derr error
	for !drained() {
		select {
		case <-ctx.Done():
			derr = ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		if derr != nil {
			break
		}
	}
	s.Close()
	if err := s.db.Checkpoint(); err != nil {
		return err
	}
	return derr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// janitor reaps sessions idle past Options.IdleTimeout.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	tick := time.NewTicker(s.opts.IdleTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stopJanitor:
			return
		case now := <-tick.C:
			cutoff := now.Add(-s.opts.IdleTimeout).UnixNano()
			s.mu.Lock()
			for id, sess := range s.sessions {
				if sess.lastUsed.Load() < cutoff {
					delete(s.sessions, id)
					s.reaped.Add(1)
				}
			}
			s.mu.Unlock()
		}
	}
}

// queryRequest is the /query body.
type queryRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
}

// queryResponse is the /query reply.
type queryResponse struct {
	Session      string   `json:"session"`
	Seq          int64    `json:"seq,omitempty"`
	Node         string   `json:"node,omitempty"` // which node served a routed read
	Columns      []string `json:"columns,omitempty"`
	Rows         [][]any  `json:"rows,omitempty"`
	RowsAffected int64    `json:"rows_affected,omitempty"`
	Error        string   `json:"error,omitempty"`
}

// reject refuses a statement with 503 and a Retry-After so well-behaved
// clients back off instead of hammering; reason lands in the labeled
// tensorbase_http_rejected_total series.
func (s *Server) reject(w http.ResponseWriter, session string, c *obs.Counter, msg string) {
	c.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, queryResponse{Session: session, Error: msg})
}

// ServeHTTP handles POST /query.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: "empty sql"})
		return
	}
	if s.draining.Load() {
		s.reject(w, req.Session, s.rejDraining, "server: shutting down")
		return
	}

	sess, status, err := s.session(req.Session)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			s.reject(w, req.Session, s.rejSessions, err.Error())
			return
		}
		writeJSON(w, status, queryResponse{Session: req.Session, Error: err.Error()})
		return
	}

	// Admission: wait (bounded) for an execution slot, give up if the
	// client does; past AdmitWait the statement is refused, not queued.
	admit := time.NewTimer(s.opts.AdmitWait)
	select {
	case s.inflight <- struct{}{}:
		admit.Stop()
		s.inflightN.Add(1)
		defer func() {
			<-s.inflight
			s.inflightN.Add(-1)
		}()
	case <-admit.C:
		s.reject(w, sess.id, s.rejAdmission, "server: execution slots saturated")
		return
	case <-r.Context().Done():
		admit.Stop()
		return
	}

	// Statements within one session execute in order; the engine's lock
	// manager handles cross-session conflicts. Reads fan out across
	// replicas when a router is attached, floored at the session's last
	// write CSN; writes always run on the primary.
	sess.mu.Lock()
	var res *engine.Result
	var qerr error
	node := ""
	switch {
	case s.cluster != nil:
		if sess.shardSess == nil {
			sess.shardSess = s.cluster.NewSession()
		}
		res, qerr = s.cluster.Exec(r.Context(), req.SQL, sess.shardSess)
		node = "cluster"
	case IsRead(req.SQL) && s.router != nil:
		res, node, qerr = s.router.Route(r.Context(), req.SQL, sess.lastWrite.Load())
	default:
		isRead := IsRead(req.SQL)
		res, qerr = s.db.QueryContext(r.Context(), req.SQL)
		if qerr == nil && !isRead {
			// The committed horizon is ≥ this write's CSN: a conservative
			// read-your-writes floor.
			sess.lastWrite.Store(s.db.CommittedCSN())
		}
	}
	seq := sess.seq.Add(1)
	sess.mu.Unlock()
	sess.lastUsed.Store(time.Now().UnixNano())
	s.queries.Add(1)

	if qerr != nil {
		s.errors.Add(1)
		if errors.Is(qerr, shard.ErrUnavailable) || errors.Is(qerr, shard.ErrLag) {
			// A down or lagging shard is a serving-capacity condition, not
			// a statement error: refuse retriably like any other overload.
			s.reject(w, sess.id, s.rejShard, qerr.Error())
			return
		}
		writeJSON(w, http.StatusBadRequest, queryResponse{Session: sess.id, Seq: seq, Node: node, Error: qerr.Error()})
		return
	}
	resp := queryResponse{Session: sess.id, Seq: seq, Node: node, RowsAffected: res.RowsAffected}
	if res.Schema != nil {
		for _, c := range res.Schema.Cols {
			resp.Columns = append(resp.Columns, c.Name)
		}
		resp.Rows = make([][]any, len(res.Rows))
		for i, row := range res.Rows {
			out := make([]any, len(row))
			for j, v := range row {
				out[j] = jsonValue(v)
			}
			resp.Rows[i] = out
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// session resolves (or mints) the request's session.
func (s *Server) session(id string) (*session, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		if len(s.sessions) >= s.opts.MaxSessions {
			s.rejected.Add(1)
			return nil, http.StatusServiceUnavailable, fmt.Errorf("server: session table full (%d live)", len(s.sessions))
		}
		sess := &session{id: mintID()}
		sess.lastUsed.Store(time.Now().UnixNano())
		s.sessions[sess.id] = sess
		s.minted.Add(1)
		return sess, 0, nil
	}
	sess, ok := s.sessions[id]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("server: unknown session %q (expired?)", id)
	}
	sess.lastUsed.Store(time.Now().UnixNano())
	return sess, 0, nil
}

// Sessions reports the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func mintID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// jsonValue converts an engine value to its JSON representation.
func jsonValue(v table.Value) any {
	switch v.Type {
	case table.Int64:
		return v.Int
	case table.Float64:
		return v.Float
	case table.Text:
		return v.Str
	case table.FloatVec:
		return v.Vec
	default:
		return v.String()
	}
}

func writeJSON(w http.ResponseWriter, status int, resp queryResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}
