package server

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tensorbase/internal/engine"
	"tensorbase/internal/retry"
)

// fakeNode is a controllable ReadNode over its own engine.
type fakeNode struct {
	name    string
	db      *engine.DB
	healthy atomic.Bool
	applied atomic.Uint64
	queries atomic.Int64
}

func (n *fakeNode) Name() string       { return n.name }
func (n *fakeNode) DB() *engine.DB     { return n.db }
func (n *fakeNode) AppliedCSN() uint64 { return n.applied.Load() }
func (n *fakeNode) Healthy() bool      { return n.healthy.Load() }

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	db, err := engine.Open(filepath.Join(t.TempDir(), name+".db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	n := &fakeNode{name: name, db: db}
	n.healthy.Store(true)
	return n
}

func fastRetry() retry.Policy {
	return retry.Policy{Base: time.Millisecond, Cap: 2 * time.Millisecond, Attempts: 3}
}

func TestIsRead(t *testing.T) {
	for sql, want := range map[string]bool{
		"SELECT a FROM t":               true,
		"  select PREDICT(m, f) FROM t": true,
		"INSERT INTO t VALUES (1)":      false,
		"CREATE TABLE t (a INT)":        false,
		"DROP TABLE t":                  false,
		// Classification is by parsed statement kind. A literal-prefix
		// check misrouted every one of these reads to the primary:
		"WITH c AS (SELECT a FROM t) SELECT a FROM c": true,
		"(SELECT a FROM t)":                           true,
		"-- warm cache\nSELECT a FROM t":              true,
		"/* routed */ SELECT a FROM t":                true,
		"/* comment */ INSERT INTO t VALUES (1)":      false,
		"-- nothing here":                             false,
		"EXPLAIN NONSENSE":                            false,
	} {
		if got := IsRead(sql); got != want {
			t.Fatalf("IsRead(%q) = %v, want %v", sql, got, want)
		}
	}
}

// TestRouteDiscardsStaleSnapshot is the regression for the floor race: a
// replica whose AppliedCSN *claims* eligibility (a throttled apply loop
// reporting optimistically, or a crash/reopen between the eligibility
// check and the query) but whose engine pins a snapshot below the
// session's floor. Route must discard those rows — they are stale for this
// session — and serve from a node that satisfies the floor.
func TestRouteDiscardsStaleSnapshot(t *testing.T) {
	primary, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	if _, err := primary.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Exec("INSERT INTO t VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	floor := primary.CommittedCSN()

	// The throttled replica has the table but not the row, yet its health
	// endpoint claims it has applied far past the session's floor.
	n := newFakeNode(t, "r1")
	if _, err := n.db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	n.applied.Store(floor + 100)
	rt := NewRouter(primary, []ReadNode{n}, fastRetry())

	res, node, err := rt.Route(context.Background(), "SELECT a FROM t", floor)
	if err != nil {
		t.Fatal(err)
	}
	if node == "r1" {
		t.Fatal("Route served rows from a replica pinned below the session floor")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 7 {
		t.Fatalf("Route returned stale rows %v; read-your-writes is broken", res.Rows)
	}
	if rt.lagged.Load() == 0 {
		t.Fatal("the discarded stale snapshot was not counted")
	}
}

func TestRoutePrefersReplica(t *testing.T) {
	primary, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	n := newFakeNode(t, "r1")
	if _, err := n.db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(primary, []ReadNode{n}, fastRetry())

	res, node, err := rt.Route(context.Background(), "SELECT a FROM t", 0)
	if err != nil || node != "r1" {
		t.Fatalf("Route = (%v, %q, %v), want replica r1", res, node, err)
	}
}

func TestRouteSkipsLaggingReplica(t *testing.T) {
	primary, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	if _, err := primary.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	n := newFakeNode(t, "r1") // applied CSN stays 0
	rt := NewRouter(primary, []ReadNode{n}, fastRetry())

	// Read-your-writes: the session's floor is past the replica.
	_, node, err := rt.Route(context.Background(), "SELECT a FROM t", 5)
	if err != nil || node != "primary" {
		t.Fatalf("Route past lagging replica = (%q, %v), want primary", node, err)
	}
	// At floor 0 the replica is eligible again.
	if _, err := n.db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	_, node, err = rt.Route(context.Background(), "SELECT a FROM t", 0)
	if err != nil || node != "r1" {
		t.Fatalf("Route at floor 0 = (%q, %v), want r1", node, err)
	}
}

func TestRouteFallsBackWhenAllUnhealthy(t *testing.T) {
	primary, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	if _, err := primary.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	n1, n2 := newFakeNode(t, "r1"), newFakeNode(t, "r2")
	n1.healthy.Store(false)
	n2.healthy.Store(false)
	rt := NewRouter(primary, []ReadNode{n1, n2}, fastRetry())

	_, node, err := rt.Route(context.Background(), "SELECT a FROM t", 0)
	if err != nil || node != "primary" {
		t.Fatalf("Route with all replicas down = (%q, %v), want primary", node, err)
	}
}

// TestRouteStatementErrorNotRetried: an error from a healthy node is the
// statement's fault and must return to the client, not burn retries.
func TestRouteStatementErrorNotRetried(t *testing.T) {
	primary, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	n := newFakeNode(t, "r1") // has no table: the SELECT errors deterministically
	rt := NewRouter(primary, []ReadNode{n}, fastRetry())

	_, node, err := rt.Route(context.Background(), "SELECT a FROM missing", 0)
	if err == nil || node != "r1" {
		t.Fatalf("Route = (%q, %v), want the statement error from r1", node, err)
	}
}

func TestRouteCancelledContext(t *testing.T) {
	primary, err := engine.Open(filepath.Join(t.TempDir(), "p.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	n := newFakeNode(t, "r1")
	n.healthy.Store(false)
	rt := NewRouter(primary, []ReadNode{n}, fastRetry())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := rt.Route(ctx, "SELECT a FROM t", 0); err == nil {
		t.Fatal("Route on a cancelled context must error")
	}
}

// --- server-level robustness ---

// postRaw sends a statement and returns the raw HTTP response (headers
// matter for the Retry-After assertions).
func postRaw(t *testing.T, url, session, sql string) *http.Response {
	t.Helper()
	body := `{"session":"` + session + `","sql":"` + sql + `"}`
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	ts, srv, db := newTestServer(t, Options{})
	if qr, code := post(t, ts.URL, "", "CREATE TABLE t (a INT)"); code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, qr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
	resp := postRaw(t, ts.URL, "", "SELECT a FROM t")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 missing Retry-After")
	}
	if got := db.Metrics().Counter(`tensorbase_http_rejected_total{reason="draining"}`); got != 1 {
		t.Fatalf("draining rejection counter = %d", got)
	}
	// Shutdown checkpointed: the WAL is empty and restart replays nothing.
	if n := db.Metrics().Gauge("tensorbase_wal_bytes"); n != 0 {
		t.Fatalf("WAL holds %v bytes after Shutdown's checkpoint", n)
	}
}

func TestShutdownDeadlineExpires(t *testing.T) {
	_, srv, _ := newTestServer(t, Options{})
	srv.inflightN.Add(1) // a statement that never finishes
	defer srv.inflightN.Add(-1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck statement = %v, want DeadlineExceeded", err)
	}
}

func TestAdmissionSaturationRejects(t *testing.T) {
	ts, srv, db := newTestServer(t, Options{MaxInflight: 1, AdmitWait: 20 * time.Millisecond})
	if qr, code := post(t, ts.URL, "", "CREATE TABLE t (a INT)"); code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, qr)
	}
	srv.inflight <- struct{}{} // saturate the only slot
	defer func() { <-srv.inflight }()

	resp := postRaw(t, ts.URL, "", "SELECT a FROM t")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated admission = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("admission 503 missing Retry-After")
	}
	if got := db.Metrics().Counter(`tensorbase_http_rejected_total{reason="admission"}`); got != 1 {
		t.Fatalf("admission rejection counter = %d", got)
	}
}

// TestServerRoutesReadsThroughRouter wires a fake replica under the HTTP
// front end: reads land on it, writes stay on the primary, and a session's
// read after a write skips the lagging replica (read-your-writes).
func TestServerRoutesReadsThroughRouter(t *testing.T) {
	ts, srv, db := newTestServer(t, Options{})
	n := newFakeNode(t, "r1")
	if _, err := n.db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	srv.SetRouter(NewRouter(db, []ReadNode{n}, fastRetry()))

	qr, code := post(t, ts.URL, "", "CREATE TABLE t (a INT)")
	if code != http.StatusOK || qr.Node != "" {
		t.Fatalf("write reply = %d %+v, want no node (primary, unrouted)", code, qr)
	}
	sid := qr.Session

	// The write advanced the session's floor past the stale replica: the
	// read must answer from the primary.
	qr, code = post(t, ts.URL, sid, "SELECT a FROM t")
	if code != http.StatusOK || qr.Node != "primary" {
		t.Fatalf("read-your-writes reply = %d %+v, want node=primary", code, qr)
	}

	// Once the replica reports having applied the write, reads route to it.
	n.applied.Store(db.CommittedCSN())
	qr, code = post(t, ts.URL, sid, "SELECT a FROM t")
	if code != http.StatusOK || qr.Node != "r1" {
		t.Fatalf("routed read reply = %d %+v, want node=r1", code, qr)
	}

	// A fresh session has no write floor: replica from the first read.
	qr, code = post(t, ts.URL, "", "SELECT a FROM t")
	if code != http.StatusOK || qr.Node != "r1" {
		t.Fatalf("fresh-session read = %d %+v, want node=r1", code, qr)
	}
}
