package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tensorbase/internal/engine"
	"tensorbase/internal/nn"
	"tensorbase/internal/shard"
	"tensorbase/internal/table"
)

// newShardedServer stands up the HTTP front end over an n-shard local
// cluster, seeded with a demo table (id INT key, f VECTOR features) and a
// small model for PREDICT push-down.
func newShardedServer(t *testing.T, shards, rows int) (*httptest.Server, *Server, *shard.Cluster) {
	t.Helper()
	anchor, err := engine.Open(filepath.Join(t.TempDir(), "anchor"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { anchor.Close() })
	cl, err := shard.NewLocalCluster(t.TempDir(), shards, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	srv := New(anchor, Options{})
	srv.SetCluster(cl)
	mux := http.NewServeMux()
	srv.Attach(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	if qr, code := post(t, ts.URL, "", "CREATE TABLE demo (id INT, f VECTOR)"); code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, qr)
	}
	var b strings.Builder
	b.WriteString("INSERT INTO demo VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, [%d, %d, %d, %d])", i, i, i%5, (i*3)%7, 1+i%2)
	}
	if qr, code := post(t, ts.URL, "", b.String()); code != http.StatusOK {
		t.Fatalf("insert: %d %+v", code, qr)
	}
	m, err := nn.NewModel("demo-fc", []int{1, 4}, nn.NewLinear(rand.New(rand.NewSource(5)), 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadModel(m, 0.9); err != nil {
		t.Fatal(err)
	}
	return ts, srv, cl
}

// idOnShard returns the first id in [0, rows) hashing to the given shard.
func idOnShard(rows, shards, want int) int {
	for i := 0; i < rows; i++ {
		if shard.ShardOf(table.IntVal(int64(i)), shards) == want {
			return i
		}
	}
	return -1
}

// TestShardClusterSmoke is the CI smoke: a 4-shard cluster behind the HTTP
// front end serves concurrent pinned and scattered PREDICTs; killing one
// shard keeps pinned queries for the other shards serving while scatters
// refuse with a clean 503 + Retry-After; a restart converges the cluster.
func TestShardClusterSmoke(t *testing.T) {
	const rows, shards = 32, 4
	ts, _, cl := newShardedServer(t, shards, rows)

	// Concurrent pinned + scattered PREDICTs on the healthy cluster.
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				pin := fmt.Sprintf("SELECT id, PREDICT(demo-fc, f) FROM demo WHERE id = %d", (w*3+i)%rows)
				if qr, code := post(t, ts.URL, "", pin); code != http.StatusOK {
					errc <- fmt.Errorf("pinned predict: %d %+v", code, qr)
					return
				}
				if qr, code := post(t, ts.URL, "", "SELECT id, PREDICT(demo-fc, f) FROM demo ORDER BY id LIMIT 4"); code != http.StatusOK {
					errc <- fmt.Errorf("scattered predict: %d %+v", code, qr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if cl.PinnedCount() == 0 || cl.ScatterCount() == 0 {
		t.Fatalf("counter split pinned=%d scatter=%d; both paths must be exercised", cl.PinnedCount(), cl.ScatterCount())
	}

	// Kill shard 1. Pinned reads for keys on other shards keep serving.
	if err := cl.Nodes()[1].(*shard.LocalNode).Kill(); err != nil {
		t.Fatal(err)
	}
	liveID := idOnShard(rows, shards, 2)
	deadID := idOnShard(rows, shards, 1)
	if qr, code := post(t, ts.URL, "", fmt.Sprintf("SELECT id FROM demo WHERE id = %d", liveID)); code != http.StatusOK {
		t.Fatalf("pinned read for a live shard during outage: %d %+v", code, qr)
	}

	// Scatters and dead-shard pins refuse retriably: 503 + Retry-After.
	for _, q := range []string{
		"SELECT COUNT(*) FROM demo",
		fmt.Sprintf("SELECT id FROM demo WHERE id = %d", deadID),
	} {
		resp := postRaw(t, ts.URL, "", strings.ReplaceAll(q, `"`, `\"`))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during outage = %d, want 503", q, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s during outage: 503 missing Retry-After", q)
		}
	}

	// Restart: the shard recovers from its durable state and scatters
	// converge to the full row count.
	if err := cl.Nodes()[1].(*shard.LocalNode).Restart(); err != nil {
		t.Fatal(err)
	}
	qr, code := post(t, ts.URL, "", "SELECT COUNT(*) FROM demo")
	if code != http.StatusOK {
		t.Fatalf("scatter after restart: %d %+v", code, qr)
	}
	if n := qr.Rows[0][0]; fmt.Sprint(n) != fmt.Sprint(rows) {
		t.Fatalf("count after restart = %v, want %d", n, rows)
	}
}
