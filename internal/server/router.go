package server

import (
	"context"
	"sync/atomic"

	"tensorbase/internal/engine"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/retry"
	"tensorbase/internal/sql"
)

// ReadNode is a replica the router can steer reads to. repl.Replica
// satisfies it; the interface lives here so the server does not depend on
// the replication package.
type ReadNode interface {
	Name() string
	// DB returns the follower engine currently serving this node's reads
	// (the pointer may change across a crash/reopen — fetch per query).
	DB() *engine.DB
	// AppliedCSN is the snapshot horizon the node serves.
	AppliedCSN() uint64
	// Healthy gates routing: false while the node is partitioned, dead, or
	// resyncing.
	Healthy() bool
}

// Router fans reads across healthy replicas and keeps the primary as the
// fallback of last resort. PREDICT and SELECT are reads; everything else
// must execute on the primary. Routing enforces read-your-writes with a
// minimum CSN: a node lagging behind the session's last write is skipped.
//
// Failure handling: a query error from a node that has since gone
// unhealthy is treated as a node failure and retried on a different node
// after a jittered backoff; an error from a still-healthy node is a
// deterministic statement error and returns to the client. With no
// eligible replica (all partitioned, all lagging), the router degrades to
// primary-only service.
type Router struct {
	primary *engine.DB
	nodes   []ReadNode
	policy  retry.Policy
	cursor  atomic.Uint64

	replicaReads atomic.Uint64
	primaryReads atomic.Uint64
	retries      atomic.Uint64
	fallbacks    atomic.Uint64
	lagged       atomic.Uint64
}

// NewRouter builds a router over the primary engine and its replicas and
// registers routing metrics in the primary's registry. policy shapes the
// inter-node retry backoff (zero value = defaults).
func NewRouter(primary *engine.DB, nodes []ReadNode, policy retry.Policy) *Router {
	rt := &Router{primary: primary, nodes: nodes, policy: policy}
	r := primary.Registry()
	r.CounterFunc("tensorbase_router_replica_reads_total", "reads served by a replica", func() float64 { return float64(rt.replicaReads.Load()) })
	r.CounterFunc("tensorbase_router_primary_reads_total", "reads served by the primary (no eligible replica or fallback)", func() float64 { return float64(rt.primaryReads.Load()) })
	r.CounterFunc("tensorbase_router_retries_total", "reads retried on a different node after a node failure", func() float64 { return float64(rt.retries.Load()) })
	r.CounterFunc("tensorbase_router_fallbacks_total", "reads that fell back to the primary after replica failures", func() float64 { return float64(rt.fallbacks.Load()) })
	r.CounterFunc("tensorbase_router_lagged_total", "replica results discarded because the pinned snapshot fell below the session floor", func() float64 { return float64(rt.lagged.Load()) })
	return rt
}

// IsRead reports whether sqlText is routable to a replica: any statement
// that parses to a SELECT, which includes PREDICT and vector-distance
// queries. Classification is by the parsed statement's kind, not a text
// prefix — `WITH ... SELECT`, parenthesized `(SELECT ...)`, and
// comment-prefixed reads are reads too, and a prefix check would misroute
// all three to the primary. Statements that do not parse are sent to the
// primary, which produces the authoritative error.
func IsRead(sqlText string) bool {
	st, err := sql.Parse(sqlText)
	if err != nil {
		return false
	}
	return sql.ReadOnly(st)
}

// Route executes a read, preferring healthy replicas at or past minCSN
// (the session's read-your-writes floor) and falling back to the primary.
// It returns the result and the name of the node that served it.
func (rt *Router) Route(ctx context.Context, sql string, minCSN uint64) (*engine.Result, string, error) {
	n := len(rt.nodes)
	if n > 0 {
		tok, unwatch := lifecycle.Watch(ctx)
		defer unwatch()
		start := rt.cursor.Add(1)
		tried := 0
		for i := 0; i < n && tried < 3; i++ {
			node := rt.nodes[(start+uint64(i))%uint64(n)]
			if !node.Healthy() || node.AppliedCSN() < minCSN {
				continue
			}
			if tried > 0 {
				rt.retries.Add(1)
				if err := retry.Sleep(tok, rt.policy.Backoff(tried)); err != nil {
					return nil, "", err
				}
			}
			tried++
			res, err := node.DB().QueryContext(ctx, sql)
			if err == nil {
				if res.SnapshotCSN < minCSN {
					// The eligibility check above saw AppliedCSN >= minCSN,
					// but the node raced below the floor before the query
					// pinned its snapshot (crash/reopen, resync rewind, a
					// throttled apply loop). These rows are stale for this
					// session — discard them and retry elsewhere rather
					// than break read-your-writes.
					rt.lagged.Add(1)
					continue
				}
				rt.replicaReads.Add(1)
				return res, node.Name(), nil
			}
			if ctx.Err() != nil {
				return nil, node.Name(), err
			}
			if node.Healthy() {
				// The node is fine; the statement is the problem.
				return nil, node.Name(), err
			}
			// The node died under the query — try the next one.
		}
		if tried > 0 {
			rt.fallbacks.Add(1)
		}
	}
	rt.primaryReads.Add(1)
	res, err := rt.primary.QueryContext(ctx, sql)
	return res, "primary", err
}

// Nodes returns the router's read nodes (health-agnostic; for status
// surfaces).
func (rt *Router) Nodes() []ReadNode { return rt.nodes }

// Primary returns the fallback engine.
func (rt *Router) Primary() *engine.DB { return rt.primary }
