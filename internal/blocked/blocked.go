// Package blocked implements the relation-centric tensor representation:
// a matrix is a relation of fixed-size tensor blocks stored in heap pages,
// and a matrix multiplication becomes a join on the shared block index
// followed by an elementwise-sum aggregation — the rewriting at the heart of
// the paper's relation-centric architecture (Sec. 1, Fig. 1; Sec. 7.1).
//
// Because blocks live in buffer-pool pages, a matrix larger than memory
// spills to disk transparently; this is what lets the relation-centric path
// complete the Table 3 workloads where whole-tensor runtimes OOM.
package blocked

import (
	"fmt"

	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// DefaultBlockSize is the default square block edge. A 64×64 float32 block
// is 16 KiB — half a storage page.
const DefaultBlockSize = 64

// blockSchema is the relation schema of a blocked matrix:
// (rowBlock, colBlock, rows, cols, data).
var blockSchema = table.MustSchema(
	table.Column{Name: "rb", Type: table.Int64},
	table.Column{Name: "cb", Type: table.Int64},
	table.Column{Name: "r", Type: table.Int64},
	table.Column{Name: "c", Type: table.Int64},
	table.Column{Name: "data", Type: table.FloatVec},
)

// BlockSchema returns the relation schema used for blocked matrices.
func BlockSchema() *table.Schema { return blockSchema }

// Matrix is a dense matrix stored as a relation of tensor blocks.
type Matrix struct {
	heap      *table.Heap
	pool      *storage.BufferPool
	Rows      int
	Cols      int
	BlockSize int
	// rids indexes block coordinates → record id, so co-partitioned
	// access patterns (fetch all blocks of one block-row) need no scan.
	rids map[[2]int]table.RID
}

// NumRowBlocks returns the number of block rows.
func (m *Matrix) NumRowBlocks() int { return ceilDiv(m.Rows, m.BlockSize) }

// NumColBlocks returns the number of block columns.
func (m *Matrix) NumColBlocks() int { return ceilDiv(m.Cols, m.BlockSize) }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Heap exposes the underlying block relation, for relational pipelines.
func (m *Matrix) Heap() *table.Heap { return m.heap }

// Store chunks a dense 2-D tensor into bs×bs blocks and writes them to a
// fresh heap in the pool. Edge blocks are clipped.
func Store(pool *storage.BufferPool, t *tensor.Tensor, bs int) (*Matrix, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("blocked: Store requires a 2-D tensor, got %v", t.Shape())
	}
	if bs < 1 {
		return nil, fmt.Errorf("blocked: block size %d < 1", bs)
	}
	if bs*bs*4 > storage.MaxRecordSize-64 {
		return nil, fmt.Errorf("blocked: block size %d does not fit a page record", bs)
	}
	heap, err := table.NewHeap(pool, blockSchema)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		heap: heap, pool: pool,
		Rows: t.Dim(0), Cols: t.Dim(1), BlockSize: bs,
		rids: make(map[[2]int]table.RID),
	}
	for rb := 0; rb < m.NumRowBlocks(); rb++ {
		for cb := 0; cb < m.NumColBlocks(); cb++ {
			blk := t.Slice2D(rb*bs, (rb+1)*bs, cb*bs, (cb+1)*bs)
			if err := m.putBlock(rb, cb, blk); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// NewEmpty creates a blocked matrix relation with no blocks yet; blocks are
// appended with AppendBlock. Used by producers that generate blocks
// streaming (e.g. the im2col rewriting) instead of from a dense tensor.
func NewEmpty(pool *storage.BufferPool, rows, cols, bs int) (*Matrix, error) {
	if bs < 1 || bs*bs*4 > storage.MaxRecordSize-64 {
		return nil, fmt.Errorf("blocked: invalid block size %d", bs)
	}
	heap, err := table.NewHeap(pool, blockSchema)
	if err != nil {
		return nil, err
	}
	return &Matrix{
		heap: heap, pool: pool,
		Rows: rows, Cols: cols, BlockSize: bs,
		rids: make(map[[2]int]table.RID),
	}, nil
}

// AppendBlock stores blk as block (rb, cb). The block's shape must match
// the clipped block extent at that coordinate.
func (m *Matrix) AppendBlock(rb, cb int, blk *tensor.Tensor) error {
	wantR := m.blockRows(rb)
	wantC := m.blockCols(cb)
	if blk.Dim(0) != wantR || blk.Dim(1) != wantC {
		return fmt.Errorf("blocked: block (%d,%d) has shape %v, want (%d,%d)", rb, cb, blk.Shape(), wantR, wantC)
	}
	return m.putBlock(rb, cb, blk)
}

func (m *Matrix) blockRows(rb int) int {
	r := m.Rows - rb*m.BlockSize
	if r > m.BlockSize {
		r = m.BlockSize
	}
	return r
}

func (m *Matrix) blockCols(cb int) int {
	c := m.Cols - cb*m.BlockSize
	if c > m.BlockSize {
		c = m.BlockSize
	}
	return c
}

func (m *Matrix) putBlock(rb, cb int, blk *tensor.Tensor) error {
	rid, err := m.heap.Insert(table.Tuple{
		table.IntVal(int64(rb)),
		table.IntVal(int64(cb)),
		table.IntVal(int64(blk.Dim(0))),
		table.IntVal(int64(blk.Dim(1))),
		table.VecVal(blk.Data()),
	})
	if err != nil {
		return err
	}
	m.rids[[2]int{rb, cb}] = rid
	return nil
}

// Block fetches block (rb, cb) through the buffer pool.
func (m *Matrix) Block(rb, cb int) (*tensor.Tensor, error) {
	rid, ok := m.rids[[2]int{rb, cb}]
	if !ok {
		return nil, fmt.Errorf("blocked: no block (%d,%d)", rb, cb)
	}
	t, err := m.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	r, c := int(t[2].Int), int(t[3].Int)
	if r*c != len(t[4].Vec) {
		return nil, fmt.Errorf("blocked: block (%d,%d) dims %dx%d but %d floats", rb, cb, r, c, len(t[4].Vec))
	}
	return tensor.FromSlice(t[4].Vec, r, c), nil
}

// Assemble reconstructs the dense tensor. Intended for verification and
// small results; it allocates the full matrix.
func (m *Matrix) Assemble() (*tensor.Tensor, error) {
	out := tensor.New(m.Rows, m.Cols)
	for rb := 0; rb < m.NumRowBlocks(); rb++ {
		for cb := 0; cb < m.NumColBlocks(); cb++ {
			blk, err := m.Block(rb, cb)
			if err != nil {
				return nil, err
			}
			out.SetBlock2D(blk, rb*m.BlockSize, cb*m.BlockSize)
		}
	}
	return out, nil
}

// Scan returns a relational scan over the block relation.
func (m *Matrix) Scan() exec.Operator { return exec.NewHeapScan(m.heap) }

// blockBytes returns the working-set bytes of one full block.
func (m *Matrix) blockBytes() int64 {
	return int64(m.BlockSize) * int64(m.BlockSize) * 4
}

// MultiplyStreaming computes C = A × B relation-centrically with a
// constant-size working set: for each result block (rb, cb) it accumulates
// Σₖ A[rb,k]·B[k,cb] into a single block buffer and writes the finished
// block straight into the result relation. Operand blocks stream through
// the buffer pool (which spills and reloads as needed), so the memory
// footprint is a handful of blocks no matter how large A, B, or C are —
// the property that lets the relation-centric plan complete the Table 3
// workloads whose results exceed machine memory.
//
// The budget, if non-nil, is charged for the four resident blocks
// (accumulator, partial product, two operands); exceeding it returns
// memlimit.ErrOOM.
func MultiplyStreaming(pool *storage.BufferPool, a, b *Matrix, budget *memlimit.Budget) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("blocked: multiply shape mismatch (%d,%d)×(%d,%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("blocked: mismatched block sizes %d vs %d", a.BlockSize, b.BlockSize)
	}
	bs := a.BlockSize
	if budget != nil {
		res, err := budget.TryReserve(4 * a.blockBytes())
		if err != nil {
			return nil, fmt.Errorf("blocked: multiply working set: %w", err)
		}
		defer res.Close()
	}
	out, err := NewEmpty(pool, a.Rows, b.Cols, bs)
	if err != nil {
		return nil, err
	}
	kBlocks := a.NumColBlocks()
	for rb := 0; rb < out.NumRowBlocks(); rb++ {
		for cb := 0; cb < out.NumColBlocks(); cb++ {
			acc := tensor.New(out.blockRows(rb), out.blockCols(cb))
			for k := 0; k < kBlocks; k++ {
				ablk, err := a.Block(rb, k)
				if err != nil {
					return nil, err
				}
				bblk, err := b.Block(k, cb)
				if err != nil {
					return nil, err
				}
				tensor.AddInto(acc, tensor.MatMul(ablk, bblk))
			}
			if err := out.AppendBlock(rb, cb, acc); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MultiplyRelational computes C = A × B by running the literal relational
// plan over the block relations:
//
//	C = γ_{rb,cb; VecSum(data)}( σ map:partial( A ⋈_{A.cb = B.rb} B ) )
//
// i.e. a hash join of the block relations on the shared dimension, a map
// UDF computing each bs×bs partial product, and a grouped vector-sum
// aggregation. This is the paper's rewriting executed verbatim on the
// relational operators; MultiplyStreaming is its co-partitioned
// optimisation.
func MultiplyRelational(pool *storage.BufferPool, a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("blocked: multiply shape mismatch (%d,%d)×(%d,%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("blocked: mismatched block sizes %d vs %d", a.BlockSize, b.BlockSize)
	}
	join, err := exec.NewHashJoin(a.Scan(), b.Scan(), "cb", "rb")
	if err != nil {
		return nil, err
	}
	// Join output columns: rb cb r c data | rb_2 cb_2 r_2 c_2 data_2.
	partial := exec.NewMap(join, blockSchema, func(t table.Tuple) (table.Tuple, error) {
		ar, ac := int(t[2].Int), int(t[3].Int)
		br, bc := int(t[7].Int), int(t[8].Int)
		if ac != br {
			return nil, fmt.Errorf("blocked: inner block dims %d vs %d", ac, br)
		}
		ablk := tensor.FromSlice(t[4].Vec, ar, ac)
		bblk := tensor.FromSlice(t[9].Vec, br, bc)
		p := tensor.MatMul(ablk, bblk)
		return table.Tuple{
			t[0],                    // rb from A
			t[6],                    // cb from B
			table.IntVal(int64(ar)), // result rows
			table.IntVal(int64(bc)), // result cols
			table.VecVal(p.Data()),  // partial product
		}, nil
	})
	agg, err := exec.NewHashAggregate(partial, []string{"rb", "cb", "r", "c"},
		[]exec.AggSpec{{Kind: exec.VecSum, Col: "data", As: "data"}})
	if err != nil {
		return nil, err
	}
	rows, err := exec.Collect(agg)
	if err != nil {
		return nil, err
	}
	out, err := NewEmpty(pool, a.Rows, b.Cols, a.BlockSize)
	if err != nil {
		return nil, err
	}
	for _, t := range rows {
		blk := tensor.FromSlice(t[4].Vec, int(t[2].Int), int(t[3].Int))
		if err := out.AppendBlock(int(t[0].Int), int(t[1].Int), blk); err != nil {
			return nil, err
		}
	}
	return out, nil
}
