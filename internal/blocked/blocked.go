// Package blocked implements the relation-centric tensor representation:
// a matrix is a relation of fixed-size tensor blocks stored in heap pages,
// and a matrix multiplication becomes a join on the shared block index
// followed by an elementwise-sum aggregation — the rewriting at the heart of
// the paper's relation-centric architecture (Sec. 1, Fig. 1; Sec. 7.1).
//
// Because blocks live in buffer-pool pages, a matrix larger than memory
// spills to disk transparently; this is what lets the relation-centric path
// complete the Table 3 workloads where whole-tensor runtimes OOM.
//
// Blocks are independent units of work, so both multiply paths run
// intra-operator parallel: result blocks fan out across workers drawn from
// the shared core budget (internal/parallel), each worker streaming its
// operand blocks through the concurrently-latched buffer pool and heap.
package blocked

import (
	"fmt"
	"sync"

	"tensorbase/internal/exec"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/parallel"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// DefaultBlockSize is the default square block edge. A 64×64 float32 block
// is 16 KiB — half a storage page.
const DefaultBlockSize = 64

// blockSchema is the relation schema of a blocked matrix:
// (rowBlock, colBlock, rows, cols, data).
var blockSchema = table.MustSchema(
	table.Column{Name: "rb", Type: table.Int64},
	table.Column{Name: "cb", Type: table.Int64},
	table.Column{Name: "r", Type: table.Int64},
	table.Column{Name: "c", Type: table.Int64},
	table.Column{Name: "data", Type: table.FloatVec},
)

// BlockSchema returns the relation schema used for blocked matrices.
func BlockSchema() *table.Schema { return blockSchema }

// Matrix is a dense matrix stored as a relation of tensor blocks. Matrix is
// safe for concurrent use: block reads ride the heap's shared latch, and
// appends (heap insert + index update) serialise on the matrix latch, so
// parallel multiply workers append result blocks while others read.
type Matrix struct {
	heap      *table.Heap
	pool      *storage.BufferPool
	Rows      int
	Cols      int
	BlockSize int
	// mu guards rids; the heap has its own latch.
	mu sync.RWMutex
	// rids indexes block coordinates → record id, so co-partitioned
	// access patterns (fetch all blocks of one block-row) need no scan.
	rids map[[2]int]table.RID
}

// NumRowBlocks returns the number of block rows.
func (m *Matrix) NumRowBlocks() int { return ceilDiv(m.Rows, m.BlockSize) }

// NumColBlocks returns the number of block columns.
func (m *Matrix) NumColBlocks() int { return ceilDiv(m.Cols, m.BlockSize) }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Heap exposes the underlying block relation, for relational pipelines.
func (m *Matrix) Heap() *table.Heap { return m.heap }

// Store chunks a dense 2-D tensor into bs×bs blocks and writes them to a
// fresh heap in the pool. Edge blocks are clipped.
func Store(pool *storage.BufferPool, t *tensor.Tensor, bs int) (*Matrix, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("blocked: Store requires a 2-D tensor, got %v", t.Shape())
	}
	if bs < 1 {
		return nil, fmt.Errorf("blocked: block size %d < 1", bs)
	}
	if bs*bs*4 > storage.MaxRecordSize-64 {
		return nil, fmt.Errorf("blocked: block size %d does not fit a page record", bs)
	}
	heap, err := table.NewHeap(pool, blockSchema)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		heap: heap, pool: pool,
		Rows: t.Dim(0), Cols: t.Dim(1), BlockSize: bs,
		rids: make(map[[2]int]table.RID),
	}
	for rb := 0; rb < m.NumRowBlocks(); rb++ {
		for cb := 0; cb < m.NumColBlocks(); cb++ {
			blk := t.Slice2D(rb*bs, (rb+1)*bs, cb*bs, (cb+1)*bs)
			if err := m.putBlock(rb, cb, blk); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// NewEmpty creates a blocked matrix relation with no blocks yet; blocks are
// appended with AppendBlock. Used by producers that generate blocks
// streaming (e.g. the im2col rewriting) instead of from a dense tensor.
func NewEmpty(pool *storage.BufferPool, rows, cols, bs int) (*Matrix, error) {
	if bs < 1 || bs*bs*4 > storage.MaxRecordSize-64 {
		return nil, fmt.Errorf("blocked: invalid block size %d", bs)
	}
	heap, err := table.NewHeap(pool, blockSchema)
	if err != nil {
		return nil, err
	}
	return &Matrix{
		heap: heap, pool: pool,
		Rows: rows, Cols: cols, BlockSize: bs,
		rids: make(map[[2]int]table.RID),
	}, nil
}

// AppendBlock stores blk as block (rb, cb). The block's shape must match
// the clipped block extent at that coordinate. AppendBlock is safe to call
// from concurrent workers producing distinct blocks.
func (m *Matrix) AppendBlock(rb, cb int, blk *tensor.Tensor) error {
	wantR := m.blockRows(rb)
	wantC := m.blockCols(cb)
	if blk.Dim(0) != wantR || blk.Dim(1) != wantC {
		return fmt.Errorf("blocked: block (%d,%d) has shape %v, want (%d,%d)", rb, cb, blk.Shape(), wantR, wantC)
	}
	return m.putBlock(rb, cb, blk)
}

func (m *Matrix) blockRows(rb int) int {
	r := m.Rows - rb*m.BlockSize
	if r > m.BlockSize {
		r = m.BlockSize
	}
	return r
}

func (m *Matrix) blockCols(cb int) int {
	c := m.Cols - cb*m.BlockSize
	if c > m.BlockSize {
		c = m.BlockSize
	}
	return c
}

func (m *Matrix) putBlock(rb, cb int, blk *tensor.Tensor) error {
	rid, err := m.heap.Insert(table.Tuple{
		table.IntVal(int64(rb)),
		table.IntVal(int64(cb)),
		table.IntVal(int64(blk.Dim(0))),
		table.IntVal(int64(blk.Dim(1))),
		table.VecVal(blk.Data()),
	})
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.rids[[2]int{rb, cb}] = rid
	m.mu.Unlock()
	return nil
}

// rid looks up the record id of block (rb, cb) under the matrix latch.
func (m *Matrix) rid(rb, cb int) (table.RID, bool) {
	m.mu.RLock()
	rid, ok := m.rids[[2]int{rb, cb}]
	m.mu.RUnlock()
	return rid, ok
}

// Block fetches block (rb, cb) through the buffer pool.
func (m *Matrix) Block(rb, cb int) (*tensor.Tensor, error) {
	rid, ok := m.rid(rb, cb)
	if !ok {
		return nil, fmt.Errorf("blocked: no block (%d,%d)", rb, cb)
	}
	t, err := m.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	r, c := int(t[2].Int), int(t[3].Int)
	if r*c != len(t[4].Vec) {
		return nil, fmt.Errorf("blocked: block (%d,%d) dims %dx%d but %d floats", rb, cb, r, c, len(t[4].Vec))
	}
	return tensor.FromSlice(t[4].Vec, r, c), nil
}

// blockInto fetches block (rb, cb) into the caller's reusable buffers:
// the tuple header and float scratch cycle through table.DecodeInto, and
// view is repointed at the decoded payload. This is the allocation-free
// fetch the multiply inner loop runs per k-step; the view is valid only
// until the next blockInto with the same buffers.
func (m *Matrix) blockInto(rb, cb int, view *tensor.Tensor, t table.Tuple, scratch []float32) (table.Tuple, []float32, error) {
	rid, ok := m.rid(rb, cb)
	if !ok {
		return t, scratch, fmt.Errorf("blocked: no block (%d,%d)", rb, cb)
	}
	t, scratch, err := m.heap.GetInto(rid, t, scratch)
	if err != nil {
		return t, scratch, err
	}
	r, c := int(t[2].Int), int(t[3].Int)
	if r*c != len(t[4].Vec) {
		return t, scratch, fmt.Errorf("blocked: block (%d,%d) dims %dx%d but %d floats", rb, cb, r, c, len(t[4].Vec))
	}
	view.Reuse2D(t[4].Vec, r, c)
	return t, scratch, nil
}

// Assemble reconstructs the dense tensor. Intended for verification and
// small results; it allocates the full matrix.
func (m *Matrix) Assemble() (*tensor.Tensor, error) {
	out := tensor.New(m.Rows, m.Cols)
	for rb := 0; rb < m.NumRowBlocks(); rb++ {
		for cb := 0; cb < m.NumColBlocks(); cb++ {
			blk, err := m.Block(rb, cb)
			if err != nil {
				return nil, err
			}
			out.SetBlock2D(blk, rb*m.BlockSize, cb*m.BlockSize)
		}
	}
	return out, nil
}

// Scan returns a relational scan over the block relation.
func (m *Matrix) Scan() exec.Operator { return exec.NewHeapScan(m.heap) }

// blockBytes returns the working-set bytes of one full block.
func (m *Matrix) blockBytes() int64 {
	return int64(m.BlockSize) * int64(m.BlockSize) * 4
}

// mulScratch is one multiply worker's reusable state: the block accumulator
// plus decode buffers for the two operand fetches. Workers draw it from a
// sync.Pool so repeated multiplies (layer after layer of one inference)
// recycle the same buffers instead of re-allocating per result block.
type mulScratch struct {
	acc, a, b  tensor.Tensor
	accBuf     []float32
	aT, bT     table.Tuple
	aScr, bScr []float32
}

// MultiplyStreaming computes C = A × B relation-centrically with a
// bounded working set: each result block (rb, cb) accumulates
// Σₖ A[rb,k]·B[k,cb] into a per-worker block buffer via the fused
// MatMulAddAutoInto kernel — which falls back to the zero-skipping sparse
// variant when an operand block proves >50% zeros — and is written straight
// into the result relation.
// Operand blocks stream through the buffer pool (which spills and reloads
// as needed), so the memory footprint is a handful of blocks per worker no
// matter how large A, B, or C are — the property that lets the
// relation-centric plan complete the Table 3 workloads whose results
// exceed machine memory.
//
// Result blocks fan out across workers drawn from the shared core budget.
// Each block's k-loop is identical to the serial one, and blocks are
// addressed by coordinate, so the parallel result is bit-identical to the
// serial result.
//
// The budget, if non-nil, is charged three resident blocks (accumulator
// and two operands) per worker; if the reservation does not fit, the
// worker count sheds until it does, and a single worker's working set
// exceeding the budget returns memlimit.ErrOOM.
func MultiplyStreaming(pool *storage.BufferPool, a, b *Matrix, budget *memlimit.Budget) (*Matrix, error) {
	return multiplyStreaming(pool, a, b, budget, 0, nil)
}

// MultiplyStreamingCancel is MultiplyStreaming observing a cancellation
// token: every worker checks tok once per k-step (one block multiply), so a
// cancelled query stops within one block's work, releases its budget
// tokens, and returns the context's error.
func MultiplyStreamingCancel(pool *storage.BufferPool, a, b *Matrix, budget *memlimit.Budget, tok *lifecycle.Token) (*Matrix, error) {
	return multiplyStreaming(pool, a, b, budget, 0, tok)
}

// MultiplyStreamingWorkers is MultiplyStreaming with an explicit worker
// count: workers <= 0 sizes the fan-out from the shared core budget
// (internal/parallel); workers >= 1 forces exactly that many, which
// benchmark sweeps use to measure scaling.
func MultiplyStreamingWorkers(pool *storage.BufferPool, a, b *Matrix, budget *memlimit.Budget, workers int) (*Matrix, error) {
	return multiplyStreaming(pool, a, b, budget, workers, nil)
}

func multiplyStreaming(pool *storage.BufferPool, a, b *Matrix, budget *memlimit.Budget, workers int, tok *lifecycle.Token) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("blocked: multiply shape mismatch (%d,%d)×(%d,%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("blocked: mismatched block sizes %d vs %d", a.BlockSize, b.BlockSize)
	}
	bs := a.BlockSize
	out, err := NewEmpty(pool, a.Rows, b.Cols, bs)
	if err != nil {
		return nil, err
	}
	ncb := out.NumColBlocks()
	ntasks := out.NumRowBlocks() * ncb

	// Size the fan-out: engine-level block workers draw tokens from the
	// same budget the tensor kernels do, so the two levels of parallelism
	// cannot multiply into oversubscription. (The tokens are held for the
	// whole multiply; kernels inside the workers then find the budget
	// drained and run serially — block-level parallelism wins, per Sec. 3.)
	shared := parallel.Default()
	extras := 0
	if workers <= 0 {
		want := min(shared.Total(), ntasks)
		extras = shared.TryAcquireUpTo(want - 1)
		workers = 1 + extras
	} else if workers > ntasks {
		workers = ntasks
	}
	if workers < 1 {
		workers = 1
	}
	releaseExtras := func() {
		if extras > 0 {
			shared.Release(extras)
			extras = 0
		}
	}

	// Charge the memory budget three resident blocks per worker, shedding
	// workers if the reservation does not fit.
	if budget != nil {
		for {
			res, rerr := budget.TryReserve(3 * int64(workers) * a.blockBytes())
			if rerr == nil {
				defer res.Close()
				break
			}
			if workers == 1 {
				releaseExtras()
				return nil, fmt.Errorf("blocked: multiply working set: %w", rerr)
			}
			workers = (workers + 1) / 2
			if extras > workers-1 {
				shared.Release(extras - (workers - 1))
				extras = workers - 1
			}
		}
	}

	scratch := sync.Pool{New: func() any {
		return &mulScratch{accBuf: make([]float32, bs*bs)}
	}}
	kBlocks := a.NumColBlocks()
	task := func(i int) error {
		rb, cb := i/ncb, i%ncb
		ws := scratch.Get().(*mulScratch)
		defer scratch.Put(ws)
		r, c := out.blockRows(rb), out.blockCols(cb)
		accData := ws.accBuf[:r*c]
		clear(accData)
		ws.acc.Reuse2D(accData, r, c)
		for k := 0; k < kBlocks; k++ {
			if err := tok.Err(); err != nil {
				return err
			}
			var err error
			ws.aT, ws.aScr, err = a.blockInto(rb, k, &ws.a, ws.aT, ws.aScr)
			if err != nil {
				return err
			}
			ws.bT, ws.bScr, err = b.blockInto(k, cb, &ws.b, ws.bT, ws.bScr)
			if err != nil {
				return err
			}
			tensor.MatMulAddAutoInto(&ws.acc, &ws.a, &ws.b)
		}
		return out.AppendBlock(rb, cb, &ws.acc)
	}
	err = parallel.RunCancel(tok, workers, ntasks, task)
	releaseExtras()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MultiplyRelational computes C = A × B by running the literal relational
// plan over the block relations:
//
//	C = γ_{rb,cb; MatMulSum(data)}( A ⋈_{A.cb = B.rb} B )
//
// i.e. a hash join of the block relations on the shared dimension followed
// by a grouped user-defined aggregate. The original plan's map UDF (the
// bs×bs partial product) and VecSum aggregation are fused into one fold
// that calls tensor.MatMulAddAutoInto, so each joined block pair accumulates
// straight into its group's result block without materialising a partial-
// product tuple. The aggregate is hash-partitioned on the result
// coordinates (rb, cb) with one worker per partition (exec.PartitionedAgg),
// which parallelises the pipeline while keeping every group's fold order —
// and therefore the result — identical to serial execution. This is the
// paper's rewriting executed on the relational operators; MultiplyStreaming
// is its co-partitioned optimisation.
func MultiplyRelational(pool *storage.BufferPool, a, b *Matrix) (*Matrix, error) {
	return multiplyRelational(pool, a, b, 0, nil)
}

// MultiplyRelationalCancel is MultiplyRelational observing a cancellation
// token, installed on the join and the partitioned aggregate of the plan.
func MultiplyRelationalCancel(pool *storage.BufferPool, a, b *Matrix, tok *lifecycle.Token) (*Matrix, error) {
	return multiplyRelational(pool, a, b, 0, tok)
}

// MultiplyRelationalWorkers is MultiplyRelational with an explicit
// aggregate worker count (<= 0 sizes from the shared core budget).
func MultiplyRelationalWorkers(pool *storage.BufferPool, a, b *Matrix, workers int) (*Matrix, error) {
	return multiplyRelational(pool, a, b, workers, nil)
}

func multiplyRelational(pool *storage.BufferPool, a, b *Matrix, workers int, tok *lifecycle.Token) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("blocked: multiply shape mismatch (%d,%d)×(%d,%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("blocked: mismatched block sizes %d vs %d", a.BlockSize, b.BlockSize)
	}
	join, err := exec.NewHashJoin(a.Scan(), b.Scan(), "cb", "rb")
	if err != nil {
		return nil, err
	}
	// Join output columns: rb cb r c data | rb_2 cb_2 r_2 c_2 data_2.
	// MatMulSum fold: C[rb,cb] += A-block × B-block, fused via MatMulAddAutoInto.
	fold := func(acc []float32, t table.Tuple) ([]float32, error) {
		ar, ac := int(t[2].Int), int(t[3].Int)
		br, bc := int(t[7].Int), int(t[8].Int)
		if ac != br {
			return nil, fmt.Errorf("blocked: inner block dims %d vs %d", ac, br)
		}
		if acc == nil {
			acc = make([]float32, ar*bc)
		}
		tensor.MatMulAddAutoInto(
			tensor.FromSlice(acc, ar, bc),
			tensor.FromSlice(t[4].Vec, ar, ac),
			tensor.FromSlice(t[9].Vec, br, bc),
		)
		return acc, nil
	}
	agg, err := exec.NewPartitionedAggregate(join,
		[]string{"rb", "cb_2", "r", "c_2"},
		[]exec.AggSpec{{Kind: exec.VecFold, Fold: fold, As: "data"}},
		workers)
	if err != nil {
		return nil, err
	}
	// One token across the plan: the scans stop per tuple, the join build
	// and aggregate feed loops stop per tuple.
	exec.SetCancel(join, tok)
	agg.SetCancel(tok)
	rows, err := exec.Collect(agg)
	if err != nil {
		return nil, err
	}
	out, err := NewEmpty(pool, a.Rows, b.Cols, a.BlockSize)
	if err != nil {
		return nil, err
	}
	for _, t := range rows {
		blk := tensor.FromSlice(t[4].Vec, int(t[2].Int), int(t[3].Int))
		if err := out.AppendBlock(int(t[0].Int), int(t[1].Int), blk); err != nil {
			return nil, err
		}
	}
	return out, nil
}
