package blocked

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"tensorbase/internal/memlimit"
	"tensorbase/internal/storage"
	"tensorbase/internal/tensor"
)

func newPool(t *testing.T, frames int) *storage.BufferPool {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "b.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return storage.NewBufferPool(d, frames)
}

func randMat(r *rand.Rand, rows, cols int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	for i := range t.Data() {
		t.Data()[i] = float32(r.NormFloat64())
	}
	return t
}

func TestStoreAssembleRoundTrip(t *testing.T) {
	pool := newPool(t, 16)
	rng := rand.New(rand.NewSource(1))
	in := randMat(rng, 37, 53) // deliberately not block-aligned
	m, err := Store(pool, in, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRowBlocks() != 3 || m.NumColBlocks() != 4 {
		t.Fatalf("blocks = %dx%d", m.NumRowBlocks(), m.NumColBlocks())
	}
	out, err := m.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Fatal("assemble != original")
	}
}

func TestBlockFetchEdgeClipping(t *testing.T) {
	pool := newPool(t, 16)
	in := tensor.New(10, 10)
	m, err := Store(pool, in, 8)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := m.Block(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Dim(0) != 2 || blk.Dim(1) != 2 {
		t.Fatalf("edge block shape %v, want (2,2)", blk.Shape())
	}
	if _, err := m.Block(5, 5); err == nil {
		t.Fatal("missing block must error")
	}
}

func TestStoreRejectsBadInputs(t *testing.T) {
	pool := newPool(t, 8)
	if _, err := Store(pool, tensor.New(2, 2, 2), 8); err == nil {
		t.Fatal("3-D tensor must be rejected")
	}
	if _, err := Store(pool, tensor.New(4, 4), 0); err == nil {
		t.Fatal("zero block size must be rejected")
	}
	if _, err := Store(pool, tensor.New(4, 4), 10000); err == nil {
		t.Fatal("block larger than a page must be rejected")
	}
}

func TestAppendBlockValidatesShape(t *testing.T) {
	pool := newPool(t, 8)
	m, err := NewEmpty(pool, 10, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendBlock(0, 0, tensor.New(4, 4)); err == nil {
		t.Fatal("wrong block shape must be rejected")
	}
	if err := m.AppendBlock(1, 1, tensor.New(2, 2)); err != nil {
		t.Fatalf("edge block rejected: %v", err)
	}
}

func TestMultiplyStreamingMatchesDense(t *testing.T) {
	pool := newPool(t, 32)
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 30, 45)
	b := randMat(rng, 45, 25)
	ab, err := Store(pool, a, 16)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Store(pool, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MultiplyStreaming(pool, ab, bb, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MatMul(a, b)
	if !got.AlmostEqual(want, 1e-3) {
		t.Fatal("streaming blocked multiply disagrees with dense matmul")
	}
}

func TestMultiplyRelationalMatchesDense(t *testing.T) {
	pool := newPool(t, 64)
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 20, 33)
	b := randMat(rng, 33, 17)
	ab, err := Store(pool, a, 8)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Store(pool, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MultiplyRelational(pool, ab, bb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MatMul(a, b)
	if !got.AlmostEqual(want, 1e-3) {
		t.Fatal("relational blocked multiply (join + aggregation) disagrees with dense matmul")
	}
}

// Property: both relation-centric multiply implementations agree with the
// dense kernel for random shapes and block sizes.
func TestMultiplyEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(24)
		k := 1 + r.Intn(24)
		n := 1 + r.Intn(24)
		bs := 1 + r.Intn(12)
		pool := newPoolQuick()
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		ab, err := Store(pool, a, bs)
		if err != nil {
			return false
		}
		bb, err := Store(pool, b, bs)
		if err != nil {
			return false
		}
		want := tensor.MatMul(a, b)
		cs, err := MultiplyStreaming(pool, ab, bb, nil)
		if err != nil {
			return false
		}
		gs, err := cs.Assemble()
		if err != nil || !gs.AlmostEqual(want, 1e-2) {
			return false
		}
		cr, err := MultiplyRelational(pool, ab, bb)
		if err != nil {
			return false
		}
		gr, err := cr.Assemble()
		return err == nil && gr.AlmostEqual(want, 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// newPoolQuick builds a pool for property iterations without a *testing.T.
// Each call gets a distinct backing file in a shared temp dir.
func newPoolQuick() *storage.BufferPool {
	f, err := os.CreateTemp(tempDirQuick, "quick-*.db")
	if err != nil {
		panic(err)
	}
	path := f.Name()
	f.Close()
	d, err := storage.OpenDisk(path)
	if err != nil {
		panic(err)
	}
	return storage.NewBufferPool(d, 64)
}

var tempDirQuick string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "blocked-test-")
	if err != nil {
		panic(err)
	}
	tempDirQuick = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestMultiplyShapeMismatch(t *testing.T) {
	pool := newPool(t, 16)
	a, _ := Store(pool, tensor.New(4, 5), 4)
	b, _ := Store(pool, tensor.New(6, 4), 4)
	if _, err := MultiplyStreaming(pool, a, b, nil); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if _, err := MultiplyRelational(pool, a, b); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestMultiplyBlockSizeMismatch(t *testing.T) {
	pool := newPool(t, 16)
	a, _ := Store(pool, tensor.New(4, 4), 4)
	b, _ := Store(pool, tensor.New(4, 4), 2)
	if _, err := MultiplyStreaming(pool, a, b, nil); err == nil {
		t.Fatal("block size mismatch must error")
	}
}

func TestMultiplyStreamingRespectsBudget(t *testing.T) {
	pool := newPool(t, 32)
	rng := rand.New(rand.NewSource(4))
	a, _ := Store(pool, randMat(rng, 64, 64), 16)
	b, _ := Store(pool, randMat(rng, 64, 64), 16)
	tiny := memlimit.NewBudget(100) // far below the C working set
	if _, err := MultiplyStreaming(pool, a, b, tiny); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	// And it must release its reservation on failure.
	if tiny.Reserved() != 0 {
		t.Fatalf("leaked %d bytes", tiny.Reserved())
	}
	big := memlimit.NewBudget(1 << 20)
	if _, err := MultiplyStreaming(pool, a, b, big); err != nil {
		t.Fatal(err)
	}
	if big.Reserved() != 0 {
		t.Fatalf("budget not released: %d", big.Reserved())
	}
}

func TestMultiplyLargerThanBufferPool(t *testing.T) {
	// Operands spanning many more pages than the pool has frames must
	// still multiply correctly — the buffer pool spills and reloads.
	pool := newPool(t, 4)
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 100, 120)
	b := randMat(rng, 120, 80)
	ab, err := Store(pool, a, 16)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Store(pool, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MultiplyStreaming(pool, ab, bb, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(tensor.MatMul(a, b), 1e-2) {
		t.Fatal("result wrong under buffer-pool pressure")
	}
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions with a 4-frame pool")
	}
}

func TestStoreIm2ColMatchesDenseIm2Col(t *testing.T) {
	pool := newPool(t, 32)
	rng := rand.New(rand.NewSource(6))
	in := tensor.New(2, 7, 6, 3)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	f, err := StoreIm2Col(pool, in, 2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Im2Col(in, 2, 2)
	if !got.Equal(want) {
		t.Fatal("blocked im2col disagrees with dense im2col")
	}
}

func TestConv2DRelationalMatchesDirectConv(t *testing.T) {
	pool := newPool(t, 64)
	rng := rand.New(rand.NewSource(7))
	in := tensor.New(1, 9, 9, 3)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	kern := tensor.New(5, 1, 1, 3) // LandCover-style 1×1 kernels
	for i := range kern.Data() {
		kern.Data()[i] = float32(rng.NormFloat64())
	}
	c, err := Conv2DRelational(pool, in, kern, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Conv2D(in, kern) // (1,9,9,5)
	wantMat := want.Reshape(81, 5)
	if !got.AlmostEqual(wantMat, 1e-3) {
		t.Fatal("relational conv disagrees with direct conv")
	}
}
