package blocked

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"

	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// Accuracy-aware deduplication (Sec. 4): unlike relational data, tensor
// data tolerates bounded error, so blocks that are identical — or within an
// elementwise error bound ε — across models can share storage. DedupStore
// owns one block heap; matrices stored through it reference shared records,
// and near-duplicate blocks (|aᵢ−bᵢ| ≤ ε for every element) reuse an
// existing block instead of writing a new one. With ε = 0 only exact
// duplicates share.
//
// Matrices from a DedupStore support the block-indexed access paths
// (Block, Assemble, MultiplyStreaming); the whole-heap Scan sees the shared
// pool, not one matrix, and is therefore not meaningful per matrix.
type DedupStore struct {
	pool *storage.BufferPool
	heap *table.Heap
	bs   int
	eps  float32
	seed maphash.Seed
	// buckets: grid-quantised content hash → stored blocks. Blocks whose
	// elements all quantise to the same grid cell are candidates; an
	// exact elementwise verification enforces the ε bound.
	buckets map[uint64][]dedupEntry

	// Stats.
	stored int64 // blocks passed to Store
	shared int64 // blocks that reused an existing record
	saved  int64 // bytes not written thanks to sharing
}

type dedupEntry struct {
	rid  table.RID
	data []float32 // retained for verification
	rows int
	cols int
}

// NewDedupStore returns a dedup store with block size bs and elementwise
// error bound eps (0 = exact-only sharing).
func NewDedupStore(pool *storage.BufferPool, bs int, eps float32) (*DedupStore, error) {
	if bs < 1 || bs*bs*4 > storage.MaxRecordSize-64 {
		return nil, fmt.Errorf("blocked: invalid dedup block size %d", bs)
	}
	if eps < 0 {
		return nil, fmt.Errorf("blocked: negative dedup epsilon %g", eps)
	}
	heap, err := table.NewHeap(pool, blockSchema)
	if err != nil {
		return nil, err
	}
	return &DedupStore{
		pool:    pool,
		heap:    heap,
		bs:      bs,
		eps:     eps,
		seed:    maphash.MakeSeed(),
		buckets: make(map[uint64][]dedupEntry),
	}, nil
}

// Stats returns (blocks stored, blocks shared, bytes saved).
func (s *DedupStore) Stats() (stored, shared, bytesSaved int64) {
	return s.stored, s.shared, s.saved
}

// signature hashes each element's ε-grid cell, so any two blocks whose
// elements fall in the same cells collide. Verification afterwards makes
// the bound exact; grid-boundary near-duplicates may simply not share
// (dedup is best-effort).
func (s *DedupStore) signature(rows, cols int, data []float32) uint64 {
	var h maphash.Hash
	h.SetSeed(s.seed)
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(rows))
	binary.LittleEndian.PutUint32(buf[4:], uint32(cols))
	h.Write(buf[:])
	cell := s.eps * 2
	for _, v := range data {
		var q int64
		if cell > 0 {
			q = int64(math.Floor(float64(v / cell)))
		} else {
			q = int64(math.Float32bits(v))
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(q))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// withinEps reports whether every element pair differs by at most eps.
func withinEps(a, b []float32, eps float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// Store chunks t into blocks, sharing each block with an existing ε-close
// one when possible, and returns the matrix view.
func (s *DedupStore) Store(t *tensor.Tensor) (*Matrix, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("blocked: DedupStore.Store requires a 2-D tensor, got %v", t.Shape())
	}
	m := &Matrix{
		heap: s.heap, pool: s.pool,
		Rows: t.Dim(0), Cols: t.Dim(1), BlockSize: s.bs,
		rids: make(map[[2]int]table.RID),
	}
	for rb := 0; rb < m.NumRowBlocks(); rb++ {
		for cb := 0; cb < m.NumColBlocks(); cb++ {
			blk := t.Slice2D(rb*s.bs, (rb+1)*s.bs, cb*s.bs, (cb+1)*s.bs)
			rid, err := s.storeBlock(blk)
			if err != nil {
				return nil, err
			}
			m.rids[[2]int{rb, cb}] = rid
		}
	}
	return m, nil
}

func (s *DedupStore) storeBlock(blk *tensor.Tensor) (table.RID, error) {
	s.stored++
	sig := s.signature(blk.Dim(0), blk.Dim(1), blk.Data())
	for _, e := range s.buckets[sig] {
		if e.rows == blk.Dim(0) && e.cols == blk.Dim(1) && withinEps(e.data, blk.Data(), s.eps) {
			s.shared++
			s.saved += blk.Bytes()
			return e.rid, nil
		}
	}
	rid, err := s.heap.Insert(table.Tuple{
		table.IntVal(0), // coordinates are per-matrix; the pool stores content only
		table.IntVal(0),
		table.IntVal(int64(blk.Dim(0))),
		table.IntVal(int64(blk.Dim(1))),
		table.VecVal(blk.Data()),
	})
	if err != nil {
		return table.RID{}, err
	}
	s.buckets[sig] = append(s.buckets[sig], dedupEntry{
		rid:  rid,
		data: append([]float32(nil), blk.Data()...),
		rows: blk.Dim(0),
		cols: blk.Dim(1),
	})
	return rid, nil
}
