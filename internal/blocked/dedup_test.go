package blocked

import (
	"math/rand"
	"testing"

	"tensorbase/internal/tensor"
)

func TestDedupExactDuplicatesShare(t *testing.T) {
	pool := newPool(t, 32)
	s, err := NewDedupStore(pool, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	w := randMat(rng, 48, 48) // 9 blocks
	m1, err := s.Store(w)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Store(w.Clone()) // same content, different tensor
	if err != nil {
		t.Fatal(err)
	}
	stored, shared, saved := s.Stats()
	if stored != 18 || shared != 9 {
		t.Fatalf("stats: stored=%d shared=%d", stored, shared)
	}
	if saved != w.Bytes() {
		t.Fatalf("saved %d bytes, want %d", saved, w.Bytes())
	}
	// Both views must still assemble correctly.
	a1, err := m1.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(w) || !a2.Equal(w) {
		t.Fatal("deduped matrices assemble incorrectly")
	}
}

func TestDedupEpsilonSharingBoundsError(t *testing.T) {
	pool := newPool(t, 32)
	const eps = 0.01
	s, err := NewDedupStore(pool, 16, eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	w := randMat(rng, 32, 32)
	if _, err := s.Store(w); err != nil {
		t.Fatal(err)
	}
	// Perturb within a small fraction of eps: blocks should mostly share
	// (grid hashing is best-effort, so require > 0 rather than all).
	wp := w.Clone()
	for i := range wp.Data() {
		wp.Data()[i] += (rng.Float32()*2 - 1) * eps / 100
	}
	m2, err := s.Store(wp)
	if err != nil {
		t.Fatal(err)
	}
	_, shared, _ := s.Stats()
	if shared == 0 {
		t.Fatal("no blocks shared despite sub-epsilon perturbation")
	}
	// The error bound must hold: every element of the deduped view is
	// within eps of the stored tensor it represents.
	got, err := m2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Data() {
		d := v - wp.Data()[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			t.Fatalf("element %d off by %v > eps %v", i, d, eps)
		}
	}
}

func TestDedupDistinctBlocksDoNotShare(t *testing.T) {
	pool := newPool(t, 32)
	s, err := NewDedupStore(pool, 16, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	if _, err := s.Store(randMat(rng, 32, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Store(randMat(rng, 32, 32)); err != nil {
		t.Fatal(err)
	}
	_, shared, _ := s.Stats()
	if shared != 0 {
		t.Fatalf("independent random matrices shared %d blocks", shared)
	}
}

func TestDedupValidation(t *testing.T) {
	pool := newPool(t, 8)
	if _, err := NewDedupStore(pool, 0, 0); err == nil {
		t.Fatal("block size 0 must error")
	}
	if _, err := NewDedupStore(pool, 16, -1); err == nil {
		t.Fatal("negative eps must error")
	}
	s, err := NewDedupStore(pool, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Store(tensor.New(2, 2, 2)); err == nil {
		t.Fatal("3-D tensor must error")
	}
}

func TestDedupMatricesMultiplyCorrectly(t *testing.T) {
	// The headline use: many models sharing near-duplicate weights still
	// compute correctly through the relation-centric path.
	pool := newPool(t, 64)
	s, err := NewDedupStore(pool, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(54))
	w := randMat(rng, 32, 24)
	wm, err := s.Store(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Store(w.Clone()); err != nil { // a duplicate "model"
		t.Fatal(err)
	}
	x := randMat(rng, 10, 32)
	xm, err := Store(pool, x, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MultiplyStreaming(pool, xm, wm, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(tensor.MatMul(x, w), 1e-3) {
		t.Fatal("multiply through deduped weights is wrong")
	}
}
