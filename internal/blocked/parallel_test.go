package blocked

import (
	"math/rand"
	"sync"
	"testing"

	"tensorbase/internal/memlimit"
	"tensorbase/internal/parallel"
	"tensorbase/internal/tensor"
)

// Parallel MultiplyStreaming must be bit-identical to serial: every result
// block is computed wholly by one worker in the same k-order, so not even
// float rounding may differ.
func TestMultiplyStreamingParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randMat(rng, 100, 130)
	b := randMat(rng, 130, 70)
	var serial *tensor.Tensor
	for _, workers := range []int{1, 2, 4, 8} {
		pool := newPool(t, 32)
		ab, err := Store(pool, a, 16)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := Store(pool, b, 16)
		if err != nil {
			t.Fatal(err)
		}
		c, err := MultiplyStreamingWorkers(pool, ab, bb, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			serial = got
			continue
		}
		if !got.Equal(serial) {
			t.Fatalf("workers=%d: parallel result differs from serial", workers)
		}
	}
}

func TestMultiplyRelationalParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 48, 64)
	b := randMat(rng, 64, 32)
	var serial *tensor.Tensor
	for _, workers := range []int{1, 2, 5} {
		pool := newPool(t, 64)
		ab, err := Store(pool, a, 16)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := Store(pool, b, 16)
		if err != nil {
			t.Fatal(err)
		}
		c, err := MultiplyRelationalWorkers(pool, ab, bb, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			serial = got
			continue
		}
		if !got.Equal(serial) {
			t.Fatalf("workers=%d: partitioned aggregate result differs from serial", workers)
		}
	}
}

// Parallel multiply under a pool far smaller than the operands: workers
// race on fetch, eviction, and reload of the same pages, and the result
// must still match the serial one exactly. Run under -race this is the
// buffer-pool/heap latching stress test.
func TestMultiplyStreamingParallelUnderEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 256, 256)
	b := randMat(rng, 256, 256)

	// 64×64 blocks are 16 KiB — one per 32 KiB page — so each operand spans
	// 16 pages and the result another 16. Heap inserts serialise on the
	// write latch, so simultaneous pins are bounded by workers+1 = 5; an
	// 8-frame pool always has a victim yet still evicts constantly.
	serialPool := newPool(t, 8)
	sa, _ := Store(serialPool, a, 64)
	sb, _ := Store(serialPool, b, 64)
	sc, err := MultiplyStreamingWorkers(serialPool, sa, sb, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	pool := newPool(t, 8)
	pa, _ := Store(pool, a, 64)
	pb, _ := Store(pool, b, 64)
	pc, err := MultiplyStreamingWorkers(pool, pa, pb, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pc.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("spilling parallel multiply differs from serial")
	}
	if pool.Stats().Evictions == 0 {
		t.Fatal("test did not force evictions")
	}
}

// N goroutines hammering Matrix.Block on a spill-forcing 2-frame pool must
// each read exactly the stored bytes — the concurrent-miss path of the
// buffer pool (two workers racing to load the same evicted page) must never
// surface half-read frames.
func TestConcurrentBlockReadsUnderSpill(t *testing.T) {
	// 16 one-page blocks over a 6-frame pool: fetches constantly evict and
	// reload, and concurrent misses on the same page race. 4 readers each
	// pin at most one page, so a victim frame always exists.
	pool := newPool(t, 6)
	rng := rand.New(rand.NewSource(13))
	in := randMat(rng, 256, 256)
	m, err := Store(pool, in, 64)
	if err != nil {
		t.Fatal(err)
	}
	nrb, ncb := m.NumRowBlocks(), m.NumColBlocks()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				rb, cb := r.Intn(nrb), r.Intn(ncb)
				blk, err := m.Block(rb, cb)
				if err != nil {
					errs <- err
					return
				}
				want := in.Slice2D(rb*64, (rb+1)*64, cb*64, (cb+1)*64)
				if !blk.Equal(want) {
					errs <- errBlockMismatch{rb, cb}
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errBlockMismatch struct{ rb, cb int }

func (e errBlockMismatch) Error() string {
	return "concurrent read of block returned wrong bytes"
}

// The k-loop of MultiplyStreaming must not allocate per k-step: doubling
// the inner dimension (twice the k-iterations) must not increase the total
// allocation count. The per-task costs (accumulator pooling, result
// insert) stay; the per-k-step costs must be zero.
func TestMultiplyStreamingAllocsIndependentOfK(t *testing.T) {
	const bs = 16
	measure := func(k int) float64 {
		pool := newPool(t, 64)
		rng := rand.New(rand.NewSource(14))
		ab, err := Store(pool, randMat(rng, bs, k), bs)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := Store(pool, randMat(rng, k, bs), bs)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := MultiplyStreamingWorkers(pool, ab, bb, nil, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	few := measure(4 * bs)   // 4 k-steps for the single result block
	many := measure(16 * bs) // 16 k-steps
	// Allow a little slack for map growth in the result matrix.
	if many > few+2 {
		t.Fatalf("allocs grew with k: %0.1f at k=4 blocks vs %0.1f at k=16 blocks", few, many)
	}
}

// Block-level workers and the memory budget interact: the scheduler sheds
// workers until the per-worker working set fits, and degrades to the serial
// footprint rather than failing, while a budget below even one worker's
// working set still reports OOM.
func TestMultiplyStreamingWorkerShedding(t *testing.T) {
	pool := newPool(t, 32)
	rng := rand.New(rand.NewSource(15))
	a, _ := Store(pool, randMat(rng, 64, 64), 16)
	b, _ := Store(pool, randMat(rng, 64, 64), 16)
	// 3 blocks/worker × 1 KiB blocks: 4 KiB holds exactly one worker.
	oneWorker := memlimit.NewBudget(4 << 10)
	if _, err := MultiplyStreamingWorkers(pool, a, b, oneWorker, 8); err != nil {
		t.Fatalf("shedding to one worker should succeed, got %v", err)
	}
	if oneWorker.Reserved() != 0 {
		t.Fatalf("leaked %d bytes", oneWorker.Reserved())
	}
	if peak := oneWorker.Peak(); peak > 3<<10 {
		t.Fatalf("shed run reserved %d bytes, want the serial footprint 3072", peak)
	}
}

// Unforced multiplies size their fan-out from the shared budget and must
// return every token.
func TestMultiplyStreamingReturnsBudgetTokens(t *testing.T) {
	shared := parallel.NewBudget(4)
	prev := parallel.SetDefault(shared)
	defer parallel.SetDefault(prev)

	pool := newPool(t, 32)
	rng := rand.New(rand.NewSource(16))
	a, _ := Store(pool, randMat(rng, 64, 64), 16)
	b, _ := Store(pool, randMat(rng, 64, 64), 16)
	if _, err := MultiplyStreaming(pool, a, b, nil); err != nil {
		t.Fatal(err)
	}
	if shared.InUse() != 0 {
		t.Fatalf("multiply leaked %d budget tokens", shared.InUse())
	}
	if hw := shared.HighWater(); hw > 4 {
		t.Fatalf("high water %d exceeds budget", hw)
	}
}
