package blocked

import (
	"fmt"

	"tensorbase/internal/memlimit"
	"tensorbase/internal/storage"
	"tensorbase/internal/tensor"
)

// StoreIm2Col applies the spatial rewriting of Sec. 7.1 to a convolution
// input and stores the resulting patch matrix F — shape
// (n·outH·outW, kh·kw·c) — as a blocked relation, generating F one block row
// at a time so the full patch matrix is never resident. For the LandCover
// workload F has 6.25 million rows per image at paper scale, which is
// exactly why it must stream through the buffer pool.
func StoreIm2Col(pool *storage.BufferPool, input *tensor.Tensor, kh, kw, bs int) (*Matrix, error) {
	if input.Rank() != 4 {
		return nil, fmt.Errorf("blocked: StoreIm2Col requires NHWC input, got %v", input.Shape())
	}
	n, h, w, c := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("blocked: kernel %dx%d larger than input %dx%d", kh, kw, h, w)
	}
	rows := n * oh * ow
	cols := kh * kw * c
	f, err := NewEmpty(pool, rows, cols, bs)
	if err != nil {
		return nil, err
	}
	in := input.Data()
	for rb := 0; rb < f.NumRowBlocks(); rb++ {
		r0 := rb * bs
		r1 := min(r0+bs, rows)
		slab := tensor.New(r1-r0, cols)
		for r := r0; r < r1; r++ {
			// Decompose the global patch index into (batch, y, x).
			b := r / (oh * ow)
			rem := r % (oh * ow)
			y := rem / ow
			x := rem % ow
			dst := slab.Row(r - r0)
			di := 0
			for ky := 0; ky < kh; ky++ {
				srcOff := ((b*h+y+ky)*w + x) * c
				copy(dst[di:di+kw*c], in[srcOff:srcOff+kw*c])
				di += kw * c
			}
		}
		for cb := 0; cb < f.NumColBlocks(); cb++ {
			blk := slab.Slice2D(0, r1-r0, cb*bs, (cb+1)*bs)
			if err := f.AppendBlock(rb, cb, blk); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

// Conv2DRelational executes a stride-1, no-padding convolution as the
// relation-centric plan: spatial-rewrite the input into a blocked patch
// matrix F, chunk the flattened transposed kernel Kᵀ into blocks, and run
// the blocked matrix multiplication F × Kᵀ as a join + aggregation. The
// result is the blocked (n·outH·outW, outC) feature-map matrix.
func Conv2DRelational(pool *storage.BufferPool, input, kernel *tensor.Tensor, bs int, budget *memlimit.Budget) (*Matrix, error) {
	if kernel.Rank() != 4 {
		return nil, fmt.Errorf("blocked: kernel must be OHWI, got %v", kernel.Shape())
	}
	kh, kw := kernel.Dim(1), kernel.Dim(2)
	f, err := StoreIm2Col(pool, input, kh, kw, bs)
	if err != nil {
		return nil, err
	}
	kt := tensor.Transpose(tensor.FlattenKernel(kernel)) // (kh·kw·c, outC)
	kb, err := Store(pool, kt, bs)
	if err != nil {
		return nil, err
	}
	return MultiplyStreaming(pool, f, kb, budget)
}
