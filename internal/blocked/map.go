package blocked

import (
	"fmt"

	"tensorbase/internal/storage"
	"tensorbase/internal/tensor"
)

// MapBlocks produces a new blocked matrix of the same shape by applying f
// to each block in turn. Blocks stream through the buffer pool one at a
// time, so elementwise operators (ReLU, bias add, scaling) run
// relation-centrically in constant memory. f receives the block coordinates
// and a private copy of the block it may mutate and return.
func MapBlocks(pool *storage.BufferPool, m *Matrix, f func(rb, cb int, blk *tensor.Tensor) (*tensor.Tensor, error)) (*Matrix, error) {
	out, err := NewEmpty(pool, m.Rows, m.Cols, m.BlockSize)
	if err != nil {
		return nil, err
	}
	for rb := 0; rb < m.NumRowBlocks(); rb++ {
		for cb := 0; cb < m.NumColBlocks(); cb++ {
			blk, err := m.Block(rb, cb)
			if err != nil {
				return nil, err
			}
			res, err := f(rb, cb, blk)
			if err != nil {
				return nil, fmt.Errorf("blocked: map block (%d,%d): %w", rb, cb, err)
			}
			if res.Dim(0) != blk.Dim(0) || res.Dim(1) != blk.Dim(1) {
				return nil, fmt.Errorf("blocked: map changed block (%d,%d) shape %v → %v", rb, cb, blk.Shape(), res.Shape())
			}
			if err := out.AppendBlock(rb, cb, res); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ReLUBlocks applies max(0,x) to every block, streaming.
func ReLUBlocks(pool *storage.BufferPool, m *Matrix) (*Matrix, error) {
	return MapBlocks(pool, m, func(_, _ int, blk *tensor.Tensor) (*tensor.Tensor, error) {
		return tensor.ReLUInto(blk), nil
	})
}

// AddBiasBlocks adds bias (length m.Cols) to every row, streaming. Block
// (rb, cb) sees the bias slice starting at column cb·BlockSize.
func AddBiasBlocks(pool *storage.BufferPool, m *Matrix, bias []float32) (*Matrix, error) {
	if len(bias) != m.Cols {
		return nil, fmt.Errorf("blocked: bias length %d, want %d", len(bias), m.Cols)
	}
	return MapBlocks(pool, m, func(_, cb int, blk *tensor.Tensor) (*tensor.Tensor, error) {
		seg := bias[cb*m.BlockSize : cb*m.BlockSize+blk.Dim(1)]
		return tensor.AddBiasRowsInto(blk, tensor.FromSlice(seg, len(seg))), nil
	})
}
