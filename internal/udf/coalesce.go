package udf

// Cross-query dynamic micro-batching (the serving-path generalisation of
// the cache's single-flight protocol): when several PREDICT statements over
// the same model are in flight at once, their cache-miss feature rows are
// coalesced into shared model invocations instead of each query paying a
// model call per micro-batch. One Coalescer exists per loaded model; every
// InferOp over that model registers with it (Enter/Leave) and routes its
// model invocations through Submit.
//
// Protocol: the first submitter of a window becomes the batch leader. It
// parks for at most the batching window (or until the batch fills), letting
// concurrent submitters append their rows, then runs the model ONCE over
// the combined feature matrix and publishes each participant's slice of the
// output. Followers just wait. Model outputs are row-independent (every
// layer is row-wise), so a coalesced invocation is bit-identical to the
// per-query invocations it replaces.
//
// The window only ever opens when at least two operators are registered:
// a lone PREDICT query takes a zero-overhead direct path, so coalescing
// costs nothing until there is actually someone to coalesce with.
//
// Failure containment mirrors the single-flight rule: a leader whose
// invocation fails (or whose query is cancelled mid-window) settles the
// batch with the error, and each follower falls back to invoking the model
// over its own rows — one query's failure never fails another query.

import (
	"sync"
	"sync/atomic"
	"time"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/tensor"
)

// DefaultCoalesceWindow is how long a batch leader waits for concurrent
// queries to join its model invocation.
const DefaultCoalesceWindow = 500 * time.Microsecond

// DefaultCoalesceMaxRows caps the combined row count of one coalesced
// invocation; a batch that fills seals (and runs) immediately.
const DefaultCoalesceMaxRows = 4096

// applyFunc runs the model over a dense rows×width feature matrix.
type applyFunc func(feats []float32, rows, width int) (*tensor.Tensor, error)

// CoalesceStats is a snapshot of a Coalescer's cumulative counters.
type CoalesceStats struct {
	Invocations      int64 // model invocations made through Submit
	MultiInvocations int64 // invocations shared by ≥2 queries
	Rows             int64 // feature rows served through Submit
	CoalescedRows    int64 // rows that rode another query's invocation
	Participants     int64 // sum of participants across invocations (occupancy numerator)
}

// Coalescer merges concurrent model invocations for one model. Safe for
// concurrent use by any number of InferOps.
type Coalescer struct {
	window  time.Duration
	maxRows int

	mu      sync.Mutex
	active  int // InferOps currently open on this model
	pending *coBatch

	invocations      atomic.Int64
	multiInvocations atomic.Int64
	rows             atomic.Int64
	coalescedRows    atomic.Int64
	participants     atomic.Int64
}

// NewCoalescer returns a coalescer with the given batching window and
// combined-row cap; zero values take the defaults.
func NewCoalescer(window time.Duration, maxRows int) *Coalescer {
	if window <= 0 {
		window = DefaultCoalesceWindow
	}
	if maxRows <= 0 {
		maxRows = DefaultCoalesceMaxRows
	}
	return &Coalescer{window: window, maxRows: maxRows}
}

// Enter registers an operator: while two or more are registered, batching
// windows open. Pair with Leave.
func (c *Coalescer) Enter() {
	c.mu.Lock()
	c.active++
	c.mu.Unlock()
}

// Leave unregisters an operator.
func (c *Coalescer) Leave() {
	c.mu.Lock()
	c.active--
	c.mu.Unlock()
}

// Stats returns the cumulative counters.
func (c *Coalescer) Stats() CoalesceStats {
	return CoalesceStats{
		Invocations:      c.invocations.Load(),
		MultiInvocations: c.multiInvocations.Load(),
		Rows:             c.rows.Load(),
		CoalescedRows:    c.coalescedRows.Load(),
		Participants:     c.participants.Load(),
	}
}

// coBatch is one coalesced invocation being assembled and run.
type coBatch struct {
	width int
	feats []float32
	rows  int
	parts int

	full chan struct{} // closed when the row cap seals the batch
	done chan struct{} // closed when the leader settles (preds or err)

	preds []float32
	predW int
	err   error
}

// Submit serves one dense rows×width feature matrix through the model,
// coalescing with concurrent submissions for the same model when possible.
// It returns the caller's rows' predictions (a read-only view that may
// alias a shared output buffer) and the prediction width. The caller's
// cancellation token bounds every wait.
func (c *Coalescer) Submit(tok *lifecycle.Token, feats []float32, rows, width int, apply applyFunc) ([]float32, int, error) {
	if rows <= 0 {
		return nil, 0, nil
	}
	c.mu.Lock()
	if b := c.pending; b != nil && b.width == width && b.rows+rows <= c.maxRows {
		// Join the open batch as a follower.
		off := b.rows
		b.feats = append(b.feats, feats...)
		b.rows += rows
		b.parts++
		if b.rows+minJoinRows > c.maxRows {
			// Effectively full: seal now so the leader runs immediately.
			c.pending = nil
			close(b.full)
		}
		c.mu.Unlock()
		return c.waitFollower(tok, b, off, feats, rows, width, apply)
	}
	if c.active < 2 || c.pending != nil {
		// Nobody to coalesce with (or an incompatible batch is pending):
		// run directly.
		c.mu.Unlock()
		return c.applyCounted(feats, rows, width, 1, apply)
	}
	// Open a batch and lead it.
	b := &coBatch{
		width: width,
		feats: append(make([]float32, 0, len(feats)*2), feats...),
		rows:  rows,
		parts: 1,
		full:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	c.pending = b
	c.mu.Unlock()

	timer := time.NewTimer(c.window)
	cancelled := false
	select {
	case <-b.full:
	case <-timer.C:
	case <-tok.Done():
		// Done() closing precedes the token's atomic flag flip, so read the
		// cause straight from the context rather than through Err().
		cancelled = true
	}
	timer.Stop()

	// Seal: after this no submitter can join.
	c.mu.Lock()
	if c.pending == b {
		c.pending = nil
	}
	total, parts := b.rows, b.parts
	c.mu.Unlock()

	if err := tok.Err(); !cancelled && err != nil {
		cancelled = true
	}
	if cancelled {
		err := tok.Cause()
		// Cancelled mid-window. Settle with the error; followers (whose
		// queries are still live) recompute their own rows.
		b.err = err
		close(b.done)
		return nil, 0, err
	}
	preds, predW, err := c.applyCounted(b.feats, total, width, parts, apply)
	if err != nil {
		b.err = err
		close(b.done)
		return nil, 0, err
	}
	c.coalescedRows.Add(int64(total - rows))
	b.preds, b.predW = preds, predW
	close(b.done)
	return preds[: rows*predW : rows*predW], predW, nil
}

// minJoinRows is the smallest join worth leaving room for; a batch within
// this margin of the cap seals immediately.
const minJoinRows = 1

// waitFollower waits for the leader to settle and carves out this
// submitter's slice of the shared output. On a settled error it falls back
// to a direct invocation over its own rows.
func (c *Coalescer) waitFollower(tok *lifecycle.Token, b *coBatch, off int, feats []float32, rows, width int, apply applyFunc) ([]float32, int, error) {
	select {
	case <-b.done:
	case <-tok.Done():
		// Our query is done waiting; the leader still computes our rows,
		// we just never read them.
		return nil, 0, tok.Cause()
	}
	if b.err != nil {
		if err := tok.Err(); err != nil {
			return nil, 0, err
		}
		// The leader's query failed or was cancelled; ours is fine — run
		// our own rows.
		return c.applyCounted(feats, rows, width, 1, apply)
	}
	w := b.predW
	return b.preds[off*w : (off+rows)*w : (off+rows)*w], w, nil
}

// applyCounted runs apply and records the invocation-level counters.
func (c *Coalescer) applyCounted(feats []float32, rows, width, parts int, apply applyFunc) ([]float32, int, error) {
	out, err := apply(feats, rows, width)
	if err != nil {
		return nil, 0, err
	}
	c.invocations.Add(1)
	c.participants.Add(int64(parts))
	if parts >= 2 {
		c.multiInvocations.Add(1)
	}
	c.rows.Add(int64(rows))
	return out.Data(), out.Len() / rows, nil
}
