package udf

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/tensor"
)

// countingApply returns an applyFunc that doubles every feature and counts
// invocations and total rows.
func countingApply(calls, rows *atomic.Int64) applyFunc {
	return func(feats []float32, r, w int) (*tensor.Tensor, error) {
		calls.Add(1)
		rows.Add(int64(r))
		out := make([]float32, len(feats))
		for i, f := range feats {
			out[i] = 2 * f
		}
		return tensor.FromSlice(out, r, w), nil
	}
}

func TestCoalesceSoloDirect(t *testing.T) {
	c := NewCoalescer(time.Second, 0)
	c.Enter()
	defer c.Leave()
	var calls, rows atomic.Int64
	start := time.Now()
	preds, w, err := c.Submit(nil, []float32{1, 2}, 1, 2, countingApply(&calls, &rows))
	if err != nil {
		t.Fatal(err)
	}
	// A lone operator must not wait out the (huge) window.
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("solo submit waited %v; want direct path", d)
	}
	if w != 2 || preds[0] != 2 || preds[1] != 4 {
		t.Fatalf("preds = %v width %d", preds, w)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d", calls.Load())
	}
	st := c.Stats()
	if st.Invocations != 1 || st.MultiInvocations != 0 || st.CoalescedRows != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoalesceTwoQueriesShareInvocation(t *testing.T) {
	c := NewCoalescer(time.Second, 0) // window long enough to be deterministic
	c.Enter()
	c.Enter()
	defer c.Leave()
	defer c.Leave()
	var calls, rowsRun atomic.Int64
	apply := countingApply(&calls, &rowsRun)

	var wg sync.WaitGroup
	type res struct {
		preds []float32
		w     int
		err   error
	}
	out := make([]res, 2)
	feats := [][]float32{{1, 2, 3, 4}, {10, 20}} // 2 rows and 1 row, width 2
	rows := []int{2, 1}
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			// Stagger so goroutine 0 reliably leads.
			if i == 1 {
				time.Sleep(50 * time.Millisecond)
			}
			p, w, err := c.Submit(nil, feats[i], rows[i], 2, apply)
			out[i] = res{p, w, err}
		}(i)
	}
	wg.Wait()

	for i, r := range out {
		if r.err != nil {
			t.Fatalf("submit %d: %v", i, r.err)
		}
		if r.w != 2 {
			t.Fatalf("submit %d width = %d", i, r.w)
		}
	}
	if got := out[0].preds; got[0] != 2 || got[3] != 8 {
		t.Fatalf("leader preds = %v", got)
	}
	if got := out[1].preds; len(got) != 2 || got[0] != 20 || got[1] != 40 {
		t.Fatalf("follower preds = %v", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("model ran %d times, want 1 coalesced invocation", calls.Load())
	}
	if rowsRun.Load() != 3 {
		t.Fatalf("model saw %d rows, want 3", rowsRun.Load())
	}
	st := c.Stats()
	if st.Invocations != 1 || st.MultiInvocations != 1 || st.Participants != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CoalescedRows != 1 {
		t.Fatalf("coalesced rows = %d, want 1 (the follower's row)", st.CoalescedRows)
	}
}

func TestCoalesceWidthMismatchRunsSeparately(t *testing.T) {
	c := NewCoalescer(200*time.Millisecond, 0)
	c.Enter()
	c.Enter()
	defer c.Leave()
	defer c.Leave()
	var calls, rowsRun atomic.Int64
	apply := countingApply(&calls, &rowsRun)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, errs[0] = c.Submit(nil, []float32{1, 2}, 1, 2, apply)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		_, _, errs[1] = c.Submit(nil, []float32{1, 2, 3}, 1, 3, apply)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("model ran %d times, want 2 (incompatible widths)", calls.Load())
	}
	if c.Stats().MultiInvocations != 0 {
		t.Fatal("width-mismatched submissions must not coalesce")
	}
}

func TestCoalesceMaxRowsSealsBatch(t *testing.T) {
	c := NewCoalescer(time.Second, 3)
	c.Enter()
	c.Enter()
	defer c.Leave()
	defer c.Leave()
	var calls, rowsRun atomic.Int64
	apply := countingApply(&calls, &rowsRun)

	var wg sync.WaitGroup
	wg.Add(2)
	start := time.Now()
	go func() {
		defer wg.Done()
		if _, _, err := c.Submit(nil, []float32{1, 2}, 2, 1, apply); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		if _, _, err := c.Submit(nil, []float32{3}, 1, 1, apply); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	// The join filled the batch to the cap, so the leader must have run well
	// before its one-second window expired.
	if d := time.Since(start); d > 600*time.Millisecond {
		t.Fatalf("full batch still waited %v", d)
	}
	if calls.Load() != 1 || rowsRun.Load() != 3 {
		t.Fatalf("calls=%d rows=%d, want one 3-row invocation", calls.Load(), rowsRun.Load())
	}
}

func TestCoalesceLeaderFailureFollowerFallsBack(t *testing.T) {
	c := NewCoalescer(300*time.Millisecond, 0)
	c.Enter()
	c.Enter()
	defer c.Leave()
	defer c.Leave()
	boom := errors.New("boom")
	var calls atomic.Int64
	apply := func(feats []float32, r, w int) (*tensor.Tensor, error) {
		// First (coalesced) invocation fails; the follower's solo retry
		// succeeds.
		if calls.Add(1) == 1 {
			return nil, boom
		}
		out := make([]float32, len(feats))
		copy(out, feats)
		return tensor.FromSlice(out, r, w), nil
	}

	var wg sync.WaitGroup
	var leadErr, followErr error
	var followPreds []float32
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, leadErr = c.Submit(nil, []float32{1}, 1, 1, apply)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		followPreds, _, followErr = c.Submit(nil, []float32{7}, 1, 1, apply)
	}()
	wg.Wait()
	if !errors.Is(leadErr, boom) {
		t.Fatalf("leader error = %v, want boom", leadErr)
	}
	if followErr != nil {
		t.Fatalf("follower must fall back cleanly, got %v", followErr)
	}
	if len(followPreds) != 1 || followPreds[0] != 7 {
		t.Fatalf("follower preds = %v", followPreds)
	}
}

func TestCoalesceLeaderCancelledFollowerFallsBack(t *testing.T) {
	c := NewCoalescer(5*time.Second, 0)
	c.Enter()
	c.Enter()
	defer c.Leave()
	defer c.Leave()
	var calls, rowsRun atomic.Int64
	apply := countingApply(&calls, &rowsRun)

	ctx, cancel := context.WithCancel(context.Background())
	tok, stop := lifecycle.Watch(ctx)
	defer stop()

	var wg sync.WaitGroup
	var leadErr, followErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, leadErr = c.Submit(tok, []float32{1}, 1, 1, apply)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		_, _, followErr = c.Submit(nil, []float32{2}, 1, 1, apply)
	}()
	time.Sleep(120 * time.Millisecond)
	cancel() // the leader parks on its window; cancellation must settle it
	wg.Wait()
	if leadErr == nil {
		t.Fatal("cancelled leader must return its cancellation error")
	}
	if followErr != nil {
		t.Fatalf("follower fallback: %v", followErr)
	}
	if calls.Load() != 1 || rowsRun.Load() != 1 {
		t.Fatalf("calls=%d rows=%d, want exactly the follower's solo run", calls.Load(), rowsRun.Load())
	}
}

func TestCoalesceSubmitHammer(t *testing.T) {
	c := NewCoalescer(200*time.Microsecond, 64)
	const workers = 8
	for i := 0; i < workers; i++ {
		c.Enter()
		defer c.Leave()
	}
	var calls, rowsRun atomic.Int64
	apply := countingApply(&calls, &rowsRun)
	var wg sync.WaitGroup
	wg.Add(workers)
	var wrong atomic.Int64
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				base := float32(g*1000 + i)
				feats := []float32{base, base + 1, base + 2, base + 3}
				preds, w, err := c.Submit(nil, feats, 2, 2, apply)
				if err != nil || w != 2 || len(preds) != 4 {
					wrong.Add(1)
					continue
				}
				for k, f := range feats {
					if preds[k] != 2*f {
						wrong.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d wrong results under concurrency", wrong.Load())
	}
	total := int64(workers * 50 * 2)
	if rowsRun.Load() != total {
		t.Fatalf("model saw %d rows, want %d", rowsRun.Load(), total)
	}
	st := c.Stats()
	if st.Rows != total {
		t.Fatalf("stats rows = %d, want %d", st.Rows, total)
	}
	t.Logf("hammer: %d invocations for %d rows (%d coalesced, %d multi)",
		st.Invocations, st.Rows, st.CoalescedRows, st.MultiInvocations)
}
