package udf

import (
	"math/rand"
	"path/filepath"
	"testing"

	"tensorbase/internal/exec"
	"tensorbase/internal/nn"
	"tensorbase/internal/parallel"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

// featHeap materialises rows into a heap so scans go through the real
// page-pinned path that supports columnar batching.
func featHeap(t *testing.T, rows []table.Tuple) *table.Heap {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "t.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	h, err := table.NewHeap(storage.NewBufferPool(d, 8), featSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := h.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestInferOpColumnarBitIdenticalToRowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	m := nn.FraudFC(rng, 32)
	rows := featRows(rng, 103, 28) // several batches, ragged tail
	h := featHeap(t, rows)

	rowOp, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	want := collectPreds(t, rowOp)
	if rowOp.Stats().ColBatches.Load() != 0 {
		t.Fatal("MemScan child must use the row path")
	}

	colOp, err := NewInferOp(exec.NewHeapScan(h), NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	got := collectPreds(t, colOp)
	if colOp.Stats().ColBatches.Load() == 0 {
		t.Fatal("HeapScan child must engage the columnar path")
	}
	if len(got) != len(want) {
		t.Fatalf("columnar %d rows, row path %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d[%d]: columnar %v != row path %v (must be bit-identical)",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestInferOpColumnarFallsBackBehindFilter: a non-columnar child (here a
// Filter) must silently use the row path with identical results.
func TestInferOpColumnarFallsBackBehindFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 40, 28)
	h := featHeap(t, rows)
	pred := func(tp table.Tuple) (bool, error) { return tp[0].Int%2 == 0, nil }

	filtered := exec.NewFilter(exec.NewHeapScan(h), pred)
	op, err := NewInferOp(filtered, NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if op.Stats().ColBatches.Load() != 0 {
		t.Fatal("filtered child must fall back to the row path")
	}
	if len(got) != 20 {
		t.Fatalf("got %d rows, want 20", len(got))
	}
	for _, r := range got {
		if r[0].Int%2 != 0 {
			t.Fatalf("filter leaked row id %d", r[0].Int)
		}
	}
}

// TestInferOpColumnarPipelined: the producer goroutine takes the columnar
// path too, and its output stays bit-identical to the serial columnar run.
func TestInferOpColumnarPipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	m := nn.FraudFC(rng, 32)
	rows := featRows(rng, 57, 28)
	h := featHeap(t, rows)

	serialOp, err := NewInferOp(exec.NewHeapScan(h), NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	want := collectPreds(t, serialOp)

	pipeOp, err := NewInferOp(exec.NewHeapScan(h), NewModelUDF(m, nil), "features", 8,
		WithPipeline(parallel.NewBudget(2)))
	if err != nil {
		t.Fatal(err)
	}
	got := collectPreds(t, pipeOp)
	if pipeOp.Stats().ColBatches.Load() == 0 {
		t.Fatal("pipelined run must engage the columnar path")
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d[%d]: pipelined columnar %v != serial %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
