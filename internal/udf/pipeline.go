package udf

import (
	"fmt"
	"sync"

	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// Operator pipelining (Sec. 5(2)): the paper proposes breaking a model UDF
// into fine-grained operator UDFs deployed as streaming pipeline stages, so
// consecutive micro-batches overlap — stage k runs batch i while stage k+1
// runs batch i-1 — instead of the data-parallel whole-batch execution the
// relational engine defaults to. Pipeline implements exactly that: one
// goroutine per operator connected by bounded channels.
type Pipeline struct {
	model *nn.Model
	// StageDepth is the channel buffer between stages (default 2).
	StageDepth int
}

// NewPipeline wraps model for pipelined micro-batch execution.
func NewPipeline(model *nn.Model) *Pipeline {
	return &Pipeline{model: model, StageDepth: 2}
}

// Model returns the pipelined model.
func (p *Pipeline) Model() *nn.Model { return p.model }

// pipeItem carries one micro-batch through the stages, tagging its position
// so results reassemble in order.
type pipeItem struct {
	index int
	x     *tensor.Tensor
}

// Run pushes x through the model in micro-batches of batch rows, with every
// layer as its own concurrent stage, and returns the reassembled output.
// Results are identical to Model.Forward; only the schedule differs.
func (p *Pipeline) Run(x *tensor.Tensor, batch int) (*tensor.Tensor, error) {
	if batch < 1 {
		return nil, fmt.Errorf("udf: pipeline batch %d < 1", batch)
	}
	n := x.Dim(0)
	if n == 0 {
		return nil, fmt.Errorf("udf: empty pipeline input")
	}
	depth := p.StageDepth
	if depth < 1 {
		depth = 1
	}

	// Source stage: slice the input into micro-batches.
	in := make(chan pipeItem, depth)
	go func() {
		defer close(in)
		idx := 0
		for r := 0; r < n; r += batch {
			end := min(r+batch, n)
			// Clone so in-place stages never mutate the caller's tensor.
			in <- pipeItem{index: idx, x: x.SliceRows(r, end).Clone()}
			idx++
		}
	}()

	// One stage per layer. Each stage owns its layer; in-place layers are
	// safe because every micro-batch flows through exactly one goroutine
	// at a time.
	cur := in
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
	}
	for _, layer := range p.model.Layers {
		out := make(chan pipeItem, depth)
		go func(l nn.Layer, in <-chan pipeItem, out chan<- pipeItem) {
			defer close(out)
			for item := range in {
				func() {
					defer func() {
						if r := recover(); r != nil {
							fail(fmt.Errorf("udf: pipeline stage %s: %v", l.Name(), r))
						}
					}()
					item.x = l.Forward(item.x)
					out <- item
				}()
			}
		}(layer, cur, out)
		cur = out
	}

	// Sink: reassemble micro-batches in order.
	var parts []pipeItem
	for item := range cur {
		parts = append(parts, item)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("udf: pipeline produced no output")
	}
	// Determine output width from any part, then place by index.
	width := parts[0].x.Len() / parts[0].x.Dim(0)
	out := tensor.New(n, width)
	for _, part := range parts {
		r0 := part.index * batch
		copy(out.Data()[r0*width:], part.x.Reshape(part.x.Dim(0), width).Data())
	}
	return out, nil
}
