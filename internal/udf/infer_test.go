package udf

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"tensorbase/internal/cache"
	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/parallel"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// countingUDF wraps a UDF and records every Apply invocation and its batch
// size, so tests can assert exactly when the model ran.
type countingUDF struct {
	inner UDF
	calls atomic.Int64
	mu    sync.Mutex
	sizes []int
}

func (c *countingUDF) Name() string { return c.inner.Name() }

func (c *countingUDF) Apply(in *tensor.Tensor) (*tensor.Tensor, error) {
	c.calls.Add(1)
	c.mu.Lock()
	c.sizes = append(c.sizes, in.Dim(0))
	c.mu.Unlock()
	return c.inner.Apply(in)
}

func (c *countingUDF) batchSizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.sizes...)
}

// collectPreds drains op and returns the prediction column per row.
func collectPreds(t *testing.T, op exec.Operator) [][]float32 {
	t.Helper()
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float32, len(rows))
	for i, r := range rows {
		out[i] = r[len(r)-1].Vec
	}
	return out
}

func TestInferOpPipelinedBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	m := nn.FraudFC(rng, 32)
	rows := featRows(rng, 103, 28) // several batches, last one ragged

	serialOp, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	serial := collectPreds(t, serialOp)

	budget := parallel.NewBudget(2)
	pipeOp, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 8,
		WithPipeline(budget))
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeOp.Open(); err != nil {
		t.Fatal(err)
	}
	if !pipeOp.Pipelined() {
		t.Fatal("expected a producer goroutine with a free token")
	}
	var pipelined [][]float32
	for {
		tp, ok, err := pipeOp.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		pipelined = append(pipelined, tp[len(tp)-1].Vec)
	}
	if err := pipeOp.Close(); err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 0 {
		t.Fatalf("pipeline leaked %d tokens", budget.InUse())
	}

	if len(pipelined) != len(serial) {
		t.Fatalf("pipelined %d rows, serial %d", len(pipelined), len(serial))
	}
	for i := range serial {
		if len(serial[i]) != len(pipelined[i]) {
			t.Fatalf("row %d: width %d vs %d", i, len(serial[i]), len(pipelined[i]))
		}
		for j := range serial[i] {
			if serial[i][j] != pipelined[i][j] {
				t.Fatalf("row %d[%d]: pipelined %v != serial %v (must be bit-identical)",
					i, j, pipelined[i][j], serial[i][j])
			}
		}
	}
}

func TestInferOpPipelineFallsBackSerialWithoutTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 10, 28)
	budget := parallel.NewBudget(1)
	budget.Acquire(1) // drain the budget
	defer budget.Release(1)
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 4,
		WithPipeline(budget))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	if op.Pipelined() {
		t.Fatal("must degrade to serial when the budget is exhausted")
	}
	n := 0
	for {
		_, ok, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("serial fallback produced %d rows", n)
	}
}

func TestInferOpPipelinedErrorPropagatesAndCloses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := nn.FraudFC(rng, 512)
	rows := featRows(rng, 50, 28)
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows),
		NewModelUDF(m, memlimit.NewBudget(1024)), "features", 50,
		WithPipeline(parallel.NewBudget(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Collect(op); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

// warmCache inserts each row's exact feature vector with a recognisable
// prediction.
func warmCache(t *testing.T, rc *cache.ResultCache, rows []table.Tuple, tag float32) {
	t.Helper()
	for i, r := range rows {
		if err := rc.Insert(r[1].Vec, []float32{tag, float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInferOpCacheAllHitsSkipsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 20, 28)
	rc, err := cache.NewHNSW(28, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	warmCache(t, rc, rows, 7)
	cu := &countingUDF{inner: NewModelUDF(m, nil)}
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), cu, "features", 8,
		WithCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	preds := collectPreds(t, op)
	if got := cu.calls.Load(); got != 0 {
		t.Fatalf("all-hit batches ran the model %d times", got)
	}
	for i, p := range preds {
		if len(p) != 2 || p[0] != 7 || p[1] != float32(i) {
			t.Fatalf("row %d: prediction %v, want cached [7 %d]", i, p, i)
		}
	}
	st := op.Stats()
	if st.Hits.Load() != 20 || st.Misses.Load() != 0 {
		t.Fatalf("hits=%d misses=%d, want 20/0", st.Hits.Load(), st.Misses.Load())
	}
	if st.BatchesAllHit.Load() != st.Batches.Load() {
		t.Fatalf("all %d batches should be all-hit, got %d", st.Batches.Load(), st.BatchesAllHit.Load())
	}
}

func TestInferOpCacheMissesThenHitsIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 23, 28)
	rc, err := cache.NewHNSW(28, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	cu := &countingUDF{inner: NewModelUDF(m, nil)}
	newOp := func() *InferOp {
		op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), cu, "features", 8, WithCache(rc))
		if err != nil {
			t.Fatal(err)
		}
		return op
	}

	cold := collectPreds(t, newOp())
	coldCalls := cu.calls.Load()
	if coldCalls == 0 {
		t.Fatal("cold run must invoke the model")
	}

	warm := collectPreds(t, newOp())
	if cu.calls.Load() != coldCalls {
		t.Fatalf("warm run invoked the model %d extra times", cu.calls.Load()-coldCalls)
	}
	for i := range cold {
		for j := range cold[i] {
			if cold[i][j] != warm[i][j] {
				t.Fatalf("row %d: warm prediction differs from cold", i)
			}
		}
	}
}

func TestInferOpCacheMixedBatchCompactsMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 10, 28)
	rc, err := cache.NewHNSW(28, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Warm even rows only; odd rows must be compacted into one model call.
	for i := 0; i < 10; i += 2 {
		if err := rc.Insert(rows[i][1].Vec, []float32{9, float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cu := &countingUDF{inner: NewModelUDF(m, nil)}
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), cu, "features", 10, WithCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	preds := collectPreds(t, op)
	if sizes := cu.batchSizes(); len(sizes) != 1 || sizes[0] != 5 {
		t.Fatalf("model batches = %v, want one compacted batch of 5 misses", sizes)
	}
	for i, p := range preds {
		if i%2 == 0 {
			if p[0] != 9 || p[1] != float32(i) {
				t.Fatalf("hit row %d got %v, want cached [9 %d]", i, p, i)
			}
		} else {
			x := tensor.FromSlice(append([]float32(nil), rows[i][1].Vec...), 1, 28)
			want := m.Forward(x)
			if abs32(p[0]-want.At(0, 0)) > 1e-5 {
				t.Fatalf("miss row %d got %v, want model %v", i, p, want.Data())
			}
		}
	}
	st := op.Stats()
	if st.Hits.Load() != 5 || st.Misses.Load() != 5 {
		t.Fatalf("hits=%d misses=%d, want 5/5", st.Hits.Load(), st.Misses.Load())
	}
	// The misses were inserted: a second pass is all hits.
	if rc.Len() != 10 {
		t.Fatalf("cache holds %d entries after miss population, want 10", rc.Len())
	}
}

func TestInferOpCacheNearDuplicateHits(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	m := nn.FraudFC(rng, 16)
	base := make([]float32, 28)
	for j := range base {
		base[j] = rng.Float32()
	}
	near := append([]float32(nil), base...)
	near[0] += 0.01 // squared distance 1e-4, within threshold
	far := make([]float32, 28)
	for j := range far {
		far[j] = base[j] + 1
	}
	rc, err := cache.NewHNSW(28, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Insert(base, []float32{5, 5}); err != nil {
		t.Fatal(err)
	}
	rows := []table.Tuple{
		{table.IntVal(0), table.VecVal(near)},
		{table.IntVal(1), table.VecVal(far)},
	}
	cu := &countingUDF{inner: NewModelUDF(m, nil)}
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), cu, "features", 4, WithCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	preds := collectPreds(t, op)
	if preds[0][0] != 5 || preds[0][1] != 5 {
		t.Fatalf("near-duplicate row got %v, want cached [5 5]", preds[0])
	}
	if sizes := cu.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("model batches = %v, want one batch with the single far row", sizes)
	}
}

func TestInferOpCacheDuplicateRowsRunModelOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := nn.FraudFC(rng, 16)
	vec := make([]float32, 28)
	for j := range vec {
		vec[j] = rng.Float32()
	}
	rows := make([]table.Tuple, 6)
	for i := range rows {
		rows[i] = table.Tuple{table.IntVal(int64(i)), table.VecVal(vec)}
	}
	rc, err := cache.NewHNSW(28, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	cu := &countingUDF{inner: NewModelUDF(m, nil)}
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), cu, "features", 6, WithCache(rc))
	if err != nil {
		t.Fatal(err)
	}
	preds := collectPreds(t, op)
	if sizes := cu.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("model batches = %v, want a single-row batch (single-flight)", sizes)
	}
	for i := 1; i < len(preds); i++ {
		for j := range preds[0] {
			if preds[i][j] != preds[0][j] {
				t.Fatalf("duplicate row %d prediction differs", i)
			}
		}
	}
	st := op.Stats()
	if st.Misses.Load() != 1 || st.Shared.Load() != 5 {
		t.Fatalf("misses=%d shared=%d, want 1/5", st.Misses.Load(), st.Shared.Load())
	}
}

func TestInferOpConcurrentQueriesShareCache(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 40, 28)
	rc, err := cache.NewHNSW(28, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	u := NewModelUDF(m, nil)
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	statsByW := make([]*InferStats, workers)
	sink := &InferStats{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), u, "features", 8,
				WithCache(rc), WithPipeline(parallel.NewBudget(2)), WithStats(sink))
			if err != nil {
				errs[w] = err
				return
			}
			statsByW[w] = op.Stats()
			got, err := exec.Collect(op)
			if err != nil {
				errs[w] = err
				return
			}
			if len(got) != 40 {
				errs[w] = errors.New("short result")
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Every row was served exactly once per query, through exactly one of
	// the three outcomes.
	if got := sink.Hits.Load() + sink.Misses.Load() + sink.Shared.Load(); got != workers*40 {
		t.Fatalf("outcomes %d, want %d", got, workers*40)
	}
	// The cache holds one entry per distinct feature vector regardless of
	// which query inserted it.
	if rc.Len() != 40 {
		t.Fatalf("cache holds %d entries, want 40", rc.Len())
	}
}

func TestInferOpPerRowAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 64, 28)
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 64)
	if err != nil {
		t.Fatal(err)
	}
	// One batch: predictions must be carved from a shared backing array,
	// not allocated per row.
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	first := got[0][len(got[0])-1].Vec
	last := got[63][len(got[63])-1].Vec
	if cap(first) != len(first) || cap(last) != len(last) {
		t.Fatal("per-row predictions must be capacity-capped subslices")
	}
	// Rows are disjoint but contiguous in one allocation: &last[0] sits
	// exactly 63*width floats after &first[0].
	if &first[:cap(first)][0] == &last[:cap(last)][0] {
		t.Fatal("rows alias the same slice start")
	}
}
