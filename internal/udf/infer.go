package udf

// InferOp — the `PREDICT(model, features)` relational operator — as a staged
// serving pipeline (the Sec. 5 serving path):
//
//	child operator ──pull+decode──▶ [producer] ──chan──▶ [consumer: cache probe
//	                                                      → miss compaction
//	                                                      → model → scatter]
//
// Stage 1 (pipelined batching): when a compute token is available from the
// shared parallel.Budget, a producer goroutine pulls and decodes batch N+1
// from the child while the consumer runs the model over batch N, so storage
// I/O and tuple decode overlap model compute. With no token the operator
// degrades to the serial pull-then-apply path; output order and values are
// bit-identical either way.
//
// Stage 2 (cache-aware miss compaction): with a ResultCache attached, each
// batch first probes the ANN index per row. Misses are compacted into one
// dense tensor, the UDF runs once over the miss set only, predictions are
// scattered back into row order, and fresh results populate the cache. A
// batch of all hits skips the model entirely. Duplicate in-flight features
// collapse through the cache's single-flight protocol: this operator commits
// every flight it leads before waiting on flights led by others, which makes
// cross-query waits deadlock-free.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tensorbase/internal/cache"
	"tensorbase/internal/exec"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/parallel"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// InferStats accumulates serving-path counters. A zero value is ready to
// use; all fields are atomic so one sink can be shared across concurrent
// queries (the engine aggregates every PREDICT into one DB-level sink).
type InferStats struct {
	// Cache outcomes, per input row.
	Hits   atomic.Int64 // answered from the ANN cache
	Misses atomic.Int64 // ran the model (flight leaders)
	Shared atomic.Int64 // reused another request's in-flight result

	// Model invocations.
	UDFCalls atomic.Int64 // UDF batch invocations
	UDFRows  atomic.Int64 // rows actually sent to the model

	// Batch outcomes.
	Batches       atomic.Int64 // batches processed
	BatchesAllHit atomic.Int64 // batches that skipped the model entirely
	ColBatches    atomic.Int64 // batches decoded columnarly (no per-row copy)

	// Pipeline health: Fills counts batches the producer finished before
	// the consumer asked (pipeline full, compute-bound); Stalls counts
	// consumer waits on the producer (I/O-bound).
	PipelineFills  atomic.Int64
	PipelineStalls atomic.Int64

	// Panics counts model/UDF panics contained as query errors.
	Panics atomic.Int64
}

// AddTo adds this snapshot's counters into sink.
func (s *InferStats) AddTo(sink *InferStats) {
	if sink == nil {
		return
	}
	sink.Hits.Add(s.Hits.Load())
	sink.Misses.Add(s.Misses.Load())
	sink.Shared.Add(s.Shared.Load())
	sink.UDFCalls.Add(s.UDFCalls.Load())
	sink.UDFRows.Add(s.UDFRows.Load())
	sink.Batches.Add(s.Batches.Load())
	sink.BatchesAllHit.Add(s.BatchesAllHit.Load())
	sink.ColBatches.Add(s.ColBatches.Load())
	sink.PipelineFills.Add(s.PipelineFills.Load())
	sink.PipelineStalls.Add(s.PipelineStalls.Load())
	sink.Panics.Add(s.Panics.Load())
}

// InferOption configures an InferOp.
type InferOption func(*InferOp)

// WithCache attaches an ANN result cache: rows whose features fall within
// the cache's distance threshold reuse stored predictions instead of running
// the model, and fresh results are inserted on the way out.
func WithCache(rc *cache.ResultCache) InferOption {
	return func(o *InferOp) { o.cache = rc }
}

// WithPipeline enables pipelined batch production using a worker token from
// budget (nil means the process-wide parallel.Default()). If no token is
// free at Open, the operator runs serially.
func WithPipeline(budget *parallel.Budget) InferOption {
	return func(o *InferOp) {
		o.pipeline = true
		o.budget = budget
	}
}

// WithStats adds this operator's counters into sink when the operator
// closes.
func WithStats(sink *InferStats) InferOption {
	return func(o *InferOp) { o.sink = sink }
}

// WithCancel installs the query's cancellation token: the producer, the
// consumer's batch wait, the UDF invocation, and single-flight waits all
// observe it, so a cancelled PREDICT stops within one micro-batch.
func WithCancel(tok *lifecycle.Token) InferOption {
	return func(o *InferOp) { o.tok = tok }
}

// WithCoalescer routes this operator's model invocations through the
// model's cross-query coalescer: concurrent PREDICTs over the same model
// merge their cache-miss rows into shared invocations (see Coalescer).
func WithCoalescer(co *Coalescer) InferOption {
	return func(o *InferOp) { o.co = co }
}

// InferOp is a relational operator that runs a UDF over the FloatVec
// feature column of its input in micro-batches, emitting each input tuple
// extended with a prediction column. It is how `PREDICT(model, features)`
// executes inside a query plan. See the package comment above for the
// pipelined/cached execution strategy.
type InferOp struct {
	in      exec.Operator
	udf     UDF
	featIdx int
	batch   int
	schema  *table.Schema

	cache     *cache.ResultCache
	pipeline  bool
	budget    *parallel.Budget
	colSrc    exec.ColBatcher // non-nil when the child can batch columnarly
	tok       *lifecycle.Token
	co        *Coalescer  // cross-query invocation coalescer (per model)
	coEntered bool        // this Open registered with the coalescer
	stats     InferStats  // per-operator counters (StageNote, tests)
	sink      *InferStats // optional shared sink, added on Close

	// Producer state (pipelined mode); nil channel means serial.
	batches chan *inferBatch
	quit    chan struct{}
	wg      sync.WaitGroup
	tokens  int  // tokens held against budget
	piped   bool // a producer ran this Open (sticky until reopen, for StageNote)

	cur    *inferBatch
	pos    int
	done   bool
	closed bool
}

// inferBatch is one decoded micro-batch flowing producer → consumer. After
// process(), preds holds all rows' predictions in one batch-sized backing
// array and predW their width; emitted rows carve disjoint subslices out of
// it, so the per-row path allocates only the output tuple.
type inferBatch struct {
	tuples []table.Tuple
	feats  []float32
	width  int
	err    error
	eof    bool

	preds []float32
	predW int
}

// NewInferOp wraps in with UDF inference over featCol, batching batch rows
// per UDF call. The output schema is the input schema plus a "prediction"
// FloatVec column.
func NewInferOp(in exec.Operator, u UDF, featCol string, batch int, opts ...InferOption) (*InferOp, error) {
	idx := in.Schema().ColIndex(featCol)
	if idx < 0 {
		return nil, fmt.Errorf("udf: unknown feature column %q", featCol)
	}
	if in.Schema().Cols[idx].Type != table.FloatVec {
		return nil, fmt.Errorf("udf: feature column %q is %v, want VECTOR", featCol, in.Schema().Cols[idx].Type)
	}
	if batch < 1 {
		return nil, fmt.Errorf("udf: batch size %d < 1", batch)
	}
	schema := in.Schema().Concat(table.MustSchema(table.Column{Name: "prediction", Type: table.FloatVec}))
	o := &InferOp{in: in, udf: u, featIdx: idx, batch: batch, schema: schema}
	for _, opt := range opts {
		opt(o)
	}
	return o, nil
}

// Schema implements exec.Operator.
func (o *InferOp) Schema() *table.Schema { return o.schema }

// SetCancel implements exec.Cancellable (equivalent to the WithCancel
// option) and forwards the token to the child operator.
func (o *InferOp) SetCancel(tok *lifecycle.Token) {
	o.tok = tok
	exec.SetCancel(o.in, tok)
}

// Pipelined reports whether this Open drew a worker token and ran a
// producer goroutine (false before Open, or when the compute budget had no
// free token). The flag survives Close so EXPLAIN ANALYZE, which profiles
// after the plan is drained, reports the mode that actually ran.
func (o *InferOp) Pipelined() bool { return o.piped }

// Stats returns this operator's own counters (independent of any sink).
func (o *InferOp) Stats() *InferStats { return &o.stats }

// Open implements exec.Operator.
func (o *InferOp) Open() error {
	o.cur = nil
	o.pos = 0
	o.done = false
	o.closed = false
	o.piped = false
	o.stats = InferStats{}
	if err := o.in.Open(); err != nil {
		return err
	}
	// Columnar fast path: a child that can decode straight into a batch's
	// contiguous feature buffer saves one pass and one copy per row. The
	// probe re-runs every Open, so a rewired child (e.g. wrapped by the
	// profiler's Instrumented operator) falls back to the row path.
	o.colSrc = nil
	if cs, ok := o.in.(exec.ColBatcher); ok {
		o.colSrc = cs
	}
	if o.co != nil && !o.coEntered {
		o.co.Enter()
		o.coEntered = true
	}
	if o.pipeline {
		budget := o.budget
		if budget == nil {
			budget = parallel.Default()
		}
		if budget.TryAcquireUpTo(1) == 1 {
			o.tokens = 1
			o.piped = true
			o.budget = budget // release against the budget we drew from
			o.batches = make(chan *inferBatch, 1)
			o.quit = make(chan struct{})
			o.wg.Add(1)
			go o.produce()
		}
	}
	return nil
}

// produce is the pipeline's stage-1 goroutine: it pulls and decodes the next
// batch while the consumer computes over the previous one. It is the only
// goroutine touching o.in between Open and Close.
func (o *InferOp) produce() {
	defer o.wg.Done()
	for {
		b := o.pullSafe()
		select {
		case o.batches <- b:
		default:
			// Consumer still busy: the pipeline is full.
			o.stats.PipelineFills.Add(1)
			select {
			case o.batches <- b:
			case <-o.quit:
				return
			}
		}
		if b.eof || b.err != nil {
			return
		}
	}
}

// pullSafe is pull with panic containment: a panic while decoding the child
// stream (in the producer goroutine, where it would otherwise kill the
// process) comes back as the batch's error.
func (o *InferOp) pullSafe() (b *inferBatch) {
	defer func() {
		if perr := lifecycle.AsError(recover()); perr != nil {
			o.stats.Panics.Add(1)
			b = &inferBatch{err: fmt.Errorf("udf: batch producer: %w", perr)}
		}
	}()
	return o.pull()
}

// pull reads up to batch tuples from the child and flattens their feature
// vectors into one dense slice — columnarly (one bulk decode per batch) when
// the child supports it, row by row otherwise.
func (o *InferOp) pull() *inferBatch {
	if o.colSrc != nil {
		return o.pullColumnar()
	}
	b := &inferBatch{}
	for len(b.tuples) < o.batch {
		if err := o.tok.Err(); err != nil {
			b.err = err
			return b
		}
		t, ok, err := o.in.Next()
		if err != nil {
			b.err = err
			return b
		}
		if !ok {
			b.eof = true
			break
		}
		vec := t[o.featIdx].Vec
		if len(b.tuples) == 0 {
			b.width = len(vec)
			if cap(b.feats) == 0 {
				b.feats = make([]float32, 0, o.batch*b.width)
			}
		} else if len(vec) != b.width {
			b.err = fmt.Errorf("udf: ragged feature vectors (%d vs %d)", len(vec), b.width)
			return b
		}
		b.feats = append(b.feats, vec...)
		b.tuples = append(b.tuples, t)
	}
	return b
}

// pullColumnar fills a fresh ColBatch from the columnar child: the feature
// column of every record is decoded directly into the batch's contiguous
// buffer, which becomes b.feats — the input tensor's backing array — with no
// per-row copy. The batch is freshly allocated per call because emitted
// tuples alias its buffers.
func (o *InferOp) pullColumnar() *inferBatch {
	b := &inferBatch{}
	if err := o.tok.Err(); err != nil {
		b.err = err
		return b
	}
	cb, err := table.NewColBatch(o.in.Schema(), o.featIdx, o.batch)
	if err != nil {
		b.err = err
		return b
	}
	n, err := o.colSrc.NextColBatch(cb)
	if err != nil {
		b.err = err
		return b
	}
	if n < o.batch {
		b.eof = true
	}
	if n > 0 {
		o.stats.ColBatches.Add(1)
		b.tuples = cb.Tuples
		b.feats = cb.Feats
		b.width = cb.Width
	}
	return b
}

// nextBatch hands the consumer its next batch: from the producer channel in
// pipelined mode, or pulled inline.
func (o *InferOp) nextBatch() *inferBatch {
	if o.batches == nil {
		return o.pullSafe()
	}
	select {
	case b := <-o.batches:
		return b
	default:
		// Producer not ready: the consumer stalls on decode/I/O. A cancelled
		// query stops stalling immediately; the producer notices the token on
		// its next tuple and parks on the quit channel until Close.
		o.stats.PipelineStalls.Add(1)
		select {
		case b := <-o.batches:
			return b
		case <-o.tok.Done():
			return &inferBatch{err: o.tok.Cause()}
		}
	}
}

// applyUDF runs the model over rows×width features. A panic in the UDF (a
// malformed weight, a bug in a registered function) is contained here as a
// query error rather than killing the server; the cancellation token is
// forwarded to UDFs that support it.
func (o *InferOp) applyUDF(feats []float32, rows, width int) (out *tensor.Tensor, err error) {
	o.stats.UDFCalls.Add(1)
	o.stats.UDFRows.Add(int64(rows))
	defer func() {
		if perr := lifecycle.AsError(recover()); perr != nil {
			o.stats.Panics.Add(1)
			out, err = nil, fmt.Errorf("udf: %s: %w", o.udf.Name(), perr)
		}
	}()
	out, err = ApplyCancel(o.udf, o.tok, tensor.FromSlice(feats, rows, width))
	if err != nil {
		// UDFs that contain their own panics (ModelUDF, OperatorUDF) hand
		// the *PanicError back as an ordinary error; count it here so the
		// serving-path stats see every contained panic exactly once.
		var perr *lifecycle.PanicError
		if errors.As(err, &perr) {
			o.stats.Panics.Add(1)
		}
		return nil, err
	}
	if out.Dim(0) != rows {
		return nil, fmt.Errorf("udf: %s returned %d rows for %d inputs", o.udf.Name(), out.Dim(0), rows)
	}
	return out, nil
}

// invoke runs the model over rows×width features, through the cross-query
// coalescer when one is attached (so concurrent PREDICTs share invocations)
// and directly otherwise. It returns the caller's rows' predictions and the
// prediction width; the returned slice may alias a shared read-only buffer.
func (o *InferOp) invoke(feats []float32, rows, width int) ([]float32, int, error) {
	if o.co != nil {
		return o.co.Submit(o.tok, feats, rows, width, o.applyUDF)
	}
	out, err := o.applyUDF(feats, rows, width)
	if err != nil {
		return nil, 0, err
	}
	return out.Data(), out.Len() / rows, nil
}

// process computes b.preds/b.predW for every row of the batch.
func (o *InferOp) process(b *inferBatch) error {
	rows := len(b.tuples)
	if rows == 0 {
		return nil
	}
	if err := o.tok.Err(); err != nil {
		return err
	}
	o.stats.Batches.Add(1)
	if o.cache == nil {
		// The returned slice is either the UDF's fresh output tensor or this
		// batch's view of a coalesced invocation; emitted rows carve disjoint
		// subslices out of it either way.
		preds, predW, err := o.invoke(b.feats, rows, b.width)
		if err != nil {
			return err
		}
		b.preds = preds
		b.predW = predW
		return nil
	}
	return o.processCached(b)
}

// processCached is the stage-2 miss-compaction path; see the package
// comment.
func (o *InferOp) processCached(b *inferBatch) error {
	rows, w := len(b.tuples), b.width
	results := make([][]float32, rows)
	var (
		leaders   []int // row index per compacted miss row
		leaderFls []*cache.Flight
		joinRows  []int // rows waiting on someone else's flight
		joinFls   []*cache.Flight
		missFeats []float32
	)
	cancel := func(err error) {
		for _, fl := range leaderFls {
			fl.Cancel(err)
		}
	}
	for i := 0; i < rows; i++ {
		feat := b.feats[i*w : (i+1)*w]
		pred, ok, fl, err := o.cache.ProbeFlight(feat)
		if err != nil {
			cancel(err)
			return err
		}
		switch {
		case ok:
			results[i] = pred
			o.stats.Hits.Add(1)
		case fl.Leader():
			leaders = append(leaders, i)
			leaderFls = append(leaderFls, fl)
			missFeats = append(missFeats, feat...)
			o.stats.Misses.Add(1)
		default:
			joinRows = append(joinRows, i)
			joinFls = append(joinFls, fl)
		}
	}

	// Run the model once over the compacted miss set, scatter predictions
	// back into row order, and publish them (cache insert + flight commit).
	if len(leaders) > 0 {
		data, predW, err := o.invoke(missFeats, len(leaders), w)
		if err != nil {
			cancel(err)
			return err
		}
		for j, row := range leaders {
			p := data[j*predW : (j+1)*predW : (j+1)*predW]
			results[row] = p
			if cerr := leaderFls[j].Commit(b.feats[row*w:(row+1)*w], p); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
	} else if len(joinRows) == 0 {
		o.stats.BatchesAllHit.Add(1)
	}

	// Only after settling every flight we lead is it safe to wait on
	// flights led by other queries (deadlock rule, cache.Flight).
	var retryRows []int
	for k, fl := range joinFls {
		p, err := fl.WaitCancel(o.tok)
		if err != nil {
			if cerr := o.tok.Err(); cerr != nil {
				// Our own query was cancelled while waiting: abandon the
				// batch. The leader still settles the flight for others.
				return cerr
			}
			// The other query's model run failed (e.g. its memory budget);
			// fall back to computing these rows ourselves.
			retryRows = append(retryRows, joinRows[k])
			continue
		}
		results[joinRows[k]] = p
		o.stats.Shared.Add(1)
	}
	if len(retryRows) > 0 {
		feats := make([]float32, 0, len(retryRows)*w)
		for _, row := range retryRows {
			feats = append(feats, b.feats[row*w:(row+1)*w]...)
		}
		out, err := o.applyUDF(feats, len(retryRows), w)
		if err != nil {
			return err
		}
		data, predW := out.Data(), out.Len()/len(retryRows)
		for j, row := range retryRows {
			p := data[j*predW : (j+1)*predW : (j+1)*predW]
			results[row] = p
			if err := o.cache.Insert(feats[j*w:(j+1)*w], p); err != nil {
				return err
			}
			o.stats.Misses.Add(1)
		}
	}

	// All rows resolved: verify a uniform prediction width and pack into
	// one backing array (cached rows are copied so emitted tuples never
	// alias cache-owned memory).
	predW := len(results[0])
	for i, p := range results {
		if len(p) != predW {
			return fmt.Errorf("udf: prediction width mismatch in batch (%d vs %d at row %d)", len(p), predW, i)
		}
	}
	backing := make([]float32, rows*predW)
	for i, p := range results {
		copy(backing[i*predW:(i+1)*predW], p)
	}
	b.preds = backing
	b.predW = predW
	return nil
}

// Next implements exec.Operator.
func (o *InferOp) Next() (table.Tuple, bool, error) {
	for {
		if o.cur != nil && o.pos < len(o.cur.tuples) {
			t := o.cur.tuples[o.pos]
			w := o.cur.predW
			pred := o.cur.preds[o.pos*w : (o.pos+1)*w : (o.pos+1)*w]
			o.pos++
			out := make(table.Tuple, 0, len(t)+1)
			out = append(out, t...)
			out = append(out, table.VecVal(pred))
			return out, true, nil
		}
		if o.done {
			return nil, false, nil
		}
		b := o.nextBatch()
		if b.err != nil {
			o.done = true
			return nil, false, b.err
		}
		if b.eof {
			o.done = true
		}
		if len(b.tuples) == 0 {
			o.cur = nil
			if o.done {
				return nil, false, nil
			}
			continue
		}
		if err := o.process(b); err != nil {
			o.done = true
			return nil, false, err
		}
		o.cur = b
		o.pos = 0
	}
}

// ReportStage implements exec.StageReporter: structured cache-probe
// outcomes for the profile span (hits/misses/shared per input row).
func (o *InferOp) ReportStage(s *exec.StageStat) {
	s.CacheHits = o.stats.Hits.Load()
	s.CacheMisses = o.stats.Misses.Load()
	s.CacheShared = o.stats.Shared.Load()
}

// StageNote implements exec.Noter: a one-line cache/pipeline summary for
// EXPLAIN ANALYZE.
func (o *InferOp) StageNote() string {
	h, m, s := o.stats.Hits.Load(), o.stats.Misses.Load(), o.stats.Shared.Load()
	mode := "serial"
	if o.Pipelined() {
		mode = fmt.Sprintf("pipelined fills=%d stalls=%d",
			o.stats.PipelineFills.Load(), o.stats.PipelineStalls.Load())
	}
	if o.cache == nil {
		return mode
	}
	return fmt.Sprintf("%s cache hits=%d misses=%d shared=%d model-batches=%d",
		mode, h, m, s, o.stats.UDFCalls.Load())
}

// Close implements exec.Operator.
func (o *InferOp) Close() error {
	if o.closed {
		return nil
	}
	o.closed = true
	if o.batches != nil {
		close(o.quit)
		// Unblock a producer waiting to hand off a batch.
		select {
		case <-o.batches:
		default:
		}
		o.wg.Wait()
		o.batches = nil
		o.quit = nil
	}
	if o.tokens > 0 {
		o.budget.Release(o.tokens)
		o.tokens = 0
	}
	if o.coEntered {
		o.co.Leave()
		o.coEntered = false
	}
	o.stats.AddTo(o.sink)
	o.cur = nil
	return o.in.Close()
}
