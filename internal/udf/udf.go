// Package udf implements the UDF-centric execution path: model inference
// encapsulated as user-defined functions running inside the database, over
// data that never leaves it. A ModelUDF fuses the entire forward pass into
// one UDF (the paper's coarse-grained encapsulation); OperatorUDF wraps a
// single linear-algebra operator, the fine-grained form the unified IR
// schedules individually.
//
// UDF-centric execution is whole-tensor: operators materialise their full
// inputs and outputs, so a UDF whose operator footprint exceeds the engine's
// memory budget fails with memlimit.ErrOOM — the Table 3 behaviour that
// motivates falling back to the relation-centric representation.
package udf

import (
	"fmt"
	"sync"

	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// UDF is a batch tensor function registered with the database.
type UDF interface {
	// Name is the UDF's registry key.
	Name() string
	// Apply transforms a batch.
	Apply(in *tensor.Tensor) (*tensor.Tensor, error)
}

// ModelUDF fuses a whole model forward pass into a single UDF.
type ModelUDF struct {
	model  *nn.Model
	budget *memlimit.Budget
}

// NewModelUDF wraps m as one coarse-grained UDF charged against budget
// (nil means unlimited).
func NewModelUDF(m *nn.Model, budget *memlimit.Budget) *ModelUDF {
	if budget == nil {
		budget = memlimit.Unlimited()
	}
	return &ModelUDF{model: m, budget: budget}
}

// Name implements UDF.
func (u *ModelUDF) Name() string { return "model:" + u.model.Name() }

// Model returns the wrapped model.
func (u *ModelUDF) Model() *nn.Model { return u.model }

// Apply implements UDF: it reserves the largest per-operator footprint
// (the paper's m·k + k·n + m·n rule) for the duration of the call.
func (u *ModelUDF) Apply(in *tensor.Tensor) (*tensor.Tensor, error) {
	batch := in.Dim(0)
	peak, err := u.model.MaxOpBytes(batch)
	if err != nil {
		return nil, fmt.Errorf("udf: %s: %w", u.Name(), err)
	}
	res, err := u.budget.TryReserve(peak)
	if err != nil {
		return nil, fmt.Errorf("udf: %s batch %d: %w", u.Name(), batch, err)
	}
	defer res.Close()
	return u.model.Forward(in), nil
}

// OperatorUDF wraps a single model operator as a fine-grained UDF.
type OperatorUDF struct {
	layer  nn.Layer
	index  int
	owner  string
	budget *memlimit.Budget
}

// NewOperatorUDF wraps layer (index i of model owner) as a UDF.
func NewOperatorUDF(layer nn.Layer, i int, owner string, budget *memlimit.Budget) *OperatorUDF {
	if budget == nil {
		budget = memlimit.Unlimited()
	}
	return &OperatorUDF{layer: layer, index: i, owner: owner, budget: budget}
}

// Name implements UDF.
func (u *OperatorUDF) Name() string {
	return fmt.Sprintf("op:%s[%d]:%s", u.owner, u.index, u.layer.Name())
}

// Apply implements UDF.
func (u *OperatorUDF) Apply(in *tensor.Tensor) (*tensor.Tensor, error) {
	need := u.layer.MemEstimate(in.Shape())
	res, err := u.budget.TryReserve(need)
	if err != nil {
		return nil, fmt.Errorf("udf: %s: %w", u.Name(), err)
	}
	defer res.Close()
	return u.layer.Forward(in), nil
}

// Registry is a thread-safe name → UDF map, the database's UDF catalog.
type Registry struct {
	mu   sync.RWMutex
	udfs map[string]UDF
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{udfs: make(map[string]UDF)} }

// Register adds u, rejecting duplicate names.
func (r *Registry) Register(u UDF) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.udfs[u.Name()]; dup {
		return fmt.Errorf("udf: %q already registered", u.Name())
	}
	r.udfs[u.Name()] = u
	return nil
}

// Lookup returns the named UDF.
func (r *Registry) Lookup(name string) (UDF, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.udfs[name]
	return u, ok
}

// Names returns the registered UDF names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.udfs))
	for n := range r.udfs {
		out = append(out, n)
	}
	return out
}

// InferOp is a relational operator that runs a UDF over the FloatVec
// feature column of its input in micro-batches, emitting each input tuple
// extended with a prediction column. It is how `PREDICT(model, features)`
// executes inside a query plan.
type InferOp struct {
	in       exec.Operator
	udf      UDF
	featIdx  int
	batch    int
	schema   *table.Schema
	buffered []table.Tuple
	preds    *tensor.Tensor
	pos      int
	done     bool
}

// NewInferOp wraps in with UDF inference over featCol, batching batch rows
// per UDF call. The output schema is the input schema plus a "prediction"
// FloatVec column.
func NewInferOp(in exec.Operator, u UDF, featCol string, batch int) (*InferOp, error) {
	idx := in.Schema().ColIndex(featCol)
	if idx < 0 {
		return nil, fmt.Errorf("udf: unknown feature column %q", featCol)
	}
	if in.Schema().Cols[idx].Type != table.FloatVec {
		return nil, fmt.Errorf("udf: feature column %q is %v, want VECTOR", featCol, in.Schema().Cols[idx].Type)
	}
	if batch < 1 {
		return nil, fmt.Errorf("udf: batch size %d < 1", batch)
	}
	schema := in.Schema().Concat(table.MustSchema(table.Column{Name: "prediction", Type: table.FloatVec}))
	return &InferOp{in: in, udf: u, featIdx: idx, batch: batch, schema: schema}, nil
}

// Schema implements exec.Operator.
func (o *InferOp) Schema() *table.Schema { return o.schema }

// Open implements exec.Operator.
func (o *InferOp) Open() error {
	o.buffered = nil
	o.preds = nil
	o.pos = 0
	o.done = false
	return o.in.Open()
}

// fill pulls up to batch tuples and runs the UDF over their features.
func (o *InferOp) fill() error {
	o.buffered = o.buffered[:0]
	var width int
	var feats []float32
	for len(o.buffered) < o.batch {
		t, ok, err := o.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			o.done = true
			break
		}
		vec := t[o.featIdx].Vec
		if len(o.buffered) == 0 {
			width = len(vec)
		} else if len(vec) != width {
			return fmt.Errorf("udf: ragged feature vectors (%d vs %d)", len(vec), width)
		}
		feats = append(feats, vec...)
		o.buffered = append(o.buffered, t)
	}
	if len(o.buffered) == 0 {
		return nil
	}
	out, err := o.udf.Apply(tensor.FromSlice(feats, len(o.buffered), width))
	if err != nil {
		return err
	}
	if out.Dim(0) != len(o.buffered) {
		return fmt.Errorf("udf: %s returned %d rows for %d inputs", o.udf.Name(), out.Dim(0), len(o.buffered))
	}
	o.preds = out
	o.pos = 0
	return nil
}

// Next implements exec.Operator.
func (o *InferOp) Next() (table.Tuple, bool, error) {
	for {
		if o.pos < len(o.buffered) {
			t := o.buffered[o.pos]
			width := o.preds.Len() / o.preds.Dim(0)
			pred := make([]float32, width)
			copy(pred, o.preds.Data()[o.pos*width:(o.pos+1)*width])
			o.pos++
			out := make(table.Tuple, 0, len(t)+1)
			out = append(out, t...)
			out = append(out, table.VecVal(pred))
			return out, true, nil
		}
		if o.done {
			return nil, false, nil
		}
		if err := o.fill(); err != nil {
			return nil, false, err
		}
		if len(o.buffered) == 0 {
			return nil, false, nil
		}
	}
}

// Close implements exec.Operator.
func (o *InferOp) Close() error {
	o.buffered = nil
	o.preds = nil
	return o.in.Close()
}
