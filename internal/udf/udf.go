// Package udf implements the UDF-centric execution path: model inference
// encapsulated as user-defined functions running inside the database, over
// data that never leaves it. A ModelUDF fuses the entire forward pass into
// one UDF (the paper's coarse-grained encapsulation); OperatorUDF wraps a
// single linear-algebra operator, the fine-grained form the unified IR
// schedules individually.
//
// UDF-centric execution is whole-tensor: operators materialise their full
// inputs and outputs, so a UDF whose operator footprint exceeds the engine's
// memory budget fails with memlimit.ErrOOM — the Table 3 behaviour that
// motivates falling back to the relation-centric representation.
package udf

import (
	"fmt"
	"sync"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// UDF is a batch tensor function registered with the database.
type UDF interface {
	// Name is the UDF's registry key.
	Name() string
	// Apply transforms a batch.
	Apply(in *tensor.Tensor) (*tensor.Tensor, error)
}

// CancelUDF is optionally implemented by UDFs whose execution observes a
// query-cancellation token (the adaptive inference UDF threads it through
// the block-multiply loops). Invoke through ApplyCancel, which falls back
// to plain Apply for UDFs without cancellation support.
type CancelUDF interface {
	UDF
	ApplyCancel(tok *lifecycle.Token, in *tensor.Tensor) (*tensor.Tensor, error)
}

// ApplyCancel applies u to in under tok when u supports cancellation, and
// plainly otherwise.
func ApplyCancel(u UDF, tok *lifecycle.Token, in *tensor.Tensor) (*tensor.Tensor, error) {
	if cu, ok := u.(CancelUDF); ok && tok != nil {
		return cu.ApplyCancel(tok, in)
	}
	return u.Apply(in)
}

// ModelUDF fuses a whole model forward pass into a single UDF.
type ModelUDF struct {
	model  *nn.Model
	budget *memlimit.Budget
}

// NewModelUDF wraps m as one coarse-grained UDF charged against budget
// (nil means unlimited).
func NewModelUDF(m *nn.Model, budget *memlimit.Budget) *ModelUDF {
	if budget == nil {
		budget = memlimit.Unlimited()
	}
	return &ModelUDF{model: m, budget: budget}
}

// Name implements UDF.
func (u *ModelUDF) Name() string { return "model:" + u.model.Name() }

// Model returns the wrapped model.
func (u *ModelUDF) Model() *nn.Model { return u.model }

// Apply implements UDF: it reserves the largest per-operator footprint
// (the paper's m·k + k·n + m·n rule) for the duration of the call. A panic
// inside the forward pass (a bad weight shape, a malformed batch) is
// contained here: it comes back as a *lifecycle.PanicError query error, the
// reservation is released, and the database process survives.
func (u *ModelUDF) Apply(in *tensor.Tensor) (out *tensor.Tensor, err error) {
	batch := in.Dim(0)
	peak, merr := u.model.MaxOpBytes(batch)
	if merr != nil {
		return nil, fmt.Errorf("udf: %s: %w", u.Name(), merr)
	}
	res, rerr := u.budget.TryReserve(peak)
	if rerr != nil {
		return nil, fmt.Errorf("udf: %s batch %d: %w", u.Name(), batch, rerr)
	}
	defer res.Close()
	defer func() {
		if perr := lifecycle.AsError(recover()); perr != nil {
			out, err = nil, fmt.Errorf("udf: %s: %w", u.Name(), perr)
		}
	}()
	return u.model.Forward(in), nil
}

// QuantizedUDF fuses the int8-resident twin of a model (see
// nn.QuantizeResident) into a single UDF: weights stay packed int8, each
// batch's activations quantize per row on entry, and the forward pass runs
// the packed int8 GEMM. Per-row activation scales keep its outputs
// batch-composition independent, so caching and coalescing work unchanged.
type QuantizedUDF struct {
	model  *nn.Model // the resident quantized twin
	owner  string    // the source model's name (registry key suffix)
	budget *memlimit.Budget
}

// NewQuantizedUDF wraps the quantized twin q of the model named owner,
// charged against budget (nil means unlimited).
func NewQuantizedUDF(q *nn.Model, owner string, budget *memlimit.Budget) *QuantizedUDF {
	if budget == nil {
		budget = memlimit.Unlimited()
	}
	return &QuantizedUDF{model: q, owner: owner, budget: budget}
}

// Name implements UDF.
func (u *QuantizedUDF) Name() string { return "quantized:" + u.owner }

// Model returns the resident quantized twin.
func (u *QuantizedUDF) Model() *nn.Model { return u.model }

// Apply implements UDF with the same reservation and panic-containment
// contract as ModelUDF.Apply; the peak-footprint estimate reflects the
// quantized layers' smaller resident weights.
func (u *QuantizedUDF) Apply(in *tensor.Tensor) (out *tensor.Tensor, err error) {
	batch := in.Dim(0)
	peak, merr := u.model.MaxOpBytes(batch)
	if merr != nil {
		return nil, fmt.Errorf("udf: %s: %w", u.Name(), merr)
	}
	res, rerr := u.budget.TryReserve(peak)
	if rerr != nil {
		return nil, fmt.Errorf("udf: %s batch %d: %w", u.Name(), batch, rerr)
	}
	defer res.Close()
	defer func() {
		if perr := lifecycle.AsError(recover()); perr != nil {
			out, err = nil, fmt.Errorf("udf: %s: %w", u.Name(), perr)
		}
	}()
	return u.model.Forward(in), nil
}

// OperatorUDF wraps a single model operator as a fine-grained UDF.
type OperatorUDF struct {
	layer  nn.Layer
	index  int
	owner  string
	budget *memlimit.Budget
}

// NewOperatorUDF wraps layer (index i of model owner) as a UDF.
func NewOperatorUDF(layer nn.Layer, i int, owner string, budget *memlimit.Budget) *OperatorUDF {
	if budget == nil {
		budget = memlimit.Unlimited()
	}
	return &OperatorUDF{layer: layer, index: i, owner: owner, budget: budget}
}

// Name implements UDF.
func (u *OperatorUDF) Name() string {
	return fmt.Sprintf("op:%s[%d]:%s", u.owner, u.index, u.layer.Name())
}

// Apply implements UDF. Panics in the operator's forward pass are contained
// as in ModelUDF.Apply.
func (u *OperatorUDF) Apply(in *tensor.Tensor) (out *tensor.Tensor, err error) {
	need := u.layer.MemEstimate(in.Shape())
	res, rerr := u.budget.TryReserve(need)
	if rerr != nil {
		return nil, fmt.Errorf("udf: %s: %w", u.Name(), rerr)
	}
	defer res.Close()
	defer func() {
		if perr := lifecycle.AsError(recover()); perr != nil {
			out, err = nil, fmt.Errorf("udf: %s: %w", u.Name(), perr)
		}
	}()
	return u.layer.Forward(in), nil
}

// Registry is a thread-safe name → UDF map, the database's UDF catalog.
type Registry struct {
	mu   sync.RWMutex
	udfs map[string]UDF
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{udfs: make(map[string]UDF)} }

// Register adds u, rejecting duplicate names.
func (r *Registry) Register(u UDF) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.udfs[u.Name()]; dup {
		return fmt.Errorf("udf: %q already registered", u.Name())
	}
	r.udfs[u.Name()] = u
	return nil
}

// Unregister removes the named UDF; absent names are a no-op (a model
// may have no quantized twin).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.udfs, name)
}

// Lookup returns the named UDF.
func (r *Registry) Lookup(name string) (UDF, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.udfs[name]
	return u, ok
}

// Names returns the registered UDF names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.udfs))
	for n := range r.udfs {
		out = append(out, n)
	}
	return out
}
