package udf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

func TestPipelineMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := nn.FraudFC(rng, 64)
	x := tensor.New(100, 28)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	p := NewPipeline(m)
	got, err := p.Run(x.Clone(), 16)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Forward(x.Clone())
	if !got.AlmostEqual(want, 1e-5) {
		t.Fatal("pipelined output differs from sequential forward")
	}
}

func TestPipelineDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// First stage is in-place (ReLU) — the input must stay intact.
	m := nn.MustModel("inplace", []int{1, 8}, nn.ReLU{}, nn.NewLinear(rng, 8, 4))
	x := tensor.New(10, 8)
	for i := range x.Data() {
		x.Data()[i] = -1
	}
	orig := x.Clone()
	if _, err := NewPipeline(m).Run(x, 4); err != nil {
		t.Fatal(err)
	}
	if !x.Equal(orig) {
		t.Fatal("pipeline mutated the caller's input")
	}
}

func TestPipelineUnevenBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := nn.FraudFC(rng, 32)
	x := tensor.New(23, 28) // 23 rows, batch 8 → 3 parts of 8,8,7
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	got, err := NewPipeline(m).Run(x.Clone(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != 23 {
		t.Fatalf("rows = %d", got.Dim(0))
	}
	if !got.AlmostEqual(m.Forward(x.Clone()), 1e-5) {
		t.Fatal("uneven batches mis-assembled")
	}
}

func TestPipelineCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := nn.CacheCNN(rng, 10)
	x := tensor.New(6, 10, 10, 1)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	got, err := NewPipeline(m).Run(x.Clone(), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Forward(x.Clone())
	if !got.Reshape(want.Shape()...).AlmostEqual(want, 1e-4) {
		t.Fatal("pipelined CNN differs from sequential forward")
	}
}

func TestPipelineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p := NewPipeline(nn.FraudFC(rng, 16))
	if _, err := p.Run(tensor.New(4, 28), 0); err == nil {
		t.Fatal("batch 0 must error")
	}
	if _, err := p.Run(tensor.New(0, 28), 4); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestPipelinePropagatesStageFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	// Second linear expects width 8, but we'll feed a model whose first
	// layer produces 4 — construct the inconsistency manually to force a
	// panic inside a stage.
	bad := &nn.Model{
		ModelName: "bad",
		InShape:   []int{1, 8},
		Layers:    []nn.Layer{nn.NewLinear(rng, 8, 4), nn.NewLinear(rng, 8, 2)},
	}
	if _, err := NewPipeline(bad).Run(tensor.New(4, 8), 2); err == nil {
		t.Fatal("stage failure must surface as an error")
	}
}

// Property: pipelining is schedule-only — identical results for any batch
// size and stage depth.
func TestPipelineEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := 2 + r.Intn(10)
		m := nn.MustModel("p", []int{1, in},
			nn.NewLinear(r, in, 8), nn.ReLU{}, nn.NewLinear(r, 8, 3), nn.Softmax{})
		rows := 1 + r.Intn(40)
		x := tensor.New(rows, in)
		for i := range x.Data() {
			x.Data()[i] = float32(r.NormFloat64())
		}
		p := NewPipeline(m)
		p.StageDepth = 1 + r.Intn(4)
		got, err := p.Run(x.Clone(), 1+r.Intn(10))
		if err != nil {
			return false
		}
		return got.AlmostEqual(m.Forward(x.Clone()), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
