package udf

import (
	"errors"
	"math/rand"
	"testing"

	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

func TestModelUDFMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.FraudFC(rng, 32)
	u := NewModelUDF(m, nil)
	x := tensor.New(4, 28)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	got, err := u.Apply(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(m.Forward(x.Clone()), 1e-6) {
		t.Fatal("model UDF differs from forward")
	}
	if u.Name() != "model:Fraud-FC-32" {
		t.Fatalf("Name = %q", u.Name())
	}
}

func TestModelUDFReservesAndReleasesPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := nn.FraudFC(rng, 32)
	b := memlimit.NewBudget(1 << 30)
	u := NewModelUDF(m, b)
	if _, err := u.Apply(tensor.New(8, 28)); err != nil {
		t.Fatal(err)
	}
	if b.Reserved() != 0 {
		t.Fatalf("leaked %d bytes", b.Reserved())
	}
	peak, err := m.MaxOpBytes(8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Peak() != peak {
		t.Fatalf("peak %d, want %d", b.Peak(), peak)
	}
}

func TestModelUDFOOM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := nn.FraudFC(rng, 512)
	u := NewModelUDF(m, memlimit.NewBudget(1024))
	if _, err := u.Apply(tensor.New(100, 28)); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestOperatorUDF(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lin := nn.NewLinear(rng, 8, 4)
	u := NewOperatorUDF(lin, 0, "m", nil)
	x := tensor.New(2, 8)
	got, err := u.Apply(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !got.AlmostEqual(lin.Forward(x.Clone()), 1e-6) {
		t.Fatal("operator UDF differs from layer forward")
	}
	if u.Name() != "op:m[0]:linear" {
		t.Fatalf("Name = %q", u.Name())
	}
}

func TestRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := NewRegistry()
	u := NewModelUDF(nn.FraudFC(rng, 16), nil)
	if err := r.Register(u); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(u); err == nil {
		t.Fatal("duplicate registration must error")
	}
	got, ok := r.Lookup(u.Name())
	if !ok || got != UDF(u) {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Fatal("ghost lookup must fail")
	}
	if len(r.Names()) != 1 {
		t.Fatalf("Names = %v", r.Names())
	}
}

func featRows(rng *rand.Rand, n, width int) []table.Tuple {
	rows := make([]table.Tuple, n)
	for i := range rows {
		vec := make([]float32, width)
		for j := range vec {
			vec[j] = rng.Float32()
		}
		rows[i] = table.Tuple{table.IntVal(int64(i)), table.VecVal(vec)}
	}
	return rows
}

func featSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "features", Type: table.FloatVec},
	)
}

func TestInferOpAppendsPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 23, 28) // not a batch multiple
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 23 {
		t.Fatalf("got %d rows", len(got))
	}
	for i, r := range got {
		if r[0].Int != int64(i) {
			t.Fatalf("row order broken at %d", i)
		}
		pred := r[len(r)-1].Vec
		if len(pred) != 2 {
			t.Fatalf("prediction width %d", len(pred))
		}
		// Must match a direct single-row forward.
		x := tensor.FromSlice(append([]float32(nil), rows[i][1].Vec...), 1, 28)
		want := m.Forward(x)
		if abs32(pred[0]-want.At(0, 0)) > 1e-5 {
			t.Fatalf("row %d prediction %v, want %v", i, pred, want.Data())
		}
	}
	if op.Schema().ColIndex("prediction") < 0 {
		t.Fatal("schema missing prediction column")
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestInferOpValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := nn.FraudFC(rng, 16)
	u := NewModelUDF(m, nil)
	if _, err := NewInferOp(exec.NewMemScan(featSchema(), nil), u, "ghost", 8); err == nil {
		t.Fatal("unknown feature column must error")
	}
	if _, err := NewInferOp(exec.NewMemScan(featSchema(), nil), u, "id", 8); err == nil {
		t.Fatal("non-vector feature column must error")
	}
	if _, err := NewInferOp(exec.NewMemScan(featSchema(), nil), u, "features", 0); err == nil {
		t.Fatal("batch 0 must error")
	}
}

func TestInferOpRaggedFeaturesError(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := nn.FraudFC(rng, 16)
	rows := []table.Tuple{
		{table.IntVal(0), table.VecVal(make([]float32, 28))},
		{table.IntVal(1), table.VecVal(make([]float32, 5))},
	}
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Collect(op); err == nil {
		t.Fatal("ragged feature vectors must error")
	}
}

func TestInferOpEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := nn.FraudFC(rng, 16)
	op, err := NewInferOp(exec.NewMemScan(featSchema(), nil), NewModelUDF(m, nil), "features", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d rows from empty input", len(got))
	}
}

func TestInferOpPropagatesOOM(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := nn.FraudFC(rng, 512)
	rows := featRows(rng, 50, 28)
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, memlimit.NewBudget(1024)), "features", 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Collect(op); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestOperatorUDFOOM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lin := nn.NewLinear(rng, 512, 512)
	u := NewOperatorUDF(lin, 0, "m", memlimit.NewBudget(1024))
	if _, err := u.Apply(tensor.New(64, 512)); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestInferOpReopenable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := nn.FraudFC(rng, 16)
	rows := featRows(rng, 10, 28)
	op, err := NewInferOp(exec.NewMemScan(featSchema(), rows), NewModelUDF(m, nil), "features", 4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := exec.Collect(op)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 10 {
			t.Fatalf("round %d: %d rows", round, len(got))
		}
	}
}
