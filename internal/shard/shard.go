// Package shard is the hash-sharded scatter-gather serving tier: N shard
// nodes — each a complete engine, in-process or behind a TCP listener —
// hold hash-disjoint slices of every sharded table, partitioned by the hash
// of a per-table key column (by convention the first schema column). A
// Cluster fronts the nodes with a coordinator that plans each statement:
//
//   - a SELECT whose WHERE pins the shard key with `=` routes to exactly
//     one shard (the pinned fast path, counted separately from scatters);
//   - any other read scatters a rewritten subplan to every shard and merges
//     the partials through the exec operator tree — Concat for unordered
//     scans, OrderedMerge for sorted ones, MergeAggregate for partial
//     aggregates (AVG decomposed into SUM+COUNT on the shards), and a
//     distance-ordered top-k merge for Nearest;
//   - an INSERT splits its rows by key hash, DDL and model loads broadcast.
//
// Remote traffic runs over connector.FrameConn, so every response stream is
// CRC-framed and sequence-checked, and a fault.Link on the server's send
// side exercises drops, duplicates, reorders, and partitions; clients
// retry broken read streams on fresh connections and surface writes'
// transport errors instead (a write retry could double-apply).
//
// Sessions keep a per-shard read-your-writes floor: each write records the
// CSN the owning shard committed, and later reads require that shard's
// snapshot to have caught up — enforced again after the query against the
// snapshot it actually pinned, so a floor race returns a retriable lag
// error rather than stale rows.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"tensorbase/internal/table"
)

// ErrUnavailable reports a shard node that is down, unreachable, or kept
// failing across retries. It is retriable: the serving layer maps it to a
// 503 with a Retry-After hint.
var ErrUnavailable = errors.New("shard: node unavailable")

// ErrLag reports a shard whose committed snapshot has not caught up to the
// session's read-your-writes floor. Retriable: retry after the shard
// applies the write.
var ErrLag = errors.New("shard: snapshot behind session floor")

// HashValue hashes a shard-key value deterministically (FNV-1a over the
// value's canonical little-endian bytes). The same value always lands on
// the same shard, across processes and restarts.
func HashValue(v table.Value) uint64 {
	h := fnv.New64a()
	var tmp [8]byte
	switch v.Type {
	case table.Int64:
		binary.LittleEndian.PutUint64(tmp[:], uint64(v.Int))
		h.Write(tmp[:])
	case table.Float64:
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Float))
		h.Write(tmp[:])
	case table.Text:
		h.Write([]byte(v.Str))
	case table.FloatVec:
		for _, f := range v.Vec {
			binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(f))
			h.Write(tmp[:4])
		}
	}
	return h.Sum64()
}

// ShardOf maps a key value to a shard index among n shards.
func ShardOf(v table.Value, n int) int {
	return int(HashValue(v) % uint64(n))
}

// coerceKey converts a literal to the key column's stored type, mirroring
// what the engine does on INSERT, so the coordinator hashes exactly the
// value the shard stores. A literal the engine would reject (or that can
// never equal a stored value, like 1.5 against an INT column) returns an
// error; pinning then falls back to a scatter.
func coerceKey(v table.Value, t table.ColType) (table.Value, error) {
	if v.Type == t {
		return v, nil
	}
	if v.Type == table.Int64 && t == table.Float64 {
		return table.FloatVal(float64(v.Int)), nil
	}
	return table.Value{}, fmt.Errorf("shard: cannot coerce %v key literal to column type %v", v.Type, t)
}
