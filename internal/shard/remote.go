package shard

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"time"

	"tensorbase/internal/connector"
	"tensorbase/internal/engine"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
)

// RemoteNode is a shard behind a Server, reached by dialing per request.
// Reads retry whole requests on fresh connections when the stream breaks
// (drop, reorder, corruption) or stalls past the read deadline (partition);
// writes never retry on transport errors — a retried INSERT that did land
// would double-apply — so those surface as ErrUnavailable for the caller
// to decide.
type RemoteNode struct {
	name    string
	dial    func() (net.Conn, error)
	timeout time.Duration
	retries int
}

// NewRemoteNode returns a client for the shard server at addr.
func NewRemoteNode(name, addr string) *RemoteNode {
	n := &RemoteNode{name: name, timeout: 2 * time.Second, retries: 5}
	n.dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, n.timeout) }
	return n
}

// NewRemoteNodeDialer is NewRemoteNode over a custom dialer (tests use
// in-memory pipes).
func NewRemoteNodeDialer(name string, dial func() (net.Conn, error)) *RemoteNode {
	return &RemoteNode{name: name, dial: dial, timeout: 2 * time.Second, retries: 5}
}

// SetTimeout sets the per-attempt deadline (partition detector).
func (n *RemoteNode) SetTimeout(d time.Duration) { n.timeout = d }

// SetRetries sets how many fresh connections a read may burn.
func (n *RemoteNode) SetRetries(k int) { n.retries = k }

// Name implements Node.
func (n *RemoteNode) Name() string { return n.name }

// Healthy implements Node; remote liveness is discovered per request.
func (n *RemoteNode) Healthy() bool { return true }

// wireResp is one fully-received response stream.
type wireResp struct {
	schema       *table.Schema
	rows         []table.Tuple
	dists        []float64
	rowsAffected int64
	snapshotCSN  uint64
	committedCSN uint64
}

// attempt runs one request/response exchange on one fresh connection.
// A non-nil transportErr means the exchange may be retried; appErr is the
// server's answer and final.
func (n *RemoteNode) attempt(ctx context.Context, req []byte) (resp *wireResp, appErr, transportErr error) {
	conn, err := n.dial()
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(n.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	fc := connector.NewFrameConn(conn, nil)
	if err := fc.Send(req); err != nil {
		return nil, nil, err
	}
	r := &wireResp{}
	for {
		frame, err := fc.Recv()
		if err != nil {
			return nil, nil, err
		}
		kind, body, err := splitKind(frame)
		if err != nil {
			return nil, nil, err
		}
		switch kind {
		case respErr:
			return nil, decodeErr(body), nil
		case respSchema:
			s, _, err := decodeSchema(body)
			if err != nil {
				return nil, nil, err
			}
			r.schema = s
		case respRows:
			if r.schema == nil {
				return nil, nil, fmt.Errorf("shard: rows before schema")
			}
			rows, err := decodeRowsFrame(r.schema, body)
			if err != nil {
				return nil, nil, err
			}
			r.rows = append(r.rows, rows...)
		case respDists:
			d, err := decodeDistsFrame(body)
			if err != nil {
				return nil, nil, err
			}
			r.dists = append(r.dists, d...)
		case respDone:
			r.rowsAffected, r.snapshotCSN, r.committedCSN, err = decodeDone(body)
			if err != nil {
				return nil, nil, err
			}
			return r, nil, nil
		default:
			return nil, nil, fmt.Errorf("shard: unknown response kind %d", kind)
		}
	}
}

// roundTrip drives attempts. Reads (retriable) burn fresh connections on
// transport errors; writes fail on the first one.
func (n *RemoteNode) roundTrip(ctx context.Context, req []byte, retriable bool) (*wireResp, error) {
	attempts := 1
	if retriable {
		attempts += n.retries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, appErr, transportErr := n.attempt(ctx, req)
		if transportErr == nil {
			if appErr != nil {
				return nil, appErr
			}
			return resp, nil
		}
		lastErr = transportErr
	}
	return nil, fmt.Errorf("%w: %s unreachable after %d attempts: %v", ErrUnavailable, n.name, attempts, lastErr)
}

// Query implements Node.
func (n *RemoteNode) Query(ctx context.Context, sqlText string, floor uint64) (*engine.Result, error) {
	resp, err := n.roundTrip(ctx, encodeQueryReq(sqlText, floor), true)
	if err != nil {
		return nil, err
	}
	if resp.schema == nil {
		return nil, fmt.Errorf("shard: %s returned no schema", n.name)
	}
	return &engine.Result{
		Schema:       resp.schema,
		Rows:         resp.rows,
		RowsAffected: resp.rowsAffected,
		SnapshotCSN:  resp.snapshotCSN,
	}, nil
}

// Exec implements Node.
func (n *RemoteNode) Exec(ctx context.Context, sqlText string) (*engine.Result, uint64, error) {
	resp, err := n.roundTrip(ctx, encodeExecReq(sqlText), false)
	if err != nil {
		return nil, 0, err
	}
	return &engine.Result{RowsAffected: resp.rowsAffected, SnapshotCSN: resp.snapshotCSN}, resp.committedCSN, nil
}

// Nearest implements Node.
func (n *RemoteNode) Nearest(ctx context.Context, tbl, col string, query []float32, k int, floor uint64) (*table.Schema, []table.Tuple, []float64, error) {
	resp, err := n.roundTrip(ctx, encodeNearestReq(tbl, col, query, k, floor), true)
	if err != nil {
		return nil, nil, nil, err
	}
	if resp.schema == nil {
		return nil, nil, nil, fmt.Errorf("shard: %s returned no schema", n.name)
	}
	if len(resp.rows) != len(resp.dists) {
		return nil, nil, nil, fmt.Errorf("shard: %s returned %d rows, %d distances", n.name, len(resp.rows), len(resp.dists))
	}
	return resp.schema, resp.rows, resp.dists, nil
}

// LoadModel implements Node.
func (n *RemoteNode) LoadModel(m *nn.Model, accuracy float64) error {
	var buf bytes.Buffer
	if err := nn.Save(&buf, m); err != nil {
		return err
	}
	_, err := n.roundTrip(context.Background(), encodeLoadModelReq(buf.Bytes(), accuracy), false)
	return err
}

// CreateVectorIndex implements Node.
func (n *RemoteNode) CreateVectorIndex(tbl, col string) (int, error) {
	resp, err := n.roundTrip(context.Background(), encodeVIndexReq(tbl, col), false)
	if err != nil {
		return 0, err
	}
	return int(resp.rowsAffected), nil
}
