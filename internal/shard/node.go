package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tensorbase/internal/engine"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
)

// Node is one shard's serving endpoint, local or remote. floor is the
// session's read-your-writes floor for this shard: the minimum committed
// CSN the read's snapshot must include. Reads against a snapshot below the
// floor fail with ErrLag; a down node fails with ErrUnavailable.
type Node interface {
	Name() string

	// Query runs one read-only statement and returns its rows plus the
	// snapshot CSN the statement actually pinned (>= floor on success).
	Query(ctx context.Context, sqlText string, floor uint64) (*engine.Result, error)

	// Exec runs one write statement and returns its result plus the
	// node's committed CSN afterwards — the session's new floor.
	Exec(ctx context.Context, sqlText string) (*engine.Result, uint64, error)

	// Nearest runs a vector top-k search on this shard's slice of tbl,
	// returning the table schema alongside the rows and distances (sorted
	// ascending) so callers can merge without a catalog round-trip.
	Nearest(ctx context.Context, tbl, col string, query []float32, k int, floor uint64) (*table.Schema, []table.Tuple, []float64, error)

	// LoadModel registers (or upgrades) a model on this shard.
	LoadModel(m *nn.Model, accuracy float64) error

	// CreateVectorIndex builds an ANN index over tbl.col on this shard.
	CreateVectorIndex(tbl, col string) (int, error)

	// Healthy reports whether the node is believed reachable.
	Healthy() bool
}

// LocalNode is an in-process shard: a full engine at its own path. Kill and
// Restart simulate node failure with the engine's own crash machinery, so a
// killed shard loses nothing durable and recovers by WAL replay.
type LocalNode struct {
	name string
	path string
	opts engine.Options

	mu    sync.Mutex // serialises Kill/Restart
	db    atomic.Pointer[engine.DB]
	alive atomic.Bool
}

// NewLocalNode opens an engine at path and wraps it as a shard node.
func NewLocalNode(name, path string, opts engine.Options) (*LocalNode, error) {
	db, err := engine.Open(path, opts)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", name, err)
	}
	n := &LocalNode{name: name, path: path, opts: opts}
	n.db.Store(db)
	n.alive.Store(true)
	return n, nil
}

// Name implements Node.
func (n *LocalNode) Name() string { return n.name }

// Healthy implements Node.
func (n *LocalNode) Healthy() bool { return n.alive.Load() }

// DB exposes the underlying engine (nil while killed), for tests and for
// wiring a TCP server in front of the same store.
func (n *LocalNode) DB() *engine.DB {
	if !n.alive.Load() {
		return nil
	}
	return n.db.Load()
}

// Kill crashes the node: the engine drops its volatile state as a real
// crash would, and every subsequent call fails with ErrUnavailable until
// Restart.
func (n *LocalNode) Kill() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive.Load() {
		return nil
	}
	n.alive.Store(false)
	return n.db.Load().Crash()
}

// Restart reopens the engine from its durable state.
func (n *LocalNode) Restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive.Load() {
		return nil
	}
	db, err := engine.Open(n.path, n.opts)
	if err != nil {
		return fmt.Errorf("shard %s: restart: %w", n.name, err)
	}
	n.db.Store(db)
	n.alive.Store(true)
	return nil
}

// Close shuts the node down cleanly.
func (n *LocalNode) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive.Load() {
		return nil
	}
	n.alive.Store(false)
	return n.db.Load().Close()
}

// live returns the engine or ErrUnavailable.
func (n *LocalNode) live() (*engine.DB, error) {
	if !n.alive.Load() {
		return nil, fmt.Errorf("%w: %s is down", ErrUnavailable, n.name)
	}
	return n.db.Load(), nil
}

// Query implements Node. The floor is checked twice: before the query for
// an early retriable error, and after against the snapshot the query
// actually pinned — the pre-check alone races with concurrent restarts.
func (n *LocalNode) Query(ctx context.Context, sqlText string, floor uint64) (*engine.Result, error) {
	db, err := n.live()
	if err != nil {
		return nil, err
	}
	if db.CommittedCSN() < floor {
		return nil, fmt.Errorf("%w: %s at %d, floor %d", ErrLag, n.name, db.CommittedCSN(), floor)
	}
	res, err := db.QueryContext(ctx, sqlText)
	if err != nil {
		if !n.alive.Load() {
			return nil, fmt.Errorf("%w: %s died mid-query: %v", ErrUnavailable, n.name, err)
		}
		return nil, err
	}
	if res.SnapshotCSN < floor {
		return nil, fmt.Errorf("%w: %s pinned %d, floor %d", ErrLag, n.name, res.SnapshotCSN, floor)
	}
	return res, nil
}

// Exec implements Node.
func (n *LocalNode) Exec(ctx context.Context, sqlText string) (*engine.Result, uint64, error) {
	db, err := n.live()
	if err != nil {
		return nil, 0, err
	}
	res, err := db.ExecContext(ctx, sqlText)
	if err != nil {
		if !n.alive.Load() {
			return nil, 0, fmt.Errorf("%w: %s died mid-statement: %v", ErrUnavailable, n.name, err)
		}
		return nil, 0, err
	}
	return res, db.CommittedCSN(), nil
}

// Nearest implements Node.
func (n *LocalNode) Nearest(ctx context.Context, tbl, col string, query []float32, k int, floor uint64) (*table.Schema, []table.Tuple, []float64, error) {
	db, err := n.live()
	if err != nil {
		return nil, nil, nil, err
	}
	if db.CommittedCSN() < floor {
		return nil, nil, nil, fmt.Errorf("%w: %s, floor %d", ErrLag, n.name, floor)
	}
	rows, dists, err := db.Nearest(tbl, col, query, k)
	if err != nil {
		if !n.alive.Load() {
			return nil, nil, nil, fmt.Errorf("%w: %s died mid-search: %v", ErrUnavailable, n.name, err)
		}
		return nil, nil, nil, err
	}
	te, err := db.Catalog().Table(tbl)
	if err != nil {
		return nil, nil, nil, err
	}
	return te.Heap.Schema(), rows, dists, nil
}

// LoadModel implements Node.
func (n *LocalNode) LoadModel(m *nn.Model, accuracy float64) error {
	db, err := n.live()
	if err != nil {
		return err
	}
	return db.LoadModel(m, accuracy)
}

// CreateVectorIndex implements Node.
func (n *LocalNode) CreateVectorIndex(tbl, col string) (int, error) {
	db, err := n.live()
	if err != nil {
		return 0, err
	}
	return db.CreateVectorIndex(tbl, col)
}
