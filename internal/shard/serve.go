package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"tensorbase/internal/connector"
	"tensorbase/internal/fault"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
)

// Server exposes one shard node over a listener: one request per
// connection, responses streamed as FrameConn frames through an optional
// fault.Link (drops, duplicates, reorders, partitions on the response
// path — the direction whose loss a read client must survive by retrying).
type Server struct {
	node   Node
	ln     net.Listener
	link   *fault.Link
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Serve starts accepting connections for node on ln. link may be nil for a
// perfect wire.
func Serve(ln net.Listener, node Node, link *fault.Link) *Server {
	s := &Server{node: node, ln: ln, link: link}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for in-flight requests.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// sendRows streams tuples in bounded frames; a transport error abandons
// the stream (the client's sequence check detects the break and retries).
func sendRows(fc *connector.FrameConn, schema *table.Schema, rows []table.Tuple) bool {
	for off := 0; off < len(rows); off += rowsPerFrame {
		end := min(off+rowsPerFrame, len(rows))
		frame, err := encodeRowsFrame(schema, rows[off:end])
		if err != nil {
			fc.Send(encodeErr(err))
			return false
		}
		if fc.Send(frame) != nil {
			return false
		}
	}
	return true
}

// serveConn handles one request/response exchange.
func (s *Server) serveConn(conn net.Conn) {
	fc := connector.NewFrameConn(conn, s.link)
	req, err := fc.Recv()
	if err != nil {
		return
	}
	kind, body, err := splitKind(req)
	if err != nil {
		return
	}
	ctx := context.Background()
	switch kind {
	case reqQuery:
		if len(body) < 8 {
			return
		}
		floor := binary.LittleEndian.Uint64(body)
		res, err := s.node.Query(ctx, string(body[8:]), floor)
		if err != nil {
			fc.Send(encodeErr(err))
			return
		}
		if fc.Send(encodeSchema([]byte{respSchema}, res.Schema)) != nil {
			return
		}
		if !sendRows(fc, res.Schema, res.Rows) {
			return
		}
		fc.Send(encodeDone(res.RowsAffected, res.SnapshotCSN, 0))

	case reqExec:
		res, committed, err := s.node.Exec(ctx, string(body))
		if err != nil {
			fc.Send(encodeErr(err))
			return
		}
		fc.Send(encodeDone(res.RowsAffected, res.SnapshotCSN, committed))

	case reqNearest:
		tbl, col, query, k, floor, err := decodeNearestReq(body)
		if err != nil {
			fc.Send(encodeErr(err))
			return
		}
		schema, rows, dists, err := s.node.Nearest(ctx, tbl, col, query, k, floor)
		if err != nil {
			fc.Send(encodeErr(err))
			return
		}
		if fc.Send(encodeSchema([]byte{respSchema}, schema)) != nil {
			return
		}
		if !sendRows(fc, schema, rows) {
			return
		}
		if fc.Send(encodeDistsFrame(dists)) != nil {
			return
		}
		fc.Send(encodeDone(int64(len(rows)), 0, 0))

	case reqLoadModel:
		if len(body) < 8 {
			return
		}
		acc := math.Float64frombits(binary.LittleEndian.Uint64(body))
		m, err := nn.Load(bytes.NewReader(body[8:]))
		if err != nil {
			fc.Send(encodeErr(err))
			return
		}
		if err := s.node.LoadModel(m, acc); err != nil {
			fc.Send(encodeErr(err))
			return
		}
		fc.Send(encodeDone(0, 0, 0))

	case reqVIndex:
		tbl, col, err := decodeVIndexReq(body)
		if err != nil {
			fc.Send(encodeErr(err))
			return
		}
		n, err := s.node.CreateVectorIndex(tbl, col)
		if err != nil {
			fc.Send(encodeErr(err))
			return
		}
		fc.Send(encodeDone(int64(n), 0, 0))
	}
}
